// Package expr evaluates SciQL scalar expressions: arithmetic with
// SQL NULL propagation, three-valued logic, CASE guards, casts, and
// the scalar builtin library (MOD, POWER, ABS, SQRT, RAND, trig, ...).
// Array references, subqueries and user-defined functions are resolved
// through hooks supplied by the executor so this package stays free of
// engine dependencies.
package expr

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/sql/ast"
	"repro/internal/value"
)

// Env supplies name bindings during evaluation: column values of the
// current row, dimension variables of the current anchor, PSM locals,
// and host parameters.
type Env interface {
	// Lookup resolves a (possibly qualified) name; ok=false if unbound.
	Lookup(qualifier, name string) (value.Value, bool)
	// Param resolves a ?name host parameter.
	Param(name string) (value.Value, bool)
}

// MapEnv is a simple Env over maps, used for dimension-variable
// bindings and tests.
type MapEnv struct {
	Vars   map[string]value.Value
	Params map[string]value.Value
	// Parent chains environments (inner shadows outer).
	Parent Env
}

// Lookup implements Env.
func (m *MapEnv) Lookup(qualifier, name string) (value.Value, bool) {
	k := strings.ToLower(name)
	if qualifier == "" {
		if v, ok := m.Vars[k]; ok {
			return v, true
		}
	}
	if m.Parent != nil {
		return m.Parent.Lookup(qualifier, name)
	}
	return value.Value{}, false
}

// Param implements Env.
func (m *MapEnv) Param(name string) (value.Value, bool) {
	if v, ok := m.Params[strings.ToLower(name)]; ok {
		return v, true
	}
	if m.Parent != nil {
		return m.Parent.Param(name)
	}
	return value.Value{}, false
}

// Hooks lets the executor resolve constructs that need engine state.
type Hooks struct {
	// Subquery evaluates a scalar subquery under env.
	Subquery func(sel *ast.Select, env Env) (value.Value, error)
	// ArrayRef resolves an array reference (point access or slice).
	ArrayRef func(ref *ast.ArrayRef, env Env) (value.Value, error)
	// Call resolves non-builtin functions (white-box and black-box
	// UDFs); it is consulted after the builtin table misses.
	Call func(name string, args []value.Value, env Env) (value.Value, error)
}

// Evaluator evaluates expressions. The zero value works for pure
// scalar expressions; attach Hooks for engine-backed constructs.
type Evaluator struct {
	Hooks Hooks
	// Rand is the generator behind RAND(); a fixed seed keeps runs
	// reproducible. Nil lazily initializes a default.
	Rand *rand.Rand
}

// New returns an evaluator with a deterministic RAND() stream.
func New() *Evaluator {
	return &Evaluator{Rand: rand.New(rand.NewSource(42))}
}

// Eval computes e under env.
func (ev *Evaluator) Eval(e ast.Expr, env Env) (value.Value, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Val, nil
	case *ast.Ident:
		if v, ok := env.Lookup(x.Table, x.Name); ok {
			return v, nil
		}
		return value.Value{}, fmt.Errorf("unbound name %s", x.String())
	case *ast.Param:
		if v, ok := env.Param(x.Name); ok {
			return v, nil
		}
		return value.Value{}, fmt.Errorf("unbound parameter ?%s", x.Name)
	case *ast.Unary:
		return ev.evalUnary(x, env)
	case *ast.Binary:
		return ev.evalBinary(x, env)
	case *ast.FuncCall:
		return ev.evalCall(x, env)
	case *ast.Case:
		return ev.evalCase(x, env)
	case *ast.Cast:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.Coerce(v, x.To)
	case *ast.IsNull:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(v.Null != x.Neg), nil
	case *ast.Between:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return value.Value{}, err
		}
		lo, err := ev.Eval(x.Lo, env)
		if err != nil {
			return value.Value{}, err
		}
		hi, err := ev.Eval(x.Hi, env)
		if err != nil {
			return value.Value{}, err
		}
		if v.Null || lo.Null || hi.Null {
			return value.NewNull(value.Bool), nil
		}
		in := value.Compare(v, lo) >= 0 && value.Compare(v, hi) <= 0
		return value.NewBool(in != x.Neg), nil
	case *ast.InList:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return value.Value{}, err
		}
		if v.Null {
			return value.NewNull(value.Bool), nil
		}
		found := false
		for _, el := range x.Elems {
			ev2, err := ev.Eval(el, env)
			if err != nil {
				return value.Value{}, err
			}
			if value.Equal(v, ev2) {
				found = true
				break
			}
		}
		return value.NewBool(found != x.Neg), nil
	case *ast.Subquery:
		if ev.Hooks.Subquery == nil {
			return value.Value{}, fmt.Errorf("subquery not supported in this context")
		}
		return ev.Hooks.Subquery(x.Select, env)
	case *ast.ArrayRef:
		if ev.Hooks.ArrayRef == nil {
			return value.Value{}, fmt.Errorf("array reference not supported in this context")
		}
		return ev.Hooks.ArrayRef(x, env)
	case *ast.ExprList:
		// Scalar contexts take the first element; array SET statements
		// intercept the list before evaluation.
		if len(x.Elems) == 0 {
			return value.NewNull(value.Unknown), nil
		}
		return ev.Eval(x.Elems[0], env)
	case *ast.Star:
		return value.Value{}, fmt.Errorf("'*' is only valid in a target list")
	default:
		return value.Value{}, fmt.Errorf("cannot evaluate %T", e)
	}
}

// EvalBool computes a predicate; NULL counts as false (SQL WHERE).
func (ev *Evaluator) EvalBool(e ast.Expr, env Env) (bool, error) {
	v, err := ev.Eval(e, env)
	if err != nil {
		return false, err
	}
	return !v.Null && v.AsBool(), nil
}

func (ev *Evaluator) evalUnary(x *ast.Unary, env Env) (value.Value, error) {
	v, err := ev.Eval(x.X, env)
	if err != nil {
		return value.Value{}, err
	}
	switch x.Op {
	case "-":
		if v.Null {
			return v, nil
		}
		switch v.Typ {
		case value.Int:
			return value.NewInt(-v.I), nil
		case value.Float:
			return value.NewFloat(-v.F), nil
		}
		return value.Value{}, fmt.Errorf("cannot negate %s", v.Typ)
	case "NOT":
		if v.Null {
			return value.NewNull(value.Bool), nil
		}
		return value.NewBool(!v.AsBool()), nil
	}
	return value.Value{}, fmt.Errorf("unknown unary operator %s", x.Op)
}

func (ev *Evaluator) evalBinary(x *ast.Binary, env Env) (value.Value, error) {
	// AND/OR shortcut with three-valued logic.
	switch x.Op {
	case "AND":
		l, err := ev.Eval(x.L, env)
		if err != nil {
			return value.Value{}, err
		}
		if !l.Null && !l.AsBool() {
			return value.NewBool(false), nil
		}
		r, err := ev.Eval(x.R, env)
		if err != nil {
			return value.Value{}, err
		}
		if !r.Null && !r.AsBool() {
			return value.NewBool(false), nil
		}
		if l.Null || r.Null {
			return value.NewNull(value.Bool), nil
		}
		return value.NewBool(true), nil
	case "OR":
		l, err := ev.Eval(x.L, env)
		if err != nil {
			return value.Value{}, err
		}
		if !l.Null && l.AsBool() {
			return value.NewBool(true), nil
		}
		r, err := ev.Eval(x.R, env)
		if err != nil {
			return value.Value{}, err
		}
		if !r.Null && r.AsBool() {
			return value.NewBool(true), nil
		}
		if l.Null || r.Null {
			return value.NewNull(value.Bool), nil
		}
		return value.NewBool(false), nil
	}
	l, err := ev.Eval(x.L, env)
	if err != nil {
		return value.Value{}, err
	}
	r, err := ev.Eval(x.R, env)
	if err != nil {
		return value.Value{}, err
	}
	return Apply(x.Op, l, r)
}

// Apply computes l op r with SQL NULL propagation.
func Apply(op string, l, r value.Value) (value.Value, error) {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.Null || r.Null {
			return value.NewNull(value.Bool), nil
		}
		c := value.Compare(l, r)
		var b bool
		switch op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return value.NewBool(b), nil
	case "||":
		if l.Null || r.Null {
			return value.NewNull(value.String), nil
		}
		return value.NewString(l.String() + r.String()), nil
	}
	if l.Null || r.Null {
		t := value.Float
		if l.Typ == value.Int && r.Typ == value.Int {
			t = value.Int
		}
		return value.NewNull(t), nil
	}
	// Timestamp arithmetic: ts - ts = int (micros); ts ± int = ts.
	if l.Typ == value.Timestamp || r.Typ == value.Timestamp {
		switch op {
		case "-":
			if l.Typ == value.Timestamp && r.Typ == value.Timestamp {
				return value.NewInt(l.I - r.I), nil
			}
			if l.Typ == value.Timestamp {
				return value.NewTimestamp(l.I - r.AsInt()), nil
			}
		case "+":
			if l.Typ == value.Timestamp && r.Typ != value.Timestamp {
				return value.NewTimestamp(l.I + r.AsInt()), nil
			}
			if r.Typ == value.Timestamp && l.Typ != value.Timestamp {
				return value.NewTimestamp(r.I + l.AsInt()), nil
			}
		}
		return value.Value{}, fmt.Errorf("invalid timestamp arithmetic %s", op)
	}
	if l.Typ == value.Int && r.Typ == value.Int {
		a, b := l.I, r.I
		switch op {
		case "+":
			return value.NewInt(a + b), nil
		case "-":
			return value.NewInt(a - b), nil
		case "*":
			return value.NewInt(a * b), nil
		case "/":
			if b == 0 {
				return value.NewNull(value.Int), nil
			}
			return value.NewInt(a / b), nil
		case "%":
			if b == 0 {
				return value.NewNull(value.Int), nil
			}
			return value.NewInt(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return value.NewFloat(a + b), nil
	case "-":
		return value.NewFloat(a - b), nil
	case "*":
		return value.NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return value.NewNull(value.Float), nil
		}
		return value.NewFloat(a / b), nil
	case "%":
		if b == 0 {
			return value.NewNull(value.Float), nil
		}
		return value.NewFloat(math.Mod(a, b)), nil
	}
	return value.Value{}, fmt.Errorf("unknown operator %s", op)
}

func (ev *Evaluator) evalCase(x *ast.Case, env Env) (value.Value, error) {
	var operand value.Value
	if x.Operand != nil {
		v, err := ev.Eval(x.Operand, env)
		if err != nil {
			return value.Value{}, err
		}
		operand = v
	}
	for _, w := range x.Whens {
		if x.Operand != nil {
			v, err := ev.Eval(w.Cond, env)
			if err != nil {
				return value.Value{}, err
			}
			if value.Equal(operand, v) {
				return ev.Eval(w.Result, env)
			}
		} else {
			ok, err := ev.EvalBool(w.Cond, env)
			if err != nil {
				return value.Value{}, err
			}
			if ok {
				return ev.Eval(w.Result, env)
			}
		}
	}
	if x.Else != nil {
		return ev.Eval(x.Else, env)
	}
	return value.NewNull(value.Unknown), nil
}

func (ev *Evaluator) evalCall(x *ast.FuncCall, env Env) (value.Value, error) {
	name := strings.ToUpper(x.Name)
	if fn, ok := builtins[name]; ok {
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ev.Eval(a, env)
			if err != nil {
				return value.Value{}, err
			}
			args[i] = v
		}
		return fn(ev, args)
	}
	if ev.Hooks.Call != nil {
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ev.Eval(a, env)
			if err != nil {
				return value.Value{}, err
			}
			args[i] = v
		}
		return ev.Hooks.Call(x.Name, args, env)
	}
	return value.Value{}, fmt.Errorf("unknown function %s", x.Name)
}

// builtinFn is a scalar builtin implementation.
type builtinFn func(ev *Evaluator, args []value.Value) (value.Value, error)

func need(args []value.Value, n int, name string) error {
	if len(args) != n {
		return fmt.Errorf("%s expects %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

func anyNull(args []value.Value) bool {
	for _, a := range args {
		if a.Null {
			return true
		}
	}
	return false
}

func float1(name string, f func(float64) float64) builtinFn {
	return func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if err := need(args, 1, name); err != nil {
			return value.Value{}, err
		}
		if anyNull(args) {
			return value.NewNull(value.Float), nil
		}
		return value.NewFloat(f(args[0].AsFloat())), nil
	}
}

// builtins is the scalar function library. The set covers everything
// the paper's examples call plus the usual SQL scalars.
var builtins = map[string]builtinFn{
	"ABS": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if err := need(args, 1, "ABS"); err != nil {
			return value.Value{}, err
		}
		if anyNull(args) {
			return value.NewNull(value.Float), nil
		}
		if args[0].Typ == value.Int {
			i := args[0].I
			if i < 0 {
				i = -i
			}
			return value.NewInt(i), nil
		}
		return value.NewFloat(math.Abs(args[0].AsFloat())), nil
	},
	"MOD": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if err := need(args, 2, "MOD"); err != nil {
			return value.Value{}, err
		}
		if anyNull(args) {
			return value.NewNull(value.Int), nil
		}
		if args[0].Typ == value.Int && args[1].Typ == value.Int {
			if args[1].I == 0 {
				return value.NewNull(value.Int), nil
			}
			return value.NewInt(args[0].I % args[1].I), nil
		}
		b := args[1].AsFloat()
		if b == 0 {
			return value.NewNull(value.Float), nil
		}
		return value.NewFloat(math.Mod(args[0].AsFloat(), b)), nil
	},
	"POWER": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if err := need(args, 2, "POWER"); err != nil {
			return value.Value{}, err
		}
		if anyNull(args) {
			return value.NewNull(value.Float), nil
		}
		return value.NewFloat(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
	},
	"SQRT":    float1("SQRT", math.Sqrt),
	"EXP":     float1("EXP", math.Exp),
	"LN":      float1("LN", math.Log),
	"LOG":     float1("LOG", math.Log10),
	"SIN":     float1("SIN", math.Sin),
	"COS":     float1("COS", math.Cos),
	"TAN":     float1("TAN", math.Tan),
	"ARCSIN":  float1("ARCSIN", math.Asin),
	"ASIN":    float1("ASIN", math.Asin),
	"ARCCOS":  float1("ARCCOS", math.Acos),
	"ACOS":    float1("ACOS", math.Acos),
	"ATAN":    float1("ATAN", math.Atan),
	"FLOOR":   float1("FLOOR", math.Floor),
	"CEIL":    float1("CEIL", math.Ceil),
	"CEILING": float1("CEILING", math.Ceil),
	"ROUND":   float1("ROUND", math.Round),
	"PI": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if err := need(args, 0, "PI"); err != nil {
			return value.Value{}, err
		}
		return value.NewFloat(math.Pi), nil
	},
	"RAND": func(ev *Evaluator, args []value.Value) (value.Value, error) {
		if len(args) != 0 {
			return value.Value{}, fmt.Errorf("RAND expects no arguments")
		}
		if ev.Rand == nil {
			ev.Rand = rand.New(rand.NewSource(42))
		}
		// SQL RAND() convention from the paper's usage MOD(RAND(),16):
		// a non-negative integer.
		return value.NewInt(int64(ev.Rand.Uint32())), nil
	},
	"GREATEST": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if len(args) == 0 {
			return value.NewNull(value.Unknown), nil
		}
		out := args[0]
		for _, a := range args[1:] {
			if a.Null {
				return value.NewNull(out.Typ), nil
			}
			if value.Compare(a, out) > 0 {
				out = a
			}
		}
		return out, nil
	},
	"LEAST": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if len(args) == 0 {
			return value.NewNull(value.Unknown), nil
		}
		out := args[0]
		for _, a := range args[1:] {
			if a.Null {
				return value.NewNull(out.Typ), nil
			}
			if value.Compare(a, out) < 0 {
				out = a
			}
		}
		return out, nil
	},
	"COALESCE": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		for _, a := range args {
			if !a.Null {
				return a, nil
			}
		}
		return value.NewNull(value.Unknown), nil
	},
	"UPPER": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if err := need(args, 1, "UPPER"); err != nil {
			return value.Value{}, err
		}
		if anyNull(args) {
			return value.NewNull(value.String), nil
		}
		return value.NewString(strings.ToUpper(args[0].S)), nil
	},
	"LOWER": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if err := need(args, 1, "LOWER"); err != nil {
			return value.Value{}, err
		}
		if anyNull(args) {
			return value.NewNull(value.String), nil
		}
		return value.NewString(strings.ToLower(args[0].S)), nil
	},
	"LENGTH": func(_ *Evaluator, args []value.Value) (value.Value, error) {
		if err := need(args, 1, "LENGTH"); err != nil {
			return value.Value{}, err
		}
		if anyNull(args) {
			return value.NewNull(value.Int), nil
		}
		return value.NewInt(int64(len(args[0].S))), nil
	},
}

// IsBuiltin reports whether name is a scalar builtin.
func IsBuiltin(name string) bool {
	_, ok := builtins[strings.ToUpper(name)]
	return ok
}
