package expr

import (
	"math"
	"testing"

	"repro/internal/sql/parser"
	"repro/internal/value"
)

func eval(t *testing.T, src string, env Env) value.Value {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if env == nil {
		env = &MapEnv{}
	}
	v, err := New().Eval(e, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2},     // integer division
		{"10.0 / 4", 2.5}, // float division
		{"10 % 3", 1},
		{"-5 + 2", -3},
		{"2 * 3.5", 7},
	}
	for _, c := range cases {
		if got := eval(t, c.src, nil).AsFloat(); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	if !eval(t, "1 / 0", nil).Null {
		t.Error("1/0 should be NULL")
	}
	if !eval(t, "1.5 / 0", nil).Null {
		t.Error("1.5/0 should be NULL")
	}
	if !eval(t, "MOD(3, 0)", nil).Null {
		t.Error("MOD(3,0) should be NULL")
	}
}

func TestNullPropagation(t *testing.T) {
	if !eval(t, "NULL + 1", nil).Null {
		t.Error("NULL + 1 should be NULL")
	}
	if !eval(t, "NULL = NULL", nil).Null {
		t.Error("NULL = NULL should be NULL (three-valued)")
	}
	if v := eval(t, "NULL IS NULL", nil); !v.AsBool() {
		t.Error("NULL IS NULL should be true")
	}
	if v := eval(t, "1 IS NOT NULL", nil); !v.AsBool() {
		t.Error("1 IS NOT NULL should be true")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	// FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
	if v := eval(t, "FALSE AND NULL", nil); v.Null || v.AsBool() {
		t.Error("FALSE AND NULL should be FALSE")
	}
	if v := eval(t, "TRUE OR NULL", nil); v.Null || !v.AsBool() {
		t.Error("TRUE OR NULL should be TRUE")
	}
	if v := eval(t, "TRUE AND NULL", nil); !v.Null {
		t.Error("TRUE AND NULL should be NULL")
	}
	if v := eval(t, "NOT NULL", nil); !v.Null {
		t.Error("NOT NULL should be NULL")
	}
}

func TestComparisons(t *testing.T) {
	truths := []string{
		"1 < 2", "2 <= 2", "3 > 2", "3 >= 3", "1 = 1", "1 <> 2",
		"2 BETWEEN 1 AND 3", "4 NOT BETWEEN 1 AND 3",
		"2 IN (1, 2, 3)", "5 NOT IN (1, 2, 3)",
		"'abc' < 'abd'",
	}
	for _, src := range truths {
		if v := eval(t, src, nil); !v.AsBool() {
			t.Errorf("%s should be true, got %v", src, v)
		}
	}
}

func TestCaseForms(t *testing.T) {
	env := &MapEnv{Vars: map[string]value.Value{"x": value.NewInt(3)}}
	if got := eval(t, "CASE WHEN x > 2 THEN 'big' ELSE 'small' END", env); got.S != "big" {
		t.Errorf("searched CASE = %v", got)
	}
	if got := eval(t, "CASE x WHEN 3 THEN 'three' WHEN 4 THEN 'four' END", env); got.S != "three" {
		t.Errorf("simple CASE = %v", got)
	}
	if got := eval(t, "CASE x WHEN 9 THEN 'nine' END", env); !got.Null {
		t.Errorf("no-match CASE should be NULL, got %v", got)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"ABS(-3)", 3},
		{"MOD(7, 3)", 1},
		{"POWER(2, 10)", 1024},
		{"SQRT(9)", 3},
		{"FLOOR(2.7)", 2},
		{"CEIL(2.1)", 3},
		{"GREATEST(1, 5, 3)", 5},
		{"LEAST(4, 2, 9)", 2},
		{"COALESCE(NULL, NULL, 7)", 7},
		{"LENGTH('abcd')", 4},
	}
	for _, c := range cases {
		if got := eval(t, c.src, nil).AsFloat(); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
	if got := eval(t, "PI()", nil).AsFloat(); math.Abs(got-math.Pi) > 1e-12 {
		t.Errorf("PI() = %v", got)
	}
	if got := eval(t, "ARCSIN(1.0)", nil).AsFloat(); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("ARCSIN(1) = %v", got)
	}
	if got := eval(t, "UPPER('ab')", nil).S; got != "AB" {
		t.Errorf("UPPER = %q", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := New()
	b := New()
	e, _ := parser.ParseExpr("RAND()")
	env := &MapEnv{}
	v1, _ := a.Eval(e, env)
	v2, _ := b.Eval(e, env)
	if v1.I != v2.I {
		t.Error("RAND() should be deterministic across fresh evaluators (fixed seed)")
	}
	v3, _ := a.Eval(e, env)
	if v1.I == v3.I {
		t.Error("RAND() should advance within one evaluator")
	}
	if v1.I < 0 {
		t.Error("RAND() should be non-negative (paper uses MOD(RAND(),16))")
	}
}

func TestCast(t *testing.T) {
	if got := eval(t, "CAST(3.7 AS INTEGER)", nil); got.Typ != value.Int || got.I != 3 {
		t.Errorf("CAST float->int = %v", got)
	}
	if got := eval(t, "CAST(3 AS FLOAT)", nil); got.Typ != value.Float || got.F != 3 {
		t.Errorf("CAST int->float = %v", got)
	}
}

func TestTimestampArithmetic(t *testing.T) {
	env := &MapEnv{Vars: map[string]value.Value{
		"t1": value.NewTimestamp(1000),
		"t2": value.NewTimestamp(4000),
	}}
	if got := eval(t, "t2 - t1", env); got.Typ != value.Int || got.I != 3000 {
		t.Errorf("ts - ts = %v, want 3000 micros", got)
	}
	if got := eval(t, "t1 + 500", env); got.Typ != value.Timestamp || got.I != 1500 {
		t.Errorf("ts + int = %v", got)
	}
}

func TestParamsAndUnbound(t *testing.T) {
	env := &MapEnv{Params: map[string]value.Value{"lo": value.NewInt(5)}}
	if got := eval(t, "?lo * 2", env); got.AsInt() != 10 {
		t.Errorf("param eval = %v", got)
	}
	e, _ := parser.ParseExpr("nosuchvar + 1")
	if _, err := New().Eval(e, &MapEnv{}); err == nil {
		t.Error("unbound name should error")
	}
	e, _ = parser.ParseExpr("?missing")
	if _, err := New().Eval(e, &MapEnv{}); err == nil {
		t.Error("unbound parameter should error")
	}
}

func TestEnvChaining(t *testing.T) {
	outer := &MapEnv{Vars: map[string]value.Value{"a": value.NewInt(1), "b": value.NewInt(2)}}
	inner := &MapEnv{Vars: map[string]value.Value{"a": value.NewInt(10)}, Parent: outer}
	if got := eval(t, "a + b", inner); got.AsInt() != 12 {
		t.Errorf("shadowing: got %v, want 12", got)
	}
}

func TestEvalBoolNullIsFalse(t *testing.T) {
	e, _ := parser.ParseExpr("NULL")
	ok, err := New().EvalBool(e, &MapEnv{})
	if err != nil || ok {
		t.Error("NULL predicate should be false")
	}
}

func TestStringConcat(t *testing.T) {
	if got := eval(t, "'a' || 'b'", nil).S; got != "ab" {
		t.Errorf("concat = %q", got)
	}
	if !eval(t, "'a' || NULL", nil).Null {
		t.Error("concat with NULL should be NULL")
	}
}
