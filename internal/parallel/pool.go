// Package parallel implements the morsel-driven execution substrate:
// a fixed worker pool that splits an index domain (rows of a scan,
// anchors of a tiling) into fixed-size morsels and lets workers pull
// morsels off a shared atomic cursor until the domain is exhausted.
// Work distribution is dynamic — fast workers take more morsels — so
// skewed per-morsel costs (sparse tiles, selective filters) still
// balance across cores, in the spirit of the morsel-driven parallelism
// literature the SciQL successor systems adopted.
package parallel

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/telemetry"
)

// DefaultMorsel is the default morsel size in rows. Large enough to
// amortize scheduling, small enough to balance skew.
const DefaultMorsel = 1024

// Morsel is one half-open chunk [Lo, Hi) of the work domain, tagged
// with the index of the worker executing it so callers can maintain
// per-worker state (partial aggregates, scratch environments) without
// locks.
type Morsel struct {
	Lo, Hi int
	Worker int
}

// Metrics is the pool's instrument set. All fields are optional
// (telemetry instruments no-op on nil receivers): Queue gauges the
// morsels scheduled but not yet claimed, InFlight the morsels
// currently executing, Morsels counts every morsel ever executed.
// Queue and InFlight are delta-correct across concurrent ForEach
// calls — both return to zero when the pool quiesces, which the
// goroutine-leak tests assert after cancellation and teardown.
type Metrics struct {
	Queue    *telemetry.Gauge
	InFlight *telemetry.Gauge
	Morsels  *telemetry.Counter
}

// Pool is a reusable worker pool of fixed width.
type Pool struct {
	workers int
	met     Metrics
}

// SetMetrics wires the pool's instruments; a setup-time call, like
// sizing the pool itself.
func (p *Pool) SetMetrics(m Metrics) { p.met = m }

// NewPool returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// ForEach splits [0, n) into morsels of the given size and runs fn
// over them on the pool's workers. fn is called concurrently from up
// to Workers() goroutines; calls tagged with the same Morsel.Worker
// are serialized. The first error stops scheduling of further morsels
// and is returned after all in-flight morsels finish.
func (p *Pool) ForEach(n, morsel int, fn func(m Morsel) error) error {
	return p.ForEachCtx(context.Background(), n, morsel, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: every worker
// checks ctx between morsels, so canceling the context stops a long
// scan after at most one in-flight morsel per worker. The first error
// — ctx.Err() when the context fired first — is returned after all
// in-flight morsels finish; no worker goroutines outlive the call. A
// panic inside fn is contained: it surfaces as a *governor.PanicError
// return value (carrying the panicking goroutine's stack), peers stop
// scheduling further morsels, and the WaitGroup still drains — the
// process never crashes and no waiter deadlocks.
func (p *Pool) ForEachCtx(ctx context.Context, n, morsel int, fn func(m Morsel) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if morsel <= 0 {
		morsel = DefaultMorsel
	}
	nw := p.workers
	total := (n + morsel - 1) / morsel
	if nw > total {
		nw = total
	}
	// Queue depth accounting: the whole domain enqueues up front, each
	// claimed morsel decrements, and the final adjustment removes
	// whatever was never claimed (error or cancellation) — so the gauge
	// returns to its prior level on every exit path.
	p.met.Queue.Add(int64(total))
	var claimed atomic.Int64
	defer func() { p.met.Queue.Add(claimed.Load() - int64(total)) }()
	runMorsel := func(m Morsel) (err error) {
		claimed.Add(1)
		p.met.Queue.Add(-1)
		p.met.Morsels.Inc()
		p.met.InFlight.Add(1)
		defer p.met.InFlight.Add(-1)
		// A panicking morsel must not crash the process or strand the
		// WaitGroup: recover converts it into an error, which the worker
		// loop propagates like any other failure — peers stop scheduling
		// and ForEachCtx returns it after in-flight morsels finish.
		defer func() {
			if r := recover(); r != nil {
				err = governor.NewPanicError(r, debug.Stack())
			}
		}()
		if err := faultinject.Hit("pool.worker"); err != nil {
			return err
		}
		return fn(m)
	}
	if nw <= 1 {
		// Degenerate single-worker domain: run inline, no goroutines.
		for lo := 0; lo < n; lo += morsel {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + morsel
			if hi > n {
				hi = n
			}
			if err := runMorsel(Morsel{Lo: lo, Hi: hi, Worker: 0}); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		once   sync.Once
		first  error
		wg     sync.WaitGroup
	)
	fail := func(err error) {
		once.Do(func() { first = err })
		failed.Store(true)
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !failed.Load() {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				lo := int(cursor.Add(int64(morsel))) - morsel
				if lo >= n {
					return
				}
				hi := lo + morsel
				if hi > n {
					hi = n
				}
				if err := runMorsel(Morsel{Lo: lo, Hi: hi, Worker: worker}); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}

// MorselFor picks a morsel size that yields a few morsels per worker
// for an n-element domain, clamped to [1, DefaultMorsel]. Small
// domains get small morsels so every worker sees work.
func (p *Pool) MorselFor(n int) int {
	m := n / (p.workers * 4)
	if m < 1 {
		m = 1
	}
	if m > DefaultMorsel {
		m = DefaultMorsel
	}
	return m
}
