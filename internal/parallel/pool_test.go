package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/governor"
)

// TestForEachCoversDomain checks every index is visited exactly once
// regardless of pool width and morsel size.
func TestForEachCoversDomain(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, morsel := range []int{1, 3, 64, 1024} {
			for _, n := range []int{0, 1, 5, 100, 1000} {
				p := NewPool(workers)
				var mu sync.Mutex
				counts := make([]int, n)
				err := p.ForEach(n, morsel, func(m Morsel) error {
					if m.Worker < 0 || m.Worker >= workers {
						t.Errorf("worker %d out of range [0,%d)", m.Worker, workers)
					}
					mu.Lock()
					for i := m.Lo; i < m.Hi; i++ {
						counts[i]++
					}
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("workers=%d morsel=%d n=%d: index %d visited %d times", workers, morsel, n, i, c)
					}
				}
			}
		}
	}
}

// TestForEachSameWorkerSerialized checks that morsels tagged with the
// same worker never run concurrently (per-worker state needs no
// locks).
func TestForEachSameWorkerSerialized(t *testing.T) {
	p := NewPool(4)
	busy := make([]sync.Mutex, p.Workers())
	err := p.ForEach(1000, 7, func(m Morsel) error {
		if !busy[m.Worker].TryLock() {
			t.Error("two morsels ran concurrently on one worker")
			return nil
		}
		defer busy[m.Worker].Unlock()
		s := 0
		for i := m.Lo; i < m.Hi; i++ {
			s += i
		}
		_ = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForEachError checks the first error is returned and scheduling
// stops.
func TestForEachError(t *testing.T) {
	p := NewPool(4)
	boom := errors.New("boom")
	err := p.ForEach(10000, 8, func(m Morsel) error {
		if m.Lo >= 64 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

// TestNewPoolDefaults checks n <= 0 resolves to at least one worker.
func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("pool has no workers")
	}
	if got := NewPool(3).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}

// TestMorselFor checks the sizing heuristic stays within bounds.
func TestMorselFor(t *testing.T) {
	p := NewPool(4)
	if m := p.MorselFor(3); m != 1 {
		t.Fatalf("tiny domain morsel = %d, want 1", m)
	}
	if m := p.MorselFor(10_000_000); m != DefaultMorsel {
		t.Fatalf("huge domain morsel = %d, want %d", m, DefaultMorsel)
	}
}

// TestForEachPanicContained asserts the satellite fix: a worker panic
// mid-morsel surfaces as a *governor.PanicError from ForEachCtx —
// peers stop, the WaitGroup drains, the process survives.
func TestForEachPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var ran atomic.Int64
		err := p.ForEach(1000, 16, func(m Morsel) error {
			if ran.Add(1) == 3 {
				panic("injected mid-morsel panic")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic did not surface as an error", workers)
		}
		var pe *governor.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %T (%v), want *governor.PanicError", workers, err, err)
		}
		if pe.Val != "injected mid-morsel panic" {
			t.Fatalf("workers=%d: PanicError.Val = %v", workers, pe.Val)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError carries no stack", workers)
		}
	}
}

// TestForEachFaultPoint checks the pool.worker fault point: armed, the
// injected error propagates like a worker failure and stops the run.
func TestForEachFaultPoint(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm("pool.worker", faultinject.Spec{Kind: faultinject.Error, AfterN: 2})
	p := NewPool(4)
	err := p.ForEach(1000, 16, func(m Morsel) error { return nil })
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
}

// TestForEachPanicFaultPoint arms pool.worker with a panic: the pool
// must still contain it and return a PanicError.
func TestForEachPanicFaultPoint(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm("pool.worker", faultinject.Spec{Kind: faultinject.Panic, AfterN: 1})
	p := NewPool(4)
	err := p.ForEach(1000, 16, func(m Morsel) error { return nil })
	var pe *governor.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *governor.PanicError", err, err)
	}
}
