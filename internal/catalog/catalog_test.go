package catalog

import (
	"testing"

	"repro/internal/value"
)

func TestTableAppendAndLookup(t *testing.T) {
	tbl := NewTable("t", []TableColumn{
		{Name: "a", Typ: value.Int},
		{Name: "b", Typ: value.String},
	})
	if err := tbl.Append([]value.Value{value.NewInt(1), value.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append([]value.Value{value.NewInt(2)}); err == nil {
		t.Fatal("short row should error")
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.ColIndex("B") != 1 || tbl.ColIndex("nope") != -1 {
		t.Fatal("ColIndex case-insensitive lookup failed")
	}
}

func TestSequenceNextAndDimension(t *testing.T) {
	s := &Sequence{Name: "rng", Typ: value.Int, Start: 0, Increment: 1, MaxValue: 7}
	if s.Next() != 0 || s.Next() != 1 {
		t.Fatal("sequence Next wrong")
	}
	d := s.Dimension("i")
	if d.Start != 0 || d.End != 8 || d.Step != 1 {
		t.Fatalf("dimension from sequence: %+v (MAXVALUE is inclusive)", d)
	}
	if d.Size() != 8 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestCatalogNameCollisions(t *testing.T) {
	c := New()
	if err := c.PutTable(NewTable("obj", nil)); err != nil {
		t.Fatal(err)
	}
	if err := c.PutSequence(&Sequence{Name: "OBJ"}); err == nil {
		t.Fatal("cross-kind name collision should error (case-insensitive)")
	}
	if _, ok := c.Table("Obj"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
}

func TestCatalogDrop(t *testing.T) {
	c := New()
	_ = c.PutTable(NewTable("t1", nil))
	if err := c.Drop("TABLE", "t1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("t1"); ok {
		t.Fatal("dropped table still visible")
	}
	if err := c.Drop("TABLE", "t1"); err == nil {
		t.Fatal("double drop should error")
	}
	if err := c.Drop("GIZMO", "x"); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestCatalogNames(t *testing.T) {
	c := New()
	_ = c.PutTable(NewTable("t1", nil))
	_ = c.PutSequence(&Sequence{Name: "s1"})
	c.PutFunction(&Function{Name: "f1"})
	if len(c.Names("TABLE")) != 1 || len(c.Names("SEQUENCE")) != 1 || len(c.Names("FUNCTION")) != 1 {
		t.Fatal("Names listing wrong")
	}
}
