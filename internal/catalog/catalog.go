// Package catalog holds the schema objects of a SciQL database:
// tables, arrays, sequences and functions. A TABLE denotes a
// (multi-)set of tuples; an ARRAY denotes a (sparsely) indexed
// collection of cells (§3.1) — the catalog keeps both side by side so
// queries can mix them freely.
package catalog

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/array"
	"repro/internal/bat"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// TableColumn describes one column of a relational table.
type TableColumn struct {
	Name       string
	Typ        value.Type
	PrimaryKey bool
	// Nested carries the element schema of ARRAY-typed columns.
	Nested *array.Schema
}

// Table is an in-memory relational table backed by BAT columns.
type Table struct {
	Name string
	Cols []TableColumn
	Vecs []bat.Vector
}

// NewTable allocates an empty table.
func NewTable(name string, cols []TableColumn) *Table {
	t := &Table{Name: name, Cols: cols}
	t.Vecs = make([]bat.Vector, len(cols))
	for i, c := range cols {
		t.Vecs[i] = bat.New(c.Typ, 0)
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Vecs) == 0 {
		return 0
	}
	return t.Vecs[0].Len()
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Append adds a row; vals must align with Cols.
func (t *Table) Append(vals []value.Value) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("table %s: expected %d values, got %d", t.Name, len(t.Cols), len(vals))
	}
	for i, v := range vals {
		t.Vecs[i].Append(v)
	}
	return nil
}

// Sequence is a SQL SEQUENCE usable as a dimension range (§3.1).
type Sequence struct {
	Name      string
	Typ       value.Type
	Start     int64
	Increment int64
	// MaxValue is inclusive, per CREATE SEQUENCE ... MAXVALUE n.
	MaxValue int64
	next     int64
	primed   bool
}

// Next returns the next sequence value.
func (s *Sequence) Next() int64 {
	if !s.primed {
		s.next = s.Start
		s.primed = true
	}
	v := s.next
	s.next += s.Increment
	return v
}

// Dimension converts the sequence into a dimension range. MAXVALUE is
// inclusive so End is MaxValue+Increment (exclusive form).
func (s *Sequence) Dimension(name string) array.Dimension {
	return array.Dimension{
		Name:  name,
		Typ:   s.Typ,
		Start: s.Start,
		End:   s.MaxValue + s.Increment,
		Step:  s.Increment,
	}
}

// Function is a catalog entry for white-box (PSM) and black-box
// (EXTERNAL NAME) functions (§6).
type Function struct {
	Name string
	Def  *ast.CreateFunction
	// External resolves EXTERNAL NAME entries to a registered Go
	// implementation; nil for white-box functions.
	External func(args []value.Value) (value.Value, error)
}

// Catalog is the schema root. It is safe for concurrent readers with
// a single writer, which matches the engine's execution model.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	arrays map[string]*array.Array
	seqs   map[string]*Sequence
	funcs  map[string]*Function
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		arrays: make(map[string]*array.Array),
		seqs:   make(map[string]*Sequence),
		funcs:  make(map[string]*Function),
	}
}

func key(name string) string { return strings.ToLower(name) }

// PutTable registers a table; it errors if any object has the name.
func (c *Catalog) PutTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkFree(t.Name); err != nil {
		return err
	}
	c.tables[key(t.Name)] = t
	return nil
}

// PutArray registers an array.
func (c *Catalog) PutArray(a *array.Array) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkFree(a.Name); err != nil {
		return err
	}
	c.arrays[key(a.Name)] = a
	return nil
}

// PutSequence registers a sequence.
func (c *Catalog) PutSequence(s *Sequence) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkFree(s.Name); err != nil {
		return err
	}
	c.seqs[key(s.Name)] = s
	return nil
}

// PutFunction registers a function (replacing any previous version).
func (c *Catalog) PutFunction(f *Function) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.funcs[key(f.Name)] = f
}

func (c *Catalog) checkFree(name string) error {
	k := key(name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("object %s already exists (table)", name)
	}
	if _, ok := c.arrays[k]; ok {
		return fmt.Errorf("object %s already exists (array)", name)
	}
	if _, ok := c.seqs[k]; ok {
		return fmt.Errorf("object %s already exists (sequence)", name)
	}
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// Array looks up an array by name.
func (c *Catalog) Array(name string) (*array.Array, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.arrays[key(name)]
	return a, ok
}

// Sequence looks up a sequence by name.
func (c *Catalog) Sequence(name string) (*Sequence, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.seqs[key(name)]
	return s, ok
}

// Function looks up a function by name.
func (c *Catalog) Function(name string) (*Function, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[key(name)]
	return f, ok
}

// ReplaceArray swaps an array's definition in place (ALTER ARRAY).
func (c *Catalog) ReplaceArray(a *array.Array) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.arrays[key(a.Name)] = a
}

// Drop removes the named object of the given kind.
func (c *Catalog) Drop(kind, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	switch kind {
	case "TABLE":
		if _, ok := c.tables[k]; !ok {
			return fmt.Errorf("no such table %s", name)
		}
		delete(c.tables, k)
	case "ARRAY":
		if _, ok := c.arrays[k]; !ok {
			return fmt.Errorf("no such array %s", name)
		}
		delete(c.arrays, k)
	case "SEQUENCE":
		if _, ok := c.seqs[k]; !ok {
			return fmt.Errorf("no such sequence %s", name)
		}
		delete(c.seqs, k)
	case "FUNCTION":
		if _, ok := c.funcs[k]; !ok {
			return fmt.Errorf("no such function %s", name)
		}
		delete(c.funcs, k)
	default:
		return fmt.Errorf("unknown object kind %s", kind)
	}
	return nil
}

// Names lists all object names of a kind (for the REPL's \d command).
func (c *Catalog) Names(kind string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	switch kind {
	case "TABLE":
		for _, t := range c.tables {
			out = append(out, t.Name)
		}
	case "ARRAY":
		for _, a := range c.arrays {
			out = append(out, a.Name)
		}
	case "SEQUENCE":
		for _, s := range c.seqs {
			out = append(out, s.Name)
		}
	case "FUNCTION":
		for _, f := range c.funcs {
			out = append(out, f.Name)
		}
	}
	return out
}
