// Package catalog holds the schema objects of a SciQL database:
// tables, arrays, sequences and functions. A TABLE denotes a
// (multi-)set of tuples; an ARRAY denotes a (sparsely) indexed
// collection of cells (§3.1) — the catalog keeps both side by side so
// queries can mix them freely.
//
// The catalog is a multi-version store: the root is an immutable
// Snapshot swapped atomically on commit. Readers pin a Snapshot for
// the duration of a statement (or an explicit transaction) and see a
// stable schema and stable array contents no matter what concurrent
// writers do; writers build a new version through a copy-on-write
// Mutation — cloning each object before the first write — and commit
// by swapping the root. Writers are serialized only against other
// writers: autocommit statements hold the writer lock for the whole
// statement, while explicit transactions accumulate privately and
// commit optimistically with first-committer-wins conflict detection
// by object version.
package catalog

import (
	"errors"
	"fmt"
	"maps"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/bat"
	"repro/internal/faultinject"
	"repro/internal/sql/ast"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// ErrConflict is returned by Mutation.Commit when another transaction
// committed a conflicting version of an object this one wrote (first
// committer wins).
var ErrConflict = errors.New("transaction conflict: concurrent update committed first")

// TableColumn describes one column of a relational table.
type TableColumn struct {
	Name       string
	Typ        value.Type
	PrimaryKey bool
	// Nested carries the element schema of ARRAY-typed columns.
	Nested *array.Schema
}

// Table is an in-memory relational table backed by BAT columns.
type Table struct {
	Name string
	Cols []TableColumn
	Vecs []bat.Vector
}

// NewTable allocates an empty table.
func NewTable(name string, cols []TableColumn) *Table {
	t := &Table{Name: name, Cols: cols}
	t.Vecs = make([]bat.Vector, len(cols))
	for i, c := range cols {
		t.Vecs[i] = bat.New(c.Typ, 0)
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Vecs) == 0 {
		return 0
	}
	return t.Vecs[0].Len()
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Append adds a row; vals must align with Cols.
func (t *Table) Append(vals []value.Value) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("table %s: expected %d values, got %d", t.Name, len(t.Cols), len(vals))
	}
	for i, v := range vals {
		t.Vecs[i].Append(v)
	}
	return nil
}

// Clone deep-copies the table (column vectors included) so a writer
// can mutate its private version while readers keep the published one.
func (t *Table) Clone() *Table {
	nt := &Table{Name: t.Name, Cols: append([]TableColumn(nil), t.Cols...)}
	nt.Vecs = make([]bat.Vector, len(t.Vecs))
	for i, v := range t.Vecs {
		nt.Vecs[i] = v.Clone()
	}
	return nt
}

// Sequence is a SQL SEQUENCE usable as a dimension range (§3.1). Its
// counter is shared, atomic and non-transactional: NEXT values drawn
// inside a rolled-back transaction are not returned to the sequence,
// as in every SQL database.
type Sequence struct {
	Name      string
	Typ       value.Type
	Start     int64
	Increment int64
	// MaxValue is inclusive, per CREATE SEQUENCE ... MAXVALUE n.
	MaxValue int64
	mu       sync.Mutex
	next     int64
	primed   bool
}

// Next returns the next sequence value.
func (s *Sequence) Next() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.primed {
		s.next = s.Start
		s.primed = true
	}
	v := s.next
	s.next += s.Increment
	return v
}

// Dimension converts the sequence into a dimension range. MAXVALUE is
// inclusive so End is MaxValue+Increment (exclusive form).
func (s *Sequence) Dimension(name string) array.Dimension {
	return array.Dimension{
		Name:  name,
		Typ:   s.Typ,
		Start: s.Start,
		End:   s.MaxValue + s.Increment,
		Step:  s.Increment,
	}
}

// Function is a catalog entry for white-box (PSM) and black-box
// (EXTERNAL NAME) functions (§6).
type Function struct {
	Name string
	Def  *ast.CreateFunction
	// External resolves EXTERNAL NAME entries to a registered Go
	// implementation; nil for white-box functions.
	External func(args []value.Value) (value.Value, error)
}

func key(name string) string { return strings.ToLower(name) }

// fnKey namespaces function names in the per-object version map
// (functions live in their own namespace, unlike tables/arrays/seqs).
func fnKey(name string) string { return "fn:" + key(name) }

// --- snapshots --------------------------------------------------------------

// Snapshot is one immutable catalog version. All lookup methods are
// lock-free and safe for any number of concurrent readers; the maps
// are never mutated after the snapshot is published.
type Snapshot struct {
	version int64
	// schemaVer changes only when the set or shape of objects changes
	// (CREATE/ALTER/DROP/replace), not on data writes; plan caches
	// stamp against it so DML commits don't evict plans.
	schemaVer int64
	tables    map[string]*Table
	arrays    map[string]*array.Array
	seqs      map[string]*Sequence
	funcs     map[string]*Function
	// vers tracks the per-object version (the snapshot version that
	// last wrote the name). Entries survive drops, so a transaction
	// that wrote a since-dropped object still conflicts.
	vers map[string]int64
}

// Version returns the snapshot's unique version stamp. Stamps are
// drawn from one monotone counter shared by committed snapshots and
// in-flight mutation views, so equal stamps imply identical contents.
func (s *Snapshot) Version() int64 { return s.version }

// SchemaVersion returns the stamp of the snapshot's schema: it
// changes on DDL (create/alter/drop/replace) but not on data writes,
// so plan-shaped caches keyed on it survive DML.
func (s *Snapshot) SchemaVersion() int64 { return s.schemaVer }

// Table looks up a table by name.
func (s *Snapshot) Table(name string) (*Table, bool) {
	t, ok := s.tables[key(name)]
	return t, ok
}

// Array looks up an array by name.
func (s *Snapshot) Array(name string) (*array.Array, bool) {
	a, ok := s.arrays[key(name)]
	return a, ok
}

// Sequence looks up a sequence by name.
func (s *Snapshot) Sequence(name string) (*Sequence, bool) {
	q, ok := s.seqs[key(name)]
	return q, ok
}

// Function looks up a function by name.
func (s *Snapshot) Function(name string) (*Function, bool) {
	f, ok := s.funcs[key(name)]
	return f, ok
}

// Names lists all object names of a kind (for the REPL's \d command).
func (s *Snapshot) Names(kind string) []string {
	var out []string
	switch kind {
	case "TABLE":
		for _, t := range s.tables {
			out = append(out, t.Name)
		}
	case "ARRAY":
		for _, a := range s.arrays {
			out = append(out, a.Name)
		}
	case "SEQUENCE":
		for _, q := range s.seqs {
			out = append(out, q.Name)
		}
	case "FUNCTION":
		for _, f := range s.funcs {
			out = append(out, f.Name)
		}
	}
	return out
}

func (s *Snapshot) checkFree(name string) error {
	k := key(name)
	if _, ok := s.tables[k]; ok {
		return fmt.Errorf("object %s already exists (table)", name)
	}
	if _, ok := s.arrays[k]; ok {
		return fmt.Errorf("object %s already exists (array)", name)
	}
	if _, ok := s.seqs[k]; ok {
		return fmt.Errorf("object %s already exists (sequence)", name)
	}
	return nil
}

func (s *Snapshot) cloneMaps() *Snapshot {
	return &Snapshot{
		schemaVer: s.schemaVer,
		tables:    maps.Clone(s.tables),
		arrays:    maps.Clone(s.arrays),
		seqs:      maps.Clone(s.seqs),
		funcs:     maps.Clone(s.funcs),
		vers:      maps.Clone(s.vers),
	}
}

// --- catalog root -----------------------------------------------------------

// Catalog is the schema root: an atomically swapped pointer to the
// current Snapshot plus the writer lock. Readers never block.
type Catalog struct {
	root    atomic.Pointer[Snapshot]
	writeMu sync.Mutex
	ver     atomic.Int64
	// cloneCount/cloneBytes count copy-on-write object privatizations
	// (ArrayForWrite, TableForWrite). Both are optional — telemetry
	// instruments no-op on nil receivers — and cloneBytes is a
	// documented estimate: 16 bytes per cell value, dimensions and
	// attributes alike.
	cloneCount *telemetry.Counter
	cloneBytes *telemetry.Counter
}

// SetMetrics wires the catalog's copy-on-write clone counters; a
// setup-time call made once per database.
func (c *Catalog) SetMetrics(count, bytes *telemetry.Counter) {
	c.cloneCount, c.cloneBytes = count, bytes
}

// New returns an empty catalog.
func New() *Catalog {
	c := &Catalog{}
	v := c.nextVer()
	c.root.Store(&Snapshot{
		version:   v,
		schemaVer: v,
		tables:    map[string]*Table{},
		arrays:    map[string]*array.Array{},
		seqs:      map[string]*Sequence{},
		funcs:     map[string]*Function{},
		vers:      map[string]int64{},
	})
	return c
}

func (c *Catalog) nextVer() int64 { return c.ver.Add(1) }

// Snapshot returns the current catalog version for pinned reads.
func (c *Catalog) Snapshot() *Snapshot { return c.root.Load() }

// Legacy single-object accessors read through the current snapshot.
// They exist for bulk loaders, tools and tests; engine execution pins
// one snapshot per statement instead.

// Table looks up a table in the current snapshot.
func (c *Catalog) Table(name string) (*Table, bool) { return c.Snapshot().Table(name) }

// Array looks up an array in the current snapshot.
func (c *Catalog) Array(name string) (*array.Array, bool) { return c.Snapshot().Array(name) }

// Sequence looks up a sequence in the current snapshot.
func (c *Catalog) Sequence(name string) (*Sequence, bool) { return c.Snapshot().Sequence(name) }

// Function looks up a function in the current snapshot.
func (c *Catalog) Function(name string) (*Function, bool) { return c.Snapshot().Function(name) }

// Names lists object names of a kind in the current snapshot.
func (c *Catalog) Names(kind string) []string { return c.Snapshot().Names(kind) }

// Version returns the current snapshot's version stamp.
func (c *Catalog) Version() int64 { return c.Snapshot().Version() }

// PutTable registers a table as its own committed version; it errors
// if any object has the name.
func (c *Catalog) PutTable(t *Table) error {
	return c.autocommit(func(m *Mutation) error { return m.PutTable(t) })
}

// PutArray registers an array as its own committed version.
func (c *Catalog) PutArray(a *array.Array) error {
	return c.autocommit(func(m *Mutation) error { return m.PutArray(a) })
}

// PutSequence registers a sequence as its own committed version.
func (c *Catalog) PutSequence(s *Sequence) error {
	return c.autocommit(func(m *Mutation) error { return m.PutSequence(s) })
}

// PutFunction registers a function (replacing any previous version).
func (c *Catalog) PutFunction(f *Function) {
	_ = c.autocommit(func(m *Mutation) error { m.PutFunction(f); return nil })
}

// ReplaceArray swaps an array's definition as its own committed
// version (ALTER ARRAY outside a transaction).
func (c *Catalog) ReplaceArray(a *array.Array) {
	_ = c.autocommit(func(m *Mutation) error { m.ReplaceArray(a); return nil })
}

// Drop removes the named object of the given kind as its own
// committed version.
func (c *Catalog) Drop(kind, name string) error {
	return c.autocommit(func(m *Mutation) error { return m.Drop(kind, name) })
}

// autocommit wraps one catalog edit in an exclusive mutation.
func (c *Catalog) autocommit(fn func(m *Mutation) error) error {
	m := c.BeginExclusive()
	if err := fn(m); err != nil {
		m.Abort()
		return err
	}
	return m.Commit()
}

// --- mutations --------------------------------------------------------------

// Mutation is a copy-on-write edit of the catalog: a private working
// snapshot whose maps were copied from the base (objects stay shared
// until first write). Reads through View see the mutation's own
// writes over the pinned base. Exactly one of Commit or Abort must be
// called; the mutation is unusable afterwards.
type Mutation struct {
	c    *Catalog
	base *Snapshot
	work *Snapshot
	// baseVers records each written object's version in the base
	// snapshot (0 when absent) for first-committer-wins validation.
	baseVers map[string]int64
	changed  map[string]bool
	// cloned marks arrays/tables already privatized by a ForWrite.
	cloned    map[string]bool
	exclusive bool
	done      bool
	// schemaChanged records whether any touch was a schema write.
	schemaChanged bool
}

// BeginExclusive starts a pessimistic mutation: the writer lock is
// held until Commit/Abort, so the commit can never conflict. Used for
// autocommit statements, which must not fail with a retryable error.
func (c *Catalog) BeginExclusive() *Mutation { return c.begin(true) }

// BeginTx starts an optimistic mutation for an explicit transaction:
// writes accumulate privately and Commit validates first-committer-
// wins against whatever committed in the meantime.
func (c *Catalog) BeginTx() *Mutation { return c.begin(false) }

func (c *Catalog) begin(exclusive bool) *Mutation {
	if exclusive {
		c.writeMu.Lock()
	}
	base := c.root.Load()
	work := base.cloneMaps()
	work.version = c.nextVer()
	return &Mutation{
		c:         c,
		base:      base,
		work:      work,
		baseVers:  map[string]int64{},
		changed:   map[string]bool{},
		cloned:    map[string]bool{},
		exclusive: exclusive,
	}
}

// View returns the mutation's working snapshot: the pinned base plus
// this mutation's own writes. The pointer stays valid (and keeps
// reflecting later writes) until Commit/Abort.
func (m *Mutation) View() *Snapshot { return m.work }

// Base returns the snapshot the mutation (transaction) pinned at
// begin time.
func (m *Mutation) Base() *Snapshot { return m.base }

// touch records a write to an object key and refreshes the working
// snapshot's version stamps; schema writes (create/alter/drop) also
// bump the schema version, data writes don't.
func (m *Mutation) touch(k string, schema bool) {
	if !m.changed[k] {
		m.changed[k] = true
		m.baseVers[k] = m.base.vers[k]
	}
	v := m.c.nextVer()
	m.work.vers[k] = v
	m.work.version = v
	if schema {
		m.work.schemaVer = v
		m.schemaChanged = true
	}
}

// ArrayForWrite returns a private, mutable version of the named
// array: the first call clones the store (copy-on-write), later calls
// return the same clone. ok is false when the name is not an array.
func (m *Mutation) ArrayForWrite(name string) (*array.Array, bool) {
	k := key(name)
	a, ok := m.work.arrays[k]
	if !ok {
		return nil, false
	}
	if !m.cloned[k] {
		a = a.Clone()
		m.work.arrays[k] = a
		m.cloned[k] = true
		m.touch(k, false)
		m.c.cloneCount.Inc()
		m.c.cloneBytes.Add(int64(a.Store.Len()) * int64(len(a.Schema.Dims)+len(a.Schema.Attrs)) * 16)
	}
	return a, true
}

// TableForWrite is ArrayForWrite for relational tables.
func (m *Mutation) TableForWrite(name string) (*Table, bool) {
	k := key(name)
	t, ok := m.work.tables[k]
	if !ok {
		return nil, false
	}
	ck := "tbl:" + k
	if !m.cloned[ck] {
		t = t.Clone()
		m.work.tables[k] = t
		m.cloned[ck] = true
		m.touch(k, false)
		m.c.cloneCount.Inc()
		m.c.cloneBytes.Add(int64(t.NumRows()) * int64(len(t.Cols)) * 16)
	}
	return t, true
}

// PutTable registers a table in the working snapshot.
func (m *Mutation) PutTable(t *Table) error {
	if err := m.work.checkFree(t.Name); err != nil {
		return err
	}
	k := key(t.Name)
	m.work.tables[k] = t
	m.cloned["tbl:"+k] = true // freshly created: already private
	m.touch(k, true)
	return nil
}

// PutArray registers an array in the working snapshot.
func (m *Mutation) PutArray(a *array.Array) error {
	if err := m.work.checkFree(a.Name); err != nil {
		return err
	}
	k := key(a.Name)
	m.work.arrays[k] = a
	m.cloned[k] = true // freshly created: already private
	m.touch(k, true)
	return nil
}

// PutSequence registers a sequence in the working snapshot.
func (m *Mutation) PutSequence(s *Sequence) error {
	if err := m.work.checkFree(s.Name); err != nil {
		return err
	}
	k := key(s.Name)
	m.work.seqs[k] = s
	m.touch(k, true)
	return nil
}

// PutFunction registers a function (replacing any previous version).
func (m *Mutation) PutFunction(f *Function) {
	m.work.funcs[key(f.Name)] = f
	m.touch(fnKey(f.Name), true)
}

// ReplaceArray swaps an array's definition in the working snapshot
// (ALTER ARRAY builds a fresh array rather than mutating in place).
func (m *Mutation) ReplaceArray(a *array.Array) {
	k := key(a.Name)
	m.work.arrays[k] = a
	m.cloned[k] = true
	m.touch(k, true)
}

// Drop removes the named object of the given kind from the working
// snapshot.
func (m *Mutation) Drop(kind, name string) error {
	k := key(name)
	switch kind {
	case "TABLE":
		if _, ok := m.work.tables[k]; !ok {
			return fmt.Errorf("no such table %s", name)
		}
		delete(m.work.tables, k)
	case "ARRAY":
		if _, ok := m.work.arrays[k]; !ok {
			return fmt.Errorf("no such array %s", name)
		}
		delete(m.work.arrays, k)
	case "SEQUENCE":
		if _, ok := m.work.seqs[k]; !ok {
			return fmt.Errorf("no such sequence %s", name)
		}
		delete(m.work.seqs, k)
	case "FUNCTION":
		if _, ok := m.work.funcs[k]; !ok {
			return fmt.Errorf("no such function %s", name)
		}
		delete(m.work.funcs, k)
		m.touch(fnKey(name), true)
		return nil
	default:
		return fmt.Errorf("unknown object kind %s", kind)
	}
	m.touch(k, true)
	return nil
}

// Savepoint captures the mutation's state at a statement boundary,
// and forces the next write to re-clone its object: a statement that
// fails mid-execution rolls back to exactly this state (statement
// atomicity inside a transaction), with every object it touched still
// unmutated because the statement wrote to fresh clones.
type Savepoint struct {
	work          *Snapshot
	baseVers      map[string]int64
	changed       map[string]bool
	cloned        map[string]bool
	schemaChanged bool
}

// Savepoint begins a statement inside the mutation.
func (m *Mutation) Savepoint() *Savepoint {
	sp := &Savepoint{
		work:     m.work.cloneMaps(),
		baseVers: maps.Clone(m.baseVers),
		changed:  maps.Clone(m.changed),
		cloned:   m.cloned,
	}
	sp.work.version = m.work.version
	sp.schemaChanged = m.schemaChanged
	// Reset the clone marks: the statement's first write to any object
	// clones it afresh, so the savepoint's object pointers stay
	// unmutated whatever the statement does before failing.
	m.cloned = map[string]bool{}
	return sp
}

// RollbackTo discards everything the mutation did after the
// savepoint.
func (m *Mutation) RollbackTo(sp *Savepoint) {
	m.work = sp.work
	m.baseVers = sp.baseVers
	m.changed = sp.changed
	m.cloned = sp.cloned
	m.schemaChanged = sp.schemaChanged
}

// Commit publishes the mutation. Exclusive mutations install their
// working snapshot directly (the writer lock was held throughout).
// Optimistic mutations validate first-committer-wins per written
// object — ErrConflict when another commit got there first — and
// rebase their changes onto the latest root otherwise, so disjoint
// transactions commit concurrently.
func (m *Mutation) Commit() error {
	if m.done {
		return errors.New("catalog: mutation already finished")
	}
	// The commit fault point fires before the mutation is marked done,
	// so the caller's deferred Abort still runs — releasing the writer
	// lock — whether the injected failure is an error or a panic.
	if err := faultinject.Hit("catalog.commit"); err != nil {
		return err
	}
	m.done = true
	if m.exclusive {
		if len(m.changed) > 0 {
			m.c.root.Store(m.work)
		}
		m.c.writeMu.Unlock()
		return nil
	}
	if len(m.changed) == 0 {
		return nil // read-only transaction
	}
	m.c.writeMu.Lock()
	defer m.c.writeMu.Unlock()
	cur := m.c.root.Load()
	if cur == m.base {
		m.c.root.Store(m.work)
		return nil
	}
	for k := range m.changed {
		if cur.vers[k] != m.baseVers[k] {
			return fmt.Errorf("%w (object %s)", ErrConflict, strings.TrimPrefix(k, "fn:"))
		}
	}
	merged := cur.cloneMaps()
	merged.version = m.c.nextVer()
	if m.schemaChanged {
		merged.schemaVer = merged.version
	}
	for k := range m.changed {
		merged.vers[k] = m.work.vers[k]
		if fn, ok := strings.CutPrefix(k, "fn:"); ok {
			applyEntry(merged.funcs, m.work.funcs, fn)
			continue
		}
		applyEntry(merged.tables, m.work.tables, k)
		applyEntry(merged.arrays, m.work.arrays, k)
		applyEntry(merged.seqs, m.work.seqs, k)
	}
	m.c.root.Store(merged)
	return nil
}

// Abort discards the mutation.
func (m *Mutation) Abort() {
	if m.done {
		return
	}
	m.done = true
	if m.exclusive {
		m.c.writeMu.Unlock()
	}
}

// applyEntry copies the working state of one key into the merged map:
// present in work → overwrite, absent in work → delete (dropped).
func applyEntry[T any](dst, work map[string]T, k string) {
	if v, ok := work[k]; ok {
		dst[k] = v
	} else {
		delete(dst, k)
	}
}
