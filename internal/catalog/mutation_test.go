package catalog

import (
	"errors"
	"testing"

	"repro/internal/array"
	"repro/internal/storage"
	"repro/internal/value"
)

func testArray(t *testing.T, name string) *array.Array {
	t.Helper()
	sch := array.Schema{
		Dims:  []array.Dimension{{Name: "x", Typ: value.Int, Start: 0, End: 4, Step: 1}},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	st, err := storage.New(sch, storage.Hints{})
	if err != nil {
		t.Fatal(err)
	}
	return &array.Array{Name: name, Schema: sch, Store: st}
}

// TestSnapshotIsolatesReads pins the core MVCC property: a snapshot
// taken before a commit keeps serving the old version.
func TestSnapshotIsolatesReads(t *testing.T) {
	c := New()
	if err := c.PutArray(testArray(t, "a")); err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()

	m := c.BeginTx()
	w, ok := m.ArrayForWrite("a")
	if !ok {
		t.Fatal("array missing in mutation view")
	}
	if err := w.Set([]int64{1}, 0, value.NewFloat(7)); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writes are invisible outside the mutation.
	cur, _ := c.Array("a")
	if got := cur.Get([]int64{1}, 0); !got.Null {
		t.Fatalf("uncommitted write visible: %v", got)
	}
	// The mutation's own view sees them.
	mv, _ := m.View().Array("a")
	if got := mv.Get([]int64{1}, 0); got.Null || got.F != 7 {
		t.Fatalf("mutation view = %v, want 7", got)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed version is live; the pinned snapshot still serves the
	// old one.
	cur, _ = c.Array("a")
	if got := cur.Get([]int64{1}, 0); got.Null || got.F != 7 {
		t.Fatalf("committed write lost: %v", got)
	}
	old, _ := before.Array("a")
	if got := old.Get([]int64{1}, 0); !got.Null {
		t.Fatalf("pinned snapshot observed the commit: %v", got)
	}
	if before.Version() == c.Version() {
		t.Fatal("commit did not bump the catalog version")
	}
}

// TestFirstCommitterWins pins the conflict rule: two transactions
// writing the same array — the second Commit fails with ErrConflict.
func TestFirstCommitterWins(t *testing.T) {
	c := New()
	if err := c.PutArray(testArray(t, "a")); err != nil {
		t.Fatal(err)
	}
	m1 := c.BeginTx()
	m2 := c.BeginTx()
	w1, _ := m1.ArrayForWrite("a")
	w2, _ := m2.ArrayForWrite("a")
	_ = w1.Set([]int64{0}, 0, value.NewFloat(1))
	_ = w2.Set([]int64{0}, 0, value.NewFloat(2))
	if err := m1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	if err := m2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer error = %v, want ErrConflict", err)
	}
	// The winner's write survives.
	a, _ := c.Array("a")
	if got := a.Get([]int64{0}, 0); got.F != 1 {
		t.Fatalf("surviving value = %v, want 1", got)
	}
}

// TestDisjointTransactionsRebase pins the other half of the rule:
// transactions writing different objects both commit, even when the
// root moved under the later one.
func TestDisjointTransactionsRebase(t *testing.T) {
	c := New()
	if err := c.PutArray(testArray(t, "a")); err != nil {
		t.Fatal(err)
	}
	if err := c.PutArray(testArray(t, "b")); err != nil {
		t.Fatal(err)
	}
	m1 := c.BeginTx()
	m2 := c.BeginTx()
	w1, _ := m1.ArrayForWrite("a")
	w2, _ := m2.ArrayForWrite("b")
	_ = w1.Set([]int64{0}, 0, value.NewFloat(1))
	_ = w2.Set([]int64{2}, 0, value.NewFloat(2))
	if err := m1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Commit(); err != nil {
		t.Fatalf("disjoint commit rebased onto the new root should succeed: %v", err)
	}
	a, _ := c.Array("a")
	b, _ := c.Array("b")
	if a.Get([]int64{0}, 0).F != 1 || b.Get([]int64{2}, 0).F != 2 {
		t.Fatal("one of the disjoint commits was lost")
	}
}

// TestCreateSameNameConflicts: both transactions CREATE the same
// name; the later committer conflicts instead of silently replacing.
func TestCreateSameNameConflicts(t *testing.T) {
	c := New()
	m1 := c.BeginTx()
	m2 := c.BeginTx()
	if err := m1.PutArray(testArray(t, "fresh")); err != nil {
		t.Fatal(err)
	}
	if err := m2.PutArray(testArray(t, "fresh")); err != nil {
		t.Fatal(err) // base snapshot had no such name: allowed until commit
	}
	if err := m1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second CREATE commit error = %v, want ErrConflict", err)
	}
}

// TestDropInTransaction: a drop is invisible until commit and
// conflicts with a concurrent write of the dropped object.
func TestDropInTransaction(t *testing.T) {
	c := New()
	if err := c.PutArray(testArray(t, "a")); err != nil {
		t.Fatal(err)
	}
	m1 := c.BeginTx()
	if err := m1.Drop("ARRAY", "a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m1.View().Array("a"); ok {
		t.Fatal("drop not visible in the mutation view")
	}
	if _, ok := c.Array("a"); !ok {
		t.Fatal("uncommitted drop leaked")
	}
	m2 := c.BeginTx()
	w, _ := m2.ArrayForWrite("a")
	_ = w.Set([]int64{0}, 0, value.NewFloat(9))
	if err := m1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Array("a"); ok {
		t.Fatal("committed drop did not remove the array")
	}
	if err := m2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("write to concurrently dropped array: err = %v, want ErrConflict", err)
	}
}

// TestAbortDiscards: an aborted mutation leaves no trace.
func TestAbortDiscards(t *testing.T) {
	c := New()
	m := c.BeginExclusive()
	if err := m.PutArray(testArray(t, "tmp")); err != nil {
		t.Fatal(err)
	}
	m.Abort()
	if _, ok := c.Array("tmp"); ok {
		t.Fatal("aborted exclusive mutation published")
	}
	// The writer lock was released: the next writer proceeds.
	if err := c.PutArray(testArray(t, "tmp")); err != nil {
		t.Fatal(err)
	}
}

// TestTableCloneIsDeep guards the copy-on-write contract for tables.
func TestTableCloneIsDeep(t *testing.T) {
	tbl := NewTable("t", []TableColumn{{Name: "a", Typ: value.Int}})
	if err := tbl.Append([]value.Value{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	cl := tbl.Clone()
	if err := cl.Append([]value.Value{value.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	cl.Vecs[0].Set(0, value.NewInt(99))
	if tbl.NumRows() != 1 || tbl.Vecs[0].Get(0).I != 1 {
		t.Fatalf("clone mutation leaked into the original: rows=%d v0=%v", tbl.NumRows(), tbl.Vecs[0].Get(0))
	}
}

// TestSchemaVersionIgnoresDataWrites: plan caches stamp against
// SchemaVersion, which must move on DDL and stay put on DML — a DML
// commit must not evict every session's memoized plans.
func TestSchemaVersionIgnoresDataWrites(t *testing.T) {
	c := New()
	if err := c.PutArray(testArray(t, "a")); err != nil {
		t.Fatal(err)
	}
	sv := c.Snapshot().SchemaVersion()
	// Data write: full version moves, schema version doesn't.
	m := c.BeginExclusive()
	w, _ := m.ArrayForWrite("a")
	_ = w.Set([]int64{0}, 0, value.NewFloat(1))
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().SchemaVersion(); got != sv {
		t.Fatalf("DML moved the schema version: %d -> %d", sv, got)
	}
	if c.Snapshot().Version() == sv {
		t.Fatal("DML did not move the data version")
	}
	// Schema write moves it.
	if err := c.Drop("ARRAY", "a"); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().SchemaVersion(); got == sv {
		t.Fatal("DDL did not move the schema version")
	}
}
