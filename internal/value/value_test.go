package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewNull(Float), "NULL"},
		{NewTimestamp(0), "1970-01-01 00:00:00.000000"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCoercions(t *testing.T) {
	if v, err := Coerce(NewInt(3), Float); err != nil || v.F != 3 {
		t.Errorf("int->float: %v %v", v, err)
	}
	if v, err := Coerce(NewFloat(3.9), Int); err != nil || v.I != 3 {
		t.Errorf("float->int truncation: %v %v", v, err)
	}
	if v, err := Coerce(NewString("2010-09-03"), Timestamp); err != nil || v.Time().Year() != 2010 {
		t.Errorf("string->timestamp: %v %v", v, err)
	}
	if _, err := Coerce(NewString("xyz"), Float); err == nil {
		t.Error("bad string->float should error")
	}
	if v, err := Coerce(NewNull(Int), Float); err != nil || !v.Null || v.Typ != Float {
		t.Errorf("NULL coerces to typed NULL: %v %v", v, err)
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(NewInt(1), NewInt(2)) >= 0 {
		t.Error("1 < 2")
	}
	if Compare(NewInt(2), NewFloat(1.5)) <= 0 {
		t.Error("2 > 1.5 across numeric types")
	}
	if Compare(NewNull(Int), NewInt(-100)) >= 0 {
		t.Error("NULL sorts first")
	}
	if Compare(NewString("a"), NewString("b")) >= 0 {
		t.Error("string order")
	}
	if Compare(NewBool(false), NewBool(true)) >= 0 {
		t.Error("bool order")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(NewNull(Int), NewNull(Int)) {
		t.Error("NULL = NULL must be false (SQL)")
	}
	if Equal(NewNull(Int), NewInt(0)) {
		t.Error("NULL = 0 must be false")
	}
	if !Equal(NewInt(5), NewFloat(5)) {
		t.Error("5 = 5.0 across types")
	}
}

func TestAsFloatNullIsNaN(t *testing.T) {
	if !math.IsNaN(NewNull(Float).AsFloat()) {
		t.Error("NULL.AsFloat() should be NaN")
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	now := time.Date(2011, 3, 22, 14, 30, 5, 123456000, time.UTC)
	v := NewTime(now)
	if !v.Time().Equal(now) {
		t.Errorf("round trip: %v != %v", v.Time(), now)
	}
	parsed, err := ParseTimestamp("2010-09-03 16:30:00")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Time().Hour() != 16 {
		t.Errorf("parsed hour = %d", parsed.Time().Hour())
	}
	if _, err := ParseTimestamp("not a time"); err == nil {
		t.Error("bad timestamp should error")
	}
}

func TestAsBoolTruthiness(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{NewBool(true), true},
		{NewInt(0), false},
		{NewInt(-1), true},
		{NewFloat(0.0), false},
		{NewString(""), false},
		{NewString("x"), true},
		{NewNull(Bool), false},
	}
	for _, c := range cases {
		if got := c.v.AsBool(); got != c.want {
			t.Errorf("%v.AsBool() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	if Int.String() != "INTEGER" || Float.String() != "FLOAT" || Timestamp.String() != "TIMESTAMP" {
		t.Error("type names changed")
	}
	if !Int.Numeric() || !Timestamp.Numeric() || String.Numeric() {
		t.Error("Numeric classification wrong")
	}
}
