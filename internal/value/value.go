// Package value defines the scalar value model shared by the SciQL
// engine: the dynamic types that can appear in table columns, array
// cells and dimension indexes, together with NULL semantics and the
// coercion rules used throughout expression evaluation.
package value

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Type enumerates the scalar types supported by the engine. SciQL
// permits any basic scalar type as a dimension index; this engine
// supports Int and Timestamp dimensions and all listed types as
// attribute (cell) types.
type Type uint8

const (
	// Unknown is the zero Type; it is only valid on the NULL literal
	// before type inference assigns a concrete type.
	Unknown Type = iota
	// Bool is a boolean.
	Bool
	// Int is a 64-bit signed integer (SQL INTEGER/BIGINT).
	Int
	// Float is a 64-bit IEEE float (SQL FLOAT/REAL/DOUBLE).
	Float
	// String is a variable-length character string (SQL VARCHAR/CHAR).
	String
	// Timestamp is a point in time with microsecond resolution
	// (SQL TIMESTAMP/DATE). Stored as Unix microseconds.
	Timestamp
	// Array is a nested array handle (SciQL array-valued attributes,
	// e.g. the per-record waveform in the seismology schema).
	Array
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case Bool:
		return "BOOLEAN"
	case Int:
		return "INTEGER"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	case Timestamp:
		return "TIMESTAMP"
	case Array:
		return "ARRAY"
	default:
		return "UNKNOWN"
	}
}

// Numeric reports whether the type participates in arithmetic.
func (t Type) Numeric() bool { return t == Int || t == Float || t == Timestamp }

// Value is a dynamically typed scalar. The zero Value is a typed NULL
// of Unknown type. Exactly one of the payload fields is meaningful,
// selected by Typ.
type Value struct {
	Typ  Type
	Null bool
	I    int64   // Int, Timestamp (unix micros)
	F    float64 // Float
	S    string  // String
	B    bool    // Bool
	A    any     // Array handle (*array.Array); kept as any to avoid an import cycle
}

// NewNull returns a NULL of the given type.
func NewNull(t Type) Value { return Value{Typ: t, Null: true} }

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{Typ: Int, I: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{Typ: Float, F: f} }

// NewString returns a String value.
func NewString(s string) Value { return Value{Typ: String, S: s} }

// NewBool returns a Bool value.
func NewBool(b bool) Value { return Value{Typ: Bool, B: b} }

// NewTimestamp returns a Timestamp value from Unix microseconds.
func NewTimestamp(usec int64) Value { return Value{Typ: Timestamp, I: usec} }

// NewTime returns a Timestamp value from a time.Time.
func NewTime(t time.Time) Value { return Value{Typ: Timestamp, I: t.UnixMicro()} }

// NewArray wraps a nested array handle.
func NewArray(a any) Value { return Value{Typ: Array, A: a} }

// Time converts a Timestamp value to time.Time (UTC).
func (v Value) Time() time.Time { return time.UnixMicro(v.I).UTC() }

// AsFloat coerces numeric values to float64. NULL coerces to NaN.
func (v Value) AsFloat() float64 {
	if v.Null {
		return math.NaN()
	}
	switch v.Typ {
	case Int, Timestamp:
		return float64(v.I)
	case Float:
		return v.F
	case Bool:
		if v.B {
			return 1
		}
		return 0
	case String:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	default:
		return math.NaN()
	}
}

// AsInt coerces numeric values to int64 (floats truncate toward zero).
func (v Value) AsInt() int64 {
	if v.Null {
		return 0
	}
	switch v.Typ {
	case Int, Timestamp:
		return v.I
	case Float:
		return int64(v.F)
	case Bool:
		if v.B {
			return 1
		}
		return 0
	case String:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	default:
		return 0
	}
}

// AsBool coerces a value to boolean truth (SQL three-valued logic:
// NULL is not true).
func (v Value) AsBool() bool {
	if v.Null {
		return false
	}
	switch v.Typ {
	case Bool:
		return v.B
	case Int, Timestamp:
		return v.I != 0
	case Float:
		return v.F != 0
	case String:
		return v.S != ""
	default:
		return false
	}
}

// Compare orders two values. NULLs sort first and compare equal to
// each other. Values of different numeric types compare numerically.
// Comparing incomparable types orders by type tag, which gives a
// stable total order for sorting.
func Compare(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if a.Typ.Numeric() && b.Typ.Numeric() {
		if a.Typ == Int && b.Typ == Int || a.Typ == Timestamp && b.Typ == Timestamp {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.Typ != b.Typ {
		if a.Typ < b.Typ {
			return -1
		}
		return 1
	}
	switch a.Typ {
	case String:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	case Bool:
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports SQL equality; NULL never equals anything (use Compare
// for the sorting order where NULLs group together).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	return Compare(a, b) == 0
}

// String renders the value the way the result printer displays it.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	case Timestamp:
		return v.Time().Format("2006-01-02 15:04:05.000000")
	case Array:
		return fmt.Sprintf("ARRAY@%p", v.A)
	default:
		return "?"
	}
}

// Coerce converts v to the target type, returning an error if the
// conversion is not meaningful. NULL coerces to NULL of any type.
func Coerce(v Value, t Type) (Value, error) {
	if v.Null {
		return NewNull(t), nil
	}
	if v.Typ == t || t == Unknown {
		return v, nil
	}
	switch t {
	case Int:
		if v.Typ.Numeric() || v.Typ == Bool || v.Typ == String {
			return NewInt(v.AsInt()), nil
		}
	case Float:
		if v.Typ.Numeric() || v.Typ == Bool || v.Typ == String {
			f := v.AsFloat()
			if math.IsNaN(f) && v.Typ == String {
				return Value{}, fmt.Errorf("cannot coerce %q to FLOAT", v.S)
			}
			return NewFloat(f), nil
		}
	case Timestamp:
		switch v.Typ {
		case Int:
			return NewTimestamp(v.I), nil
		case String:
			ts, err := ParseTimestamp(v.S)
			if err != nil {
				return Value{}, err
			}
			return ts, nil
		}
	case String:
		return NewString(v.String()), nil
	case Bool:
		return NewBool(v.AsBool()), nil
	}
	return Value{}, fmt.Errorf("cannot coerce %s to %s", v.Typ, t)
}

// timestampLayouts lists the literal formats accepted for TIMESTAMP
// and DATE literals, most specific first.
var timestampLayouts = []string{
	"2006-01-02 15:04:05.000000",
	"2006-01-02 15:04:05",
	"2006-01-02",
}

// ParseTimestamp parses a SQL timestamp or date literal.
func ParseTimestamp(s string) (Value, error) {
	for _, layout := range timestampLayouts {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return NewTime(t), nil
		}
	}
	return Value{}, fmt.Errorf("invalid timestamp literal %q", s)
}
