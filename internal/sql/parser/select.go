package parser

import (
	"repro/internal/sql/ast"
	"repro/internal/sql/lexer"
)

// parseSelect parses a full query expression including UNION chains.
func (p *Parser) parseSelect() (*ast.Select, error) {
	sel, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	tail := sel
	for p.isKeyword("UNION") {
		p.advance()
		op := "UNION"
		if p.acceptKeyword("ALL") {
			op = "UNION ALL"
		}
		right, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		tail.SetOp, tail.SetRight = op, right
		tail = right
	}
	return sel, nil
}

func (p *Parser) parseSelectCore() (*ast.Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	out := &ast.Select{}
	if p.acceptKeyword("DISTINCT") {
		out.Distinct = true
	}
	// Target list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		out.Items = append(out.Items, *item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			out.From = append(out.From, fi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		gb, err := p.parseGroupBy()
		if err != nil {
			return nil, err
		}
		out.GroupBy = gb
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			out.OrderBy = append(out.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Limit = e
	}
	return out, nil
}

// parseSelectItem handles ordinary expressions, the SciQL dimension
// qualifier [expr], bare *, and qualified A.*.
func (p *Parser) parseSelectItem() (*ast.SelectItem, error) {
	item := &ast.SelectItem{}
	// Dimension qualifier: [x], [x/16], [T.k].
	if p.isSymbol("[") {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		item.Expr = e
		item.DimQual = true
		return item, p.parseAlias(item)
	}
	if p.acceptSymbol("*") {
		item.Expr = &ast.Star{}
		return item, nil
	}
	// Qualified star A.* is parsed in parsePostfix via Ident + ".*".
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item.Expr = e
	return item, p.parseAlias(item)
}

func (p *Parser) parseAlias(item *ast.SelectItem) error {
	if p.acceptKeyword("AS") {
		name, err := p.parseIdent()
		if err != nil {
			return err
		}
		item.Alias = name
		return nil
	}
	if p.cur().Kind == lexer.Ident {
		name, _ := p.parseIdent()
		item.Alias = name
	}
	return nil
}

// parseFromItem parses one FROM entry with optional joins:
//
//	matrix | matrix AS A | vmatrix[0:3][0:3] | (SELECT ...) t
//	matrix JOIN T ON matrix.x = T.i
func (p *Parser) parseFromItem() (ast.FromItem, error) {
	left, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	var item ast.FromItem = left
	for {
		kind := ""
		switch {
		case p.isKeyword("JOIN"):
			p.advance()
			kind = "INNER"
		case p.isKeyword("INNER"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = "INNER"
		case p.isKeyword("LEFT"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = "LEFT"
		case p.isKeyword("CROSS"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = "CROSS"
		default:
			return item, nil
		}
		right, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		j := &ast.Join{Left: item, Right: right, Kind: kind}
		if kind != "CROSS" {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		item = j
	}
}

func (p *Parser) parseTableRef() (*ast.TableRef, error) {
	ref := &ast.TableRef{}
	if p.acceptSymbol("(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ref.Subquery = sel
	} else {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ref.Name = name
		for p.isSymbol("[") {
			ix, err := p.parseIndexer()
			if err != nil {
				return nil, err
			}
			ref.Indexers = append(ref.Indexers, *ix)
		}
	}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.cur().Kind == lexer.Ident {
		alias, _ := p.parseIdent()
		ref.Alias = alias
	}
	return ref, nil
}

// parseGroupBy distinguishes value grouping (expressions) from
// structural grouping (tile elements — ArrayRefs over the anchor
// dimensions, §4.4). DISTINCT requests mutually exclusive tiles.
func (p *Parser) parseGroupBy() (*ast.GroupBy, error) {
	gb := &ast.GroupBy{}
	if p.acceptKeyword("DISTINCT") {
		gb.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if ref, ok := e.(*ast.ArrayRef); ok {
			gb.Tiles = append(gb.Tiles, ast.TileElement{Ref: ref})
		} else {
			gb.Exprs = append(gb.Exprs, e)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if len(gb.Tiles) > 0 && len(gb.Exprs) > 0 {
		return nil, p.errf("GROUP BY cannot mix value expressions with tile patterns")
	}
	if gb.Distinct && len(gb.Tiles) == 0 {
		return nil, p.errf("GROUP BY DISTINCT requires tile patterns")
	}
	return gb, nil
}
