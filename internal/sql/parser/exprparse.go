package parser

import (
	"strconv"
	"strings"

	"repro/internal/sql/ast"
	"repro/internal/sql/lexer"
	"repro/internal/value"
)

// parseExpr parses a full boolean expression (lowest precedence: OR).
func (p *Parser) parseExpr() (ast.Expr, error) {
	return p.parseOr()
}

func (p *Parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isSymbol("=") || p.isSymbol("<>") || p.isSymbol("<") ||
			p.isSymbol("<=") || p.isSymbol(">") || p.isSymbol(">="):
			op := p.advance().Text
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: op, L: l, R: r}
		case p.isKeyword("IS"):
			p.advance()
			neg := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &ast.IsNull{X: l, Neg: neg}
		case p.isKeyword("BETWEEN"):
			p.advance()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Between{X: l, Lo: lo, Hi: hi}
		case p.isKeyword("NOT") && (p.peek(1).Kind == lexer.Keyword && (p.peek(1).Text == "BETWEEN" || p.peek(1).Text == "IN")):
			p.advance()
			if p.acceptKeyword("BETWEEN") {
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &ast.Between{X: l, Lo: lo, Hi: hi, Neg: true}
			} else {
				if err := p.expectKeyword("IN"); err != nil {
					return nil, err
				}
				in, err := p.parseInList(l, true)
				if err != nil {
					return nil, err
				}
				l = in
			}
		case p.isKeyword("IN"):
			p.advance()
			in, err := p.parseInList(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseInList(x ast.Expr, neg bool) (ast.Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var elems []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &ast.InList{X: x, Elems: elems, Neg: neg}, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isSymbol("+"):
			op = "+"
		case p.isSymbol("-"):
			op = "-"
		case p.isSymbol("||"):
			op = "||"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isSymbol("*"):
			op = "*"
		case p.isSymbol("/"):
			op = "/"
		case p.isSymbol("%"):
			op = "%"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals immediately so dimension bounds like
		// [-5:*] are plain constants.
		if lit, ok := x.(*ast.Literal); ok && !lit.Val.Null {
			switch lit.Val.Typ {
			case value.Int:
				return &ast.Literal{Val: value.NewInt(-lit.Val.I)}, nil
			case value.Float:
				return &ast.Literal{Val: value.NewFloat(-lit.Val.F)}, nil
			}
		}
		return &ast.Unary{Op: "-", X: x}, nil
	}
	if p.acceptSymbol("+") {
		return p.parseUnary()
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary followed by array indexers and an
// optional .attr suffix: matrix[1][1].v, Stations[?a:?b][*].id,
// samples[time].data, A.* .
func (p *Parser) parsePostfix() (ast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		if p.isSymbol("[") {
			ref := &ast.ArrayRef{Base: e}
			for p.isSymbol("[") {
				ix, err := p.parseIndexer()
				if err != nil {
					return nil, err
				}
				ref.Indexers = append(ref.Indexers, *ix)
			}
			if p.isSymbol(".") && p.peek(1).Kind == lexer.Ident {
				p.advance()
				attr, _ := p.parseIdent()
				ref.Attr = attr
			}
			e = ref
			continue
		}
		// Attribute access on a computed value: next(samples[t]).data.
		if p.isSymbol(".") && p.peek(1).Kind == lexer.Ident {
			switch e.(type) {
			case *ast.FuncCall, *ast.ArrayRef, *ast.Subquery:
				p.advance()
				attr, _ := p.parseIdent()
				e = &ast.ArrayRef{Base: e, Attr: attr}
				continue
			}
		}
		break
	}
	return e, nil
}

// parseIndexer parses one bracketed index: [expr], [lo:hi], [lo:hi:step],
// [*], [lo:*], with TIMESTAMP literals and parameters allowed.
func (p *Parser) parseIndexer() (*ast.Indexer, error) {
	if err := p.expectSymbol("["); err != nil {
		return nil, err
	}
	ix := &ast.Indexer{}
	parseElem := func() (ast.Expr, bool, error) {
		if p.acceptSymbol("*") {
			return nil, true, nil
		}
		e, err := p.parseExpr()
		return e, false, err
	}
	first, star, err := parseElem()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol(":") {
		ix.Range = true
		if !star {
			ix.Start = first
		}
		stop, star2, err := parseElem()
		if err != nil {
			return nil, err
		}
		if !star2 {
			ix.Stop = stop
		}
		if p.acceptSymbol(":") {
			step, star3, err := parseElem()
			if err != nil {
				return nil, err
			}
			if !star3 {
				ix.Step = step
			}
		}
	} else if star {
		ix.Star = true
	} else {
		ix.Point = first
	}
	if err := p.expectSymbol("]"); err != nil {
		return nil, err
	}
	return ix, nil
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Number:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &ast.Literal{Val: value.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &ast.Literal{Val: value.NewInt(i)}, nil
	case lexer.Str:
		p.advance()
		return &ast.Literal{Val: value.NewString(t.Text)}, nil
	case lexer.Param:
		p.advance()
		return &ast.Param{Name: t.Text}, nil
	case lexer.Symbol:
		if t.Text == "(" {
			p.advance()
			// Scalar subquery or parenthesized expression / list.
			if p.isKeyword("SELECT") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &ast.Subquery{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptSymbol(",") {
				list := &ast.ExprList{Elems: []ast.Expr{e}}
				for {
					e2, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					list.Elems = append(list.Elems, e2)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return list, nil
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			p.advance()
			return &ast.Star{}, nil
		}
	case lexer.Keyword:
		switch t.Text {
		case "NULL":
			p.advance()
			return &ast.Literal{Val: value.NewNull(value.Unknown)}, nil
		case "TRUE":
			p.advance()
			return &ast.Literal{Val: value.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &ast.Literal{Val: value.NewBool(false)}, nil
		case "TIMESTAMP", "DATE":
			// TIMESTAMP '2010-01-01 00:00:00' literal.
			if p.peek(1).Kind == lexer.Str {
				p.advance()
				s := p.advance().Text
				v, err := value.ParseTimestamp(s)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				return &ast.Literal{Val: v}, nil
			}
			return nil, p.errf("expected string literal after %s", t.Text)
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			to, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ast.Cast{X: x, To: to}, nil
		case "ARRAY":
			// SELECT ARRAY (1,2,3,4) / ARRAY((1,2),(3,4)) literal
			// constructor (§4.1).
			if p.peek(1).Kind == lexer.Symbol && p.peek(1).Text == "(" {
				p.advance()
				return p.parseArrayLit()
			}
		case "SELECT":
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			return &ast.Subquery{Select: sel}, nil
		}
	case lexer.Ident:
		return p.parseIdentExpr()
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

// parseIdentExpr handles identifiers: column refs (possibly
// qualified), A.* stars, and function calls.
func (p *Parser) parseIdentExpr() (ast.Expr, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	// Function call.
	if p.isSymbol("(") {
		p.advance()
		call := &ast.FuncCall{Name: name}
		if p.acceptSymbol("*") {
			call.Star = true
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.acceptKeyword("DISTINCT") {
			call.Distinct = true
		}
		if !p.isSymbol(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	// Qualified reference or qualified star.
	if p.isSymbol(".") {
		if p.peek(1).Kind == lexer.Ident {
			p.advance()
			field, _ := p.parseIdent()
			return &ast.Ident{Table: name, Name: field}, nil
		}
		if p.peek(1).Kind == lexer.Symbol && p.peek(1).Text == "*" {
			p.advance()
			p.advance()
			return &ast.Star{Table: name}, nil
		}
	}
	return &ast.Ident{Name: name}, nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	p.advance() // CASE
	c := &ast.Case{}
	if !p.isKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.WhenClause{Cond: cond, Result: res})
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseArrayLit() (ast.Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	lit := &ast.ArrayLit{}
	// Either a flat list of scalars or a list of parenthesized rows.
	if p.isSymbol("(") {
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			lit.Rows = append(lit.Rows, row)
			if !p.acceptSymbol(",") {
				break
			}
		}
	} else {
		var row []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		lit.Rows = [][]ast.Expr{row}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return lit, nil
}

// parseType parses a SQL type name, swallowing length arguments
// (VARCHAR(60), CHAR(5)).
func (p *Parser) parseType() (value.Type, error) {
	t := p.cur()
	if t.Kind != lexer.Keyword && t.Kind != lexer.Ident {
		return value.Unknown, p.errf("expected type name, found %s", t)
	}
	var typ value.Type
	switch strings.ToUpper(t.Text) {
	case "INTEGER", "INT", "BIGINT", "SMALLINT", "TINYINT":
		typ = value.Int
	case "FLOAT", "REAL", "DOUBLE":
		typ = value.Float
	case "VARCHAR", "CHAR", "TEXT", "STRING", "CLOB":
		typ = value.String
	case "BOOLEAN", "BOOL":
		typ = value.Bool
	case "TIMESTAMP", "DATE", "TIME":
		typ = value.Timestamp
	default:
		return value.Unknown, p.errf("unknown type %s", t.Text)
	}
	p.advance()
	if strings.ToUpper(t.Text) == "DOUBLE" && p.isSoft("PRECISION") {
		p.advance()
	}
	// Swallow (n) length arguments.
	if p.acceptSymbol("(") {
		for !p.isSymbol(")") && p.cur().Kind != lexer.EOF {
			p.advance()
		}
		if err := p.expectSymbol(")"); err != nil {
			return value.Unknown, err
		}
	}
	return typ, nil
}
