// Package parser implements a recursive-descent parser for the SciQL
// dialect: SQL:2003 statements plus the array extensions of the paper
// — ARRAY DDL with DIMENSION constraints, dimension-qualified target
// lists, array slicing, structural tiling GROUP BY, guarded SET
// statements, ALTER ARRAY, and PSM bodies for white-box functions.
package parser

import (
	"fmt"
	"strings"

	"repro/internal/sql/ast"
	"repro/internal/sql/lexer"
	"repro/internal/value"
)

// Parser holds the token stream and the cursor.
type Parser struct {
	toks []lexer.Token
	pos  int
}

// Parse tokenizes and parses a script of semicolon-separated
// statements.
func Parse(src string) ([]ast.Statement, error) {
	toks, err := lexer.New(src).All()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var stmts []ast.Statement
	for {
		for p.acceptSymbol(";") {
		}
		if p.cur().Kind == lexer.EOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptSymbol(";") && p.cur().Kind != lexer.EOF {
			return nil, p.errf("expected ';' after statement, found %s", p.cur())
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (ast.Statement, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseExpr parses a standalone expression (used by tests and by the
// engine when compiling CHECK/DEFAULT clauses stored as text).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.New(src).All()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != lexer.EOF {
		return nil, p.errf("trailing input after expression: %s", p.cur())
	}
	return e, nil
}

// --- cursor helpers --------------------------------------------------------

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }

func (p *Parser) peek(n int) lexer.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) advance() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().Line, fmt.Sprintf(format, args...))
}

func (p *Parser) isKeyword(k string) bool {
	t := p.cur()
	return t.Kind == lexer.Keyword && t.Text == k
}

func (p *Parser) acceptKeyword(k string) bool {
	if p.isKeyword(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(k string) error {
	if !p.acceptKeyword(k) {
		return p.errf("expected %s, found %s", k, p.cur())
	}
	return nil
}

func (p *Parser) isSymbol(s string) bool {
	t := p.cur()
	return t.Kind == lexer.Symbol && t.Text == s
}

func (p *Parser) acceptSymbol(s string) bool {
	if p.isSymbol(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

// isSoft matches an identifier or keyword with the given upper-case
// text; used for context-sensitive words (NAME, START, WITH, ...).
func (p *Parser) isSoft(word string) bool {
	t := p.cur()
	return (t.Kind == lexer.Ident || t.Kind == lexer.Keyword) && strings.ToUpper(t.Text) == word
}

func (p *Parser) acceptSoft(word string) bool {
	if p.isSoft(word) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectSoft(word string) error {
	if !p.acceptSoft(word) {
		return p.errf("expected %s, found %s", word, p.cur())
	}
	return nil
}

// parseIdent consumes an identifier; soft keywords are allowed so
// columns named like context words (name, data, time...) work.
func (p *Parser) parseIdent() (string, error) {
	t := p.cur()
	if t.Kind == lexer.Ident {
		p.advance()
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %s", t)
}

// --- statement dispatch ----------------------------------------------------

func (p *Parser) parseStatement() (ast.Statement, error) {
	t := p.cur()
	if t.Kind != lexer.Keyword {
		return nil, p.errf("expected statement, found %s", t)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		p.advance()
		// ANALYZE is contextual (not reserved): EXPLAIN ANALYZE SELECT
		// profiles the execution, while columns named analyze still work.
		analyze := p.acceptSoft("ANALYZE")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ast.Explain{Select: sel, Analyze: analyze}, nil
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SET":
		return p.parseSetStmt()
	case "ALTER":
		return p.parseAlter()
	case "DROP":
		return p.parseDrop()
	case "BEGIN", "START", "COMMIT", "ROLLBACK":
		return p.parseTxStmt()
	default:
		return nil, p.errf("unexpected statement keyword %s", t.Text)
	}
}

// parseTxStmt parses transaction control: BEGIN [TRANSACTION|WORK],
// START TRANSACTION, COMMIT [WORK], ROLLBACK [WORK]. TRANSACTION and
// WORK are not reserved — they lex as identifiers and are accepted
// contextually here, so columns may still carry those names.
func (p *Parser) parseTxStmt() (ast.Statement, error) {
	t := p.advance()
	switch t.Text {
	case "BEGIN":
		if !p.acceptWord("TRANSACTION") {
			p.acceptWord("WORK")
		}
		return &ast.TxStmt{Kind: ast.TxBegin}, nil
	case "START":
		if !p.acceptWord("TRANSACTION") {
			return nil, p.errf("expected TRANSACTION after START, found %s", p.cur())
		}
		return &ast.TxStmt{Kind: ast.TxBegin}, nil
	case "COMMIT":
		p.acceptWord("WORK")
		return &ast.TxStmt{Kind: ast.TxCommit}, nil
	case "ROLLBACK":
		p.acceptWord("WORK")
		return &ast.TxStmt{Kind: ast.TxRollback}, nil
	}
	return nil, p.errf("unexpected transaction keyword %s", t.Text)
}

// acceptWord consumes the next token when it spells the given word,
// whether it lexed as a keyword or a plain identifier (contextual
// keywords like TRANSACTION/WORK).
func (p *Parser) acceptWord(w string) bool {
	t := p.cur()
	if (t.Kind == lexer.Keyword || t.Kind == lexer.Ident) && strings.EqualFold(t.Text, w) {
		p.advance()
		return true
	}
	return false
}

// --- DDL --------------------------------------------------------------------

func (p *Parser) parseCreate() (ast.Statement, error) {
	p.advance() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("ARRAY"):
		return p.parseCreateArray()
	case p.acceptKeyword("SEQUENCE"):
		return p.parseCreateSequence()
	case p.acceptKeyword("FUNCTION"):
		return p.parseCreateFunction()
	default:
		return nil, p.errf("expected TABLE, ARRAY, SEQUENCE or FUNCTION after CREATE")
	}
}

func (p *Parser) parseCreateTable() (ast.Statement, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	out := &ast.CreateTable{Name: name}
	for {
		if p.isKeyword("PRIMARY") || p.isKeyword("FOREIGN") {
			c, err := p.parseTableConstraint()
			if err != nil {
				return nil, err
			}
			out.Constraints = append(out.Constraints, *c)
		} else {
			col, err := p.parseColDef()
			if err != nil {
				return nil, err
			}
			out.Cols = append(out.Cols, *col)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseTableConstraint() (*ast.TableConstraint, error) {
	c := &ast.TableConstraint{}
	switch {
	case p.acceptKeyword("PRIMARY"):
		if err := p.expectKeyword("KEY"); err != nil {
			return nil, err
		}
		c.Kind = "PRIMARY KEY"
		cols, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		c.Columns = cols
	case p.acceptKeyword("FOREIGN"):
		if err := p.expectKeyword("KEY"); err != nil {
			return nil, err
		}
		c.Kind = "FOREIGN KEY"
		cols, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		c.Columns = cols
		if err := p.expectKeyword("REFERENCES"); err != nil {
			return nil, err
		}
		ref, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		c.RefTable = ref
		if p.isSymbol("(") {
			rc, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			c.RefColumns = rc
		}
	}
	return c, nil
}

func (p *Parser) parseIdentList() ([]string, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseCreateArray() (ast.Statement, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	out := &ast.CreateArray{Name: name}
	if p.acceptSymbol("(") {
		if p.acceptKeyword("LIKE") {
			like, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			out.Like = like
		} else {
			for {
				col, err := p.parseColDef()
				if err != nil {
					return nil, err
				}
				out.Cols = append(out.Cols, *col)
				if !p.acceptSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		out.AsSelect = sel
	}
	if out.Cols == nil && out.Like == "" && out.AsSelect == nil {
		return nil, p.errf("CREATE ARRAY %s requires a column list, LIKE, or AS SELECT", name)
	}
	return out, nil
}

// parseColDef parses one column definition:
//
//	x INTEGER DIMENSION[0:4:1] CHECK(...)
//	v FLOAT DEFAULT 0.0 CHECK(v>0)
//	payload FLOAT ARRAY[4][4] DEFAULT 0.0
//	samples ARRAY (time TIMESTAMP DIMENSION, data DOUBLE)
//	seqnr INTEGER PRIMARY KEY
func (p *Parser) parseColDef() (*ast.ColDef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	col := &ast.ColDef{Name: name}
	// Nested-array typed column: name ARRAY ( ... )
	if p.acceptKeyword("ARRAY") {
		col.Type = value.Array
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			nested, err := p.parseColDef()
			if err != nil {
				return nil, err
			}
			col.NestedArray = append(col.NestedArray, *nested)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return col, p.parseColOptions(col)
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	col.Type = typ
	// FLOAT ARRAY[4][4] shorthand.
	if p.acceptKeyword("ARRAY") {
		base := col.Type
		col.Type = value.Array
		for p.isSymbol("[") {
			p.advance()
			sz, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			col.FixedArrayDims = append(col.FixedArrayDims, sz)
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
		}
		// Record the element type via a synthetic nested schema with
		// anonymous dims named d0..dn and a single value attribute.
		col.NestedArray = []ast.ColDef{{Name: "v", Type: base}}
	}
	return col, p.parseColOptions(col)
}

func (p *Parser) parseColOptions(col *ast.ColDef) error {
	for {
		switch {
		case p.acceptKeyword("DIMENSION"):
			col.IsDim = true
			spec, err := p.parseDimSpec()
			if err != nil {
				return err
			}
			col.Dim = spec
		case p.acceptKeyword("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			col.Default = e
		case p.acceptKeyword("CHECK"):
			if err := p.expectSymbol("("); err != nil {
				return err
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			if err := p.expectSymbol(")"); err != nil {
				return err
			}
			col.Check = e
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return err
			}
			col.PrimaryKey = true
		default:
			return nil
		}
	}
}

// parseDimSpec parses the optional range after DIMENSION:
//
//	DIMENSION            -> bare (unbounded)
//	DIMENSION[4]         -> size shorthand
//	DIMENSION[0:4:1]     -> sequence pattern; '*' allowed per element
//	DIMENSION[-5:*]      -> open end
//	DIMENSION rng        -> named sequence
func (p *Parser) parseDimSpec() (*ast.DimSpec, error) {
	spec := &ast.DimSpec{}
	if p.cur().Kind == lexer.Ident {
		name, _ := p.parseIdent()
		spec.SeqName = name
		return spec, nil
	}
	if !p.acceptSymbol("[") {
		spec.Bare = true
		return spec, nil
	}
	star, first, err := p.parseDimElement()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol(":") {
		spec.Start, spec.StarStart = first, star
		star2, stop, err := p.parseDimElement()
		if err != nil {
			return nil, err
		}
		spec.End, spec.StarEnd = stop, star2
		if p.acceptSymbol(":") {
			star3, step, err := p.parseDimElement()
			if err != nil {
				return nil, err
			}
			spec.Step, spec.StarStep = step, star3
		}
	} else {
		if star {
			spec.StarEnd = true
			spec.StarStart = true
		} else {
			spec.Size = first
		}
	}
	if err := p.expectSymbol("]"); err != nil {
		return nil, err
	}
	return spec, nil
}

func (p *Parser) parseDimElement() (star bool, e ast.Expr, err error) {
	if p.acceptSymbol("*") {
		return true, nil, nil
	}
	e, err = p.parseExpr()
	return false, e, err
}

func (p *Parser) parseCreateSequence() (ast.Statement, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	out := &ast.CreateSequence{Name: name, Typ: value.Int}
	if p.acceptKeyword("AS") {
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		out.Typ = t
	}
	for {
		switch {
		case p.acceptSoft("START"):
			if err := p.expectSoft("WITH"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			out.Start = e
		case p.acceptSoft("INCREMENT"):
			if err := p.expectSoft("BY"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			out.Increment = e
		case p.acceptSoft("MAXVALUE"):
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			out.MaxValue = e
		default:
			return out, nil
		}
	}
}

func (p *Parser) parseCreateFunction() (ast.Statement, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	out := &ast.CreateFunction{Name: name}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if !p.isSymbol(")") {
		for {
			prm, err := p.parseParamDef()
			if err != nil {
				return nil, err
			}
			out.Params = append(out.Params, *prm)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("RETURNS"); err != nil {
		return nil, err
	}
	ret, err := p.parseReturnsDef()
	if err != nil {
		return nil, err
	}
	out.Returns = *ret
	switch {
	case p.acceptKeyword("EXTERNAL"):
		if err := p.expectSoft("NAME"); err != nil {
			return nil, err
		}
		t := p.cur()
		if t.Kind != lexer.Str {
			return nil, p.errf("expected string after EXTERNAL NAME")
		}
		p.advance()
		out.External = t.Text
	case p.acceptKeyword("BEGIN"):
		body, err := p.parsePSMBlock()
		if err != nil {
			return nil, err
		}
		out.Body = body
	case p.acceptKeyword("RETURN"):
		r, err := p.parsePSMReturn()
		if err != nil {
			return nil, err
		}
		out.Body = []ast.PSMStmt{r}
	default:
		return nil, p.errf("expected EXTERNAL NAME, BEGIN, or RETURN in CREATE FUNCTION")
	}
	return out, nil
}

func (p *Parser) parseParamDef() (*ast.ParamDef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	prm := &ast.ParamDef{Name: name}
	if p.acceptKeyword("ARRAY") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColDef()
			if err != nil {
				return nil, err
			}
			prm.Array = append(prm.Array, *col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		prm.Type = value.Array
		return prm, nil
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	prm.Type = t
	return prm, nil
}

func (p *Parser) parseReturnsDef() (*ast.ReturnsDef, error) {
	ret := &ast.ReturnsDef{}
	if p.acceptKeyword("ARRAY") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColDef()
			if err != nil {
				return nil, err
			}
			ret.Array = append(ret.Array, *col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ret.Type = value.Array
		return ret, nil
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	ret.Type = t
	return ret, nil
}

func (p *Parser) parseAlter() (ast.Statement, error) {
	p.advance() // ALTER
	if err := p.expectKeyword("ARRAY"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	out := &ast.AlterArray{Name: name}
	switch {
	case p.acceptKeyword("ALTER"):
		dim, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("DIMENSION"); err != nil {
			return nil, err
		}
		spec, err := p.parseDimSpec()
		if err != nil {
			return nil, err
		}
		out.AlterDimName, out.AlterDim = dim, spec
	case p.acceptKeyword("ADD"):
		col, err := p.parseColDef()
		if err != nil {
			return nil, err
		}
		out.AddCol = col
	default:
		return nil, p.errf("expected ALTER <dim> DIMENSION or ADD <column> in ALTER ARRAY")
	}
	return out, nil
}

func (p *Parser) parseDrop() (ast.Statement, error) {
	p.advance() // DROP
	var kind string
	switch {
	case p.acceptKeyword("TABLE"):
		kind = "TABLE"
	case p.acceptKeyword("ARRAY"):
		kind = "ARRAY"
	case p.acceptKeyword("SEQUENCE"):
		kind = "SEQUENCE"
	case p.acceptKeyword("FUNCTION"):
		kind = "FUNCTION"
	default:
		return nil, p.errf("expected TABLE, ARRAY, SEQUENCE or FUNCTION after DROP")
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &ast.Drop{Kind: kind, Name: name}, nil
}

// --- DML --------------------------------------------------------------------

func (p *Parser) parseInsert() (ast.Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	out := &ast.Insert{Table: name}
	// Optional column list: only when followed by an ident and the
	// whole parenthesized group precedes VALUES or SELECT.
	if p.isSymbol("(") && p.peek(1).Kind == lexer.Ident {
		// Look ahead for a bare ident list.
		save := p.pos
		cols, err := p.parseIdentList()
		if err == nil && (p.isKeyword("VALUES") || p.isKeyword("SELECT")) {
			out.Columns = cols
		} else {
			p.pos = save
		}
	}
	switch {
	case p.acceptKeyword("VALUES"):
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			out.Values = append(out.Values, row)
			if !p.acceptSymbol(",") {
				break
			}
		}
	case p.isKeyword("SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		out.Select = sel
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT")
	}
	return out, nil
}

func (p *Parser) parseUpdate() (ast.Statement, error) {
	p.advance() // UPDATE
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	out := &ast.Update{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		asg, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		out.Sets = append(out.Sets, *asg)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Where = e
	}
	return out, nil
}

// parseAssign parses target = value where target is a column name or
// an array reference (img[x][y].v).
func (p *Parser) parseAssign() (*ast.Assign, error) {
	target, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	switch target.(type) {
	case *ast.Ident, *ast.ArrayRef:
	default:
		return nil, p.errf("invalid assignment target")
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Assign{Target: target, Value: val}, nil
}

func (p *Parser) parseSetStmt() (ast.Statement, error) {
	p.advance() // SET
	asg, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	return &ast.SetStmt{Assign: *asg}, nil
}

func (p *Parser) parseDelete() (ast.Statement, error) {
	p.advance() // DELETE
	// FROM is optional in the paper's examples (DELETE tmp WHERE ...).
	p.acceptKeyword("FROM")
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	out := &ast.Delete{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Where = e
	}
	return out, nil
}

// --- PSM --------------------------------------------------------------------

// parsePSMBlock parses statements up to END (consuming it).
func (p *Parser) parsePSMBlock() ([]ast.PSMStmt, error) {
	var out []ast.PSMStmt
	for {
		for p.acceptSymbol(";") {
		}
		if p.acceptKeyword("END") {
			return out, nil
		}
		s, err := p.parsePSMStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.acceptSymbol(";") && !p.isKeyword("END") {
			return nil, p.errf("expected ';' in function body, found %s", p.cur())
		}
	}
}

func (p *Parser) parsePSMStmt() (ast.PSMStmt, error) {
	switch {
	case p.acceptKeyword("DECLARE"):
		d := &ast.Declare{}
		for {
			name, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			d.Names = append(d.Names, name)
			// Each name may carry its own type: DECLARE s1 FLOAT, s2 FLOAT.
			if !p.isSymbol(",") && !p.isSymbol(";") {
				t, err := p.parseType()
				if err != nil {
					return nil, err
				}
				d.Type = t
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
		return d, nil
	case p.acceptKeyword("SET"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ast.SetVar{Name: name, Value: e}, nil
	case p.acceptKeyword("IF"):
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		stmt := &ast.If{Cond: cond}
		for !p.isKeyword("ELSE") && !p.isKeyword("END") {
			s, err := p.parsePSMStmt()
			if err != nil {
				return nil, err
			}
			stmt.Then = append(stmt.Then, s)
			if !p.acceptSymbol(";") {
				break
			}
		}
		if p.acceptKeyword("ELSE") {
			for !p.isKeyword("END") {
				s, err := p.parsePSMStmt()
				if err != nil {
					return nil, err
				}
				stmt.Else = append(stmt.Else, s)
				if !p.acceptSymbol(";") {
					break
				}
			}
		}
		if err := p.expectKeyword("END"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("IF"); err != nil {
			return nil, err
		}
		return stmt, nil
	case p.acceptKeyword("RETURN"):
		return p.parsePSMReturn()
	default:
		return nil, p.errf("unexpected token %s in function body", p.cur())
	}
}

func (p *Parser) parsePSMReturn() (ast.PSMStmt, error) {
	if p.isKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ast.Return{Select: sel}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Return{Expr: e}, nil
}
