package parser

import (
	"testing"

	"repro/internal/sql/ast"
	"repro/internal/value"
)

// paperStatements collects verbatim (modulo whitespace) statements
// from the paper; all must parse.
var paperStatements = []string{
	`CREATE ARRAY A1 (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`,
	`CREATE ARRAY A2 (x INTEGER DIMENSION[0:4:1], v FLOAT DEFAULT 0.0)`,
	`CREATE SEQUENCE range AS INTEGER START WITH 0 INCREMENT BY 1 MAXVALUE 3`,
	`CREATE ARRAY A3 (x INTEGER DIMENSION range, v FLOAT DEFAULT 0.0)`,
	`CREATE ARRAY matrix (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`,
	`CREATE ARRAY stripes (x INTEGER DIMENSION[4] CHECK(MOD(x,2) = 1), y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`,
	`CREATE ARRAY diagonal (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4] CHECK(x = y), v FLOAT DEFAULT 0.0)`,
	`CREATE ARRAY sparse (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0 CHECK(v>0))`,
	`CREATE ARRAY experiment (run DATE DIMENSION[TIMESTAMP '2010-01-01':*], payload FLOAT ARRAY[4][4] DEFAULT 0.0)`,
	`UPDATE stripes SET v = CASE WHEN x>y THEN x + y WHEN x<y THEN x - y ELSE 0 END`,
	`UPDATE diagonal SET v = x + y`,
	`UPDATE sparse SET v = MOD(RAND(),16)`,
	`INSERT INTO grid VALUES(1,1,25)`,
	`UPDATE experiment SET payload[x][y] = NULL WHERE payload[x][y] < 0`,
	`DELETE FROM matrix WHERE MOD(x, 2) = 0 OR MOD(y, 2) = 0`,
	`SELECT x, y, v FROM matrix`,
	`SELECT ARRAY (1,2,3,4)`,
	`SELECT ARRAY((1,2),(3,4))`,
	`SELECT x, y, v FROM matrix WHERE v > 2`,
	`SELECT [x], [y], v FROM matrix WHERE v > 2`,
	`SELECT [T.k], [y], v FROM matrix JOIN T ON matrix.x = T.i`,
	`SELECT matrix[1][1].v`,
	`SELECT sparse[0:2][0:2].v`,
	`SET vector[0:2].v = (expr1, expr2)`,
	`SET vector[x].v = CASE WHEN vector[x].v < 0 THEN x WHEN vector[x].v > 10 THEN 10 * x END`,
	`CREATE ARRAY vmatrix (x INTEGER DIMENSION[-1:4], y INTEGER DIMENSION[-1:4], w FLOAT DEFAULT 0)`,
	`INSERT INTO vmatrix SELECT [y], [x], v FROM matrix`,
	`SELECT [x], [y], avg(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2]`,
	`SELECT [x], [y], avg(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
	`SELECT [x], [y], avg(v) FROM matrix GROUP BY DISTINCT matrix[x-1:x+1][y-1:y+1]`,
	`SELECT [x], sum(v) FROM matrix GROUP BY DISTINCT matrix[x][y:*]`,
	`SELECT x, y, AVG(v) FROM vmatrix[0:3][0:3] GROUP BY vmatrix[x][y], vmatrix[x-1][y], vmatrix[x+1][y], vmatrix[x][y-1], vmatrix[x][y+1]`,
	`SELECT distance(A, ?V), A.* FROM matrix AS A GROUP BY matrix[x][*]`,
	`ALTER ARRAY img ALTER x DIMENSION[-5:*]`,
	`ALTER ARRAY matrix ADD r FLOAT DEFAULT SQRT(POWER(x,2) + POWER(y,2))`,
	`CREATE ARRAY tmp (x INTEGER DIMENSION, y INTEGER DIMENSION, v FLOAT)`,
	`INSERT INTO tmp SELECT x, y, AVG(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
	`CREATE SEQUENCE rng AS INTEGER START WITH 0 INCREMENT BY 1 MAXVALUE 7`,
	`CREATE ARRAY white (i INTEGER DIMENSION rng, j INTEGER DIMENSION rng, color CHAR(5) DEFAULT 'white')`,
	`CREATE ARRAY black (LIKE white)`,
	`INSERT INTO chessboard
	   SELECT [i], [j], color FROM white WHERE (i * 8 + j) / 2 = 0
	   UNION
	   SELECT [i], [j], color FROM black WHERE (i * 8 + j) / 2 = 1`,
	`CREATE FUNCTION transpose (a ARRAY (i INTEGER DIMENSION, j INTEGER DIMENSION, v FLOAT))
	   RETURNS ARRAY (i INTEGER DIMENSION, j INTEGER DIMENSION, v FLOAT)
	   BEGIN RETURN SELECT [j],[i], a[i][j].v FROM a; END`,
	`CREATE FUNCTION markov (input ARRAY (x INT DIMENSION, y INT DIMENSION, f FLOAT), steps INT)
	   RETURNS ARRAY (x INT DIMENSION, y INT DIMENSION, f FLOAT)
	   EXTERNAL NAME 'markov.loop'`,
	`CREATE ARRAY landsat (channel INTEGER DIMENSION[7], x INTEGER DIMENSION[1024], y INTEGER DIMENSION[1024], v INTEGER)`,
	`UPDATE landsat SET v = noise(v, delta) WHERE channel = 6 AND MOD(x,6) = 1`,
	`CREATE FUNCTION tvi (b3 REAL, b4 REAL) RETURNS REAL
	   RETURN POWER(((b4 - b3) / (b4 + b3) + 0.5), 0.5)`,
	`CREATE FUNCTION conv (a ARRAY(i INTEGER DIMENSION[3], j INTEGER DIMENSION[3], v FLOAT))
	   RETURNS FLOAT
	   BEGIN
	     DECLARE s1 FLOAT, s2 FLOAT, z FLOAT;
	     SET s1 = (a[0][0].v + a[0][2].v + a[2][0].v + a[2][2].v)/4.0;
	     SET s2 = (a[0][1].v + a[1][0].v + a[1][2].v + a[2][1].v)/4.0;
	     SET z = 2 * ABS(s1 - s2);
	     IF ((ABS(a[1][1].v - s1) > z) OR (ABS(a[1][1].v - s2) > z))
	     THEN RETURN s2;
	     ELSE RETURN a[1][1].v;
	     END IF;
	   END`,
	`SELECT [x], [y], tvi(conv(landsat[3][x-1:x+1][y-1:y+1]), conv(landsat[4][x-1:x+1][y-1:y+1])) FROM landsat`,
	`CREATE FUNCTION intens2radiance (b INT, lmin REAL, lmax REAL) RETURNS REAL
	   RETURN (lmax-lmin) * b / 255.0 + lmin`,
	`CREATE ARRAY ndvi (x INT DIMENSION[1024], y INT DIMENSION[1024], b1 REAL, b2 REAL, v REAL)`,
	`SELECT [x], [y], AVG(v) FROM landsat GROUP BY landsat[x-1:x+1][y-1:y+1] HAVING AVG(v) BETWEEN 10 AND 100`,
	`UPDATE img SET v = (SELECT d.v + e.v * POWER(-1,x) FROM d, e
	   WHERE img.y = d.y AND img.y = e.y AND d.x = img.x/2 AND e.x = img.x/2)`,
	`UPDATE img SET img[x][y].v = (SELECT d[x/2][y].v + e[x/2][y].v * POWER(-1,x) FROM d, e)`,
	`CREATE ARRAY m (x INT DIMENSION[1024], v INT)`,
	`UPDATE m SET m[x].v = (SELECT SUM(a[x][y].v * b[k].v) FROM a, b WHERE a.y = b.k GROUP BY a[x][*])`,
	`CREATE ARRAY ximage (x INTEGER DIMENSION, y INTEGER DIMENSION, v INTEGER DEFAULT 0)`,
	`INSERT INTO ximage SELECT [x], [y], count(*) FROM events GROUP BY x, y`,
	`SELECT [x/16], [y/16], SUM(v) FROM ximage GROUP BY DISTINCT ximage[x:x+16][y:y+16]`,
	`ALTER ARRAY img ADD wcs_x FLOAT DIMENSION`,
	`UPDATE img SET wcs_x = (SELECT s[0].v * (m[0][0].v * (img.x - ref[0].v) + m[0][1].v * (img.y - ref[1].v)) FROM m, ref, s),
	               wcs_y = (SELECT s[1].v * (m[1][0].v * (img.x - ref[0].v) + m[1][1].v * (img.y - ref[1].v)) FROM m, ref, s)`,
	`CREATE ARRAY Stations (latitude INTEGER DIMENSION, longitude INTEGER DIMENSION, altitude INTEGER DIMENSION, id VARCHAR(5), name VARCHAR(60))`,
	`CREATE TABLE mSeed (seqnr INTEGER, station VARCHAR(5), quality CHAR,
	   samples ARRAY (time TIMESTAMP DIMENSION, data DOUBLE),
	   PRIMARY KEY (seqnr), FOREIGN KEY (station) REFERENCES Stations(id))`,
	`SELECT Stations.*, seqnr, quality,
	   samples[TIMESTAMP '2010-09-03 16:30:00':TIMESTAMP '2010-09-03 16:40:00']
	   FROM mSeed, Stations
	   WHERE station = Stations[?lat_min:?lat_max][?lng_min:?lng_max][*].id`,
	`SELECT * FROM mSeed WHERE next(samples.time) - samples.time BETWEEN ?gap_min AND ?gap_max
	   HAVING next(samples.time) IS NOT NULL`,
	`SELECT seqnr, quality, station, samples[time-100:time+100] FROM mSeed
	   WHERE ABS(samples[time].data - next(samples[time]).data) > ?T`,
	`SELECT [time], data, AVG(sample[time-3:time].data) FROM mSeed WHERE mSeeds.seqnr = ?nr
	   GROUP BY sample[time-3:time]`,
}

func TestPaperStatementsParse(t *testing.T) {
	for i, src := range paperStatements {
		if _, err := ParseOne(src); err != nil {
			t.Errorf("statement %d failed to parse: %v\nSQL: %s", i, err, src)
		}
	}
}

func TestParseCreateArrayShape(t *testing.T) {
	s, err := ParseOne(`CREATE ARRAY matrix (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
	if err != nil {
		t.Fatal(err)
	}
	ca, ok := s.(*ast.CreateArray)
	if !ok {
		t.Fatalf("expected *ast.CreateArray, got %T", s)
	}
	if ca.Name != "matrix" || len(ca.Cols) != 3 {
		t.Fatalf("unexpected shape: %+v", ca)
	}
	if !ca.Cols[0].IsDim || !ca.Cols[1].IsDim || ca.Cols[2].IsDim {
		t.Fatalf("dimension flags wrong: %+v", ca.Cols)
	}
	if ca.Cols[0].Dim.Size == nil {
		t.Fatal("expected [4] size shorthand on x")
	}
	if ca.Cols[2].Type != value.Float {
		t.Fatalf("v should be FLOAT, got %v", ca.Cols[2].Type)
	}
	if ca.Cols[2].Default == nil {
		t.Fatal("v should carry DEFAULT 0.0")
	}
}

func TestParseDimSpecForms(t *testing.T) {
	cases := []struct {
		sql       string
		wantStart bool // spec.Start non-nil
		wantEnd   bool
		starEnd   bool
		size      bool
		seq       string
		bare      bool
	}{
		{`CREATE ARRAY a (x INTEGER DIMENSION[4], v FLOAT)`, false, false, false, true, "", false},
		{`CREATE ARRAY a (x INTEGER DIMENSION[0:4:1], v FLOAT)`, true, true, false, false, "", false},
		{`CREATE ARRAY a (x INTEGER DIMENSION[-5:*], v FLOAT)`, true, false, true, false, "", false},
		{`CREATE ARRAY a (x INTEGER DIMENSION rng, v FLOAT)`, false, false, false, false, "rng", false},
		{`CREATE ARRAY a (x INTEGER DIMENSION, v FLOAT)`, false, false, false, false, "", true},
	}
	for _, c := range cases {
		s, err := ParseOne(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		spec := s.(*ast.CreateArray).Cols[0].Dim
		if (spec.Start != nil) != c.wantStart ||
			(spec.End != nil) != c.wantEnd ||
			spec.StarEnd != c.starEnd ||
			(spec.Size != nil) != c.size ||
			spec.SeqName != c.seq ||
			spec.Bare != c.bare {
			t.Errorf("%s: got %+v", c.sql, spec)
		}
	}
}

func TestParseTilingGroupBy(t *testing.T) {
	s, err := ParseOne(`SELECT [x], [y], avg(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if sel.GroupBy == nil || !sel.GroupBy.Distinct || len(sel.GroupBy.Tiles) != 1 {
		t.Fatalf("unexpected group by: %+v", sel.GroupBy)
	}
	ref := sel.GroupBy.Tiles[0].Ref
	if len(ref.Indexers) != 2 || !ref.Indexers[0].Range {
		t.Fatalf("unexpected tile ref: %+v", ref)
	}
	if !sel.Items[0].DimQual || !sel.Items[1].DimQual || sel.Items[2].DimQual {
		t.Fatalf("dimension qualifiers wrong: %+v", sel.Items)
	}
}

func TestParseAnchorListGroupBy(t *testing.T) {
	s, err := ParseOne(`SELECT x, y, AVG(v) FROM vmatrix[0:3][0:3]
		GROUP BY vmatrix[x][y], vmatrix[x-1][y], vmatrix[x+1][y], vmatrix[x][y-1], vmatrix[x][y+1]`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if len(sel.GroupBy.Tiles) != 5 {
		t.Fatalf("expected 5 tile elements, got %d", len(sel.GroupBy.Tiles))
	}
	tr := sel.From[0].(*ast.TableRef)
	if tr.Name != "vmatrix" || len(tr.Indexers) != 2 {
		t.Fatalf("sliced FROM item wrong: %+v", tr)
	}
}

func TestParseValueGroupByStaysValue(t *testing.T) {
	s, err := ParseOne(`SELECT x, count(*) FROM events GROUP BY x, y`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if len(sel.GroupBy.Exprs) != 2 || len(sel.GroupBy.Tiles) != 0 {
		t.Fatalf("unexpected group by: %+v", sel.GroupBy)
	}
}

func TestParseMixedGroupByRejected(t *testing.T) {
	if _, err := ParseOne(`SELECT x FROM t GROUP BY x, t[x:x+2]`); err == nil {
		t.Fatal("expected error for mixed value/tile GROUP BY")
	}
}

func TestParseSlicingExpr(t *testing.T) {
	s, err := ParseOne(`SELECT sparse[0:2][0:2].v`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	ref := sel.Items[0].Expr.(*ast.ArrayRef)
	if ref.Attr != "v" || len(ref.Indexers) != 2 || !ref.Indexers[0].Range {
		t.Fatalf("unexpected slicing ref: %+v", ref)
	}
}

func TestParseCaseGuardedUpdate(t *testing.T) {
	s, err := ParseOne(`UPDATE stripes SET v = CASE WHEN x>y THEN x + y WHEN x<y THEN x - y ELSE 0 END`)
	if err != nil {
		t.Fatal(err)
	}
	up := s.(*ast.Update)
	c := up.Sets[0].Value.(*ast.Case)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("unexpected CASE: %+v", c)
	}
}

func TestParseFunctionBodies(t *testing.T) {
	s, err := ParseOne(`CREATE FUNCTION conv (a ARRAY(i INTEGER DIMENSION[3], j INTEGER DIMENSION[3], v FLOAT))
		RETURNS FLOAT
		BEGIN
		  DECLARE s1 FLOAT, s2 FLOAT, z FLOAT;
		  SET s1 = (a[0][0].v + a[0][2].v + a[2][0].v + a[2][2].v)/4.0;
		  IF ABS(a[1][1].v - s1) > z THEN RETURN s2; ELSE RETURN a[1][1].v; END IF;
		END`)
	if err != nil {
		t.Fatal(err)
	}
	fn := s.(*ast.CreateFunction)
	if len(fn.Params) != 1 || fn.Params[0].Type != value.Array {
		t.Fatalf("unexpected params: %+v", fn.Params)
	}
	if len(fn.Body) != 3 {
		t.Fatalf("expected 3 body statements, got %d", len(fn.Body))
	}
	if _, ok := fn.Body[2].(*ast.If); !ok {
		t.Fatalf("expected IF as third statement, got %T", fn.Body[2])
	}
}

func TestParseExternalFunction(t *testing.T) {
	s, err := ParseOne(`CREATE FUNCTION markov (input ARRAY (x INT DIMENSION, y INT DIMENSION, f FLOAT), steps INT)
		RETURNS ARRAY (x INT DIMENSION, y INT DIMENSION, f FLOAT) EXTERNAL NAME 'markov.loop'`)
	if err != nil {
		t.Fatal(err)
	}
	fn := s.(*ast.CreateFunction)
	if fn.External != "markov.loop" {
		t.Fatalf("external name = %q", fn.External)
	}
	if fn.Returns.Type != value.Array || len(fn.Returns.Array) != 3 {
		t.Fatalf("returns = %+v", fn.Returns)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT FROM t`,
		`CREATE ARRAY a`,
		`CREATE ARRAY a (x INTEGER DIMENSION[4)`,
		`UPDATE t SET`,
		`SELECT * FROM t WHERE`,
		`SELECT 1 +`,
		`CREATE FUNCTION f () RETURNS FLOAT`,
		`INSERT INTO t`,
		`SELECT a[1 FROM t`,
	}
	for _, src := range bad {
		if _, err := ParseOne(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseMultiStatementScript(t *testing.T) {
	stmts, err := Parse(`
		CREATE ARRAY a (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		UPDATE a SET v = x * 2;
		SELECT [x], v FROM a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("expected 3 statements, got %d", len(stmts))
	}
}

func TestParseUnionChain(t *testing.T) {
	s, err := ParseOne(`SELECT 1 UNION SELECT 2 UNION ALL SELECT 3`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if sel.SetOp != "UNION" || sel.SetRight == nil {
		t.Fatalf("first union missing: %+v", sel)
	}
	if sel.SetRight.SetOp != "UNION ALL" || sel.SetRight.SetRight == nil {
		t.Fatalf("second union missing: %+v", sel.SetRight)
	}
}

func TestParseTimestampLiteral(t *testing.T) {
	e, err := ParseExpr(`TIMESTAMP '2010-09-03 16:30:00'`)
	if err != nil {
		t.Fatal(err)
	}
	lit := e.(*ast.Literal)
	if lit.Val.Typ != value.Timestamp {
		t.Fatalf("got %v", lit.Val.Typ)
	}
	if got := lit.Val.Time().Format("2006-01-02 15:04:05"); got != "2010-09-03 16:30:00" {
		t.Fatalf("timestamp round-trip: %s", got)
	}
}

func TestParseNegativeFold(t *testing.T) {
	e, err := ParseExpr(`-5`)
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*ast.Literal)
	if !ok || lit.Val.I != -5 {
		t.Fatalf("expected folded -5, got %#v", e)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr(`1 + 2 * 3`)
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*ast.Binary)
	if b.Op != "+" {
		t.Fatalf("expected + at root, got %s", b.Op)
	}
	if r := b.R.(*ast.Binary); r.Op != "*" {
		t.Fatalf("expected * on right, got %s", r.Op)
	}
}
