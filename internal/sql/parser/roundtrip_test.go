package parser

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sql/ast"
	"repro/internal/value"
)

// TestExprRoundTrip: parse → format → parse yields an equivalent tree
// for a corpus of paper-derived expressions.
func TestExprRoundTrip(t *testing.T) {
	corpus := []string{
		`1 + 2 * 3`,
		`(a + b) / c`,
		`MOD(x, 2) = 1 AND y > 0`,
		`CASE WHEN x>y THEN x + y WHEN x<y THEN x - y ELSE 0 END`,
		`POWER(((b4 - b3) / (b4 + b3) + 0.5), 0.5)`,
		`matrix[1][1].v`,
		`sparse[0:2][0:2].v`,
		`landsat[3][x-1:x+2][y-1:y+2]`,
		`matrix[x][*]`,
		`a[x:x+2:1][y]`,
		`v BETWEEN 10 AND 100`,
		`x NOT IN (1, 2, 3)`,
		`s IS NOT NULL`,
		`CAST(x AS FLOAT) / r`,
		`ABS(a[1][1].v - s1) > z OR ABS(a[1][1].v - s2) > z`,
		`?lo + ?hi`,
		`TIMESTAMP '2010-09-03 16:30:00'`,
		`-5 + x`,
		`'it''s' || 'fine'`,
		`NOT (a AND b)`,
		`COUNT(*)`,
		`COUNT(DISTINCT a)`,
		`next(time) - time`,
	}
	for _, src := range corpus {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := ast.Format(e1)
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", src, printed, err)
		}
		if ast.Format(e2) != printed {
			t.Errorf("round trip unstable:\n  src:   %s\n  print: %s\n  again: %s", src, printed, ast.Format(e2))
		}
	}
}

// TestSelectRoundTrip: SELECT statements survive format → parse.
func TestSelectRoundTrip(t *testing.T) {
	corpus := []string{
		`SELECT x, y, v FROM matrix WHERE v > 2`,
		`SELECT [x], [y], avg(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
		`SELECT x, y, AVG(v) FROM vmatrix[0:3][0:3] GROUP BY vmatrix[x][y], vmatrix[x-1][y]`,
		`SELECT [x], [y], AVG(v) FROM landsat GROUP BY landsat[x-1:x+2][y-1:y+2] HAVING AVG(v) BETWEEN 10 AND 100`,
		`SELECT a.x, b.y FROM t1 AS a JOIN t2 AS b ON a.k = b.k WHERE a.x < 5 ORDER BY a.x DESC LIMIT 10`,
		`SELECT DISTINCT g, COUNT(*) FROM events GROUP BY g`,
		`SELECT 1 UNION SELECT 2 UNION ALL SELECT 3`,
		`SELECT [i], [j], color FROM white WHERE MOD(i + j, 2) = 0 UNION SELECT [i], [j], color FROM black WHERE MOD(i + j, 2) = 1`,
		`SELECT * FROM mSeed WHERE next(samples.time) - samples.time BETWEEN ?gap_min AND ?gap_max`,
	}
	for _, src := range corpus {
		s1, err := ParseOne(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		sel, ok := s1.(*ast.Select)
		if !ok {
			t.Fatalf("%q is not a SELECT", src)
		}
		printed := ast.FormatSelect(sel)
		s2, err := ParseOne(printed)
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", src, printed, err)
		}
		again := ast.FormatSelect(s2.(*ast.Select))
		if again != printed {
			t.Errorf("round trip unstable:\n  src:   %s\n  print: %s\n  again: %s", src, printed, again)
		}
	}
}

// TestRandomExprRoundTrip generates random expression trees, formats
// them, and checks the printed text re-parses to the same text.
func TestRandomExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randomExpr(rng, 3)
		printed := ast.Format(e1)
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Logf("re-parse failed: %q: %v", printed, err)
			return false
		}
		if ast.Format(e2) != printed {
			t.Logf("unstable: %q vs %q", printed, ast.Format(e2))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomExpr(rng *rand.Rand, depth int) ast.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &ast.Literal{Val: value.NewInt(rng.Int63n(100))}
		case 1:
			return &ast.Literal{Val: value.NewFloat(float64(rng.Intn(1000)) / 8)}
		case 2:
			return &ast.Ident{Name: string(rune('a' + rng.Intn(26)))}
		default:
			return &ast.Param{Name: "p" + string(rune('a'+rng.Intn(26)))}
		}
	}
	switch rng.Intn(6) {
	case 0:
		ops := []string{"+", "-", "*", "/", "=", "<", ">", "AND", "OR"}
		return &ast.Binary{Op: ops[rng.Intn(len(ops))],
			L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 1:
		return &ast.FuncCall{Name: "ABS", Args: []ast.Expr{randomExpr(rng, depth-1)}}
	case 2:
		return &ast.Case{
			Whens: []ast.WhenClause{{Cond: randomExpr(rng, depth-1), Result: randomExpr(rng, depth-1)}},
			Else:  randomExpr(rng, depth-1),
		}
	case 3:
		return &ast.ArrayRef{
			Base: &ast.Ident{Name: "m"},
			Indexers: []ast.Indexer{
				{Point: randomExpr(rng, depth-1)},
				{Range: true, Start: randomExpr(rng, depth-1), Stop: randomExpr(rng, depth-1)},
			},
			Attr: "v",
		}
	case 4:
		return &ast.Between{X: randomExpr(rng, depth-1),
			Lo: randomExpr(rng, depth-1), Hi: randomExpr(rng, depth-1)}
	default:
		return &ast.IsNull{X: randomExpr(rng, depth-1)}
	}
}

// TestFormatGoldens pins a few exact renderings.
func TestFormatGoldens(t *testing.T) {
	cases := map[string]string{
		`1+2*3`:              `(1 + (2 * 3))`,
		`matrix[x:x+2][y].v`: `matrix[x:(x + 2)][y].v`,
		`a IS NULL`:          `(a IS NULL)`,
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := ast.Format(e); got != want {
			t.Errorf("Format(%q) = %q, want %q", src, got, want)
		}
	}
}

// TestRoundTripPreservesStructure compares tree shapes (ignoring
// positions) for one deep statement.
func TestRoundTripPreservesStructure(t *testing.T) {
	src := `SELECT [x], [y], avg(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2] HAVING avg(v) > 1`
	s1, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.FormatSelect(s1.(*ast.Select))
	s2, err := ParseOne(printed)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the normalized second-generation forms structurally.
	s3, err := ParseOne(ast.FormatSelect(s2.(*ast.Select)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2, s3) {
		t.Fatal("second and third generation trees differ")
	}
}
