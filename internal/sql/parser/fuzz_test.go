package parser

import (
	"strings"
	"testing"

	"repro/internal/sql/ast"
)

// FuzzParseRoundTrip is the parser's dynamic oracle: for any input the
// parser accepts, the printed form must re-parse, and printing must be
// a fixed point (print → parse → print is byte-identical). Inputs the
// parser rejects are fine — the property under test is that accepted
// trees have a stable textual form, which is what the planner caches
// and EXPLAIN output rely on.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		// Expressions (paper-derived, mirrors the round-trip corpus).
		`1 + 2 * 3`,
		`CASE WHEN x>y THEN x + y WHEN x<y THEN x - y ELSE 0 END`,
		`POWER(((b4 - b3) / (b4 + b3) + 0.5), 0.5)`,
		`matrix[1][1].v`,
		`sparse[0:2][0:2].v`,
		`landsat[3][x-1:x+2][y-1:y+2]`,
		`a[x:x+2:1][y]`,
		`v BETWEEN 10 AND 100`,
		`x NOT IN (1, 2, 3)`,
		`CAST(x AS FLOAT) / r`,
		`?lo + ?hi`,
		`TIMESTAMP '2010-09-03 16:30:00'`,
		`'it''s' || 'fine'`,
		`COUNT(DISTINCT a)`,
		`next(time) - time`,
		// Statements across the grammar.
		`SELECT x, y, v FROM matrix WHERE v > 2`,
		`SELECT [x], [y], avg(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
		`SELECT [x], [y], AVG(v) FROM landsat GROUP BY landsat[x-1:x+2][y-1:y+2] HAVING AVG(v) BETWEEN 10 AND 100`,
		`SELECT a.x, b.y FROM t1 AS a JOIN t2 AS b ON a.k = b.k ORDER BY a.x DESC LIMIT 10`,
		`SELECT 1 UNION SELECT 2 UNION ALL SELECT 3`,
		`CREATE ARRAY m (x INT DIMENSION [4], y INT DIMENSION [4], v FLOAT DEFAULT 0.0)`,
		`INSERT INTO m VALUES (0, 0, 1.5)`,
		`UPDATE m SET v = v + 1 WHERE x = 2`,
		`DELETE FROM m WHERE v IS NULL`,
		// Adversarial shapes.
		`SELECT`, `((((`, `[x`, `?`, `''`, `'`, `--`, `/*`, "a\x00b", `1e999`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return // bound parse cost; shapes beyond 4KiB add nothing
		}
		if e, err := ParseExpr(src); err == nil {
			printed := ast.Format(e)
			e2, err := ParseExpr(printed)
			if err != nil {
				t.Fatalf("printed expression does not re-parse:\n  src:   %q\n  print: %q\n  err:   %v", src, printed, err)
			}
			if again := ast.Format(e2); again != printed {
				t.Fatalf("expression print is not a fixed point:\n  src:   %q\n  print: %q\n  again: %q", src, printed, again)
			}
		}
		stmts, err := Parse(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			sel, ok := s.(*ast.Select)
			if !ok {
				continue // only SELECT has a full printer today
			}
			printed := ast.FormatSelect(sel)
			s2, err := ParseOne(printed)
			if err != nil {
				t.Fatalf("printed SELECT does not re-parse:\n  src:   %q\n  print: %q\n  err:   %v", src, printed, err)
			}
			sel2, ok := s2.(*ast.Select)
			if !ok {
				t.Fatalf("printed SELECT re-parsed as %T:\n  src:   %q\n  print: %q", s2, src, printed)
			}
			if again := ast.FormatSelect(sel2); again != printed {
				t.Fatalf("SELECT print is not a fixed point:\n  src:   %q\n  print: %q\n  again: %q", src, printed, again)
			}
		}
	})
}

// FuzzParseNoCrash drives the whole statement grammar (DDL, DML,
// transactions, EXPLAIN) looking for panics and non-termination; the
// round-trip oracle above only exercises surfaces with printers.
func FuzzParseNoCrash(f *testing.F) {
	seeds := []string{
		`CREATE TABLE t (k INT PRIMARY KEY, s VARCHAR(10))`,
		`CREATE SEQUENCE seq START WITH 1 INCREMENT BY 2 MAXVALUE 100`,
		`CREATE FUNCTION f(a INT) RETURNS INT BEGIN RETURN a + 1; END`,
		`CREATE FUNCTION g(a FLOAT) RETURNS FLOAT EXTERNAL NAME 'blur'`,
		`ALTER ARRAY m ADD COLUMN w FLOAT DEFAULT 0.0`,
		`BEGIN; INSERT INTO t VALUES (1, 'x'); COMMIT`,
		`START TRANSACTION; ROLLBACK`,
		`EXPLAIN ANALYZE SELECT * FROM t`,
		`DROP TABLE t; DROP ARRAY m`,
		strings.Repeat(`SELECT 1; `, 20),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		// Must return (statements or an error), never panic or hang.
		_, _ = Parse(src)
	})
}
