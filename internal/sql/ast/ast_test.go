package ast

import (
	"testing"

	"repro/internal/value"
)

func TestIdentString(t *testing.T) {
	if (&Ident{Name: "x"}).String() != "x" {
		t.Error("bare ident")
	}
	if (&Ident{Table: "t", Name: "x"}).String() != "t.x" {
		t.Error("qualified ident")
	}
}

func TestIsAggregate(t *testing.T) {
	for _, name := range []string{"SUM", "sum", "Count", "AVG", "min", "MAX"} {
		if !(&FuncCall{Name: name}).IsAggregate() {
			t.Errorf("%s should be an aggregate", name)
		}
	}
	for _, name := range []string{"ABS", "conv", "next"} {
		if (&FuncCall{Name: name}).IsAggregate() {
			t.Errorf("%s should not be an aggregate", name)
		}
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	// (a + ABS(b)) BETWEEN c AND CASE WHEN d THEN e ELSE f END
	e := &Between{
		X:  &Binary{Op: "+", L: &Ident{Name: "a"}, R: &FuncCall{Name: "ABS", Args: []Expr{&Ident{Name: "b"}}}},
		Lo: &Ident{Name: "c"},
		Hi: &Case{Whens: []WhenClause{{Cond: &Ident{Name: "d"}, Result: &Ident{Name: "e"}}}, Else: &Ident{Name: "f"}},
	}
	var names []string
	Walk(e, func(n Expr) bool {
		if id, ok := n.(*Ident); ok {
			names = append(names, id.Name)
		}
		return true
	})
	if len(names) != 6 {
		t.Fatalf("walk found %d idents (%v), want 6", len(names), names)
	}
}

func TestWalkPrunes(t *testing.T) {
	e := &Binary{Op: "+", L: &FuncCall{Name: "f", Args: []Expr{&Ident{Name: "inner"}}}, R: &Ident{Name: "outer"}}
	var seen []string
	Walk(e, func(n Expr) bool {
		switch x := n.(type) {
		case *FuncCall:
			return false // prune the call's arguments
		case *Ident:
			seen = append(seen, x.Name)
		}
		return true
	})
	if len(seen) != 1 || seen[0] != "outer" {
		t.Fatalf("pruning failed: %v", seen)
	}
}

func TestWalkArrayRefIndexers(t *testing.T) {
	ref := &ArrayRef{
		Base: &Ident{Name: "m"},
		Indexers: []Indexer{
			{Point: &Ident{Name: "x"}},
			{Range: true, Start: &Ident{Name: "lo"}, Stop: &Ident{Name: "hi"}},
		},
		Attr: "v",
	}
	count := 0
	Walk(ref, func(n Expr) bool {
		if _, ok := n.(*Ident); ok {
			count++
		}
		return true
	})
	if count != 4 {
		t.Fatalf("array-ref walk found %d idents, want 4 (base, x, lo, hi)", count)
	}
}

func TestHasAggregate(t *testing.T) {
	agg := &Binary{Op: "+", L: &Literal{Val: value.NewInt(1)},
		R: &FuncCall{Name: "SUM", Args: []Expr{&Ident{Name: "v"}}}}
	if !HasAggregate(agg) {
		t.Error("nested SUM not detected")
	}
	plain := &FuncCall{Name: "ABS", Args: []Expr{&Ident{Name: "v"}}}
	if HasAggregate(plain) {
		t.Error("ABS misdetected as aggregate")
	}
}
