package ast

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Format renders an expression back to SciQL text. The output is
// normalized (parenthesized infix, uppercase keywords) and re-parses
// to an equivalent tree — the parser round-trip property tests rely on
// this.
func Format(e Expr) string {
	var sb strings.Builder
	formatExpr(&sb, e)
	return sb.String()
}

func formatExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *Literal:
		formatLiteral(sb, x.Val)
	case *Ident:
		sb.WriteString(x.String())
	case *Param:
		sb.WriteByte('?')
		sb.WriteString(x.Name)
	case *Unary:
		if x.Op == "NOT" {
			sb.WriteString("NOT ")
		} else {
			sb.WriteString(x.Op)
		}
		sb.WriteByte('(')
		formatExpr(sb, x.X)
		sb.WriteByte(')')
	case *Binary:
		sb.WriteByte('(')
		formatExpr(sb, x.L)
		sb.WriteByte(' ')
		sb.WriteString(x.Op)
		sb.WriteByte(' ')
		formatExpr(sb, x.R)
		sb.WriteByte(')')
	case *FuncCall:
		sb.WriteString(x.Name)
		sb.WriteByte('(')
		if x.Star {
			sb.WriteByte('*')
		} else {
			if x.Distinct {
				sb.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				formatExpr(sb, a)
			}
		}
		sb.WriteByte(')')
	case *Case:
		sb.WriteString("CASE")
		if x.Operand != nil {
			sb.WriteByte(' ')
			formatExpr(sb, x.Operand)
		}
		for _, w := range x.Whens {
			sb.WriteString(" WHEN ")
			formatExpr(sb, w.Cond)
			sb.WriteString(" THEN ")
			formatExpr(sb, w.Result)
		}
		if x.Else != nil {
			sb.WriteString(" ELSE ")
			formatExpr(sb, x.Else)
		}
		sb.WriteString(" END")
	case *Cast:
		sb.WriteString("CAST(")
		formatExpr(sb, x.X)
		sb.WriteString(" AS ")
		sb.WriteString(typeName(x.To))
		sb.WriteByte(')')
	case *IsNull:
		sb.WriteByte('(')
		formatExpr(sb, x.X)
		if x.Neg {
			sb.WriteString(" IS NOT NULL)")
		} else {
			sb.WriteString(" IS NULL)")
		}
	case *Between:
		sb.WriteByte('(')
		formatExpr(sb, x.X)
		if x.Neg {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		formatExpr(sb, x.Lo)
		sb.WriteString(" AND ")
		formatExpr(sb, x.Hi)
		sb.WriteByte(')')
	case *InList:
		sb.WriteByte('(')
		formatExpr(sb, x.X)
		if x.Neg {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, el := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, el)
		}
		sb.WriteString("))")
	case *Subquery:
		sb.WriteByte('(')
		sb.WriteString(FormatSelect(x.Select))
		sb.WriteByte(')')
	case *Star:
		if x.Table != "" {
			sb.WriteString(quoteIdent(x.Table))
			sb.WriteByte('.')
		}
		sb.WriteByte('*')
	case *ArrayRef:
		formatExpr(sb, x.Base)
		formatIndexers(sb, x.Indexers)
		if x.Attr != "" {
			sb.WriteByte('.')
			sb.WriteString(quoteIdent(x.Attr))
		}
	case *ArrayLit:
		sb.WriteString("ARRAY(")
		if len(x.Rows) == 1 {
			for i, e2 := range x.Rows[0] {
				if i > 0 {
					sb.WriteString(", ")
				}
				formatExpr(sb, e2)
			}
		} else {
			for r, row := range x.Rows {
				if r > 0 {
					sb.WriteString(", ")
				}
				sb.WriteByte('(')
				for i, e2 := range row {
					if i > 0 {
						sb.WriteString(", ")
					}
					formatExpr(sb, e2)
				}
				sb.WriteByte(')')
			}
		}
		sb.WriteByte(')')
	case *ExprList:
		sb.WriteByte('(')
		for i, el := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, el)
		}
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "/*%T*/", e)
	}
}

func formatLiteral(sb *strings.Builder, v value.Value) {
	if v.Null {
		sb.WriteString("NULL")
		return
	}
	switch v.Typ {
	case value.String:
		sb.WriteByte('\'')
		sb.WriteString(strings.ReplaceAll(v.S, "'", "''"))
		sb.WriteByte('\'')
	case value.Timestamp:
		sb.WriteString("TIMESTAMP '")
		sb.WriteString(v.Time().Format("2006-01-02 15:04:05"))
		sb.WriteByte('\'')
	case value.Bool:
		if v.B {
			sb.WriteString("TRUE")
		} else {
			sb.WriteString("FALSE")
		}
	case value.Int:
		if v.I < 0 {
			// Negative literals format as a parenthesized negation so
			// they survive subtraction contexts (a - -1).
			fmt.Fprintf(sb, "(-%d)", -v.I)
			return
		}
		sb.WriteString(v.String())
	case value.Float:
		if v.F < 0 {
			fmt.Fprintf(sb, "(-%v)", -v.F)
			return
		}
		s := v.String()
		sb.WriteString(s)
		if !strings.ContainsAny(s, ".eE") {
			sb.WriteString(".0")
		}
	default:
		sb.WriteString(v.String())
	}
}

func typeName(t value.Type) string {
	switch t {
	case value.Int:
		return "INTEGER"
	case value.Float:
		return "FLOAT"
	case value.String:
		return "VARCHAR"
	case value.Bool:
		return "BOOLEAN"
	case value.Timestamp:
		return "TIMESTAMP"
	default:
		return "FLOAT"
	}
}

// FormatSelect renders a SELECT back to SciQL text.
func FormatSelect(s *Select) string {
	var sb strings.Builder
	formatSelectCore(&sb, s)
	for cur := s; cur.SetRight != nil; cur = cur.SetRight {
		sb.WriteByte(' ')
		sb.WriteString(cur.SetOp)
		sb.WriteByte(' ')
		formatSelectCore(&sb, cur.SetRight)
	}
	return sb.String()
}

func formatSelectCore(sb *strings.Builder, s *Select) {
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.DimQual {
			sb.WriteByte('[')
			formatExpr(sb, it.Expr)
			sb.WriteByte(']')
		} else {
			formatExpr(sb, it.Expr)
		}
		if it.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(quoteIdent(it.Alias))
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, fi := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatFromItem(sb, fi)
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		formatExpr(sb, s.Where)
	}
	if s.GroupBy != nil {
		sb.WriteString(" GROUP BY ")
		if s.GroupBy.Distinct {
			sb.WriteString("DISTINCT ")
		}
		n := 0
		for _, e := range s.GroupBy.Exprs {
			if n > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, e)
			n++
		}
		for _, t := range s.GroupBy.Tiles {
			if n > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, t.Ref)
			n++
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		formatExpr(sb, s.Having)
	}
	for i, oi := range s.OrderBy {
		if i == 0 {
			sb.WriteString(" ORDER BY ")
		} else {
			sb.WriteString(", ")
		}
		formatExpr(sb, oi.Expr)
		if oi.Desc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit != nil {
		sb.WriteString(" LIMIT ")
		formatExpr(sb, s.Limit)
	}
}

// formatIndexers renders [point], [lo:hi], [lo:hi:step] and [*]
// suffixes; both expression-position array references and FROM-clause
// slices print through here.
func formatIndexers(sb *strings.Builder, ixs []Indexer) {
	for _, ix := range ixs {
		sb.WriteByte('[')
		switch {
		case ix.Star:
			sb.WriteByte('*')
		case ix.Point != nil:
			formatExpr(sb, ix.Point)
		default:
			if ix.Start != nil {
				formatExpr(sb, ix.Start)
			} else {
				sb.WriteByte('*')
			}
			sb.WriteByte(':')
			if ix.Stop != nil {
				formatExpr(sb, ix.Stop)
			} else {
				sb.WriteByte('*')
			}
			if ix.Step != nil {
				sb.WriteByte(':')
				formatExpr(sb, ix.Step)
			}
		}
		sb.WriteByte(']')
	}
}

func formatFromItem(sb *strings.Builder, fi FromItem) {
	switch t := fi.(type) {
	case *TableRef:
		if t.Subquery != nil {
			sb.WriteByte('(')
			sb.WriteString(FormatSelect(t.Subquery))
			sb.WriteByte(')')
		} else {
			sb.WriteString(quoteIdent(t.Name))
			formatIndexers(sb, t.Indexers)
		}
		if t.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(quoteIdent(t.Alias))
		}
	case *Join:
		formatFromItem(sb, t.Left)
		switch t.Kind {
		case "CROSS":
			sb.WriteString(" CROSS JOIN ")
		case "LEFT":
			sb.WriteString(" LEFT JOIN ")
		default:
			sb.WriteString(" JOIN ")
		}
		formatFromItem(sb, t.Right)
		if t.On != nil {
			sb.WriteString(" ON ")
			formatExpr(sb, t.On)
		}
	}
}
