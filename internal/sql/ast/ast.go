// Package ast defines the abstract syntax tree for the SciQL dialect:
// SQL:2003 statements extended with ARRAY DDL (DIMENSION constraints),
// dimension-qualified target lists, array slicing, structural tiling
// in GROUP BY, guarded SET updates, and PSM bodies for white-box
// functions.
package ast

import (
	"strings"

	"repro/internal/sql/lexer"
	"repro/internal/value"
)

// Node is implemented by every AST node.
type Node interface{ node() }

// Statement is implemented by every executable statement.
type Statement interface {
	Node
	stmt()
}

// Expr is implemented by every expression node.
type Expr interface {
	Node
	expr()
}

// ---------------------------------------------------------------------------
// Expressions

// Literal is a constant value.
type Literal struct{ Val value.Value }

// Ident is a possibly qualified column/dimension/variable reference.
type Ident struct {
	Table string // optional qualifier
	Name  string
}

// String renders the qualified name as the lexer will read it back:
// bare when a part lexes as one plain identifier token, delimited
// ("...") when it is empty, reserved, or contains other characters —
// the round-trip property covers names that arrived quoted.
func (id *Ident) String() string {
	if id.Table != "" {
		return quoteIdent(id.Table) + "." + quoteIdent(id.Name)
	}
	return quoteIdent(id.Name)
}

func quoteIdent(name string) string {
	if lexer.IsPlainIdent(name) && !lexer.IsReserved(name) {
		return name
	}
	return `"` + name + `"`
}

// Param is a named host parameter (?name) bound at execution time.
type Param struct{ Name string }

// Unary is a prefix operator application: -, NOT.
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator application.
type Binary struct {
	Op   string // + - * / % = <> < <= > >= AND OR ||
	L, R Expr
}

// FuncCall is a function or aggregate invocation.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool
}

// IsAggregate reports whether the call is one of the SQL aggregates.
func (f *FuncCall) IsAggregate() bool {
	switch strings.ToUpper(f.Name) {
	case "SUM", "COUNT", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// Case is a searched or simple CASE expression.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

// Cast converts an expression to a type.
type Cast struct {
	X  Expr
	To value.Type
}

// IsNull tests nullness (negated for IS NOT NULL).
type IsNull struct {
	X   Expr
	Neg bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X      Expr
	Lo, Hi Expr
	Neg    bool
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X     Expr
	Elems []Expr
	Neg   bool
}

// Subquery is a scalar subquery in expression position.
type Subquery struct{ Select *Select }

// Star is the * or A.* target item in expression position.
type Star struct{ Table string }

// Indexer is one [...] applied to an array: either a point index, a
// start:stop:step range pattern, or the unbounded pattern [*].
type Indexer struct {
	Point Expr // non-nil for a point index
	Start Expr // range fields; nil means the dimension's default
	Stop  Expr
	Step  Expr
	Star  bool // [*]
	Range bool // true when the colon form was used
}

// ArrayRef is an indexed array access: base[idx]...[idx](.attr)?
// Examples from the paper: matrix[1][1].v, sparse[0:2][0:2].v,
// landsat[3][x-1:x+1][y-1:y+1], matrix[x][*], samples[t0:t1].
type ArrayRef struct {
	Base     Expr // usually *Ident; may be nested (samples[time].data)
	Indexers []Indexer
	Attr     string // optional .attr suffix ("" when absent)
}

// ArrayLit is the literal constructor SELECT ARRAY(1,2,3,4) or
// ARRAY((1,2),(3,4)); nested rows make it 2-D.
type ArrayLit struct {
	Rows [][]Expr // one row per tuple; a flat list is a single row
}

// ExprList is a parenthesized value list used on the right-hand side
// of array SET statements: SET vector[0:2].v = (expr1, expr2).
type ExprList struct{ Elems []Expr }

func (*Literal) expr()  {}
func (*Ident) expr()    {}
func (*Param) expr()    {}
func (*Unary) expr()    {}
func (*Binary) expr()   {}
func (*FuncCall) expr() {}
func (*Case) expr()     {}
func (*Cast) expr()     {}
func (*IsNull) expr()   {}
func (*Between) expr()  {}
func (*InList) expr()   {}
func (*Subquery) expr() {}
func (*Star) expr()     {}
func (*ArrayRef) expr() {}
func (*ArrayLit) expr() {}
func (*ExprList) expr() {}

func (*Literal) node()  {}
func (*Ident) node()    {}
func (*Param) node()    {}
func (*Unary) node()    {}
func (*Binary) node()   {}
func (*FuncCall) node() {}
func (*Case) node()     {}
func (*Cast) node()     {}
func (*IsNull) node()   {}
func (*Between) node()  {}
func (*InList) node()   {}
func (*Subquery) node() {}
func (*Star) node()     {}
func (*ArrayRef) node() {}
func (*ArrayLit) node() {}
func (*ExprList) node() {}

// ---------------------------------------------------------------------------
// SELECT

// SelectItem is one target-list entry. DimQual marks the SciQL [attr]
// qualifier that turns the output into an array dimension.
type SelectItem struct {
	Expr    Expr
	Alias   string
	DimQual bool
}

// TableRef is a FROM-clause item: a named object (with optional slab
// slicing, e.g. FROM vmatrix[0:3][0:3]), or a derived table.
type TableRef struct {
	Name     string
	Indexers []Indexer // optional slicing of the source array
	Subquery *Select
	Alias    string
}

// Join combines two from-items.
type Join struct {
	Left, Right FromItem
	On          Expr   // nil for CROSS JOIN / comma join
	Kind        string // "INNER", "CROSS", "LEFT"
}

// FromItem is either a TableRef or a Join.
type FromItem interface {
	Node
	fromItem()
}

func (*TableRef) fromItem() {}
func (*Join) fromItem()     {}
func (*TableRef) node()     {}
func (*Join) node()         {}

// TileElement is one cell denotation inside a structural GROUP BY:
// an ArrayRef whose indexers are expressions over the anchor-point
// dimension variables (matrix[x+1][y], matrix[x:x+2][y:y+2], a[x][*]).
type TileElement struct{ Ref *ArrayRef }

// GroupBy is either value-based (Exprs) or structural (Tiles). For
// structural grouping, Distinct selects only tiles whose boundary
// indexes are mutually exclusive (§4.4).
type GroupBy struct {
	Exprs    []Expr
	Tiles    []TileElement
	Distinct bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a query expression. SetOp chains UNION terms.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  *GroupBy
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	// SetOp links a UNION [ALL] continuation.
	SetOp    string // "" | "UNION" | "UNION ALL"
	SetRight *Select
}

func (*Select) node() {}
func (*Select) stmt() {}

// Explain wraps a SELECT: the engine compiles and optimizes the query
// through the logical planner and returns the rendered plan tree
// instead of executing it. With Analyze (EXPLAIN ANALYZE) the
// statement additionally executes, and the tree is annotated with the
// per-operator runtime statistics of that execution.
type Explain struct {
	Select  *Select
	Analyze bool
}

func (*Explain) node() {}
func (*Explain) stmt() {}

// ---------------------------------------------------------------------------
// DDL

// DimSpec is the DIMENSION constraint of §3.1: [size] shorthand,
// [start:final:step] sequence pattern with '*' for unbounded ends, or
// a named SQL SEQUENCE.
type DimSpec struct {
	// Size is the [n] shorthand (nil if the colon form or a sequence
	// name was used).
	Size Expr
	// Start/End/Step are the colon-form fields; nil means the
	// type-dependent default; the Star flags mark '*'.
	Start, End, Step   Expr
	StarStart, StarEnd bool
	StarStep           bool
	SeqName            string
	// Bare marks a DIMENSION with no range at all (unbounded both ways).
	Bare bool
}

// ColDef is a column definition for CREATE TABLE / CREATE ARRAY.
type ColDef struct {
	Name    string
	Type    value.Type
	IsDim   bool
	Dim     *DimSpec
	Default Expr
	Check   Expr
	// NestedArray holds the element schema for ARRAY-typed columns
	// (samples ARRAY(time TIMESTAMP DIMENSION, data DOUBLE)).
	NestedArray []ColDef
	// FixedArrayDims holds the [4][4] sizes of the payload FLOAT
	// ARRAY[4][4] shorthand.
	FixedArrayDims []Expr
	PrimaryKey     bool
}

// TableConstraint covers PRIMARY KEY / FOREIGN KEY table clauses.
type TableConstraint struct {
	Kind       string // "PRIMARY KEY" | "FOREIGN KEY"
	Columns    []string
	RefTable   string
	RefColumns []string
}

// CreateTable creates a relational table.
type CreateTable struct {
	Name        string
	Cols        []ColDef
	Constraints []TableConstraint
}

// CreateArray creates a SciQL array. Like copies another object's
// schema (CREATE ARRAY black (LIKE white)); AsSelect fills from a
// query (CREATE ARRAY v (...) AS SELECT ...).
type CreateArray struct {
	Name     string
	Cols     []ColDef
	Like     string
	AsSelect *Select
}

// CreateSequence defines an integer sequence usable as a dimension.
type CreateSequence struct {
	Name      string
	Typ       value.Type
	Start     Expr
	Increment Expr
	MaxValue  Expr
}

// ParamDef is a function parameter: scalar or array-typed.
type ParamDef struct {
	Name  string
	Type  value.Type
	Array []ColDef // non-nil for ARRAY(...) typed params
}

// ReturnsDef is a function result type.
type ReturnsDef struct {
	Type  value.Type
	Array []ColDef
}

// CreateFunction covers white-box PSM functions (Body / ReturnExpr)
// and black-box EXTERNAL NAME functions (§6).
type CreateFunction struct {
	Name     string
	Params   []ParamDef
	Returns  ReturnsDef
	Body     []PSMStmt
	External string // EXTERNAL NAME 'x'
}

// AlterArray changes an array's catalog entry: shift a dimension's
// range (ALTER x DIMENSION[-5:*]) or add a derived attribute.
type AlterArray struct {
	Name string
	// AlterDim re-declares a dimension's range.
	AlterDimName string
	AlterDim     *DimSpec
	// AddCol appends an attribute (possibly DIMENSION-tagged).
	AddCol *ColDef
}

// Drop removes an object.
type Drop struct {
	Kind string // "TABLE" | "ARRAY" | "SEQUENCE" | "FUNCTION"
	Name string
}

func (*CreateTable) node()    {}
func (*CreateArray) node()    {}
func (*CreateSequence) node() {}
func (*CreateFunction) node() {}
func (*AlterArray) node()     {}
func (*Drop) node()           {}

func (*CreateTable) stmt()    {}
func (*CreateArray) stmt()    {}
func (*CreateSequence) stmt() {}
func (*CreateFunction) stmt() {}
func (*AlterArray) stmt()     {}
func (*Drop) stmt()           {}

// ---------------------------------------------------------------------------
// Transactions

// TxKind discriminates transaction-control statements.
type TxKind string

// Transaction statement kinds.
const (
	TxBegin    TxKind = "BEGIN"
	TxCommit   TxKind = "COMMIT"
	TxRollback TxKind = "ROLLBACK"
)

// TxStmt is BEGIN [TRANSACTION] / START TRANSACTION, COMMIT or
// ROLLBACK: explicit snapshot-isolated transaction control.
type TxStmt struct {
	Kind TxKind
}

func (*TxStmt) node() {}
func (*TxStmt) stmt() {}

// ---------------------------------------------------------------------------
// DML

// Insert adds rows/cells. The spreadsheet shifting semantics of §3.2
// apply when the target is an array and the cell is occupied.
type Insert struct {
	Table   string
	Columns []string
	Values  [][]Expr
	Select  *Select
}

// Assign is one SET target = expr pair. The target may be a plain
// column (Ident) or an array reference with indexers (img[x][y].v).
type Assign struct {
	Target Expr // *Ident or *ArrayRef
	Value  Expr
}

// Update modifies cells/rows in place.
type Update struct {
	Table string
	Sets  []Assign
	Where Expr
}

// SetStmt is the standalone SciQL statement form
// SET vector[0:2].v = (expr1,expr2); the dimension attributes act as
// free variables running over all valid dimension values (§4.2).
type SetStmt struct{ Assign Assign }

// Delete removes rows (tables) or kills rows/columns via anchor cells
// (arrays, §3.2).
type Delete struct {
	Table string
	Where Expr
}

func (*Insert) node()  {}
func (*Update) node()  {}
func (*SetStmt) node() {}
func (*Delete) node()  {}

func (*Insert) stmt()  {}
func (*Update) stmt()  {}
func (*SetStmt) stmt() {}
func (*Delete) stmt()  {}

// ---------------------------------------------------------------------------
// PSM (white-box function bodies, §6.1)

// PSMStmt is a statement allowed inside BEGIN..END function bodies.
type PSMStmt interface {
	Node
	psm()
}

// Declare introduces local variables.
type Declare struct {
	Names []string
	Type  value.Type
}

// SetVar assigns a local variable (SET s1 = expr). The value may be a
// scalar subquery.
type SetVar struct {
	Name  string
	Value Expr
}

// If is IF cond THEN ... [ELSE ...] END IF.
type If struct {
	Cond Expr
	Then []PSMStmt
	Else []PSMStmt
}

// Return yields the function result: an expression or a SELECT
// (array-producing functions RETURN SELECT [j],[i], ... FROM a).
type Return struct {
	Expr   Expr
	Select *Select
}

func (*Declare) node() {}
func (*SetVar) node()  {}
func (*If) node()      {}
func (*Return) node()  {}

func (*Declare) psm() {}
func (*SetVar) psm()  {}
func (*If) psm()      {}
func (*Return) psm()  {}

// ---------------------------------------------------------------------------
// Helpers

// Walk visits e and every sub-expression in depth-first order; the
// visitor returns false to prune.
func Walk(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *Unary:
		Walk(x.X, visit)
	case *Binary:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, visit)
		}
	case *Case:
		Walk(x.Operand, visit)
		for _, w := range x.Whens {
			Walk(w.Cond, visit)
			Walk(w.Result, visit)
		}
		Walk(x.Else, visit)
	case *Cast:
		Walk(x.X, visit)
	case *IsNull:
		Walk(x.X, visit)
	case *Between:
		Walk(x.X, visit)
		Walk(x.Lo, visit)
		Walk(x.Hi, visit)
	case *InList:
		Walk(x.X, visit)
		for _, e := range x.Elems {
			Walk(e, visit)
		}
	case *ArrayRef:
		Walk(x.Base, visit)
		for _, ix := range x.Indexers {
			Walk(ix.Point, visit)
			Walk(ix.Start, visit)
			Walk(ix.Stop, visit)
			Walk(ix.Step, visit)
		}
	case *ArrayLit:
		for _, row := range x.Rows {
			for _, e := range row {
				Walk(e, visit)
			}
		}
	case *ExprList:
		for _, e := range x.Elems {
			Walk(e, visit)
		}
	}
}

// HasAggregate reports whether the expression contains an aggregate
// call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return true
	})
	return found
}
