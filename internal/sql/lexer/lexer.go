// Package lexer tokenizes SciQL source text. The token set is
// SQL:2003 plus the SciQL additions: '[' ']' for dimension patterns
// and slicing, ':' for sequence patterns, '?' named host parameters
// and '*' in index position.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind uint8

const (
	// EOF marks the end of input.
	EOF Kind = iota
	// Ident is an identifier or non-reserved keyword.
	Ident
	// Keyword is a reserved word (uppercased in Text).
	Keyword
	// Number is an integer or decimal literal.
	Number
	// Str is a single-quoted string literal (Text holds the unquoted value).
	Str
	// Param is a named host parameter ?name (Text holds name, possibly empty).
	Param
	// Symbol is an operator or punctuation (Text holds the symbol).
	Symbol
)

// Token is one lexical unit with its source position (for errors).
type Token struct {
	Kind Kind
	Text string
	Pos  int // byte offset
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case Str:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords lists the reserved words of the dialect. Everything else
// lexes as Ident.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "DISTINCT": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "NULL": true,
	"IS": true, "IN": true, "BETWEEN": true, "LIKE": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "CAST": true,
	"CREATE": true, "TABLE": true, "ARRAY": true, "DIMENSION": true,
	"DEFAULT": true, "CHECK": true, "SEQUENCE": true, "FUNCTION": true,
	"RETURNS": true, "RETURN": true, "BEGIN": true, "DECLARE": true,
	"IF": true, "EXTERNAL": true, "START": true, "EXPLAIN": true,
	// COMMIT/ROLLBACK are reserved (SQL standard); TRANSACTION and
	// WORK stay ordinary identifiers, accepted contextually after
	// BEGIN/START/COMMIT/ROLLBACK.
	"COMMIT": true, "ROLLBACK": true,
	"WITH": true, "INCREMENT": true, "MAXVALUE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "ALTER": true, "ADD": true, "DROP": true,
	"JOIN": true, "ON": true, "INNER": true, "LEFT": true, "CROSS": true,
	"UNION": true, "ALL": true, "ASC": true, "DESC": true,
	"PRIMARY": true, "FOREIGN": true, "KEY": true, "REFERENCES": true,
	"TRUE": true, "FALSE": true, "TIMESTAMP": true, "DATE": true,
	"INTEGER": true, "INT": true, "BIGINT": true, "FLOAT": true,
	"REAL": true, "DOUBLE": true, "VARCHAR": true, "CHAR": true,
	"BOOLEAN": true, "COUNT": false, // COUNT stays an Ident-like function name
}

// IsReserved reports whether word lexes as a reserved keyword rather
// than an identifier.
func IsReserved(word string) bool { return keywords[strings.ToUpper(word)] }

// IsPlainIdent reports whether s lexes as a single bare identifier
// token, so a printer may emit it unquoted.
func IsPlainIdent(s string) bool {
	for i, r := range s {
		if i == 0 {
			if !isIdentStart(r) {
				return false
			}
		} else if !isIdentPart(r) {
			return false
		}
	}
	return s != ""
}

// Lexer scans SciQL text into tokens with one-token lookahead handled
// by the parser.
type Lexer struct {
	src  string
	pos  int
	line int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1} }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: l.pos, Line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]
	r, rsize := utf8.DecodeRuneInString(l.src[l.pos:])
	switch {
	case isIdentStart(r):
		// Identifiers decode rune-wise: a multibyte letter (π, Ϳ) is
		// one character, not a run of mystery bytes.
		l.pos += rsize
		for l.pos < len(l.src) {
			r2, s2 := utf8.DecodeRuneInString(l.src[l.pos:])
			if !isIdentPart(r2) {
				break
			}
			l.pos += s2
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: Keyword, Text: up, Pos: start, Line: line}, nil
		}
		return Token{Kind: Ident, Text: word, Pos: start, Line: line}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.number(start, line)
	case c == '\'':
		return l.str(start, line)
	case c == '"':
		// Delimited identifier.
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return Token{}, fmt.Errorf("line %d: unterminated delimited identifier", line)
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return Token{Kind: Ident, Text: text, Pos: start, Line: line}, nil
	case c == '?':
		l.pos++
		nstart := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return Token{Kind: Param, Text: l.src[nstart:l.pos], Pos: start, Line: line}, nil
	default:
		return l.symbol(start, line)
	}
}

// All tokenizes the remaining input (testing convenience).
func (l *Lexer) All() ([]Token, error) {
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func (l *Lexer) number(start, line int) (Token, error) {
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	return Token{Kind: Number, Text: l.src[start:l.pos], Pos: start, Line: line}, nil
}

func (l *Lexer) str(start, line int) (Token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: Str, Text: sb.String(), Pos: start, Line: line}, nil
		}
		if c == '\n' {
			l.line++
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("line %d: unterminated string literal", line)
}

// twoCharSymbols lists the multi-byte operators, longest match first.
var twoCharSymbols = []string{"<>", "<=", ">=", "!=", "||"}

func (l *Lexer) symbol(start, line int) (Token, error) {
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.pos += len(s)
			text := s
			if text == "!=" {
				text = "<>"
			}
			return Token{Kind: Symbol, Text: text, Pos: start, Line: line}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', '[', ']', ',', ';', ':', '.':
		l.pos++
		return Token{Kind: Symbol, Text: string(c), Pos: start, Line: line}, nil
	}
	return Token{}, fmt.Errorf("line %d: unexpected character %q", line, c)
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
