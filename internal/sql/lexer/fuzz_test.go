package lexer

import "testing"

// FuzzLexer checks the scanner's two liveness invariants on arbitrary
// bytes: Next never panics, and the token stream always terminates —
// every non-EOF token consumes at least one byte, so input of n bytes
// yields at most n tokens before EOF. A lexer that returns a token
// without advancing would loop the parser forever on adversarial
// input; this is the oracle that catches it.
func FuzzLexer(f *testing.F) {
	seeds := []string{
		`SELECT [x], [y], AVG(v) FROM landsat GROUP BY landsat[x-1:x+2][y-1:y+2]`,
		`'it''s' || 'fine'`,
		`TIMESTAMP '2010-09-03 16:30:00'`,
		`?lo + ?hi`, `1e9 .5 0.25 42`, `a<>b <= >= != ||`,
		`-- comment`, `/* block */ x`, `"quoted ident"`,
		`'unterminated`, `/*unterminated`, "\x00\xff\xfe", `?`, ``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		l := New(src)
		prevPos := -1
		for i := 0; i <= len(src); i++ {
			tok, err := l.Next()
			if err != nil {
				return // lexical error ends the stream; that's fine
			}
			if tok.Kind == EOF {
				return
			}
			if tok.Pos <= prevPos {
				t.Fatalf("lexer did not advance: token %q at pos %d after pos %d in %q", tok.Text, tok.Pos, prevPos, src)
			}
			prevPos = tok.Pos
		}
		t.Fatalf("lexer produced more than %d tokens without reaching EOF on %q", len(src), src)
	})
}

// FuzzLexerAll pins All() to Next(): draining through All must agree
// with the incremental scan on token count and kinds.
func FuzzLexerAll(f *testing.F) {
	f.Add(`SELECT x FROM m WHERE v > 2`)
	f.Add(`a[0:2][*].v`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		all, err := New(src).All()
		inc := New(src)
		for i := 0; ; i++ {
			tok, ierr := inc.Next()
			if ierr != nil {
				if err == nil {
					t.Fatalf("Next errored (%v) but All did not on %q", ierr, src)
				}
				return
			}
			if tok.Kind == EOF {
				if err != nil {
					t.Fatalf("All errored (%v) but Next reached EOF on %q", err, src)
				}
				// All drops the EOF token or keeps it; accept either,
				// but everything before must match.
				if len(all) != i && !(len(all) == i+1 && all[i].Kind == EOF) {
					t.Fatalf("All returned %d tokens, Next produced %d before EOF on %q", len(all), i, src)
				}
				return
			}
			if err != nil {
				// All failed somewhere; the incremental scan must fail
				// too once it reaches that point. Keep scanning.
				continue
			}
			if i >= len(all) || all[i].Kind != tok.Kind || all[i].Text != tok.Text {
				t.Fatalf("All/Next diverge at token %d on %q", i, src)
			}
		}
	})
}
