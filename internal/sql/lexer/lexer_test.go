package lexer

import "testing"

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := New(src).All()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestBasicTokens(t *testing.T) {
	toks := kinds(t, `SELECT x, 1.5 FROM "Weird Name" WHERE s = 'it''s'`)
	want := []struct {
		k Kind
		s string
	}{
		{Keyword, "SELECT"}, {Ident, "x"}, {Symbol, ","}, {Number, "1.5"},
		{Keyword, "FROM"}, {Ident, "Weird Name"}, {Keyword, "WHERE"},
		{Ident, "s"}, {Symbol, "="}, {Str, "it's"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.k || toks[i].Text != w.s {
			t.Errorf("token %d = (%v %q), want (%v %q)", i, toks[i].Kind, toks[i].Text, w.k, w.s)
		}
	}
}

func TestOperators(t *testing.T) {
	toks := kinds(t, `<> <= >= != || [ ] : * ? ?abc`)
	wantText := []string{"<>", "<=", ">=", "<>", "||", "[", "]", ":", "*"}
	for i, w := range wantText {
		if toks[i].Text != w {
			t.Errorf("op %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if toks[9].Kind != Param || toks[9].Text != "" {
		t.Errorf("bare ? should be empty-named param: %v", toks[9])
	}
	if toks[10].Kind != Param || toks[10].Text != "abc" {
		t.Errorf("?abc param wrong: %v", toks[10])
	}
}

func TestComments(t *testing.T) {
	toks := kinds(t, "SELECT -- trailing comment\n 1 /* block\ncomment */ + 2")
	if len(toks) != 5 { // SELECT 1 + 2 EOF
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.25":   "3.25",
		"1e6":    "1e6",
		"2.5E-3": "2.5E-3",
	}
	for src, want := range cases {
		toks := kinds(t, src)
		if toks[0].Kind != Number || toks[0].Text != want {
			t.Errorf("%q lexed as %v %q", src, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestLineTracking(t *testing.T) {
	toks := kinds(t, "SELECT\n\nx")
	if toks[1].Line != 3 {
		t.Errorf("x on line %d, want 3", toks[1].Line)
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	toks := kinds(t, "select Select SELECT")
	for i := 0; i < 3; i++ {
		if toks[i].Kind != Keyword || toks[i].Text != "SELECT" {
			t.Errorf("token %d: %v %q", i, toks[i].Kind, toks[i].Text)
		}
	}
}

func TestSoftWordsStayIdent(t *testing.T) {
	// 'name' and 'data' must lex as identifiers so science schemas work.
	toks := kinds(t, "name data time samples quality station")
	for _, tok := range toks[:6] {
		if tok.Kind != Ident {
			t.Errorf("%q should be Ident, got %v", tok.Text, tok.Kind)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := New("'unterminated").All(); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := New(`"unterminated`).All(); err == nil {
		t.Error("unterminated delimited ident should error")
	}
	if _, err := New("@").All(); err == nil {
		t.Error("stray character should error")
	}
}
