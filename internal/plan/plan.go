// Package plan defines the logical query plan IR that sits between
// the SciQL parser and the executor. A SELECT compiles into a tree of
// relational/array operators (Scan, TiledAggregate, Filter, Project,
// Aggregate, Sort, Limit, ...), a rule-based optimizer folds
// constants, pushes dimension predicates into array scans as bounded
// slices, and prunes unused attributes from scans. The optimized tree
// powers EXPLAIN and tells the executor whether the morsel-driven
// parallel path applies.
package plan

import (
	"strings"

	"repro/internal/sql/ast"
)

// Catalog supplies the schema information the planner needs without
// depending on the executor's catalog types.
type Catalog interface {
	// ArrayInfo returns the dimension and attribute names of a stored
	// array, in declaration order; ok is false for unknown names.
	ArrayInfo(name string) (dims, attrs []string, ok bool)
	// IsTable reports whether name resolves to a relational table.
	IsTable(name string) bool
}

// Node is one operator of the logical plan tree.
type Node interface {
	// Label renders the operator and its arguments on one line.
	Label() string
	// Children returns the operator's inputs.
	Children() []Node
}

// Plan is a compiled (and possibly optimized) query plan.
type Plan struct {
	Root Node
	// Parallel reports whether the plan's shape fits the morsel-driven
	// executor (single array/table pipeline, no joins, unions or
	// derived tables). The executor additionally vets the expressions.
	Parallel bool
	// Reason explains Parallel == false.
	Reason string
	// sel is the source statement, kept so Optimize can rewrite
	// expressions and recompile.
	sel *ast.Select
}

// String renders the plan as an indented operator tree.
func (p *Plan) String() string { return p.RenderAnnotated(nil) }

// RenderAnnotated renders the operator tree with an optional per-node
// annotation suffix (the executor uses it to mark operators whose
// expressions compile into vectorized kernels).
func (p *Plan) RenderAnnotated(annot func(Node) string) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Label())
		if annot != nil {
			sb.WriteString(annot(n))
		}
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return sb.String()
}

// RenderAnalyzed renders the operator tree annotated with the runtime
// statistics of a profiled execution: EXPLAIN ANALYZE's view of the
// same tree EXPLAIN prints, with per-operator wall time, row counts
// and execution mode appended by the executor's stats callback.
func (p *Plan) RenderAnalyzed(stats func(Node) string) string {
	return p.RenderAnnotated(stats)
}

// disqualify records the first reason the plan cannot take the
// parallel path.
func (p *Plan) disqualify(reason string) {
	if p.Parallel {
		p.Parallel = false
		p.Reason = reason
	}
}

// --- operators -------------------------------------------------------------

// DimSel is the planned restriction of one scan dimension: a point, a
// half-open [Lo,Hi) range, or unrestricted. Bounds are rendered
// expression text (the executor re-derives runtime values itself).
type DimSel struct {
	Name  string
	Point string // "3"; empty when not a point
	Lo    string // ""  = open low end
	Hi    string // ""  = open high end
	// Pushed marks bounds inferred from WHERE dimension predicates;
	// Sliced marks bounds from FROM-clause slicing (m[0:4][0:4]).
	Pushed bool
	Sliced bool
}

func (d *DimSel) render(sb *strings.Builder) {
	sb.WriteString(d.Name)
	tag := ""
	if d.Pushed {
		tag = " (pushed)"
	} else if d.Sliced {
		tag = " (sliced)"
	}
	if d.Point != "" {
		sb.WriteString("=")
		sb.WriteString(d.Point)
		sb.WriteString(tag)
		return
	}
	sb.WriteString("=[")
	if d.Lo == "" {
		sb.WriteByte('*')
	} else {
		sb.WriteString(d.Lo)
	}
	sb.WriteByte(':')
	if d.Hi == "" {
		sb.WriteByte('*')
	} else {
		sb.WriteString(d.Hi)
	}
	sb.WriteByte(')')
	sb.WriteString(tag)
}

// Scan reads an array (or relational table) as a dataset of dimension
// and attribute columns.
type Scan struct {
	Name  string
	Qual  string // alias, when distinct from Name
	Table bool
	Dims  []DimSel
	// Attrs is the pruned attribute projection; AllAttrs marks that
	// pruning kept everything (or the source is a table).
	Attrs    []string
	AllAttrs bool
}

func (s *Scan) Label() string {
	var sb strings.Builder
	if s.Table {
		sb.WriteString("TableScan ")
	} else {
		sb.WriteString("Scan ")
	}
	sb.WriteString(s.Name)
	if s.Qual != "" && !strings.EqualFold(s.Qual, s.Name) {
		sb.WriteString(" AS ")
		sb.WriteString(s.Qual)
	}
	restricted := false
	for i := range s.Dims {
		d := &s.Dims[i]
		if d.Point == "" && d.Lo == "" && d.Hi == "" {
			continue
		}
		if !restricted {
			sb.WriteString(" dims[")
			restricted = true
		} else {
			sb.WriteString(", ")
		}
		d.render(&sb)
	}
	if restricted {
		sb.WriteByte(']')
	}
	if !s.AllAttrs {
		sb.WriteString(" attrs[")
		sb.WriteString(strings.Join(s.Attrs, ", "))
		sb.WriteByte(']')
	}
	return sb.String()
}
func (s *Scan) Children() []Node { return nil }

// TiledAggregate is structural grouping (§4.4): every anchor point
// yields one tile of cells folded by the aggregate calls. Its child
// produces the anchor domain.
type TiledAggregate struct {
	Array    string
	Tiles    []string
	Distinct bool
	Aggs     []string
	Child    Node
}

func (t *TiledAggregate) Label() string {
	var sb strings.Builder
	sb.WriteString("TiledAggregate ")
	sb.WriteString(t.Array)
	if t.Distinct {
		sb.WriteString(" distinct")
	}
	sb.WriteString(" tiles[")
	sb.WriteString(strings.Join(t.Tiles, ", "))
	sb.WriteByte(']')
	if len(t.Aggs) > 0 {
		sb.WriteString(" aggs[")
		sb.WriteString(strings.Join(t.Aggs, ", "))
		sb.WriteByte(']')
	}
	return sb.String()
}
func (t *TiledAggregate) Children() []Node { return []Node{t.Child} }

// Filter keeps the rows satisfying Cond. Having marks the post-
// aggregation variant.
type Filter struct {
	Cond   ast.Expr
	Having bool
	Child  Node
}

func (f *Filter) Label() string {
	if f.Having {
		return "Having " + ast.Format(f.Cond)
	}
	return "Filter " + ast.Format(f.Cond)
}
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Aggregate is value-based grouping (GROUP BY exprs, or one implicit
// group when aggregates appear without keys). KeyExprs and AggCalls
// keep the underlying expressions so the executor can annotate the
// rendered plan with per-operator execution modes.
type Aggregate struct {
	Keys     []string
	Aggs     []string
	KeyExprs []ast.Expr
	AggCalls []*ast.FuncCall
	Child    Node
}

func (a *Aggregate) Label() string {
	var sb strings.Builder
	sb.WriteString("Aggregate")
	if len(a.Keys) > 0 {
		sb.WriteString(" keys[")
		sb.WriteString(strings.Join(a.Keys, ", "))
		sb.WriteByte(']')
	}
	sb.WriteString(" aggs[")
	sb.WriteString(strings.Join(a.Aggs, ", "))
	sb.WriteByte(']')
	return sb.String()
}
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// Project evaluates the target list. ItemList keeps the source select
// items for per-operator execution-mode annotation.
type Project struct {
	Items    []string
	ItemList []ast.SelectItem
	Child    Node
}

func (p *Project) Label() string    { return "Project " + strings.Join(p.Items, ", ") }
func (p *Project) Children() []Node { return []Node{p.Child} }

// Distinct removes duplicate rows.
type Distinct struct{ Child Node }

func (d *Distinct) Label() string    { return "Distinct" }
func (d *Distinct) Children() []Node { return []Node{d.Child} }

// Sort orders the result.
type Sort struct {
	Keys  []string
	Child Node
}

func (s *Sort) Label() string    { return "Sort " + strings.Join(s.Keys, ", ") }
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Limit truncates the result.
type Limit struct {
	Count ast.Expr
	Child Node
}

func (l *Limit) Label() string    { return "Limit " + ast.Format(l.Count) }
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Join combines two inputs (hash join on equality keys at runtime).
type Join struct {
	Kind string
	On   ast.Expr
	L, R Node
}

func (j *Join) Label() string {
	kind := j.Kind
	if kind == "" {
		kind = "CROSS"
	}
	if j.On == nil {
		return "Join " + kind
	}
	return "Join " + kind + " on " + ast.Format(j.On)
}
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// Union chains set operands.
type Union struct {
	All  bool
	L, R Node
}

func (u *Union) Label() string {
	if u.All {
		return "Union all"
	}
	return "Union"
}
func (u *Union) Children() []Node { return []Node{u.L, u.R} }

// Opaque stands for a source the planner does not model (derived
// tables, environment-bound arrays, rowless selects); the interpreter
// executes it directly.
type Opaque struct{ What string }

func (o *Opaque) Label() string    { return "Opaque " + o.What }
func (o *Opaque) Children() []Node { return nil }
