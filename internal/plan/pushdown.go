package plan

import "repro/internal/sql/ast"

// This file is the single implementation of dimension-predicate
// pushdown ("symbolic reasoning over the dimensions", §2.3), shared by
// the planner (EXPLAIN annotations, literal constants only) and the
// executor (runtime bounds, host parameters and outer-bound constants
// included). Both sides classify WHERE conjuncts through
// AnalyzeDimConjuncts, so the plan EXPLAIN renders can never drift
// from the restriction the scan actually applies; they differ only in
// the ConstEval they supply.

// DimRange is the computed restriction of one scan dimension: either a
// point or a half-open [Lo, Hi) integer range.
type DimRange struct {
	Point bool
	Val   int64 // the point, when Point
	HasLo bool
	Lo    int64
	HasHi bool
	Hi    int64 // exclusive
	// RangeConjs are the source conjuncts folded into Lo/Hi; callers
	// that cannot apply an open-ended range (no bounding box) restore
	// them to the filter.
	RangeConjs []ast.Expr
}

// ConstEval resolves an expression to an exact integer constant, or
// reports that it cannot. The planner accepts integer literals only;
// the executor evaluates any expression that is constant under the
// outer environment. Implementations must return ok only when the
// value is exactly integral — truncating a float would widen the
// pushed bound and drop rows.
type ConstEval func(x ast.Expr) (int64, bool)

// DimResolver maps a (possibly qualified) identifier to the scan's
// dimension ordinal, or -1 when the identifier is not one of its
// dimensions.
type DimResolver func(id *ast.Ident) int

// AnalyzeDimConjuncts classifies WHERE conjuncts of the form
// <dim> op <constant> (either orientation; op one of = < <= > >=)
// into per-dimension restrictions. It returns the restriction per
// dimension ordinal and, aligned with conjs, which conjuncts were
// fully consumed by a restriction and may be dropped from the filter.
//
// The consumption policy — shared verbatim by planner and executor:
//
//   - an equality becomes a point and is consumed; a second, equal
//     equality is redundant and also consumed; a *conflicting*
//     equality stays in the filter so the contradiction remains
//     visible (and still yields zero rows);
//   - comparisons intersect into a half-open range and are consumed,
//     the bounds being exact integer rewrites of the conjuncts;
//   - when an equality claims a dimension, its range conjuncts are
//     restored to the filter rather than silently vanishing;
//   - dimensions for which blocked(di) reports true (e.g. already
//     restricted by FROM-clause slicing the caller cannot intersect)
//     are left entirely to the filter.
func AnalyzeDimConjuncts(conjs []ast.Expr, resolve DimResolver, eval ConstEval, blocked func(di int) bool) (map[int]*DimRange, []bool) {
	restrict := make(map[int]*DimRange)
	consumed := make([]bool, len(conjs))
	// rangeIdx remembers which conjunct indexes fed each dimension's
	// range so they can be un-consumed if an equality claims it.
	rangeIdx := make(map[int][]int)
	for ci, c := range conjs {
		di, op, v, ok := dimConstConjunct(c, resolve, eval)
		if !ok {
			continue
		}
		if blocked != nil && blocked(di) {
			continue
		}
		r := restrict[di]
		if r == nil {
			r = &DimRange{}
			restrict[di] = r
		}
		switch op {
		case "=":
			switch {
			case !r.Point:
				// The point claims the dimension; any ranges
				// accumulated first are restored to the filter below.
				r.Point, r.Val = true, v
				consumed[ci] = true
			case r.Val == v:
				consumed[ci] = true // redundant duplicate
			default:
				// Conflicting equality (x = 1 AND x = 2): keep the
				// first point, leave the contradiction in the filter.
			}
		case "<", "<=", ">", ">=":
			hi, lo := int64(0), int64(0)
			hasHi, hasLo := false, false
			switch op {
			case "<":
				hi, hasHi = v, true
			case "<=":
				hi, hasHi = v+1, true
			case ">":
				lo, hasLo = v+1, true
			case ">=":
				lo, hasLo = v, true
			}
			if hasHi && (!r.HasHi || hi < r.Hi) {
				r.Hi, r.HasHi = hi, true
			}
			if hasLo && (!r.HasLo || lo > r.Lo) {
				r.Lo, r.HasLo = lo, true
			}
			r.RangeConjs = append(r.RangeConjs, c)
			rangeIdx[di] = append(rangeIdx[di], ci)
			consumed[ci] = true
		}
	}
	// A point claims its dimension exclusively: restore the range
	// conjuncts to the filter (they still constrain execution there).
	for di, r := range restrict {
		if r.Point && len(r.RangeConjs) > 0 {
			for _, ci := range rangeIdx[di] {
				consumed[ci] = false
			}
			r.HasLo, r.HasHi = false, false
		}
	}
	return restrict, consumed
}

// dimConstConjunct matches <dim> op <constant> in either orientation,
// returning the dimension ordinal, the op normalized to the
// dim-on-the-left form, and the constant.
func dimConstConjunct(c ast.Expr, resolve DimResolver, eval ConstEval) (di int, op string, v int64, ok bool) {
	b, isBin := c.(*ast.Binary)
	if !isBin {
		return 0, "", 0, false
	}
	switch b.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return 0, "", 0, false
	}
	if id, isID := b.L.(*ast.Ident); isID {
		if d := resolve(id); d >= 0 {
			if c, okC := eval(b.R); okC {
				return d, b.Op, c, true
			}
		}
	}
	if id, isID := b.R.(*ast.Ident); isID {
		if d := resolve(id); d >= 0 {
			if c, okC := eval(b.L); okC {
				return d, flip(b.Op), c, true
			}
		}
	}
	return 0, "", 0, false
}
