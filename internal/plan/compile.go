package plan

import (
	"strings"

	"repro/internal/sql/ast"
)

// Compile lowers a parsed SELECT into an unoptimized logical plan.
// The tree mirrors the interpreter's evaluation order bottom-up:
// Scan → Filter → [Tiled]Aggregate → Having → Project → Distinct →
// Sort → Limit, with Union chaining set operands.
func Compile(sel *ast.Select, cat Catalog) *Plan {
	p := &Plan{Parallel: true, sel: sel}
	p.Root = p.compileSelect(sel, cat)
	return p
}

func (p *Plan) compileSelect(sel *ast.Select, cat Catalog) Node {
	left := p.compileCore(sel, cat)
	if sel.SetRight == nil {
		return left
	}
	p.disqualify("set operation (UNION)")
	right := p.compileSelect(sel.SetRight, cat)
	return &Union{All: sel.SetOp == "UNION ALL", L: left, R: right}
}

func (p *Plan) compileCore(sel *ast.Select, cat Catalog) Node {
	n := p.compileFrom(sel.From, cat)
	if sel.Where != nil {
		n = &Filter{Cond: sel.Where, Child: n}
	}
	aggs := collectAggs(sel)
	structural := sel.GroupBy != nil && len(sel.GroupBy.Tiles) > 0
	switch {
	case structural:
		t := &TiledAggregate{
			Distinct: sel.GroupBy.Distinct,
			Aggs:     aggs,
			Child:    n,
		}
		for _, tile := range sel.GroupBy.Tiles {
			t.Tiles = append(t.Tiles, ast.Format(tile.Ref))
			if t.Array == "" {
				if id, ok := tile.Ref.Base.(*ast.Ident); ok {
					t.Array = id.Name
				}
			}
		}
		n = t
	case (sel.GroupBy != nil && len(sel.GroupBy.Exprs) > 0) || len(aggs) > 0:
		a := &Aggregate{Aggs: aggs, AggCalls: collectAggCalls(sel), Child: n}
		if sel.GroupBy != nil {
			for _, k := range sel.GroupBy.Exprs {
				a.Keys = append(a.Keys, ast.Format(k))
			}
			a.KeyExprs = sel.GroupBy.Exprs
		}
		n = a
	}
	if sel.Having != nil {
		n = &Filter{Cond: sel.Having, Having: true, Child: n}
	}
	items := make([]string, len(sel.Items))
	for i, it := range sel.Items {
		items[i] = formatItem(it)
	}
	n = &Project{Items: items, ItemList: sel.Items, Child: n}
	if sel.Distinct {
		n = &Distinct{Child: n}
	}
	if len(sel.OrderBy) > 0 {
		s := &Sort{Child: n}
		for _, oi := range sel.OrderBy {
			k := ast.Format(oi.Expr)
			if oi.Desc {
				k += " DESC"
			}
			s.Keys = append(s.Keys, k)
		}
		n = s
	}
	if sel.Limit != nil {
		n = &Limit{Count: sel.Limit, Child: n}
	}
	return n
}

func (p *Plan) compileFrom(items []ast.FromItem, cat Catalog) Node {
	if len(items) == 0 {
		p.disqualify("rowless select")
		return &Opaque{What: "rowless"}
	}
	n := p.compileFromItem(items[0], cat)
	for _, fi := range items[1:] {
		p.disqualify("cross join")
		n = &Join{Kind: "CROSS", L: n, R: p.compileFromItem(fi, cat)}
	}
	return n
}

func (p *Plan) compileFromItem(fi ast.FromItem, cat Catalog) Node {
	switch t := fi.(type) {
	case *ast.TableRef:
		return p.compileTableRef(t, cat)
	case *ast.Join:
		// JOIN ... ON runs the partitioned hash join, which fans key
		// extraction, build and probe over the pool itself; only the
		// unkeyed comma join stays serial.
		return &Join{Kind: t.Kind, On: t.On, L: p.compileFromItem(t.Left, cat), R: p.compileFromItem(t.Right, cat)}
	}
	p.disqualify("unsupported FROM item")
	return &Opaque{What: "from-item"}
}

func (p *Plan) compileTableRef(t *ast.TableRef, cat Catalog) Node {
	if t.Subquery != nil {
		p.disqualify("derived table")
		return &Opaque{What: "subquery AS " + t.Alias}
	}
	if dims, attrs, ok := cat.ArrayInfo(t.Name); ok {
		s := &Scan{Name: t.Name, Qual: t.Alias, AllAttrs: true, Attrs: attrs}
		s.Dims = make([]DimSel, len(dims))
		for i, d := range dims {
			s.Dims[i] = DimSel{Name: d}
			if i < len(t.Indexers) {
				applyIndexer(&s.Dims[i], t.Indexers[i])
			}
		}
		return s
	}
	if cat.IsTable(t.Name) {
		return &Scan{Name: t.Name, Qual: t.Alias, Table: true, AllAttrs: true}
	}
	// Environment-bound arrays (PSM parameters) resolve at runtime.
	p.disqualify("unresolved source " + t.Name)
	return &Opaque{What: "source " + t.Name}
}

// applyIndexer records a FROM-clause slice ([0:4], [3], [*]) on the
// planned dimension selection.
func applyIndexer(d *DimSel, ix ast.Indexer) {
	switch {
	case ix.Star:
		// [*] selects everything: no restriction.
	case ix.Point != nil:
		d.Point = ast.Format(ix.Point)
		d.Sliced = true
	case ix.Range:
		if ix.Start != nil {
			d.Lo = ast.Format(ix.Start)
		}
		if ix.Stop != nil {
			d.Hi = ast.Format(ix.Stop)
		}
		d.Sliced = d.Lo != "" || d.Hi != ""
	}
}

// collectAggCalls lists the aggregate call nodes of the target list
// and HAVING clause.
func collectAggCalls(sel *ast.Select) []*ast.FuncCall {
	var out []*ast.FuncCall
	add := func(x ast.Expr) {
		ast.Walk(x, func(n ast.Expr) bool {
			if f, ok := n.(*ast.FuncCall); ok && f.IsAggregate() {
				out = append(out, f)
			}
			return true
		})
	}
	for _, it := range sel.Items {
		add(it.Expr)
	}
	add(sel.Having)
	return out
}

// collectAggs lists the aggregate calls of the target list and HAVING
// clause in rendered form.
func collectAggs(sel *ast.Select) []string {
	var out []string
	seen := map[string]bool{}
	add := func(x ast.Expr) {
		ast.Walk(x, func(n ast.Expr) bool {
			if f, ok := n.(*ast.FuncCall); ok && f.IsAggregate() {
				s := ast.Format(f)
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
			return true
		})
	}
	for _, it := range sel.Items {
		add(it.Expr)
	}
	add(sel.Having)
	return out
}

func formatItem(it ast.SelectItem) string {
	var sb strings.Builder
	if it.DimQual {
		sb.WriteByte('[')
		sb.WriteString(ast.Format(it.Expr))
		sb.WriteByte(']')
	} else {
		sb.WriteString(ast.Format(it.Expr))
	}
	if it.Alias != "" {
		sb.WriteString(" AS ")
		sb.WriteString(it.Alias)
	}
	return sb.String()
}
