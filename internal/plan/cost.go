package plan

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/sql/ast"
)

// This file is the cost model behind EXPLAIN's est_rows/cost
// annotations. Estimates consume the storage layer's zone-map
// statistics (row counts, per-column min/max/null-fraction) through
// the StatsCatalog extension; without statistics the model falls back
// to textbook default selectivities. Costs are abstract work units
// (≈ cells visited + rows processed), comparable within one plan but
// not across plans. The estimator is consulted by EXPLAIN only — the
// executor's runtime decisions (build-side choice, parallel gates)
// re-derive cardinalities from materialized inputs, applying the same
// rules to exact numbers.

// ColStats summarizes one column for selectivity estimation.
type ColStats struct {
	// Min/Max bound the non-NULL values; HasRange marks them valid.
	Min, Max float64
	HasRange bool
	// NullFrac is the fraction of NULL values (0..1).
	NullFrac float64
}

// Stats summarizes one stored array (or table) for the cost model.
type Stats struct {
	Rows int64
	// Cols maps lowercased dimension and attribute names to their
	// statistics.
	Cols map[string]ColStats
}

// StatsCatalog is the optional Catalog extension supplying zone-map
// statistics; catalogs without it get default selectivities.
type StatsCatalog interface {
	Catalog
	ArrayStats(name string) (Stats, bool)
}

// NodeCost is the estimate attached to one plan operator.
type NodeCost struct {
	Rows int64 // estimated output rows
	Cost int64 // cumulative work units, inclusive of children
	// BuildRight is meaningful on keyed Join nodes: true when the
	// right (smaller-estimate) input builds the hash table.
	BuildRight bool
	Keyed      bool
}

// Default selectivities for predicates the statistics cannot bound —
// the System R classics.
const (
	defaultRows      = 1000
	selEquality      = 0.10
	selRange         = 1.0 / 3.0
	selDefaultFilter = 1.0 / 3.0
)

// EstimateCosts walks the plan bottom-up and estimates output
// cardinality and cumulative cost per operator. cat may implement
// StatsCatalog for statistics-driven estimates.
func EstimateCosts(p *Plan, cat Catalog) map[Node]NodeCost {
	e := &estimator{out: make(map[Node]NodeCost)}
	e.stats, _ = cat.(StatsCatalog)
	e.walk(p.Root)
	return e.out
}

type estimator struct {
	stats StatsCatalog
	out   map[Node]NodeCost
}

// colScope accumulates the column statistics visible above a subtree,
// keyed by lowercased bare name and "qual.name".
type colScope map[string]ColStats

func (e *estimator) walk(n Node) (NodeCost, colScope) {
	switch t := n.(type) {
	case *Scan:
		return e.scan(t)
	case *Filter:
		child, scope := e.walk(t.Child)
		sel := selectivity(t.Cond, scope)
		nc := NodeCost{
			Rows: scaleRows(child.Rows, sel),
			Cost: child.Cost + child.Rows,
		}
		e.out[n] = nc
		return nc, scope
	case *Join:
		l, ls := e.walk(t.L)
		r, rs := e.walk(t.R)
		scope := mergeScopes(ls, rs)
		nc := NodeCost{}
		if t.On != nil && hasEquiKey(t.On) {
			// Keyed hash join: the FK-ish assumption bounds output by
			// the larger input; build the smaller side, probe the
			// larger.
			nc.Keyed = true
			nc.BuildRight = r.Rows <= l.Rows
			small, big := l.Rows, r.Rows
			if small > big {
				small, big = big, small
			}
			nc.Rows = big
			nc.Cost = l.Cost + r.Cost + small + big
		} else {
			// Cross product (or residual-only condition).
			nc.Rows = mulRows(l.Rows, r.Rows)
			nc.Cost = addCost(l.Cost+r.Cost, nc.Rows)
			if t.On != nil {
				nc.Rows = scaleRows(nc.Rows, selectivity(t.On, scope))
			}
		}
		e.out[n] = nc
		return nc, scope
	case *Project:
		child, scope := e.walk(t.Child)
		nc := NodeCost{Rows: child.Rows, Cost: child.Cost + child.Rows}
		e.out[n] = nc
		return nc, scope
	case *Aggregate:
		child, scope := e.walk(t.Child)
		rows := int64(1)
		if len(t.Keys) > 0 {
			rows = scaleRows(child.Rows, selEquality)
		}
		nc := NodeCost{Rows: rows, Cost: child.Cost + child.Rows}
		e.out[n] = nc
		return nc, scope
	case *TiledAggregate:
		child, scope := e.walk(t.Child)
		nc := NodeCost{Rows: child.Rows, Cost: addCost(child.Cost, 4*child.Rows)}
		e.out[n] = nc
		return nc, scope
	case *Distinct:
		child, scope := e.walk(t.Child)
		nc := NodeCost{Rows: scaleRows(child.Rows, 0.5), Cost: child.Cost + child.Rows}
		e.out[n] = nc
		return nc, scope
	case *Sort:
		child, scope := e.walk(t.Child)
		nc := NodeCost{Rows: child.Rows, Cost: addCost(child.Cost, sortCost(child.Rows))}
		e.out[n] = nc
		return nc, scope
	case *Limit:
		child, scope := e.walk(t.Child)
		nc := NodeCost{Rows: child.Rows, Cost: child.Cost}
		if lit, ok := t.Count.(*ast.Literal); ok && !lit.Val.Null {
			if k := lit.Val.AsInt(); k >= 0 && k < nc.Rows {
				nc.Rows = k
			}
		}
		e.out[n] = nc
		return nc, scope
	case *Union:
		l, ls := e.walk(t.L)
		r, rs := e.walk(t.R)
		rows := l.Rows + r.Rows
		if !t.All {
			rows = scaleRows(rows, 0.5)
		}
		nc := NodeCost{Rows: rows, Cost: addCost(l.Cost+r.Cost, l.Rows+r.Rows)}
		e.out[n] = nc
		return nc, mergeScopes(ls, rs)
	default:
		nc := NodeCost{Rows: defaultRows, Cost: defaultRows}
		e.out[n] = nc
		return nc, colScope{}
	}
}

func (e *estimator) scan(s *Scan) (NodeCost, colScope) {
	var st Stats
	haveStats := false
	if e.stats != nil {
		st, haveStats = e.stats.ArrayStats(s.Name)
	}
	rows := int64(defaultRows)
	if haveStats {
		rows = st.Rows
	}
	base := rows
	scope := colScope{}
	qual := strings.ToLower(s.Qual)
	if qual == "" {
		qual = strings.ToLower(s.Name)
	}
	for name, cs := range st.Cols {
		scope[name] = cs
		scope[qual+"."+name] = cs
	}
	// Dimension restrictions shrink the scan's output.
	frac := 1.0
	for i := range s.Dims {
		d := &s.Dims[i]
		cs, haveCol := st.Cols[strings.ToLower(d.Name)]
		width := 0.0
		if haveCol && cs.HasRange {
			width = cs.Max - cs.Min + 1
		}
		switch {
		case d.Point != "":
			if width > 1 {
				frac *= 1 / width
			} else {
				frac *= selEquality
			}
		case d.Lo != "" || d.Hi != "":
			lo, loOK := parseBound(d.Lo)
			hi, hiOK := parseBound(d.Hi)
			if width > 0 && (loOK || hiOK) {
				if !loOK {
					lo = cs.Min
				}
				if !hiOK {
					hi = cs.Max + 1 // half-open
				}
				f := (hi - lo) / width
				frac *= clamp01(f)
			} else {
				frac *= selRange
			}
		}
	}
	nc := NodeCost{Rows: scaleRows(base, frac), Cost: base}
	e.out[s] = nc
	return nc, scope
}

// selectivity estimates the fraction of rows satisfying cond under the
// column statistics in scope, conjunct by conjunct.
func selectivity(cond ast.Expr, scope colScope) float64 {
	sel := 1.0
	for _, c := range splitAnd(cond) {
		sel *= conjunctSelectivity(c, scope)
	}
	return clamp01(sel)
}

func conjunctSelectivity(c ast.Expr, scope colScope) float64 {
	switch t := c.(type) {
	case *ast.Binary:
		id, lit, op, ok := identCmpLiteral(t)
		if !ok {
			return selDefaultFilter
		}
		cs, have := lookupCol(scope, id)
		if !have || !cs.HasRange {
			if op == "=" {
				return selEquality
			}
			return selRange
		}
		width := cs.Max - cs.Min + 1
		switch op {
		case "=":
			if width > 1 {
				return clamp01(1 / width)
			}
			return selEquality
		case "<", "<=":
			return clamp01((lit - cs.Min + 1) / width)
		case ">", ">=":
			return clamp01((cs.Max - lit + 1) / width)
		}
		return selDefaultFilter
	case *ast.Between:
		id, isID := t.X.(*ast.Ident)
		if !isID || t.Neg {
			return selDefaultFilter
		}
		cs, have := lookupCol(scope, id)
		lo, loOK := literalFloat(t.Lo)
		hi, hiOK := literalFloat(t.Hi)
		if have && cs.HasRange && loOK && hiOK {
			width := cs.Max - cs.Min + 1
			return clamp01((hi - lo + 1) / width)
		}
		return selRange
	case *ast.IsNull:
		id, isID := t.X.(*ast.Ident)
		if !isID {
			return selDefaultFilter
		}
		if cs, have := lookupCol(scope, id); have {
			if t.Neg {
				return clamp01(1 - cs.NullFrac)
			}
			return clamp01(cs.NullFrac)
		}
		return selDefaultFilter
	}
	return selDefaultFilter
}

// hasEquiKey reports whether the ON condition carries at least one
// ident = ident conjunct — the executor's criterion for running a
// keyed (hash) join rather than a filtered cross product.
func hasEquiKey(on ast.Expr) bool {
	for _, c := range splitAnd(on) {
		b, ok := c.(*ast.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		_, lOK := b.L.(*ast.Ident)
		_, rOK := b.R.(*ast.Ident)
		if lOK && rOK {
			return true
		}
	}
	return false
}

// identCmpLiteral decomposes <ident> cmp <literal> in either
// orientation (flipping the operator when the literal is on the left).
func identCmpLiteral(b *ast.Binary) (id *ast.Ident, lit float64, op string, ok bool) {
	switch b.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return nil, 0, "", false
	}
	if i, isID := b.L.(*ast.Ident); isID {
		if f, litOK := literalFloat(b.R); litOK {
			return i, f, b.Op, true
		}
	}
	if i, isID := b.R.(*ast.Ident); isID {
		if f, litOK := literalFloat(b.L); litOK {
			flip := map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
			return i, f, flip[b.Op], true
		}
	}
	return nil, 0, "", false
}

func literalFloat(x ast.Expr) (float64, bool) {
	switch t := x.(type) {
	case *ast.Literal:
		if t.Val.Null || !t.Val.Typ.Numeric() {
			return 0, false
		}
		return t.Val.AsFloat(), true
	case *ast.Unary:
		if t.Op == "-" {
			if f, ok := literalFloat(t.X); ok {
				return -f, true
			}
		}
	}
	return 0, false
}

func lookupCol(scope colScope, id *ast.Ident) (ColStats, bool) {
	if id.Table != "" {
		cs, ok := scope[strings.ToLower(id.Table)+"."+strings.ToLower(id.Name)]
		return cs, ok
	}
	cs, ok := scope[strings.ToLower(id.Name)]
	return cs, ok
}

func mergeScopes(a, b colScope) colScope {
	out := make(colScope, len(a)+len(b))
	for k, v := range b {
		out[k] = v
	}
	for k, v := range a {
		out[k] = v // left side wins bare-name collisions
	}
	return out
}

func parseBound(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

func clamp01(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func scaleRows(rows int64, sel float64) int64 {
	out := int64(math.Round(float64(rows) * sel))
	if out < 0 {
		return 0
	}
	return out
}

func mulRows(a, b int64) int64 {
	if a > 0 && b > math.MaxInt64/a {
		return math.MaxInt64
	}
	return a * b
}

func addCost(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxInt64
}

func sortCost(rows int64) int64 {
	if rows <= 1 {
		return rows
	}
	return addCost(rows, int64(float64(rows)*math.Log2(float64(rows))))
}

// CostAnnotation renders one node's estimate as the EXPLAIN suffix:
// " (est_rows=N cost=C)", plus the chosen build side on keyed joins.
func CostAnnotation(nc NodeCost, isJoin bool) string {
	s := fmt.Sprintf(" (est_rows=%d cost=%d)", nc.Rows, nc.Cost)
	if isJoin && nc.Keyed {
		side := "left"
		if nc.BuildRight {
			side = "right"
		}
		s = fmt.Sprintf(" (est_rows=%d cost=%d build=%s)", nc.Rows, nc.Cost, side)
	}
	return s
}
