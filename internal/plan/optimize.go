package plan

import (
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// PlanSelect is the compile-and-optimize entry point: fold constants
// on the AST, compile once, then apply the rule-based tree rewrites:
//
//  1. constant folding over every scalar expression;
//  2. predicate pushdown: WHERE conjuncts of the form <dim> op
//     <constant> become point/range restrictions on the array scan
//     (bounded-slice inference — the "symbolic reasoning over the
//     dimensions" of §2.3);
//  3. projection pruning: scan attributes never referenced by the
//     query are dropped from the scan's output.
//
// Note the annotations are a logical description: the interpreter
// applies its own runtime pushdown (exec.pushdownDims), which also
// handles host-parameter and outer-bound constants the planner cannot
// evaluate. Converging the two implementations is a ROADMAP item.
func PlanSelect(sel *ast.Select, cat Catalog) *Plan {
	np := Compile(foldSelect(sel), cat)
	np.pushdown(np.Root)
	np.prune(cat)
	return np
}

// --- rule 1: constant folding ----------------------------------------------

var foldEv = &expr.Evaluator{}

// foldable reports whether x is a pure constant subtree (no names, no
// engine hooks, no RAND).
func foldable(x ast.Expr) bool {
	ok := x != nil
	ast.Walk(x, func(n ast.Expr) bool {
		switch t := n.(type) {
		case *ast.Ident, *ast.Param, *ast.Subquery, *ast.ArrayRef, *ast.Star, *ast.ArrayLit, *ast.ExprList:
			ok = false
			return false
		case *ast.FuncCall:
			if t.IsAggregate() || !expr.IsBuiltin(t.Name) || strings.EqualFold(t.Name, "RAND") {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// foldExpr rebuilds x with every maximal constant subtree replaced by
// its literal value.
func foldExpr(x ast.Expr) ast.Expr {
	if x == nil {
		return nil
	}
	if _, isLit := x.(*ast.Literal); !isLit && foldable(x) {
		if v, err := foldEv.Eval(x, &expr.MapEnv{}); err == nil {
			return &ast.Literal{Val: v}
		}
	}
	switch t := x.(type) {
	case *ast.Unary:
		return &ast.Unary{Op: t.Op, X: foldExpr(t.X)}
	case *ast.Binary:
		return &ast.Binary{Op: t.Op, L: foldExpr(t.L), R: foldExpr(t.R)}
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: t.Name, Star: t.Star, Distinct: t.Distinct}
		for _, a := range t.Args {
			out.Args = append(out.Args, foldExpr(a))
		}
		return out
	case *ast.Case:
		out := &ast.Case{Operand: foldExpr(t.Operand), Else: foldExpr(t.Else)}
		for _, w := range t.Whens {
			out.Whens = append(out.Whens, ast.WhenClause{Cond: foldExpr(w.Cond), Result: foldExpr(w.Result)})
		}
		return out
	case *ast.Cast:
		return &ast.Cast{X: foldExpr(t.X), To: t.To}
	case *ast.IsNull:
		return &ast.IsNull{X: foldExpr(t.X), Neg: t.Neg}
	case *ast.Between:
		return &ast.Between{X: foldExpr(t.X), Lo: foldExpr(t.Lo), Hi: foldExpr(t.Hi), Neg: t.Neg}
	case *ast.InList:
		out := &ast.InList{X: foldExpr(t.X), Neg: t.Neg}
		for _, el := range t.Elems {
			out.Elems = append(out.Elems, foldExpr(el))
		}
		return out
	case *ast.ArrayRef:
		out := &ast.ArrayRef{Base: foldExpr(t.Base), Attr: t.Attr}
		for _, ix := range t.Indexers {
			out.Indexers = append(out.Indexers, ast.Indexer{
				Point: foldExpr(ix.Point), Start: foldExpr(ix.Start),
				Stop: foldExpr(ix.Stop), Step: foldExpr(ix.Step),
				Star: ix.Star, Range: ix.Range,
			})
		}
		return out
	default:
		return x
	}
}

// foldSelect deep-copies sel with all scalar expressions folded.
func foldSelect(sel *ast.Select) *ast.Select {
	out := &ast.Select{Distinct: sel.Distinct, SetOp: sel.SetOp}
	for _, it := range sel.Items {
		out.Items = append(out.Items, ast.SelectItem{Expr: foldExpr(it.Expr), Alias: it.Alias, DimQual: it.DimQual})
	}
	for _, fi := range sel.From {
		out.From = append(out.From, foldFromItem(fi))
	}
	out.Where = foldExpr(sel.Where)
	if sel.GroupBy != nil {
		gb := &ast.GroupBy{Distinct: sel.GroupBy.Distinct}
		for _, k := range sel.GroupBy.Exprs {
			gb.Exprs = append(gb.Exprs, foldExpr(k))
		}
		for _, t := range sel.GroupBy.Tiles {
			gb.Tiles = append(gb.Tiles, ast.TileElement{Ref: foldExpr(t.Ref).(*ast.ArrayRef)})
		}
		out.GroupBy = gb
	}
	out.Having = foldExpr(sel.Having)
	for _, oi := range sel.OrderBy {
		out.OrderBy = append(out.OrderBy, ast.OrderItem{Expr: foldExpr(oi.Expr), Desc: oi.Desc})
	}
	out.Limit = foldExpr(sel.Limit)
	if sel.SetRight != nil {
		out.SetRight = foldSelect(sel.SetRight)
	}
	return out
}

func foldFromItem(fi ast.FromItem) ast.FromItem {
	switch t := fi.(type) {
	case *ast.TableRef:
		out := &ast.TableRef{Name: t.Name, Subquery: t.Subquery, Alias: t.Alias}
		for _, ix := range t.Indexers {
			out.Indexers = append(out.Indexers, ast.Indexer{
				Point: foldExpr(ix.Point), Start: foldExpr(ix.Start),
				Stop: foldExpr(ix.Stop), Step: foldExpr(ix.Step),
				Star: ix.Star, Range: ix.Range,
			})
		}
		return out
	case *ast.Join:
		return &ast.Join{Left: foldFromItem(t.Left), Right: foldFromItem(t.Right), On: foldExpr(t.On), Kind: t.Kind}
	}
	return fi
}

// --- rule 2: predicate pushdown / slice inference ---------------------------

// pushdown walks the tree looking for Filter→Scan pairs and moves
// dimension point/range conjuncts into the scan's DimSels.
func (p *Plan) pushdown(n Node) {
	switch t := n.(type) {
	case *Filter:
		if sc, ok := t.Child.(*Scan); ok && !sc.Table {
			remaining := pushConjuncts(t.Cond, sc)
			if remaining == nil {
				// Fully consumed: splice the filter out.
				replaceChild(p.Root, t, sc)
				if p.Root == t {
					p.Root = sc
				}
			} else {
				t.Cond = remaining
			}
		}
		p.pushdown(t.Child)
	default:
		for _, c := range n.Children() {
			p.pushdown(c)
		}
	}
}

// replaceChild swaps old for new in the first parent found.
func replaceChild(root Node, old, new Node) bool {
	switch t := root.(type) {
	case *Filter:
		if t.Child == old {
			t.Child = new
			return true
		}
	case *Project:
		if t.Child == old {
			t.Child = new
			return true
		}
	case *Aggregate:
		if t.Child == old {
			t.Child = new
			return true
		}
	case *TiledAggregate:
		if t.Child == old {
			t.Child = new
			return true
		}
	case *Distinct:
		if t.Child == old {
			t.Child = new
			return true
		}
	case *Sort:
		if t.Child == old {
			t.Child = new
			return true
		}
	case *Limit:
		if t.Child == old {
			t.Child = new
			return true
		}
	}
	for _, c := range root.Children() {
		if replaceChild(c, old, new) {
			return true
		}
	}
	return false
}

// pushConjuncts consumes dim-vs-constant conjuncts into sc, returning
// the residual condition (nil when everything was pushed). The
// classification and consumption policy live in AnalyzeDimConjuncts,
// shared with the executor's runtime pushdown; here the constants are
// integer literals (post-folding) and dimensions already restricted by
// FROM-clause slicing are left entirely to the filter.
func pushConjuncts(cond ast.Expr, sc *Scan) ast.Expr {
	conjs := splitAnd(cond)
	resolve := func(id *ast.Ident) int {
		if id.Table != "" && !strings.EqualFold(id.Table, sc.scanQual()) {
			return -1
		}
		for i := range sc.Dims {
			if strings.EqualFold(sc.Dims[i].Name, id.Name) {
				return i
			}
		}
		return -1
	}
	eval := func(x ast.Expr) (int64, bool) {
		l, ok := x.(*ast.Literal)
		if !ok || l.Val.Null || l.Val.Typ != value.Int {
			return 0, false
		}
		return l.Val.I, true
	}
	blocked := func(di int) bool { return sc.Dims[di].Sliced }
	restrict, consumed := AnalyzeDimConjuncts(conjs, resolve, eval, blocked)
	// Apply in dimension order so the rendered plan is deterministic.
	for di := range sc.Dims {
		r := restrict[di]
		if r == nil {
			continue
		}
		d := &sc.Dims[di]
		switch {
		case r.Point:
			d.Point = strconv.FormatInt(r.Val, 10)
			d.Pushed = true
		case r.HasLo || r.HasHi:
			if r.HasLo {
				d.Lo = strconv.FormatInt(r.Lo, 10)
			}
			if r.HasHi {
				d.Hi = strconv.FormatInt(r.Hi, 10)
			}
			d.Pushed = true
		}
	}
	var residual []ast.Expr
	for i, c := range conjs {
		if !consumed[i] {
			residual = append(residual, c)
		}
	}
	return andJoin(residual)
}

func (s *Scan) scanQual() string {
	if s.Qual != "" {
		return s.Qual
	}
	return s.Name
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func splitAnd(x ast.Expr) []ast.Expr {
	if x == nil {
		return nil
	}
	if b, ok := x.(*ast.Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []ast.Expr{x}
}

func andJoin(conjs []ast.Expr) ast.Expr {
	var out ast.Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &ast.Binary{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// --- rule 3: projection pruning ---------------------------------------------

// prune drops scan attributes the query never references. A * target
// (or any unresolvable reference shape) disables pruning.
func (p *Plan) prune(cat Catalog) {
	refs, prunable := referencedNames(p.sel)
	if !prunable {
		return
	}
	var walk func(n Node)
	walk = func(n Node) {
		if sc, ok := n.(*Scan); ok && !sc.Table {
			var kept []string
			for _, a := range sc.Attrs {
				if refs[strings.ToLower(a)] {
					kept = append(kept, a)
				}
			}
			if len(kept) < len(sc.Attrs) {
				sc.Attrs = kept
				sc.AllAttrs = false
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.Root)
}

// referencedNames collects every identifier name mentioned anywhere in
// the select (lowercased); ok is false when a * item makes the
// reference set unbounded.
func referencedNames(sel *ast.Select) (map[string]bool, bool) {
	refs := make(map[string]bool)
	ok := true
	visit := func(x ast.Expr) {
		ast.Walk(x, func(n ast.Expr) bool {
			switch t := n.(type) {
			case *ast.Star:
				ok = false
				return false
			case *ast.Ident:
				refs[strings.ToLower(t.Name)] = true
			case *ast.Subquery:
				// Correlated subqueries may reference anything.
				ok = false
				return false
			}
			return true
		})
	}
	for cur := sel; cur != nil; cur = cur.SetRight {
		for _, it := range cur.Items {
			visit(it.Expr)
		}
		for _, fi := range cur.From {
			if tr, isTR := fi.(*ast.TableRef); isTR {
				for _, ix := range tr.Indexers {
					visit(ix.Point)
					visit(ix.Start)
					visit(ix.Stop)
					visit(ix.Step)
				}
			}
		}
		visit(cur.Where)
		if cur.GroupBy != nil {
			for _, k := range cur.GroupBy.Exprs {
				visit(k)
			}
			for _, t := range cur.GroupBy.Tiles {
				visit(t.Ref)
			}
		}
		visit(cur.Having)
		for _, oi := range cur.OrderBy {
			visit(oi.Expr)
		}
		visit(cur.Limit)
	}
	return refs, ok
}
