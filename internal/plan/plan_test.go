package plan

import (
	"strings"
	"testing"

	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// fakeCat is a static schema provider for planner tests.
type fakeCat struct{}

func (fakeCat) ArrayInfo(name string) (dims, attrs []string, ok bool) {
	switch strings.ToLower(name) {
	case "matrix":
		return []string{"x", "y"}, []string{"v", "w"}, true
	case "series":
		return []string{"t"}, []string{"data"}, true
	}
	return nil, nil, false
}

func (fakeCat) IsTable(name string) bool { return strings.EqualFold(name, "events") }

func mustSelect(t *testing.T, sql string) *ast.Select {
	t.Helper()
	stmt, err := parser.ParseOne(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel, ok := stmt.(*ast.Select)
	if !ok {
		t.Fatalf("%q is %T, want *ast.Select", sql, stmt)
	}
	return sel
}

func optimized(t *testing.T, sql string) *Plan {
	t.Helper()
	return PlanSelect(mustSelect(t, sql), fakeCat{})
}

// golden asserts an exact rendered plan: the EXPLAIN contract.
func golden(t *testing.T, sql, want string) {
	t.Helper()
	got := optimized(t, sql).String()
	want = strings.TrimLeft(want, "\n")
	if got != want {
		t.Errorf("plan for %q:\ngot:\n%s\nwant:\n%s", sql, got, want)
	}
}

// TestPushdownGolden covers the bounded-array-select shape of the
// paper: equality pins a dimension, inequalities become a half-open
// slice, the attribute predicate stays in the filter, and unused
// attributes are pruned from the scan.
func TestPushdownGolden(t *testing.T) {
	golden(t,
		`SELECT v FROM matrix WHERE x = 1 AND y >= 2 AND y < 6 AND v > 0`,
		`
Project v
  Filter (v > 0)
    Scan matrix dims[x=1 (pushed), y=[2:6) (pushed)] attrs[v]
`)
}

// TestTilingGolden covers the paper's structural aggregation (§4.4):
// DISTINCT tiling compiles to a TiledAggregate over the anchor scan.
func TestTilingGolden(t *testing.T) {
	golden(t,
		`SELECT [x], [y], AVG(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
		`
Project [x], [y], AVG(v)
  TiledAggregate matrix distinct tiles[matrix[x:(x + 2)][y:(y + 2)]] aggs[AVG(v)]
    Scan matrix attrs[v]
`)
}

// TestConstantFolding checks pure-literal subtrees fold before
// rendering and that folded comparisons still push down.
func TestConstantFolding(t *testing.T) {
	golden(t,
		`SELECT v + (2 * 3) FROM matrix WHERE x < 4 + 4`,
		`
Project (v + 6)
  Scan matrix dims[x=[*:8) (pushed)] attrs[v]
`)
}

// TestFromSliceGolden checks FROM-clause slicing lands on the scan and
// blocks double-pushing the same dimension.
func TestFromSliceGolden(t *testing.T) {
	golden(t,
		`SELECT v FROM matrix[0:4][0:4] WHERE x > 1`,
		`
Project v
  Filter (x > 1)
    Scan matrix dims[x=[0:4) (sliced), y=[0:4) (sliced)] attrs[v]
`)
}

// TestFullyConsumedFilter checks the filter node disappears when every
// conjunct pushes into the scan.
func TestFullyConsumedFilter(t *testing.T) {
	golden(t,
		`SELECT v FROM matrix WHERE x = 3`,
		`
Project v
  Scan matrix dims[x=3 (pushed)] attrs[v]
`)
}

// TestValueAggregate checks value grouping compiles to Aggregate and
// keeps the group key attribute in the scan.
func TestValueAggregate(t *testing.T) {
	golden(t,
		`SELECT w, SUM(v) FROM matrix GROUP BY w ORDER BY w LIMIT 3`,
		`
Limit 3
  Sort w
    Project w, SUM(v)
      Aggregate keys[w] aggs[SUM(v)]
        Scan matrix
`)
}

// TestConflictingConjunctsStayVisible checks contradictory or
// redundant dimension predicates never silently vanish from the plan:
// the scan keeps the first equality and the rest stay in the filter.
func TestConflictingConjunctsStayVisible(t *testing.T) {
	golden(t,
		`SELECT v FROM matrix WHERE x = 1 AND x = 2`,
		`
Project v
  Filter (x = 2)
    Scan matrix dims[x=1 (pushed)] attrs[v]
`)
	golden(t,
		`SELECT v FROM matrix WHERE x = 1 AND x < 0`,
		`
Project v
  Filter (x < 0)
    Scan matrix dims[x=1 (pushed)] attrs[v]
`)
	// A redundant duplicate equality is consumed outright.
	golden(t,
		`SELECT v FROM matrix WHERE x = 1 AND x = 1`,
		`
Project v
  Scan matrix dims[x=1 (pushed)] attrs[v]
`)
}

// TestStarDisablesPruning checks SELECT * keeps all attributes.
func TestStarDisablesPruning(t *testing.T) {
	p := optimized(t, `SELECT * FROM matrix`)
	if strings.Contains(p.String(), "attrs[") {
		t.Fatalf("star select pruned attributes:\n%s", p.String())
	}
}

// TestParallelFlags checks the structural gate.
func TestParallelFlags(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{`SELECT v FROM matrix WHERE v > 0`, true},
		{`SELECT [x], [y], AVG(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`, true},
		{`SELECT COUNT(*) FROM events`, true},
		{`SELECT a.v FROM matrix AS a, matrix AS b`, false},
		{`SELECT v FROM matrix UNION SELECT v FROM matrix`, false},
		{`SELECT v FROM (SELECT v FROM matrix) AS s`, false},
		// JOIN ... ON runs the partitioned hash join, which parallelizes
		// internally; only the unkeyed comma join stays serial.
		{`SELECT m.v FROM matrix AS m JOIN events ON m.x = events.x`, true},
		{`SELECT 1`, false},
		{`SELECT v FROM nosuch`, false},
	}
	for _, c := range cases {
		p := optimized(t, c.sql)
		if p.Parallel != c.want {
			t.Errorf("%q: Parallel = %v (reason %q), want %v", c.sql, p.Parallel, p.Reason, c.want)
		}
	}
}

// TestTableScan checks relational tables plan as TableScan without
// attribute pruning.
func TestTableScan(t *testing.T) {
	golden(t,
		`SELECT x FROM events WHERE x > 1`,
		`
Project x
  Filter (x > 1)
    TableScan events
`)
}
