// Package server assembles sciqld: a PostgreSQL wire-protocol
// listener and an HTTP/JSON listener over one sciql.DB, with governor
// configuration, structured request logs fed by the engine trace
// hook, and graceful drain-based shutdown.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server/httpapi"
	"repro/internal/server/pgwire"
	"repro/internal/telemetry"
	"repro/sciql"
)

// Config carries everything sciqld needs to listen. The governor
// fields surface the sciql.DB knobs from PR 9; zero values leave the
// corresponding knob at its engine default (off).
type Config struct {
	// PgAddr is the wire-protocol listen address ("127.0.0.1:5433");
	// empty disables the pgwire listener.
	PgAddr string
	// HTTPAddr is the HTTP/JSON listen address; empty disables it.
	HTTPAddr string
	// Password arms cleartext-password authentication on pgwire
	// connections; empty means trust.
	Password string

	// MaxConns caps concurrently open pgwire connections; 0 = unlimited.
	MaxConns int
	// MaxConcurrentQueries, AdmissionQueueDepth/Wait, MemoryLimit,
	// StatementTimeout and SlowQueryThreshold configure the engine
	// governor (sciql.DB setters of the same names).
	MaxConcurrentQueries int
	AdmissionQueueDepth  int
	AdmissionQueueWait   time.Duration
	MemoryLimitPerQuery  int64
	MemoryLimitTotal     int64
	StatementTimeout     time.Duration
	SlowQueryThreshold   time.Duration

	// ShutdownGrace bounds graceful drain before in-flight work is
	// cut off; 0 means 10s.
	ShutdownGrace time.Duration

	// Log receives server and request logs; nil discards them.
	Log *slog.Logger
}

// Server is a running sciqld instance.
type Server struct {
	cfg Config
	db  *sciql.DB
	log *slog.Logger

	reg     *telemetry.Registry
	pgMet   *pgwire.Metrics
	httpMet *httpapi.Metrics

	backend *pgwire.Backend
	httpsrv *http.Server

	pgLis   net.Listener
	httpLis net.Listener

	// shutCtx fires at the start of graceful shutdown; idle pgwire
	// read loops poll it.
	shutCtx    context.Context
	shutCancel context.CancelFunc

	draining atomic.Bool
	conns    atomic.Int64 // live pgwire connections (admission gate)

	wg      sync.WaitGroup // pgwire connection handlers
	lisWG   sync.WaitGroup // accept loops
	closed  atomic.Bool
	trackMu sync.Mutex
	tracked map[net.Conn]struct{}
}

// New wires a server around db, applying the governor configuration.
func New(db *sciql.DB, cfg Config) *Server {
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 10 * time.Second
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		cfg:     cfg,
		db:      db,
		log:     log,
		reg:     reg,
		pgMet:   pgwire.NewMetrics(reg),
		httpMet: httpapi.NewMetrics(reg),
		tracked: map[net.Conn]struct{}{},
	}
	s.shutCtx, s.shutCancel = context.WithCancel(context.Background())

	if cfg.MaxConcurrentQueries > 0 {
		db.SetMaxConcurrentQueries(cfg.MaxConcurrentQueries)
	}
	if cfg.AdmissionQueueDepth > 0 || cfg.AdmissionQueueWait > 0 {
		db.SetAdmissionQueue(cfg.AdmissionQueueDepth, cfg.AdmissionQueueWait)
	}
	if cfg.MemoryLimitPerQuery > 0 || cfg.MemoryLimitTotal > 0 {
		db.SetMemoryLimit(cfg.MemoryLimitPerQuery, cfg.MemoryLimitTotal)
	}
	if cfg.StatementTimeout > 0 {
		db.SetStatementTimeout(cfg.StatementTimeout)
	}
	if cfg.SlowQueryThreshold > 0 {
		db.SetSlowQueryThreshold(cfg.SlowQueryThreshold, nil)
	}
	// Engine trace events become structured request logs: one line
	// per statement close, with duration, rows and error class.
	db.SetTraceHook(func(ev sciql.TraceEvent) {
		if ev.Phase != sciql.TraceClose {
			return
		}
		attrs := []any{
			"kind", ev.Kind,
			"query", truncateSQL(ev.Query),
			"duration", ev.D.String(),
			"rows", ev.Rows,
		}
		if ev.Err != nil {
			attrs = append(attrs, "err", ev.Err.Error(), "sqlstate", sciql.SQLState(ev.Err))
			log.Warn("statement", attrs...)
			return
		}
		log.Info("statement", attrs...)
	})

	s.backend = &pgwire.Backend{
		DB:       db,
		Password: cfg.Password,
		Admit:    s.admitConn,
		Log:      log,
		Met:      s.pgMet,
	}
	return s
}

func truncateSQL(sql string) string {
	const max = 200
	if len(sql) > max {
		return sql[:max] + "..."
	}
	return sql
}

// Registry exposes the server's own protocol counters (for tests and
// the /metrics merge).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// admitConn gates one pgwire connection after startup.
func (s *Server) admitConn() bool {
	if s.draining.Load() {
		return false
	}
	// conns already counts the connection being admitted (the accept
	// loop increments before Serve), hence the strict inequality.
	if s.cfg.MaxConns > 0 && s.conns.Load() > int64(s.cfg.MaxConns) {
		return false
	}
	return true
}

// Start opens the configured listeners and begins serving. It returns
// once listening (use Addrs for the bound addresses) — serving
// continues on background goroutines until Shutdown.
func (s *Server) Start() error {
	if s.cfg.PgAddr == "" && s.cfg.HTTPAddr == "" {
		return errors.New("server: no listen addresses configured")
	}
	if s.cfg.PgAddr != "" {
		lis, err := net.Listen("tcp", s.cfg.PgAddr)
		if err != nil {
			return fmt.Errorf("pgwire listen: %w", err)
		}
		s.pgLis = lis
		s.lisWG.Add(1)
		go s.acceptLoop(lis)
		s.log.Info("pgwire listening", "addr", lis.Addr().String())
	}
	if s.cfg.HTTPAddr != "" {
		lis, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			if s.pgLis != nil {
				s.pgLis.Close()
			}
			return fmt.Errorf("http listen: %w", err)
		}
		s.httpLis = lis
		h := &httpapi.Handler{
			DB:       s.db,
			Log:      s.log,
			Met:      s.httpMet,
			Draining: &s.draining,
		}
		s.httpsrv = &http.Server{Handler: h.Mux(s.reg)}
		s.lisWG.Add(1)
		go func() {
			defer s.lisWG.Done()
			s.httpsrv.Serve(lis)
		}()
		s.log.Info("http listening", "addr", lis.Addr().String())
	}
	return nil
}

// PgAddr returns the bound pgwire address ("" when disabled) — useful
// with a ":0" config.
func (s *Server) PgAddr() string {
	if s.pgLis == nil {
		return ""
	}
	return s.pgLis.Addr().String()
}

// HTTPAddr returns the bound HTTP address ("" when disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLis == nil {
		return ""
	}
	return s.httpLis.Addr().String()
}

// acceptLoop accepts pgwire connections until the listener closes.
func (s *Server) acceptLoop(lis net.Listener) {
	defer s.lisWG.Done()
	for {
		nc, err := lis.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.conns.Add(1)
		s.track(nc, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Add(-1)
			defer s.track(nc, false)
			s.backend.Serve(s.shutCtx, nc)
		}()
	}
}

func (s *Server) track(nc net.Conn, add bool) {
	s.trackMu.Lock()
	if add {
		s.tracked[nc] = struct{}{}
	} else {
		delete(s.tracked, nc)
	}
	s.trackMu.Unlock()
}

// Shutdown drains and stops the server: close listeners, flip
// readiness, cancel the shutdown context so idle connections say
// goodbye (SQLSTATE 57P01), drain the engine admission gate, then
// wait for connection handlers up to the grace period before
// force-closing stragglers. Safe to call once; ctx bounds the whole
// operation below the configured grace.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.log.Info("shutdown: draining")
	s.draining.Store(true)
	if s.pgLis != nil {
		s.pgLis.Close()
	}
	if s.httpsrv != nil {
		httpCtx, cancel := context.WithTimeout(ctx, s.cfg.ShutdownGrace)
		s.httpsrv.Shutdown(httpCtx)
		cancel()
	}
	s.shutCancel()

	grace := s.cfg.ShutdownGrace
	if dl, ok := ctx.Deadline(); ok {
		if until := time.Until(dl); until < grace {
			grace = until
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(grace):
		// Grace expired: cut the remaining sockets; handlers notice
		// the read/write error and tear down their sessions.
		s.trackMu.Lock()
		n := len(s.tracked)
		for nc := range s.tracked {
			nc.Close()
		}
		s.trackMu.Unlock()
		s.log.Warn("shutdown: force-closed connections", "count", n)
		err = fmt.Errorf("server: force-closed %d connections after %s grace", n, s.cfg.ShutdownGrace)
		<-done
	}

	// With sessions gone, drain the engine so in-flight admission
	// slots settle before the process exits.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	s.db.Drain(drainCtx)
	cancel()
	s.lisWG.Wait()
	s.db.SetTraceHook(nil)
	s.log.Info("shutdown: complete")
	return err
}
