package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/server/pgwire"
	"repro/sciql"
)

// The protocol conformance suite: scripted request/response sessions
// over a real TCP socket, asserting the same invariants as
// sciql/fault_test.go — byte-identical results against the in-process
// path, clean typed errors with the right SQLSTATE, and no leaked
// snapshot or goroutine after disconnects and drains.

// newTestServer starts a sciqld on ephemeral ports around a fresh DB
// loaded with the walkthrough-style schema. mutate (optional) adjusts
// the config before Start.
func newTestServer(t *testing.T, mutate func(*server.Config)) (*server.Server, *sciql.DB) {
	t.Helper()
	db := sciql.Open()
	db.MustExec(`
		CREATE ARRAY matrix (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		UPDATE matrix SET v = x * 4 + y;
		CREATE ARRAY diagonal (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4] CHECK(x = y), v FLOAT DEFAULT 0.0);
		UPDATE diagonal SET v = x + y;
		CREATE ARRAY big (x INTEGER DIMENSION[64], y INTEGER DIMENSION[64], v FLOAT DEFAULT 0.0);
		UPDATE big SET v = x * 64 + y;
		CREATE TABLE mtable (x INTEGER, y INTEGER, v FLOAT);
		INSERT INTO mtable SELECT x, y, v FROM matrix;
	`)
	cfg := server.Config{PgAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", ShutdownGrace: 2 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	srv := server.New(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		db.Close()
	})
	return srv, db
}

func dial(t *testing.T, srv *server.Server) *pgwire.Client {
	t.Helper()
	c, err := pgwire.Dial(srv.PgAddr(), pgwire.ClientConfig{User: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pinned(db *sciql.DB) int64 { return db.Metrics()["snapshots_pinned"] }

// waitForPinned polls until snapshots_pinned drops to zero.
func waitForPinned(t *testing.T, db *sciql.DB) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pinned(db) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("snapshots still pinned: %d", pinned(db))
}

// waitForGoroutines polls until the goroutine count settles back to
// (roughly) the baseline, failing the test on a leak.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
}

// wantPgError asserts err is a *PgError carrying the SQLSTATE code.
func wantPgError(t *testing.T, err error, code string) *pgwire.PgError {
	t.Helper()
	var pe *pgwire.PgError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PgError %s", err, err, code)
	}
	if pe.Code != code {
		t.Fatalf("SQLSTATE = %s (%s), want %s", pe.Code, pe.Message, code)
	}
	return pe
}

// paperQueries is the walkthrough slice the parity test replays over
// the wire: scans, slicing, aggregation, joins, coercion output.
var paperQueries = []string{
	`SELECT x, y, v FROM matrix`,
	`SELECT v FROM matrix WHERE x = 1 AND y = 2`,
	`SELECT x, y, v FROM matrix[1:3][0:2]`,
	`SELECT sum(v) FROM matrix`,
	`SELECT x, count(*) FROM matrix GROUP BY x`,
	`SELECT x, y, v FROM diagonal`,
	`SELECT m.x, m.y, m.v FROM matrix AS m JOIN mtable AS t ON m.x = t.x AND m.y = t.y`,
	`SELECT x, y, v FROM big WHERE v > 4000`,
}

// TestWireParity runs the paper-walkthrough queries over pgwire and
// asserts every field is byte-identical to the in-process sciql.DB
// path rendered through the same text encoding.
func TestWireParity(t *testing.T) {
	srv, db := newTestServer(t, nil)
	c := dial(t, srv)
	defer c.Close()

	for _, q := range paperQueries {
		t.Run(q, func(t *testing.T) {
			want := inProcessRows(t, db, q)
			res, err := c.SimpleQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 1 {
				t.Fatalf("got %d results, want 1", len(res))
			}
			got := res[0].Rows
			if len(got) != len(want) {
				t.Fatalf("rows = %d, want %d", len(got), len(want))
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("row %d: %d fields, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if !bytes.Equal(got[i][j], want[i][j]) {
						t.Fatalf("row %d field %d: %q != in-process %q", i, j, got[i][j], want[i][j])
					}
				}
			}
			if wantTag := fmt.Sprintf("SELECT %d", len(want)); res[0].Tag != wantTag {
				t.Fatalf("tag = %q, want %q", res[0].Tag, wantTag)
			}
		})
	}
}

// inProcessRows materializes a query through the library path, encoded
// with the shared wire text encoder (nil = NULL).
func inProcessRows(t *testing.T, db *sciql.DB, q string) [][][]byte {
	t.Helper()
	rows, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out [][][]byte
	for rows.Next() {
		vals := rows.Values()
		fields := make([][]byte, len(vals))
		for i, v := range vals {
			fields[i] = pgwire.EncodeText(v)
		}
		out = append(out, fields)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSimpleMultiStatement covers batch semantics: statements run in
// order, the first error aborts the remainder, ReadyForQuery closes
// the cycle either way.
func TestSimpleMultiStatement(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := dial(t, srv)
	defer c.Close()

	res, err := c.SimpleQuery(`SELECT count(*) FROM matrix; SELECT sum(v) FROM diagonal`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if string(res[0].Rows[0][0]) != "16" {
		t.Fatalf("count = %s", res[0].Rows[0][0])
	}

	// Error in the middle: first statement's result arrives, the rest
	// of the batch is dropped.
	res, err = c.SimpleQuery(`SELECT count(*) FROM matrix; SELECT * FROM nosuch; SELECT 1 FROM matrix`)
	wantPgError(t, err, sciql.SQLStateGeneric)
	if len(res) != 1 {
		t.Fatalf("results before error = %d, want 1", len(res))
	}
	if c.TxStatus != 'I' {
		t.Fatalf("tx status = %c, want I", c.TxStatus)
	}

	// Parse errors classify as 42601.
	_, err = c.SimpleQuery(`SELEKT 1`)
	wantPgError(t, err, sciql.SQLStateSyntaxError)

	// Empty query string gets EmptyQueryResponse, not an error.
	res, err = c.SimpleQuery(`  ;  `)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Tag != "" {
		t.Fatalf("empty query results = %+v", res)
	}
}

// TestExtendedProtocol covers Parse/Bind/Execute: unnamed one-shots
// with parameters, named statements reused across binds, row-limited
// executes with portal suspension, and describe metadata.
func TestExtendedProtocol(t *testing.T) {
	srv, db := newTestServer(t, nil)
	c := dial(t, srv)
	defer c.Close()

	// Unnamed parse/bind/execute with positional parameters.
	res, err := c.ExtQuery(`SELECT v FROM matrix WHERE x = ?1 AND y = ?2`, []byte("1"), []byte("2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 1 {
		t.Fatalf("ext query results = %+v", res)
	}
	if got := string(res[0].Rows[0][0]); got != "6" {
		t.Fatalf("v(1,2) = %s, want 6", got)
	}
	if len(res[0].Columns) != 1 || res[0].Columns[0].Name != "v" {
		t.Fatalf("columns = %+v", res[0].Columns)
	}

	// Named statement, reused with different bindings.
	rd, wr := c.Raw()
	_ = rd
	if err := errors.Join(
		wr.WriteParse("pick", `SELECT v FROM matrix WHERE x = ?1 AND y = ?2`, []uint32{pgwire.OIDInt8, pgwire.OIDInt8}),
		wr.WriteSync(), wr.Flush(),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadCycle(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		arg1 := []byte(fmt.Sprint(i))
		if err := errors.Join(
			wr.WriteBind("", "pick", [][]byte{arg1, arg1}),
			wr.WriteExecute("", 0),
			wr.WriteSync(), wr.Flush(),
		); err != nil {
			t.Fatal(err)
		}
		res, err := c.ReadCycle()
		if err != nil {
			t.Fatal(err)
		}
		if got := string(res[0].Rows[0][0]); got != fmt.Sprint(i*4+i) {
			t.Fatalf("v(%d,%d) = %s", i, i, got)
		}
	}

	// Row-limited execute: 16-row result in chunks of 6 → two
	// suspensions, then completion; the cursor survives suspension.
	if err := errors.Join(
		wr.WriteParse("", `SELECT x, y, v FROM matrix`, nil),
		wr.WriteBind("p1", "", nil),
		wr.WriteSync(), wr.Flush(),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadCycle(); err != nil {
		t.Fatal(err)
	}
	var rows int
	for i := 0; ; i++ {
		if err := errors.Join(wr.WriteExecute("p1", 6), wr.WriteSync(), wr.Flush()); err != nil {
			t.Fatal(err)
		}
		res, err := c.ReadCycle()
		if err != nil {
			t.Fatal(err)
		}
		rows += len(res[0].Rows)
		if !res[0].Suspended {
			if res[0].Tag != "SELECT 4" {
				t.Fatalf("final tag = %q", res[0].Tag)
			}
			break
		}
		if i > 4 {
			t.Fatal("portal never completed")
		}
	}
	if rows != 16 {
		t.Fatalf("portal streamed %d rows, want 16", rows)
	}

	// Unknown statement → 26000 and skip-until-Sync.
	if err := errors.Join(
		wr.WriteBind("", "nosuchstmt", nil),
		wr.WriteExecute("", 0),
		wr.WriteSync(), wr.Flush(),
	); err != nil {
		t.Fatal(err)
	}
	_, err = c.ReadCycle()
	wantPgError(t, err, "26000")

	// Session still healthy afterwards.
	if _, err := c.SimpleQuery(`SELECT 1 FROM matrix WHERE x = 0 AND y = 0`); err != nil {
		t.Fatal(err)
	}
	waitForPinned(t, db)
}

// TestTransactions covers BEGIN/COMMIT over the wire: status
// reporting, the failed-transaction gate (25P02), COMMIT-of-failed →
// ROLLBACK, and first-committer-wins surfacing as SQLSTATE 40001.
func TestTransactions(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c1 := dial(t, srv)
	defer c1.Close()
	c2 := dial(t, srv)
	defer c2.Close()

	// Status transitions I → T → I.
	if _, err := c1.SimpleQuery(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if c1.TxStatus != 'T' {
		t.Fatalf("status after BEGIN = %c", c1.TxStatus)
	}
	if _, err := c1.SimpleQuery(`UPDATE matrix SET v = v + 1`); err != nil {
		t.Fatal(err)
	}
	res, err := c1.SimpleQuery(`COMMIT`)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Tag != "COMMIT" || c1.TxStatus != 'I' {
		t.Fatalf("commit tag=%q status=%c", res[0].Tag, c1.TxStatus)
	}

	// Failed transaction: error flips status to E, statements bounce
	// with 25P02, COMMIT rolls back.
	if _, err := c1.SimpleQuery(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SimpleQuery(`SELECT * FROM nosuch`); err == nil {
		t.Fatal("want error")
	}
	if c1.TxStatus != 'E' {
		t.Fatalf("status after in-tx error = %c, want E", c1.TxStatus)
	}
	_, err = c1.SimpleQuery(`SELECT count(*) FROM matrix`)
	wantPgError(t, err, sciql.SQLStateInFailedTransaction)
	res, err = c1.SimpleQuery(`COMMIT`)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Tag != "ROLLBACK" || c1.TxStatus != 'I' {
		t.Fatalf("failed-tx commit tag=%q status=%c, want ROLLBACK/I", res[0].Tag, c1.TxStatus)
	}

	// First-committer-wins across two wire sessions → 40001.
	for _, c := range []*pgwire.Client{c1, c2} {
		if _, err := c.SimpleQuery(`BEGIN`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c1.SimpleQuery(`UPDATE diagonal SET v = v + 10`); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.SimpleQuery(`UPDATE diagonal SET v = v + 20`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SimpleQuery(`COMMIT`); err != nil {
		t.Fatal(err)
	}
	_, err = c2.SimpleQuery(`COMMIT`)
	wantPgError(t, err, sciql.SQLStateSerializationFailure)
	if c2.TxStatus != 'I' {
		t.Fatalf("status after conflicted COMMIT = %c, want I", c2.TxStatus)
	}
}

// TestCancellation: a CancelRequest with the right key aborts the
// in-flight statement (57014); a wrong secret is ignored.
func TestCancellation(t *testing.T) {
	defer faultinject.Reset()
	srv, db := newTestServer(t, nil)
	c := dial(t, srv)
	defer c.Close()

	// The fault point fires once at scan start, so a single long delay
	// pins the statement in a cancelable window; after the sleep the
	// streaming scan polls its context and aborts.
	faultinject.Arm("scan.chunk", faultinject.Spec{Kind: faultinject.Delay, Delay: time.Second})
	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := c.SimpleQuery(`SELECT x, y, v FROM big`)
		done <- outcome{err}
	}()
	time.Sleep(50 * time.Millisecond)

	// Wrong secret first: must be ignored.
	if err := pgwire.CancelQuery(srv.PgAddr(), c.PID, c.Secret+1); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-done:
		t.Fatalf("query ended after bogus cancel: %v", o.err)
	case <-time.After(50 * time.Millisecond):
	}

	if err := pgwire.CancelQuery(srv.PgAddr(), c.PID, c.Secret); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-done:
		wantPgError(t, o.err, sciql.SQLStateQueryCanceled)
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not interrupt the query")
	}
	faultinject.Reset()

	// The session survives cancellation.
	if _, err := c.SimpleQuery(`SELECT count(*) FROM matrix`); err != nil {
		t.Fatal(err)
	}
	waitForPinned(t, db)
}

// TestAdmission covers both admission layers: the connection cap
// (rejected at startup with 53300) and the statement governor
// (ErrAdmission → 53300 on a healthy connection).
func TestAdmission(t *testing.T) {
	defer faultinject.Reset()
	srv, _ := newTestServer(t, func(cfg *server.Config) {
		cfg.MaxConns = 1
		cfg.MaxConcurrentQueries = 1
	})
	c := dial(t, srv)
	defer c.Close()

	// Second connection bounces at startup.
	_, err := pgwire.Dial(srv.PgAddr(), pgwire.ClientConfig{User: "x"})
	wantPgError(t, err, sciql.SQLStateTooManyConnections)

	// Statement admission: HTTP requests share the governor, so a
	// slow wire query makes a concurrent HTTP query bounce with the
	// same SQLSTATE in the JSON error body.
	// One long delay at scan start keeps the admission slot held well
	// past the default 1s admission-queue deadline, so the HTTP probe
	// below queues, times out, and bounces.
	faultinject.Arm("scan.chunk", faultinject.Spec{Kind: faultinject.Delay, Delay: 1500 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := c.SimpleQuery(`SELECT x, y, v FROM big`)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	body := postQuery(t, srv, `{"sql": "SELECT count(*) FROM matrix"}`, http.StatusTooManyRequests)
	if !strings.Contains(body, sciql.SQLStateTooManyConnections) {
		t.Fatalf("http admission error body = %s", body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestMidStreamDisconnect severs the socket while DataRows stream and
// asserts the fault-suite invariant: no pinned snapshot, no leaked
// goroutine, and the server keeps serving other clients.
func TestMidStreamDisconnect(t *testing.T) {
	defer faultinject.Reset()
	srv, db := newTestServer(t, nil)

	// Churn one connection first so lazily started runtime goroutines
	// (pollers etc.) are part of the baseline.
	warm := dial(t, srv)
	if _, err := warm.SimpleQuery(`SELECT count(*) FROM matrix`); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	c := dial(t, srv)
	// Slow the scan so the disconnect lands mid-stream.
	faultinject.Arm("scan.chunk", faultinject.Spec{Kind: faultinject.Delay, Delay: 5 * time.Millisecond})
	rd, wr := c.Raw()
	if err := errors.Join(wr.WriteQuery(`SELECT x, y, v FROM big`), wr.Flush()); err != nil {
		t.Fatal(err)
	}
	// Read a handful of messages, then sever the connection abruptly.
	for i := 0; i < 5; i++ {
		if _, err := rd.ReadMessage(); err != nil {
			t.Fatal(err)
		}
	}
	c.CloseAbrupt()
	faultinject.Reset()

	waitForPinned(t, db)
	waitForGoroutines(t, baseline)

	// Server still healthy.
	c2 := dial(t, srv)
	defer c2.Close()
	if _, err := c2.SimpleQuery(`SELECT count(*) FROM big`); err != nil {
		t.Fatal(err)
	}
}

// TestDrainShutdown covers graceful shutdown: idle connections get
// SQLSTATE 57P01, new connections are refused, and afterwards nothing
// is pinned and the goroutine count returns to the pre-server
// baseline.
func TestDrainShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	db := sciql.Open()
	db.MustExec(`
		CREATE ARRAY m (x INTEGER DIMENSION[8], v FLOAT DEFAULT 0.0);
		UPDATE m SET v = x * 2;
	`)
	srv := server.New(db, server.Config{
		PgAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0",
		MaxConcurrentQueries: 4, ShutdownGrace: 2 * time.Second,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	idle := dial2(t, srv.PgAddr())
	busy := dial2(t, srv.PgAddr())
	if _, err := busy.SimpleQuery(`SELECT sum(v) FROM m`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Both connections were told goodbye with 57P01 before close.
	for name, c := range map[string]*pgwire.Client{"idle": idle, "busy": busy} {
		rd, _ := c.Raw()
		msg, err := rd.ReadMessage()
		if err != nil {
			t.Fatalf("%s: read shutdown notice: %v", name, err)
		}
		if msg.Type != pgwire.MsgErrorResponse {
			t.Fatalf("%s: got %q, want ErrorResponse", name, msg.Type)
		}
		f, err := pgwire.ParseErrorResponse(msg.Data)
		if err != nil {
			t.Fatal(err)
		}
		if f.Code != sciql.SQLStateAdminShutdown {
			t.Fatalf("%s: shutdown SQLSTATE = %s, want 57P01", name, f.Code)
		}
		c.CloseAbrupt()
	}

	if pinned(db) != 0 {
		t.Fatalf("snapshots pinned after shutdown: %d", pinned(db))
	}
	waitForGoroutines(t, baseline)
	db.Close()
}

func dial2(t *testing.T, addr string) *pgwire.Client {
	t.Helper()
	c, err := pgwire.Dial(addr, pgwire.ClientConfig{User: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPasswordAuth covers the cleartext exchange: wrong password →
// 28P01, right password → normal session.
func TestPasswordAuth(t *testing.T) {
	srv, _ := newTestServer(t, func(cfg *server.Config) { cfg.Password = "sesame" })

	_, err := pgwire.Dial(srv.PgAddr(), pgwire.ClientConfig{User: "x", Password: "wrong"})
	wantPgError(t, err, sciql.SQLStateInvalidPassword)

	c, err := pgwire.Dial(srv.PgAddr(), pgwire.ClientConfig{User: "x", Password: "sesame"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SimpleQuery(`SELECT count(*) FROM matrix`); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPAPI covers the JSON surface: query happy path, error
// mapping, probes and the merged metrics scrape.
func TestHTTPAPI(t *testing.T) {
	srv, _ := newTestServer(t, nil)

	body := postQuery(t, srv, `{"sql": "SELECT x, v FROM matrix WHERE y = ?y", "args": {"y": 1}}`, http.StatusOK)
	var resp struct {
		Columns  []string `json:"columns"`
		Rows     [][]any  `json:"rows"`
		RowCount int64    `json:"rowCount"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if resp.RowCount != 4 || len(resp.Rows) != 4 || resp.Columns[1] != "v" {
		t.Fatalf("response = %+v", resp)
	}
	if got := resp.Rows[2][1].(float64); got != 9 {
		t.Fatalf("v(2,1) = %v, want 9", got)
	}

	// DML path reports affected rows and SQLSTATE-coded errors.
	postQuery(t, srv, `{"sql": "UPDATE matrix SET v = v + 1"}`, http.StatusOK)
	errBody := postQuery(t, srv, `{"sql": "SELEKT"}`, http.StatusBadRequest)
	if !strings.Contains(errBody, sciql.SQLStateSyntaxError) {
		t.Fatalf("syntax error body = %s", errBody)
	}

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		r, err := http.Get("http://" + srv.HTTPAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, r.StatusCode, want)
		}
	}

	r, err := http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	r.Body.Close()
	metrics := sb.String()
	for _, want := range []string{"queries_total", "http_requests_total"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

func postQuery(t *testing.T, srv *server.Server, body string, wantStatus int) string {
	t.Helper()
	r, err := http.Post("http://"+srv.HTTPAddr()+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if r.StatusCode != wantStatus {
		t.Fatalf("POST /query = %d (%s), want %d", r.StatusCode, sb.String(), wantStatus)
	}
	return sb.String()
}
