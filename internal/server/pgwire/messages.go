// Package pgwire implements the PostgreSQL frontend/backend wire
// protocol, version 3.0: the framing and message codec (this file),
// the server-side connection handler mapping the protocol onto
// sciql.Conn sessions (backend.go), the text-format value encoding
// (types.go), and a minimal frontend client used by the conformance
// suite and the sciqlbench network mode (client.go).
//
// The codec is deliberately paranoid: every length word is bounds-
// checked before allocation, payload buffers grow in bounded steps so
// an adversarial frame length cannot force a large allocation ahead
// of the bytes actually arriving, and every payload parser returns an
// error — never panics — on truncated or malformed input. The
// FuzzPgwireDecode target drives exactly this surface.
package pgwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants (PostgreSQL protocol 3.0).
const (
	// ProtocolVersion is the protocol 3.0 version word of a
	// StartupMessage.
	ProtocolVersion = 196608 // 3 << 16
	// sslRequestCode asks for TLS; sciqld answers 'N' (not supported).
	sslRequestCode = 80877103
	// cancelRequestCode carries a BackendKeyData pair to cancel the
	// in-flight query of another connection.
	cancelRequestCode = 80877102
	// gssRequestCode asks for GSSAPI encryption; answered 'N' too.
	gssRequestCode = 80877104
)

// Frontend message type bytes.
const (
	MsgQuery     = 'Q'
	MsgParse     = 'P'
	MsgBind      = 'B'
	MsgExecute   = 'E'
	MsgDescribe  = 'D'
	MsgClose     = 'C'
	MsgSync      = 'S'
	MsgFlush     = 'H'
	MsgTerminate = 'X'
	MsgPassword  = 'p'
)

// Backend message type bytes.
const (
	MsgAuth             = 'R'
	MsgParameterStatus  = 'S'
	MsgBackendKeyData   = 'K'
	MsgReadyForQuery    = 'Z'
	MsgRowDescription   = 'T'
	MsgDataRow          = 'D'
	MsgCommandComplete  = 'C'
	MsgErrorResponse    = 'E'
	MsgNoticeResponse   = 'N'
	MsgParseComplete    = '1'
	MsgBindComplete     = '2'
	MsgCloseComplete    = '3'
	MsgNoData           = 'n'
	MsgParamDescription = 't'
	MsgEmptyQuery       = 'I'
	MsgPortalSuspended  = 's'
)

// Framing limits. MaxFrameLen bounds any single message body; the
// decoder refuses longer frames before reading them. AllocStep bounds
// how much payload buffer is grown ahead of bytes actually read, so a
// forged length word on a short stream allocates at most one step.
const (
	MaxFrameLen = 16 << 20 // 16 MiB, matching this engine's row sizes
	allocStep   = 64 << 10
)

// ErrFrameTooLarge rejects a message whose declared length exceeds
// MaxFrameLen (or the Reader's tighter limit).
var ErrFrameTooLarge = errors.New("pgwire: frame length exceeds limit")

// Reader decodes protocol frames from a stream.
type Reader struct {
	r *bufio.Reader
	// maxLen caps accepted frame bodies; 0 means MaxFrameLen.
	maxLen int
	// bufCap tracks the largest payload buffer readN ever grew, so
	// tests can pin the bounded-allocation guarantee.
	bufCap int
}

// BufCap reports the largest payload buffer this Reader has grown.
func (r *Reader) BufCap() int { return r.bufCap }

// NewReader wraps r in a frame decoder. maxLen <= 0 uses MaxFrameLen.
func NewReader(r io.Reader, maxLen int) *Reader {
	if maxLen <= 0 || maxLen > MaxFrameLen {
		maxLen = MaxFrameLen
	}
	if br, ok := r.(*bufio.Reader); ok {
		return &Reader{r: br, maxLen: maxLen}
	}
	return &Reader{r: bufio.NewReader(r), maxLen: maxLen}
}

// Peek exposes bufio.Peek for deadline-based idle polling: the
// connection read loop peeks one byte under a short deadline, and a
// timeout leaves the stream intact (nothing consumed) so the loop can
// poll its shutdown context and retry.
func (r *Reader) Peek(n int) ([]byte, error) { return r.r.Peek(n) }

// readN reads exactly n payload bytes, growing the buffer in
// allocStep-bounded increments so a forged length cannot force an
// up-front n-byte allocation on a stream that ends early.
func (r *Reader) readN(n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	buf := make([]byte, 0, min(n, allocStep))
	for len(buf) < n {
		step := min(n-len(buf), allocStep)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if cap(buf) > r.bufCap {
			r.bufCap = cap(buf)
		}
		if _, err := io.ReadFull(r.r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Startup is the decoded first frame of a connection: a protocol 3.0
// startup with parameters, an SSL/GSS probe, or a cancel request.
type Startup struct {
	// Kind discriminates: "startup", "ssl", "gss", or "cancel".
	Kind string
	// Params holds the startup key/value pairs ("user", "database",
	// "application_name", ...) for Kind "startup".
	Params map[string]string
	// PID and Secret identify the connection to cancel for Kind
	// "cancel".
	PID    int32
	Secret int32
}

// ReadStartup decodes the untyped first frame of a connection.
func (r *Reader) ReadStartup() (*Startup, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
		return nil, err
	}
	frameLen := int(binary.BigEndian.Uint32(lenBuf[:]))
	if frameLen < 8 {
		return nil, fmt.Errorf("pgwire: startup frame length %d too short", frameLen)
	}
	if frameLen-4 > r.maxLen {
		return nil, ErrFrameTooLarge
	}
	body, err := r.readN(frameLen - 4)
	if err != nil {
		return nil, err
	}
	b := payload{data: body}
	code, err := b.int32()
	if err != nil {
		return nil, err
	}
	switch code {
	case sslRequestCode:
		return &Startup{Kind: "ssl"}, nil
	case gssRequestCode:
		return &Startup{Kind: "gss"}, nil
	case cancelRequestCode:
		pid, err := b.int32()
		if err != nil {
			return nil, err
		}
		secret, err := b.int32()
		if err != nil {
			return nil, err
		}
		return &Startup{Kind: "cancel", PID: pid, Secret: secret}, nil
	case ProtocolVersion:
		params := map[string]string{}
		for {
			key, err := b.cstring()
			if err != nil {
				return nil, err
			}
			if key == "" {
				break
			}
			val, err := b.cstring()
			if err != nil {
				return nil, err
			}
			params[key] = val
		}
		return &Startup{Kind: "startup", Params: params}, nil
	default:
		return nil, fmt.Errorf("pgwire: unsupported protocol version %d", code)
	}
}

// Msg is one typed protocol message: the type byte and its body.
type Msg struct {
	Type byte
	Data []byte
}

// ReadMessage decodes the next typed frame.
func (r *Reader) ReadMessage() (Msg, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return Msg{}, err
	}
	frameLen := int(binary.BigEndian.Uint32(hdr[1:]))
	if frameLen < 4 {
		return Msg{}, fmt.Errorf("pgwire: message %q length %d too short", hdr[0], frameLen)
	}
	if frameLen-4 > r.maxLen {
		return Msg{}, ErrFrameTooLarge
	}
	body, err := r.readN(frameLen - 4)
	if err != nil {
		return Msg{}, err
	}
	return Msg{Type: hdr[0], Data: body}, nil
}

// --- payload parsing --------------------------------------------------------

// payload is a bounds-checked cursor over a message body. Every
// accessor returns an error past the end instead of panicking.
type payload struct {
	data []byte
	off  int
}

var errTruncated = errors.New("pgwire: truncated message")

func (p *payload) byte() (byte, error) {
	if p.off >= len(p.data) {
		return 0, errTruncated
	}
	b := p.data[p.off]
	p.off++
	return b, nil
}

func (p *payload) int16() (int16, error) {
	if p.off+2 > len(p.data) {
		return 0, errTruncated
	}
	v := int16(binary.BigEndian.Uint16(p.data[p.off:]))
	p.off += 2
	return v, nil
}

func (p *payload) int32() (int32, error) {
	if p.off+4 > len(p.data) {
		return 0, errTruncated
	}
	v := int32(binary.BigEndian.Uint32(p.data[p.off:]))
	p.off += 4
	return v, nil
}

func (p *payload) cstring() (string, error) {
	for i := p.off; i < len(p.data); i++ {
		if p.data[i] == 0 {
			s := string(p.data[p.off:i])
			p.off = i + 1
			return s, nil
		}
	}
	return "", errTruncated
}

// bytes returns the next n payload bytes without copying; n is
// validated against the remaining body, so a forged field length
// cannot reach past the frame.
func (p *payload) bytes(n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.data) {
		return nil, errTruncated
	}
	b := p.data[p.off : p.off+n]
	p.off += n
	return b, nil
}

// QueryMsg is a decoded simple-protocol Query ('Q').
type QueryMsg struct{ SQL string }

// ParseQuery decodes a Query body.
func ParseQuery(data []byte) (QueryMsg, error) {
	p := payload{data: data}
	sql, err := p.cstring()
	if err != nil {
		return QueryMsg{}, err
	}
	return QueryMsg{SQL: sql}, nil
}

// ParseMsg is a decoded extended-protocol Parse ('P').
type ParseMsg struct {
	Name     string
	SQL      string
	ParamOID []uint32
}

// maxDeclaredFields bounds count words in Parse/Bind frames. A count
// is also implicitly bounded by the frame body (each declared entry
// consumes at least two bytes), but rejecting absurd counts first
// keeps the error crisp and the pre-allocation zero.
const maxDeclaredFields = 65536

// ParseParse decodes a Parse body.
func ParseParse(data []byte) (ParseMsg, error) {
	p := payload{data: data}
	var m ParseMsg
	var err error
	if m.Name, err = p.cstring(); err != nil {
		return m, err
	}
	if m.SQL, err = p.cstring(); err != nil {
		return m, err
	}
	n, err := p.int16()
	if err != nil {
		return m, err
	}
	if n < 0 || int(n) > maxDeclaredFields {
		return m, fmt.Errorf("pgwire: Parse declares %d parameter types", n)
	}
	for i := 0; i < int(n); i++ {
		oid, err := p.int32()
		if err != nil {
			return m, err
		}
		m.ParamOID = append(m.ParamOID, uint32(oid))
	}
	return m, nil
}

// BindMsg is a decoded extended-protocol Bind ('B'). A nil entry in
// Params is a NULL parameter.
type BindMsg struct {
	Portal       string
	Statement    string
	ParamFormat  []int16
	Params       [][]byte
	ResultFormat []int16
}

// ParseBind decodes a Bind body.
func ParseBind(data []byte) (BindMsg, error) {
	p := payload{data: data}
	var m BindMsg
	var err error
	if m.Portal, err = p.cstring(); err != nil {
		return m, err
	}
	if m.Statement, err = p.cstring(); err != nil {
		return m, err
	}
	nf, err := p.int16()
	if err != nil {
		return m, err
	}
	if nf < 0 || int(nf) > maxDeclaredFields {
		return m, fmt.Errorf("pgwire: Bind declares %d parameter formats", nf)
	}
	for i := 0; i < int(nf); i++ {
		f, err := p.int16()
		if err != nil {
			return m, err
		}
		m.ParamFormat = append(m.ParamFormat, f)
	}
	np, err := p.int16()
	if err != nil {
		return m, err
	}
	if np < 0 || int(np) > maxDeclaredFields {
		return m, fmt.Errorf("pgwire: Bind declares %d parameters", np)
	}
	for i := 0; i < int(np); i++ {
		vlen, err := p.int32()
		if err != nil {
			return m, err
		}
		if vlen == -1 {
			m.Params = append(m.Params, nil)
			continue
		}
		v, err := p.bytes(int(vlen))
		if err != nil {
			return m, err
		}
		m.Params = append(m.Params, v)
	}
	nr, err := p.int16()
	if err != nil {
		return m, err
	}
	if nr < 0 || int(nr) > maxDeclaredFields {
		return m, fmt.Errorf("pgwire: Bind declares %d result formats", nr)
	}
	for i := 0; i < int(nr); i++ {
		f, err := p.int16()
		if err != nil {
			return m, err
		}
		m.ResultFormat = append(m.ResultFormat, f)
	}
	return m, nil
}

// DescribeMsg is a decoded Describe ('D'): Kind 'S' (statement) or
// 'P' (portal).
type DescribeMsg struct {
	Kind byte
	Name string
}

// ParseDescribe decodes a Describe body.
func ParseDescribe(data []byte) (DescribeMsg, error) {
	p := payload{data: data}
	kind, err := p.byte()
	if err != nil {
		return DescribeMsg{}, err
	}
	name, err := p.cstring()
	if err != nil {
		return DescribeMsg{}, err
	}
	return DescribeMsg{Kind: kind, Name: name}, nil
}

// ExecuteMsg is a decoded Execute ('E'): MaxRows 0 streams the whole
// portal; a positive limit suspends the portal after that many rows.
type ExecuteMsg struct {
	Portal  string
	MaxRows int32
}

// ParseExecute decodes an Execute body.
func ParseExecute(data []byte) (ExecuteMsg, error) {
	p := payload{data: data}
	portal, err := p.cstring()
	if err != nil {
		return ExecuteMsg{}, err
	}
	maxRows, err := p.int32()
	if err != nil {
		return ExecuteMsg{}, err
	}
	return ExecuteMsg{Portal: portal, MaxRows: maxRows}, nil
}

// CloseMsg is a decoded Close ('C'): Kind 'S' or 'P'.
type CloseMsg struct {
	Kind byte
	Name string
}

// ParseClose decodes a Close body.
func ParseClose(data []byte) (CloseMsg, error) {
	d, err := ParseDescribe(data)
	return CloseMsg{Kind: d.Kind, Name: d.Name}, err
}

// ParsePassword decodes a PasswordMessage ('p') body.
func ParsePassword(data []byte) (string, error) {
	p := payload{data: data}
	return p.cstring()
}

// ErrorField holds the decoded fields of an ErrorResponse /
// NoticeResponse.
type ErrorField struct {
	Severity string
	Code     string
	Message  string
	Detail   string
}

// ParseErrorResponse decodes an ErrorResponse body (client side).
func ParseErrorResponse(data []byte) (ErrorField, error) {
	p := payload{data: data}
	var f ErrorField
	for {
		t, err := p.byte()
		if err != nil {
			return f, err
		}
		if t == 0 {
			return f, nil
		}
		v, err := p.cstring()
		if err != nil {
			return f, err
		}
		switch t {
		case 'S':
			f.Severity = v
		case 'C':
			f.Code = v
		case 'M':
			f.Message = v
		case 'D':
			f.Detail = v
		}
	}
}

// RowDescriptionField is one column of a RowDescription.
type RowDescriptionField struct {
	Name   string
	OID    uint32
	Format int16
}

// ParseRowDescription decodes a RowDescription body (client side).
func ParseRowDescription(data []byte) ([]RowDescriptionField, error) {
	p := payload{data: data}
	n, err := p.int16()
	if err != nil {
		return nil, err
	}
	if n < 0 || int(n) > maxDeclaredFields {
		return nil, fmt.Errorf("pgwire: RowDescription declares %d fields", n)
	}
	fields := make([]RowDescriptionField, 0, min(int(n), 256))
	for i := 0; i < int(n); i++ {
		var f RowDescriptionField
		if f.Name, err = p.cstring(); err != nil {
			return nil, err
		}
		if _, err = p.int32(); err != nil { // table OID
			return nil, err
		}
		if _, err = p.int16(); err != nil { // attribute number
			return nil, err
		}
		oid, err := p.int32()
		if err != nil {
			return nil, err
		}
		f.OID = uint32(oid)
		if _, err = p.int16(); err != nil { // type length
			return nil, err
		}
		if _, err = p.int32(); err != nil { // type modifier
			return nil, err
		}
		if f.Format, err = p.int16(); err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return fields, nil
}

// ParseDataRow decodes a DataRow body (client side). A nil field is
// NULL.
func ParseDataRow(data []byte) ([][]byte, error) {
	p := payload{data: data}
	n, err := p.int16()
	if err != nil {
		return nil, err
	}
	if n < 0 || int(n) > maxDeclaredFields {
		return nil, fmt.Errorf("pgwire: DataRow declares %d fields", n)
	}
	fields := make([][]byte, 0, min(int(n), 256))
	for i := 0; i < int(n); i++ {
		vlen, err := p.int32()
		if err != nil {
			return nil, err
		}
		if vlen == -1 {
			fields = append(fields, nil)
			continue
		}
		v, err := p.bytes(int(vlen))
		if err != nil {
			return nil, err
		}
		fields = append(fields, v)
	}
	return fields, nil
}

// ParseBackendKeyData decodes a BackendKeyData body (client side).
func ParseBackendKeyData(data []byte) (pid, secret int32, err error) {
	p := payload{data: data}
	if pid, err = p.int32(); err != nil {
		return 0, 0, err
	}
	if secret, err = p.int32(); err != nil {
		return 0, 0, err
	}
	return pid, secret, nil
}

// ParseParameterStatus decodes a ParameterStatus body (client side).
func ParseParameterStatus(data []byte) (key, val string, err error) {
	p := payload{data: data}
	if key, err = p.cstring(); err != nil {
		return "", "", err
	}
	if val, err = p.cstring(); err != nil {
		return "", "", err
	}
	return key, val, nil
}

// --- message writing --------------------------------------------------------

// Writer encodes protocol frames onto a stream. Writes buffer until
// Flush, matching the protocol's pipelining model (the backend flushes
// at ReadyForQuery, the frontend at Sync).
type Writer struct {
	w   *bufio.Writer
	buf []byte // current message body under construction
}

// NewWriter wraps w in a frame encoder.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Flush writes buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

func (w *Writer) begin() { w.buf = w.buf[:0] }

func (w *Writer) addByte(b byte)   { w.buf = append(w.buf, b) }
func (w *Writer) addInt16(v int16) { w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(v)) }
func (w *Writer) addInt32(v int32) { w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(v)) }
func (w *Writer) addCString(s string) {
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, 0)
}
func (w *Writer) addBytes(b []byte) { w.buf = append(w.buf, b...) }

// end frames the body under construction as one typed message.
func (w *Writer) end(typ byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(w.buf)+4))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf)
	return err
}

// WriteRaw emits one typed message with the given body.
func (w *Writer) WriteRaw(typ byte, body []byte) error {
	w.begin()
	w.addBytes(body)
	return w.end(typ)
}

// --- backend messages -------------------------------------------------------

// WriteAuthOK emits AuthenticationOk.
func (w *Writer) WriteAuthOK() error {
	w.begin()
	w.addInt32(0)
	return w.end(MsgAuth)
}

// WriteAuthCleartext emits AuthenticationCleartextPassword.
func (w *Writer) WriteAuthCleartext() error {
	w.begin()
	w.addInt32(3)
	return w.end(MsgAuth)
}

// WriteParameterStatus emits one ParameterStatus pair.
func (w *Writer) WriteParameterStatus(key, val string) error {
	w.begin()
	w.addCString(key)
	w.addCString(val)
	return w.end(MsgParameterStatus)
}

// WriteBackendKeyData emits the cancel key of this connection.
func (w *Writer) WriteBackendKeyData(pid, secret int32) error {
	w.begin()
	w.addInt32(pid)
	w.addInt32(secret)
	return w.end(MsgBackendKeyData)
}

// WriteReady emits ReadyForQuery with the transaction status: 'I'
// idle, 'T' in transaction, 'E' in failed transaction.
func (w *Writer) WriteReady(status byte) error {
	w.begin()
	w.addByte(status)
	if err := w.end(MsgReadyForQuery); err != nil {
		return err
	}
	return w.Flush()
}

// Column describes one result column for WriteRowDescription.
type Column struct {
	Name string
	OID  uint32
}

// WriteRowDescription emits the result shape of a query.
func (w *Writer) WriteRowDescription(cols []Column) error {
	w.begin()
	w.addInt16(int16(len(cols)))
	for _, c := range cols {
		w.addCString(c.Name)
		w.addInt32(0)  // table OID: not a catalog relation
		w.addInt16(0)  // attribute number
		w.addInt32(int32(c.OID))
		w.addInt16(-1) // type length: variable
		w.addInt32(-1) // type modifier
		w.addInt16(0)  // format: text
	}
	return w.end(MsgRowDescription)
}

// WriteDataRow emits one row; nil fields are NULL.
func (w *Writer) WriteDataRow(fields [][]byte) error {
	w.begin()
	w.addInt16(int16(len(fields)))
	for _, f := range fields {
		if f == nil {
			w.addInt32(-1)
			continue
		}
		w.addInt32(int32(len(f)))
		w.addBytes(f)
	}
	return w.end(MsgDataRow)
}

// WriteCommandComplete emits the command tag of a finished statement.
func (w *Writer) WriteCommandComplete(tag string) error {
	w.begin()
	w.addCString(tag)
	return w.end(MsgCommandComplete)
}

// WriteError emits an ErrorResponse with severity ERROR.
func (w *Writer) WriteError(code, message string) error {
	w.begin()
	w.addByte('S')
	w.addCString("ERROR")
	w.addByte('V')
	w.addCString("ERROR")
	w.addByte('C')
	w.addCString(code)
	w.addByte('M')
	w.addCString(message)
	w.addByte(0)
	return w.end(MsgErrorResponse)
}

// WriteParseComplete emits ParseComplete.
func (w *Writer) WriteParseComplete() error {
	w.begin()
	return w.end(MsgParseComplete)
}

// WriteBindComplete emits BindComplete.
func (w *Writer) WriteBindComplete() error {
	w.begin()
	return w.end(MsgBindComplete)
}

// WriteCloseComplete emits CloseComplete.
func (w *Writer) WriteCloseComplete() error {
	w.begin()
	return w.end(MsgCloseComplete)
}

// WriteNoData emits NoData (Describe of a rowless statement).
func (w *Writer) WriteNoData() error {
	w.begin()
	return w.end(MsgNoData)
}

// WriteParamDescription emits the declared parameter types of a
// prepared statement.
func (w *Writer) WriteParamDescription(oids []uint32) error {
	w.begin()
	w.addInt16(int16(len(oids)))
	for _, oid := range oids {
		w.addInt32(int32(oid))
	}
	return w.end(MsgParamDescription)
}

// WriteEmptyQuery emits EmptyQueryResponse.
func (w *Writer) WriteEmptyQuery() error {
	w.begin()
	return w.end(MsgEmptyQuery)
}

// WritePortalSuspended emits PortalSuspended (row-limited Execute).
func (w *Writer) WritePortalSuspended() error {
	w.begin()
	return w.end(MsgPortalSuspended)
}

// --- frontend messages ------------------------------------------------------

// WriteStartup emits a protocol 3.0 StartupMessage (untyped frame).
func (w *Writer) WriteStartup(params map[string]string) error {
	w.begin()
	w.addInt32(ProtocolVersion)
	for k, v := range params {
		w.addCString(k)
		w.addCString(v)
	}
	w.addByte(0)
	return w.endUntyped()
}

// WriteCancelRequest emits a CancelRequest (untyped frame).
func (w *Writer) WriteCancelRequest(pid, secret int32) error {
	w.begin()
	w.addInt32(cancelRequestCode)
	w.addInt32(pid)
	w.addInt32(secret)
	if err := w.endUntyped(); err != nil {
		return err
	}
	return w.Flush()
}

// endUntyped frames the body under construction without a type byte
// (startup-phase messages only).
func (w *Writer) endUntyped() error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(w.buf)+4))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf)
	return err
}

// WriteQuery emits a simple-protocol Query.
func (w *Writer) WriteQuery(sql string) error {
	w.begin()
	w.addCString(sql)
	if err := w.end(MsgQuery); err != nil {
		return err
	}
	return w.Flush()
}

// WriteParse emits an extended-protocol Parse.
func (w *Writer) WriteParse(name, sql string, paramOIDs []uint32) error {
	w.begin()
	w.addCString(name)
	w.addCString(sql)
	w.addInt16(int16(len(paramOIDs)))
	for _, oid := range paramOIDs {
		w.addInt32(int32(oid))
	}
	return w.end(MsgParse)
}

// WriteBind emits an extended-protocol Bind with text-format
// parameters and results; nil params are NULL.
func (w *Writer) WriteBind(portal, statement string, params [][]byte) error {
	w.begin()
	w.addCString(portal)
	w.addCString(statement)
	w.addInt16(0) // all parameters in text format
	w.addInt16(int16(len(params)))
	for _, p := range params {
		if p == nil {
			w.addInt32(-1)
			continue
		}
		w.addInt32(int32(len(p)))
		w.addBytes(p)
	}
	w.addInt16(0) // all results in text format
	return w.end(MsgBind)
}

// WriteDescribe emits Describe for a statement ('S') or portal ('P').
func (w *Writer) WriteDescribe(kind byte, name string) error {
	w.begin()
	w.addByte(kind)
	w.addCString(name)
	return w.end(MsgDescribe)
}

// WriteExecute emits Execute with a row limit (0 = unlimited).
func (w *Writer) WriteExecute(portal string, maxRows int32) error {
	w.begin()
	w.addCString(portal)
	w.addInt32(maxRows)
	return w.end(MsgExecute)
}

// WriteClose emits Close for a statement ('S') or portal ('P').
func (w *Writer) WriteClose(kind byte, name string) error {
	w.begin()
	w.addByte(kind)
	w.addCString(name)
	return w.end(MsgClose)
}

// WriteSync emits Sync and flushes.
func (w *Writer) WriteSync() error {
	w.begin()
	if err := w.end(MsgSync); err != nil {
		return err
	}
	return w.Flush()
}

// WritePassword emits a PasswordMessage and flushes.
func (w *Writer) WritePassword(pw string) error {
	w.begin()
	w.addCString(pw)
	if err := w.end(MsgPassword); err != nil {
		return err
	}
	return w.Flush()
}

// WriteTerminate emits Terminate and flushes.
func (w *Writer) WriteTerminate() error {
	w.begin()
	if err := w.end(MsgTerminate); err != nil {
		return err
	}
	return w.Flush()
}
