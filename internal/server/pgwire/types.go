package pgwire

import (
	"strconv"
	"strings"

	"repro/internal/value"
)

// PostgreSQL type OIDs used on the wire. Every SciQL result column
// maps onto one of these; values always travel in text format.
const (
	OIDBool      = 16
	OIDInt8      = 20
	OIDInt2      = 21
	OIDInt4      = 23
	OIDText      = 25
	OIDFloat4    = 700
	OIDFloat8    = 701
	OIDVarchar   = 1043
	OIDTimestamp = 1114
)

// TypeOID maps an engine column type onto its wire OID. Unknown (a
// streaming expression column whose type refines during iteration)
// and nested-array columns travel as text.
func TypeOID(t value.Type) uint32 {
	switch t {
	case value.Bool:
		return OIDBool
	case value.Int:
		return OIDInt8
	case value.Float:
		return OIDFloat8
	case value.Timestamp:
		return OIDTimestamp
	default:
		return OIDText
	}
}

// EncodeText renders one engine value in the wire text format; nil
// means NULL (sent as a -1 field length). Booleans use the PostgreSQL
// "t"/"f" spelling; every other type reuses the engine's canonical
// rendering, so a value seen through psql matches the in-process
// result printer byte for byte.
func EncodeText(v value.Value) []byte {
	if v.Null {
		return nil
	}
	if v.Typ == value.Bool {
		if v.B {
			return []byte("t")
		}
		return []byte("f")
	}
	return []byte(v.String())
}

// DecodeParam converts one text-format parameter into an engine value
// using the OID declared at Parse time. OID 0 (unspecified) infers:
// integer, then float, then string — send an explicit text OID to bind
// a numeric-looking string.
func DecodeParam(data []byte, oid uint32) (value.Value, error) {
	if data == nil {
		return value.NewNull(value.Unknown), nil
	}
	s := string(data)
	switch oid {
	case OIDInt2, OIDInt4, OIDInt8:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewInt(i), nil
	case OIDFloat4, OIDFloat8:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewFloat(f), nil
	case OIDBool:
		switch strings.ToLower(s) {
		case "t", "true", "1", "on", "yes":
			return value.NewBool(true), nil
		default:
			return value.NewBool(false), nil
		}
	case OIDTimestamp:
		return value.ParseTimestamp(s)
	case OIDText, OIDVarchar:
		return value.NewString(s), nil
	default:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return value.NewInt(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return value.NewFloat(f), nil
		}
		return value.NewString(s), nil
	}
}

// SplitStatements splits a simple-protocol query string on top-level
// semicolons, honoring single-quoted string literals (with ''
// escapes) and double-quoted identifiers, the two quoting forms the
// SciQL lexer accepts. Empty statements (bare semicolons, trailing
// whitespace) are dropped.
func SplitStatements(sql string) []string {
	var out []string
	start := 0
	for i := 0; i < len(sql); i++ {
		switch sql[i] {
		case '\'':
			for i++; i < len(sql); i++ {
				if sql[i] == '\'' {
					if i+1 < len(sql) && sql[i+1] == '\'' {
						i++
						continue
					}
					break
				}
			}
		case '"':
			for i++; i < len(sql); i++ {
				if sql[i] == '"' {
					break
				}
			}
		case ';':
			if s := strings.TrimSpace(sql[start:i]); s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(sql[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

// CommandTag derives the command-completion tag of a statement: its
// leading keyword, uppercased ("BEGIN", "UPDATE", "CREATE", ...).
// SELECT tags append the row count at the call site.
func CommandTag(sql string) string {
	fields := strings.Fields(sql)
	if len(fields) == 0 {
		return ""
	}
	return strings.ToUpper(fields[0])
}
