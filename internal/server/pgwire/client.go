package pgwire

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// This file is the frontend half of the protocol: a minimal scripted
// client used by the conformance suite and the concurrent-client
// benchmark. It is intentionally not a driver — tests drive exact
// message sequences through Raw() when the convenience calls are too
// coarse.

// PgError is an ErrorResponse surfaced client-side.
type PgError struct {
	Severity string
	Code     string
	Message  string
}

func (e *PgError) Error() string {
	return fmt.Sprintf("%s %s: %s", e.Severity, e.Code, e.Message)
}

// ClientConfig parameterizes Dial.
type ClientConfig struct {
	User     string
	Database string
	Password string
	// Timeout bounds each protocol read; 0 means 30s.
	Timeout time.Duration
}

// Client is one frontend connection.
type Client struct {
	nc      net.Conn
	rd      *Reader
	wr      *Writer
	timeout time.Duration

	// PID and Secret are the BackendKeyData pair (for CancelQuery).
	PID    int32
	Secret int32
	// Params collects ParameterStatus values from the greeting.
	Params map[string]string
	// TxStatus is the last ReadyForQuery status ('I', 'T' or 'E').
	TxStatus byte
}

// Dial connects and completes the startup handshake.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc: nc, rd: NewReader(nc, 0), wr: NewWriter(nc),
		timeout: cfg.Timeout, Params: map[string]string{},
	}
	if c.timeout <= 0 {
		c.timeout = 30 * time.Second
	}
	user := cfg.User
	if user == "" {
		user = "sciql"
	}
	params := map[string]string{"user": user}
	if cfg.Database != "" {
		params["database"] = cfg.Database
	}
	if err := c.wr.WriteStartup(params); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.wr.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.handshake(cfg.Password); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// handshake consumes the authentication exchange and greeting.
func (c *Client) handshake(password string) error {
	for {
		msg, err := c.read()
		if err != nil {
			return err
		}
		switch msg.Type {
		case MsgAuth:
			p := payload{data: msg.Data}
			code, err := p.int32()
			if err != nil {
				return err
			}
			switch code {
			case 0: // AuthenticationOk
			case 3: // CleartextPassword
				if err := c.wr.WritePassword(password); err != nil {
					return err
				}
				if err := c.wr.Flush(); err != nil {
					return err
				}
			default:
				return fmt.Errorf("pgwire client: unsupported auth code %d", code)
			}
		case MsgParameterStatus:
			k, v, err := ParseParameterStatus(msg.Data)
			if err != nil {
				return err
			}
			c.Params[k] = v
		case MsgBackendKeyData:
			c.PID, c.Secret, _ = ParseBackendKeyData(msg.Data)
		case MsgErrorResponse:
			f, err := ParseErrorResponse(msg.Data)
			if err != nil {
				return err
			}
			return &PgError{Severity: f.Severity, Code: f.Code, Message: f.Message}
		case MsgReadyForQuery:
			if len(msg.Data) == 1 {
				c.TxStatus = msg.Data[0]
			}
			return nil
		case MsgNoticeResponse:
			// ignore
		default:
			return fmt.Errorf("pgwire client: unexpected %q during startup", msg.Type)
		}
	}
}

func (c *Client) read() (Msg, error) {
	c.nc.SetReadDeadline(time.Now().Add(c.timeout))
	return c.rd.ReadMessage()
}

// Raw exposes the codec for scripted message sequences; call
// ReadCycle (or read messages manually) afterwards.
func (c *Client) Raw() (*Reader, *Writer) { return c.rd, c.wr }

// Result is one statement's outcome within a query cycle.
type Result struct {
	// Columns is the row description (nil for row-less statements).
	Columns []RowDescriptionField
	// Rows holds the DataRow fields; a nil field is NULL.
	Rows [][][]byte
	// Tag is the CommandComplete tag ("SELECT 3", "BEGIN", ...).
	Tag string
	// Suspended marks a row-limited Execute that left the portal open.
	Suspended bool
}

// SimpleQuery runs one simple-protocol query cycle and returns its
// per-statement results. A server error ends the cycle: results
// produced before it are returned alongside the *PgError.
func (c *Client) SimpleQuery(sql string) ([]Result, error) {
	if err := c.wr.WriteQuery(sql); err != nil {
		return nil, err
	}
	if err := c.wr.Flush(); err != nil {
		return nil, err
	}
	return c.ReadCycle()
}

// ReadCycle consumes messages until ReadyForQuery, folding them into
// per-statement results. The first ErrorResponse is returned as a
// *PgError (after the cycle completes, per protocol).
func (c *Client) ReadCycle() ([]Result, error) {
	var (
		results []Result
		cur     *Result
		pgErr   *PgError
	)
	flush := func(tag string, suspended bool) {
		if cur == nil {
			cur = &Result{}
		}
		cur.Tag = tag
		cur.Suspended = suspended
		results = append(results, *cur)
		cur = nil
	}
	for {
		msg, err := c.read()
		if err != nil {
			return results, err
		}
		switch msg.Type {
		case MsgRowDescription:
			cols, err := ParseRowDescription(msg.Data)
			if err != nil {
				return results, err
			}
			cur = &Result{Columns: cols}
		case MsgDataRow:
			fields, err := ParseDataRow(msg.Data)
			if err != nil {
				return results, err
			}
			if cur == nil {
				cur = &Result{}
			}
			cur.Rows = append(cur.Rows, fields)
		case MsgCommandComplete:
			tag := msg.Data
			if n := len(tag); n > 0 && tag[n-1] == 0 {
				tag = tag[:n-1]
			}
			flush(string(tag), false)
		case MsgPortalSuspended:
			flush("", true)
		case MsgEmptyQuery:
			flush("", false)
		case MsgErrorResponse:
			f, err := ParseErrorResponse(msg.Data)
			if err != nil {
				return results, err
			}
			if pgErr == nil {
				pgErr = &PgError{Severity: f.Severity, Code: f.Code, Message: f.Message}
			}
			cur = nil
		case MsgReadyForQuery:
			if len(msg.Data) == 1 {
				c.TxStatus = msg.Data[0]
			}
			if pgErr != nil {
				return results, pgErr
			}
			return results, nil
		case MsgParseComplete, MsgBindComplete, MsgCloseComplete, MsgNoData, MsgParamDescription, MsgNoticeResponse, MsgParameterStatus:
			// structural acknowledgements; nothing to fold
		default:
			return results, fmt.Errorf("pgwire client: unexpected message %q", msg.Type)
		}
	}
}

// ExtQuery runs sql through one unnamed Parse/Bind/Execute/Sync
// cycle. Text-format params bind positionally (nil = NULL).
func (c *Client) ExtQuery(sql string, params ...[]byte) ([]Result, error) {
	w := c.wr
	if err := errors.Join(
		w.WriteParse("", sql, nil),
		w.WriteBind("", "", params),
		w.WriteDescribe('P', ""),
		w.WriteExecute("", 0),
		w.WriteSync(),
		w.Flush(),
	); err != nil {
		return nil, err
	}
	return c.ReadCycle()
}

// CancelQuery opens a throwaway connection to addr and fires a
// CancelRequest against this client's backend.
func CancelQuery(addr string, pid, secret int32) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	wr := NewWriter(nc)
	if err := wr.WriteCancelRequest(pid, secret); err != nil {
		return err
	}
	return wr.Flush()
}

// Close terminates politely.
func (c *Client) Close() error {
	c.wr.WriteTerminate()
	c.wr.Flush()
	return c.nc.Close()
}

// CloseAbrupt severs the TCP connection with no Terminate — the
// mid-stream-disconnect case the conformance suite exercises.
func (c *Client) CloseAbrupt() error { return c.nc.Close() }
