package pgwire

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/telemetry"
	"repro/sciql"
)

// Timing constants of the connection read loop. idlePoll is the
// deadline granularity at which an idle connection polls its shutdown
// context; frameTimeout bounds how long a started frame may take to
// arrive in full (slow-loris containment).
const (
	idlePoll     = 250 * time.Millisecond
	frameTimeout = 30 * time.Second
)

// Metrics is the per-protocol instrument set, resolved once against
// the server's registry; all instruments are nil-safe no-ops when
// unset.
type Metrics struct {
	Connections         *telemetry.Counter
	ConnectionsRejected *telemetry.Counter
	ConnectionsActive   *telemetry.Gauge
	Queries             *telemetry.Counter
	Errors              *telemetry.Counter
	RowsSent            *telemetry.Counter
	Cancels             *telemetry.Counter
}

// NewMetrics resolves the pgwire instrument set in reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return &Metrics{}
	}
	return &Metrics{
		Connections:         reg.Counter("pgwire_connections_total"),
		ConnectionsRejected: reg.Counter("pgwire_connections_rejected_total"),
		ConnectionsActive:   reg.Gauge("pgwire_connections_active"),
		Queries:             reg.Counter("pgwire_queries_total"),
		Errors:              reg.Counter("pgwire_errors_total"),
		RowsSent:            reg.Counter("pgwire_rows_sent_total"),
		Cancels:             reg.Counter("pgwire_cancels_total"),
	}
}

// Backend serves PostgreSQL wire-protocol connections on top of a
// sciql.DB: each accepted connection becomes one sciql.Conn session.
type Backend struct {
	DB *sciql.DB
	// Password, when non-empty, arms cleartext-password
	// authentication at startup.
	Password string
	// Admit gates a connection after its startup message; returning
	// false rejects it with SQLSTATE 53300 (max connections reached or
	// the server is draining). nil admits everything.
	Admit func() bool
	// Log receives connection-lifecycle events; nil discards them.
	Log *slog.Logger
	// Met counts protocol activity; nil-safe when unset.
	Met *Metrics

	pidSeq  atomic.Int32
	cancels sync.Map // pid int32 -> *connEntry
}

// connEntry is the cancel-registry record of one live connection.
type connEntry struct {
	secret int32
	conn   *serverConn
}

func (b *Backend) met() *Metrics {
	if b.Met == nil {
		return &Metrics{}
	}
	return b.Met
}

func (b *Backend) logger() *slog.Logger {
	if b.Log == nil {
		return slog.New(slog.DiscardHandler)
	}
	return b.Log
}

// Serve runs one connection to completion. ctx is the server's
// graceful-shutdown context: when it fires, the connection finishes
// its in-flight statement, then notifies the client (SQLSTATE 57P01)
// and closes. Serve always closes nc.
func (b *Backend) Serve(ctx context.Context, nc net.Conn) {
	defer nc.Close()
	rd := NewReader(nc, 0)
	wr := NewWriter(nc)

	st, err := b.negotiate(rd, wr, nc)
	if err != nil || st == nil {
		return // cancel request served, probe refused, or broken startup
	}
	if b.Admit != nil && !b.Admit() {
		b.met().ConnectionsRejected.Inc()
		wr.WriteError(sciql.SQLStateTooManyConnections, "too many connections")
		wr.Flush()
		return
	}
	if !b.authenticate(rd, wr, nc) {
		return
	}

	sess, err := b.DB.Conn(ctx)
	if err != nil {
		wr.WriteError(sciql.SQLStateTooManyConnections, err.Error())
		wr.Flush()
		return
	}

	connCtx, connCancel := context.WithCancel(context.Background())
	c := &serverConn{
		b: b, nc: nc, rd: rd, wr: wr, sess: sess,
		ctx: ctx, connCtx: connCtx, connCancel: connCancel,
		prepared: map[string]*prepared{},
		portals:  map[string]*portal{},
		pid:      b.pidSeq.Add(1),
		secret:   randomSecret(),
		user:     st.Params["user"],
	}
	b.cancels.Store(c.pid, &connEntry{secret: c.secret, conn: c})
	b.met().Connections.Inc()
	b.met().ConnectionsActive.Add(1)
	log := b.logger()
	log.Info("pgwire connection open", "pid", c.pid, "remote", nc.RemoteAddr().String(), "user", c.user)
	defer func() {
		c.teardown()
		b.cancels.Delete(c.pid)
		b.met().ConnectionsActive.Add(-1)
		log.Info("pgwire connection closed", "pid", c.pid)
	}()

	if err := c.greet(); err != nil {
		return
	}
	c.readLoop()
}

// negotiate reads startup frames until a protocol 3.0 startup arrives,
// answering SSL/GSS probes with 'N' and serving cancel requests.
// Returns nil when the connection is done (cancel served or error).
func (b *Backend) negotiate(rd *Reader, wr *Writer, nc net.Conn) (*Startup, error) {
	for tries := 0; tries < 3; tries++ {
		nc.SetReadDeadline(time.Now().Add(frameTimeout))
		st, err := rd.ReadStartup()
		if err != nil {
			return nil, err
		}
		switch st.Kind {
		case "ssl", "gss":
			if _, err := nc.Write([]byte{'N'}); err != nil {
				return nil, err
			}
		case "cancel":
			b.serveCancel(st.PID, st.Secret)
			return nil, nil
		default:
			return st, nil
		}
	}
	return nil, errors.New("pgwire: too many negotiation probes")
}

// serveCancel handles a CancelRequest: if the (pid, secret) pair
// matches a live connection, its in-flight statement is canceled. Per
// protocol, no response is sent either way.
func (b *Backend) serveCancel(pid, secret int32) {
	e, ok := b.cancels.Load(pid)
	if !ok {
		return
	}
	entry := e.(*connEntry)
	if entry.secret != secret {
		return
	}
	b.met().Cancels.Inc()
	entry.conn.cancelStatement()
}

// authenticate runs the startup password exchange when armed.
func (b *Backend) authenticate(rd *Reader, wr *Writer, nc net.Conn) bool {
	if b.Password == "" {
		return true
	}
	if err := wr.WriteAuthCleartext(); err != nil || wr.Flush() != nil {
		return false
	}
	nc.SetReadDeadline(time.Now().Add(frameTimeout))
	msg, err := rd.ReadMessage()
	if err != nil || msg.Type != MsgPassword {
		return false
	}
	pw, err := ParsePassword(msg.Data)
	if err != nil || pw != b.Password {
		wr.WriteError(sciql.SQLStateInvalidPassword, "password authentication failed")
		wr.Flush()
		return false
	}
	return true
}

func randomSecret() int32 {
	var buf [4]byte
	rand.Read(buf[:])
	return int32(binary.BigEndian.Uint32(buf[:]))
}

// --- per-connection state ---------------------------------------------------

// prepared is one named (or unnamed) prepared statement.
type prepared struct {
	name      string
	sql       string
	kind      string // exec.StatementKind of the single statement
	stmt      *sciql.Stmt
	paramOIDs []uint32
}

// portal is one bound (and possibly partially executed) portal. The
// cursor and its cancelable context live as long as the portal, so a
// row-limited Execute can suspend and resume it.
type portal struct {
	stmt   *prepared
	args   []sciql.Arg
	rows   *sciql.Rows
	cols   []Column
	ctx    context.Context
	cancel context.CancelFunc
	done   bool
}

func (p *portal) close() {
	if p.rows != nil {
		p.rows.Close()
		p.rows = nil
	}
	if p.cancel != nil {
		p.cancel()
		p.cancel = nil
	}
}

// serverConn is the state of one wire-protocol connection.
type serverConn struct {
	b    *Backend
	nc   net.Conn
	rd   *Reader
	wr   *Writer
	sess *sciql.Conn
	user string

	// ctx is the server's graceful-shutdown context (polled between
	// messages); connCtx covers this connection's statements and is
	// canceled at teardown so force-closing the socket also aborts any
	// in-flight execution.
	ctx        context.Context
	connCtx    context.Context
	connCancel context.CancelFunc

	prepared map[string]*prepared
	portals  map[string]*portal
	failedTx bool
	extErr   bool // extended-protocol error: skip until Sync

	pid    int32
	secret int32

	// stmtMu guards stmtCancel, the cancel hook of the statement (or
	// portal execute) currently running; CancelRequest connections
	// call cancelStatement from their own goroutine.
	stmtMu     sync.Mutex
	stmtCancel context.CancelFunc
}

// teardown releases everything the connection holds: open portals
// (cursors pin catalog snapshots), the session (rolls back any open
// transaction), and the statement context.
func (c *serverConn) teardown() {
	for name, p := range c.portals {
		p.close()
		delete(c.portals, name)
	}
	c.connCancel()
	c.sess.Close()
}

// cancelStatement aborts the statement currently executing, if any.
func (c *serverConn) cancelStatement() {
	c.stmtMu.Lock()
	cancel := c.stmtCancel
	c.stmtMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (c *serverConn) setCancel(fn context.CancelFunc) {
	c.stmtMu.Lock()
	c.stmtCancel = fn
	c.stmtMu.Unlock()
}

// greet completes the startup sequence after authentication.
func (c *serverConn) greet() error {
	c.wr.WriteAuthOK()
	for _, kv := range [][2]string{
		{"server_version", "16.0 (sciqld)"},
		{"server_encoding", "UTF8"},
		{"client_encoding", "UTF8"},
		{"DateStyle", "ISO, MDY"},
		{"integer_datetimes", "on"},
		{"standard_conforming_strings", "on"},
	} {
		c.wr.WriteParameterStatus(kv[0], kv[1])
	}
	c.wr.WriteBackendKeyData(c.pid, c.secret)
	return c.wr.WriteReady('I')
}

// readLoop is the connection's message pump. Between messages it
// waits under a short read deadline and polls the server's shutdown
// context, so an idle connection notices a drain promptly without a
// dedicated goroutine; a statement in flight is never interrupted by
// the poll because the loop only runs between messages.
func (c *serverConn) readLoop() {
	for {
		if c.ctx.Err() != nil {
			c.wr.WriteError(sciql.SQLStateAdminShutdown, "terminating connection: server shutting down")
			c.wr.Flush()
			return
		}
		c.nc.SetReadDeadline(time.Now().Add(idlePoll))
		if _, err := c.rd.Peek(1); err != nil {
			if isTimeout(err) {
				continue
			}
			return
		}
		c.nc.SetReadDeadline(time.Now().Add(frameTimeout))
		msg, err := c.rd.ReadMessage()
		if err != nil {
			return
		}
		if done := c.dispatch(msg); done {
			return
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dispatch handles one message; true means the connection is done.
func (c *serverConn) dispatch(msg Msg) bool {
	// After an extended-protocol error, skip until Sync (protocol
	// requirement: the frontend's pipelined messages are void).
	if c.extErr && msg.Type != MsgSync && msg.Type != MsgTerminate && msg.Type != MsgQuery {
		return false
	}
	switch msg.Type {
	case MsgTerminate:
		return true
	case MsgQuery:
		q, err := ParseQuery(msg.Data)
		if err != nil {
			c.sendProtoError(err)
			return true
		}
		c.extErr = false
		c.handleSimpleQuery(q.SQL)
	case MsgParse:
		c.handleParse(msg.Data)
	case MsgBind:
		c.handleBind(msg.Data)
	case MsgDescribe:
		c.handleDescribe(msg.Data)
	case MsgExecute:
		c.handleExecute(msg.Data)
	case MsgClose:
		c.handleClose(msg.Data)
	case MsgSync:
		c.extErr = false
		c.ready()
	case MsgFlush:
		c.wr.Flush()
	case MsgPassword:
		// Stray password message outside the startup exchange.
	default:
		c.sendProtoError(fmt.Errorf("unsupported message type %q", msg.Type))
		return true
	}
	return false
}

// ready emits ReadyForQuery with the session's transaction status.
func (c *serverConn) ready() {
	status := byte('I')
	if c.sess.InTx() {
		status = 'T'
		if c.failedTx {
			status = 'E'
		}
	}
	c.wr.WriteReady(status)
}

// sendProtoError reports a protocol-level (not statement-level) error.
func (c *serverConn) sendProtoError(err error) {
	c.b.met().Errors.Inc()
	c.wr.WriteError("08P01", err.Error())
	c.wr.Flush()
}

// sendStmtError reports a statement error with its SQLSTATE class and
// marks the transaction failed when one is open.
func (c *serverConn) sendStmtError(code string, err error) {
	c.b.met().Errors.Inc()
	c.wr.WriteError(code, err.Error())
	if c.sess.InTx() {
		c.failedTx = true
	}
}

// stmtContext opens the cancelable context one statement runs under
// and registers it for CancelRequest. The returned release func must
// run when the statement finishes (but see portals, which keep their
// context for their own lifetime).
func (c *serverConn) stmtContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(c.connCtx)
	c.setCancel(cancel)
	return ctx, func() {
		c.setCancel(nil)
		cancel()
	}
}

// --- simple query protocol --------------------------------------------------

// handleSimpleQuery runs a possibly multi-statement query string:
// statements run in order, each with its own RowDescription/DataRow
// or CommandComplete; the first error aborts the remainder, and
// ReadyForQuery always closes the cycle.
func (c *serverConn) handleSimpleQuery(sql string) {
	pieces := SplitStatements(sql)
	if len(pieces) == 0 {
		c.wr.WriteEmptyQuery()
		c.ready()
		return
	}
	for _, piece := range pieces {
		if !c.runSimpleStatement(piece) {
			break
		}
	}
	c.ready()
}

// runSimpleStatement executes one statement of a simple query; false
// aborts the rest of the batch.
func (c *serverConn) runSimpleStatement(sql string) bool {
	c.b.met().Queries.Inc()
	stmts, err := parser.Parse(sql)
	if err != nil {
		c.sendStmtError(sciql.SQLStateSyntaxError, err)
		return false
	}
	if len(stmts) == 0 {
		c.wr.WriteEmptyQuery()
		return true
	}
	stmt := stmts[0]
	kind := exec.StatementKind(stmt)

	// Failed-transaction gate (PostgreSQL semantics): after an error
	// inside a transaction block, only COMMIT/ROLLBACK get through.
	if tx, ok := stmt.(*ast.TxStmt); c.failedTx && (!ok || tx.Kind == ast.TxBegin) {
		c.sendStmtError(sciql.SQLStateInFailedTransaction,
			errors.New("current transaction is aborted, commands ignored until end of transaction block"))
		return false
	}
	if tx, ok := stmt.(*ast.TxStmt); ok {
		return c.runTxStatement(sql, tx)
	}

	ctx, release := c.stmtContext()
	defer release()
	switch kind {
	case "select", "explain":
		rows, err := c.sess.QueryContext(ctx, sql)
		if err != nil {
			c.sendStmtError(sciql.SQLState(err), err)
			return false
		}
		n, err := c.sendRows(rows, 0, true)
		rows.Close()
		if err != nil {
			c.sendStmtError(sciql.SQLState(err), err)
			return false
		}
		c.wr.WriteCommandComplete("SELECT " + strconv.FormatInt(n, 10))
	default:
		if _, err := c.sess.ExecContext(ctx, sql); err != nil {
			c.sendStmtError(sciql.SQLState(err), err)
			return false
		}
		c.wr.WriteCommandComplete(CommandTag(sql))
	}
	return true
}

// runTxStatement handles BEGIN/COMMIT/ROLLBACK with the failed-
// transaction bookkeeping: COMMIT of a failed transaction rolls back
// (and says so), matching PostgreSQL.
func (c *serverConn) runTxStatement(sql string, tx *ast.TxStmt) bool {
	ctx, release := c.stmtContext()
	defer release()
	run := sql
	tag := string(tx.Kind)
	if tx.Kind == ast.TxCommit && c.failedTx {
		run, tag = "ROLLBACK", "ROLLBACK"
	}
	if _, err := c.sess.ExecContext(ctx, run); err != nil {
		c.failedTx = false // COMMIT/ROLLBACK end the transaction either way
		c.sendStmtError(sciql.SQLState(err), err)
		return false
	}
	if tx.Kind != ast.TxBegin {
		c.failedTx = false
	}
	c.wr.WriteCommandComplete(tag)
	return true
}

// sendRows streams cursor rows as DataRow messages: the row
// description first (when withDesc), then up to maxRows rows (0 = no
// limit). Returns rows sent and the cursor/write error, if any.
// Per-row telemetry accumulates in a local and flushes once per
// result (the hotloopflush discipline).
func (c *serverConn) sendRows(rows *sciql.Rows, maxRows int64, withDesc bool) (int64, error) {
	if withDesc {
		if err := c.wr.WriteRowDescription(rowColumns(rows)); err != nil {
			return 0, err
		}
	}
	var sent int64
	var werr error
	for rows.Next() {
		vals := rows.Values()
		fields := make([][]byte, len(vals))
		for i, v := range vals {
			fields[i] = EncodeText(v)
		}
		if werr = c.wr.WriteDataRow(fields); werr != nil {
			break
		}
		sent++
		if maxRows > 0 && sent >= maxRows {
			break
		}
	}
	c.b.met().RowsSent.Add(sent)
	if werr != nil {
		return sent, werr
	}
	return sent, rows.Err()
}

// rowColumns derives the wire row description from an open cursor.
func rowColumns(rows *sciql.Rows) []Column {
	names := rows.Columns()
	typs := rows.ColumnTypeNames()
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n, OID: typeOIDName(typs[i])}
	}
	return cols
}

// typeOIDName maps a SciQL type name (sciql.Rows.ColumnTypeNames)
// onto a wire OID; unknown streaming expression types travel as text.
func typeOIDName(name string) uint32 {
	switch name {
	case "INTEGER":
		return OIDInt8
	case "FLOAT":
		return OIDFloat8
	case "BOOLEAN":
		return OIDBool
	case "TIMESTAMP":
		return OIDTimestamp
	default:
		return OIDText
	}
}

// --- extended query protocol ------------------------------------------------

// extFail reports an extended-protocol error and arms skip-to-Sync.
func (c *serverConn) extFail(code string, err error) {
	c.sendStmtError(code, err)
	c.extErr = true
	c.wr.Flush()
}

func (c *serverConn) handleParse(data []byte) {
	m, err := ParseParse(data)
	if err != nil {
		c.extFail(sciql.SQLStateSyntaxError, err)
		return
	}
	if m.Name != "" {
		if _, exists := c.prepared[m.Name]; exists {
			c.extFail("42P05", fmt.Errorf("prepared statement %q already exists", m.Name))
			return
		}
	}
	stmts, err := parser.Parse(m.SQL)
	if err != nil {
		c.extFail(sciql.SQLStateSyntaxError, err)
		return
	}
	if len(stmts) > 1 {
		c.extFail(sciql.SQLStateSyntaxError, errors.New("cannot insert multiple commands into a prepared statement"))
		return
	}
	p := &prepared{name: m.Name, sql: m.SQL, paramOIDs: m.ParamOID}
	if len(stmts) == 1 {
		p.kind = exec.StatementKind(stmts[0])
		st, err := c.sess.Prepare(m.SQL)
		if err != nil {
			c.extFail(sciql.SQLState(err), err)
			return
		}
		p.stmt = st
	}
	c.prepared[m.Name] = p
	c.wr.WriteParseComplete()
}

func (c *serverConn) handleBind(data []byte) {
	m, err := ParseBind(data)
	if err != nil {
		c.extFail(sciql.SQLStateSyntaxError, err)
		return
	}
	stmt, ok := c.prepared[m.Statement]
	if !ok {
		c.extFail("26000", fmt.Errorf("prepared statement %q does not exist", m.Statement))
		return
	}
	for _, f := range m.ParamFormat {
		if f != 0 {
			c.extFail("0A000", errors.New("binary parameter format is not supported"))
			return
		}
	}
	for _, f := range m.ResultFormat {
		if f != 0 {
			c.extFail("0A000", errors.New("binary result format is not supported"))
			return
		}
	}
	args := make([]sciql.Arg, len(m.Params))
	for i, raw := range m.Params {
		var oid uint32
		if i < len(stmt.paramOIDs) {
			oid = stmt.paramOIDs[i]
		}
		v, err := DecodeParam(raw, oid)
		if err != nil {
			c.extFail("22P02", fmt.Errorf("parameter $%d: %v", i+1, err))
			return
		}
		// Positional wire parameters bind the engine's ?N ordinals.
		args[i] = sciql.Arg{Name: strconv.Itoa(i + 1), Value: v}
	}
	if m.Portal != "" {
		if _, exists := c.portals[m.Portal]; exists {
			c.extFail("42P03", fmt.Errorf("portal %q already exists", m.Portal))
			return
		}
	} else if old, ok := c.portals[""]; ok {
		old.close() // rebinding the unnamed portal discards the previous one
		delete(c.portals, "")
	}
	c.portals[m.Portal] = &portal{stmt: stmt, args: args}
	c.wr.WriteBindComplete()
}

// startPortal opens the portal's cursor on first use (Describe or
// Execute): the portal owns a cancelable context for its whole
// lifetime, so a row-limited Execute can suspend and a later Execute
// resume the same cursor.
func (c *serverConn) startPortal(p *portal) error {
	if p.rows != nil || p.done {
		return nil
	}
	ctx, cancel := context.WithCancel(c.connCtx)
	rows, err := p.stmt.stmt.QueryContext(ctx, p.args...)
	if err != nil {
		cancel()
		return err
	}
	p.rows, p.ctx, p.cancel = rows, ctx, cancel
	p.cols = rowColumns(rows)
	return nil
}

func (c *serverConn) handleDescribe(data []byte) {
	m, err := ParseDescribe(data)
	if err != nil {
		c.extFail(sciql.SQLStateSyntaxError, err)
		return
	}
	switch m.Kind {
	case 'S':
		stmt, ok := c.prepared[m.Name]
		if !ok {
			c.extFail("26000", fmt.Errorf("prepared statement %q does not exist", m.Name))
			return
		}
		c.wr.WriteParamDescription(stmt.paramOIDs)
		// Describing a parameterless SELECT opens (and closes) a
		// throwaway cursor to learn the row shape; with parameters
		// pending the shape is unknown until Bind, so NoData.
		if (stmt.kind == "select" || stmt.kind == "explain") && len(stmt.paramOIDs) == 0 {
			rows, err := stmt.stmt.QueryContext(c.connCtx)
			if err == nil {
				c.wr.WriteRowDescription(rowColumns(rows))
				rows.Close()
				return
			}
		}
		c.wr.WriteNoData()
	case 'P':
		p, ok := c.portals[m.Name]
		if !ok {
			c.extFail("34000", fmt.Errorf("portal %q does not exist", m.Name))
			return
		}
		if p.stmt.kind == "select" || p.stmt.kind == "explain" {
			if err := c.startPortal(p); err != nil {
				c.extFail(sciql.SQLState(err), err)
				return
			}
			c.wr.WriteRowDescription(p.cols)
			return
		}
		c.wr.WriteNoData()
	default:
		c.extFail(sciql.SQLStateSyntaxError, fmt.Errorf("invalid Describe kind %q", m.Kind))
	}
}

func (c *serverConn) handleExecute(data []byte) {
	m, err := ParseExecute(data)
	if err != nil {
		c.extFail(sciql.SQLStateSyntaxError, err)
		return
	}
	p, ok := c.portals[m.Portal]
	if !ok {
		c.extFail("34000", fmt.Errorf("portal %q does not exist", m.Portal))
		return
	}
	c.b.met().Queries.Inc()

	if p.stmt.kind != "select" && p.stmt.kind != "explain" {
		if p.done {
			c.wr.WriteCommandComplete(CommandTag(p.stmt.sql))
			return
		}
		ctx, release := c.stmtContext()
		defer release()
		if _, err := p.stmt.stmt.ExecContext(ctx, p.args...); err != nil {
			c.extFail(sciql.SQLState(err), err)
			return
		}
		p.done = true
		c.wr.WriteCommandComplete(CommandTag(p.stmt.sql))
		return
	}

	if p.done {
		c.wr.WriteCommandComplete("SELECT 0")
		return
	}
	if err := c.startPortal(p); err != nil {
		c.extFail(sciql.SQLState(err), err)
		return
	}
	// Register the portal's context as the cancel target while this
	// Execute streams; the context itself survives a suspend.
	c.setCancel(p.cancel)
	defer c.setCancel(nil)
	n, err := c.sendRows(p.rows, int64(m.MaxRows), false)
	if err != nil {
		p.close()
		p.done = true
		c.extFail(sciql.SQLState(err), err)
		return
	}
	if m.MaxRows > 0 && n >= int64(m.MaxRows) {
		c.wr.WritePortalSuspended()
		return
	}
	p.close()
	p.done = true
	c.wr.WriteCommandComplete("SELECT " + strconv.FormatInt(n, 10))
}

func (c *serverConn) handleClose(data []byte) {
	m, err := ParseClose(data)
	if err != nil {
		c.extFail(sciql.SQLStateSyntaxError, err)
		return
	}
	switch m.Kind {
	case 'S':
		delete(c.prepared, m.Name)
	case 'P':
		if p, ok := c.portals[m.Name]; ok {
			p.close()
			delete(c.portals, m.Name)
		}
	}
	c.wr.WriteCloseComplete()
}
