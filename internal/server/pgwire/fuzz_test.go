package pgwire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzPgwireDecode throws arbitrary bytes at the wire decoder: the
// startup path, the message framer, and every typed payload parser.
// The decoder must never panic, and a forged length word must never
// make it allocate beyond its step bound — adversarial frames fail
// with ErrFrameTooLarge or a truncation error instead. Byte one
// selects the entry point so the corpus explores both framings.
func FuzzPgwireDecode(f *testing.F) {
	// Well-formed frames, built by the real encoder.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteStartup(map[string]string{"user": "u", "database": "d"})
	w.WriteQuery("SELECT x, y, v FROM matrix WHERE v > 2; SELECT 1")
	w.WriteParse("s1", "SELECT v FROM matrix WHERE x = ?1", []uint32{OIDInt8})
	w.WriteBind("p1", "s1", [][]byte{[]byte("42"), nil})
	w.WriteDescribe('P', "p1")
	w.WriteExecute("p1", 100)
	w.WriteClose('S', "s1")
	w.WriteSync()
	w.WritePassword("hunter2")
	w.WriteCancelRequest(7, 1234)
	w.WriteTerminate()
	w.Flush()
	f.Add(buf.Bytes())

	backend := func(build func(w *Writer)) []byte {
		var b bytes.Buffer
		bw := NewWriter(&b)
		build(bw)
		bw.Flush()
		return b.Bytes()
	}
	f.Add(backend(func(w *Writer) {
		w.WriteAuthOK()
		w.WriteParameterStatus("server_encoding", "UTF8")
		w.WriteBackendKeyData(1, 2)
		w.WriteRowDescription([]Column{{Name: "v", OID: OIDFloat8}})
		w.WriteDataRow([][]byte{[]byte("1.5"), nil})
		w.WriteCommandComplete("SELECT 1")
		w.WriteError("42601", "syntax error")
		w.WriteReady('I')
	}))

	// Adversarial shapes: forged lengths, truncations, hostile counts.
	huge := []byte{'Q', 0x7f, 0xff, 0xff, 0xff}
	f.Add(huge)
	f.Add([]byte{'Q', 0xff, 0xff, 0xff, 0xff}) // negative length
	f.Add([]byte{'Q', 0, 0, 0, 3})             // length below minimum
	f.Add([]byte{0, 0, 0, 8, 4, 210, 22, 47})  // SSLRequest
	startupHuge := binary.BigEndian.AppendUint32(nil, 0xfffffff0)
	f.Add(binary.BigEndian.AppendUint32(startupHuge, ProtocolVersion))
	// Bind declaring 65535 parameters with no bytes behind them.
	bind := []byte{'B', 0, 0, 0, 10, 0, 0, 0xff, 0xff, 0xff, 0xff}
	f.Add(bind)
	f.Add([]byte{'D', 0, 0, 0, 5, 'S'}) // Describe with no name terminator

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // framing bugs show up well below 64KiB
		}
		// Startup framing.
		rd := NewReader(bytes.NewReader(data), 0)
		if st, err := rd.ReadStartup(); err == nil && st.Kind == "startup" && st.Params == nil {
			t.Fatal("startup decoded with nil params")
		}

		// Regular message stream: frame, then run every payload parser
		// that accepts this type byte — frontend and backend alike,
		// since the test client decodes backend frames too.
		rd = NewReader(bytes.NewReader(data), 0)
		for i := 0; i < 64; i++ {
			msg, err := rd.ReadMessage()
			if err != nil {
				break
			}
			ParseQuery(msg.Data)
			ParseParse(msg.Data)
			ParseBind(msg.Data)
			ParseDescribe(msg.Data)
			ParseExecute(msg.Data)
			ParseClose(msg.Data)
			ParsePassword(msg.Data)
			ParseErrorResponse(msg.Data)
			ParseRowDescription(msg.Data)
			ParseDataRow(msg.Data)
			ParseBackendKeyData(msg.Data)
			ParseParameterStatus(msg.Data)
		}
	})
}

// TestDecoderAllocationBound pins the over-allocation guarantee the
// fuzz target relies on: a frame declaring a huge length on a short
// stream must fail without the decoder allocating the declared size.
func TestDecoderAllocationBound(t *testing.T) {
	// 8 MiB declared (within MaxFrameLen), 4 real bytes behind it.
	frame := []byte{'Q', 0, 128, 0, 4, 'a', 'b', 'c', 'd'}
	allocs := testing.AllocsPerRun(10, func() {
		rd := NewReader(bytes.NewReader(frame), 0)
		if _, err := rd.ReadMessage(); err == nil {
			t.Fatal("truncated huge frame decoded successfully")
		}
	})
	// The real bound under test is bytes, not object count; assert it
	// indirectly by requiring the per-run allocation count to stay
	// tiny (a full 8 MiB prealloc would still be one alloc, so also
	// check the buffer growth path directly).
	if allocs > 16 {
		t.Fatalf("decoder made %v allocations on a truncated frame", allocs)
	}
	rd := NewReader(bytes.NewReader(frame), 0)
	if _, err := rd.ReadMessage(); err == nil {
		t.Fatal("truncated huge frame decoded successfully")
	}
	if grown := rd.BufCap(); grown > 2*allocStep {
		t.Fatalf("decoder grew its buffer to %d bytes for a 4-byte stream (step %d)", grown, allocStep)
	}
}
