// Package httpapi exposes a SciQL database over HTTP/JSON for quick
// integrations that don't want a PostgreSQL driver: POST /query runs a
// statement and streams the result as one JSON document, /metrics
// serves Prometheus text, and /healthz + /readyz are the liveness and
// drain-aware readiness probes.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/sql/parser"
	"repro/internal/telemetry"
	"repro/internal/value"
	"repro/sciql"
)

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Args bind named placeholders (?name / ?1) by name. JSON numbers
	// bind as INTEGER when integral, FLOAT otherwise; strings as
	// VARCHAR; booleans as BOOLEAN; null as NULL.
	Args map[string]any `json:"args,omitempty"`
}

// QueryResponse is the success body: a columnar header plus row values
// in natural JSON types (NULL as null, timestamps as strings).
type QueryResponse struct {
	Columns  []string `json:"columns,omitempty"`
	Types    []string `json:"types,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	RowCount int64    `json:"rowCount"`
}

// ErrorBody is the failure body; Code is the SQLSTATE class the pgwire
// surface would report for the same error.
type ErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Metrics counts HTTP API activity; instruments are nil-safe.
type Metrics struct {
	Requests *telemetry.Counter
	Errors   *telemetry.Counter
	Rows     *telemetry.Counter
}

// NewMetrics resolves the httpapi instrument set in reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return &Metrics{}
	}
	return &Metrics{
		Requests: reg.Counter("http_requests_total"),
		Errors:   reg.Counter("http_errors_total"),
		Rows:     reg.Counter("http_rows_total"),
	}
}

// Handler serves the HTTP/JSON surface of one database.
type Handler struct {
	DB  *sciql.DB
	Log *slog.Logger
	Met *Metrics
	// Draining flips the readiness probe to 503 during shutdown.
	Draining *atomic.Bool
	// MaxBodyBytes bounds the request body; 0 means 1 MiB.
	MaxBodyBytes int64
}

func (h *Handler) met() *Metrics {
	if h.Met == nil {
		return &Metrics{}
	}
	return h.Met
}

// Mux builds the route table: /query, /metrics, /healthz, /readyz.
func (h *Handler) Mux(extra *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", h.handleQuery)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if h.Draining != nil && h.Draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	// /metrics renders the engine registry and, when provided, the
	// server's own protocol counters in one scrape.
	engine := h.DB.MetricsHandler()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		engine.ServeHTTP(w, r)
		if extra != nil {
			extra.WritePrometheus(w)
		}
	})
	return mux
}

// handleQuery runs one statement (or script) and writes the JSON
// result. SELECT/EXPLAIN stream through a cursor; everything else
// goes through Exec.
func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	h.met().Requests.Inc()
	maxBody := h.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		h.fail(w, http.StatusBadRequest, sciql.SQLStateGeneric, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if req.SQL == "" {
		h.fail(w, http.StatusBadRequest, sciql.SQLStateGeneric, errors.New("missing \"sql\""))
		return
	}
	args, err := bindArgs(req.Args)
	if err != nil {
		h.fail(w, http.StatusBadRequest, sciql.SQLStateGeneric, err)
		return
	}

	stmts, err := parser.Parse(req.SQL)
	if err != nil {
		h.fail(w, http.StatusBadRequest, sciql.SQLStateSyntaxError, err)
		return
	}
	ctx := r.Context()
	var resp QueryResponse
	if len(stmts) == 1 {
		switch exec.StatementKind(stmts[0]) {
		case "select", "explain":
			rows, err := h.DB.QueryContext(ctx, req.SQL, args...)
			if err != nil {
				h.failErr(w, err)
				return
			}
			defer rows.Close()
			resp.Columns = rows.Columns()
			resp.Types = rows.ColumnTypeNames()
			resp.Rows = [][]any{}
			for rows.Next() {
				vals := rows.Values()
				out := make([]any, len(vals))
				for i, v := range vals {
					out[i] = jsonValue(v)
				}
				resp.Rows = append(resp.Rows, out)
			}
			if err := rows.Err(); err != nil {
				h.failErr(w, err)
				return
			}
			resp.RowCount = int64(len(resp.Rows))
			h.met().Rows.Add(resp.RowCount)
			h.ok(w, &resp)
			return
		}
	}
	res, err := h.DB.ExecContext(ctx, req.SQL, args...)
	if err != nil {
		h.failErr(w, err)
		return
	}
	if res != nil {
		resp.RowCount = int64(res.NumRows())
	}
	h.ok(w, &resp)
}

func (h *Handler) ok(w http.ResponseWriter, resp *QueryResponse) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(resp)
}

// failErr maps an engine error onto its SQLSTATE and an HTTP status.
func (h *Handler) failErr(w http.ResponseWriter, err error) {
	code := sciql.SQLState(err)
	status := http.StatusBadRequest
	switch code {
	case sciql.SQLStateTooManyConnections:
		status = http.StatusTooManyRequests
	case sciql.SQLStateOutOfMemory, sciql.SQLStateInternalError:
		status = http.StatusInternalServerError
	case sciql.SQLStateQueryCanceled:
		status = http.StatusRequestTimeout
	case sciql.SQLStateSerializationFailure:
		status = http.StatusConflict
	}
	h.fail(w, status, code, err)
}

func (h *Handler) fail(w http.ResponseWriter, status int, code string, err error) {
	h.met().Errors.Inc()
	if h.Log != nil {
		h.Log.Warn("http query failed", "code", code, "err", err.Error())
	}
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&body)
}

// bindArgs converts the JSON args map into engine arguments.
func bindArgs(in map[string]any) ([]sciql.Arg, error) {
	if len(in) == 0 {
		return nil, nil
	}
	args := make([]sciql.Arg, 0, len(in))
	for name, v := range in {
		switch t := v.(type) {
		case nil:
			args = append(args, sciql.Arg{Name: name, Value: value.NewNull(value.Unknown)})
		case bool:
			args = append(args, sciql.Arg{Name: name, Value: value.NewBool(t)})
		case float64:
			if t == float64(int64(t)) {
				args = append(args, sciql.Int(name, int64(t)))
			} else {
				args = append(args, sciql.Float(name, t))
			}
		case string:
			args = append(args, sciql.String(name, t))
		default:
			return nil, fmt.Errorf("arg %q: unsupported JSON type %T", name, v)
		}
	}
	return args, nil
}

// jsonValue maps an engine value onto its JSON representation; large
// integers beyond float64 precision travel as strings to survive the
// round trip.
func jsonValue(v sciql.Value) any {
	g := sciql.GoValue(v)
	if i, ok := g.(int64); ok {
		const maxExact = int64(1) << 53
		if i > maxExact || i < -maxExact {
			return strconv.FormatInt(i, 10)
		}
	}
	return g
}
