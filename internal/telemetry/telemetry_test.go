package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scan_cells_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("scan_cells_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("snapshots_pinned")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(7)
	if got := r.Snapshot()["snapshots_pinned"]; got != 7 {
		t.Fatalf("snapshot gauge = %d, want 7", got)
	}
	// Nil instruments are safe no-ops (unset optional metrics).
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Add(1)
	var nh *Histogram
	nh.Observe(time.Second)
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stmt_select_seconds")
	h.Observe(5 * time.Microsecond) // first bucket
	h.Observe(2 * time.Millisecond) // mid bucket
	h.Observe(20 * time.Second)     // +Inf bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Sum() < 20*time.Second {
		t.Fatalf("sum = %v, want >= 20s", h.Sum())
	}
	snap := r.Snapshot()
	if snap["stmt_select_seconds_count"] != 3 {
		t.Fatalf("snapshot count = %d", snap["stmt_select_seconds_count"])
	}
	if snap["stmt_select_seconds_sum_ns"] < int64(20*time.Second) {
		t.Fatalf("snapshot sum = %d", snap["stmt_select_seconds_sum_ns"])
	}
}

func TestRegisterFunc(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("snapshot_pin_age_seconds", func() int64 { return 12 })
	if got := r.Snapshot()["snapshot_pin_age_seconds"]; got != 12 {
		t.Fatalf("func gauge = %d, want 12", got)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx_commit_total").Add(5)
	r.Gauge("pool_workers").Set(4)
	r.Histogram("stmt_select_seconds").Observe(2 * time.Millisecond)
	r.RegisterFunc("derived.value", func() int64 { return 9 })
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE tx_commit_total counter\ntx_commit_total 5",
		"# TYPE pool_workers gauge\npool_workers 4",
		"# TYPE stmt_select_seconds histogram",
		`stmt_select_seconds_bucket{le="+Inf"} 1`,
		"stmt_select_seconds_count 1",
		"derived_value 9", // non-alphanumeric runes map to '_'
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	// Bucket series must be cumulative.
	if strings.Index(body, `le="0.001"`) > strings.Index(body, `le="+Inf"`) {
		t.Fatal("bucket ordering is not ascending")
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestOpStatsModeAndRender(t *testing.T) {
	var o OpStats
	if o.Mode() != "" || o.Ran() {
		t.Fatal("fresh OpStats should be idle")
	}
	if got := RenderOp(&o, false); got != " (not executed)" {
		t.Fatalf("idle render = %q", got)
	}
	o.VecBatches.Add(2)
	if o.Mode() != "vectorized" {
		t.Fatalf("mode = %q", o.Mode())
	}
	o.RowBatches.Add(1)
	if o.Mode() != "mixed" {
		t.Fatalf("mode = %q", o.Mode())
	}
	o.RowsIn.Store(100)
	o.RowsOut.Store(40)
	o.Chunks.Store(4)
	o.Cells.Store(1000)
	o.AddNanos(1500 * time.Microsecond)
	got := RenderOp(&o, true)
	for _, want := range []string{"time=1.5ms", "rows_in=100", "rows=40", "chunks=4", "cells=1000", "[mixed]"} {
		if !strings.Contains(got, want) {
			t.Fatalf("render %q missing %q", got, want)
		}
	}
}
