package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// OpStats accumulates the runtime statistics of one logical plan
// operator during a profiled (EXPLAIN ANALYZE) execution. Fields are
// atomics because parallel workers flush into them concurrently — but
// only once per scan chunk, never per row, so profiling does not
// contend on the hot path.
type OpStats struct {
	RowsIn  atomic.Int64
	RowsOut atomic.Int64
	Chunks  atomic.Int64
	Cells   atomic.Int64
	// Skipped counts scan chunks eliminated by zone-map pruning before
	// any of their cells were visited (chunk skipping).
	Skipped atomic.Int64
	// Nanos is cumulative operator wall time summed across workers
	// (like per-worker totals in parallel EXPLAIN ANALYZE elsewhere),
	// inclusive of child work on fused pipelines.
	Nanos atomic.Int64
	// VecBatches / RowBatches count how many chunks (or batches) ran
	// through the kernel pipeline vs the row interpreter; together they
	// give the operator's observed execution mode.
	VecBatches atomic.Int64
	RowBatches atomic.Int64
}

// AddNanos accumulates operator wall time.
func (o *OpStats) AddNanos(d time.Duration) { o.Nanos.Add(d.Nanoseconds()) }

// Mode renders the observed execution mode: "vectorized",
// "interpreted", "mixed" or "" when the operator never ran.
func (o *OpStats) Mode() string {
	v, r := o.VecBatches.Load(), o.RowBatches.Load()
	switch {
	case v > 0 && r > 0:
		return "mixed"
	case v > 0:
		return "vectorized"
	case r > 0:
		return "interpreted"
	}
	return ""
}

// Ran reports whether the operator recorded any activity.
func (o *OpStats) Ran() bool {
	return o.Nanos.Load() > 0 || o.RowsOut.Load() > 0 || o.RowsIn.Load() > 0 ||
		o.Chunks.Load() > 0 || o.Cells.Load() > 0 || o.Skipped.Load() > 0
}

// Profile is the per-query collector EXPLAIN ANALYZE threads through
// execution: one OpStats slot per logical operator kind. A session
// arms it for exactly one statement; unprofiled statements carry a nil
// Profile and skip every collection site on a single pointer test.
type Profile struct {
	Start time.Time
	// Scan covers array/table scans (cumulative over all scans of the
	// statement); Filter the residual WHERE, Having the post-filter,
	// Project the target list, Aggregate value grouping, Tiled
	// structural (tiling) grouping, Sort/Distinct/Limit the result
	// finishers, Join the join operator, Output the statement's final
	// row count and total wall time.
	Scan, Filter, Having, Project, Aggregate, Tiled, Sort, Distinct, Limit, Join, Output OpStats
}

// NewProfile starts a profile clock.
func NewProfile() *Profile { return &Profile{Start: time.Now()} }

// RenderOp formats one operator's annotation suffix for the analyzed
// plan tree: " (time=1.2ms rows=357 ...)" plus the observed execution
// mode. Empty when the operator never ran.
func RenderOp(o *OpStats, showIn bool) string {
	if o == nil || !o.Ran() {
		return " (not executed)"
	}
	var sb strings.Builder
	sb.WriteString(" (time=")
	sb.WriteString(fmtDuration(time.Duration(o.Nanos.Load())))
	if showIn && o.RowsIn.Load() > 0 {
		fmt.Fprintf(&sb, " rows_in=%d", o.RowsIn.Load())
	}
	fmt.Fprintf(&sb, " rows=%d", o.RowsOut.Load())
	if c := o.Chunks.Load(); c > 0 {
		fmt.Fprintf(&sb, " chunks=%d", c)
	}
	if c := o.Cells.Load(); c > 0 {
		fmt.Fprintf(&sb, " cells=%d", c)
	}
	if c := o.Skipped.Load(); c > 0 {
		fmt.Fprintf(&sb, " chunks_skipped=%d", c)
	}
	sb.WriteByte(')')
	if m := o.Mode(); m != "" {
		sb.WriteString(" [")
		sb.WriteString(m)
		sb.WriteByte(']')
	}
	return sb.String()
}

// fmtDuration rounds a duration to a readable precision for plan
// annotations (sub-millisecond times keep microsecond resolution).
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(time.Microsecond).String()
}

// --- trace events -----------------------------------------------------------

// TracePhase identifies one lifecycle point of a traced statement.
type TracePhase int

const (
	// TraceParse fires after SQL text is parsed (or fetched from the
	// statement cache); D is the parse time.
	TraceParse TracePhase = iota
	// TracePlan fires after the planner resolved the statement's
	// routing decision; D is the planning time (≈0 on a plan-cache
	// hit).
	TracePlan
	// TraceExecStart fires when execution begins.
	TraceExecStart
	// TraceFirstRow fires when the first row is produced; D is the
	// time from execution start to first row.
	TraceFirstRow
	// TraceClose fires when the statement (or its cursor) finishes; D
	// is the total wall time from execution start and Rows the number
	// of rows produced.
	TraceClose
)

// String names the phase for structured log lines.
func (p TracePhase) String() string {
	switch p {
	case TraceParse:
		return "parse"
	case TracePlan:
		return "plan"
	case TraceExecStart:
		return "exec-start"
	case TraceFirstRow:
		return "first-row"
	case TraceClose:
		return "close"
	}
	return "unknown"
}

// TraceEvent is one observation delivered to a trace hook.
type TraceEvent struct {
	Phase TracePhase
	// Query is the SQL text (as submitted; multi-statement scripts
	// trace per script).
	Query string
	// Kind is the statement kind ("select", "exec", ...).
	Kind string
	// D is the phase duration (see the TracePhase constants).
	D time.Duration
	// Rows is the row count at TraceClose (0 before).
	Rows int64
	// Err is the terminal error, if the phase observed one.
	Err error
	// When is the event timestamp.
	When time.Time
}
