// Package telemetry is the engine's dependency-free metrics core:
// atomic counters, gauges and bounded-bucket latency histograms behind
// a named registry, with expvar publishing and Prometheus-text
// rendering, plus the per-query Profile collector EXPLAIN ANALYZE
// threads through execution and the TraceEvent type the public
// trace-hook/slow-query-log surface is built on.
//
// Design constraints (mirrored from MonetDB's TRACE/stethoscope
// lineage): instruments are always compiled in, so the hot-path cost
// budget is one atomic add per scan chunk — never per row — and a
// query's results are byte-identical with profiling on or off.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the value by n (negative deltas decrement).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBounds are the histogram's upper bucket bounds in nanoseconds:
// a bounded log scale from 10µs to 10s (×~3.16 per step) plus an
// implicit +Inf bucket. Fixed at compile time so Observe is one
// branch-scan and one atomic add.
var histBounds = [...]int64{
	10_000, 31_600, 100_000, 316_000, // 10µs .. 316µs
	1_000_000, 3_160_000, 10_000_000, 31_600_000, // 1ms .. 31.6ms
	100_000_000, 316_000_000, 1_000_000_000, 3_160_000_000, // 100ms .. 3.16s
	10_000_000_000, // 10s
}

// Histogram is a bounded-bucket latency histogram (nanosecond scale).
type Histogram struct {
	buckets [len(histBounds) + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	i := 0
	for ; i < len(histBounds); i++ {
		if ns <= histBounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Registry is a named set of instruments. Instruments are get-or-
// create: the first lookup under a name allocates, later lookups
// return the same instrument, so callers resolve pointers once at
// setup and touch only atomics on the hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a computed gauge: fn is called at snapshot
// and render time (derived values like pinned-snapshot age).
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns a point-in-time view of every instrument: counters
// and gauges under their names, computed gauges likewise, histograms
// as <name>_count and <name>_sum_ns.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+len(r.funcs)+2*len(r.hists))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, fn := range r.funcs {
		out[n] = fn()
	}
	for n, h := range r.hists {
		out[n+"_count"] = h.count.Load()
		out[n+"_sum_ns"] = h.sum.Load()
	}
	return out
}

// Publish exposes the registry as one expvar variable under the given
// name (a JSON map of Snapshot). Publishing the same name twice
// panics, per the expvar contract, so callers pick distinct prefixes
// per database.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format. Metric names have non-alphanumeric runes mapped
// to '_'; histograms render as cumulative <name>_bucket{le="..."}
// series with seconds-scale bounds.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fprint := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	for _, n := range sortedKeys(r.counters) {
		m := promName(n)
		fprint("# TYPE %s counter\n%s %d\n", m, m, r.counters[n].Value())
	}
	for _, n := range sortedKeys(r.gauges) {
		m := promName(n)
		fprint("# TYPE %s gauge\n%s %d\n", m, m, r.gauges[n].Value())
	}
	for _, n := range sortedKeys(r.funcs) {
		m := promName(n)
		fprint("# TYPE %s gauge\n%s %d\n", m, m, r.funcs[n]())
	}
	for _, n := range sortedKeys(r.hists) {
		h := r.hists[n]
		m := promName(n)
		fprint("# TYPE %s histogram\n", m)
		cum := int64(0)
		for i, ub := range histBounds {
			cum += h.buckets[i].Load()
			fprint("%s_bucket{le=\"%g\"} %d\n", m, float64(ub)/1e9, cum)
		}
		cum += h.buckets[len(histBounds)].Load()
		fprint("%s_bucket{le=\"+Inf\"} %d\n", m, cum)
		fprint("%s_sum %g\n", m, float64(h.sum.Load())/1e9)
		fprint("%s_count %d\n", m, h.count.Load())
	}
}

// Handler returns an http.Handler serving WritePrometheus — the
// /metrics endpoint of a scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promName maps a registry name onto the Prometheus metric charset.
func promName(n string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, n)
}
