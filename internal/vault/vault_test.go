package vault

import (
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
	"repro/internal/vault/fits"
	"repro/internal/vault/mseed"
	"repro/internal/workload"
)

func writeTestFITS(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "img.fits")
	im := &fits.Image{
		Header: fits.NewHeader(),
		Naxis:  []int64{4, 3},
		Bitpix: 32,
		Ints:   make([]int32, 12),
	}
	for i := range im.Ints {
		im.Ints[i] = int32(i)
	}
	ev := workload.NewXRayEvents(100, 64, 3, 7)
	f := &fits.File{Primary: im, Tables: []*fits.BinTable{ev.ToFITSTable()}}
	if err := fits.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeTestMSEED(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "vol.mseed")
	w1 := workload.NewWaveform("AASN", 200, 1_000_000, 1_000_000, 2, 3, 1)
	w2 := workload.NewWaveform("ABSN", 150, 2_000_000, 1_000_000, 1, 1, 2)
	err := mseed.WriteVolume(path, []*mseed.Record{w1.ToRecord(1), w2.ToRecord(2)})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegisterFormatInference(t *testing.T) {
	v := New()
	e, err := v.Register("/data/x.fits", "", "")
	if err != nil || e.Format != "fits" || e.Object != "x" {
		t.Fatalf("fits inference: %+v %v", e, err)
	}
	e, err = v.Register("/data/y.mseed", "", "wave")
	if err != nil || e.Format != "mseed" || e.Object != "wave" {
		t.Fatalf("mseed inference: %+v %v", e, err)
	}
	if _, err := v.Register("/data/z.bin", "", ""); err == nil {
		t.Fatal("unknown extension should error")
	}
	if got := len(v.Entries()); got != 2 {
		t.Fatalf("entries = %d", got)
	}
}

func TestFITSPeekCountWithoutLoad(t *testing.T) {
	dir := t.TempDir()
	path := writeTestFITS(t, dir)
	v := New()
	if _, err := v.Register(path, "", ""); err != nil {
		t.Fatal(err)
	}
	n, err := v.Count(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("header count = %d, want 12", n)
	}
	e, _ := v.Lookup(path)
	if e.Status != Peeked {
		t.Fatalf("status = %s, want peeked", e.Status)
	}
	shape, err := v.Shape(path)
	if err != nil || len(shape) != 2 || shape[0] != 4 || shape[1] != 3 {
		t.Fatalf("shape = %v %v", shape, err)
	}
}

func TestFITSAttach(t *testing.T) {
	dir := t.TempDir()
	path := writeTestFITS(t, dir)
	v := New()
	if _, err := v.Register(path, "", "img"); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	if err := v.AttachFITS(path, cat); err != nil {
		t.Fatal(err)
	}
	a, ok := cat.Array("img")
	if !ok {
		t.Fatal("image array missing")
	}
	if a.Store.Len() != 12 {
		t.Fatalf("image cells = %d, want 12", a.Store.Len())
	}
	// Fortran order: payload index i maps to (x1=i%4, x2=i/4).
	if got := a.Get([]int64{1, 2}, 0).AsInt(); got != 9 {
		t.Errorf("pixel (1,2) = %d, want 9", got)
	}
	tbl, ok := cat.Table("img_t1")
	if !ok {
		t.Fatal("event table missing")
	}
	if tbl.NumRows() != 100 {
		t.Fatalf("event rows = %d, want 100", tbl.NumRows())
	}
	e, _ := v.Lookup(path)
	if e.Status != Attached {
		t.Fatalf("status = %s, want attached", e.Status)
	}
}

func TestMSEEDRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := writeTestMSEED(t, dir)
	recs, err := mseed.ReadVolume(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Station != "AASN" || recs[0].Seqnr != 1 {
		t.Fatalf("record 0: %+v", recs[0])
	}
	if len(recs[0].Samples) != 200 || len(recs[0].Times) != 200 {
		t.Fatalf("record 0 payload: %d samples", len(recs[0].Samples))
	}
}

func TestMSEEDPeekHeadersOnly(t *testing.T) {
	dir := t.TempDir()
	path := writeTestMSEED(t, dir)
	hs, err := mseed.PeekHeaders(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || hs[0].NumSamples != 200 || hs[1].Station != "ABSN" {
		t.Fatalf("headers: %+v", hs)
	}
	v := New()
	if _, err := v.Register(path, "", ""); err != nil {
		t.Fatal(err)
	}
	n, err := v.Count(path)
	if err != nil || n != 350 {
		t.Fatalf("count = %d %v, want 350", n, err)
	}
}

func TestMSEEDAttach(t *testing.T) {
	dir := t.TempDir()
	path := writeTestMSEED(t, dir)
	v := New()
	if _, err := v.Register(path, "", "mseedtbl"); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	if err := v.AttachMSEED(path, cat); err != nil {
		t.Fatal(err)
	}
	tbl, ok := cat.Table("mseedtbl")
	if !ok {
		t.Fatal("mseed table missing")
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	sv := tbl.Vecs[3].Get(0)
	if sv.Typ != value.Array || sv.Null {
		t.Fatalf("samples column is not an array: %+v", sv)
	}
}

func TestFITSFloatImageNaNHoles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.fits")
	im := &fits.Image{
		Header: fits.NewHeader(),
		Naxis:  []int64{2, 2},
		Bitpix: -64,
		Floats: []float64{1.5, nan(), 2.5, 3.5},
	}
	if err := fits.WriteFile(path, &fits.File{Primary: im}); err != nil {
		t.Fatal(err)
	}
	v := New()
	if _, err := v.Register(path, "", "fimg"); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	if err := v.AttachFITS(path, cat); err != nil {
		t.Fatal(err)
	}
	a, _ := cat.Array("fimg")
	if a.Store.Len() != 3 {
		t.Fatalf("NaN pixel should be a hole: len = %d", a.Store.Len())
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestUnregisteredPathsError(t *testing.T) {
	v := New()
	if _, err := v.Count("/nope.fits"); err == nil {
		t.Error("count on unregistered path should error")
	}
	if err := v.AttachFITS("/nope.fits", catalog.New()); err == nil {
		t.Error("attach on unregistered path should error")
	}
}
