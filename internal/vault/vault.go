// Package vault implements the data-vault architecture of §2.1: a
// catalog of externally managed science files (FITS-lite, mSEED-lite)
// that are integrated with the query processing cycle on demand. A
// registered file costs nothing until touched; metadata queries
// (Count, Shape, Stations) are answered from file headers without
// loading payloads; Attach materializes the payload into engine
// arrays/tables only when a query actually needs the cells.
package vault

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/array"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/vault/fits"
	"repro/internal/vault/mseed"
)

// Status tracks a vault entry's lifecycle.
type Status string

const (
	// Registered: the file is known; nothing has been read.
	Registered Status = "registered"
	// Peeked: headers have been read for metadata queries.
	Peeked Status = "peeked"
	// Attached: the payload has been materialized into the catalog.
	Attached Status = "attached"
)

// Entry is one vault-catalog row.
type Entry struct {
	Path   string
	Format string // "fits" | "mseed"
	Status Status
	// Object is the catalog object name the payload materializes as.
	Object string
}

// Vault is the per-database vault catalog.
type Vault struct {
	mu      sync.Mutex
	entries map[string]*Entry
}

// New returns an empty vault.
func New() *Vault { return &Vault{entries: make(map[string]*Entry)} }

// Register adds a file to the vault catalog. The format is derived
// from the extension (.fits, .mseed) unless given explicitly. The
// object name defaults to the file's base name without extension.
func (v *Vault) Register(path, format, object string) (*Entry, error) {
	if format == "" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".fits":
			format = "fits"
		case ".mseed", ".seed":
			format = "mseed"
		default:
			return nil, fmt.Errorf("vault: cannot infer format of %s", path)
		}
	}
	if object == "" {
		base := filepath.Base(path)
		object = strings.TrimSuffix(base, filepath.Ext(base))
	}
	e := &Entry{Path: path, Format: format, Status: Registered, Object: object}
	v.mu.Lock()
	v.entries[path] = e
	v.mu.Unlock()
	return e, nil
}

// Entries lists the catalog in path order.
func (v *Vault) Entries() []*Entry {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Entry, 0, len(v.entries))
	for _, e := range v.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Lookup fetches an entry.
func (v *Vault) Lookup(path string) (*Entry, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.entries[path]
	return e, ok
}

// Count answers aggr.count from metadata only (§2.1: "execution of the
// operation aggr.count need not necessarily require a complete load of
// the array ... encoded in the file header").
func (v *Vault) Count(path string) (int64, error) {
	e, ok := v.Lookup(path)
	if !ok {
		return 0, fmt.Errorf("vault: %s is not registered", path)
	}
	switch e.Format {
	case "fits":
		_, axes, err := fits.PeekImage(path)
		if err != nil {
			return 0, err
		}
		n := int64(1)
		for _, a := range axes {
			n *= a
		}
		e.Status = Peeked
		return n, nil
	case "mseed":
		hs, err := mseed.PeekHeaders(path)
		if err != nil {
			return 0, err
		}
		n := int64(0)
		for _, h := range hs {
			n += int64(h.NumSamples)
		}
		e.Status = Peeked
		return n, nil
	}
	return 0, fmt.Errorf("vault: unknown format %s", e.Format)
}

// Shape answers the image axes from the header only.
func (v *Vault) Shape(path string) ([]int64, error) {
	e, ok := v.Lookup(path)
	if !ok || e.Format != "fits" {
		return nil, fmt.Errorf("vault: %s is not a registered FITS file", path)
	}
	_, axes, err := fits.PeekImage(path)
	if err != nil {
		return nil, err
	}
	e.Status = Peeked
	return axes, nil
}

// AttachFITS materializes a FITS-lite file: the primary image becomes
// an array <object> (dims x1..xn, attr v) and each binary table a
// relational table <object>_t<i>.
func (v *Vault) AttachFITS(path string, cat *catalog.Catalog) error {
	e, ok := v.Lookup(path)
	if !ok {
		return fmt.Errorf("vault: %s is not registered", path)
	}
	f, err := fits.ReadFile(path)
	if err != nil {
		return err
	}
	if f.Primary != nil {
		a, err := imageToArray(e.Object, f.Primary)
		if err != nil {
			return err
		}
		if err := cat.PutArray(a); err != nil {
			return err
		}
	}
	for i, t := range f.Tables {
		name := fmt.Sprintf("%s_t%d", e.Object, i+1)
		tbl := binTableToTable(name, t)
		if err := cat.PutTable(tbl); err != nil {
			return err
		}
	}
	e.Status = Attached
	return nil
}

// imageToArray converts a FITS image into a dense array. FITS axes are
// Fortran-ordered; the array dimensions keep the axis order (x1 is the
// fastest-varying axis), with index origin 0 (the 1-based FITS origin
// maps to the SciQL integer default).
func imageToArray(name string, im *fits.Image) (*array.Array, error) {
	sch := array.Schema{}
	for i, n := range im.Naxis {
		sch.Dims = append(sch.Dims, array.Dimension{
			Name: fmt.Sprintf("x%d", i+1), Typ: value.Int, Start: 0, End: n, Step: 1,
		})
	}
	attrT := value.Float
	if im.Bitpix == 32 {
		attrT = value.Int
	}
	sch.Attrs = []array.Attr{{Name: "v", Typ: attrT, Default: value.NewNull(attrT)}}
	st, err := storage.New(sch, storage.Hints{})
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: name, Schema: sch, Store: st}
	coords := make([]int64, len(im.Naxis))
	total := im.NumPixels()
	for idx := int64(0); idx < total; idx++ {
		// Decode Fortran order: first axis fastest.
		rem := idx
		for i := range im.Naxis {
			coords[i] = rem % im.Naxis[i]
			rem /= im.Naxis[i]
		}
		var cv value.Value
		if im.Bitpix == 32 {
			cv = value.NewInt(int64(im.Ints[idx]))
		} else {
			f, ok := fits.NaNSafe(im.Floats[idx])
			if !ok {
				continue
			}
			cv = value.NewFloat(f)
		}
		if err := st.Set(coords, 0, cv); err != nil {
			return nil, err
		}
	}
	return a, nil
}

func binTableToTable(name string, t *fits.BinTable) *catalog.Table {
	cols := make([]catalog.TableColumn, len(t.Names))
	for i, n := range t.Names {
		typ := value.Float
		if t.Forms[i] == 'J' {
			typ = value.Int
		}
		cols[i] = catalog.TableColumn{Name: n, Typ: typ}
	}
	tbl := catalog.NewTable(name, cols)
	for i, n := range t.Names {
		switch t.Forms[i] {
		case 'J':
			tbl.Vecs[i] = bat.NewIntVector(append([]int64(nil), t.IntCols[n]...))
		case 'D':
			tbl.Vecs[i] = bat.NewFloatVector(append([]float64(nil), t.FloatCols[n]...))
		}
	}
	return tbl
}

// AttachMSEED materializes an mSEED-lite volume as a relational table
// <object>(seqnr, station, quality) with a nested time-series array
// column samples(time TIMESTAMP DIMENSION, data DOUBLE) — the §7.3
// schema.
func (v *Vault) AttachMSEED(path string, cat *catalog.Catalog) error {
	e, ok := v.Lookup(path)
	if !ok {
		return fmt.Errorf("vault: %s is not registered", path)
	}
	recs, err := mseed.ReadVolume(path)
	if err != nil {
		return err
	}
	nested := &array.Schema{
		Dims:  []array.Dimension{{Name: "time", Typ: value.Timestamp, Start: array.UnboundedLow, End: array.UnboundedHigh, Step: 0}},
		Attrs: []array.Attr{{Name: "data", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	tbl := catalog.NewTable(e.Object, []catalog.TableColumn{
		{Name: "seqnr", Typ: value.Int, PrimaryKey: true},
		{Name: "station", Typ: value.String},
		{Name: "quality", Typ: value.String},
		{Name: "samples", Typ: value.Array, Nested: nested},
	})
	for _, r := range recs {
		a, err := RecordToArray(r)
		if err != nil {
			return err
		}
		err = tbl.Append([]value.Value{
			value.NewInt(int64(r.Seqnr)),
			value.NewString(r.Station),
			value.NewString(string(r.Quality)),
			value.NewArray(a),
		})
		if err != nil {
			return err
		}
	}
	if err := cat.PutTable(tbl); err != nil {
		return err
	}
	e.Status = Attached
	return nil
}

// RecordToArray converts one mSEED record into a 1-D time-series
// array (time TIMESTAMP DIMENSION, data DOUBLE).
func RecordToArray(r *mseed.Record) (*array.Array, error) {
	sch := array.Schema{
		Dims:  []array.Dimension{{Name: "time", Typ: value.Timestamp, Start: array.UnboundedLow, End: array.UnboundedHigh, Step: 0}},
		Attrs: []array.Attr{{Name: "data", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	st, err := storage.NewTabular(sch)
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: fmt.Sprintf("rec%d", r.Seqnr), Schema: sch, Store: st}
	coords := make([]int64, 1)
	for i := range r.Samples {
		coords[0] = r.Times[i]
		if err := st.Set(coords, 0, value.NewFloat(r.Samples[i])); err != nil {
			return nil, err
		}
	}
	return a, nil
}
