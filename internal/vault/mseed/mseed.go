// Package mseed implements mSEED-lite, a structural subset of the
// SEED data-record format (§7.3): a stream of records, each carrying a
// 48-byte fixed header (sequence number, station code, data quality,
// sample interval, sample count, start time) followed by a payload of
// (timestamp, sample) pairs. Like real miniSEED, the fixed header is
// enough to answer station/time-range questions without decoding the
// payload.
package mseed

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// HeaderSize is the fixed record-header length in bytes.
const HeaderSize = 48

// Record is one data record: a station's contiguous waveform segment.
type Record struct {
	// Seqnr identifies the record within the volume.
	Seqnr uint32
	// Station is the (up to 5 byte) station identifier code.
	Station string
	// Quality is the SEED data-quality indicator (D, R, Q, M).
	Quality byte
	// SampleInterval is the nominal spacing between samples in
	// microseconds (the inverse of the sample rate).
	SampleInterval int64
	// StartTime is the first sample's timestamp (Unix microseconds).
	StartTime int64
	// Times holds per-sample timestamps (gaps make them non-uniform).
	Times []int64
	// Samples holds the measured values.
	Samples []float64
}

// NumSamples returns the payload length.
func (r *Record) NumSamples() int { return len(r.Samples) }

// FixedHeader is the decoded 48-byte record header.
type FixedHeader struct {
	Seqnr          uint32
	Station        string
	Quality        byte
	SampleInterval int64
	NumSamples     uint32
	StartTime      int64
}

func writeHeader(w io.Writer, r *Record) error {
	var buf [HeaderSize]byte
	binary.BigEndian.PutUint32(buf[0:], r.Seqnr)
	copy(buf[4:9], r.Station)
	buf[9] = r.Quality
	binary.BigEndian.PutUint64(buf[10:], uint64(r.SampleInterval))
	binary.BigEndian.PutUint32(buf[18:], uint32(len(r.Samples)))
	binary.BigEndian.PutUint64(buf[22:], uint64(r.StartTime))
	// bytes 30..47 reserved
	_, err := w.Write(buf[:])
	return err
}

func readHeader(rd io.Reader) (*FixedHeader, error) {
	var buf [HeaderSize]byte
	if _, err := io.ReadFull(rd, buf[:]); err != nil {
		return nil, err
	}
	h := &FixedHeader{
		Seqnr:          binary.BigEndian.Uint32(buf[0:]),
		Quality:        buf[9],
		SampleInterval: int64(binary.BigEndian.Uint64(buf[10:])),
		NumSamples:     binary.BigEndian.Uint32(buf[18:]),
		StartTime:      int64(binary.BigEndian.Uint64(buf[22:])),
	}
	st := buf[4:9]
	for len(st) > 0 && st[len(st)-1] == 0 {
		st = st[:len(st)-1]
	}
	h.Station = string(st)
	return h, nil
}

// WriteRecord serializes one record.
func WriteRecord(w io.Writer, r *Record) error {
	if len(r.Times) != len(r.Samples) {
		return fmt.Errorf("mseed: record %d has %d times for %d samples", r.Seqnr, len(r.Times), len(r.Samples))
	}
	if len(r.Station) > 5 {
		return fmt.Errorf("mseed: station code %q exceeds 5 bytes", r.Station)
	}
	if err := writeHeader(w, r); err != nil {
		return err
	}
	for i := range r.Samples {
		if err := binary.Write(w, binary.BigEndian, r.Times[i]); err != nil {
			return err
		}
		if err := binary.Write(w, binary.BigEndian, r.Samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteVolume writes a full mSEED-lite volume.
func WriteVolume(path string, records []*Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, r := range records {
		if err := WriteRecord(f, r); err != nil {
			return err
		}
	}
	return nil
}

// ReadRecord parses one record (header + payload).
func ReadRecord(rd io.Reader) (*Record, error) {
	h, err := readHeader(rd)
	if err != nil {
		return nil, err
	}
	r := &Record{
		Seqnr:          h.Seqnr,
		Station:        h.Station,
		Quality:        h.Quality,
		SampleInterval: h.SampleInterval,
		StartTime:      h.StartTime,
		Times:          make([]int64, h.NumSamples),
		Samples:        make([]float64, h.NumSamples),
	}
	for i := uint32(0); i < h.NumSamples; i++ {
		if err := binary.Read(rd, binary.BigEndian, &r.Times[i]); err != nil {
			return nil, err
		}
		if err := binary.Read(rd, binary.BigEndian, &r.Samples[i]); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ReadVolume parses all records of a volume.
func ReadVolume(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*Record
	for {
		r, err := ReadRecord(f)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
}

// PeekHeaders reads only the fixed headers of a volume, seeking past
// the payloads — the metadata-only path of the data vault.
func PeekHeaders(path string) ([]*FixedHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*FixedHeader
	for {
		h, err := readHeader(f)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, h)
		if _, err := f.Seek(int64(h.NumSamples)*16, io.SeekCurrent); err != nil {
			return nil, err
		}
	}
}
