package mseed

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func sample(seed int64, n int) *Record {
	rng := rand.New(rand.NewSource(seed))
	r := &Record{
		Seqnr:          uint32(rng.Intn(1000)),
		Station:        "AASN",
		Quality:        'D',
		SampleInterval: 1_000_000,
		StartTime:      rng.Int63n(1 << 40),
	}
	t := r.StartTime
	for i := 0; i < n; i++ {
		r.Times = append(r.Times, t)
		r.Samples = append(r.Samples, rng.NormFloat64())
		t += r.SampleInterval
	}
	return r
}

func TestVolumeRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var recs []*Record
		for i := 0; i < 1+rng.Intn(4); i++ {
			recs = append(recs, sample(seed+int64(i), 1+rng.Intn(50)))
		}
		path := filepath.Join(dir, "v.mseed")
		if err := WriteVolume(path, recs); err != nil {
			return false
		}
		got, err := ReadVolume(path)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i, r := range recs {
			g := got[i]
			if g.Seqnr != r.Seqnr || g.Station != r.Station || g.Quality != r.Quality ||
				g.SampleInterval != r.SampleInterval || g.StartTime != r.StartTime {
				return false
			}
			for k := range r.Samples {
				if g.Samples[k] != r.Samples[k] || g.Times[k] != r.Times[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekMatchesFull(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.mseed")
	recs := []*Record{sample(1, 10), sample(2, 20), sample(3, 30)}
	if err := WriteVolume(path, recs); err != nil {
		t.Fatal(err)
	}
	hs, err := PeekHeaders(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 {
		t.Fatalf("headers = %d", len(hs))
	}
	for i, h := range hs {
		if int(h.NumSamples) != len(recs[i].Samples) || h.Station != recs[i].Station {
			t.Errorf("header %d mismatch: %+v", i, h)
		}
	}
}

func TestValidation(t *testing.T) {
	dir := t.TempDir()
	bad := &Record{Seqnr: 1, Station: "TOOLONGNAME", Times: []int64{0}, Samples: []float64{1}}
	if err := WriteVolume(filepath.Join(dir, "b.mseed"), []*Record{bad}); err == nil {
		t.Error("oversized station code should error")
	}
	mismatched := &Record{Seqnr: 1, Station: "OK", Times: []int64{0, 1}, Samples: []float64{1}}
	if err := WriteVolume(filepath.Join(dir, "m.mseed"), []*Record{mismatched}); err == nil {
		t.Error("times/samples length mismatch should error")
	}
}
