// Package fits implements FITS-lite, a faithful structural subset of
// the Flexible Image Transport System (§7.2): 80-byte header cards
// terminated by an END card, an image HDU serialized Fortran-order
// (first axis varies fastest, per the standard), and a binary-table
// HDU. The header is self-describing, so metadata queries (COUNT,
// shape) never touch the payload — the property the data-vault
// architecture exploits (§2.1).
package fits

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// CardSize is the fixed header-card length of the FITS standard.
const CardSize = 80

// Header is an ordered list of KEY = VALUE cards.
type Header struct {
	keys []string
	vals map[string]string
}

// NewHeader returns an empty header.
func NewHeader() *Header { return &Header{vals: make(map[string]string)} }

// Set adds or replaces a card.
func (h *Header) Set(key, val string) {
	key = strings.ToUpper(key)
	if _, ok := h.vals[key]; !ok {
		h.keys = append(h.keys, key)
	}
	h.vals[key] = val
}

// SetInt adds an integer card.
func (h *Header) SetInt(key string, v int64) { h.Set(key, strconv.FormatInt(v, 10)) }

// Get fetches a card value.
func (h *Header) Get(key string) (string, bool) {
	v, ok := h.vals[strings.ToUpper(key)]
	return v, ok
}

// Int fetches an integer card.
func (h *Header) Int(key string) (int64, bool) {
	s, ok := h.Get(key)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Float fetches a float card.
func (h *Header) Float(key string) (float64, bool) {
	s, ok := h.Get(key)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (h *Header) write(w io.Writer) error {
	for _, k := range h.keys {
		card := fmt.Sprintf("%-8s= %s", k, h.vals[k])
		if len(card) > CardSize {
			return fmt.Errorf("fits: card %s too long", k)
		}
		card += strings.Repeat(" ", CardSize-len(card))
		if _, err := io.WriteString(w, card); err != nil {
			return err
		}
	}
	end := "END" + strings.Repeat(" ", CardSize-3)
	_, err := io.WriteString(w, end)
	return err
}

func readHeader(r io.Reader) (*Header, error) {
	h := NewHeader()
	buf := make([]byte, CardSize)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("fits: truncated header: %w", err)
		}
		card := string(buf)
		key := strings.TrimSpace(card[:8])
		if key == "END" {
			return h, nil
		}
		eq := strings.Index(card, "=")
		if eq < 0 {
			continue // comment card
		}
		h.Set(key, strings.TrimSpace(card[eq+1:]))
	}
}

// Image is an n-dimensional numeric payload. BITPIX 32 stores int32;
// BITPIX -64 stores float64. Data is Fortran-ordered (axis 1 fastest).
type Image struct {
	Header *Header
	// Naxis lists the axis sizes (NAXIS1, NAXIS2, ...).
	Naxis []int64
	// Bitpix is 32 (int32) or -64 (float64).
	Bitpix int
	// Ints holds the payload when Bitpix == 32.
	Ints []int32
	// Floats holds the payload when Bitpix == -64.
	Floats []float64
}

// NumPixels returns the payload length.
func (im *Image) NumPixels() int64 {
	n := int64(1)
	for _, a := range im.Naxis {
		n *= a
	}
	return n
}

// At reads the pixel at Fortran-order coordinates (zero-based).
func (im *Image) At(coords ...int64) float64 {
	idx := int64(0)
	stride := int64(1)
	for i, c := range coords {
		idx += c * stride
		stride *= im.Naxis[i]
	}
	if im.Bitpix == 32 {
		return float64(im.Ints[idx])
	}
	return im.Floats[idx]
}

// BinTable is a simple binary-table HDU: named columns of int64 (J)
// or float64 (D).
type BinTable struct {
	Header *Header
	Names  []string
	Forms  []byte // 'J' or 'D'
	// Cols holds per-column data as int64 or float64 slices.
	IntCols   map[string][]int64
	FloatCols map[string][]float64
	NumRows   int64
}

// File is a parsed FITS-lite file: a primary image HDU and optional
// binary-table extensions.
type File struct {
	Primary *Image
	Tables  []*BinTable
}

// WriteImage writes an image HDU to w.
func WriteImage(w io.Writer, im *Image) error {
	h := im.Header
	if h == nil {
		h = NewHeader()
	}
	h.Set("SIMPLE", "T")
	h.SetInt("BITPIX", int64(im.Bitpix))
	h.SetInt("NAXIS", int64(len(im.Naxis)))
	for i, a := range im.Naxis {
		h.SetInt(fmt.Sprintf("NAXIS%d", i+1), a)
	}
	h.Set("XTENSION", "'IMAGE'")
	if err := h.write(w); err != nil {
		return err
	}
	switch im.Bitpix {
	case 32:
		return binary.Write(w, binary.BigEndian, im.Ints)
	case -64:
		return binary.Write(w, binary.BigEndian, im.Floats)
	default:
		return fmt.Errorf("fits: unsupported BITPIX %d", im.Bitpix)
	}
}

// WriteBinTable writes a binary-table HDU to w.
func WriteBinTable(w io.Writer, t *BinTable) error {
	h := t.Header
	if h == nil {
		h = NewHeader()
	}
	h.Set("XTENSION", "'BINTABLE'")
	h.SetInt("TFIELDS", int64(len(t.Names)))
	h.SetInt("NAXIS2", t.NumRows)
	for i, n := range t.Names {
		h.Set(fmt.Sprintf("TTYPE%d", i+1), "'"+n+"'")
		h.Set(fmt.Sprintf("TFORM%d", i+1), "'"+string(t.Forms[i])+"'")
	}
	if err := h.write(w); err != nil {
		return err
	}
	// Row-major serialization of the columns.
	for r := int64(0); r < t.NumRows; r++ {
		for i, n := range t.Names {
			switch t.Forms[i] {
			case 'J':
				if err := binary.Write(w, binary.BigEndian, t.IntCols[n][r]); err != nil {
					return err
				}
			case 'D':
				if err := binary.Write(w, binary.BigEndian, t.FloatCols[n][r]); err != nil {
					return err
				}
			default:
				return fmt.Errorf("fits: unsupported TFORM %c", t.Forms[i])
			}
		}
	}
	return nil
}

// WriteFile writes a full FITS-lite file.
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if f.Primary != nil {
		if err := WriteImage(out, f.Primary); err != nil {
			return err
		}
	}
	for _, t := range f.Tables {
		if err := WriteBinTable(out, t); err != nil {
			return err
		}
	}
	return nil
}

// PeekImage reads only the primary header of path — the lazy-access
// path of the data vault: shape and pixel count come from cards, not
// from the payload.
func PeekImage(path string) (*Header, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	h, err := readHeader(f)
	if err != nil {
		return nil, nil, err
	}
	n, _ := h.Int("NAXIS")
	axes := make([]int64, n)
	for i := int64(0); i < n; i++ {
		axes[i], _ = h.Int(fmt.Sprintf("NAXIS%d", i+1))
	}
	return h, axes, nil
}

// ReadFile parses a full FITS-lite file.
func ReadFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := &File{}
	first := true
	for {
		h, err := readHeader(f)
		if err != nil {
			if first {
				return nil, err
			}
			break // no more HDUs
		}
		xt, _ := h.Get("XTENSION")
		xt = strings.Trim(xt, "' ")
		if first || xt == "IMAGE" {
			im, err := readImagePayload(f, h)
			if err != nil {
				return nil, err
			}
			if first {
				out.Primary = im
			}
			first = false
			continue
		}
		if xt == "BINTABLE" {
			t, err := readBinTablePayload(f, h)
			if err != nil {
				return nil, err
			}
			out.Tables = append(out.Tables, t)
			first = false
			continue
		}
		return nil, fmt.Errorf("fits: unknown extension %q", xt)
	}
	return out, nil
}

func readImagePayload(r io.Reader, h *Header) (*Image, error) {
	bp, _ := h.Int("BITPIX")
	n, _ := h.Int("NAXIS")
	im := &Image{Header: h, Bitpix: int(bp), Naxis: make([]int64, n)}
	total := int64(1)
	for i := int64(0); i < n; i++ {
		im.Naxis[i], _ = h.Int(fmt.Sprintf("NAXIS%d", i+1))
		total *= im.Naxis[i]
	}
	switch im.Bitpix {
	case 32:
		im.Ints = make([]int32, total)
		if err := binary.Read(r, binary.BigEndian, im.Ints); err != nil {
			return nil, fmt.Errorf("fits: truncated image payload: %w", err)
		}
	case -64:
		im.Floats = make([]float64, total)
		if err := binary.Read(r, binary.BigEndian, im.Floats); err != nil {
			return nil, fmt.Errorf("fits: truncated image payload: %w", err)
		}
	default:
		return nil, fmt.Errorf("fits: unsupported BITPIX %d", im.Bitpix)
	}
	return im, nil
}

func readBinTablePayload(r io.Reader, h *Header) (*BinTable, error) {
	nf, _ := h.Int("TFIELDS")
	rows, _ := h.Int("NAXIS2")
	t := &BinTable{Header: h, NumRows: rows,
		IntCols: make(map[string][]int64), FloatCols: make(map[string][]float64)}
	for i := int64(1); i <= nf; i++ {
		name, _ := h.Get(fmt.Sprintf("TTYPE%d", i))
		form, _ := h.Get(fmt.Sprintf("TFORM%d", i))
		name = strings.Trim(name, "' ")
		form = strings.Trim(form, "' ")
		if form == "" {
			return nil, fmt.Errorf("fits: missing TFORM%d", i)
		}
		t.Names = append(t.Names, name)
		t.Forms = append(t.Forms, form[0])
		switch form[0] {
		case 'J':
			t.IntCols[name] = make([]int64, rows)
		case 'D':
			t.FloatCols[name] = make([]float64, rows)
		}
	}
	for r2 := int64(0); r2 < rows; r2++ {
		for i, n := range t.Names {
			switch t.Forms[i] {
			case 'J':
				if err := binary.Read(r, binary.BigEndian, &t.IntCols[n][r2]); err != nil {
					return nil, err
				}
			case 'D':
				if err := binary.Read(r, binary.BigEndian, &t.FloatCols[n][r2]); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// NaNSafe converts a payload value, mapping NaN floats to (v, false).
func NaNSafe(f float64) (float64, bool) {
	if math.IsNaN(f) {
		return 0, false
	}
	return f, true
}
