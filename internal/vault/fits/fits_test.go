package fits

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := NewHeader()
	h.Set("SIMPLE", "T")
	h.SetInt("BITPIX", 32)
	h.Set("OBJECT", "'M31'")
	if v, ok := h.Int("BITPIX"); !ok || v != 32 {
		t.Fatalf("Int(BITPIX) = %d %v", v, ok)
	}
	if v, ok := h.Get("object"); !ok || v != "'M31'" {
		t.Fatalf("case-insensitive Get: %q %v", v, ok)
	}
	if _, ok := h.Float("NOPE"); ok {
		t.Fatal("missing key should not resolve")
	}
}

func TestImageRoundTripInt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.fits")
	im := &Image{Header: NewHeader(), Naxis: []int64{3, 2}, Bitpix: 32, Ints: []int32{1, 2, 3, 4, 5, 6}}
	if err := WriteFile(path, &File{Primary: im}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Primary
	if got.Bitpix != 32 || len(got.Ints) != 6 {
		t.Fatalf("shape: %+v", got)
	}
	// Fortran order: At(x1, x2) with x1 fastest.
	if got.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", got.At(2, 1))
	}
}

func TestImageRoundTripFloatProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(seed int64) bool {
		i++
		rng := rand.New(rand.NewSource(seed))
		nx := int64(1 + rng.Intn(8))
		ny := int64(1 + rng.Intn(8))
		im := &Image{Header: NewHeader(), Naxis: []int64{nx, ny}, Bitpix: -64,
			Floats: make([]float64, nx*ny)}
		for k := range im.Floats {
			im.Floats[k] = rng.NormFloat64()
		}
		path := filepath.Join(dir, "p.fits")
		if err := WriteFile(path, &File{Primary: im}); err != nil {
			return false
		}
		rt, err := ReadFile(path)
		if err != nil {
			return false
		}
		for k := range im.Floats {
			if rt.Primary.Floats[k] != im.Floats[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBinTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.fits")
	im := &Image{Header: NewHeader(), Naxis: []int64{1}, Bitpix: 32, Ints: []int32{0}}
	tbl := &BinTable{
		Header:    NewHeader(),
		Names:     []string{"X", "FLUX"},
		Forms:     []byte{'J', 'D'},
		IntCols:   map[string][]int64{"X": {10, 20, 30}},
		FloatCols: map[string][]float64{"FLUX": {1.5, 2.5, 3.5}},
		NumRows:   3,
	}
	if err := WriteFile(path, &File{Primary: im, Tables: []*BinTable{tbl}}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Tables) != 1 {
		t.Fatalf("tables = %d", len(f.Tables))
	}
	got := f.Tables[0]
	if got.NumRows != 3 || got.IntCols["X"][2] != 30 || got.FloatCols["FLUX"][1] != 2.5 {
		t.Fatalf("table contents: %+v", got)
	}
}

func TestPeekReadsOnlyHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.fits")
	im := &Image{Header: NewHeader(), Naxis: []int64{64, 64}, Bitpix: -64, Floats: make([]float64, 64*64)}
	if err := WriteFile(path, &File{Primary: im}); err != nil {
		t.Fatal(err)
	}
	h, axes, err := PeekImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(axes) != 2 || axes[0] != 64 || axes[1] != 64 {
		t.Fatalf("axes = %v", axes)
	}
	if bp, _ := h.Int("BITPIX"); bp != -64 {
		t.Fatalf("BITPIX = %d", bp)
	}
}

func TestTruncatedFileErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.fits")
	im := &Image{Header: NewHeader(), Naxis: []int64{8, 8}, Bitpix: 32, Ints: make([]int32, 64)}
	if err := WriteFile(path, &File{Primary: im}); err != nil {
		t.Fatal(err)
	}
	// Truncate the payload.
	data, err := readAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAll(path, data[:len(data)-100]); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func readAll(path string) ([]byte, error)  { return os.ReadFile(path) }
func writeAll(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
