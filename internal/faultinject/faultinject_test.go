package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if err := Hit("x"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if Hits("x") != 0 {
		t.Fatalf("disarmed point tracked hits")
	}
}

func TestErrorEveryHit(t *testing.T) {
	defer Reset()
	Arm("p", Spec{Kind: Error})
	for i := 0; i < 3; i++ {
		if err := Hit("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
	}
	if Hits("p") != 3 {
		t.Fatalf("Hits = %d, want 3", Hits("p"))
	}
}

func TestErrorAtNthHit(t *testing.T) {
	defer Reset()
	custom := errors.New("boom")
	Arm("p", Spec{Kind: Error, AfterN: 2, Err: custom})
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := Hit("p"); !errors.Is(err, custom) {
		t.Fatalf("hit 2: got %v, want custom error", err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 3 fired after AfterN: %v", err)
	}
}

func TestOnce(t *testing.T) {
	defer Reset()
	Arm("p", Spec{Kind: Error, Once: true})
	if err := Hit("p"); err == nil {
		t.Fatalf("first hit did not fire")
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("Once fault fired twice: %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	defer Reset()
	Arm("p", Spec{Kind: Panic})
	defer func() {
		if recover() == nil {
			t.Fatalf("Panic kind did not panic")
		}
	}()
	_ = Hit("p")
}

func TestDelayAndCancel(t *testing.T) {
	defer Reset()
	Arm("d", Spec{Kind: Delay, Delay: 5 * time.Millisecond})
	t0 := time.Now()
	if err := Hit("d"); err != nil {
		t.Fatalf("Delay returned %v", err)
	}
	if time.Since(t0) < 5*time.Millisecond {
		t.Fatalf("Delay did not sleep")
	}
	canceled := false
	Arm("c", Spec{Kind: Cancel, Cancel: func() { canceled = true }})
	if err := Hit("c"); err != nil {
		t.Fatalf("Cancel returned %v", err)
	}
	if !canceled {
		t.Fatalf("Cancel did not invoke the cancel func")
	}
}

func TestDisarmRestoresNoop(t *testing.T) {
	Arm("p", Spec{Kind: Error})
	Disarm("p")
	if err := Hit("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	Reset()
}
