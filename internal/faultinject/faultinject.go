// Package faultinject provides named fault points for robustness
// testing. Engine code marks the places failures must be survivable —
// a catalog commit, a chunk scan, a hash-join build, a pool worker, a
// cursor close — with a call to Hit("point.name"). In production the
// call is one atomic load and a branch; tests Arm a point to inject an
// error, a panic, a delay or a cancellation at the Nth hit, and the
// invariant suite asserts the engine comes back with either a correct
// result or a clean typed error — never a wrong answer, a leaked
// snapshot, a leaked goroutine or a poisoned session.
//
// The package is dependency-free (standard library only) so any engine
// layer — catalog, parallel pool, executor — can host a fault point
// without import cycles.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error an armed Error-kind fault point
// returns; tests recognize injected failures with errors.Is.
var ErrInjected = errors.New("faultinject: injected error")

// Kind selects what an armed fault point does when it fires.
type Kind int

const (
	// Error makes Hit return Spec.Err (ErrInjected when nil).
	Error Kind = iota
	// Panic makes Hit panic with a string naming the point.
	Panic
	// Delay makes Hit sleep for Spec.Delay, then return nil.
	Delay
	// Cancel makes Hit call Spec.Cancel (typically a context cancel),
	// then return nil — the failure surfaces through the context.
	Cancel
)

// Spec configures one armed fault point.
type Spec struct {
	Kind Kind
	// AfterN fires the fault on exactly the Nth hit (1-based); 0 fires
	// on every hit.
	AfterN int64
	// Err overrides ErrInjected for Error-kind faults.
	Err error
	// Delay is the sleep of Delay-kind faults.
	Delay time.Duration
	// Cancel is the function Cancel-kind faults invoke.
	Cancel func()
	// Once limits the fault to firing a single time even when AfterN
	// is 0.
	Once bool
}

// point is one armed fault point's state.
type point struct {
	spec  Spec
	hits  atomic.Int64
	fired atomic.Bool
}

var (
	// armed is the fast-path gate: zero means no point is armed and
	// Hit returns after one atomic load.
	armed atomic.Int32
	mu    sync.Mutex
	// points maps fault-point names to their armed state. Hits of
	// unarmed names are not tracked.
	points map[string]*point
)

// Arm installs spec at the named fault point, replacing any previous
// arming (and resetting its hit count).
func Arm(name string, spec Spec) {
	mu.Lock()
	if points == nil {
		points = make(map[string]*point)
	}
	points[name] = &point{spec: spec}
	armed.Store(int32(len(points)))
	mu.Unlock()
}

// Disarm removes the named fault point's arming.
func Disarm(name string) {
	mu.Lock()
	delete(points, name)
	armed.Store(int32(len(points)))
	mu.Unlock()
}

// Reset disarms every fault point.
func Reset() {
	mu.Lock()
	points = nil
	armed.Store(0)
	mu.Unlock()
}

// Hits reports how many times the named point was reached while
// armed; 0 when not armed.
func Hits(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Hit is the fault point: a no-op (one atomic load) unless the named
// point is armed, in which case the armed Spec decides whether and how
// to fire. Error-kind faults return non-nil; Panic-kind faults panic;
// Delay and Cancel faults perform their side effect and return nil.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return hitSlow(name)
}

func hitSlow(name string) error {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	n := p.hits.Add(1)
	if p.spec.AfterN > 0 && n != p.spec.AfterN {
		return nil
	}
	if p.spec.Once && !p.fired.CompareAndSwap(false, true) {
		return nil
	}
	switch p.spec.Kind {
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", name))
	case Delay:
		time.Sleep(p.spec.Delay)
		return nil
	case Cancel:
		if p.spec.Cancel != nil {
			p.spec.Cancel()
		}
		return nil
	default:
		if p.spec.Err != nil {
			return p.spec.Err
		}
		return fmt.Errorf("%w (at %s)", ErrInjected, name)
	}
}
