package workload

import "testing"

func TestLandsatDeterministic(t *testing.T) {
	a := NewLandsat(7, 32, 42)
	b := NewLandsat(7, 32, 42)
	for c := 0; c < 7; c++ {
		for i := range a.Pix[c] {
			if a.Pix[c][i] != b.Pix[c][i] {
				t.Fatalf("same seed differs at channel %d idx %d", c, i)
			}
		}
	}
	c := NewLandsat(7, 32, 43)
	same := true
	for i := range a.Pix[0] {
		if a.Pix[0][i] != c.Pix[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produce identical scenes")
	}
}

func TestLandsatStriping(t *testing.T) {
	ls := NewLandsat(7, 60, 1)
	// Striped lines (x%6==1) in channel 6 should be brighter on
	// average than their neighbors.
	var striped, clean float64
	var ns, nc int
	for x := 0; x < ls.N; x++ {
		for y := 0; y < ls.N; y++ {
			v := float64(ls.At(6, x, y))
			if x%6 == 1 {
				striped += v
				ns++
			} else {
				clean += v
				nc++
			}
		}
	}
	if striped/float64(ns) <= clean/float64(nc)+10 {
		t.Errorf("striping not visible: striped avg %.1f, clean avg %.1f",
			striped/float64(ns), clean/float64(nc))
	}
}

func TestLandsatRange(t *testing.T) {
	ls := NewLandsat(7, 32, 5)
	for c := 0; c < 7; c++ {
		for _, p := range ls.Pix[c] {
			if p < 0 || p > 255 {
				t.Fatalf("pixel out of range: %d", p)
			}
		}
	}
}

func TestLandsatVegetationSignal(t *testing.T) {
	ls := NewLandsat(7, 64, 9)
	// NDVI numerator (b4 - b3) should be positive on average: the
	// generator pushes near-infrared above red.
	var diff float64
	for i := range ls.Pix[3] {
		diff += float64(ls.Pix[4][i] - ls.Pix[3][i])
	}
	if diff <= 0 {
		t.Error("channel 4 should exceed channel 3 on average (vegetation)")
	}
}

func TestXRayEventsBoundsAndClustering(t *testing.T) {
	ev := NewXRayEvents(5000, 128, 4, 11)
	if len(ev.X) != 5000 {
		t.Fatal("event count wrong")
	}
	counts := make(map[[2]int64]int)
	for i := range ev.X {
		if ev.X[i] < 0 || ev.X[i] >= 128 || ev.Y[i] < 0 || ev.Y[i] >= 128 {
			t.Fatalf("event out of detector: (%d,%d)", ev.X[i], ev.Y[i])
		}
		counts[[2]int64{ev.X[i] / 16, ev.Y[i] / 16}]++
	}
	// Clustering: the densest 16x16 super-bin should hold far more
	// than the uniform share (5000/64 ≈ 78).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 200 {
		t.Errorf("no source clustering visible: max super-bin = %d", max)
	}
}

func TestWaveformGapsAndSpikes(t *testing.T) {
	w := NewWaveform("XXSN", 1000, 0, 1000, 5, 7, 3)
	if len(w.GapStarts) != 5 {
		t.Fatalf("gap count = %d, want 5", len(w.GapStarts))
	}
	if len(w.SpikeTimes) != 7 {
		t.Fatalf("spike count = %d, want 7", len(w.SpikeTimes))
	}
	// Timestamps strictly increase.
	for i := 1; i < len(w.Times); i++ {
		if w.Times[i] <= w.Times[i-1] {
			t.Fatalf("non-monotonic timestamps at %d", i)
		}
	}
	// Every declared gap is observable: consecutive interval > nominal.
	gapSet := make(map[int64]bool)
	for i := 1; i < len(w.Times); i++ {
		if w.Times[i]-w.Times[i-1] > w.Interval {
			gapSet[w.Times[i-1]] = true
		}
	}
	for _, g := range w.GapStarts {
		if !gapSet[g] {
			t.Errorf("declared gap at %d not observable", g)
		}
	}
}

func TestWaveformSpikesStandOut(t *testing.T) {
	w := NewWaveform("XXSN", 2000, 0, 1000, 0, 10, 4)
	spike := make(map[int64]bool)
	for _, s := range w.SpikeTimes {
		spike[s] = true
	}
	// Spike samples should exceed their successors by a clear margin.
	for i := 0; i < len(w.Times)-1; i++ {
		if spike[w.Times[i]] {
			if w.Samples[i]-w.Samples[i+1] < 4 {
				t.Errorf("spike at %d not prominent: %f vs %f", w.Times[i], w.Samples[i], w.Samples[i+1])
			}
		}
	}
}

func TestStationsShape(t *testing.T) {
	ids, names, lat, lon, alt := Stations(10, 1)
	if len(ids) != 10 || len(names) != 10 || len(lat) != 10 || len(lon) != 10 || len(alt) != 10 {
		t.Fatal("station metadata length mismatch")
	}
	seen := map[string]bool{}
	for i, id := range ids {
		if len(id) != 4 {
			t.Errorf("station id %q not 4 chars", id)
		}
		if seen[id] {
			t.Errorf("duplicate station id %q", id)
		}
		seen[id] = true
		if lat[i] < -90 || lat[i] > 90 || lon[i] < -180 || lon[i] > 180 {
			t.Errorf("station %s coordinates out of range", id)
		}
	}
}

func TestToFITSChannelLayout(t *testing.T) {
	ls := NewLandsat(7, 16, 2)
	im := ls.ToFITS(3)
	if im.Naxis[0] != 16 || im.Naxis[1] != 16 || im.Bitpix != 32 {
		t.Fatalf("image shape wrong: %+v", im.Naxis)
	}
	// Fortran order: At(y, x) = generator At(3, x, y).
	if got := im.At(5, 2); got != float64(ls.At(3, 2, 5)) {
		t.Errorf("layout mismatch: fits %v, gen %d", got, ls.At(3, 2, 5))
	}
}
