// Package workload generates the synthetic science datasets the
// benchmark harness uses in place of the paper's proprietary inputs:
// multi-channel Landsat-like images (AML suite, §7.1), X-ray photon
// event lists (§7.2), and seismic waveforms with gaps and spikes
// (§7.3). All generators are seeded and deterministic so experiment
// runs are reproducible.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/vault/fits"
	"repro/internal/vault/mseed"
)

// Landsat is a synthetic multi-spectral image: channels × n × n pixel
// intensities in 0..255. Channel values correlate spatially (smooth
// vegetation/soil regions) so NDVI/TVI produce meaningful indexes, and
// channel 6 carries the every-sixth-line striping drift that DESTRIPE
// corrects (§7.1.1).
type Landsat struct {
	Channels, N int
	// Pix[c][x*N+y] is the intensity of channel c at (x, y).
	Pix [][]int32
	// Delta is the injected channel-6 drift, known to the generator so
	// experiments can verify the correction.
	Delta int32
}

// NewLandsat builds a synthetic scene.
func NewLandsat(channels, n int, seed int64) *Landsat {
	rng := rand.New(rand.NewSource(seed))
	ls := &Landsat{Channels: channels, N: n, Delta: 18}
	ls.Pix = make([][]int32, channels)
	// Low-frequency "terrain" field shared by all channels.
	const waves = 4
	ax := make([]float64, waves)
	ay := make([]float64, waves)
	ph := make([]float64, waves)
	for i := range ax {
		ax[i] = (rng.Float64() + 0.2) * 6 / float64(n)
		ay[i] = (rng.Float64() + 0.2) * 6 / float64(n)
		ph[i] = rng.Float64() * 2 * math.Pi
	}
	terrain := func(x, y int) float64 {
		s := 0.0
		for i := 0; i < waves; i++ {
			s += math.Sin(ax[i]*float64(x) + ay[i]*float64(y) + ph[i])
		}
		return (s/waves + 1) / 2 // 0..1
	}
	for c := 0; c < channels; c++ {
		ls.Pix[c] = make([]int32, n*n)
		gain := 0.6 + 0.4*float64(c)/float64(channels)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				base := terrain(x, y)
				// Vegetation pushes the near-infrared band (channel 4
				// in AVHRR-style numbering) up and the red band down.
				v := base
				switch c {
				case 3:
					v = base * 0.7
				case 4:
					v = 0.3 + base*0.7
				}
				noise := rng.Float64()*0.06 - 0.03
				p := int32((v*gain + noise) * 255)
				if p < 0 {
					p = 0
				}
				if p > 255 {
					p = 255
				}
				ls.Pix[c][x*n+y] = p
			}
		}
	}
	// Channel-6 striping: every sixth scan line drifts upward.
	if channels > 6 {
		for x := 0; x < n; x++ {
			if x%6 == 1 {
				for y := 0; y < n; y++ {
					p := ls.Pix[6][x*n+y] + ls.Delta
					if p > 255 {
						p = 255
					}
					ls.Pix[6][x*n+y] = p
				}
			}
		}
	}
	return ls
}

// At reads channel c at (x, y).
func (l *Landsat) At(c, x, y int) int32 { return l.Pix[c][x*l.N+y] }

// ToFITS serializes one channel as a FITS-lite image (axes NAXIS1=y
// fastest, NAXIS2=x — Fortran order).
func (l *Landsat) ToFITS(channel int) *fits.Image {
	im := &fits.Image{
		Header: fits.NewHeader(),
		Naxis:  []int64{int64(l.N), int64(l.N)},
		Bitpix: 32,
		Ints:   make([]int32, l.N*l.N),
	}
	im.Header.SetInt("CHANNEL", int64(channel))
	for x := 0; x < l.N; x++ {
		for y := 0; y < l.N; y++ {
			// Fortran order: first axis (y) varies fastest.
			im.Ints[x*l.N+y] = l.At(channel, x, y)
		}
	}
	return im
}

// XRayEvents is a synthetic photon event list: sources at random sky
// positions with Gaussian point-spread, over a uniform background —
// the input to the §7.2.1 binning experiment.
type XRayEvents struct {
	N    int
	Size int
	X, Y []int64
}

// NewXRayEvents draws n events on a size×size detector with k point
// sources.
func NewXRayEvents(n, size, k int, seed int64) *XRayEvents {
	rng := rand.New(rand.NewSource(seed))
	ev := &XRayEvents{N: n, Size: size, X: make([]int64, n), Y: make([]int64, n)}
	srcX := make([]float64, k)
	srcY := make([]float64, k)
	for i := 0; i < k; i++ {
		srcX[i] = rng.Float64() * float64(size)
		srcY[i] = rng.Float64() * float64(size)
	}
	sigma := float64(size) / 64
	clamp := func(f float64) int64 {
		i := int64(f)
		if i < 0 {
			i = 0
		}
		if i >= int64(size) {
			i = int64(size) - 1
		}
		return i
	}
	for i := 0; i < n; i++ {
		if k > 0 && rng.Float64() < 0.7 {
			s := rng.Intn(k)
			ev.X[i] = clamp(srcX[s] + rng.NormFloat64()*sigma)
			ev.Y[i] = clamp(srcY[s] + rng.NormFloat64()*sigma)
		} else {
			ev.X[i] = int64(rng.Intn(size))
			ev.Y[i] = int64(rng.Intn(size))
		}
	}
	return ev
}

// ToFITSTable serializes the event list as a FITS binary table with
// columns X, Y — the 2-column event table of X-ray astronomy (§7.2.1).
func (ev *XRayEvents) ToFITSTable() *fits.BinTable {
	return &fits.BinTable{
		Header:  fits.NewHeader(),
		Names:   []string{"X", "Y"},
		Forms:   []byte{'J', 'J'},
		IntCols: map[string][]int64{"X": ev.X, "Y": ev.Y},
		NumRows: int64(ev.N),
	}
}

// Waveform is a synthetic seismic trace: correlated background noise
// with injected gaps and spikes at known positions, so the §7.3
// cleansing experiments can verify their detections.
type Waveform struct {
	Station string
	// Start is the first sample time (Unix micros).
	Start int64
	// Interval is the nominal sample spacing in micros.
	Interval int64
	Times    []int64
	Samples  []float64
	// GapStarts records the timestamps immediately before each
	// injected gap.
	GapStarts []int64
	// SpikeTimes records the timestamps of injected spikes.
	SpikeTimes []int64
}

// NewWaveform generates n nominal samples at interval micros starting
// at start, dropping gaps runs and injecting spikes bursts.
func NewWaveform(station string, n int, start, interval int64, gaps, spikes int, seed int64) *Waveform {
	rng := rand.New(rand.NewSource(seed))
	w := &Waveform{Station: station, Start: start, Interval: interval}
	// AR(1) background: highly correlated under normal conditions.
	level := 5.0
	val := level
	gapAt := make(map[int]int, gaps)
	for i := 0; i < gaps; i++ {
		gapAt[1+rng.Intn(n-2)] = 3 + rng.Intn(20) // gap length in samples
	}
	spikeAt := make(map[int]bool, spikes)
	for i := 0; i < spikes; i++ {
		spikeAt[1+rng.Intn(n-2)] = true
	}
	t := start
	for i := 0; i < n; i++ {
		if skip, ok := gapAt[i]; ok {
			w.GapStarts = append(w.GapStarts, t-interval)
			t += int64(skip) * interval
		}
		val = 0.95*val + 0.05*level + rng.NormFloat64()*0.02
		s := val
		if spikeAt[i] {
			s += 8 + rng.Float64()*4
			w.SpikeTimes = append(w.SpikeTimes, t)
		}
		w.Times = append(w.Times, t)
		w.Samples = append(w.Samples, s)
		t += interval
	}
	return w
}

// ToRecord converts the waveform to an mSEED-lite record.
func (w *Waveform) ToRecord(seqnr uint32) *mseed.Record {
	return &mseed.Record{
		Seqnr:          seqnr,
		Station:        w.Station,
		Quality:        'D',
		SampleInterval: w.Interval,
		StartTime:      w.Start,
		Times:          w.Times,
		Samples:        w.Samples,
	}
}

// Stations returns synthetic station metadata (id, name, lat, lon,
// alt) for k stations.
func Stations(k int, seed int64) (ids, names []string, lat, lon, alt []int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < k; i++ {
		ids = append(ids, stationID(i))
		names = append(names, "Station "+stationID(i))
		lat = append(lat, int64(rng.Intn(180)-90))
		lon = append(lon, int64(rng.Intn(360)-180))
		alt = append(alt, int64(rng.Intn(3000)))
	}
	return
}

func stationID(i int) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return string([]byte{letters[i/26%26], letters[i%26]}) + "SN"
}
