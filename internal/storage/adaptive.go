package storage

import "repro/internal/array"

// Scheme names used throughout the engine and the bench harness.
const (
	SchemeVirtual = "virtual"
	SchemeTabular = "tabular"
	SchemeDOrder  = "dorder"
	SchemeSlab    = "slab"
)

// Hints carries the intrinsic properties the adaptive layer consults
// when choosing a representation (§2.2: "it selects the best
// representation based on the intrinsic properties of an array
// instance").
type Hints struct {
	// ExpectedDensity in (0,1]; 0 means unknown (assume dense).
	ExpectedDensity float64
	// ForceScheme bypasses the policy (ablation benches).
	ForceScheme string
	// SlabSize overrides the slab edge length when the slab scheme is
	// chosen.
	SlabSize int64
}

// maxDenseCells bounds eager dense allocation; above it the slab
// scheme wins so allocation happens on demand.
const maxDenseCells = int64(1) << 28

// sparseDensityCutoff is the density below which the tabular
// representation is cheaper than dense allocation.
const sparseDensityCutoff = 0.05

// New picks a storage scheme per the adaptive policy and instantiates
// it:
//
//   - unbounded dimensions → slab when a grid step exists, else tabular
//     (sparse index domains such as event timestamps);
//   - expected density below the cutoff → tabular;
//   - very large dense arrays → slab (on-demand allocation, the unit of
//     parallelism);
//   - otherwise → virtual (row-major dense), the prototype compiler's
//     basis representation.
func New(schema array.Schema, h Hints) (array.Store, error) {
	if h.ForceScheme != "" {
		return NewScheme(h.ForceScheme, schema, h)
	}
	bounded := allBounded(schema.Dims)
	if !bounded {
		// Timestamp dims with step 0 have no grid: tabular.
		for _, d := range schema.Dims {
			if d.Step == 0 && !d.Bounded() {
				return NewTabular(schema)
			}
		}
		return NewSlabSized(schema, slabSize(h))
	}
	if h.ExpectedDensity > 0 && h.ExpectedDensity < sparseDensityCutoff {
		return NewTabular(schema)
	}
	cells := int64(1)
	for _, d := range schema.Dims {
		cells *= d.Size()
	}
	if cells > maxDenseCells {
		return NewSlabSized(schema, slabSize(h))
	}
	return NewVirtual(schema)
}

func slabSize(h Hints) int64 {
	if h.SlabSize > 0 {
		return h.SlabSize
	}
	return DefaultSlabSize
}

// NewScheme instantiates a specific scheme by name.
func NewScheme(scheme string, schema array.Schema, h Hints) (array.Store, error) {
	switch scheme {
	case SchemeVirtual:
		return NewVirtual(schema)
	case SchemeTabular:
		return NewTabular(schema)
	case SchemeDOrder:
		return NewDOrder(schema)
	case SchemeSlab:
		return NewSlabSized(schema, slabSize(h))
	default:
		return New(schema, Hints{})
	}
}
