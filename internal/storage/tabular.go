package storage

import (
	"encoding/binary"
	"sort"
	"sync"

	"repro/internal/array"
	"repro/internal/value"
)

// tabularStore is the Tabular scheme of Figure 1: the array index
// values are materialized as explicit columns alongside the attribute
// columns — exactly the relational encoding of an array. It is the
// representation of choice for sparse arrays and for arrays with
// unbounded dimensions, where dense allocation is impossible (§2.2).
type tabularStore struct {
	dims  []array.Dimension
	attrs []array.Attr
	// idx holds one materialized index column per dimension.
	idx []*column
	// cols holds the attribute columns.
	cols []*column
	// lookup maps packed coordinates to row position.
	lookup map[string]int
	// tomb marks deleted rows awaiting compaction.
	tomb []bool
	live int
	// Incrementally tracked bounding box. Deletes do not shrink it, so
	// the box is conservative (a superset) after heavy deletion — the
	// engine only needs an enclosing rectangle.
	haveCells bool
	blo, bhi  []int64
	// dimVals caches sorted distinct coordinate values per dimension
	// for sparse-range expansion; invalidated on inserts. Stale values
	// after deletes are harmless (reads come back NULL and are
	// skipped). dimMu guards the lazy build: concurrent read-only
	// queries (the morsel-driven executor) may race to build it.
	dimMu   sync.Mutex
	dimVals [][]int64
	zm      zoneMaps
}

// NewTabular creates a tabular store. Cells materialize on first
// write; defaults fill unset attributes of a written cell. For
// bounded arrays whose defaults are non-NULL the engine materializes
// default cells eagerly so scans observe them, mirroring the paper's
// "all cells covered by the dimensions exist".
func NewTabular(schema array.Schema) (array.Store, error) {
	s := &tabularStore{
		dims:   schema.Dims,
		attrs:  schema.Attrs,
		lookup: make(map[string]int),
		blo:    make([]int64, len(schema.Dims)),
		bhi:    make([]int64, len(schema.Dims)),
	}
	s.idx = make([]*column, len(s.dims))
	for i, d := range s.dims {
		s.idx[i] = newColumn(d.Typ, 0)
	}
	s.cols = make([]*column, len(s.attrs))
	for i, a := range s.attrs {
		s.cols[i] = newColumn(a.Typ, 0)
	}
	if allBounded(s.dims) && anyNonNullDefault(s.attrs) {
		coords := make([]int64, len(s.dims))
		var fill func(d int)
		fill = func(d int) {
			if d == len(s.dims) {
				if !dimChecksPass(s.dims, coords) {
					return
				}
				row := s.newRow(coords)
				live := false
				for ai, at := range s.attrs {
					dv := defaultValue(at, coords)
					s.cols[ai].set(row, dv)
					if !dv.Null {
						live = true
					}
				}
				if live {
					s.live++
				} else {
					s.tomb[row] = true
					delete(s.lookup, packCoords(coords))
				}
				return
			}
			dim := s.dims[d]
			for ord := int64(0); ord < dim.Size(); ord++ {
				coords[d] = dim.Index(ord)
				fill(d + 1)
			}
		}
		fill(0)
	}
	return s, nil
}

func allBounded(dims []array.Dimension) bool {
	for _, d := range dims {
		if !d.Bounded() {
			return false
		}
	}
	return true
}

func anyNonNullDefault(attrs []array.Attr) bool {
	for _, a := range attrs {
		if a.DefaultFn != nil || !a.Default.Null {
			return true
		}
	}
	return false
}

// packCoords builds a map key from coordinates.
func packCoords(coords []int64) string {
	buf := make([]byte, 8*len(coords))
	for i, c := range coords {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(c))
	}
	return string(buf)
}

func (s *tabularStore) newRow(coords []int64) int {
	s.zm.bump()
	row := -1
	for i := range s.idx {
		row = s.idx[i].grow()
		s.idx[i].set(row, value.Value{Typ: s.dims[i].Typ, I: coords[i]})
	}
	for i := range s.cols {
		s.cols[i].grow()
	}
	s.tomb = append(s.tomb, false)
	s.lookup[packCoords(coords)] = row
	s.dimVals = nil
	if !s.haveCells {
		copy(s.blo, coords)
		copy(s.bhi, coords)
		s.haveCells = true
	} else {
		for i, c := range coords {
			if c < s.blo[i] {
				s.blo[i] = c
			}
			if c > s.bhi[i] {
				s.bhi[i] = c
			}
		}
	}
	return row
}

func (s *tabularStore) Scheme() string { return "tabular" }
func (s *tabularStore) Len() int       { return s.live }

func (s *tabularStore) Get(coords []int64, attr int) value.Value {
	row, ok := s.lookup[packCoords(coords)]
	if !ok || s.tomb[row] {
		return value.NewNull(s.attrs[attr].Typ)
	}
	return s.cols[attr].get(row)
}

func (s *tabularStore) Set(coords []int64, attr int, v value.Value) error {
	s.zm.bump()
	key := packCoords(coords)
	row, ok := s.lookup[key]
	if !ok || s.tomb[row] {
		if v.Null {
			return nil // punching a hole in an absent cell is a no-op
		}
		row = s.newRow(coords)
		// Fill other attributes with their defaults on materialization.
		for ai, at := range s.attrs {
			if ai == attr {
				continue
			}
			s.cols[ai].set(row, defaultValue(at, coords))
		}
		s.cols[attr].set(row, v)
		s.live++
		return nil
	}
	s.cols[attr].set(row, v)
	if s.rowIsHole(row) {
		s.tomb[row] = true
		delete(s.lookup, key)
		s.live--
	}
	return nil
}

func (s *tabularStore) rowIsHole(row int) bool {
	for _, c := range s.cols {
		if c.isValid(row) {
			return false
		}
	}
	return true
}

func (s *tabularStore) Scan(visit func(coords []int64, vals []value.Value) bool) {
	coords := make([]int64, len(s.dims))
	vals := make([]value.Value, len(s.attrs))
	n := len(s.tomb)
	for row := 0; row < n; row++ {
		if s.tomb[row] {
			continue
		}
		for i := range s.idx {
			coords[i] = s.idx[i].get(row).I
		}
		for ai := range s.cols {
			vals[ai] = s.cols[ai].get(row)
		}
		if !visit(coords, vals) {
			return
		}
	}
}

// ScanChunks splits the row range into contiguous chunks; concatenated
// in order they reproduce Scan exactly. Only the attribute columns in
// attrs are materialized into vals.
func (s *tabularStore) ScanChunks(target int, attrs []int) []array.ChunkScan {
	cols := array.AllAttrs(attrs, len(s.attrs))
	ranges := chunkRanges(int64(len(s.tomb)), target)
	out := make([]array.ChunkScan, len(ranges))
	for ci, r := range ranges {
		lo, hi := int(r[0]), int(r[1])
		out[ci] = func(visit func(coords []int64, vals []value.Value) bool) {
			coords := make([]int64, len(s.dims))
			vals := make([]value.Value, len(cols))
			for row := lo; row < hi; row++ {
				if s.tomb[row] {
					continue
				}
				for i := range s.idx {
					coords[i] = s.idx[i].get(row).I
				}
				for vi, ai := range cols {
					vals[vi] = s.cols[ai].get(row)
				}
				if !visit(coords, vals) {
					return
				}
			}
		}
	}
	return out
}

// ChunkStats returns zone maps index-aligned with ScanChunks(target, ·).
func (s *tabularStore) ChunkStats(target int) []array.ChunkStats {
	return s.zm.get(target, func() []array.ChunkStats {
		return computeZoneMaps(s, target, s.dims, s.attrs)
	})
}

// DimValues returns the sorted distinct coordinate values along
// dimension di — the sparse-range expansion index. The result must be
// treated as read-only.
func (s *tabularStore) DimValues(di int) []int64 {
	s.dimMu.Lock()
	defer s.dimMu.Unlock()
	if s.dimVals == nil {
		s.dimVals = make([][]int64, len(s.dims))
	}
	if s.dimVals[di] != nil {
		return s.dimVals[di]
	}
	set := make(map[int64]struct{}, len(s.tomb))
	for row := 0; row < len(s.tomb); row++ {
		if s.tomb[row] {
			continue
		}
		set[s.idx[di].get(row).I] = struct{}{}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	s.dimVals[di] = out
	return out
}

func (s *tabularStore) Bounds() (lo, hi []int64, ok bool) {
	if !s.haveCells || s.live == 0 {
		return nil, nil, false
	}
	return append([]int64(nil), s.blo...), append([]int64(nil), s.bhi...), true
}

func (s *tabularStore) Clone() array.Store {
	out := &tabularStore{
		dims:      s.dims,
		attrs:     s.attrs,
		lookup:    make(map[string]int, len(s.lookup)),
		tomb:      append([]bool(nil), s.tomb...),
		live:      s.live,
		haveCells: s.haveCells,
		blo:       append([]int64(nil), s.blo...),
		bhi:       append([]int64(nil), s.bhi...),
	}
	out.idx = make([]*column, len(s.idx))
	for i, c := range s.idx {
		out.idx[i] = c.clone()
	}
	out.cols = make([]*column, len(s.cols))
	for i, c := range s.cols {
		out.cols[i] = c.clone()
	}
	for k, v := range s.lookup {
		out.lookup[k] = v
	}
	return out
}
