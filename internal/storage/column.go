// Package storage implements the four alternative array storage
// schemes of the paper's Figure 1 — Tabular, Virtual, D-Order and
// n-ary Slabs — behind the array.Store interface, plus the adaptive
// selection policy of §2.2 that picks a representation from the
// intrinsic properties of an array instance.
package storage

import (
	"repro/internal/array"
	"repro/internal/value"
)

// column is a fixed- or growable-length typed attribute column with a
// validity bitmap (0 bit = NULL/hole). It is the dense C-array of the
// MonetDB BAT tail, specialized per type for bulk speed.
type column struct {
	typ   value.Type
	f     []float64
	i     []int64
	s     []string
	b     []bool
	a     []value.Value // boxed storage for Array-typed attributes
	valid []uint64
}

func newColumn(t value.Type, n int) *column {
	c := &column{typ: t, valid: make([]uint64, (n+63)/64)}
	switch t {
	case value.Float:
		c.f = make([]float64, n)
	case value.Int, value.Timestamp:
		c.i = make([]int64, n)
	case value.String:
		c.s = make([]string, n)
	case value.Bool:
		c.b = make([]bool, n)
	default:
		c.a = make([]value.Value, n)
	}
	return c
}

func (c *column) len() int {
	switch c.typ {
	case value.Float:
		return len(c.f)
	case value.Int, value.Timestamp:
		return len(c.i)
	case value.String:
		return len(c.s)
	case value.Bool:
		return len(c.b)
	default:
		return len(c.a)
	}
}

func (c *column) isValid(i int) bool {
	w := i >> 6
	return w < len(c.valid) && c.valid[w]&(1<<(uint(i)&63)) != 0
}

func (c *column) setValid(i int, ok bool) {
	w := i >> 6
	for len(c.valid) <= w {
		c.valid = append(c.valid, 0)
	}
	if ok {
		c.valid[w] |= 1 << (uint(i) & 63)
	} else {
		c.valid[w] &^= 1 << (uint(i) & 63)
	}
}

func (c *column) get(i int) value.Value {
	if !c.isValid(i) {
		return value.NewNull(c.typ)
	}
	switch c.typ {
	case value.Float:
		return value.NewFloat(c.f[i])
	case value.Int:
		return value.NewInt(c.i[i])
	case value.Timestamp:
		return value.NewTimestamp(c.i[i])
	case value.String:
		return value.NewString(c.s[i])
	case value.Bool:
		return value.NewBool(c.b[i])
	default:
		return c.a[i]
	}
}

func (c *column) set(i int, v value.Value) {
	if v.Null {
		c.setValid(i, false)
		return
	}
	c.setValid(i, true)
	switch c.typ {
	case value.Float:
		c.f[i] = v.AsFloat()
	case value.Int, value.Timestamp:
		c.i[i] = v.AsInt()
	case value.String:
		c.s[i] = v.S
	case value.Bool:
		c.b[i] = v.AsBool()
	default:
		c.a[i] = v
	}
}

func (c *column) grow() int {
	i := c.len()
	switch c.typ {
	case value.Float:
		c.f = append(c.f, 0)
	case value.Int, value.Timestamp:
		c.i = append(c.i, 0)
	case value.String:
		c.s = append(c.s, "")
	case value.Bool:
		c.b = append(c.b, false)
	default:
		c.a = append(c.a, value.Value{})
	}
	c.setValid(i, false)
	return i
}

// fill writes v into every position [0,n).
func (c *column) fill(v value.Value, n int) {
	for i := 0; i < n; i++ {
		c.set(i, v)
	}
}

func (c *column) clone() *column {
	out := &column{typ: c.typ, valid: append([]uint64(nil), c.valid...)}
	out.f = append([]float64(nil), c.f...)
	out.i = append([]int64(nil), c.i...)
	out.s = append([]string(nil), c.s...)
	out.b = append([]bool(nil), c.b...)
	out.a = append([]value.Value(nil), c.a...)
	return out
}

// defaultValue resolves an attribute's creation-time default for the
// cell at coords.
func defaultValue(at array.Attr, coords []int64) value.Value {
	if at.DefaultFn != nil {
		v := at.DefaultFn(coords)
		if at.Check != nil && !v.Null && !at.Check(v) {
			return value.NewNull(at.Typ)
		}
		return v
	}
	if at.Default.Null && at.Default.Typ == value.Unknown {
		return value.NewNull(at.Typ)
	}
	v, err := value.Coerce(at.Default, at.Typ)
	if err != nil {
		return value.NewNull(at.Typ)
	}
	if at.Check != nil && !v.Null && !at.Check(v) {
		return value.NewNull(at.Typ)
	}
	return v
}

// dimChecksPass evaluates all dimension CHECK predicates at coords.
func dimChecksPass(dims []array.Dimension, coords []int64) bool {
	for _, d := range dims {
		if d.Check != nil && !d.Check(coords) {
			return false
		}
	}
	return true
}
