package storage

import (
	"encoding/binary"
	"sort"

	"repro/internal/array"
	"repro/internal/value"
)

// DefaultSlabSize is the per-dimension edge length of a slab block.
// The SciDB-inspired n-ary Slabs scheme (§2.2) breaks a sizeable array
// into rectangles; 64 keeps a 2-D float slab at 32 KiB, L1-friendly.
const DefaultSlabSize = 64

// slabStore is the n-ary Slabs scheme of Figure 1: the array is broken
// into fixed-size rectangles allocated on demand. It supports
// unbounded dimensions (new slabs appear as cells materialize) and is
// the natural unit for parallel processing.
type slabStore struct {
	dims     []array.Dimension
	attrs    []array.Attr
	slabSize int64
	// blocks maps packed slab coordinates to dense blocks.
	blocks map[string]*slabBlock
	live   int
	// bounds tracking for unbounded dims.
	haveCells bool
	lo, hi    []int64
	zm        zoneMaps
}

type slabBlock struct {
	// origin is the index value of the block's low corner.
	origin []int64
	cols   []*column
}

// NewSlab creates a slab store with the default slab size.
func NewSlab(schema array.Schema) (array.Store, error) {
	return NewSlabSized(schema, DefaultSlabSize)
}

// NewSlabSized creates a slab store with a custom slab edge length,
// used by the slab-size ablation bench.
func NewSlabSized(schema array.Schema, slabSize int64) (array.Store, error) {
	s := &slabStore{
		dims:     schema.Dims,
		attrs:    schema.Attrs,
		slabSize: slabSize,
		blocks:   make(map[string]*slabBlock),
		lo:       make([]int64, len(schema.Dims)),
		hi:       make([]int64, len(schema.Dims)),
	}
	// Bounded arrays with non-NULL defaults materialize eagerly so all
	// covered cells exist, as the array semantics require.
	if allBounded(s.dims) && anyNonNullDefault(s.attrs) {
		coords := make([]int64, len(s.dims))
		var fill func(d int)
		fill = func(d int) {
			if d == len(s.dims) {
				if !dimChecksPass(s.dims, coords) {
					return
				}
				blk, pos := s.block(coords, true)
				live := false
				for ai, at := range s.attrs {
					dv := defaultValue(at, coords)
					blk.cols[ai].set(pos, dv)
					if !dv.Null {
						live = true
					}
				}
				if live {
					s.live++
					s.extendBounds(coords)
				}
				return
			}
			dim := s.dims[d]
			for ord := int64(0); ord < dim.Size(); ord++ {
				coords[d] = dim.Index(ord)
				fill(d + 1)
			}
		}
		fill(0)
	}
	return s, nil
}

func (s *slabStore) extendBounds(coords []int64) {
	if !s.haveCells {
		copy(s.lo, coords)
		copy(s.hi, coords)
		s.haveCells = true
		return
	}
	for i, c := range coords {
		if c < s.lo[i] {
			s.lo[i] = c
		}
		if c > s.hi[i] {
			s.hi[i] = c
		}
	}
}

// slabKey returns the packed slab coordinates for coords and the
// in-block position.
func (s *slabStore) slabKey(coords []int64) (key string, pos int) {
	buf := make([]byte, 8*len(coords))
	p := int64(0)
	for i, c := range coords {
		ord := s.dims[i].Ordinal(c)
		sc := floorDiv(ord, s.slabSize)
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(sc))
		within := ord - sc*s.slabSize
		p = p*s.slabSize + within
	}
	return string(buf), int(p)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// block returns the slab containing coords, allocating if create.
func (s *slabStore) block(coords []int64, create bool) (*slabBlock, int) {
	key, pos := s.slabKey(coords)
	blk := s.blocks[key]
	if blk == nil {
		if !create {
			return nil, 0
		}
		vol := int64(1)
		for range s.dims {
			vol *= s.slabSize
		}
		blk = &slabBlock{origin: make([]int64, len(coords)), cols: make([]*column, len(s.attrs))}
		for i, c := range coords {
			ord := s.dims[i].Ordinal(c)
			blk.origin[i] = s.dims[i].Index(floorDiv(ord, s.slabSize) * s.slabSize)
		}
		for ai, at := range s.attrs {
			blk.cols[ai] = newColumn(at.Typ, int(vol))
		}
		s.blocks[key] = blk
	}
	return blk, pos
}

func (s *slabStore) Scheme() string { return "slab" }
func (s *slabStore) Len() int       { return s.live }

func (s *slabStore) Get(coords []int64, attr int) value.Value {
	blk, pos := s.block(coords, false)
	if blk == nil {
		return value.NewNull(s.attrs[attr].Typ)
	}
	return blk.cols[attr].get(pos)
}

func (s *slabStore) Set(coords []int64, attr int, v value.Value) error {
	s.zm.bump()
	blk, pos := s.block(coords, !v.Null)
	if blk == nil {
		return nil // hole write into an unallocated slab
	}
	wasHole := s.posIsHole(blk, pos)
	if wasHole && !v.Null {
		// Materializing a fresh cell: fill sibling attrs with defaults.
		for ai, at := range s.attrs {
			if ai == attr {
				continue
			}
			blk.cols[ai].set(pos, defaultValue(at, coords))
		}
	}
	blk.cols[attr].set(pos, v)
	nowHole := s.posIsHole(blk, pos)
	switch {
	case wasHole && !nowHole:
		s.live++
		s.extendBounds(coords)
	case !wasHole && nowHole:
		s.live--
	}
	return nil
}

func (s *slabStore) posIsHole(blk *slabBlock, pos int) bool {
	for _, c := range blk.cols {
		if c.isValid(pos) {
			return false
		}
	}
	return true
}

// sortedKeys returns the slab keys in the deterministic scan order.
func (s *slabStore) sortedKeys() []string {
	keys := make([]string, 0, len(s.blocks))
	for k := range s.blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// scanBlock visits the non-hole cells of one slab in position order,
// materializing the attribute columns listed in cols; false return
// from visit stops the walk (and is propagated).
func (s *slabStore) scanBlock(blk *slabBlock, cols []int, coords []int64, vals []value.Value, visit func(coords []int64, vals []value.Value) bool) bool {
	vol := 1
	for range s.dims {
		vol *= int(s.slabSize)
	}
	for pos := 0; pos < vol; pos++ {
		if s.posIsHole(blk, pos) {
			continue
		}
		// Decode in-block position to coordinates.
		p := int64(pos)
		for i := len(s.dims) - 1; i >= 0; i-- {
			within := p % s.slabSize
			p /= s.slabSize
			step := s.dims[i].Step
			if step <= 0 {
				step = 1
			}
			coords[i] = blk.origin[i] + within*step
		}
		for vi, ai := range cols {
			vals[vi] = blk.cols[ai].get(pos)
		}
		if !visit(coords, vals) {
			return false
		}
	}
	return true
}

func (s *slabStore) Scan(visit func(coords []int64, vals []value.Value) bool) {
	coords := make([]int64, len(s.dims))
	vals := make([]value.Value, len(s.attrs))
	cols := array.AllAttrs(nil, len(s.attrs))
	for _, k := range s.sortedKeys() {
		if !s.scanBlock(s.blocks[k], cols, coords, vals, visit) {
			return
		}
	}
}

// ScanChunks splits the sorted slab list into contiguous groups — the
// slab is the natural unit of parallelism (§2.2) — so concatenating
// the chunks in order reproduces Scan exactly. Only the attribute
// columns in attrs are materialized.
func (s *slabStore) ScanChunks(target int, attrs []int) []array.ChunkScan {
	cols := array.AllAttrs(attrs, len(s.attrs))
	keys := s.sortedKeys()
	ranges := chunkRanges(int64(len(keys)), target)
	out := make([]array.ChunkScan, len(ranges))
	for ci, r := range ranges {
		group := keys[r[0]:r[1]]
		out[ci] = func(visit func(coords []int64, vals []value.Value) bool) {
			coords := make([]int64, len(s.dims))
			vals := make([]value.Value, len(cols))
			for _, k := range group {
				if !s.scanBlock(s.blocks[k], cols, coords, vals, visit) {
					return
				}
			}
		}
	}
	return out
}

// ChunkStats returns zone maps index-aligned with ScanChunks(target, ·).
func (s *slabStore) ChunkStats(target int) []array.ChunkStats {
	return s.zm.get(target, func() []array.ChunkStats {
		return computeZoneMaps(s, target, s.dims, s.attrs)
	})
}

func (s *slabStore) Bounds() (lo, hi []int64, ok bool) {
	if !s.haveCells {
		return nil, nil, false
	}
	return append([]int64(nil), s.lo...), append([]int64(nil), s.hi...), true
}

func (s *slabStore) Clone() array.Store {
	out := &slabStore{
		dims:      s.dims,
		attrs:     s.attrs,
		slabSize:  s.slabSize,
		blocks:    make(map[string]*slabBlock, len(s.blocks)),
		live:      s.live,
		haveCells: s.haveCells,
		lo:        append([]int64(nil), s.lo...),
		hi:        append([]int64(nil), s.hi...),
	}
	for k, blk := range s.blocks {
		nb := &slabBlock{origin: append([]int64(nil), blk.origin...), cols: make([]*column, len(blk.cols))}
		for i, c := range blk.cols {
			nb.cols[i] = c.clone()
		}
		out.blocks[k] = nb
	}
	return out
}

// NumSlabs reports the number of allocated slabs (parallelism units).
func (s *slabStore) NumSlabs() int { return len(s.blocks) }
