package storage

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/value"
)

// linearStore is the shared implementation of the two dense schemes of
// Figure 1: Virtual (row-major, cell location derived as |y|*x+y) and
// D-Order (column-major, the "programming language compilation
// technique" ordering). The index columns are never materialized —
// the coordinate of a cell is derived from its position, exactly the
// virtual-OID trick of MonetDB BATs (§2.2).
type linearStore struct {
	scheme   string
	dims     []array.Dimension
	attrs    []array.Attr
	sizes    []int64
	strides  []int64
	total    int64
	cols     []*column
	liveCnt  int
	rowMajor bool
	zm       zoneMaps
}

// NewVirtual creates a row-major dense store. All dimensions must be
// bounded; the adaptive layer guarantees this.
func NewVirtual(schema array.Schema) (array.Store, error) {
	return newLinear("virtual", schema, true)
}

// NewDOrder creates a column-major dense store (first dimension varies
// fastest), matching Fortran/FITS serialization order.
func NewDOrder(schema array.Schema) (array.Store, error) {
	return newLinear("dorder", schema, false)
}

func newLinear(scheme string, schema array.Schema, rowMajor bool) (array.Store, error) {
	s := &linearStore{
		scheme:   scheme,
		dims:     schema.Dims,
		attrs:    schema.Attrs,
		rowMajor: rowMajor,
	}
	s.sizes = make([]int64, len(s.dims))
	total := int64(1)
	for i, d := range s.dims {
		if !d.Bounded() {
			return nil, fmt.Errorf("%s storage requires bounded dimensions; %s is unbounded", scheme, d.Name)
		}
		s.sizes[i] = d.Size()
		total *= s.sizes[i]
	}
	s.total = total
	s.strides = make([]int64, len(s.dims))
	if rowMajor {
		stride := int64(1)
		for i := len(s.dims) - 1; i >= 0; i-- {
			s.strides[i] = stride
			stride *= s.sizes[i]
		}
	} else {
		stride := int64(1)
		for i := 0; i < len(s.dims); i++ {
			s.strides[i] = stride
			stride *= s.sizes[i]
		}
	}
	s.cols = make([]*column, len(s.attrs))
	for ai, at := range s.attrs {
		s.cols[ai] = newColumn(at.Typ, int(total))
	}
	// Initialize every valid cell to the attribute defaults; cells
	// carved out by dimension CHECKs stay holes (Fig. 2 forms).
	coords := make([]int64, len(s.dims))
	s.eachPosition(func(pos int64) {
		s.coordsOf(pos, coords)
		if !dimChecksPass(s.dims, coords) {
			return
		}
		live := false
		for ai, at := range s.attrs {
			dv := defaultValue(at, coords)
			s.cols[ai].set(int(pos), dv)
			if !dv.Null {
				live = true
			}
		}
		if live {
			s.liveCnt++
		}
	})
	return s, nil
}

func (s *linearStore) eachPosition(fn func(pos int64)) {
	for p := int64(0); p < s.total; p++ {
		fn(p)
	}
}

// offset linearizes coordinates; -1 when out of range.
func (s *linearStore) offset(coords []int64) int64 {
	var off int64
	for i, d := range s.dims {
		ord := d.Ordinal(coords[i])
		if ord < 0 || ord >= s.sizes[i] {
			return -1
		}
		off += ord * s.strides[i]
	}
	return off
}

// coordsOf decodes a linear position into index values (into out).
func (s *linearStore) coordsOf(pos int64, out []int64) {
	if s.rowMajor {
		for i := 0; i < len(s.dims); i++ {
			ord := pos / s.strides[i]
			pos -= ord * s.strides[i]
			out[i] = s.dims[i].Index(ord)
		}
	} else {
		for i := len(s.dims) - 1; i >= 0; i-- {
			ord := pos / s.strides[i]
			pos -= ord * s.strides[i]
			out[i] = s.dims[i].Index(ord)
		}
	}
}

func (s *linearStore) Scheme() string { return s.scheme }
func (s *linearStore) Len() int       { return s.liveCnt }

func (s *linearStore) Get(coords []int64, attr int) value.Value {
	off := s.offset(coords)
	if off < 0 {
		return value.NewNull(s.attrs[attr].Typ)
	}
	return s.cols[attr].get(int(off))
}

func (s *linearStore) Set(coords []int64, attr int, v value.Value) error {
	off := s.offset(coords)
	if off < 0 {
		return fmt.Errorf("%s store: coordinates %v out of bounds", s.scheme, coords)
	}
	s.zm.bump()
	wasHole := s.isHole(int(off))
	s.cols[attr].set(int(off), v)
	nowHole := s.isHole(int(off))
	switch {
	case wasHole && !nowHole:
		s.liveCnt++
	case !wasHole && nowHole:
		s.liveCnt--
	}
	return nil
}

func (s *linearStore) isHole(pos int) bool {
	for _, c := range s.cols {
		if c.isValid(pos) {
			return false
		}
	}
	return true
}

func (s *linearStore) Scan(visit func(coords []int64, vals []value.Value) bool) {
	coords := make([]int64, len(s.dims))
	vals := make([]value.Value, len(s.attrs))
	for p := int64(0); p < s.total; p++ {
		if s.isHole(int(p)) {
			continue
		}
		s.coordsOf(p, coords)
		for ai := range s.cols {
			vals[ai] = s.cols[ai].get(int(p))
		}
		if !visit(coords, vals) {
			return
		}
	}
}

// chunkRanges splits [0, total) into roughly target contiguous ranges.
func chunkRanges(total int64, target int) [][2]int64 {
	if total <= 0 {
		return nil
	}
	if target < 1 {
		target = 1
	}
	size := (total + int64(target) - 1) / int64(target)
	if size < 1 {
		size = 1
	}
	out := make([][2]int64, 0, target)
	for lo := int64(0); lo < total; lo += size {
		hi := lo + size
		if hi > total {
			hi = total
		}
		out = append(out, [2]int64{lo, hi})
	}
	return out
}

// ScanChunks splits the linear position range into contiguous chunks;
// concatenated in order they reproduce Scan exactly. Only the columns
// in attrs are materialized into vals (hole detection still consults
// every column, like Scan).
func (s *linearStore) ScanChunks(target int, attrs []int) []array.ChunkScan {
	cols := array.AllAttrs(attrs, len(s.attrs))
	ranges := chunkRanges(s.total, target)
	out := make([]array.ChunkScan, len(ranges))
	for ci, r := range ranges {
		lo, hi := r[0], r[1]
		out[ci] = func(visit func(coords []int64, vals []value.Value) bool) {
			coords := make([]int64, len(s.dims))
			vals := make([]value.Value, len(cols))
			for p := lo; p < hi; p++ {
				if s.isHole(int(p)) {
					continue
				}
				s.coordsOf(p, coords)
				for vi, ai := range cols {
					vals[vi] = s.cols[ai].get(int(p))
				}
				if !visit(coords, vals) {
					return
				}
			}
		}
	}
	return out
}

// ChunkStats returns zone maps index-aligned with ScanChunks(target, ·).
func (s *linearStore) ChunkStats(target int) []array.ChunkStats {
	return s.zm.get(target, func() []array.ChunkStats {
		return computeZoneMaps(s, target, s.dims, s.attrs)
	})
}

func (s *linearStore) Bounds() (lo, hi []int64, ok bool) {
	lo = make([]int64, len(s.dims))
	hi = make([]int64, len(s.dims))
	for i, d := range s.dims {
		lo[i] = d.Start
		hi[i] = d.Index(s.sizes[i] - 1)
	}
	return lo, hi, true
}

func (s *linearStore) Clone() array.Store {
	out := &linearStore{
		scheme:   s.scheme,
		dims:     s.dims,
		attrs:    s.attrs,
		sizes:    s.sizes,
		strides:  s.strides,
		total:    s.total,
		liveCnt:  s.liveCnt,
		rowMajor: s.rowMajor,
		cols:     make([]*column, len(s.cols)),
	}
	for i, c := range s.cols {
		out.cols[i] = c.clone()
	}
	return out
}

// FloatColumn exposes the raw dense float column of attribute attr for
// bulk kernels and black-box marshaling; ok is false when the
// attribute is not Float-typed.
func (s *linearStore) FloatColumn(attr int) (data []float64, valid []uint64, ok bool) {
	c := s.cols[attr]
	if c.typ != value.Float {
		return nil, nil, false
	}
	return c.f, c.valid, true
}

// IntColumn exposes the raw dense int column of attribute attr.
func (s *linearStore) IntColumn(attr int) (data []int64, valid []uint64, ok bool) {
	c := s.cols[attr]
	if c.typ != value.Int && c.typ != value.Timestamp {
		return nil, nil, false
	}
	return c.i, c.valid, true
}

// RowMajor reports the linearization order (true for Virtual, false
// for D-Order); black-box marshaling uses it to decide on a recast.
func (s *linearStore) RowMajor() bool { return s.rowMajor }

// DenseFloats is implemented by dense stores that can expose an
// attribute as a raw float column. The UDF marshaling layer (§6.2)
// uses it to hand arrays to external library functions.
type DenseFloats interface {
	FloatColumn(attr int) (data []float64, valid []uint64, ok bool)
	RowMajor() bool
}
