package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/value"
)

func schema2D(n int64, def float64, hasDefault bool) array.Schema {
	at := array.Attr{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}
	if hasDefault {
		at.Default = value.NewFloat(def)
	}
	return array.Schema{
		Dims: []array.Dimension{
			{Name: "x", Typ: value.Int, Start: 0, End: n, Step: 1},
			{Name: "y", Typ: value.Int, Start: 0, End: n, Step: 1},
		},
		Attrs: []array.Attr{at},
	}
}

func allSchemes(t *testing.T, sch array.Schema) map[string]array.Store {
	t.Helper()
	out := make(map[string]array.Store)
	for _, scheme := range []string{SchemeVirtual, SchemeTabular, SchemeDOrder, SchemeSlab} {
		st, err := NewScheme(scheme, sch, Hints{SlabSize: 4})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		out[scheme] = st
	}
	return out
}

func TestSchemesInitializeDefaults(t *testing.T) {
	sch := schema2D(8, 1.5, true)
	for name, st := range allSchemes(t, sch) {
		if st.Len() != 64 {
			t.Errorf("%s: Len = %d, want 64 (defaults materialize)", name, st.Len())
		}
		if got := st.Get([]int64{3, 5}, 0).AsFloat(); got != 1.5 {
			t.Errorf("%s: default cell = %v, want 1.5", name, got)
		}
	}
}

func TestSchemesNoDefaultAllHoles(t *testing.T) {
	sch := schema2D(8, 0, false)
	for name, st := range allSchemes(t, sch) {
		if st.Len() != 0 {
			t.Errorf("%s: Len = %d, want 0 (NULL default => holes)", name, st.Len())
		}
		if !st.Get([]int64{0, 0}, 0).Null {
			t.Errorf("%s: hole should read NULL", name)
		}
	}
}

func TestSchemesSetGetRoundTrip(t *testing.T) {
	sch := schema2D(8, 0, true)
	for name, st := range allSchemes(t, sch) {
		if err := st.Set([]int64{2, 3}, 0, value.NewFloat(7.25)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := st.Get([]int64{2, 3}, 0).AsFloat(); got != 7.25 {
			t.Errorf("%s: round trip = %v, want 7.25", name, got)
		}
	}
}

func TestSchemesHolePunch(t *testing.T) {
	sch := schema2D(4, 1, true)
	for name, st := range allSchemes(t, sch) {
		before := st.Len()
		if err := st.Set([]int64{1, 1}, 0, value.NewNull(value.Float)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Len() != before-1 {
			t.Errorf("%s: Len after hole = %d, want %d", name, st.Len(), before-1)
		}
		if !st.Get([]int64{1, 1}, 0).Null {
			t.Errorf("%s: punched cell should read NULL", name)
		}
	}
}

// TestSchemeEquivalence is the central property test: a random
// sequence of Set operations leaves all four schemes observably
// identical (Get on every coordinate, Len, and the multiset of Scan
// results).
func TestSchemeEquivalence(t *testing.T) {
	const n = 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sch := schema2D(n, 0, rng.Intn(2) == 0)
		stores := map[string]array.Store{}
		for _, scheme := range []string{SchemeVirtual, SchemeTabular, SchemeDOrder, SchemeSlab} {
			st, err := NewScheme(scheme, sch, Hints{SlabSize: 3})
			if err != nil {
				t.Logf("create %s: %v", scheme, err)
				return false
			}
			stores[scheme] = st
		}
		ops := 40 + rng.Intn(60)
		for i := 0; i < ops; i++ {
			x, y := rng.Int63n(n), rng.Int63n(n)
			var v value.Value
			if rng.Intn(5) == 0 {
				v = value.NewNull(value.Float)
			} else {
				v = value.NewFloat(float64(rng.Intn(1000)) / 8)
			}
			for name, st := range stores {
				if err := st.Set([]int64{x, y}, 0, v); err != nil {
					t.Logf("%s set: %v", name, err)
					return false
				}
			}
		}
		ref := stores[SchemeVirtual]
		for name, st := range stores {
			if st.Len() != ref.Len() {
				t.Logf("%s Len=%d virtual Len=%d", name, st.Len(), ref.Len())
				return false
			}
			for x := int64(0); x < n; x++ {
				for y := int64(0); y < n; y++ {
					a := ref.Get([]int64{x, y}, 0)
					b := st.Get([]int64{x, y}, 0)
					if a.Null != b.Null || (!a.Null && a.AsFloat() != b.AsFloat()) {
						t.Logf("%s mismatch at (%d,%d): %v vs %v", name, x, y, a, b)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestScanVisitsEveryLiveCell checks Scan completeness and that the
// reported coordinate/value pairs match Get.
func TestScanVisitsEveryLiveCell(t *testing.T) {
	sch := schema2D(6, 2, true)
	for name, st := range allSchemes(t, sch) {
		_ = st.Set([]int64{1, 1}, 0, value.NewNull(value.Float))
		_ = st.Set([]int64{2, 2}, 0, value.NewFloat(9))
		count := 0
		st.Scan(func(coords []int64, vals []value.Value) bool {
			count++
			if got := st.Get(append([]int64(nil), coords...), 0); got.AsFloat() != vals[0].AsFloat() {
				t.Errorf("%s: Scan value %v != Get %v at %v", name, vals[0], got, coords)
			}
			return true
		})
		if count != 35 {
			t.Errorf("%s: Scan visited %d cells, want 35", name, count)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	sch := schema2D(6, 1, true)
	for name, st := range allSchemes(t, sch) {
		count := 0
		st.Scan(func([]int64, []value.Value) bool {
			count++
			return count < 5
		})
		if count != 5 {
			t.Errorf("%s: early stop visited %d, want 5", name, count)
		}
	}
}

func TestBoundsTracking(t *testing.T) {
	sch := array.Schema{
		Dims: []array.Dimension{
			{Name: "x", Typ: value.Int, Start: array.UnboundedLow, End: array.UnboundedHigh, Step: 1},
		},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	for _, mk := range []func(array.Schema) (array.Store, error){NewTabular, NewSlab} {
		st, err := mk(sch)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := st.Bounds(); ok {
			t.Errorf("%s: empty store should have no bounds", st.Scheme())
		}
		_ = st.Set([]int64{-7}, 0, value.NewFloat(1))
		_ = st.Set([]int64{13}, 0, value.NewFloat(2))
		lo, hi, ok := st.Bounds()
		if !ok || lo[0] != -7 || hi[0] != 13 {
			t.Errorf("%s: bounds = %v..%v ok=%v, want -7..13", st.Scheme(), lo, hi, ok)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	sch := schema2D(4, 0, true)
	for name, st := range allSchemes(t, sch) {
		cl := st.Clone()
		_ = st.Set([]int64{1, 1}, 0, value.NewFloat(99))
		if got := cl.Get([]int64{1, 1}, 0).AsFloat(); got == 99 {
			t.Errorf("%s: clone shares storage with original", name)
		}
	}
}

func TestDimensionCheckCarving(t *testing.T) {
	sch := schema2D(4, 1, true)
	sch.Dims[1].Check = func(coords []int64) bool { return coords[0] == coords[1] }
	for name, st := range allSchemes(t, sch) {
		if st.Len() != 4 {
			t.Errorf("%s: diagonal carve Len = %d, want 4", name, st.Len())
		}
		if !st.Get([]int64{0, 1}, 0).Null {
			// Off-diagonal cells exist as holes only in dense stores;
			// Get must still read NULL everywhere.
			t.Errorf("%s: off-diagonal cell should be NULL", name)
		}
	}
}

func TestAdaptivePolicy(t *testing.T) {
	bounded := schema2D(16, 0, true)
	st, err := New(bounded, Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme() != SchemeVirtual {
		t.Errorf("bounded dense array: got %s, want virtual", st.Scheme())
	}
	st, err = New(bounded, Hints{ExpectedDensity: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme() != SchemeTabular {
		t.Errorf("sparse hint: got %s, want tabular", st.Scheme())
	}
	unbounded := array.Schema{
		Dims:  []array.Dimension{{Name: "t", Typ: value.Timestamp, Start: array.UnboundedLow, End: array.UnboundedHigh, Step: 0}},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	st, err = New(unbounded, Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme() != SchemeTabular {
		t.Errorf("order-only timestamp dim: got %s, want tabular", st.Scheme())
	}
	unboundedGrid := array.Schema{
		Dims:  []array.Dimension{{Name: "x", Typ: value.Int, Start: 0, End: array.UnboundedHigh, Step: 1}},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	st, err = New(unboundedGrid, Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme() != SchemeSlab {
		t.Errorf("unbounded grid dim: got %s, want slab", st.Scheme())
	}
	st, err = New(bounded, Hints{ForceScheme: SchemeDOrder})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme() != SchemeDOrder {
		t.Errorf("forced scheme: got %s, want dorder", st.Scheme())
	}
}

func TestSlabNegativeCoordinates(t *testing.T) {
	sch := array.Schema{
		Dims:  []array.Dimension{{Name: "x", Typ: value.Int, Start: array.UnboundedLow, End: array.UnboundedHigh, Step: 1}},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	st, err := NewSlabSized(sch, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{-17, -8, -1, 0, 7, 8, 100} {
		if err := st.Set([]int64{x}, 0, value.NewFloat(float64(x))); err != nil {
			t.Fatalf("set %d: %v", x, err)
		}
	}
	for _, x := range []int64{-17, -8, -1, 0, 7, 8, 100} {
		if got := st.Get([]int64{x}, 0).AsFloat(); got != float64(x) {
			t.Errorf("slab get(%d) = %v", x, got)
		}
	}
	if st.Len() != 7 {
		t.Errorf("slab Len = %d, want 7", st.Len())
	}
}

func TestVirtualRejectsUnbounded(t *testing.T) {
	sch := array.Schema{
		Dims:  []array.Dimension{{Name: "x", Typ: value.Int, Start: 0, End: array.UnboundedHigh, Step: 1}},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float}},
	}
	if _, err := NewVirtual(sch); err == nil {
		t.Fatal("virtual store must reject unbounded dimensions")
	}
}

func TestDOrderIsColumnMajor(t *testing.T) {
	sch := schema2D(4, 0, true)
	st, err := NewDOrder(sch)
	if err != nil {
		t.Fatal(err)
	}
	ls := st.(*linearStore)
	// Column-major: stride of dim 0 is 1.
	if ls.strides[0] != 1 || ls.strides[1] != 4 {
		t.Errorf("dorder strides = %v, want [1 4]", ls.strides)
	}
	vs, err := NewVirtual(sch)
	if err != nil {
		t.Fatal(err)
	}
	lv := vs.(*linearStore)
	if lv.strides[0] != 4 || lv.strides[1] != 1 {
		t.Errorf("virtual strides = %v, want [4 1]", lv.strides)
	}
}

func TestStepDimensions(t *testing.T) {
	sch := array.Schema{
		Dims:  []array.Dimension{{Name: "x", Typ: value.Int, Start: 0, End: 10, Step: 2}},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewFloat(1)}},
	}
	for name, st := range allSchemes(t, sch) {
		if st.Len() != 5 {
			t.Errorf("%s: stepped dim Len = %d, want 5", name, st.Len())
		}
		count := 0
		st.Scan(func(coords []int64, _ []value.Value) bool {
			if coords[0]%2 != 0 {
				t.Errorf("%s: off-step coordinate %d", name, coords[0])
			}
			count++
			return true
		})
		if count != 5 {
			t.Errorf("%s: stepped scan visited %d, want 5", name, count)
		}
	}
}

// chunkTestSchema has two attributes so pruning is observable.
func chunkTestSchema(n int64) array.Schema {
	return array.Schema{
		Dims: []array.Dimension{
			{Name: "x", Typ: value.Int, Start: 0, End: n, Step: 1},
			{Name: "y", Typ: value.Int, Start: 0, End: n, Step: 1},
		},
		Attrs: []array.Attr{
			{Name: "a", Typ: value.Float, Default: value.NewNull(value.Float)},
			{Name: "b", Typ: value.Int, Default: value.NewNull(value.Int)},
		},
	}
}

// renderScan flattens a scan into "x,y:v0|v1|..." lines.
func renderScan(scan array.ChunkScan) []string {
	var out []string
	scan(func(coords []int64, vals []value.Value) bool {
		line := ""
		for i, c := range coords {
			if i > 0 {
				line += ","
			}
			line += value.NewInt(c).String()
		}
		line += ":"
		for i, v := range vals {
			if i > 0 {
				line += "|"
			}
			line += v.String()
		}
		out = append(out, line)
		return true
	})
	return out
}

// TestScanChunksMatchScan pins the chunk contract on every scheme:
// concatenating the chunks in order reproduces Scan exactly, for any
// target chunk count, and attribute pruning never changes which cells
// are visited (liveness is judged on all attributes).
func TestScanChunksMatchScan(t *testing.T) {
	const n = 9
	sch := chunkTestSchema(n)
	for name, st := range allSchemes(t, sch) {
		// Sparse-ish fill; cell (2,3) is live only through attribute b,
		// so a scan pruned to attribute a must still visit it (as NULL).
		for x := int64(0); x < n; x++ {
			for y := int64(0); y < n; y++ {
				if (x+y)%3 == 0 {
					continue // leave holes
				}
				if err := st.Set([]int64{x, y}, 0, value.NewFloat(float64(x*n+y))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := st.Set([]int64{2, 3}, 1, value.NewInt(42)); err != nil {
			t.Fatal(err)
		}
		if err := st.Set([]int64{2, 3}, 0, value.NewNull(value.Float)); err != nil {
			t.Fatal(err)
		}
		cs, ok := st.(array.ChunkedScanner)
		if !ok {
			t.Fatalf("%s: store does not implement ChunkedScanner", name)
		}
		want := renderScan(st.Scan)
		for _, target := range []int{1, 2, 5, 100} {
			chunks := cs.ScanChunks(target, nil)
			var got []string
			for _, c := range chunks {
				got = append(got, renderScan(c)...)
			}
			if len(got) != len(want) {
				t.Fatalf("%s target=%d: %d rows, want %d", name, target, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s target=%d row %d: %q != %q", name, target, i, got[i], want[i])
				}
			}
		}
		// Pruned to attribute b only: same cells, vals[0] = attribute 1.
		var prunedCells, prunedB []string
		for _, c := range cs.ScanChunks(3, []int{1}) {
			c(func(coords []int64, vals []value.Value) bool {
				prunedCells = append(prunedCells, value.NewInt(coords[0]).String()+","+value.NewInt(coords[1]).String())
				prunedB = append(prunedB, vals[0].String())
				return true
			})
		}
		var wantCells, wantB []string
		st.Scan(func(coords []int64, vals []value.Value) bool {
			wantCells = append(wantCells, value.NewInt(coords[0]).String()+","+value.NewInt(coords[1]).String())
			wantB = append(wantB, vals[1].String())
			return true
		})
		if len(prunedCells) != len(wantCells) {
			t.Fatalf("%s pruned: %d cells, want %d", name, len(prunedCells), len(wantCells))
		}
		for i := range wantCells {
			if prunedCells[i] != wantCells[i] || prunedB[i] != wantB[i] {
				t.Fatalf("%s pruned row %d: cell %s val %s, want cell %s val %s",
					name, i, prunedCells[i], prunedB[i], wantCells[i], wantB[i])
			}
		}
	}
}

// TestScanChunksEarlyStop: returning false stops only that chunk.
func TestScanChunksEarlyStop(t *testing.T) {
	sch := schema2D(8, 1, true)
	for name, st := range allSchemes(t, sch) {
		cs := st.(array.ChunkedScanner)
		chunks := cs.ScanChunks(4, nil)
		for _, c := range chunks {
			count := 0
			c(func([]int64, []value.Value) bool {
				count++
				return false
			})
			if count != 1 {
				t.Fatalf("%s: early-stopped chunk visited %d cells", name, count)
			}
		}
	}
}
