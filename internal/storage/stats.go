package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/value"
)

// zoneMaps maintains lazily-computed per-chunk zone maps for a store.
// Every mutating operation bumps seq; ChunkStats recomputes when the
// cached generation is stale, so readers always observe exact
// statistics. The engine's MVCC layer clones stores before mutating
// them (copy-on-write), and clones start with a fresh zoneMaps, so a
// snapshot's stats can never describe cells it does not contain.
//
// mu guards the lazy build the same way tabularStore.dimMu guards the
// dim-values cache: concurrent read-only queries (the morsel-driven
// executor) may race to compute stats for the same generation.
type zoneMaps struct {
	seq   atomic.Uint64
	mu    sync.Mutex
	cache map[int]zoneEntry // keyed by ScanChunks target
}

type zoneEntry struct {
	seq   uint64
	stats []array.ChunkStats
}

// bump invalidates cached stats; called by every mutating store op.
func (z *zoneMaps) bump() { z.seq.Add(1) }

// get returns the zone maps for the given chunking target, recomputing
// via compute when the cache is missing or stale.
func (z *zoneMaps) get(target int, compute func() []array.ChunkStats) []array.ChunkStats {
	cur := z.seq.Load()
	z.mu.Lock()
	defer z.mu.Unlock()
	if e, ok := z.cache[target]; ok && e.seq == cur {
		return e.stats
	}
	stats := compute()
	if z.cache == nil {
		z.cache = make(map[int]zoneEntry)
	}
	z.cache[target] = zoneEntry{seq: cur, stats: stats}
	return stats
}

// computeZoneMaps derives exact per-chunk statistics by driving the
// store's own ScanChunks partitioning, so stats[i] is index-aligned
// with chunk i of any ScanChunks(target, attrs) call on the unmutated
// store. Rows counts live cells, DimLo/DimHi bound their coordinates
// inclusively, and each attribute's Min/Max cover non-NULL values only
// (typed NULLs when the chunk has none — see array.AttrStats).
func computeZoneMaps(st array.ChunkedScanner, target int, dims []array.Dimension, attrs []array.Attr) []array.ChunkStats {
	chunks := st.ScanChunks(target, nil)
	out := make([]array.ChunkStats, len(chunks))
	for ci, chunk := range chunks {
		cs := &out[ci]
		cs.DimLo = make([]int64, len(dims))
		cs.DimHi = make([]int64, len(dims))
		cs.Attrs = make([]array.AttrStats, len(attrs))
		for ai, at := range attrs {
			cs.Attrs[ai].Min = value.NewNull(at.Typ)
			cs.Attrs[ai].Max = value.NewNull(at.Typ)
		}
		chunk(func(coords []int64, vals []value.Value) bool {
			if cs.Rows == 0 {
				copy(cs.DimLo, coords)
				copy(cs.DimHi, coords)
			} else {
				for i, c := range coords {
					if c < cs.DimLo[i] {
						cs.DimLo[i] = c
					}
					if c > cs.DimHi[i] {
						cs.DimHi[i] = c
					}
				}
			}
			cs.Rows++
			for ai := range attrs {
				v := vals[ai]
				as := &cs.Attrs[ai]
				if v.Null {
					as.Nulls++
					continue
				}
				if as.Min.Null || value.Compare(v, as.Min) < 0 {
					as.Min = v
				}
				if as.Max.Null || value.Compare(v, as.Max) > 0 {
					as.Max = v
				}
			}
			return true
		})
	}
	return out
}
