package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/value"
)

// bruteStats independently recomputes per-chunk statistics by walking
// the store's chunk partition directly, bypassing the zoneMaps cache.
// It is the oracle the cached ChunkStats must always agree with.
func bruteStats(t *testing.T, st array.Store, target int, sch array.Schema) []array.ChunkStats {
	t.Helper()
	cs, ok := st.(array.ChunkedScanner)
	if !ok {
		t.Fatalf("%s: not a ChunkedScanner", st.Scheme())
	}
	chunks := cs.ScanChunks(target, nil)
	out := make([]array.ChunkStats, len(chunks))
	for ci, chunk := range chunks {
		s := &out[ci]
		s.DimLo = make([]int64, len(sch.Dims))
		s.DimHi = make([]int64, len(sch.Dims))
		s.Attrs = make([]array.AttrStats, len(sch.Attrs))
		for ai, at := range sch.Attrs {
			s.Attrs[ai].Min = value.NewNull(at.Typ)
			s.Attrs[ai].Max = value.NewNull(at.Typ)
		}
		chunk(func(coords []int64, vals []value.Value) bool {
			if s.Rows == 0 {
				copy(s.DimLo, coords)
				copy(s.DimHi, coords)
			}
			for i, c := range coords {
				if c < s.DimLo[i] {
					s.DimLo[i] = c
				}
				if c > s.DimHi[i] {
					s.DimHi[i] = c
				}
			}
			s.Rows++
			for ai, v := range vals {
				as := &s.Attrs[ai]
				if v.Null {
					as.Nulls++
					continue
				}
				if as.Min.Null || value.Compare(v, as.Min) < 0 {
					as.Min = v
				}
				if as.Max.Null || value.Compare(v, as.Max) > 0 {
					as.Max = v
				}
			}
			return true
		})
	}
	return out
}

func fmtStats(cs array.ChunkStats) string {
	s := fmt.Sprintf("rows=%d lo=%v hi=%v", cs.Rows, cs.DimLo, cs.DimHi)
	for _, a := range cs.Attrs {
		s += fmt.Sprintf(" [nulls=%d min=%s max=%s]", a.Nulls, a.Min, a.Max)
	}
	return s
}

func statsEqual(a, b array.ChunkStats) bool {
	if a.Rows != b.Rows || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	if a.Rows > 0 { // empty chunks have meaningless bounds
		for i := range a.DimLo {
			if a.DimLo[i] != b.DimLo[i] || a.DimHi[i] != b.DimHi[i] {
				return false
			}
		}
	}
	for i := range a.Attrs {
		x, y := a.Attrs[i], b.Attrs[i]
		if x.Nulls != y.Nulls {
			return false
		}
		if x.Min.Null != y.Min.Null || (!x.Min.Null && value.Compare(x.Min, y.Min) != 0) {
			return false
		}
		if x.Max.Null != y.Max.Null || (!x.Max.Null && value.Compare(x.Max, y.Max) != 0) {
			return false
		}
	}
	return true
}

// assertStatsFresh checks the cached zone maps agree with a direct
// recompute and stay index-aligned with ScanChunks, for several
// chunking targets.
func assertStatsFresh(t *testing.T, name string, st array.Store, sch array.Schema, stage string) {
	t.Helper()
	sp, ok := st.(array.StatsProvider)
	if !ok {
		t.Fatalf("%s: store does not implement StatsProvider", name)
	}
	for _, target := range []int{1, 2, 5, 100} {
		got := sp.ChunkStats(target)
		want := bruteStats(t, st, target, sch)
		if len(got) != len(want) {
			t.Fatalf("%s %s target=%d: %d chunk stats, want %d (must align with ScanChunks)",
				name, stage, target, len(got), len(want))
		}
		for i := range want {
			if !statsEqual(got[i], want[i]) {
				t.Errorf("%s %s target=%d chunk %d:\ngot:  %s\nwant: %s",
					name, stage, target, i, fmtStats(got[i]), fmtStats(want[i]))
			}
		}
	}
}

// TestZoneMapStatsMatchBruteForce drives every scheme through the
// mutation lifecycle — initial defaults, inserts into holes, in-place
// updates, deletes (NULL punches) — and checks after each phase that
// the cached zone maps exactly match an independent recompute. Stale
// statistics after any mutation would fail here: every Set must bump
// the generation.
func TestZoneMapStatsMatchBruteForce(t *testing.T) {
	const n = 9
	sch := chunkTestSchema(n)
	for name, st := range allSchemes(t, sch) {
		assertStatsFresh(t, name, st, sch, "empty")
		rng := rand.New(rand.NewSource(7))
		// Inserts: populate a scattered subset of both attributes.
		for i := 0; i < 40; i++ {
			x, y := rng.Int63n(n), rng.Int63n(n)
			if err := st.Set([]int64{x, y}, 0, value.NewFloat(float64(rng.Intn(1000))-500)); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				if err := st.Set([]int64{x, y}, 1, value.NewInt(rng.Int63n(100)-50)); err != nil {
					t.Fatal(err)
				}
			}
		}
		assertStatsFresh(t, name, st, sch, "insert")
		// Updates: move the extremes so cached min/max must change.
		if err := st.Set([]int64{0, 0}, 0, value.NewFloat(-1e6)); err != nil {
			t.Fatal(err)
		}
		if err := st.Set([]int64{n - 1, n - 1}, 1, value.NewInt(1 << 40)); err != nil {
			t.Fatal(err)
		}
		assertStatsFresh(t, name, st, sch, "update")
		// Deletes: punch holes, including the extreme cells, so both
		// row counts and bounds shrink.
		for _, c := range [][2]int64{{0, 0}, {n - 1, n - 1}, {4, 4}} {
			if err := st.Set([]int64{c[0], c[1]}, 0, value.NewNull(value.Float)); err != nil {
				t.Fatal(err)
			}
			if err := st.Set([]int64{c[0], c[1]}, 1, value.NewNull(value.Int)); err != nil {
				t.Fatal(err)
			}
		}
		assertStatsFresh(t, name, st, sch, "delete")
	}
}

// TestZoneMapInvalidation pins the cache-freshness contract in the
// small: read stats (priming the cache), mutate one cell beyond the
// cached max, read again — the second read must see the new extreme.
func TestZoneMapInvalidation(t *testing.T) {
	sch := schema2D(8, 1, true)
	for name, st := range allSchemes(t, sch) {
		sp := st.(array.StatsProvider)
		before := sp.ChunkStats(1)
		if len(before) != 1 || before[0].Attrs[0].Max.AsFloat() != 1 {
			t.Fatalf("%s: priming stats = %v", name, before)
		}
		if err := st.Set([]int64{3, 3}, 0, value.NewFloat(99)); err != nil {
			t.Fatal(err)
		}
		after := sp.ChunkStats(1)
		if got := after[0].Attrs[0].Max.AsFloat(); got != 99 {
			t.Errorf("%s: max after mutation = %v, want 99 (stale cache)", name, got)
		}
	}
}

// TestZoneMapCloneIsolation is the MVCC contract at the storage layer:
// the engine clones stores copy-on-write before mutating, so a
// snapshot's zone maps must never observe the clone's mutations and
// vice versa — in either priming order.
func TestZoneMapCloneIsolation(t *testing.T) {
	sch := schema2D(8, 1, true)
	for name, st := range allSchemes(t, sch) {
		// Prime the original's cache, then mutate a clone.
		_ = st.(array.StatsProvider).ChunkStats(1)
		cl := st.Clone()
		if err := cl.Set([]int64{2, 2}, 0, value.NewFloat(-77)); err != nil {
			t.Fatal(err)
		}
		clStats := cl.(array.StatsProvider).ChunkStats(1)
		if got := clStats[0].Attrs[0].Min.AsFloat(); got != -77 {
			t.Errorf("%s: clone min = %v, want -77 (inherited a stale cache)", name, got)
		}
		origStats := st.(array.StatsProvider).ChunkStats(1)
		if got := origStats[0].Attrs[0].Min.AsFloat(); got != 1 {
			t.Errorf("%s: original min = %v after clone mutation, want 1", name, got)
		}
		assertStatsFresh(t, name, st, sch, "post-clone original")
		assertStatsFresh(t, name, cl, sch, "post-clone clone")
	}
}
