package analyzers

import (
	"go/ast"

	"repro/internal/analyzers/analysis"
)

// CatalogAccess enforces the snapshot-isolation convention PR 5
// introduced: inside internal/exec, every catalog read of an in-flight
// statement goes through e.cat() (mutation view → pinned snapshot →
// root), and every write goes through a mutation write handle
// (ArrayForWrite / TableForWrite) inside runWrite. Only engine.go —
// where cat(), runWrite and the snapshot-pinning helpers live — may
// touch the raw machinery:
//
//   - the Shared.Cat field (the catalog root: reading it mid-statement
//     sees versions the statement's snapshot must not),
//   - the Engine.snap field (pin bookkeeping),
//   - Mutation methods outside the write-handle surface
//     (PutArray, ReplaceArray, Drop, ... publish without cloning).
//
// Test files are exempt: tests reach into the catalog to assert on
// storage internals, which is not a statement execution path.
var CatalogAccess = &analysis.Analyzer{
	Name: "catalogaccess",
	Doc: "catalog reads outside engine.go must go through e.cat() or a write handle, " +
		"never the Shared.Cat root or the raw snapshot/mutation fields",
	Run: runCatalogAccess,
}

// mutationWriteSurface lists the catalog.Mutation methods statement
// code may call directly: the clone-on-first-write handles plus the
// statement-savepoint pair runWrite wraps failing statements in.
var mutationWriteSurface = map[string]bool{
	"ArrayForWrite": true,
	"TableForWrite": true,
	"View":          true,
	"Savepoint":     true,
	"RollbackTo":    true,
}

func runCatalogAccess(pass *analysis.Pass) (any, error) {
	if !pkgPathHasSuffix(pass.Pkg, "internal/exec") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if fileBase(pass.Fset, f.Pos()) == "engine.go" || isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				// A mutation method call: allowed only on the
				// write-handle surface. The SelectorExpr case below
				// never sees call.Fun (we return into children
				// explicitly), so flag it here.
				if recv, method, ok := methodCall(x); ok {
					if isNamedType(pass.TypeOf(recv), "internal/catalog", "Mutation") && !mutationWriteSurface[method] {
						pass.Reportf(x.Pos(),
							"direct catalog mutation call %s outside engine.go: write through ArrayForWrite/TableForWrite under runWrite", method)
					}
				}
			case *ast.SelectorExpr:
				recvType := pass.TypeOf(x.X)
				switch x.Sel.Name {
				case "Cat":
					if isNamedType(recvType, "internal/exec", "Shared") || isNamedType(recvType, "internal/exec", "Engine") {
						pass.Reportf(x.Sel.Pos(),
							"direct access to the catalog root (Shared.Cat) outside engine.go: read through e.cat() so the statement sees its pinned snapshot")
					}
				case "snap":
					if isNamedType(recvType, "internal/exec", "Engine") {
						pass.Reportf(x.Sel.Pos(),
							"direct access to the pinned-snapshot field (Engine.snap) outside engine.go: use e.cat() for reads or the pinning helpers in engine.go")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
