package exec

import "sync"

type Shared struct {
	planMu sync.Mutex
	vecMu  sync.Mutex
	pinMu  sync.Mutex
	curMu  sync.Mutex
}

type Engine struct {
	*Shared
}

// Clean shapes.

func orderOK(s *Shared) {
	s.planMu.Lock()
	s.vecMu.Lock()
	s.vecMu.Unlock()
	s.planMu.Unlock()
}

func deferOK(s *Shared) bool {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	return true
}

func branchOK(s *Shared, cond bool) {
	s.vecMu.Lock()
	if cond {
		s.vecMu.Unlock()
		return
	}
	s.vecMu.Unlock()
}

// A closure is its own scope: it runs when called, not where written.
func closureScopes(s *Shared) {
	s.planMu.Lock()
	go func() {
		s.vecMu.Lock()
		defer s.vecMu.Unlock()
	}()
	s.planMu.Unlock()
}

// Violations.

func orderViolation(s *Shared) {
	s.curMu.Lock()
	s.pinMu.Lock() // want `lock order violation: pinMu acquired while holding curMu \(documented order: planMu -> vecMu -> pinMu -> curMu\)`
	s.pinMu.Unlock()
	s.curMu.Unlock()
}

func embeddedOrderViolation(e *Engine) {
	e.vecMu.Lock()
	e.planMu.Lock() // want `lock order violation: planMu acquired while holding vecMu`
	e.planMu.Unlock()
	e.vecMu.Unlock()
}

func selfDeadlock(s *Shared) {
	s.planMu.Lock()
	s.planMu.Lock() // want `planMu\.Lock\(\) while already holding planMu`
	s.planMu.Unlock()
}

func returnWhileHeld(s *Shared, cond bool) {
	s.vecMu.Lock()
	if cond {
		return // want `return while holding vecMu`
	}
	s.vecMu.Unlock()
}

func endsWhileHeld(s *Shared) {
	s.curMu.Lock()
} // want `function ends while holding curMu`
