// Package governor is a fixture stand-in for the engine's resource
// governor. The hotloopflush analyzer matches Budget.Charge by
// receiver type name and package path suffix ("governor"), so the stub
// only needs a matching shape.
package governor

type Budget struct{ used int64 }

func (b *Budget) Charge(n int64) error { return nil }
