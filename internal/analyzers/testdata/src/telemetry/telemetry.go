// Package telemetry is a fixture stand-in for the engine's telemetry
// instruments. The hotloopflush analyzer matches mutator calls by
// receiver type name and package path suffix ("telemetry"), so the
// stubs only need matching shapes.
package telemetry

type Counter struct{ v int64 }

func (c *Counter) Inc()        {}
func (c *Counter) Add(d int64) {}

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) {}
func (g *Gauge) Add(d int64) {}

type Histogram struct{ sum float64 }

func (h *Histogram) Observe(v float64) {}

type OpStats struct{ nanos int64 }

func (o *OpStats) AddNanos(n int64) {}
