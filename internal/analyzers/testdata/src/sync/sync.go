// Package sync shadows the standard sync package for fixtures. The
// lockorder analyzer matches mutex field names on exec.Shared, not the
// mutex type, so Lock/Unlock shapes are all that matter here.
package sync

type Mutex struct{ locked bool }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ Mutex }
