package pgwire

import (
	"telemetry"
)

type serverMetrics struct {
	rowsSent *telemetry.Counter
	queries  *telemetry.Counter
	active   *telemetry.Gauge
}

type row struct{ fields [][]byte }

func writeRow(r row) {}

// A DataRow streaming loop is per-row of a result — cell-scale for
// array queries — so a per-row atomic is the same ping-pong as a
// per-cell instrument in a scan.
func streamRowsPerRow(m *serverMetrics, rows []row) {
	for _, r := range rows {
		writeRow(r)
		m.rowsSent.Inc() // want `telemetry Counter\.Inc\(\) inside a per-cell loop`
	}
}

// The sendRows discipline: accumulate into a plain local, flush the
// counter once per result.
func streamRowsFlushed(m *serverMetrics, rows []row) {
	var sent int64
	for _, r := range rows {
		writeRow(r)
		sent++
	}
	m.rowsSent.Add(sent)
}

// Per-connection and per-query instruments outside any row loop stay
// legal: one atomic per request is not a hot path.
func perQuery(m *serverMetrics) {
	m.queries.Inc()
	m.active.Set(1)
}
