package exec

import (
	"governor"
	"value"
)

// Budget.Charge is an atomic add on shared counters, so the per-cell
// discipline applies to it exactly like a telemetry instrument.

func perCellCharge(b *governor.Budget, n int) {
	for i := 0; i < n; i++ {
		b.Charge(8) // want `governor Budget\.Charge\(\) inside a per-cell loop`
	}
}

func perCellChargeRange(b *governor.Budget, rows []value.Value) {
	for range rows {
		b.Charge(64) // want `governor Budget\.Charge\(\) inside a per-cell loop`
	}
}

// A store-scan visitor literal is per-cell even without a for keyword.
func visitorCharge(b *governor.Budget) func(coords []int64, vals []value.Value) bool {
	return func(coords []int64, vals []value.Value) bool {
		b.Charge(16) // want `governor Budget\.Charge\(\) inside a per-cell loop`
		return true
	}
}

// The sanctioned shape: accumulate bytes into a plain local per cell
// and charge once per chunk through a helper. Clean.
func perChunkCharge(b *governor.Budget, chunks [][]value.Value) error {
	for _, ch := range chunks {
		var bytes int64
		for range ch {
			bytes += 8
		}
		if err := chargeChunk(b, bytes); err != nil {
			return err
		}
	}
	return nil
}

func chargeChunk(b *governor.Budget, n int64) error {
	return b.Charge(n)
}
