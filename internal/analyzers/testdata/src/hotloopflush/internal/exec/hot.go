package exec

import (
	"telemetry"
	"value"
)

type metrics struct {
	cells *telemetry.Counter
	rows  *telemetry.Gauge
	lat   *telemetry.Histogram
	op    *telemetry.OpStats
}

// Flagging cases: instrument atomics reached inside per-cell contexts.

func perCellCounter(m *metrics, n int) {
	for i := 0; i < n; i++ {
		m.cells.Inc() // want `telemetry Counter\.Inc\(\) inside a per-cell loop`
	}
}

func perCellRange(m *metrics, rows []value.Value) {
	for range rows {
		m.lat.Observe(1) // want `telemetry Histogram\.Observe\(\) inside a per-cell loop`
	}
}

// A store-scan visitor literal is a per-cell loop even with no for
// keyword in sight.
func visitorStats(m *metrics) func(coords []int64, vals []value.Value) bool {
	return func(coords []int64, vals []value.Value) bool {
		m.op.AddNanos(1) // want `telemetry OpStats\.AddNanos\(\) inside a per-cell loop`
		return true
	}
}

// The canonical PR 6 shape: accumulate into plain locals per cell and
// publish through a once-per-chunk flush helper. Clean.
func perChunk(m *metrics, chunks [][]value.Value) {
	for _, ch := range chunks {
		var cells int64
		for range ch {
			cells++
		}
		flushCounts(m, cells)
	}
}

func flushCounts(m *metrics, cells int64) {
	m.cells.Add(cells)
	m.rows.Set(cells)
}

// A non-visitor literal starts cold even when written inside a loop:
// it runs when called, not where it is defined.
func coldLiteral(m *metrics, n int) {
	var flushers []func()
	for i := 0; i < n; i++ {
		flushers = append(flushers, func() {
			m.cells.Inc()
		})
	}
	_ = flushers
}
