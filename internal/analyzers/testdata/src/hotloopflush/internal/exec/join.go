package exec

import (
	"telemetry"
	"value"
)

// The PR 8 partitioned hash join: a build loop inserts one side into a
// hash table, probe visitors stream the other side against it. Both are
// per-cell contexts — instrument atomics belong in a per-partition
// flush, never in the row loops.

type joinMetrics struct {
	buildRows *telemetry.Counter
	probeRows *telemetry.Counter
	matches   *telemetry.Counter
}

// Flagging case: the build loop ticking a counter per inserted row.
func buildPerRowCounter(m *joinMetrics, keys []string, rows []value.Value) map[string][]value.Value {
	ht := make(map[string][]value.Value, len(rows))
	for i, k := range keys {
		ht[k] = append(ht[k], rows[i])
		m.buildRows.Inc() // want `telemetry Counter\.Inc\(\) inside a per-cell loop`
	}
	return ht
}

// Flagging case: the probe side is a store-scan visitor — per-cell even
// without a for keyword — and must not touch shared atomics per match.
func probeVisitorCounter(m *joinMetrics, ht map[string][]value.Value, key func([]int64) string) func(coords []int64, vals []value.Value) bool {
	return func(coords []int64, vals []value.Value) bool {
		if _, ok := ht[key(coords)]; ok {
			m.matches.Inc() // want `telemetry Counter\.Inc\(\) inside a per-cell loop`
		}
		return true
	}
}

// The sanctioned shape: build and probe accumulate into plain locals,
// one flush per partition publishes the totals. Clean.
func buildPartition(m *joinMetrics, keys []string, rows []value.Value) map[string][]value.Value {
	ht := make(map[string][]value.Value, len(rows))
	var built int64
	for i, k := range keys {
		ht[k] = append(ht[k], rows[i])
		built++
	}
	flushJoinCounts(m, built, 0, 0)
	return ht
}

func probePartition(m *joinMetrics, ht map[string][]value.Value, keys []string) {
	var probed, matched int64
	for _, k := range keys {
		probed++
		if _, ok := ht[k]; ok {
			matched++
		}
	}
	flushJoinCounts(m, 0, probed, matched)
}

func flushJoinCounts(m *joinMetrics, built, probed, matched int64) {
	m.buildRows.Add(built)
	m.probeRows.Add(probed)
	m.matches.Add(matched)
}
