// Package context shadows the standard context package for fixtures,
// keeping analyzer tests hermetic (no GOROOT typechecking). The
// ctxpoll analyzer matches by the exact package path "context" and the
// type name Context, which this stub satisfies.
package context

type Context interface {
	Err() error
	Done() <-chan struct{}
}
