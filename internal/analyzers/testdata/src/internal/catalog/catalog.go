// Package catalog is a fixture stand-in for the engine's catalog: the
// catalogaccess analyzer matches the Mutation write surface by type
// name and package path suffix ("internal/catalog").
package catalog

import "value"

type Catalog struct{}

func (c *Catalog) Snapshot() *Snapshot { return &Snapshot{} }

type Snapshot struct{}

func (s *Snapshot) Array(name string) (*Array, bool) { return nil, false }

type Array struct {
	Store Store
}

type Store interface {
	Scan(visit func(coords []int64, vals []value.Value) bool)
}

type Mutation struct{}

func (m *Mutation) ArrayForWrite(name string) *Array { return nil }
func (m *Mutation) TableForWrite(name string) *Array { return nil }
func (m *Mutation) View() *Snapshot                  { return nil }
func (m *Mutation) Savepoint() int                   { return 0 }
func (m *Mutation) RollbackTo(sp int)                {}
func (m *Mutation) PutArray(name string, a *Array)   {}
func (m *Mutation) Drop(name string)                 {}
