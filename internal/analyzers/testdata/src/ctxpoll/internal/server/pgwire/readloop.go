package pgwire

import (
	"context"
)

// Stub of the wire decoder: the analyzer keys on the Reader named type
// in a package suffixed internal/server/pgwire, so the fixture defines
// its own.
type Msg struct {
	Type byte
	Data []byte
}

type Reader struct{}

func (r *Reader) Peek(n int) ([]byte, error)   { return nil, nil }
func (r *Reader) ReadMessage() (Msg, error)    { return Msg{}, nil }
func (r *Reader) ReadStartup() (string, error) { return "", nil }

func dispatch(m Msg) {}

// A message pump with no shutdown poll never notices a draining
// server: it blocks in Peek/ReadMessage until the client goes away.
func readLoopNoPoll(rd *Reader) {
	for { // want `connection read loop without a shutdown poll`
		msg, err := rd.ReadMessage()
		if err != nil {
			return
		}
		dispatch(msg)
	}
}

func peekLoopNoPoll(rd *Reader) {
	for i := 0; i < 100; i++ { // want `connection read loop without a shutdown poll`
		if _, err := rd.Peek(1); err != nil {
			return
		}
		rd.ReadMessage()
	}
}

// The sanctioned shape: poll the connection context between frames,
// using a short read deadline on Peek so the poll actually runs.
func readLoopPolls(ctx context.Context, rd *Reader) {
	for {
		if ctx.Err() != nil {
			return
		}
		if _, err := rd.Peek(1); err != nil {
			continue
		}
		msg, err := rd.ReadMessage()
		if err != nil {
			return
		}
		dispatch(msg)
	}
}

func readLoopSelectsDone(ctx context.Context, rd *Reader) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		msg, err := rd.ReadMessage()
		if err != nil {
			return
		}
		dispatch(msg)
	}
}

// Startup negotiation is a bounded handshake, not a pump; loops that
// never frame regular messages are out of scope.
func startupLoop(rd *Reader) {
	for i := 0; i < 3; i++ {
		if _, err := rd.ReadStartup(); err != nil {
			return
		}
	}
}

// Client-side response folding bounds each read with a socket deadline
// instead of a context; that opts out with a reasoned suppression.
func clientFoldSuppressed(rd *Reader) {
	//lint:allow ctxpoll client read bounded by per-message socket deadline
	for {
		msg, err := rd.ReadMessage()
		if err != nil {
			return
		}
		if msg.Type == 'Z' {
			return
		}
	}
}
