package exec

import "context"

type Engine struct {
	qctx context.Context
}

func (e *Engine) canceled() bool {
	return e.qctx.Err() != nil
}
