package exec

import (
	"context"
	"value"
)

type store struct{}

func (s *store) Scan(visit func(coords []int64, vals []value.Value) bool) {}

func scanNoPoll(s *store) {
	s.Scan(func(coords []int64, vals []value.Value) bool { // want `store-scan visitor without a cancellation poll`
		return len(vals) > 0
	})
}

// The periodic-poll pattern: check ctx every 1024 cells.
func scanPollsDone(ctx context.Context, s *store) {
	visited := 0
	s.Scan(func(coords []int64, vals []value.Value) bool {
		visited++
		if visited&1023 == 0 {
			select {
			case <-ctx.Done():
				return false
			default:
			}
		}
		return true
	})
}

func scanPollsErr(ctx context.Context, s *store) {
	visited := 0
	s.Scan(func(coords []int64, vals []value.Value) bool {
		visited++
		if visited&1023 == 0 && ctx.Err() != nil {
			return false
		}
		return true
	})
}

// The serial interpreter's poll: Engine.canceled().
func scanPollsEngine(e *Engine, s *store) {
	s.Scan(func(coords []int64, vals []value.Value) bool {
		return !e.canceled()
	})
}

// A forwarding wrapper delegates per-cell control to a callee that is
// itself a visitor — the callee polls, the wrapper must not.
func forwarding(s *store, inner func(coords []int64, vals []value.Value) bool) {
	s.Scan(func(coords []int64, vals []value.Value) bool {
		if coords[0] < 0 {
			return true
		}
		return inner(coords, vals)
	})
}

// Provably tiny domains opt out with a reasoned suppression.
func boundedSuppressed(s *store) {
	//lint:allow ctxpoll bounded 3x3 neighborhood, never chunk-scale
	s.Scan(func(coords []int64, vals []value.Value) bool {
		return true
	})
}
