package exec

import (
	"context"
	"value"
)

// PR 8's partitioned hash join streams both sides through store-scan
// visitors: one collecting the build side into a hash table, one
// probing it. Both walk chunk-scale data and must poll cancellation
// like any other scan visitor.

// Flagging case: a build-side collector that never polls would keep
// hashing millions of rows after the statement is canceled.
func joinBuildNoPoll(s *store, ht map[int64][]value.Value) {
	s.Scan(func(coords []int64, vals []value.Value) bool { // want `store-scan visitor without a cancellation poll`
		ht[coords[0]] = vals
		return true
	})
}

// The periodic-poll build collector: check ctx every 1024 rows. Clean.
func joinBuildPolls(ctx context.Context, s *store, ht map[int64][]value.Value) {
	visited := 0
	s.Scan(func(coords []int64, vals []value.Value) bool {
		ht[coords[0]] = vals
		visited++
		if visited&1023 == 0 && ctx.Err() != nil {
			return false
		}
		return true
	})
}

// Flagging case: the probe visitor is chunk-scale too — matching rows
// against the table does not exempt it.
func joinProbeNoPoll(s *store, ht map[int64][]value.Value, out *int) {
	s.Scan(func(coords []int64, vals []value.Value) bool { // want `store-scan visitor without a cancellation poll`
		if _, ok := ht[coords[0]]; ok {
			*out++
		}
		return true
	})
}

// The serial interpreter's probe polls through Engine.canceled(). Clean.
func joinProbeEnginePoll(e *Engine, s *store, ht map[int64][]value.Value, out *int) {
	s.Scan(func(coords []int64, vals []value.Value) bool {
		if _, ok := ht[coords[0]]; ok {
			*out++
		}
		return !e.canceled()
	})
}
