// Package exec has the same package name as internal/exec but an
// import path ("osexeclike/exec") that does not end in internal/exec —
// like os/exec in a real build. No analyzer may report anything here.
package exec

type Shared struct{ Cat int }

func touchesLookalikes(s *Shared) int {
	return s.Cat
}
