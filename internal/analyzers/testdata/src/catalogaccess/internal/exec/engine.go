// engine.go is the exempt file: cat(), runWrite and the pinning
// helpers live here and may touch the raw catalog machinery.
package exec

import "internal/catalog"

type Shared struct {
	Cat *catalog.Catalog
}

type Engine struct {
	*Shared
	snap *catalog.Snapshot
	mut  *catalog.Mutation
}

func (e *Engine) cat() *catalog.Snapshot {
	if e.snap != nil {
		return e.snap
	}
	return e.Cat.Snapshot()
}
