package exec

func readPaths(e *Engine) {
	_ = e.Cat        // want `direct access to the catalog root \(Shared\.Cat\) outside engine\.go`
	_ = e.snap       // want `direct access to the pinned-snapshot field \(Engine\.snap\) outside engine\.go`
	_ = e.Shared.Cat // want `direct access to the catalog root`
	_ = e.cat()      // sanctioned read path: never flagged
}

func writePaths(e *Engine) {
	e.mut.PutArray("a", nil)     // want `direct catalog mutation call PutArray outside engine\.go`
	e.mut.Drop("a")              // want `direct catalog mutation call Drop outside engine\.go`
	_ = e.mut.ArrayForWrite("a") // sanctioned write handle: never flagged
	_ = e.mut.TableForWrite("t") // sanctioned write handle: never flagged
	sp := e.mut.Savepoint()
	e.mut.RollbackTo(sp)
}

func suppressed(e *Engine) {
	//lint:allow catalogaccess fixture exercises the suppression path
	_ = e.Cat
}

func reasonlessDirectiveStillFlags(e *Engine) {
	//lint:allow catalogaccess
	_ = e.Cat // want `direct access to the catalog root`
}
