// Package value is a fixture stand-in for the engine's value package:
// the analyzers recognize the store-scan visitor signature by the
// element type's package path suffix ("value") and type name, so this
// stub only needs the name to line up.
package value

type Value struct {
	I int64
	F float64
}
