// Package analyzers is the sciql-lint suite: custom static-analysis
// passes encoding engine invariants that convention alone used to
// carry. Each analyzer documents the invariant it machine-checks; the
// suite runs through cmd/sciql-lint (a go vet -vettool) and through
// the analyzertest fixtures.
//
// Findings are suppressed with a //lint:allow comment on the flagged
// line or the line above it:
//
//	//lint:allow ctxpoll bounded 3x3 neighborhood, never chunk-scale
//	a.Store.Scan(func(coords []int64, vals []value.Value) bool { ...
//
// The directive must name the analyzer and give a reason; bare
// //lint:allow comments do not suppress anything.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analyzers/analysis"
)

// All returns the suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{CatalogAccess, HotLoopFlush, CtxPoll, LockOrder}
}

// Run applies the analyzers to one type-checked package and returns
// the surviving diagnostics (suppressions applied), sorted by
// position. Both drivers — the unitchecker behind go vet and the
// analyzertest harness — report through here, so suppression
// semantics cannot drift between them.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, as []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range as {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				d.Category = a.Name
				diags = append(diags, d)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	allow := collectAllows(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if !allow.suppresses(fset, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, nil
}

// allowSet records //lint:allow directives: file → line → analyzer
// names allowed there.
type allowSet map[string]map[int][]string

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) < 2 {
					// Analyzer name AND a reason are both required;
					// reasonless suppressions stay findings.
					continue
				}
				pos := fset.Position(c.Pos())
				m := set[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					set[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], fields[0])
			}
		}
	}
	return set
}

// suppresses reports whether d is covered by an allow directive on
// its own line or the line directly above it.
func (s allowSet) suppresses(fset *token.FileSet, d analysis.Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Category {
				return true
			}
		}
	}
	return false
}

// --- shared type/scope helpers ----------------------------------------------

// pkgPathHasSuffix reports whether the package path ends in suffix on
// a path-segment boundary, so analyzers scope to engine packages both
// in the real tree ("repro/internal/exec") and in test fixtures
// ("internal/exec") without matching accidents like "os/exec".
func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// fileBase returns the basename of the file containing pos.
func fileBase(fset *token.FileSet, pos token.Pos) string {
	name := fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// isTestFile reports whether the file containing pos is a _test.go
// file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fileBase(fset, pos), "_test.go")
}

// deref unwraps pointers.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedFrom reports the declaring package and type name of t (through
// pointers and aliases); ok is false for unnamed types.
func namedFrom(t types.Type) (pkg *types.Package, name string, ok bool) {
	if t == nil {
		return nil, "", false
	}
	u := types.Unalias(t)
	if p, isPtr := u.(*types.Pointer); isPtr {
		u = types.Unalias(p.Elem())
	}
	n, isNamed := u.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	obj := n.Obj()
	return obj.Pkg(), obj.Name(), true
}

// isNamedType reports whether t is (a pointer to) the named type
// pkgSuffix.name, with pkgSuffix matched on a path-segment boundary.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	pkg, tname, ok := namedFrom(t)
	if !ok || tname != name {
		return false
	}
	return pkgPathHasSuffix(pkg, pkgSuffix)
}

// methodCall decomposes call into (receiver expression, method name)
// when its function is a selector; ok is false otherwise.
func methodCall(call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isCellVisitor reports whether t is the store-scan visitor signature
// func(coords []int64, vals []value.Value) bool — the per-cell hot
// path of every storage scheme.
func isCellVisitor(t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
		return false
	}
	p0, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if b, ok := p0.Elem().Underlying().(*types.Basic); !ok || b.Kind() != types.Int64 {
		return false
	}
	p1, ok := sig.Params().At(1).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isNamedType(p1.Elem(), "value", "Value")
}
