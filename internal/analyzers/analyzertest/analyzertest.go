// Package analyzertest runs sciql-lint analyzers over small fixture
// packages under a testdata/src tree and matches the reported
// diagnostics against // want "regexp" comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest (which the offline build
// cannot vendor).
//
// Fixture packages import each other by their path under testdata/src
// (so a fixture at testdata/src/ctxpoll/internal/exec has import path
// "ctxpoll/internal/exec" and may import "value" or
// "internal/catalog"). Fixture directories shadow standard-library
// paths — testdata/src/context stands in for context — keeping the
// tests hermetic; anything not found under the fixture root falls back
// to typechecking GOROOT source.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysis"
)

// Run loads each fixture package, applies the analyzers through the
// same runner the vettool uses (so //lint:allow suppression semantics
// are identical), and checks the surviving diagnostics against the
// fixtures' // want comments. Every diagnostic must be wanted and
// every want must be matched.
func Run(t *testing.T, testdata string, as []*analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analyzers.Run(l.fset, p.files, p.pkg, p.info, as)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", path, err)
		}
		wants := collectWants(t, l.fset, p.files)
		for _, d := range diags {
			pos := l.fset.Position(d.Pos)
			if !wants.match(pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Category)
			}
		}
		wants.reportUnmatched(t)
	}
}

// loader typechecks fixture packages with fixture-first import
// resolution.
type loader struct {
	root     string
	fset     *token.FileSet
	pkgs     map[string]*fixturePkg
	fallback types.Importer
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(root string) *loader {
	l := &loader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: map[string]*fixturePkg{},
	}
	// GOROOT-source importing works without a module proxy.
	l.fallback = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import implements types.Importer for the fixture typechecker.
func (l *loader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(l.root, filepath.FromSlash(path))) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	if from, ok := l.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, l.root, 0)
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewInfo()
	var tcErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(tcErrs) > 0 {
		msgs := make([]string, len(tcErrs))
		for i, e := range tcErrs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("typecheck errors in fixture %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	p := &fixturePkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// want is one expectation: a diagnostic on a given file:line whose
// message matches re.
type want struct {
	pos     token.Position
	raw     string
	re      *regexp.Regexp
	matched bool
}

type wantSet map[string][]*want // "file:line" → expectations

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) wantSet {
	t.Helper()
	set := wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range parseWantPatterns(t, pos, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					key := lineKey(pos)
					set[key] = append(set[key], &want{pos: pos, raw: raw, re: re})
				}
			}
		}
	}
	return set
}

// parseWantPatterns splits the payload of a want comment into its
// quoted regexps (double- or back-quoted, any number).
func parseWantPatterns(t *testing.T, pos token.Position, rest string) []string {
	t.Helper()
	var out []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment near %q (expected quoted regexp)", pos, rest)
		}
		raw, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %s: %v", pos, quoted, err)
		}
		out = append(out, raw)
		rest = rest[len(quoted):]
	}
	return out
}

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// match consumes the first unmatched expectation on the diagnostic's
// line whose regexp matches the message.
func (s wantSet) match(pos token.Position, message string) bool {
	for _, w := range s[lineKey(pos)] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (s wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, ws := range s {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", w.pos, w.raw)
			}
		}
	}
}
