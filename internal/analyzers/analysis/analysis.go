// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface the sciql-lint suite
// needs. The container this repository builds in has no module proxy,
// so x/tools cannot be vendored; analyzers are written against this
// shim with the same shape (Analyzer, Pass, Diagnostic, Reportf) so
// that switching to the real framework later is a mechanical import
// swap, not a rewrite.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name (used in
// diagnostics and //lint:allow suppressions), documentation, and the
// Run function applied once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppression
	// comments and the multichecker's -<name>=false flags. It must be
	// a valid identifier.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package. It reports findings
	// through pass.Report/Reportf; the result value is unused by this
	// shim (kept for API compatibility).
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos token.Pos
	// Category is the reporting analyzer's name (filled by the
	// runner; used by suppression matching and output formatting).
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e (through TypesInfo), or nil
// when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// NewInfo allocates a types.Info with every map analyzers consult
// filled in; both drivers (the vettool and the test harness) type
// check through it so Pass contents cannot drift between them.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
