package analyzers

import (
	"go/ast"

	"repro/internal/analyzers/analysis"
)

// CtxPoll enforces the cancellation convention PR 2 established for
// the exec scan paths: any loop that can iterate over chunk-scale data
// must poll the statement context periodically, so a canceled query
// (Ctrl-C in the REPL, a closed driver connection, a fired deadline)
// stops the scan instead of walking millions of cells to completion.
//
// In internal/exec the per-cell iteration is almost never a for
// statement — it is a store-scan visitor literal (func(coords []int64,
// vals []value.Value) bool) handed to Store.Scan, a chunk scanner, or
// storeScanPruned. The analyzer requires every such literal to contain
// one of:
//
//   - a ctx.Err() / ctx.Done() call on a context.Context value
//     (the `visited&1023 == 0` periodic-poll pattern),
//   - a call to Engine.canceled(), the serial interpreter's poll,
//   - a call forwarding to another visitor value (a wrapper like the
//     ones in storeScanPruned: its callee polls, it must not).
//
// PR 10 extends the same convention to the network server's
// connection read loops in internal/server/pgwire: any for-loop that
// pulls protocol frames (Reader.Peek under a poll deadline, or
// Reader.ReadMessage) runs for the lifetime of a client connection,
// and must poll a context between frames so a draining server's
// shutdown reaches idle connections instead of leaking handler
// goroutines until the client disconnects on its own. Client-side
// loops that bound each read with a socket deadline instead can be
// suppressed with //lint:allow ctxpoll <reason>.
//
// Visitors over provably tiny domains can be suppressed with
// //lint:allow ctxpoll <reason>.
var CtxPoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "store-scan visitor literals in internal/exec must poll ctx.Err()/Done() or " +
		"Engine.canceled() so cancellation stops chunk-scale scans; connection read " +
		"loops in internal/server/pgwire must poll a shutdown context between frames",
	Run: runCtxPoll,
}

func runCtxPoll(pass *analysis.Pass) (any, error) {
	if pkgPathHasSuffix(pass.Pkg, "internal/server/pgwire") {
		return runCtxPollServer(pass)
	}
	if !pkgPathHasSuffix(pass.Pkg, "internal/exec") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok || !isCellVisitor(pass.TypeOf(lit)) {
				return true
			}
			if !visitorPolls(pass, lit) {
				pass.Reportf(lit.Pos(),
					"store-scan visitor without a cancellation poll: check ctx.Err()/Done() or e.canceled() periodically (e.g. every visited&1023 cells)")
			}
			// Nested visitors (a visitor building another scan) are
			// still inspected independently.
			return true
		})
	}
	return nil, nil
}

// runCtxPollServer checks the server read-loop rule: a for/range loop
// that pulls frames from a pgwire.Reader must poll a context.
func runCtxPollServer(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch x := n.(type) {
			case *ast.ForStmt:
				body = x.Body
			case *ast.RangeStmt:
				body = x.Body
			default:
				return true
			}
			if loopReadsFrames(pass, body) && !containsCtxPoll(pass, body) {
				pass.Reportf(n.Pos(),
					"connection read loop without a shutdown poll: check ctx.Err()/Done() between frames so draining reaches idle connections")
			}
			return true
		})
	}
	return nil, nil
}

// loopReadsFrames reports whether body calls Reader.Peek or
// Reader.ReadMessage on a pgwire Reader — the marks of a connection
// message pump.
func loopReadsFrames(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := methodCall(call); ok &&
			(method == "Peek" || method == "ReadMessage") &&
			isNamedType(pass.TypeOf(recv), "internal/server/pgwire", "Reader") {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsCtxPoll reports whether node contains a ctx.Err()/ctx.Done()
// call on a context.Context value.
func containsCtxPoll(pass *analysis.Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := methodCall(call); ok &&
			(method == "Err" || method == "Done") &&
			isContextType(pass.TypeOf(recv)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// visitorPolls reports whether the literal's body contains a
// cancellation poll or forwards to another visitor.
func visitorPolls(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := methodCall(call); ok {
			switch method {
			case "Err", "Done":
				if isContextType(pass.TypeOf(recv)) {
					found = true
					return false
				}
			case "canceled":
				if isNamedType(pass.TypeOf(recv), "internal/exec", "Engine") {
					found = true
					return false
				}
			}
			return true
		}
		// Forwarding wrapper: calling a value that is itself a cell
		// visitor delegates per-cell control to a polling callee.
		if isCellVisitor(pass.TypeOf(call.Fun)) {
			found = true
			return false
		}
		return true
	})
	return found
}
