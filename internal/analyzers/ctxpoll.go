package analyzers

import (
	"go/ast"

	"repro/internal/analyzers/analysis"
)

// CtxPoll enforces the cancellation convention PR 2 established for
// the exec scan paths: any loop that can iterate over chunk-scale data
// must poll the statement context periodically, so a canceled query
// (Ctrl-C in the REPL, a closed driver connection, a fired deadline)
// stops the scan instead of walking millions of cells to completion.
//
// In internal/exec the per-cell iteration is almost never a for
// statement — it is a store-scan visitor literal (func(coords []int64,
// vals []value.Value) bool) handed to Store.Scan, a chunk scanner, or
// storeScanPruned. The analyzer requires every such literal to contain
// one of:
//
//   - a ctx.Err() / ctx.Done() call on a context.Context value
//     (the `visited&1023 == 0` periodic-poll pattern),
//   - a call to Engine.canceled(), the serial interpreter's poll,
//   - a call forwarding to another visitor value (a wrapper like the
//     ones in storeScanPruned: its callee polls, it must not).
//
// Visitors over provably tiny domains can be suppressed with
// //lint:allow ctxpoll <reason>.
var CtxPoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "store-scan visitor literals in internal/exec must poll ctx.Err()/Done() or " +
		"Engine.canceled() so cancellation stops chunk-scale scans",
	Run: runCtxPoll,
}

func runCtxPoll(pass *analysis.Pass) (any, error) {
	if !pkgPathHasSuffix(pass.Pkg, "internal/exec") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok || !isCellVisitor(pass.TypeOf(lit)) {
				return true
			}
			if !visitorPolls(pass, lit) {
				pass.Reportf(lit.Pos(),
					"store-scan visitor without a cancellation poll: check ctx.Err()/Done() or e.canceled() periodically (e.g. every visited&1023 cells)")
			}
			// Nested visitors (a visitor building another scan) are
			// still inspected independently.
			return true
		})
	}
	return nil, nil
}

// visitorPolls reports whether the literal's body contains a
// cancellation poll or forwards to another visitor.
func visitorPolls(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := methodCall(call); ok {
			switch method {
			case "Err", "Done":
				if isContextType(pass.TypeOf(recv)) {
					found = true
					return false
				}
			case "canceled":
				if isNamedType(pass.TypeOf(recv), "internal/exec", "Engine") {
					found = true
					return false
				}
			}
			return true
		}
		// Forwarding wrapper: calling a value that is itself a cell
		// visitor delegates per-cell control to a polling callee.
		if isCellVisitor(pass.TypeOf(call.Fun)) {
			found = true
			return false
		}
		return true
	})
	return found
}
