package analyzers

import (
	"go/ast"

	"repro/internal/analyzers/analysis"
)

// HotLoopFlush enforces the telemetry discipline PR 6 established for
// the cell-at-a-time hot paths in internal/exec and internal/bat:
// telemetry instruments are shared atomics, and touching one per cell
// turns a register loop into a cache-line ping-pong between morsel
// workers. Hot loops accumulate into plain local counters
// (streamCounts) and publish with a handful of atomic adds once per
// chunk (flushStreamCounts).
//
// The analyzer flags any atomic instrument mutation — Inc, Add, Set,
// Observe on telemetry.Counter/Gauge/Histogram, or OpStats.AddNanos —
// that is lexically inside a per-cell context:
//
//   - a for/range statement body, or
//   - a store-scan visitor literal (func(coords []int64,
//     vals []value.Value) bool), which is the per-cell "loop" of every
//     storage scheme even though no for keyword appears.
//
// The resource governor's Budget.Charge follows the same discipline:
// every charge is an atomic add on the per-statement and database-wide
// counters (plus a gauge store), so charging per cell has the same
// cache-line ping-pong cost as a per-cell instrument. Hot loops
// accumulate byte estimates into plain locals and charge once per
// chunk (chargeBudget), and the analyzer flags Budget.Charge in
// per-cell contexts exactly like an instrument mutation.
//
// Calling a flush helper (which does the atomic adds) from a per-chunk
// loop stays legal: the analyzer is intra-procedural by design — the
// sanctioned pattern routes atomics through a once-per-chunk function,
// and that is exactly what it cannot see into.
//
// PR 10 extends the scope to the network server packages
// (internal/server and its pgwire/httpapi subpackages): a DataRow
// streaming loop runs per row of a result, which for array queries is
// the same cell-scale cardinality as a store scan, so per-row
// instrument mutations there get the same treatment — accumulate into
// a local, flush once per result (sendRows' rows-sent counter is the
// reference pattern).
var HotLoopFlush = &analysis.Analyzer{
	Name: "hotloopflush",
	Doc: "no telemetry atomics or governor budget charges inside per-cell loops in " +
		"internal/exec, internal/bat, or the internal/server row-streaming paths; " +
		"accumulate into locals and flush once per chunk",
	Run: runHotLoopFlush,
}

// telemetryAtomicMethods are the instrument mutators that compile to
// shared atomic RMWs.
var telemetryAtomicMethods = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Observe": true, "AddNanos": true,
}

// telemetryInstrumentTypes are the shared-atomic instrument types of
// internal/telemetry.
var telemetryInstrumentTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "OpStats": true,
}

func runHotLoopFlush(pass *analysis.Pass) (any, error) {
	if !pkgPathHasSuffix(pass.Pkg, "internal/exec") && !pkgPathHasSuffix(pass.Pkg, "internal/bat") &&
		!pkgPathHasSuffix(pass.Pkg, "internal/server") &&
		!pkgPathHasSuffix(pass.Pkg, "internal/server/pgwire") &&
		!pkgPathHasSuffix(pass.Pkg, "internal/server/httpapi") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		hotWalk(pass, f, false)
	}
	return nil, nil
}

// hotWalk descends n reporting telemetry atomics reached with
// hot=true (inside a per-cell context). Function literals reset or
// escalate the state: a visitor literal is hot regardless of where it
// is defined; any other literal starts cold (it runs when called, not
// where it is written).
func hotWalk(pass *analysis.Pass, n ast.Node, hot bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.ForStmt:
			if x.Init != nil {
				hotWalk(pass, x.Init, hot)
			}
			if x.Cond != nil {
				hotWalk(pass, x.Cond, hot)
			}
			if x.Post != nil {
				hotWalk(pass, x.Post, hot)
			}
			hotWalk(pass, x.Body, true)
			return false
		case *ast.RangeStmt:
			hotWalk(pass, x.X, hot)
			hotWalk(pass, x.Body, true)
			return false
		case *ast.FuncLit:
			hotWalk(pass, x.Body, isCellVisitor(pass.TypeOf(x)))
			return false
		case *ast.CallExpr:
			if !hot {
				return true
			}
			if recv, method, ok := methodCall(x); ok {
				if telemetryAtomicMethods[method] {
					if pkg, name, ok := namedFrom(pass.TypeOf(recv)); ok &&
						telemetryInstrumentTypes[name] && pkgPathHasSuffix(pkg, "telemetry") {
						pass.Reportf(x.Pos(),
							"telemetry %s.%s() inside a per-cell loop: accumulate into a local and flush once per chunk", name, method)
					}
				}
				if method == "Charge" {
					if pkg, name, ok := namedFrom(pass.TypeOf(recv)); ok &&
						name == "Budget" && pkgPathHasSuffix(pkg, "governor") {
						pass.Reportf(x.Pos(),
							"governor Budget.Charge() inside a per-cell loop: accumulate bytes into a local and charge once per chunk")
					}
				}
			}
		}
		return true
	})
}
