package analyzers

import (
	"go/ast"

	"repro/internal/analyzers/analysis"
)

// LockOrder enforces the documented acquisition order of exec.Shared's
// four mutexes — planMu → vecMu → pinMu → curMu — and catches the
// critical-section shapes that deadlock or leak a lock:
//
//   - acquiring a mutex while already holding a later one (any two
//     sessions taking the pair in opposite orders deadlock),
//   - re-locking a mutex already held (sync.Mutex self-deadlocks),
//   - a return statement inside a critical section that has not
//     unlocked (a defer-less unlock path: the early return leaves the
//     mutex held forever),
//   - a function ending while still holding a lock it took.
//
// The analysis is intra-procedural and syntactic: it tracks Lock and
// Unlock calls on the straight-line statement walk of each function
// body, descending into if/else, switch, select, for and block
// statements with a copy of the held set. A deferred Unlock releases
// on every subsequent path, so `mu.Lock(); defer mu.Unlock()` is
// always clean. Function literals are separate scopes (a closure runs
// when called, not where it is written), each walked once.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "Shared's mutexes acquire in planMu -> vecMu -> pinMu -> curMu order, and " +
		"no path may return while holding one",
	Run: runLockOrder,
}

// sharedLockRank orders exec.Shared's mutex fields.
var sharedLockRank = map[string]int{
	"planMu": 0, "vecMu": 1, "pinMu": 2, "curMu": 3,
}

const lockRankNames = "planMu -> vecMu -> pinMu -> curMu"

func runLockOrder(pass *analysis.Pass) (any, error) {
	if !pkgPathHasSuffix(pass.Pkg, "internal/exec") {
		return nil, nil
	}
	for _, f := range pass.Files {
		// Every function body — declarations and literals alike — is
		// one independent scope, walked exactly once.
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					finishLockWalk(pass, x.Body, walkLockBlock(pass, x.Body.List, nil))
				}
			case *ast.FuncLit:
				finishLockWalk(pass, x.Body, walkLockBlock(pass, x.Body.List, nil))
			}
			return true
		})
	}
	return nil, nil
}

// finishLockWalk reports locks still held when a body's straight-line
// walk falls off the end.
func finishLockWalk(pass *analysis.Pass, body *ast.BlockStmt, h held) {
	for _, m := range h {
		pass.Reportf(body.Rbrace, "function ends while holding %s: unlock on every path or defer the unlock", m)
	}
}

// lockCall matches a <recv>.<mutexField>.Lock/Unlock() statement on
// one of Shared's ranked mutexes and returns the field name.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (mutex, op string, ok bool) {
	recv, method, isMethod := methodCall(call)
	if !isMethod || (method != "Lock" && method != "Unlock") {
		return "", "", false
	}
	field, isField := recv.(*ast.SelectorExpr)
	if !isField {
		return "", "", false
	}
	if _, ranked := sharedLockRank[field.Sel.Name]; !ranked {
		return "", "", false
	}
	owner := pass.TypeOf(field.X)
	if !isNamedType(owner, "internal/exec", "Shared") && !isNamedType(owner, "internal/exec", "Engine") {
		return "", "", false
	}
	return field.Sel.Name, method, true
}

// held is the ordered set of mutexes the straight-line walk currently
// holds.
type held []string

func (h held) has(m string) bool {
	for _, x := range h {
		if x == m {
			return true
		}
	}
	return false
}

func (h held) without(m string) held {
	out := make(held, 0, len(h))
	for _, x := range h {
		if x != m {
			out = append(out, x)
		}
	}
	return out
}

func (h held) copy() held { return append(held(nil), h...) }

// walkLockBlock walks one statement list with the given held set and
// returns the set held after it. Branch bodies get copies: holding
// state does not leak across sibling branches, and a branch that both
// locks and fully unlocks is clean on any shape. Function literals
// encountered here are NOT descended into — the top-level inspection
// walks each as its own scope.
func walkLockBlock(pass *analysis.Pass, stmts []ast.Stmt, h held) held {
	for _, s := range stmts {
		h = walkLockStmt(pass, s, h)
	}
	return h
}

func walkLockStmt(pass *analysis.Pass, s ast.Stmt, h held) held {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if m, op, ok := lockCall(pass, call); ok {
				switch op {
				case "Lock":
					if h.has(m) {
						pass.Reportf(call.Pos(), "%s.Lock() while already holding %s: sync.Mutex self-deadlocks", m, m)
						return h
					}
					for _, prior := range h {
						if sharedLockRank[prior] > sharedLockRank[m] {
							pass.Reportf(call.Pos(), "lock order violation: %s acquired while holding %s (documented order: %s)", m, prior, lockRankNames)
						}
					}
					return append(h, m)
				case "Unlock":
					return h.without(m)
				}
			}
		}
	case *ast.DeferStmt:
		if m, op, ok := lockCall(pass, x.Call); ok && op == "Unlock" {
			// A deferred unlock covers every path from here on.
			return h.without(m)
		}
	case *ast.ReturnStmt:
		for _, m := range h {
			pass.Reportf(x.Pos(), "return while holding %s: unlock before returning or defer the unlock", m)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			h = walkLockStmt(pass, x.Init, h)
		}
		walkLockBlock(pass, x.Body.List, h.copy())
		if x.Else != nil {
			walkLockStmt(pass, x.Else, h.copy())
		}
	case *ast.BlockStmt:
		h = walkLockBlock(pass, x.List, h)
	case *ast.ForStmt:
		walkLockBlock(pass, x.Body.List, h.copy())
	case *ast.RangeStmt:
		walkLockBlock(pass, x.Body.List, h.copy())
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockBlock(pass, cc.Body, h.copy())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockBlock(pass, cc.Body, h.copy())
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkLockBlock(pass, cc.Body, h.copy())
			}
		}
	case *ast.LabeledStmt:
		return walkLockStmt(pass, x.Stmt, h)
	}
	return h
}
