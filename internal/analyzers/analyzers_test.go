package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/analyzertest"
)

func one(a *analysis.Analyzer) []*analysis.Analyzer { return []*analysis.Analyzer{a} }

func TestCatalogAccess(t *testing.T) {
	analyzertest.Run(t, "testdata", one(analyzers.CatalogAccess), "catalogaccess/internal/exec")
}

func TestHotLoopFlush(t *testing.T) {
	analyzertest.Run(t, "testdata", one(analyzers.HotLoopFlush), "hotloopflush/internal/exec")
}

func TestHotLoopFlushServer(t *testing.T) {
	analyzertest.Run(t, "testdata", one(analyzers.HotLoopFlush), "hotloopflush/internal/server/pgwire")
}

func TestCtxPoll(t *testing.T) {
	analyzertest.Run(t, "testdata", one(analyzers.CtxPoll), "ctxpoll/internal/exec")
}

func TestCtxPollServer(t *testing.T) {
	analyzertest.Run(t, "testdata", one(analyzers.CtxPoll), "ctxpoll/internal/server/pgwire")
}

func TestLockOrder(t *testing.T) {
	analyzertest.Run(t, "testdata", one(analyzers.LockOrder), "lockorder/internal/exec")
}

// TestSuiteRegistered pins the acceptance floor: at least four
// analyzers, every name a valid identifier, no duplicates.
func TestSuiteRegistered(t *testing.T) {
	all := analyzers.All()
	if len(all) < 4 {
		t.Fatalf("suite has %d analyzers, want >= 4", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestScopedPackagesIgnored checks the analyzers stay quiet on
// packages outside their scope (e.g. os/exec-like paths must not match
// the internal/exec suffix).
func TestScopedPackagesIgnored(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.All(), "osexeclike/exec")
}
