// Package array defines the SciQL array model: named DIMENSION index
// attributes with declarative range constraints, non-index attributes
// with DEFAULT initialization, holes (NULL cells indistinguishable at
// the logical level from out-of-bounds space), and the Store interface
// behind which the adaptive storage schemes of the paper's Figure 1
// live.
package array

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Unbounded marks a dimension bound left open with '*' in the DDL.
const (
	UnboundedLow  = math.MinInt64
	UnboundedHigh = math.MaxInt64
)

// Dimension describes one DIMENSION-constrained index attribute. The
// sequence pattern start:final:step follows the paper's §3.1: for
// integers the defaults are start 0, step 1; '*' leaves an end open.
// Timestamp dimensions hold Unix microseconds, with Step 0 meaning
// "order only, any timestamp is valid" (the experiment array of §3.1).
type Dimension struct {
	Name string
	Typ  value.Type // value.Int or value.Timestamp
	// Start is the first valid index value; UnboundedLow if open.
	Start int64
	// End is the exclusive upper bound; UnboundedHigh if open.
	End int64
	// Step is the index increment; 0 is allowed only for Timestamp
	// dimensions and means the dimension merely enforces an order.
	Step int64
	// Check is an optional predicate over full cell coordinates that
	// carves the valid domain (the stripes/diagonal arrays of Fig. 2);
	// nil means every in-range index is valid.
	Check func(coords []int64) bool
	// CheckSQL preserves the CHECK clause text for catalog display.
	CheckSQL string
}

// Bounded reports whether both ends of the range are fixed.
func (d Dimension) Bounded() bool { return d.Start != UnboundedLow && d.End != UnboundedHigh }

// Size returns the number of valid index values of a bounded
// dimension, or -1 when unbounded.
func (d Dimension) Size() int64 {
	if !d.Bounded() {
		return -1
	}
	step := d.Step
	if step == 0 {
		step = 1
	}
	if d.End <= d.Start {
		return 0
	}
	return (d.End - d.Start + step - 1) / step
}

// Contains reports whether index value x falls on the dimension's
// sequence pattern (within bounds and on-step).
func (d Dimension) Contains(x int64) bool {
	if d.Start != UnboundedLow && x < d.Start {
		return false
	}
	if d.End != UnboundedHigh && x >= d.End {
		return false
	}
	if d.Step > 1 && d.Start != UnboundedLow {
		if (x-d.Start)%d.Step != 0 {
			return false
		}
	}
	return true
}

// Ordinal converts an index value to a zero-based position along the
// dimension. Only meaningful when Start is bounded.
func (d Dimension) Ordinal(x int64) int64 {
	step := d.Step
	if step == 0 {
		step = 1
	}
	return (x - d.Start) / step
}

// Index converts a zero-based ordinal back to the index value.
func (d Dimension) Index(ord int64) int64 {
	step := d.Step
	if step == 0 {
		step = 1
	}
	return d.Start + ord*step
}

func (d Dimension) String() string {
	fmtBound := func(b int64, open string) string {
		if b == UnboundedLow || b == UnboundedHigh {
			return open
		}
		return fmt.Sprintf("%d", b)
	}
	return fmt.Sprintf("%s %s DIMENSION[%s:%s:%d]", d.Name, d.Typ,
		fmtBound(d.Start, "*"), fmtBound(d.End, "*"), d.Step)
}

// Attr is a non-index attribute. Every cell covered by the dimensions
// holds the Default value until updated; a NULL value is a hole that
// scans skip (paper §3.1–3.2).
type Attr struct {
	Name string
	Typ  value.Type
	// Default initializes cells; a NULL default produces holes
	// everywhere until cells are assigned.
	Default value.Value
	// DefaultFn, when non-nil, computes the default from the cell
	// coordinates (derived columns like r = SQRT(x²+y²), §5.1).
	DefaultFn func(coords []int64) value.Value
	// Check is an optional content predicate that nullifies cells
	// outside the domain of validity (the sparse array of Fig. 2).
	Check func(v value.Value) bool
	// CheckSQL preserves the CHECK clause text.
	CheckSQL string
	// Nested describes the element schema for Array-typed attributes.
	Nested *Schema
}

// Schema is the logical shape of an array: its dimensions and
// attributes, in declaration order.
type Schema struct {
	Dims  []Dimension
	Attrs []Attr
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// DimIndex returns the position of the named dimension, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Store is the physical representation of an array's cells. The
// paper's runtime "selects the best representation based on the
// intrinsic properties of an array instance" (§2.2); each of the four
// schemes of Figure 1 implements this interface in internal/storage.
type Store interface {
	// Scheme names the storage scheme (Tabular, Virtual, DOrder, Slab).
	Scheme() string
	// Len returns the number of materialized (non-hole) cells.
	Len() int
	// Get returns attribute attr of the cell at coords. Holes and
	// out-of-bounds coordinates read as NULL — the paper makes the two
	// logically indistinguishable.
	Get(coords []int64, attr int) value.Value
	// Set writes attribute attr of the cell at coords. Writing NULL
	// punches a hole. Out-of-bounds writes error.
	Set(coords []int64, attr int, v value.Value) error
	// Scan visits every non-hole cell; a cell is a hole if all its
	// attributes are NULL. The coords and vals slices are reused
	// between calls; the callback must not retain them. Returning
	// false stops the scan.
	Scan(visit func(coords []int64, vals []value.Value) bool)
	// Bounds returns the current minimal bounding box (per-dimension
	// lo..hi inclusive index values) of materialized cells. Bounded
	// dimensions report their declared bounds.
	Bounds() (lo, hi []int64, ok bool)
	// Clone deep-copies the store.
	Clone() Store
}

// ChunkScan walks one chunk of a store's scan order. The coords and
// vals slices passed to visit are reused between calls and must not be
// retained; returning false stops the chunk's scan. Distinct ChunkScan
// closures own their buffers, so different chunks may run concurrently.
type ChunkScan func(visit func(coords []int64, vals []value.Value) bool)

// ChunkedScanner is implemented by stores whose scan can be split into
// independent, bounded chunks with attribute-column pruning — the unit
// of parallel array scans.
//
// ScanChunks partitions the store's Scan order into roughly `target`
// chunks (the result may be shorter or longer; at least one chunk is
// returned for a non-empty store). Running the chunks in slice order
// and concatenating their outputs visits exactly the cells Scan
// visits, in the same order — parallel scans that buffer per chunk and
// merge by index are therefore byte-identical to a serial scan.
//
// attrs selects the attribute columns to materialize: vals[i] passed
// to visit holds the value of attribute attrs[i]. A nil attrs keeps
// every attribute (vals[i] = attribute i). Cell liveness (hole
// skipping) is always judged on all attributes, exactly like Scan, so
// pruning never changes which cells are visited.
type ChunkedScanner interface {
	ScanChunks(target int, attrs []int) []ChunkScan
}

// AttrStats is the zone map of one attribute over one chunk: the
// number of live cells whose value is NULL, and the minimum/maximum
// non-NULL value under value.Compare ordering. When every live cell's
// value is NULL (or the chunk is empty) Min and Max are typed NULLs —
// a NULL bound means "no usable range", never "range includes NULL",
// since NULL cells can only satisfy IS NULL predicates.
type AttrStats struct {
	Nulls    int64
	Min, Max value.Value
}

// ChunkStats is the zone map of one scan chunk: the live-cell count,
// the inclusive per-dimension coordinate bounding box of those cells,
// and per-attribute statistics indexed by schema attribute position.
// A chunk with Rows == 0 has meaningless bounds and can always be
// skipped.
type ChunkStats struct {
	Rows         int64
	DimLo, DimHi []int64
	Attrs        []AttrStats
}

// StatsProvider is implemented by stores that maintain per-chunk zone
// maps. ChunkStats(target) returns statistics index-aligned with the
// chunks ScanChunks(target, attrs) yields for the same target on the
// same (unmutated) store: stats[i] exactly describes the live cells
// chunk i visits. Implementations recompute lazily after mutations, so
// the stats are always exact; callers must still verify
// len(stats) == len(chunks) before pairing them.
type StatsProvider interface {
	ChunkStats(target int) []ChunkStats
}

// AllAttrs expands ChunkedScanner's nil attribute selection to the
// identity list over n attributes; a non-nil selection passes through.
func AllAttrs(attrs []int, n int) []int {
	if attrs != nil {
		return attrs
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Array binds a schema to a storage instance. It is the engine's
// first-class citizen.
type Array struct {
	Name   string
	Schema Schema
	Store  Store
}

// NumDims returns the dimensionality.
func (a *Array) NumDims() int { return len(a.Schema.Dims) }

// Get reads a single attribute at coords (NULL for holes/out of bounds).
func (a *Array) Get(coords []int64, attr int) value.Value {
	if !a.ValidCoords(coords) {
		if attr < len(a.Schema.Attrs) {
			return value.NewNull(a.Schema.Attrs[attr].Typ)
		}
		return value.NewNull(value.Unknown)
	}
	return a.Store.Get(coords, attr)
}

// Set writes a single attribute at coords, enforcing dimension and
// content CHECK constraints: writes outside the valid domain are
// ignored for CHECK-carved dimensions, and content checks nullify
// failing values (Fig. 2 semantics).
func (a *Array) Set(coords []int64, attr int, v value.Value) error {
	if !a.ValidCoords(coords) {
		return fmt.Errorf("array %s: coordinates %v outside the valid domain", a.Name, coords)
	}
	at := a.Schema.Attrs[attr]
	if at.Check != nil && !v.Null && !at.Check(v) {
		v = value.NewNull(at.Typ)
	}
	return a.Store.Set(coords, attr, v)
}

// ValidCoords reports whether coords fall inside every dimension's
// range and satisfy all dimension CHECK predicates.
func (a *Array) ValidCoords(coords []int64) bool {
	if len(coords) != len(a.Schema.Dims) {
		return false
	}
	for i, d := range a.Schema.Dims {
		if !d.Contains(coords[i]) {
			return false
		}
	}
	for _, d := range a.Schema.Dims {
		if d.Check != nil && !d.Check(coords) {
			return false
		}
	}
	return true
}

// BoundingBox returns the per-dimension inclusive lo..hi ranges that a
// full listing of the array would cover: declared bounds where fixed,
// else the minimal bounding rectangle of materialized cells (§3.1).
func (a *Array) BoundingBox() (lo, hi []int64, err error) {
	slo, shi, ok := a.Store.Bounds()
	lo = make([]int64, len(a.Schema.Dims))
	hi = make([]int64, len(a.Schema.Dims))
	for i, d := range a.Schema.Dims {
		switch {
		case d.Bounded():
			lo[i], hi[i] = d.Start, d.End-stepOf(d)
			if d.Step > 1 {
				// Snap the inclusive upper bound onto the step grid.
				hi[i] = d.Start + (d.Size()-1)*d.Step
			}
		case ok:
			lo[i], hi[i] = slo[i], shi[i]
		default:
			return nil, nil, fmt.Errorf("array %s: unbounded dimension %s with no cells", a.Name, d.Name)
		}
	}
	return lo, hi, nil
}

func stepOf(d Dimension) int64 {
	if d.Step <= 0 {
		return 1
	}
	return d.Step
}

// CellCount returns the number of cells a full listing would produce
// (the bounding-box volume), or -1 if the array is unbounded and empty.
func (a *Array) CellCount() int64 {
	lo, hi, err := a.BoundingBox()
	if err != nil {
		return -1
	}
	n := int64(1)
	for i, d := range a.Schema.Dims {
		step := stepOf(d)
		n *= (hi[i]-lo[i])/step + 1
	}
	return n
}

// Clone deep-copies the array.
func (a *Array) Clone() *Array {
	return &Array{Name: a.Name, Schema: a.Schema, Store: a.Store.Clone()}
}
