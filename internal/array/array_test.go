package array

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestDimensionSizeAndContains(t *testing.T) {
	d := Dimension{Name: "x", Typ: value.Int, Start: 0, End: 4, Step: 1}
	if d.Size() != 4 || !d.Bounded() {
		t.Fatalf("size = %d", d.Size())
	}
	for _, x := range []int64{0, 1, 2, 3} {
		if !d.Contains(x) {
			t.Errorf("should contain %d", x)
		}
	}
	for _, x := range []int64{-1, 4, 100} {
		if d.Contains(x) {
			t.Errorf("should not contain %d", x)
		}
	}
}

func TestDimensionStep(t *testing.T) {
	d := Dimension{Name: "x", Typ: value.Int, Start: 10, End: 20, Step: 3}
	// Valid: 10, 13, 16, 19.
	if d.Size() != 4 {
		t.Fatalf("stepped size = %d, want 4", d.Size())
	}
	if !d.Contains(13) || d.Contains(14) {
		t.Error("step membership wrong")
	}
	if d.Ordinal(16) != 2 || d.Index(2) != 16 {
		t.Error("ordinal/index round trip wrong")
	}
}

func TestDimensionOrdinalIndexInverse(t *testing.T) {
	f := func(startRaw, stepRaw, ordRaw int16) bool {
		start := int64(startRaw)
		step := int64(stepRaw%7) + 1 // 1..7
		ord := int64(ordRaw % 1000)
		if ord < 0 {
			ord = -ord
		}
		d := Dimension{Start: start, End: start + 10000*step, Step: step, Typ: value.Int}
		return d.Ordinal(d.Index(ord)) == ord
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedDimension(t *testing.T) {
	d := Dimension{Name: "t", Typ: value.Timestamp, Start: UnboundedLow, End: UnboundedHigh, Step: 0}
	if d.Bounded() || d.Size() != -1 {
		t.Fatal("unbounded dimension misreported")
	}
	if !d.Contains(-1<<40) || !d.Contains(1<<40) {
		t.Error("unbounded dimension should contain everything")
	}
	half := Dimension{Name: "x", Typ: value.Int, Start: 5, End: UnboundedHigh, Step: 1}
	if half.Contains(4) || !half.Contains(5) {
		t.Error("half-bounded membership wrong")
	}
}

func TestSchemaIndexes(t *testing.T) {
	s := Schema{
		Dims:  []Dimension{{Name: "x"}, {Name: "y"}},
		Attrs: []Attr{{Name: "v"}, {Name: "w"}},
	}
	if s.DimIndex("y") != 1 || s.DimIndex("z") != -1 {
		t.Error("DimIndex wrong")
	}
	if s.AttrIndex("w") != 1 || s.AttrIndex("v") != 0 || s.AttrIndex("q") != -1 {
		t.Error("AttrIndex wrong")
	}
}

// fakeStore lets the Array wrapper be tested without a real scheme.
type fakeStore struct {
	cells map[[2]int64][]value.Value
}

func (f *fakeStore) Scheme() string { return "fake" }
func (f *fakeStore) Len() int       { return len(f.cells) }
func (f *fakeStore) Get(c []int64, a int) value.Value {
	if vs, ok := f.cells[[2]int64{c[0], c[1]}]; ok {
		return vs[a]
	}
	return value.NewNull(value.Float)
}
func (f *fakeStore) Set(c []int64, a int, v value.Value) error {
	key := [2]int64{c[0], c[1]}
	vs, ok := f.cells[key]
	if !ok {
		vs = []value.Value{value.NewNull(value.Float)}
		f.cells[key] = vs
	}
	vs[a] = v
	return nil
}
func (f *fakeStore) Scan(visit func([]int64, []value.Value) bool) {
	for k, vs := range f.cells {
		if !visit([]int64{k[0], k[1]}, vs) {
			return
		}
	}
}
func (f *fakeStore) Bounds() ([]int64, []int64, bool) {
	if len(f.cells) == 0 {
		return nil, nil, false
	}
	lo := []int64{1 << 62, 1 << 62}
	hi := []int64{-(1 << 62), -(1 << 62)}
	for k := range f.cells {
		for i := 0; i < 2; i++ {
			if k[i] < lo[i] {
				lo[i] = k[i]
			}
			if k[i] > hi[i] {
				hi[i] = k[i]
			}
		}
	}
	return lo, hi, true
}
func (f *fakeStore) Clone() Store { return f }

func newTestArray() *Array {
	return &Array{
		Name: "a",
		Schema: Schema{
			Dims: []Dimension{
				{Name: "x", Typ: value.Int, Start: 0, End: 4, Step: 1},
				{Name: "y", Typ: value.Int, Start: 0, End: 4, Step: 1},
			},
			Attrs: []Attr{{Name: "v", Typ: value.Float, Default: value.NewFloat(0)}},
		},
		Store: &fakeStore{cells: map[[2]int64][]value.Value{}},
	}
}

func TestArrayOutOfBoundsReadsNull(t *testing.T) {
	a := newTestArray()
	if !a.Get([]int64{10, 10}, 0).Null {
		t.Error("out-of-bounds read should be NULL")
	}
	if err := a.Set([]int64{10, 10}, 0, value.NewFloat(1)); err == nil {
		t.Error("out-of-bounds write should error")
	}
}

func TestArrayContentCheckNullifies(t *testing.T) {
	a := newTestArray()
	a.Schema.Attrs[0].Check = func(v value.Value) bool { return v.AsFloat() > 0 }
	if err := a.Set([]int64{1, 1}, 0, value.NewFloat(-5)); err != nil {
		t.Fatal(err)
	}
	if !a.Get([]int64{1, 1}, 0).Null {
		t.Error("CHECK-failing write should store NULL")
	}
	if err := a.Set([]int64{1, 1}, 0, value.NewFloat(5)); err != nil {
		t.Fatal(err)
	}
	if a.Get([]int64{1, 1}, 0).AsFloat() != 5 {
		t.Error("CHECK-passing write lost")
	}
}

func TestArrayDimCheck(t *testing.T) {
	a := newTestArray()
	a.Schema.Dims[1].Check = func(coords []int64) bool { return coords[0] == coords[1] }
	if a.ValidCoords([]int64{1, 2}) {
		t.Error("off-diagonal should be invalid")
	}
	if !a.ValidCoords([]int64{2, 2}) {
		t.Error("diagonal should be valid")
	}
}

func TestBoundingBoxBoundedDims(t *testing.T) {
	a := newTestArray()
	lo, hi, err := a.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0 || hi[0] != 3 || lo[1] != 0 || hi[1] != 3 {
		t.Errorf("bbox = %v..%v", lo, hi)
	}
	if a.CellCount() != 16 {
		t.Errorf("cell count = %d", a.CellCount())
	}
}

func TestBoundingBoxUnboundedFromCells(t *testing.T) {
	a := newTestArray()
	a.Schema.Dims[0].Start, a.Schema.Dims[0].End = UnboundedLow, UnboundedHigh
	if _, _, err := a.BoundingBox(); err == nil {
		t.Error("empty unbounded array should have no bbox")
	}
	_ = a.Store.Set([]int64{-3, 1}, 0, value.NewFloat(1))
	_ = a.Store.Set([]int64{7, 2}, 0, value.NewFloat(2))
	lo, hi, err := a.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != -3 || hi[0] != 7 {
		t.Errorf("unbounded dim bbox = %v..%v", lo[0], hi[0])
	}
	// Bounded dim keeps declared bounds.
	if lo[1] != 0 || hi[1] != 3 {
		t.Errorf("bounded dim bbox = %v..%v", lo[1], hi[1])
	}
}
