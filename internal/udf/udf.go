// Package udf implements the black-box function machinery of §6.2: a
// registry of externally implemented (Go) functions and the array
// marshaling layer that re-casts the engine's storage layout into the
// row- or column-major dense buffers an external library expects.
// The recast is exactly the "potentially expensive operation" the
// paper flags as a reason to move hot functions to white-box form.
package udf

import (
	"fmt"
	"math"

	"repro/internal/array"
	"repro/internal/storage"
	"repro/internal/value"
)

// Layout names a dense element order expected by an external library.
type Layout int

const (
	// RowMajor is C order: the last dimension varies fastest.
	RowMajor Layout = iota
	// ColMajor is Fortran/FITS order: the first dimension varies fastest.
	ColMajor
)

// Dense2D is the marshaled form handed to external matrix routines.
type Dense2D struct {
	Rows, Cols int
	// Data holds Rows*Cols float64s in the requested layout. Holes and
	// out-of-bounds cells are NaN.
	Data   []float64
	Layout Layout
}

// At reads element (r, c) regardless of layout.
func (d *Dense2D) At(r, c int) float64 {
	if d.Layout == RowMajor {
		return d.Data[r*d.Cols+c]
	}
	return d.Data[c*d.Rows+r]
}

// SetAt writes element (r, c).
func (d *Dense2D) SetAt(r, c int, v float64) {
	if d.Layout == RowMajor {
		d.Data[r*d.Cols+c] = v
	} else {
		d.Data[c*d.Rows+r] = v
	}
}

// Marshal2D converts a 2-D array attribute into a dense buffer with
// the requested layout. When the array's physical representation is a
// dense store already in that order, the copy is a straight memcpy of
// the BAT tail; otherwise every element is re-addressed — the recast
// cost measured by BenchmarkBlackBoxMarshal.
func Marshal2D(a *array.Array, attr int, layout Layout) (*Dense2D, error) {
	if len(a.Schema.Dims) != 2 {
		return nil, fmt.Errorf("Marshal2D: array %s has %d dimensions", a.Name, len(a.Schema.Dims))
	}
	lo, hi, err := a.BoundingBox()
	if err != nil {
		return nil, err
	}
	stepR := step(a.Schema.Dims[0])
	stepC := step(a.Schema.Dims[1])
	rows := int((hi[0]-lo[0])/stepR) + 1
	cols := int((hi[1]-lo[1])/stepC) + 1
	out := &Dense2D{Rows: rows, Cols: cols, Layout: layout, Data: make([]float64, rows*cols)}
	for i := range out.Data {
		out.Data[i] = math.NaN()
	}
	// Fast path: a dense row-major store marshaled to row-major order
	// copies the tail directly.
	if df, ok := a.Store.(storage.DenseFloats); ok && layout == RowMajor && df.RowMajor() {
		if data, valid, ok2 := df.FloatColumn(attr); ok2 && len(data) == rows*cols {
			for i, f := range data {
				if valid[i>>6]&(1<<(uint(i)&63)) != 0 {
					out.Data[i] = f
				}
			}
			return out, nil
		}
	}
	coords := make([]int64, 2)
	for r := 0; r < rows; r++ {
		coords[0] = lo[0] + int64(r)*stepR
		for c := 0; c < cols; c++ {
			coords[1] = lo[1] + int64(c)*stepC
			v := a.Get(coords, attr)
			if !v.Null {
				out.SetAt(r, c, v.AsFloat())
			}
		}
	}
	return out, nil
}

// Unmarshal2D writes a dense buffer back into an array attribute,
// mapping ordinals from the array's bounding box. NaN elements punch
// holes.
func Unmarshal2D(a *array.Array, attr int, d *Dense2D) error {
	if len(a.Schema.Dims) != 2 {
		return fmt.Errorf("Unmarshal2D: array %s has %d dimensions", a.Name, len(a.Schema.Dims))
	}
	lo, _, err := a.BoundingBox()
	if err != nil {
		return err
	}
	stepR := step(a.Schema.Dims[0])
	stepC := step(a.Schema.Dims[1])
	coords := make([]int64, 2)
	for r := 0; r < d.Rows; r++ {
		coords[0] = lo[0] + int64(r)*stepR
		for c := 0; c < d.Cols; c++ {
			coords[1] = lo[1] + int64(c)*stepC
			f := d.At(r, c)
			if math.IsNaN(f) {
				if err := a.Store.Set(coords, attr, value.NewNull(value.Float)); err != nil {
					return err
				}
				continue
			}
			if err := a.Store.Set(coords, attr, value.NewFloat(f)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Marshal1D converts a 1-D array attribute into a float vector.
func Marshal1D(a *array.Array, attr int) ([]float64, error) {
	if len(a.Schema.Dims) != 1 {
		return nil, fmt.Errorf("Marshal1D: array %s has %d dimensions", a.Name, len(a.Schema.Dims))
	}
	lo, hi, err := a.BoundingBox()
	if err != nil {
		return nil, err
	}
	st := step(a.Schema.Dims[0])
	n := int((hi[0]-lo[0])/st) + 1
	out := make([]float64, n)
	coords := make([]int64, 1)
	for i := 0; i < n; i++ {
		coords[0] = lo[0] + int64(i)*st
		v := a.Get(coords, attr)
		if v.Null {
			out[i] = math.NaN()
		} else {
			out[i] = v.AsFloat()
		}
	}
	return out, nil
}

func step(d array.Dimension) int64 {
	if d.Step <= 0 {
		return 1
	}
	return d.Step
}

// --- external library (the paper's linked-in routines, in Go) --------------

// MarkovStep performs `steps` iterations of a row-stochastic
// transition: normalize rows, then square the matrix per step. It is
// the stand-in for the paper's 'markov.loop' library routine.
func MarkovStep(m *Dense2D, steps int) *Dense2D {
	n := m.Rows
	cur := make([]float64, len(m.Data))
	copy(cur, m.Data)
	get := func(buf []float64, r, c int) float64 {
		if m.Layout == RowMajor {
			return buf[r*m.Cols+c]
		}
		return buf[c*m.Rows+r]
	}
	set := func(buf []float64, r, c int, v float64) {
		if m.Layout == RowMajor {
			buf[r*m.Cols+c] = v
		} else {
			buf[c*m.Rows+r] = v
		}
	}
	// Row normalization (NaNs count as zero mass).
	for r := 0; r < n; r++ {
		sum := 0.0
		for c := 0; c < m.Cols; c++ {
			if f := get(cur, r, c); !math.IsNaN(f) {
				sum += f
			}
		}
		if sum == 0 {
			continue
		}
		for c := 0; c < m.Cols; c++ {
			f := get(cur, r, c)
			if math.IsNaN(f) {
				set(cur, r, c, 0)
			} else {
				set(cur, r, c, f/sum)
			}
		}
	}
	next := make([]float64, len(cur))
	for s := 0; s < steps; s++ {
		for r := 0; r < n; r++ {
			for c := 0; c < m.Cols; c++ {
				acc := 0.0
				for k := 0; k < m.Cols && k < n; k++ {
					acc += get(cur, r, k) * get(cur, k, c)
				}
				set(next, r, c, acc)
			}
		}
		cur, next = next, cur
	}
	return &Dense2D{Rows: m.Rows, Cols: m.Cols, Layout: m.Layout, Data: cur}
}

// Euclidean computes the distance between two equal-length vectors,
// skipping positions where either side is NaN (outer NULLs).
func Euclidean(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Noise reduces a sensor-drift value: the DESTRIPE correction applied
// to every sixth scan line (§7.1.1). delta is the per-channel drift
// estimated from line statistics.
func Noise(v, delta float64) float64 { return v - delta }
