package udf

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/storage"
	"repro/internal/value"
)

func denseArray(t *testing.T, scheme string, n int64) *array.Array {
	t.Helper()
	sch := array.Schema{
		Dims: []array.Dimension{
			{Name: "x", Typ: value.Int, Start: 0, End: n, Step: 1},
			{Name: "y", Typ: value.Int, Start: 0, End: n, Step: 1},
		},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewFloat(0)}},
	}
	st, err := storage.NewScheme(scheme, sch, storage.Hints{SlabSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := &array.Array{Name: "m", Schema: sch, Store: st}
	for x := int64(0); x < n; x++ {
		for y := int64(0); y < n; y++ {
			_ = st.Set([]int64{x, y}, 0, value.NewFloat(float64(x*n+y)))
		}
	}
	return a
}

func TestMarshal2DRowMajor(t *testing.T) {
	a := denseArray(t, storage.SchemeVirtual, 4)
	d, err := Marshal2D(a, 0, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows != 4 || d.Cols != 4 {
		t.Fatalf("shape %dx%d", d.Rows, d.Cols)
	}
	if d.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", d.At(1, 2))
	}
	// Raw layout check: row-major means data[1*4+2] == 6.
	if d.Data[6] != 6 {
		t.Errorf("row-major layout violated: data[6] = %v", d.Data[6])
	}
}

func TestMarshal2DColMajor(t *testing.T) {
	a := denseArray(t, storage.SchemeVirtual, 4)
	d, err := Marshal2D(a, 0, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", d.At(1, 2))
	}
	// Column-major: data[2*4+1] == 6.
	if d.Data[9] != 6 {
		t.Errorf("col-major layout violated: data[9] = %v", d.Data[9])
	}
}

func TestMarshalAgreesAcrossSchemes(t *testing.T) {
	ref, err := Marshal2D(denseArray(t, storage.SchemeVirtual, 5), 0, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{storage.SchemeTabular, storage.SchemeDOrder, storage.SchemeSlab} {
		d, err := Marshal2D(denseArray(t, scheme, 5), 0, RowMajor)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		for i := range ref.Data {
			if d.Data[i] != ref.Data[i] {
				t.Fatalf("%s: marshal differs at %d: %v vs %v", scheme, i, d.Data[i], ref.Data[i])
			}
		}
	}
}

func TestMarshalHolesAreNaN(t *testing.T) {
	a := denseArray(t, storage.SchemeVirtual, 3)
	_ = a.Store.Set([]int64{1, 1}, 0, value.NewNull(value.Float))
	d, err := Marshal2D(a, 0, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(d.At(1, 1)) {
		t.Errorf("hole should marshal as NaN, got %v", d.At(1, 1))
	}
}

func TestUnmarshalRoundTrip(t *testing.T) {
	a := denseArray(t, storage.SchemeVirtual, 4)
	d, _ := Marshal2D(a, 0, ColMajor)
	for i := range d.Data {
		d.Data[i] *= 2
	}
	if err := Unmarshal2D(a, 0, d); err != nil {
		t.Fatal(err)
	}
	if got := a.Get([]int64{2, 3}, 0).AsFloat(); got != 22 {
		t.Errorf("unmarshaled cell = %v, want 22", got)
	}
}

func TestMarshal1D(t *testing.T) {
	sch := array.Schema{
		Dims:  []array.Dimension{{Name: "i", Typ: value.Int, Start: 0, End: 5, Step: 1}},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewFloat(1)}},
	}
	st, _ := storage.NewVirtual(sch)
	a := &array.Array{Name: "vec", Schema: sch, Store: st}
	_ = st.Set([]int64{3}, 0, value.NewFloat(9))
	v, err := Marshal1D(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 5 || v[3] != 9 || v[0] != 1 {
		t.Fatalf("vector = %v", v)
	}
}

func TestMarshalDimensionalityErrors(t *testing.T) {
	a := denseArray(t, storage.SchemeVirtual, 3)
	if _, err := Marshal1D(a, 0); err == nil {
		t.Error("Marshal1D on 2-D array should error")
	}
	sch := array.Schema{
		Dims:  []array.Dimension{{Name: "i", Typ: value.Int, Start: 0, End: 2, Step: 1}},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewFloat(0)}},
	}
	st, _ := storage.NewVirtual(sch)
	vec := &array.Array{Name: "v", Schema: sch, Store: st}
	if _, err := Marshal2D(vec, 0, RowMajor); err == nil {
		t.Error("Marshal2D on 1-D array should error")
	}
}

func TestMarkovStepStochastic(t *testing.T) {
	d := &Dense2D{Rows: 3, Cols: 3, Layout: RowMajor, Data: []float64{
		1, 1, 0,
		0, 1, 1,
		1, 0, 1,
	}}
	out := MarkovStep(d, 2)
	// Rows of a stochastic matrix power still sum to 1.
	for r := 0; r < 3; r++ {
		sum := 0.0
		for c := 0; c < 3; c++ {
			sum += out.At(r, c)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", r, sum)
		}
	}
}

func TestMarkovLayoutInvariance(t *testing.T) {
	data := []float64{1, 2, 0, 1, 0, 3, 2, 1, 1}
	rm := &Dense2D{Rows: 3, Cols: 3, Layout: RowMajor, Data: append([]float64(nil), data...)}
	cm := &Dense2D{Rows: 3, Cols: 3, Layout: ColMajor, Data: make([]float64, 9)}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			cm.SetAt(r, c, rm.At(r, c))
		}
	}
	or := MarkovStep(rm, 3)
	oc := MarkovStep(cm, 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if math.Abs(or.At(r, c)-oc.At(r, c)) > 1e-9 {
				t.Fatalf("layout changes result at (%d,%d)", r, c)
			}
		}
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("distance = %v, want 5", got)
	}
	nan := math.NaN()
	if got := Euclidean([]float64{0, nan, 0}, []float64{3, 100, 4}); got != 5 {
		t.Errorf("NaN positions should be skipped: %v", got)
	}
}

func TestNoise(t *testing.T) {
	if Noise(100, 18) != 82 {
		t.Error("noise correction wrong")
	}
}
