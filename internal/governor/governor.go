// Package governor is the per-query resource governor: memory budgets
// charged at the executor's allocation choke points, statement
// timeouts distinguishable from caller cancellation, admission control
// with a bounded wait queue, graceful drain, and the typed errors the
// public API surfaces for each. One Governor belongs to one database
// (exec.Shared); every statement acquires an admission slot and a
// Budget from it at the statement boundary.
//
// All methods are nil-receiver safe so an ungoverned engine (a Shared
// constructed without limits, or tests building the struct directly)
// pays one nil check per call site and nothing else.
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ErrMemoryBudget is returned (wrapped) when a statement's memory
// charges exceed the per-query or database-wide limit set through
// SetMemoryLimit.
var ErrMemoryBudget = errors.New("memory budget exceeded")

// ErrStatementTimeout is returned when a statement exceeds the
// duration set through SetStatementTimeout. It is distinct from the
// caller's own context cancellation: a caller-canceled statement
// returns context.Canceled (or the caller deadline's error), never
// this.
var ErrStatementTimeout = errors.New("statement timeout exceeded")

// ErrAdmission is returned when admission control rejects a statement:
// the database is at its concurrency limit with a full wait queue, the
// queue deadline expired, or the database is draining.
var ErrAdmission = errors.New("statement rejected by admission control")

// PanicError is the error a contained panic converts into: the
// recovered value, the goroutine stack at the panic site, and — filled
// in by the public layer — the text of the query that panicked. The
// session that hit it remains usable.
type PanicError struct {
	// Query is the statement text, attached where it is known.
	Query string
	// Val is the value recover() returned.
	Val any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (p *PanicError) Error() string {
	if p.Query != "" {
		return fmt.Sprintf("query panicked: %v (query: %s)", p.Val, p.Query)
	}
	return fmt.Sprintf("query panicked: %v", p.Val)
}

// NewPanicError boxes a recovered panic value. If the value already is
// a *PanicError (a panic recovered once and rethrown across a layer),
// it passes through so the original stack survives.
func NewPanicError(val any, stack []byte) *PanicError {
	if pe, ok := val.(*PanicError); ok {
		return pe
	}
	return &PanicError{Val: val, Stack: stack}
}

// Metrics is the governor's instrument set; all fields are optional
// (telemetry instruments no-op on nil receivers).
type Metrics struct {
	Admitted     *telemetry.Counter // queries_admitted_total
	Rejected     *telemetry.Counter // queries_rejected_total
	TimedOut     *telemetry.Counter // queries_timed_out_total
	Panicked     *telemetry.Counter // queries_panicked_total
	BudgetAborts *telemetry.Counter // mem_budget_aborts_total
	MemInUse     *telemetry.Gauge   // mem_in_use_bytes
}

// Governor holds one database's resource-control state. The
// configuration setters are setup-time calls like the engine's other
// knobs: settle them before running statements concurrently.
type Governor struct {
	// timeoutNS is the statement timeout in nanoseconds; 0 = none.
	timeoutNS atomic.Int64
	// perQuery / totalLimit are the memory limits in bytes; <= 0 = off.
	perQuery   atomic.Int64
	totalLimit atomic.Int64
	// inUse is the bytes currently charged across all live statements.
	inUse atomic.Int64

	mu sync.Mutex
	// maxConc caps concurrently admitted statements; <= 0 = unlimited.
	maxConc int
	// queueCap bounds the admission wait queue; 0 rejects immediately
	// at the concurrency limit.
	queueCap int
	// queueWait is the longest a statement waits in the queue before
	// ErrAdmission; <= 0 waits only on the caller's context.
	queueWait time.Duration
	// queueSet marks an explicit SetAdmissionQueue call, so
	// SetMaxConcurrentQueries keeps the caller's queue shape instead of
	// re-deriving defaults.
	queueSet bool
	running  int
	waiters   []*waiter
	draining  bool
	drainDone []chan struct{}

	met Metrics
}

// waiter is one queued admission request. The slot handoff closes ch;
// ok distinguishes admission (release handed its slot over) from
// rejection (drain flushed the queue).
type waiter struct {
	ch chan struct{}
	ok bool
}

// SetMetrics wires the governor's instruments; a setup-time call.
func (g *Governor) SetMetrics(m Metrics) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.met = m
	g.mu.Unlock()
}

// SetStatementTimeout sets the per-statement wall-clock limit; d <= 0
// disables it.
func (g *Governor) SetStatementTimeout(d time.Duration) {
	if g == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	g.timeoutNS.Store(int64(d))
}

// StatementTimeout returns the configured statement timeout (0 when
// disabled).
func (g *Governor) StatementTimeout() time.Duration {
	if g == nil {
		return 0
	}
	return time.Duration(g.timeoutNS.Load())
}

// SetMemoryLimit sets the per-query and database-wide memory budgets
// in bytes; <= 0 disables the respective limit.
func (g *Governor) SetMemoryLimit(perQuery, total int64) {
	if g == nil {
		return
	}
	g.perQuery.Store(perQuery)
	g.totalLimit.Store(total)
}

// SetMaxConcurrentQueries caps concurrently executing statements at n.
// Unless SetAdmissionQueue chose otherwise, the wait queue defaults to
// 2n entries with a one-second queue deadline. n <= 0 removes the cap
// (statements are still tracked, so Drain works regardless).
func (g *Governor) SetMaxConcurrentQueries(n int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.maxConc = n
	if !g.queueSet {
		g.queueCap = 2 * n
		if g.queueCap < 0 {
			g.queueCap = 0
		}
		g.queueWait = time.Second
	}
	g.mu.Unlock()
}

// SetAdmissionQueue sizes the admission wait queue: depth entries,
// each waiting at most wait before ErrAdmission (wait <= 0 waits only
// on the caller's context; depth <= 0 rejects immediately at the
// concurrency limit).
func (g *Governor) SetAdmissionQueue(depth int, wait time.Duration) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if depth < 0 {
		depth = 0
	}
	g.queueCap = depth
	g.queueWait = wait
	g.queueSet = true
	g.mu.Unlock()
}

// Admit acquires an admission slot for one statement, waiting in the
// bounded queue when the database is at its concurrency limit. The
// returned release func must be called exactly once when the statement
// (or its cursor) finishes; it is idempotent. Errors: ErrAdmission
// (saturated queue, queue deadline, draining) or ctx's error when the
// caller gave up first.
func (g *Governor) Admit(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		g.met.Rejected.Inc()
		return nil, fmt.Errorf("%w: database is draining", ErrAdmission)
	}
	if g.maxConc <= 0 || g.running < g.maxConc {
		g.running++
		g.mu.Unlock()
		g.met.Admitted.Inc()
		return g.releaseFunc(), nil
	}
	if len(g.waiters) >= g.queueCap {
		g.mu.Unlock()
		g.met.Rejected.Inc()
		return nil, fmt.Errorf("%w: %d running, queue full", ErrAdmission, g.maxConc)
	}
	w := &waiter{ch: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	wait := g.queueWait
	g.mu.Unlock()

	var timeout <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ch:
		return g.admittedFromQueue(w)
	case <-ctx.Done():
		if g.abandon(w) {
			g.met.Rejected.Inc()
			return nil, ctx.Err()
		}
		// Lost the race: release already handed us its slot.
		return g.admittedFromQueue(w)
	case <-timeout:
		if g.abandon(w) {
			g.met.Rejected.Inc()
			return nil, fmt.Errorf("%w: queue deadline exceeded", ErrAdmission)
		}
		return g.admittedFromQueue(w)
	}
}

// admittedFromQueue finishes a queued admission once w.ch closed (or
// the abandon race was lost): admitted waiters got a slot handed over,
// drained waiters were rejected.
func (g *Governor) admittedFromQueue(w *waiter) (func(), error) {
	<-w.ch
	g.mu.Lock()
	ok := w.ok
	g.mu.Unlock()
	if !ok {
		g.met.Rejected.Inc()
		return nil, fmt.Errorf("%w: database is draining", ErrAdmission)
	}
	g.met.Admitted.Inc()
	return g.releaseFunc(), nil
}

// abandon removes w from the wait queue; false when it is no longer
// queued (admitted or drained), in which case w.ch is closed or about
// to close.
func (g *Governor) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, q := range g.waiters {
		if q == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// releaseFunc returns the idempotent release of one admission slot.
func (g *Governor) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(g.release) }
}

// release frees one slot: the oldest queued waiter inherits it, or the
// running count drops (waking Drain at zero).
func (g *Governor) release() {
	g.mu.Lock()
	if !g.draining && len(g.waiters) > 0 {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		w.ok = true
		close(w.ch)
		g.mu.Unlock()
		return
	}
	g.running--
	if g.draining && g.running <= 0 && len(g.drainDone) > 0 {
		for _, ch := range g.drainDone {
			close(ch)
		}
		g.drainDone = nil
	}
	g.mu.Unlock()
}

// Drain stops admitting statements (every later Admit returns
// ErrAdmission), rejects queued waiters, and waits for in-flight
// statements to finish — the graceful-shutdown primitive. Returns
// ctx's error if it fires first; draining remains in effect either
// way.
func (g *Governor) Drain(ctx context.Context) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	g.draining = true
	for _, w := range g.waiters {
		close(w.ch) // w.ok stays false: rejected
	}
	g.waiters = nil
	if g.running <= 0 {
		g.mu.Unlock()
		return nil
	}
	done := make(chan struct{})
	g.drainDone = append(g.drainDone, done)
	g.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (g *Governor) Draining() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Running reports the number of currently admitted statements.
func (g *Governor) Running() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.running
}

// InUseBytes reports the bytes currently charged across all live
// statements.
func (g *Governor) InUseBytes() int64 {
	if g == nil {
		return 0
	}
	return g.inUse.Load()
}

// NoteTimeout records one statement timeout.
func (g *Governor) NoteTimeout() {
	if g != nil {
		g.met.TimedOut.Inc()
	}
}

// NotePanic records one contained panic.
func (g *Governor) NotePanic() {
	if g != nil {
		g.met.Panicked.Inc()
	}
}

// --- memory budgets ----------------------------------------------------------

// Budget is one statement's memory account. Charges are cumulative for
// the statement's lifetime — the budget measures bytes materialized by
// the statement, a deliberate proxy for runaway result sets — and flow
// into the database-wide in-use gauge until Release. Charge is an
// atomic add: hot loops accumulate into plain locals and charge once
// per chunk (the hotloopflush discipline), never per cell. A nil
// Budget (no limits configured) charges nothing.
type Budget struct {
	g     *Governor
	limit int64
	used  atomic.Int64
	// released latches Release so a double release (cursor close plus
	// teardown safety net) cannot drive the shared gauge negative.
	released atomic.Bool
}

// NewBudget opens a statement budget, nil when no memory limit is
// configured (so charge sites pay one nil check and no atomics).
func (g *Governor) NewBudget() *Budget {
	if g == nil {
		return nil
	}
	pq := g.perQuery.Load()
	if pq <= 0 && g.totalLimit.Load() <= 0 {
		return nil
	}
	return &Budget{g: g, limit: pq}
}

// Charge adds n bytes to the statement's account, returning a typed
// error (wrapping ErrMemoryBudget) when the per-query or database-wide
// limit is exceeded. Call once per chunk with a locally accumulated
// total, not per cell.
func (b *Budget) Charge(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	used := b.used.Add(n)
	g := b.g
	inUse := g.inUse.Add(n)
	g.met.MemInUse.Set(inUse)
	if b.limit > 0 && used > b.limit {
		g.met.BudgetAborts.Inc()
		return fmt.Errorf("%w: statement used %d of %d bytes", ErrMemoryBudget, used, b.limit)
	}
	if total := g.totalLimit.Load(); total > 0 && inUse > total {
		g.met.BudgetAborts.Inc()
		return fmt.Errorf("%w: database using %d of %d bytes", ErrMemoryBudget, inUse, total)
	}
	return nil
}

// Used reports the bytes charged so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Release returns the statement's charges to the database-wide pool;
// idempotent, so teardown safety nets may call it after cursor close
// already did.
func (b *Budget) Release() {
	if b == nil || !b.released.CompareAndSwap(false, true) {
		return
	}
	inUse := b.g.inUse.Add(-b.used.Load())
	b.g.met.MemInUse.Set(inUse)
}

// --- timeout plumbing --------------------------------------------------------

// WithStatementTimeout wraps ctx with the governor's statement
// deadline, tagging the cancellation cause as ErrStatementTimeout so
// TimeoutErr can tell it apart from the caller's own deadline. The
// cancel func must be called to free the timer.
func (g *Governor) WithStatementTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	d := g.StatementTimeout()
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, d, ErrStatementTimeout)
}

// TimeoutErr translates a context-deadline error caused by the
// governor's statement timer into ErrStatementTimeout (recording the
// timeout), and passes every other error through — a caller-canceled
// statement keeps context.Canceled.
func (g *Governor) TimeoutErr(ctx context.Context, err error) error {
	if err == nil || ctx == nil {
		return err
	}
	if errors.Is(err, ErrStatementTimeout) {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) && errors.Is(context.Cause(ctx), ErrStatementTimeout) {
		g.NoteTimeout()
		return fmt.Errorf("%w (after %s)", ErrStatementTimeout, g.StatementTimeout())
	}
	return err
}
