package governor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilGovernorIsNoop(t *testing.T) {
	var g *Governor
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("nil Admit: %v", err)
	}
	rel()
	if b := g.NewBudget(); b != nil {
		t.Fatalf("nil governor returned a budget")
	}
	var b *Budget
	if err := b.Charge(1 << 30); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}
	b.Release()
	if d := g.StatementTimeout(); d != 0 {
		t.Fatalf("nil timeout = %v", d)
	}
	if err := g.Drain(context.Background()); err != nil {
		t.Fatalf("nil Drain: %v", err)
	}
}

func TestBudgetPerQueryLimit(t *testing.T) {
	g := &Governor{}
	g.SetMemoryLimit(1000, 0)
	b := g.NewBudget()
	if b == nil {
		t.Fatalf("no budget with per-query limit set")
	}
	if err := b.Charge(600); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	err := b.Charge(600)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("over-limit charge: %v, want ErrMemoryBudget", err)
	}
	if g.InUseBytes() != 1200 {
		t.Fatalf("InUseBytes = %d, want 1200", g.InUseBytes())
	}
	b.Release()
	b.Release() // idempotent
	if g.InUseBytes() != 0 {
		t.Fatalf("InUseBytes after release = %d, want 0", g.InUseBytes())
	}
}

func TestBudgetTotalLimit(t *testing.T) {
	g := &Governor{}
	g.SetMemoryLimit(0, 1000)
	b1, b2 := g.NewBudget(), g.NewBudget()
	if err := b1.Charge(700); err != nil {
		t.Fatalf("b1: %v", err)
	}
	if err := b2.Charge(200); err != nil {
		t.Fatalf("b2 within total: %v", err)
	}
	if err := b2.Charge(200); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("b2 over total: %v, want ErrMemoryBudget", err)
	}
	b1.Release()
	b2.Release()
	if g.InUseBytes() != 0 {
		t.Fatalf("InUseBytes = %d after releases", g.InUseBytes())
	}
}

func TestNoBudgetWithoutLimits(t *testing.T) {
	g := &Governor{}
	if b := g.NewBudget(); b != nil {
		t.Fatalf("budget handed out with no limits configured")
	}
}

func TestAdmitUnlimitedTracksRunning(t *testing.T) {
	g := &Governor{}
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if g.Running() != 1 {
		t.Fatalf("Running = %d, want 1", g.Running())
	}
	rel()
	rel() // idempotent
	if g.Running() != 0 {
		t.Fatalf("Running = %d after release", g.Running())
	}
}

func TestAdmitRejectsWhenSaturated(t *testing.T) {
	g := &Governor{}
	g.SetMaxConcurrentQueries(1)
	g.SetAdmissionQueue(0, 0)
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("first Admit: %v", err)
	}
	if _, err := g.Admit(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("saturated Admit: %v, want ErrAdmission", err)
	}
	rel()
	rel2, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit after release: %v", err)
	}
	rel2()
}

func TestAdmitQueueHandoff(t *testing.T) {
	g := &Governor{}
	g.SetMaxConcurrentQueries(1)
	g.SetAdmissionQueue(4, time.Second)
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("first Admit: %v", err)
	}
	got := make(chan error, 1)
	var rel2 func()
	go func() {
		r, err := g.Admit(context.Background())
		rel2 = r
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter queue
	rel()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued Admit: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatalf("queued waiter never admitted")
	}
	if g.Running() != 1 {
		t.Fatalf("Running = %d after handoff, want 1", g.Running())
	}
	rel2()
}

func TestAdmitQueueDeadline(t *testing.T) {
	g := &Governor{}
	g.SetMaxConcurrentQueries(1)
	g.SetAdmissionQueue(4, 10*time.Millisecond)
	rel, _ := g.Admit(context.Background())
	defer rel()
	if _, err := g.Admit(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("queue-deadline Admit: %v, want ErrAdmission", err)
	}
}

func TestAdmitCallerCancel(t *testing.T) {
	g := &Governor{}
	g.SetMaxConcurrentQueries(1)
	g.SetAdmissionQueue(4, time.Second)
	rel, _ := g.Admit(context.Background())
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if _, err := g.Admit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Admit: %v, want context.Canceled", err)
	}
}

func TestDrain(t *testing.T) {
	g := &Governor{}
	rel, _ := g.Admit(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatalf("Drain returned with a statement in flight")
	default:
	}
	if _, err := g.Admit(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("Admit while draining: %v, want ErrAdmission", err)
	}
	rel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatalf("Drain never finished after last release")
	}
	if !g.Draining() {
		t.Fatalf("Draining = false after Drain")
	}
}

func TestDrainRejectsQueuedWaiters(t *testing.T) {
	g := &Governor{}
	g.SetMaxConcurrentQueries(1)
	g.SetAdmissionQueue(4, time.Second)
	rel, _ := g.Admit(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := g.Admit(context.Background())
		waitErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	drained := make(chan error, 1)
	go func() { drained <- g.Drain(context.Background()) }()
	select {
	case err := <-waitErr:
		if !errors.Is(err, ErrAdmission) {
			t.Fatalf("drained waiter: %v, want ErrAdmission", err)
		}
	case <-time.After(time.Second):
		t.Fatalf("queued waiter not rejected by drain")
	}
	rel()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestDrainHonorsContext(t *testing.T) {
	g := &Governor{}
	rel, _ := g.Admit(context.Background())
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck statement: %v, want DeadlineExceeded", err)
	}
}

func TestTimeoutErrTranslation(t *testing.T) {
	g := &Governor{}
	g.SetStatementTimeout(5 * time.Millisecond)
	ctx, cancel := g.WithStatementTimeout(context.Background())
	defer cancel()
	<-ctx.Done()
	err := g.TimeoutErr(ctx, ctx.Err())
	if !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("TimeoutErr = %v, want ErrStatementTimeout", err)
	}
	// A caller-supplied deadline must NOT translate.
	cctx, ccancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer ccancel()
	<-cctx.Done()
	if err := g.TimeoutErr(cctx, cctx.Err()); errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("caller deadline translated to statement timeout")
	}
	// Caller cancellation passes through untouched.
	xctx, xcancel := context.WithCancel(context.Background())
	xcancel()
	if err := g.TimeoutErr(xctx, xctx.Err()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v, want context.Canceled", err)
	}
}

func TestPanicErrorPassThrough(t *testing.T) {
	orig := NewPanicError("boom", []byte("stack"))
	re := NewPanicError(orig, []byte("other"))
	if re != orig {
		t.Fatalf("rethrown PanicError was re-boxed")
	}
	orig.Query = "SELECT 1"
	if got := orig.Error(); got == "" || !contains(got, "SELECT 1") {
		t.Fatalf("Error() = %q, want query text included", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestAdmitConcurrencyStress(t *testing.T) {
	g := &Governor{}
	g.SetMaxConcurrentQueries(4)
	g.SetAdmissionQueue(64, time.Second)
	var wg sync.WaitGroup
	var mu sync.Mutex
	peak, cur := 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Admit(context.Background())
			if err != nil {
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			rel()
		}()
	}
	wg.Wait()
	if peak > 4 {
		t.Fatalf("peak concurrency %d exceeded limit 4", peak)
	}
	if g.Running() != 0 {
		t.Fatalf("Running = %d after quiescence", g.Running())
	}
}
