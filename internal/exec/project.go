package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/array"
	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// expandStars replaces * and A.* select items with explicit column
// references, preserving the source columns' dimension flags.
func expandStars(items []ast.SelectItem, cols []Col) []ast.SelectItem {
	var out []ast.SelectItem
	for _, it := range items {
		st, ok := it.Expr.(*ast.Star)
		if !ok {
			out = append(out, it)
			continue
		}
		for _, c := range cols {
			if st.Table != "" && !strings.EqualFold(c.Qual, st.Table) {
				continue
			}
			if strings.HasPrefix(c.Name, "__") {
				continue
			}
			out = append(out, ast.SelectItem{
				Expr:    &ast.Ident{Table: c.Qual, Name: c.Name},
				Alias:   c.Name,
				DimQual: c.IsDim,
			})
		}
	}
	return out
}

// project evaluates the target list for every row of ds.
func (e *Engine) project(items []ast.SelectItem, ds *Dataset, outer expr.Env) (*Dataset, error) {
	items = expandStars(items, ds.Cols)
	n := ds.NumRows()
	colVals := make([][]value.Value, len(items))
	for i := range colVals {
		colVals[i] = make([]value.Value, 0, n)
	}
	for r := 0; r < n; r++ {
		if r&1023 == 0 {
			if err := e.canceled(); err != nil {
				return nil, err
			}
		}
		env := &rowEnv{d: ds, row: r, outer: outer}
		for i, it := range items {
			v, err := e.Ev.Eval(it.Expr, env)
			if err != nil {
				return nil, err
			}
			colVals[i] = append(colVals[i], v)
		}
	}
	return buildProjected(items, colVals), nil
}

// buildProjected assembles output vectors with per-column type
// promotion (all-Int stays Int; any Float promotes; mixed boxes).
func buildProjected(items []ast.SelectItem, colVals [][]value.Value) *Dataset {
	cols := make([]Col, len(items))
	vecs := make([]bat.Vector, len(items))
	for i, it := range items {
		t := promoteType(colVals[i])
		cols[i] = Col{Name: itemName(it, i), Typ: t, IsDim: it.DimQual}
		if id, ok := it.Expr.(*ast.Ident); ok {
			cols[i].Qual = id.Table
		}
		vecs[i] = bat.FromValues(t, colVals[i])
	}
	return &Dataset{Cols: cols, Vecs: vecs}
}

func promoteType(vals []value.Value) value.Type {
	t := value.Unknown
	for _, v := range vals {
		if v.Null {
			continue
		}
		switch {
		case t == value.Unknown:
			t = v.Typ
		case t == v.Typ:
		case t == value.Int && v.Typ == value.Float, t == value.Float && v.Typ == value.Int:
			t = value.Float
		default:
			return value.Unknown // boxed AnyVector
		}
	}
	if t == value.Unknown {
		return value.Float
	}
	return t
}

// --- aggregate rewriting -----------------------------------------------------

// aggCollector assigns placeholder columns to aggregate calls during
// grouped evaluation.
type aggCollector struct {
	calls []*ast.FuncCall
	names []string
}

func (a *aggCollector) placeholder(f *ast.FuncCall) string {
	for i, c := range a.calls {
		if c == f {
			return a.names[i]
		}
	}
	name := fmt.Sprintf("__agg%d", len(a.calls))
	a.calls = append(a.calls, f)
	a.names = append(a.names, name)
	return name
}

// rewriteAggs deep-copies x, replacing aggregate calls with
// placeholder identifiers registered in ac.
func rewriteAggs(x ast.Expr, ac *aggCollector) ast.Expr {
	return transformExpr(x, func(n ast.Expr) ast.Expr {
		if f, ok := n.(*ast.FuncCall); ok && f.IsAggregate() {
			return &ast.Ident{Name: ac.placeholder(f)}
		}
		return nil
	})
}

// transformExpr rebuilds the expression tree, letting f substitute
// whole subtrees (returning non-nil stops recursion on that node).
func transformExpr(x ast.Expr, f func(ast.Expr) ast.Expr) ast.Expr {
	if x == nil {
		return nil
	}
	if r := f(x); r != nil {
		return r
	}
	switch t := x.(type) {
	case *ast.Unary:
		return &ast.Unary{Op: t.Op, X: transformExpr(t.X, f)}
	case *ast.Binary:
		return &ast.Binary{Op: t.Op, L: transformExpr(t.L, f), R: transformExpr(t.R, f)}
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: t.Name, Star: t.Star, Distinct: t.Distinct}
		for _, a := range t.Args {
			out.Args = append(out.Args, transformExpr(a, f))
		}
		return out
	case *ast.Case:
		out := &ast.Case{Operand: transformExpr(t.Operand, f), Else: transformExpr(t.Else, f)}
		for _, w := range t.Whens {
			out.Whens = append(out.Whens, ast.WhenClause{
				Cond:   transformExpr(w.Cond, f),
				Result: transformExpr(w.Result, f),
			})
		}
		return out
	case *ast.Cast:
		return &ast.Cast{X: transformExpr(t.X, f), To: t.To}
	case *ast.IsNull:
		return &ast.IsNull{X: transformExpr(t.X, f), Neg: t.Neg}
	case *ast.Between:
		return &ast.Between{X: transformExpr(t.X, f), Lo: transformExpr(t.Lo, f), Hi: transformExpr(t.Hi, f), Neg: t.Neg}
	case *ast.InList:
		out := &ast.InList{X: transformExpr(t.X, f), Neg: t.Neg}
		for _, el := range t.Elems {
			out.Elems = append(out.Elems, transformExpr(el, f))
		}
		return out
	case *ast.ArrayRef:
		out := &ast.ArrayRef{Base: transformExpr(t.Base, f), Attr: t.Attr}
		for _, ix := range t.Indexers {
			out.Indexers = append(out.Indexers, ast.Indexer{
				Point: transformExpr(ix.Point, f),
				Start: transformExpr(ix.Start, f),
				Stop:  transformExpr(ix.Stop, f),
				Step:  transformExpr(ix.Step, f),
				Star:  ix.Star,
				Range: ix.Range,
			})
		}
		return out
	case *ast.ExprList:
		out := &ast.ExprList{}
		for _, el := range t.Elems {
			out.Elems = append(out.Elems, transformExpr(el, f))
		}
		return out
	default:
		return x
	}
}

// aggType picks the intermediate column type for an aggregate: COUNT
// is integral; MIN/MAX preserve their input type (boxed); SUM/AVG are
// floats.
func aggType(c *ast.FuncCall) value.Type {
	switch strings.ToUpper(c.Name) {
	case "COUNT":
		return value.Int
	case "MIN", "MAX":
		return value.Unknown // boxed, preserves input type
	default:
		return value.Float
	}
}

// andAll folds conjuncts back into one expression.
func andAll(conjs []ast.Expr) ast.Expr {
	var out ast.Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &ast.Binary{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// --- value-based GROUP BY ----------------------------------------------------

// group is the per-key accumulator of execValueGroupBy; the parallel
// path builds one map per worker and merges the partials.
type group struct {
	firstRow int
	aggs     []*bat.AggState
	distinct []map[string]bool
	counts   []int64
}

func newGroup(r int, calls []*ast.FuncCall) *group {
	g := &group{firstRow: r,
		aggs:     make([]*bat.AggState, len(calls)),
		distinct: make([]map[string]bool, len(calls)),
		counts:   make([]int64, len(calls)),
	}
	for i, c := range calls {
		g.aggs[i] = bat.NewAggState(c.Name)
		if c.Distinct {
			g.distinct[i] = make(map[string]bool)
		}
	}
	return g
}

// accumulate folds row r (bound in env) into the group.
func (e *Engine) accumulate(g *group, calls []*ast.FuncCall, env expr.Env) error {
	for i, c := range calls {
		if c.Star {
			g.counts[i]++
			continue
		}
		v, err := e.Ev.Eval(c.Args[0], env)
		if err != nil {
			return err
		}
		if c.Distinct {
			k := v.String()
			if g.distinct[i][k] {
				continue
			}
			g.distinct[i][k] = true
		}
		g.aggs[i].Add(v)
	}
	return nil
}

// execValueGroupBy evaluates GROUP BY <exprs> (or a single implicit
// group when aggregates appear without GROUP BY). With par > 1 the
// rows are split into morsels: each worker builds partial aggregates
// in its own hash table and the partials merge at the end, preserving
// the serial first-encounter group order.
func (e *Engine) execValueGroupBy(sel *ast.Select, items []ast.SelectItem, having ast.Expr, ds *Dataset, outer expr.Env, par int) (*Dataset, error) {
	items = expandStars(items, ds.Cols)
	ac := &aggCollector{}
	rewritten := make([]ast.SelectItem, len(items))
	for i, it := range items {
		// Preserve the display name through the placeholder rewrite.
		rewritten[i] = ast.SelectItem{Expr: rewriteAggs(it.Expr, ac), Alias: itemName(it, i), DimQual: it.DimQual}
	}
	var havingRw ast.Expr
	if having != nil {
		havingRw = rewriteAggs(having, ac)
	}
	var keyExprs []ast.Expr
	if sel.GroupBy != nil {
		keyExprs = sel.GroupBy.Exprs
	}
	// DISTINCT aggregates cannot merge partial states: overlapping
	// values may have been counted by two workers. Run them serially.
	for _, c := range ac.calls {
		if c.Distinct {
			par = 1
			break
		}
	}
	groups := make(map[string]*group)
	var order []string
	n := ds.NumRows()
	rowKey := func(env *rowEnv) (string, error) {
		var sb strings.Builder
		for _, k := range keyExprs {
			v, err := e.Ev.Eval(k, env)
			if err != nil {
				return "", err
			}
			sb.WriteString(v.String())
			sb.WriteByte('\x00')
		}
		return sb.String(), nil
	}
	// When every GROUP BY key and aggregate argument compiles into bulk
	// kernels, each range evaluates them column-at-a-time and only the
	// hash probe stays per-row; values (and so keys, group order and
	// fold order) are identical to the interpreter.
	keyProgs := make([]*vecProg, len(keyExprs))
	argProgs := make([]*vecProg, len(ac.calls))
	vecOK := true
	for i, k := range keyExprs {
		if p := e.vecCompile(k, ds.Cols, true); p != nil && p.validFor(ds.Vecs) {
			keyProgs[i] = p
		} else {
			vecOK = false
		}
	}
	for i, call := range ac.calls {
		if call.Star {
			continue
		}
		if p := e.vecCompile(call.Args[0], ds.Cols, true); p != nil && p.validFor(ds.Vecs) {
			argProgs[i] = p
		} else {
			vecOK = false
		}
	}
	// groupStateBytes is the budget estimate per first-encountered key:
	// a hash map entry plus one accumulator per aggregate call.
	groupStateBytes := int64(64 + 80*len(ac.calls))
	// processRange folds rows [lo, hi) into wm, calling onNew for each
	// first-encountered key; serial marks the cancellation-checking
	// single-threaded caller. The callers charge wm's group state to the
	// statement budget once per range (one morsel, or the whole serial
	// fold) — the hotloopflush discipline, no atomics in the row loop.
	processRange := func(wm map[string]*group, onNew func(string), lo, hi int, env *rowEnv, serial bool) error {
		if vecOK {
			var sb strings.Builder
			keyVecs := make([]bat.Vector, len(keyProgs))
			argVecs := make([]bat.Vector, len(argProgs))
			for blo := lo; blo < hi; blo += vecBatchRows {
				bhi := blo + vecBatchRows
				if bhi > hi {
					bhi = hi
				}
				if serial {
					if err := e.canceled(); err != nil {
						return err
					}
				}
				for i, p := range keyProgs {
					keyVecs[i] = p.eval(ds.Vecs, blo, bhi)
				}
				for i, p := range argProgs {
					if p != nil {
						argVecs[i] = p.eval(ds.Vecs, blo, bhi)
					}
				}
				for r := blo; r < bhi; r++ {
					rel := r - blo
					sb.Reset()
					for _, kv := range keyVecs {
						sb.WriteString(kv.Get(rel).String())
						sb.WriteByte('\x00')
					}
					key := sb.String()
					g, ok := wm[key]
					if !ok {
						g = newGroup(r, ac.calls)
						wm[key] = g
						if onNew != nil {
							onNew(key)
						}
					}
					for i, call := range ac.calls {
						if call.Star {
							g.counts[i]++
							continue
						}
						v := argVecs[i].Get(rel)
						if call.Distinct {
							k := v.String()
							if g.distinct[i][k] {
								continue
							}
							g.distinct[i][k] = true
						}
						g.aggs[i].Add(v)
					}
				}
			}
			return nil
		}
		for r := lo; r < hi; r++ {
			if serial && r&1023 == 0 {
				if err := e.canceled(); err != nil {
					return err
				}
			}
			env.row = r
			key, err := rowKey(env)
			if err != nil {
				return err
			}
			g, ok := wm[key]
			if !ok {
				g = newGroup(r, ac.calls)
				wm[key] = g
				if onNew != nil {
					onNew(key)
				}
			}
			if err := e.accumulate(g, ac.calls, env); err != nil {
				return err
			}
		}
		return nil
	}
	if par > 1 && e.pool != nil && n >= 2*e.pool.Workers() {
		// Partials are indexed by morsel (not worker) and merged in
		// morsel order, so the grouping of float additions is a pure
		// function of (row count, morsel size): results are
		// deterministic run-to-run even though morsel→worker
		// assignment races. Float SUM/AVG may still differ from the
		// serial fold in last-bit summation order on non-integer data.
		morsel := e.pool.MorselFor(n)
		partials := make([]map[string]*group, (n+morsel-1)/morsel)
		err := e.pool.ForEachCtx(e.ctx(), n, morsel, func(m parallelMorsel) error {
			wm := make(map[string]*group)
			partials[m.Lo/morsel] = wm
			env := &rowEnv{d: ds, outer: outer}
			if err := processRange(wm, nil, m.Lo, m.Hi, env, false); err != nil {
				return err
			}
			return chargeBudget(e.budget, int64(len(wm))*groupStateBytes)
		})
		if err != nil {
			return nil, err
		}
		for _, wm := range partials {
			for k, pg := range wm {
				g, ok := groups[k]
				if !ok {
					groups[k] = pg
					continue
				}
				if pg.firstRow < g.firstRow {
					g.firstRow = pg.firstRow
				}
				for i := range g.aggs {
					g.aggs[i].Merge(pg.aggs[i])
					g.counts[i] += pg.counts[i]
				}
			}
		}
		// Serial group order is first encounter scanning rows upward,
		// i.e. ascending minimum row index.
		order = make([]string, 0, len(groups))
		for k := range groups {
			order = append(order, k)
		}
		sort.Slice(order, func(i, j int) bool {
			return groups[order[i]].firstRow < groups[order[j]].firstRow
		})
	} else {
		env := &rowEnv{d: ds, outer: outer}
		if err := processRange(groups, func(key string) { order = append(order, key) }, 0, n, env, true); err != nil {
			return nil, err
		}
		if err := chargeBudget(e.budget, int64(len(groups))*groupStateBytes); err != nil {
			return nil, err
		}
	}
	// Aggregates over zero rows with no GROUP BY still yield one row.
	if len(groups) == 0 && len(keyExprs) == 0 {
		g := &group{firstRow: -1,
			aggs:   make([]*bat.AggState, len(ac.calls)),
			counts: make([]int64, len(ac.calls)),
		}
		for i, c := range ac.calls {
			g.aggs[i] = bat.NewAggState(c.Name)
		}
		groups[""] = g
		order = append(order, "")
	}
	// Build the per-group intermediate: source columns of the first
	// row plus placeholder aggregate columns.
	interCols := append([]Col(nil), ds.Cols...)
	for i, nme := range ac.names {
		interCols = append(interCols, Col{Name: nme, Typ: aggType(ac.calls[i])})
	}
	inter := NewDataset(interCols)
	row := make([]value.Value, len(interCols))
	for _, key := range order {
		g := groups[key]
		for c := range ds.Cols {
			if g.firstRow >= 0 {
				row[c] = ds.Vecs[c].Get(g.firstRow)
			} else {
				row[c] = value.NewNull(ds.Cols[c].Typ)
			}
		}
		for i, c := range ac.calls {
			if c.Star {
				row[len(ds.Cols)+i] = value.NewInt(g.counts[i])
			} else {
				row[len(ds.Cols)+i] = g.aggs[i].Result()
			}
		}
		inter.Append(row)
	}
	if havingRw != nil {
		keep, err := e.filterKeep(havingRw, inter, outer, 1)
		if err != nil {
			return nil, err
		}
		inter = inter.Gather(keep)
	}
	return e.projectWith(rewritten, inter, outer, 1)
}

// --- NEXT() time-series rewriting ---------------------------------------------

// rewriteNextCalls implements the paper's next() builtin (§7.3.2): it
// sorts the source by its dimension columns and materializes, for
// every NEXT(col) occurrence, a shifted companion column holding the
// following row's value (NULL on the last row). Expressions are
// rewritten to reference the companion column.
func (e *Engine) rewriteNextCalls(sel *ast.Select, ds *Dataset, remaining []ast.Expr) (items []ast.SelectItem, where, having ast.Expr, rewrote bool, err error) {
	where = andAll(remaining)
	having = sel.Having
	items = sel.Items
	// Detect NEXT usage.
	used := map[string]bool{}
	scan := func(x ast.Expr) {
		ast.Walk(x, func(n ast.Expr) bool {
			if f, ok := n.(*ast.FuncCall); ok && strings.EqualFold(f.Name, "NEXT") && len(f.Args) == 1 {
				if id, ok := f.Args[0].(*ast.Ident); ok {
					used[strings.ToLower(id.Name)] = true
				}
			}
			return true
		})
	}
	for _, it := range items {
		scan(it.Expr)
	}
	scan(where)
	scan(having)
	if len(used) == 0 {
		return items, where, having, false, nil
	}
	// Order by the dimension columns (insertion order otherwise).
	var dimCols []int
	for i, c := range ds.Cols {
		if c.IsDim {
			dimCols = append(dimCols, i)
		}
	}
	if len(dimCols) > 0 {
		ds.SortBy(dimCols, nil)
	}
	for name := range used {
		ci := ds.ColIndex("", name)
		if ci < 0 {
			return nil, nil, nil, false, fmt.Errorf("next(%s): no such column", name)
		}
		n := ds.NumRows()
		nv := bat.New(ds.Cols[ci].Typ, n)
		for r := 0; r < n; r++ {
			if r+1 < n {
				nv.Append(ds.Vecs[ci].Get(r + 1))
			} else {
				nv.Append(value.NewNull(ds.Cols[ci].Typ))
			}
		}
		ds.Cols = append(ds.Cols, Col{Name: "__next_" + name, Typ: ds.Cols[ci].Typ})
		ds.Vecs = append(ds.Vecs, nv)
	}
	rw := func(x ast.Expr) ast.Expr {
		return transformExpr(x, func(n ast.Expr) ast.Expr {
			if f, ok := n.(*ast.FuncCall); ok && strings.EqualFold(f.Name, "NEXT") && len(f.Args) == 1 {
				if id, ok := f.Args[0].(*ast.Ident); ok {
					return &ast.Ident{Name: "__next_" + strings.ToLower(id.Name)}
				}
			}
			return nil
		})
	}
	outItems := make([]ast.SelectItem, len(items))
	for i, it := range items {
		outItems[i] = ast.SelectItem{Expr: rw(it.Expr), Alias: it.Alias, DimQual: it.DimQual}
	}
	return outItems, rw(where), rw(having), true, nil
}

// --- dataset → array ----------------------------------------------------------

// datasetToArray builds an array from a query result. When colDefs is
// non-nil it declares the target schema (function RETURNS ARRAY);
// otherwise dimension-qualified columns become dimensions with bounds
// from the minimal bounding box of the data (§4.1).
func (e *Engine) datasetToArray(ds *Dataset, colDefs []ast.ColDef, name string) (*array.Array, error) {
	var sch *array.Schema
	if colDefs != nil {
		s, err := e.compileSchema(colDefs, &baseEnv{})
		if err != nil {
			return nil, err
		}
		sch = s
	} else {
		s := &array.Schema{}
		for i, c := range ds.Cols {
			if c.IsDim {
				s.Dims = append(s.Dims, array.Dimension{
					Name: c.Name, Typ: dimType(c.Typ),
					Start: array.UnboundedLow, End: array.UnboundedHigh, Step: 1,
				})
			} else {
				s.Attrs = append(s.Attrs, array.Attr{Name: c.Name, Typ: ds.Cols[i].Typ, Default: value.NewNull(ds.Cols[i].Typ)})
			}
		}
		if len(s.Dims) == 0 {
			return nil, fmt.Errorf("result has no dimension-qualified columns; cannot coerce to an array")
		}
		sch = s
	}
	st, err := e.newStore(name, *sch)
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: name, Schema: *sch, Store: st}
	if err := e.fillArrayFromDataset(a, ds); err != nil {
		return nil, err
	}
	return a, nil
}

func dimType(t value.Type) value.Type {
	if t == value.Timestamp {
		return value.Timestamp
	}
	return value.Int
}

// fillArrayFromDataset writes query-result rows into an array's cells.
// Mapping rules (§3.3, §4.3):
//   - dimension-qualified columns pair with the array's dimensions in
//     order; remaining columns pair with attributes positionally;
//   - with no dimension columns and ndims+nattrs columns, the leading
//     columns are coordinates (INSERT INTO tmp SELECT x, y, AVG(v)...);
//   - with only attribute columns, cells fill in row-major dimension
//     order ("the array is filled in the order of the dimension
//     bounds").
func (e *Engine) fillArrayFromDataset(a *array.Array, ds *Dataset) error {
	nd, na := len(a.Schema.Dims), len(a.Schema.Attrs)
	var dimCols, attrCols []int
	for i, c := range ds.Cols {
		if c.IsDim {
			dimCols = append(dimCols, i)
		} else {
			attrCols = append(attrCols, i)
		}
	}
	n := ds.NumRows()
	switch {
	case len(dimCols) == nd && nd > 0:
		// Dimension-qualified mapping.
	case len(dimCols) == 0 && ds.NumCols() == nd+na:
		dimCols = nil
		for i := 0; i < nd; i++ {
			dimCols = append(dimCols, i)
		}
		attrCols = nil
		for i := nd; i < nd+na; i++ {
			attrCols = append(attrCols, i)
		}
	case len(dimCols) == 0 && ds.NumCols() == na:
		// Fill in row-major dimension order.
		lo, hi, err := a.BoundingBox()
		if err != nil {
			return fmt.Errorf("array %s: cannot fill an unbounded empty array positionally", a.Name)
		}
		coords := append([]int64(nil), lo...)
		for r := 0; r < n; r++ {
			for ai := 0; ai < na; ai++ {
				v := ds.Vecs[attrCols[ai]].Get(r)
				if a.ValidCoords(coords) {
					if err := a.Set(coords, ai, v); err != nil {
						return err
					}
				}
			}
			// Advance row-major (last dimension fastest).
			for d := nd - 1; d >= 0; d-- {
				step := a.Schema.Dims[d].Step
				if step <= 0 {
					step = 1
				}
				coords[d] += step
				if coords[d] <= hi[d] {
					break
				}
				coords[d] = lo[d]
			}
		}
		return nil
	default:
		return fmt.Errorf("array %s: cannot map %d columns (%d dim-qualified) onto %d dims + %d attrs",
			a.Name, ds.NumCols(), len(dimCols), nd, na)
	}
	if len(attrCols) != na {
		return fmt.Errorf("array %s: %d attribute columns for %d attributes", a.Name, len(attrCols), na)
	}
	coords := make([]int64, nd)
	for r := 0; r < n; r++ {
		valid := true
		for d, ci := range dimCols {
			v := ds.Vecs[ci].Get(r)
			if v.Null {
				valid = false
				break
			}
			coords[d] = v.AsInt()
		}
		if !valid || !a.ValidCoords(coords) {
			continue
		}
		for ai, ci := range attrCols {
			v := ds.Vecs[ci].Get(r)
			cv, err := value.Coerce(v, a.Schema.Attrs[ai].Typ)
			if err != nil {
				cv = value.NewNull(a.Schema.Attrs[ai].Typ)
			}
			if err := a.Set(coords, ai, cv); err != nil {
				return err
			}
		}
	}
	return nil
}
