package exec

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// callPSM interprets a white-box function body (§6.1): a sequence of
// DECLARE / SET / IF / RETURN statements over SciQL expressions, with
// array-valued parameters in scope for subqueries and slicing.
func (e *Engine) callPSM(f *catalog.Function, args []value.Value) (value.Value, error) {
	def := f.Def
	env := &expr.MapEnv{Vars: make(map[string]value.Value, len(def.Params)+4)}
	for i, prm := range def.Params {
		env.Vars[strings.ToLower(prm.Name)] = args[i]
	}
	v, returned, err := e.runPSM(def.Body, env, def)
	if err != nil {
		return value.Value{}, fmt.Errorf("function %s: %w", f.Name, err)
	}
	if !returned {
		return value.NewNull(def.Returns.Type), nil
	}
	return v, nil
}

// runPSM executes a statement list; returned reports whether a RETURN
// fired.
func (e *Engine) runPSM(body []ast.PSMStmt, env *expr.MapEnv, def *ast.CreateFunction) (value.Value, bool, error) {
	for _, s := range body {
		switch st := s.(type) {
		case *ast.Declare:
			for _, n := range st.Names {
				env.Vars[strings.ToLower(n)] = value.NewNull(st.Type)
			}
		case *ast.SetVar:
			v, err := e.Ev.Eval(st.Value, env)
			if err != nil {
				return value.Value{}, false, err
			}
			env.Vars[strings.ToLower(st.Name)] = v
		case *ast.If:
			ok, err := e.Ev.EvalBool(st.Cond, env)
			if err != nil {
				return value.Value{}, false, err
			}
			branch := st.Then
			if !ok {
				branch = st.Else
			}
			v, returned, err := e.runPSM(branch, env, def)
			if err != nil || returned {
				return v, returned, err
			}
		case *ast.Return:
			if st.Select != nil {
				ds, err := e.execSelect(st.Select, env)
				if err != nil {
					return value.Value{}, false, err
				}
				if def.Returns.Type == value.Array {
					arr, err := e.datasetToArray(ds, def.Returns.Array, "result")
					if err != nil {
						return value.Value{}, false, err
					}
					return value.NewArray(arr), true, nil
				}
				// Scalar RETURN SELECT: first value of the first row.
				if ds.NumRows() == 0 || ds.NumCols() == 0 {
					return value.NewNull(def.Returns.Type), true, nil
				}
				return ds.Get(0, 0), true, nil
			}
			v, err := e.Ev.Eval(st.Expr, env)
			if err != nil {
				return value.Value{}, false, err
			}
			if def.Returns.Type != value.Array && def.Returns.Type != value.Unknown {
				cv, err := value.Coerce(v, def.Returns.Type)
				if err != nil {
					return value.Value{}, false, err
				}
				v = cv
			}
			return v, true, nil
		default:
			return value.Value{}, false, fmt.Errorf("unsupported PSM statement %T", s)
		}
	}
	return value.Value{}, false, nil
}
