package exec

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/array"
	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// source describes one resolved FROM item backed by an array (tables
// have arr == nil). Tiling and slicing consult it.
type source struct {
	name  string
	alias string
	arr   *array.Array
	// sels restricts the scan when the FROM item was sliced
	// (FROM vmatrix[0:3][0:3]); nil means the full array.
	sels []dimSel
}

func (s *source) qual() string {
	if s.alias != "" {
		return s.alias
	}
	return s.name
}

// execSelect runs a query expression including UNION chains.
func (e *Engine) execSelect(sel *ast.Select, outer expr.Env) (*Dataset, error) {
	left, err := e.execSelectCore(sel, outer)
	if err != nil {
		return nil, err
	}
	if sel.SetRight == nil {
		return left, nil
	}
	right, err := e.execSelect(sel.SetRight, outer)
	if err != nil {
		return nil, err
	}
	if left.NumCols() != right.NumCols() {
		return nil, fmt.Errorf("UNION operands have %d and %d columns", left.NumCols(), right.NumCols())
	}
	for r := 0; r < right.NumRows(); r++ {
		left.Append(right.Row(r))
	}
	if sel.SetOp == "UNION" {
		return left.dedupe(), nil
	}
	return left, nil
}

func (e *Engine) execSelectCore(sel *ast.Select, outer expr.Env) (*Dataset, error) {
	// FROM-less or vacuous-FROM selects evaluate the target list once
	// under the outer environment (point array refs, literals).
	if len(sel.From) == 0 || e.fromIsVacuous(sel, outer) {
		return e.projectRowless(sel, outer)
	}
	// Streamable scan→filter→project pipelines run fused per scan
	// chunk on the materializing path too, when there is something to
	// gain: compiled kernel batches, or LIMIT pushed into the scan.
	if be, isBase := outer.(*baseEnv); isBase {
		if ds, handled, err := e.fusedScanSelect(sel, be); handled || err != nil {
			return ds, err
		}
	}
	// The planner gates the morsel-driven path: dec.par is the worker
	// count when the optimized plan shape and the expressions qualify,
	// 1 (serial interpreter) otherwise. The decision also carries the
	// optimizer's pruned scan projections, applied inside buildFrom.
	dec := e.selectDecision(sel)
	par := dec.par
	conjs := splitConjuncts(sel.Where)
	pf := e.prof
	var t0 time.Time
	if pf != nil {
		t0 = time.Now()
	}
	ds, sources, remaining, err := e.buildFrom(sel.From, conjs, outer, dec)
	if err != nil {
		return nil, err
	}
	if pf != nil {
		pf.Scan.AddNanos(time.Since(t0))
		pf.Scan.RowsOut.Add(int64(ds.NumRows()))
		pf.Scan.Chunks.Add(1)
		pf.Scan.Cells.Add(int64(ds.NumRows()))
		pf.Scan.RowBatches.Add(1)
		if len(sel.From) > 1 {
			// buildFrom materializes the join product in the same pass.
			pf.Join.RowsOut.Add(int64(ds.NumRows()))
			pf.Join.RowBatches.Add(1)
		}
	}
	// Structural (tiling) grouping takes its own path.
	if sel.GroupBy != nil && len(sel.GroupBy.Tiles) > 0 {
		if pf == nil {
			return e.execTiling(sel, ds, sources, remaining, outer, par)
		}
		in := ds.NumRows()
		t0 = time.Now()
		out, err := e.execTiling(sel, ds, sources, remaining, outer, par)
		if err != nil {
			return nil, err
		}
		pf.Tiled.AddNanos(time.Since(t0))
		pf.Tiled.RowsIn.Add(int64(in))
		pf.Tiled.RowsOut.Add(int64(out.NumRows()))
		pf.Tiled.RowBatches.Add(1)
		return out, nil
	}
	// NEXT(col) rewriting requires an ordered view of the source.
	items, where, having, rewrote, err := e.rewriteNextCalls(sel, ds, remaining)
	if err != nil {
		return nil, err
	}
	_ = rewrote
	// Row filter.
	if where != nil {
		if pf != nil {
			t0 = time.Now()
			pf.Filter.RowsIn.Add(int64(ds.NumRows()))
		}
		keep, err := e.filterKeep(where, ds, outer, par)
		if err != nil {
			return nil, err
		}
		ds = ds.Gather(keep)
		if pf != nil {
			pf.Filter.AddNanos(time.Since(t0))
			pf.Filter.RowsOut.Add(int64(ds.NumRows()))
			pf.Filter.RowBatches.Add(1)
		}
	}
	// Value grouping / plain aggregation.
	hasAgg := false
	for _, it := range items {
		if it.Expr != nil && ast.HasAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}
	if having != nil && ast.HasAggregate(having) {
		hasAgg = true
	}
	var out *Dataset
	sorted := false
	if (sel.GroupBy != nil && len(sel.GroupBy.Exprs) > 0) || hasAgg {
		if pf != nil {
			t0 = time.Now()
			pf.Aggregate.RowsIn.Add(int64(ds.NumRows()))
		}
		out, err = e.execValueGroupBy(sel, items, having, ds, outer, par)
		if err != nil {
			return nil, err
		}
		if pf != nil {
			pf.Aggregate.AddNanos(time.Since(t0))
			pf.Aggregate.RowsOut.Add(int64(out.NumRows()))
			pf.Aggregate.RowBatches.Add(1)
		}
	} else {
		// ORDER BY may name source columns that the projection drops;
		// sort the source first when every key resolves there.
		if len(sel.OrderBy) > 0 {
			if cols, desc, ok := resolveOrderCols(sel.OrderBy, ds); ok {
				if pf != nil {
					t0 = time.Now()
				}
				ds.SortBy(cols, desc)
				if pf != nil {
					pf.Sort.AddNanos(time.Since(t0))
					pf.Sort.RowsIn.Add(int64(ds.NumRows()))
					pf.Sort.RowsOut.Add(int64(ds.NumRows()))
					pf.Sort.RowBatches.Add(1)
				}
				sorted = true
			}
		}
		if pf != nil {
			t0 = time.Now()
			pf.Project.RowsIn.Add(int64(ds.NumRows()))
		}
		out, err = e.projectWith(items, ds, outer, par)
		if err != nil {
			return nil, err
		}
		if pf != nil {
			pf.Project.AddNanos(time.Since(t0))
			pf.Project.RowsOut.Add(int64(out.NumRows()))
			pf.Project.RowBatches.Add(1)
		}
		// HAVING without grouping post-filters (the paper's gap query).
		if having != nil {
			if pf != nil {
				t0 = time.Now()
				pf.Having.RowsIn.Add(int64(out.NumRows()))
			}
			keep, err := e.filterKeep(having, ds, outer, par)
			if err != nil {
				return nil, err
			}
			out = out.Gather(keep)
			if pf != nil {
				pf.Having.AddNanos(time.Since(t0))
				pf.Having.RowsOut.Add(int64(out.NumRows()))
				pf.Having.RowBatches.Add(1)
			}
		}
	}
	return e.finishSelectSorted(sel, out, outer, sorted)
}

// fusedScanSelect executes a streamable SELECT through the chunked
// scan pipeline (filter + projection per scan batch) and materializes
// the batches. handled is false when the statement's shape does not
// qualify, or when the fused path has nothing to offer over the
// generic scan (no compiled kernels and no LIMIT to push down) —
// results are byte-identical either way, by the stream/materialize
// identity contract.
func (e *Engine) fusedScanSelect(sel *ast.Select, env *baseEnv) (*Dataset, bool, error) {
	// The "nothing to offer" verdict is stable per statement (kernel
	// eligibility is schema-dependent, LIMIT presence is syntactic), so
	// it memoizes: repeated executions of a non-fusable shape skip the
	// stream analysis entirely. Invalidated with the plan cache.
	ver := e.cat().SchemaVersion()
	if sel.Limit == nil {
		e.vecMu.Lock()
		skipVer, skip := e.fusedSkip[sel]
		e.vecMu.Unlock()
		// Verdicts are schema-dependent; one stamped with another
		// catalog version is stale and re-analyzes.
		if skip && skipVer == ver {
			return nil, false, nil
		}
	}
	sp, ok, err := e.compileStream(sel, env)
	if err != nil || !ok {
		return nil, false, err
	}
	if sp.vec == nil && sp.limit < 0 {
		e.vecMu.Lock()
		if e.fusedSkip == nil || len(e.fusedSkip) >= planCacheMax {
			e.fusedSkip = make(map[*ast.Select]int64)
		}
		e.fusedSkip[sel] = ver
		e.vecMu.Unlock()
		return nil, false, nil
	}
	cur := e.streamCursorFor(e.ctx(), sp)
	ds, err := cur.Materialize()
	if err != nil {
		return nil, true, err
	}
	return ds, true, nil
}

// resolveOrderCols maps ORDER BY keys onto dataset columns (by name or
// 1-based ordinal); ok is false when any key does not resolve.
func resolveOrderCols(items []ast.OrderItem, ds *Dataset) (cols []int, desc []bool, ok bool) {
	for _, oi := range items {
		ci := -1
		if id, isID := oi.Expr.(*ast.Ident); isID {
			ci = ds.ColIndex(id.Table, id.Name)
		}
		if lit, isLit := oi.Expr.(*ast.Literal); isLit && lit.Val.Typ == value.Int {
			pos := int(lit.Val.I) - 1
			if pos >= 0 && pos < ds.NumCols() {
				ci = pos
			}
		}
		if ci < 0 {
			return nil, nil, false
		}
		cols = append(cols, ci)
		desc = append(desc, oi.Desc)
	}
	return cols, desc, true
}

// finishSelect applies DISTINCT, ORDER BY and LIMIT.
func (e *Engine) finishSelect(sel *ast.Select, out *Dataset, outer expr.Env) (*Dataset, error) {
	return e.finishSelectSorted(sel, out, outer, false)
}

func (e *Engine) finishSelectSorted(sel *ast.Select, out *Dataset, outer expr.Env, sorted bool) (*Dataset, error) {
	pf := e.prof
	var t0 time.Time
	if sel.Distinct {
		if pf != nil {
			t0 = time.Now()
			pf.Distinct.RowsIn.Add(int64(out.NumRows()))
		}
		out = out.dedupe()
		if pf != nil {
			pf.Distinct.AddNanos(time.Since(t0))
			pf.Distinct.RowsOut.Add(int64(out.NumRows()))
			pf.Distinct.RowBatches.Add(1)
		}
	}
	if len(sel.OrderBy) > 0 && !sorted {
		cols, desc, ok := resolveOrderCols(sel.OrderBy, out)
		if !ok {
			return nil, fmt.Errorf("ORDER BY expression must name an output column")
		}
		if pf != nil {
			t0 = time.Now()
		}
		out.SortBy(cols, desc)
		if pf != nil {
			pf.Sort.AddNanos(time.Since(t0))
			pf.Sort.RowsIn.Add(int64(out.NumRows()))
			pf.Sort.RowsOut.Add(int64(out.NumRows()))
			pf.Sort.RowBatches.Add(1)
		}
	}
	if sel.Limit != nil {
		lv, err := e.Ev.Eval(sel.Limit, outer)
		if err != nil {
			return nil, err
		}
		n := int(lv.AsInt())
		if pf != nil {
			pf.Limit.RowsIn.Add(int64(out.NumRows()))
		}
		if n < out.NumRows() {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			out = out.Gather(idx)
		}
		if pf != nil {
			pf.Limit.RowsOut.Add(int64(out.NumRows()))
			pf.Limit.RowBatches.Add(1)
		}
	}
	return out, nil
}

// fromIsVacuous reports whether the FROM arrays are referenced only
// through explicit array references (d[x/2][y].v), in which case the
// paper's examples intend the free dimension variables to bind to the
// *outer* statement (UPDATE target cells) and no scan is needed.
func (e *Engine) fromIsVacuous(sel *ast.Select, outer expr.Env) bool {
	if sel.Where != nil || sel.GroupBy != nil || sel.Having != nil || sel.Distinct ||
		len(sel.OrderBy) > 0 || sel.Limit != nil {
		return false
	}
	names := map[string]bool{}
	for _, fi := range sel.From {
		tr, ok := fi.(*ast.TableRef)
		if !ok || tr.Subquery != nil || tr.Alias != "" || len(tr.Indexers) > 0 {
			return false
		}
		if _, ok := e.cat().Array(tr.Name); !ok {
			if v, ok2 := outer.Lookup("", tr.Name); !ok2 || v.Typ != value.Array {
				return false
			}
		}
		names[strings.ToLower(tr.Name)] = true
	}
	usedAsBase := map[string]bool{}
	for _, it := range sel.Items {
		if _, ok := it.Expr.(*ast.Star); ok {
			return false
		}
		if ast.HasAggregate(it.Expr) {
			return false
		}
		if exprMentionsSourceOutsideRef(it.Expr, names) {
			return false
		}
		ast.Walk(it.Expr, func(n ast.Expr) bool {
			if ref, ok := n.(*ast.ArrayRef); ok {
				if id, ok2 := ref.Base.(*ast.Ident); ok2 {
					usedAsBase[strings.ToLower(id.Name)] = true
				}
			}
			return true
		})
	}
	// Every FROM array must actually be addressed through an ArrayRef;
	// otherwise this is a genuine scan.
	for n := range names {
		if !usedAsBase[n] {
			return false
		}
	}
	return true
}

// exprMentionsSourceOutsideRef reports whether any bare identifier
// names or qualifies by one of the FROM sources outside an ArrayRef
// base position.
func exprMentionsSourceOutsideRef(x ast.Expr, names map[string]bool) bool {
	bad := false
	var walk func(ast.Expr)
	walk = func(n ast.Expr) {
		if n == nil || bad {
			return
		}
		switch t := n.(type) {
		case *ast.Ident:
			if names[strings.ToLower(t.Name)] || names[strings.ToLower(t.Table)] {
				bad = true
			}
		case *ast.ArrayRef:
			// The base ident is the sanctioned mention; indexer
			// expressions and nested bases are still checked.
			if _, ok := t.Base.(*ast.Ident); !ok {
				walk(t.Base)
			}
			for _, ix := range t.Indexers {
				walk(ix.Point)
				walk(ix.Start)
				walk(ix.Stop)
				walk(ix.Step)
			}
		case *ast.Unary:
			walk(t.X)
		case *ast.Binary:
			walk(t.L)
			walk(t.R)
		case *ast.FuncCall:
			for _, a := range t.Args {
				walk(a)
			}
		case *ast.Case:
			walk(t.Operand)
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(t.Else)
		case *ast.Cast:
			walk(t.X)
		case *ast.IsNull:
			walk(t.X)
		case *ast.Between:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
		case *ast.InList:
			walk(t.X)
			for _, el := range t.Elems {
				walk(el)
			}
		case *ast.Subquery:
			bad = true // conservatively scan
		case *ast.ExprList:
			for _, el := range t.Elems {
				walk(el)
			}
		}
	}
	walk(x)
	return bad
}

// projectRowless evaluates the target list once under the outer
// environment; single array-valued results expand into a dataset so
// SELECT matrix[0:2][0:2].v lists cells.
func (e *Engine) projectRowless(sel *ast.Select, outer expr.Env) (*Dataset, error) {
	vals := make([]value.Value, 0, len(sel.Items))
	names := make([]string, 0, len(sel.Items))
	dims := make([]bool, 0, len(sel.Items))
	for i, it := range sel.Items {
		if it.Expr == nil {
			return nil, fmt.Errorf("empty select item")
		}
		if lit, ok := it.Expr.(*ast.ArrayLit); ok {
			arr, err := e.buildArrayLit(lit, outer)
			if err != nil {
				return nil, err
			}
			vals = append(vals, value.NewArray(arr))
			names = append(names, itemName(it, i))
			dims = append(dims, it.DimQual)
			continue
		}
		v, err := e.Ev.Eval(it.Expr, outer)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		names = append(names, itemName(it, i))
		dims = append(dims, it.DimQual)
	}
	// A single array value expands into its cell listing.
	if len(vals) == 1 && vals[0].Typ == value.Array && !vals[0].Null {
		if a, ok := vals[0].A.(*array.Array); ok {
			return e.scanArray(a, a.Name, nil, nil)
		}
	}
	cols := make([]Col, len(vals))
	for i := range vals {
		cols[i] = Col{Name: names[i], Typ: vals[i].Typ, IsDim: dims[i]}
	}
	out := NewDataset(cols)
	out.Append(vals)
	return out, nil
}

// buildArrayLit materializes SELECT ARRAY(...) literals with implicit
// integer dimensions (§4.1).
func (e *Engine) buildArrayLit(lit *ast.ArrayLit, env expr.Env) (*array.Array, error) {
	rows := len(lit.Rows)
	colsN := 0
	for _, r := range lit.Rows {
		if len(r) > colsN {
			colsN = len(r)
		}
	}
	var sch array.Schema
	if rows == 1 {
		sch.Dims = []array.Dimension{{Name: "x", Typ: value.Int, Start: 0, End: int64(colsN), Step: 1}}
	} else {
		sch.Dims = []array.Dimension{
			{Name: "x", Typ: value.Int, Start: 0, End: int64(rows), Step: 1},
			{Name: "y", Typ: value.Int, Start: 0, End: int64(colsN), Step: 1},
		}
	}
	sch.Attrs = []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}}
	st, err := e.newStore("array_literal", sch)
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: "array", Schema: sch, Store: st}
	for ri, row := range lit.Rows {
		for ci, cell := range row {
			v, err := e.Ev.Eval(cell, env)
			if err != nil {
				return nil, err
			}
			coords := []int64{int64(ci)}
			if rows > 1 {
				coords = []int64{int64(ri), int64(ci)}
			}
			if err := st.Set(coords, 0, v); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

func itemName(it ast.SelectItem, pos int) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch x := it.Expr.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.FuncCall:
		return strings.ToLower(x.Name)
	case *ast.ArrayRef:
		if x.Attr != "" {
			return x.Attr
		}
		if id, ok := x.Base.(*ast.Ident); ok {
			return id.Name
		}
	}
	return fmt.Sprintf("col%d", pos+1)
}

// --- FROM ------------------------------------------------------------------

// splitConjuncts flattens an AND tree.
func splitConjuncts(where ast.Expr) []ast.Expr {
	if where == nil {
		return nil
	}
	if b, ok := where.(*ast.Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []ast.Expr{where}
}

// buildFrom scans and joins the FROM items, pushing dimension
// equality/range conjuncts into array scans (the "symbolic reasoning
// over the dimensions" of §2.3). It returns the joined dataset, the
// source descriptors, and the conjuncts not fully consumed.
func (e *Engine) buildFrom(items []ast.FromItem, conjs []ast.Expr, outer expr.Env, dec planDecision) (*Dataset, []*source, []ast.Expr, error) {
	var ds *Dataset
	var sources []*source
	consumed := make([]bool, len(conjs))
	// With a single source, unqualified WHERE identifiers bind to it,
	// so bare conjuncts are trusted for zone-map skipping; join shapes
	// trust only qualified ones.
	bare := len(items) == 1
	for _, fi := range items {
		d, srcs, err := e.buildFromItem(fi, conjs, consumed, outer, dec, bare)
		if err != nil {
			return nil, nil, nil, err
		}
		sources = append(sources, srcs...)
		if ds == nil {
			ds = d
		} else {
			ds = crossJoin(ds, d)
		}
	}
	var remaining []ast.Expr
	for i, c := range conjs {
		if !consumed[i] {
			remaining = append(remaining, c)
		}
	}
	return ds, sources, remaining, nil
}

func (e *Engine) buildFromItem(fi ast.FromItem, conjs []ast.Expr, consumed []bool, outer expr.Env, dec planDecision, bare bool) (*Dataset, []*source, error) {
	switch t := fi.(type) {
	case *ast.TableRef:
		return e.buildTableRef(t, conjs, consumed, outer, dec, bare)
	case *ast.Join:
		left, ls, err := e.buildFromItem(t.Left, conjs, consumed, outer, dec, false)
		if err != nil {
			return nil, nil, err
		}
		right, rs, err := e.buildFromItem(t.Right, conjs, consumed, outer, dec, false)
		if err != nil {
			return nil, nil, err
		}
		joined, err := e.join(left, right, t, outer, dec.par)
		if err != nil {
			return nil, nil, err
		}
		return joined, append(ls, rs...), nil
	}
	return nil, nil, fmt.Errorf("unsupported FROM item %T", fi)
}

func (e *Engine) buildTableRef(t *ast.TableRef, conjs []ast.Expr, consumed []bool, outer expr.Env, dec planDecision, bare bool) (*Dataset, []*source, error) {
	if t.Subquery != nil {
		ds, err := e.execSelect(t.Subquery, outer)
		if err != nil {
			return nil, nil, err
		}
		qual := t.Alias
		for i := range ds.Cols {
			ds.Cols[i].Qual = qual
		}
		return ds, []*source{{name: t.Alias, alias: t.Alias}}, nil
	}
	// Array from the environment (PSM array parameters) or catalog.
	var arr *array.Array
	fromEnv := false
	if v, ok := outer.Lookup("", t.Name); ok && v.Typ == value.Array && !v.Null {
		arr, _ = v.A.(*array.Array)
		fromEnv = arr != nil
	}
	if arr == nil {
		if a, ok := e.cat().Array(t.Name); ok {
			arr = a
		}
	}
	if arr != nil {
		src := &source{name: t.Name, alias: t.Alias, arr: arr}
		var sels []dimSel
		if len(t.Indexers) > 0 {
			s, err := e.resolveIndexers(arr, t.Indexers, outer)
			if err != nil {
				return nil, nil, err
			}
			sels = s
		}
		src.sels = sels
		restrict := e.pushdownDims(arr, src.qual(), conjs, consumed, sels, outer)
		// The pruned projection was planned against the catalog schema;
		// an environment-bound array shadowing a catalog name may carry
		// attributes the planner never saw, so it scans unpruned.
		var attrs []int
		if !fromEnv {
			attrs = dec.scanAttrs(arr, t.Name)
		}
		// Zone-map skipping compiles against the conjuncts not consumed
		// by dimension pushdown; they stay in the residual filter, so
		// skipping only removes chunks that could not contribute rows.
		var resid []ast.Expr
		for i, c := range conjs {
			if !consumed[i] {
				resid = append(resid, c)
			}
		}
		sk := e.buildChunkSkipper(arr, src.qual(), effectiveSels(arr, sels, restrict), resid, bare)
		ds, err := e.scanArrayPruned(arr, src.qual(), sels, restrict, attrs, dec.par, sk)
		if err != nil {
			return nil, nil, err
		}
		return ds, []*source{src}, nil
	}
	if tbl, ok := e.cat().Table(t.Name); ok {
		qual := t.Alias
		if qual == "" {
			qual = t.Name
		}
		cols := make([]Col, len(tbl.Cols))
		vecs := make([]bat.Vector, len(tbl.Cols))
		for i, c := range tbl.Cols {
			cols[i] = Col{Name: c.Name, Qual: qual, Typ: c.Typ}
			vecs[i] = tbl.Vecs[i].Clone()
		}
		return &Dataset{Cols: cols, Vecs: vecs}, []*source{{name: t.Name, alias: t.Alias}}, nil
	}
	return nil, nil, fmt.Errorf("no such table or array %s", t.Name)
}

// pushdownDims extracts per-dimension point/range restrictions from
// WHERE conjuncts of the form <dim> op <outer-constant>, marking the
// consumed conjuncts. Classification and consumption policy are
// plan.AnalyzeDimConjuncts — the same implementation the planner uses
// for EXPLAIN annotations — so the plan can never drift from what the
// scan applies. The executor's ConstEval additionally handles host
// parameters and outer-bound constants the planner cannot evaluate,
// and sels marks dimensions already restricted by FROM-clause slicing
// (left to the filter, matching the planner's decision).
func (e *Engine) pushdownDims(a *array.Array, qual string, conjs []ast.Expr, consumed []bool, sels []dimSel, outer expr.Env) map[int]dimSel {
	resolve := func(id *ast.Ident) int {
		if id.Table != "" && !strings.EqualFold(id.Table, qual) {
			return -1
		}
		return dimIndexFold(a, id.Name)
	}
	eval := func(x ast.Expr) (int64, bool) {
		if !e.constUnderOuter(x, a, qual, outer) {
			return 0, false
		}
		v, err := e.Ev.Eval(x, outer)
		// Only exactly integral values may become scan bounds:
		// truncating a float here would move the bound and drop rows.
		if err != nil || v.Null || (v.Typ != value.Int && v.Typ != value.Timestamp) {
			return 0, false
		}
		return v.AsInt(), true
	}
	blocked := func(di int) bool { return sels != nil && !sels[di].full }
	restrict, cons := plan.AnalyzeDimConjuncts(conjs, resolve, eval, blocked)
	out := make(map[int]dimSel)
	for di, r := range restrict {
		// Predicate-derived restrictions carry no stride (step 1): a
		// WHERE bound is a pure range, and anchoring the dimension's
		// grid step at an arbitrary bound would reject on-grid cells.
		switch {
		case r.Point:
			out[di] = dimSel{point: true, val: r.Val, step: 1}
		case r.HasLo || r.HasHi:
			lo, hi := r.Lo, r.Hi
			if !r.HasLo || !r.HasHi {
				blo, bhi, err := a.BoundingBox()
				if err != nil {
					// No bounding box to close the open end: leave the
					// conjuncts in the filter instead of restricting.
					for _, rc := range r.RangeConjs {
						for i, c := range conjs {
							if c == rc {
								cons[i] = false
							}
						}
					}
					continue
				}
				if !r.HasLo {
					lo = blo[di]
				}
				if !r.HasHi {
					hi = bhi[di] + 1
				}
			}
			out[di] = dimSel{lo: lo, hi: hi, step: 1}
		}
	}
	for i := range conjs {
		if cons[i] {
			consumed[i] = true
		}
	}
	return out
}

func dimIndexFold(a *array.Array, name string) int {
	for i, d := range a.Schema.Dims {
		if strings.EqualFold(d.Name, name) {
			return i
		}
	}
	return -1
}

// constUnderOuter reports whether x can be evaluated with only the
// outer environment (no references to the scanned array's columns).
func (e *Engine) constUnderOuter(x ast.Expr, a *array.Array, qual string, outer expr.Env) bool {
	ok := true
	ast.Walk(x, func(n ast.Expr) bool {
		switch t := n.(type) {
		case *ast.Ident:
			if t.Table != "" && strings.EqualFold(t.Table, qual) {
				ok = false
				return false
			}
			if t.Table == "" {
				// A bare name that belongs to this array's schema and
				// is not outer-bound refers to the scan.
				if _, bound := outer.Lookup("", t.Name); !bound {
					if dimIndexFold(a, t.Name) >= 0 || attrIndexFold(a, t.Name) >= 0 {
						ok = false
						return false
					}
				}
			} else {
				// Qualified by something else: must resolve outer.
				if _, bound := outer.Lookup(t.Table, t.Name); !bound {
					ok = false
					return false
				}
			}
		case *ast.Subquery:
			ok = false
			return false
		}
		return true
	})
	return ok
}

func attrIndexFold(a *array.Array, name string) int {
	for i, at := range a.Schema.Attrs {
		if strings.EqualFold(at.Name, name) {
			return i
		}
	}
	return -1
}

// scanCols builds the dataset column header of an array scan: the
// dimension columns (IsDim) followed by the attribute columns.
func scanCols(a *array.Array, qual string) []Col {
	return scanColsPruned(a, qual, nil)
}

// scanColsPruned is scanCols restricted to the attribute positions in
// attrs (nil keeps every attribute; an empty slice keeps none — a
// dimensions-only scan).
func scanColsPruned(a *array.Array, qual string, attrs []int) []Col {
	nd := len(a.Schema.Dims)
	attrs = array.AllAttrs(attrs, len(a.Schema.Attrs))
	cols := make([]Col, 0, nd+len(attrs))
	for _, d := range a.Schema.Dims {
		cols = append(cols, Col{Name: d.Name, Qual: qual, Typ: d.Typ, IsDim: true})
	}
	for _, ai := range attrs {
		at := a.Schema.Attrs[ai]
		cols = append(cols, Col{Name: at.Name, Qual: qual, Typ: at.Typ})
	}
	return cols
}

// effectiveSels intersects FROM slicing with pushed-down restrictions
// into one per-dimension constraint vector.
func effectiveSels(a *array.Array, sels []dimSel, restrict map[int]dimSel) []dimSel {
	eff := make([]dimSel, len(a.Schema.Dims))
	for i := range eff {
		eff[i] = dimSel{full: true}
		if sels != nil {
			eff[i] = sels[i]
		}
		if r, ok := restrict[i]; ok {
			eff[i] = intersectSel(eff[i], r)
		}
	}
	return eff
}

// effMatch reports whether coords satisfy every effective constraint.
func effMatch(eff []dimSel, coords []int64) bool {
	for i := range eff {
		if !selContains(eff[i], coords[i]) {
			return false
		}
	}
	return true
}

// selContains reports whether one dimension selection admits index
// value v: a point admits only its value; a full selection ([*] or an
// unindexed dimension) never rejects; ranges are half-open and
// stride-aware — [lo:hi:step] admits lo, lo+step, ... just like the
// same slice in expression position. Sparse (order-only) dimensions
// carry no grid, so their ranges admit any in-range coordinate.
func selContains(s dimSel, v int64) bool {
	if s.point {
		return v == s.val
	}
	if s.full {
		return true
	}
	if v < s.lo || v >= s.hi {
		return false
	}
	if s.step > 1 && !s.sparse && (v-s.lo)%s.step != 0 {
		return false
	}
	return true
}

// scanArray materializes an array serially with every attribute.
func (e *Engine) scanArray(a *array.Array, qual string, sels []dimSel, restrict map[int]dimSel) (*Dataset, error) {
	return e.scanArrayPruned(a, qual, sels, restrict, nil, 1, nil)
}

// scanChunksPerWorker is how many scan chunks each worker gets on
// average: a few per worker lets dynamic scheduling balance skew
// (selective filters, sparse slabs) across the pool.
const scanChunksPerWorker = 4

// minParallelScanCells gates the chunked parallel scan: below this
// many materialized cells the fan-out overhead dominates and the
// serial scan wins.
const minParallelScanCells = 4096

// scanArrayPruned materializes an array as a dataset of dimension
// columns (IsDim) and the attribute columns selected by attrs (the
// optimizer's pruned scan projection; nil keeps all), skipping holes
// (§3.1). sels (FROM slicing) and restrict (pushed-down predicates)
// bound the scan; when every dimension is pinned to a point the scan
// is a direct cell read. par > 1 fans scan chunks across the morsel
// pool when the store supports chunked scans; per-chunk buffers merge
// in chunk order, so the result is byte-identical to the serial scan.
func (e *Engine) scanArrayPruned(a *array.Array, qual string, sels []dimSel, restrict map[int]dimSel, attrs []int, par int, sk *chunkSkipper) (*Dataset, error) {
	nd := len(a.Schema.Dims)
	cols := scanColsPruned(a, qual, attrs)
	out := NewDataset(cols)
	// Effective per-dim constraint = intersection of sels and restrict.
	eff := effectiveSels(a, sels, restrict)
	if effProvablyEmpty(eff) {
		return out, nil // disjoint slice ∩ predicate: nothing to scan
	}
	allPoint := nd > 0
	for i := range eff {
		if !eff[i].point {
			allPoint = false
			break
		}
	}
	if allPoint {
		coords := make([]int64, nd)
		for i := range eff {
			coords[i] = eff[i].val
		}
		if a.ValidCoords(coords) {
			// Liveness is judged on every attribute — a cell whose
			// selected attributes are NULL is still live (not a hole)
			// when an unselected one is set.
			na := len(a.Schema.Attrs)
			all := make([]value.Value, na)
			hole := true
			for ai := 0; ai < na; ai++ {
				all[ai] = a.Store.Get(coords, ai)
				if !all[ai].Null {
					hole = false
				}
			}
			if !hole {
				row := make([]value.Value, len(cols))
				for i, c := range coords {
					row[i] = value.Value{Typ: a.Schema.Dims[i].Typ, I: c}
				}
				for vi, ai := range array.AllAttrs(attrs, na) {
					row[nd+vi] = all[ai]
				}
				out.Append(row)
			}
		}
		return out, nil
	}
	if par > 1 && e.pool != nil && a.Store.Len() >= minParallelScanCells {
		if cs, ok := a.Store.(array.ChunkedScanner); ok {
			if chunks := cs.ScanChunks(par*scanChunksPerWorker, attrs); len(chunks) >= 2 {
				chunks = e.skipChunks(sk, a.Store, chunks, par*scanChunksPerWorker, e.prof)
				return e.scanChunksParallel(a, cols, eff, chunks)
			}
		}
	}
	row := make([]value.Value, len(cols))
	var visited int
	var scanErr error
	if err := faultinject.Hit("scan.chunk"); err != nil {
		return nil, err
	}
	e.skippedScan(a.Store, attrs, sk, e.prof)(func(coords []int64, vals []value.Value) bool {
		visited++
		if visited&8191 == 0 {
			if err := e.canceled(); err != nil {
				scanErr = err
				return false
			}
		}
		if !effMatch(eff, coords) {
			return true
		}
		for i, c := range coords {
			row[i] = value.Value{Typ: a.Schema.Dims[i].Typ, I: c}
		}
		copy(row[nd:], vals)
		out.Append(row)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if err := chargeBudget(e.budget, approxDatasetBytes(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// storeScanPruned runs a serial scan of st materializing only the
// attribute columns in attrs (vals[i] = attribute attrs[i]; nil keeps
// all), whether or not the store supports chunked scans.
func storeScanPruned(st array.Store, attrs []int, visit func(coords []int64, vals []value.Value) bool) {
	if attrs == nil {
		st.Scan(visit)
		return
	}
	if cs, ok := st.(array.ChunkedScanner); ok {
		stopped := false
		for _, chunk := range cs.ScanChunks(1, attrs) {
			if stopped {
				return
			}
			chunk(func(coords []int64, vals []value.Value) bool {
				if !visit(coords, vals) {
					stopped = true
					return false
				}
				return true
			})
		}
		return
	}
	sub := make([]value.Value, len(attrs))
	st.Scan(func(coords []int64, vals []value.Value) bool {
		for vi, ai := range attrs {
			sub[vi] = vals[ai]
		}
		return visit(coords, sub)
	})
}

// scanChunksParallel runs the chunked scan across the morsel pool:
// each worker filters its chunks against eff and buffers matching rows
// in a per-chunk dataset; the buffers concatenate in chunk index
// order, which the store guarantees equals serial scan order.
func (e *Engine) scanChunksParallel(a *array.Array, cols []Col, eff []dimSel, chunks []array.ChunkScan) (*Dataset, error) {
	if len(chunks) == 0 {
		// Every chunk was zone-map-skipped.
		return NewDataset(cols), nil
	}
	nd := len(a.Schema.Dims)
	parts := make([]*Dataset, len(chunks))
	ctx := e.ctx()
	bud := e.budget
	err := e.pool.ForEachCtx(ctx, len(chunks), 1, func(m parallelMorsel) error {
		for ci := m.Lo; ci < m.Hi; ci++ {
			if err := faultinject.Hit("scan.chunk"); err != nil {
				return err
			}
			part := NewDataset(cols)
			row := make([]value.Value, len(cols))
			visited := 0
			var stop error
			chunks[ci](func(coords []int64, vals []value.Value) bool {
				visited++
				if visited&8191 == 0 {
					if err := ctx.Err(); err != nil {
						stop = err
						return false
					}
				}
				if !effMatch(eff, coords) {
					return true
				}
				for i, c := range coords {
					row[i] = value.Value{Typ: a.Schema.Dims[i].Typ, I: c}
				}
				copy(row[nd:], vals)
				part.Append(row)
				return true
			})
			if stop != nil {
				return stop
			}
			// One charge per chunk buffer (the merge below concatenates
			// into parts[0], whose growth these charges already cover).
			if err := chargeBudget(bud, approxDatasetBytes(part)); err != nil {
				return err
			}
			parts[ci] = part
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := parts[0]
	extra := 0
	for _, p := range parts[1:] {
		extra += p.NumRows()
	}
	for c := range out.Vecs {
		out.Vecs[c] = bat.Grow(out.Vecs[c], extra)
	}
	for _, p := range parts[1:] {
		for c := range out.Vecs {
			out.Vecs[c] = bat.Concat(out.Vecs[c], p.Vecs[c])
		}
	}
	return out, nil
}

// emptySel is a selection no coordinate satisfies.
func emptySel() dimSel { return dimSel{lo: 0, hi: 0, step: 1} }

// selEmpty reports whether a selection can be proven to admit nothing.
func selEmpty(s dimSel) bool { return !s.point && !s.full && s.lo >= s.hi }

// effProvablyEmpty reports whether any dimension's effective selection
// admits nothing — a disjoint slice ∩ predicate intersection — so the
// scan can skip the store walk entirely.
func effProvablyEmpty(eff []dimSel) bool {
	for i := range eff {
		if selEmpty(eff[i]) {
			return true
		}
	}
	return false
}

// intersectSel combines two selections of one dimension (FROM-clause
// slicing ∩ pushed-down predicate). Disjoint operands yield an empty
// selection — a point outside the other operand's range must select
// nothing, not the point. Stepped ranges intersect phase-aware: the
// result's stride is the lcm of the strides, anchored at the first
// common element (empty when the progressions never meet).
func intersectSel(a, b dimSel) dimSel {
	if a.point {
		if selContains(b, a.val) {
			return a
		}
		return emptySel()
	}
	if b.point {
		if selContains(a, b.val) {
			return b
		}
		return emptySel()
	}
	if a.full {
		return b
	}
	if b.full {
		return a
	}
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	if lo >= hi {
		return emptySel()
	}
	out := dimSel{lo: lo, hi: hi, step: 1, sparse: a.sparse || b.sparse}
	sa, sb := selStep(a), selStep(b)
	if out.sparse || (sa == 1 && sb == 1) {
		return out
	}
	g := gcd64(sa, sb)
	if ((a.lo-b.lo)%g+g)%g != 0 {
		return emptySel() // phases never coincide
	}
	// First element of a's progression at or above lo, then walk until
	// the phase also matches b's (the pattern repeats after sb/g steps).
	x := a.lo + (lo-a.lo+sa-1)/sa*sa
	for i := int64(0); i < sb/g; i++ {
		if x >= hi {
			return emptySel()
		}
		if (x-b.lo)%sb == 0 {
			out.lo, out.step = x, sa/g*sb
			return out
		}
		x += sa
	}
	return emptySel()
}

func selStep(s dimSel) int64 {
	if s.step <= 0 {
		return 1
	}
	return s.step
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// crossJoin forms the Cartesian product (comma joins; WHERE conjuncts
// filter afterwards).
func crossJoin(l, r *Dataset) *Dataset {
	cols := append(append([]Col(nil), l.Cols...), r.Cols...)
	out := NewDataset(cols)
	ln, rn := l.NumRows(), r.NumRows()
	row := make([]value.Value, len(cols))
	for i := 0; i < ln; i++ {
		for c := range l.Cols {
			row[c] = l.Vecs[c].Get(i)
		}
		for j := 0; j < rn; j++ {
			for c := range r.Cols {
				row[len(l.Cols)+c] = r.Vecs[c].Get(j)
			}
			out.Append(row)
		}
	}
	return out
}

// scalarSubquery is the evaluator hook for subqueries in expression
// position: it returns the first column of the first row (NULL when
// the result is empty).
func (e *Engine) scalarSubquery(sel *ast.Select, env expr.Env) (value.Value, error) {
	ds, err := e.execSelect(sel, env)
	if err != nil {
		return value.Value{}, err
	}
	if ds.NumRows() == 0 || ds.NumCols() == 0 {
		return value.NewNull(value.Unknown), nil
	}
	return ds.Get(0, 0), nil
}
