package exec

import (
	"fmt"
	"strings"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// catalogTable aliases the catalog's table type for the DML paths.
type catalogTable = catalog.Table

// tableRowEnv exposes one table row, answering qualified lookups.
type tableRowEnv struct {
	t     *catalogTable
	row   int
	outer expr.Env
}

func (r *tableRowEnv) Lookup(qual, name string) (value.Value, bool) {
	if qual == "" || strings.EqualFold(qual, r.t.Name) {
		if i := r.t.ColIndex(name); i >= 0 {
			return r.t.Vecs[i].Get(r.row), true
		}
	}
	if r.outer != nil {
		return r.outer.Lookup(qual, name)
	}
	return value.Value{}, false
}

func (r *tableRowEnv) Param(name string) (value.Value, bool) {
	if r.outer != nil {
		return r.outer.Param(name)
	}
	return value.Value{}, false
}

func (e *Engine) insertTableImpl(t *catalogTable, s *ast.Insert, outer expr.Env) error {
	colMap := make([]int, 0, len(t.Cols))
	if len(s.Columns) > 0 {
		for _, c := range s.Columns {
			i := t.ColIndex(c)
			if i < 0 {
				return fmt.Errorf("table %s has no column %s", t.Name, c)
			}
			colMap = append(colMap, i)
		}
	} else {
		for i := range t.Cols {
			colMap = append(colMap, i)
		}
	}
	appendRow := func(vals []value.Value) error {
		if len(vals) != len(colMap) {
			return fmt.Errorf("INSERT INTO %s: expected %d values, got %d", t.Name, len(colMap), len(vals))
		}
		row := make([]value.Value, len(t.Cols))
		for i := range row {
			row[i] = value.NewNull(t.Cols[i].Typ)
		}
		for vi, ci := range colMap {
			v := vals[vi]
			if t.Cols[ci].Typ != value.Array {
				cv, err := value.Coerce(v, t.Cols[ci].Typ)
				if err != nil {
					return fmt.Errorf("INSERT INTO %s.%s: %w", t.Name, t.Cols[ci].Name, err)
				}
				v = cv
			}
			row[ci] = v
		}
		return t.Append(row)
	}
	if s.Select != nil {
		ds, err := e.execSelect(s.Select, outer)
		if err != nil {
			return err
		}
		for r := 0; r < ds.NumRows(); r++ {
			if err := appendRow(ds.Row(r)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, rowExprs := range s.Values {
		vals := make([]value.Value, len(rowExprs))
		for i, x := range rowExprs {
			v, err := e.Ev.Eval(x, outer)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := appendRow(vals); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) updateTableImpl(t *catalogTable, s *ast.Update, outer expr.Env) error {
	n := t.NumRows()
	for r := 0; r < n; r++ {
		env := &tableRowEnv{t: t, row: r, outer: outer}
		if s.Where != nil {
			ok, err := e.Ev.EvalBool(s.Where, env)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		for _, asg := range s.Sets {
			id, ok := asg.Target.(*ast.Ident)
			if !ok {
				return fmt.Errorf("UPDATE %s: target must be a column", t.Name)
			}
			ci := t.ColIndex(id.Name)
			if ci < 0 {
				return fmt.Errorf("table %s has no column %s", t.Name, id.Name)
			}
			v, err := e.Ev.Eval(asg.Value, env)
			if err != nil {
				return err
			}
			if t.Cols[ci].Typ != value.Array {
				cv, err := value.Coerce(v, t.Cols[ci].Typ)
				if err != nil {
					return err
				}
				v = cv
			}
			t.Vecs[ci].Set(r, v)
		}
	}
	return nil
}

func (e *Engine) deleteTableImpl(t *catalogTable, s *ast.Delete, outer expr.Env) error {
	var keep []int
	n := t.NumRows()
	for r := 0; r < n; r++ {
		if s.Where != nil {
			env := &tableRowEnv{t: t, row: r, outer: outer}
			ok, err := e.Ev.EvalBool(s.Where, env)
			if err != nil {
				return err
			}
			if ok {
				continue
			}
		} else {
			continue // DELETE without WHERE removes everything
		}
		keep = append(keep, r)
	}
	for i, v := range t.Vecs {
		t.Vecs[i] = v.Gather(keep)
	}
	return nil
}

// ensure bat import is used even if Gather paths change.
var _ = bat.New
