package exec

import (
	"strings"

	"repro/internal/array"
	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// parallelMorsel aliases the pool's chunk descriptor.
type parallelMorsel = parallel.Morsel

// This file is the bridge between the logical planner and the
// morsel-driven executor in internal/parallel. A SELECT takes the
// parallel path only when (a) the engine's parallelism knob is above
// one, (b) the optimized plan has a parallelizable shape (single
// array/table pipeline — plan.Plan.Parallel), and (c) every scalar
// expression is engine-state free, so concurrent evaluation on the
// shared Evaluator is race-free. Everything else falls back to the
// serial interpreter, transparently.

// planCacheMax bounds the eligibility cache; ad-hoc statements parse
// into fresh AST nodes, so a long-lived engine would otherwise grow
// the cache without limit.
const planCacheMax = 4096

// selectDecision plans one SELECT's routing: the worker count (the
// configured parallelism when the optimized plan shape and the
// expressions qualify, otherwise 1) and the optimizer's pruned scan
// projections, which the scan applies at any parallelism. The decision
// is memoized per AST node (re-executed prepared statements and
// per-row correlated subqueries reuse one node). On the parallel path
// it also pre-warms lazily built store indexes (sorted dimension
// values, bounding boxes) — on every execution, since DML invalidates
// them — so workers only ever read shared state.
func (e *Engine) selectDecision(sel *ast.Select) planDecision {
	ver := e.cat().SchemaVersion()
	e.planMu.Lock()
	dec, cached := e.planCache[sel]
	e.planMu.Unlock()
	if !cached || dec.catVer != ver {
		// Not cached, or planned under a different catalog version
		// (DDL committed by any session, or this session's pinned
		// transaction snapshot): re-resolve against the current view
		// instead of executing stale bindings.
		e.metrics().planMiss.Inc()
		dec = planDecision{par: 1, catVer: ver}
		pl := e.planSelect(sel)
		if e.parallelism > 1 && e.pool != nil && pl.Parallel && parSafeSelect(sel) {
			dec.par = e.parallelism
			dec.warm = warmNames(sel)
		}
		dec.scans = prunedScanAttrs(pl)
		e.planMu.Lock()
		if len(e.planCache) >= planCacheMax || e.planCache == nil {
			e.planCache = make(map[*ast.Select]planDecision)
		}
		e.planCache[sel] = dec
		e.planMu.Unlock()
	} else {
		e.metrics().planHit.Inc()
	}
	// Prewarm on every execution (not just the first): DML between
	// executions invalidates the lazy store indexes. The name list is
	// cached; re-touching a built index is a cheap early return.
	for _, name := range dec.warm {
		if a, ok := e.cat().Array(name); ok {
			e.prewarmArray(a)
		}
	}
	return dec
}

// selectParallelism is the worker-count view of selectDecision.
func (e *Engine) selectParallelism(sel *ast.Select) int {
	return e.selectDecision(sel).par
}

// PrimePlan resolves (and memoizes) the routing decision for sel
// without executing it. The public layer calls it to time the planning
// phase for trace hooks; the decision is cached per AST node, so the
// following execution does not plan twice.
func (e *Engine) PrimePlan(sel *ast.Select) {
	e.selectDecision(sel)
}

// prunedScanAttrs collects the optimizer's projection pruning per
// scanned array. Two scans of one array carry identical projections
// (pruning is computed from the statement's global reference set), so
// the first wins.
func prunedScanAttrs(pl *plan.Plan) map[string][]string {
	var out map[string][]string
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if sc, ok := n.(*plan.Scan); ok && !sc.Table && !sc.AllAttrs {
			if out == nil {
				out = make(map[string][]string)
			}
			key := strings.ToLower(sc.Name)
			if _, seen := out[key]; !seen {
				out[key] = sc.Attrs
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(pl.Root)
	return out
}

// parSafeSelect reports whether every scalar expression of the select
// (and its UNION continuations) can be evaluated concurrently.
func parSafeSelect(sel *ast.Select) bool {
	for cur := sel; cur != nil; cur = cur.SetRight {
		exprs := make([]ast.Expr, 0, 8)
		for _, it := range cur.Items {
			exprs = append(exprs, it.Expr)
		}
		for _, fi := range cur.From {
			if !collectFromExprs(fi, &exprs) {
				return false
			}
		}
		exprs = append(exprs, cur.Where, cur.Having, cur.Limit)
		if cur.GroupBy != nil {
			exprs = append(exprs, cur.GroupBy.Exprs...)
			for _, t := range cur.GroupBy.Tiles {
				exprs = append(exprs, t.Ref)
			}
		}
		for _, oi := range cur.OrderBy {
			exprs = append(exprs, oi.Expr)
		}
		for _, x := range exprs {
			if !parSafeExpr(x) {
				return false
			}
		}
	}
	return true
}

// collectFromExprs gathers the scalar expressions of one FROM item
// (slice indexers, join ON conditions) for the parallel-safety vet,
// recursing through JOIN trees. False means the item's shape itself
// cannot run parallel (derived tables re-enter the engine).
func collectFromExprs(fi ast.FromItem, exprs *[]ast.Expr) bool {
	switch t := fi.(type) {
	case *ast.TableRef:
		if t.Subquery != nil {
			return false
		}
		for _, ix := range t.Indexers {
			*exprs = append(*exprs, ix.Point, ix.Start, ix.Stop, ix.Step)
		}
		return true
	case *ast.Join:
		*exprs = append(*exprs, t.On)
		return collectFromExprs(t.Left, exprs) && collectFromExprs(t.Right, exprs)
	}
	return false
}

// parSafeExpr vets one expression for concurrent evaluation: no
// subqueries (recursive engine execution), no UDF calls (white-box PSM
// bodies may contain DML; black-box Go functions have unknown thread
// safety), no RAND (the evaluator's generator is shared and lazily
// initialized), no NEXT (rewritten via dataset mutation).
func parSafeExpr(x ast.Expr) bool {
	ok := true
	ast.Walk(x, func(n ast.Expr) bool {
		switch t := n.(type) {
		case *ast.Subquery:
			ok = false
			return false
		case *ast.FuncCall:
			if t.IsAggregate() {
				return true
			}
			if strings.EqualFold(t.Name, "RAND") || strings.EqualFold(t.Name, "NEXT") || !expr.IsBuiltin(t.Name) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// warmNames collects the names of every array the query mentions
// (FROM sources and ArrayRef bases); their lazily built read-side
// indexes are touched before each parallel execution so worker
// goroutines only ever read shared state.
func warmNames(sel *ast.Select) []string {
	names := make(map[string]bool)
	var visit func(x ast.Expr)
	visit = func(x ast.Expr) {
		ast.Walk(x, func(n ast.Expr) bool {
			if ref, ok := n.(*ast.ArrayRef); ok {
				if id, ok2 := ref.Base.(*ast.Ident); ok2 {
					names[strings.ToLower(id.Name)] = true
				}
			}
			return true
		})
	}
	var addFrom func(fi ast.FromItem)
	addFrom = func(fi ast.FromItem) {
		switch t := fi.(type) {
		case *ast.TableRef:
			names[strings.ToLower(t.Name)] = true
		case *ast.Join:
			addFrom(t.Left)
			addFrom(t.Right)
			visit(t.On)
		}
	}
	for cur := sel; cur != nil; cur = cur.SetRight {
		for _, fi := range cur.From {
			addFrom(fi)
		}
		for _, it := range cur.Items {
			visit(it.Expr)
		}
		visit(cur.Where)
		visit(cur.Having)
		if cur.GroupBy != nil {
			for _, t := range cur.GroupBy.Tiles {
				visit(t.Ref)
			}
			for _, k := range cur.GroupBy.Exprs {
				visit(k)
			}
		}
	}
	out := make([]string, 0, len(names))
	for name := range names {
		out = append(out, name)
	}
	return out
}

func (e *Engine) prewarmArray(a *array.Array) {
	if p, ok := a.Store.(dimValuesProvider); ok {
		for di := range a.Schema.Dims {
			_ = p.DimValues(di)
		}
	}
	_, _, _ = a.BoundingBox()
}

// filterKeep evaluates where over every row of ds and returns the
// indexes of passing rows in order; par > 1 splits the rows into
// morsels across the worker pool. When the predicate compiles into
// bulk kernels it runs column-at-a-time, one batch per morsel,
// producing the same indexes the interpreter would.
func (e *Engine) filterKeep(where ast.Expr, ds *Dataset, outer expr.Env, par int) ([]int, error) {
	n := ds.NumRows()
	if prog := e.vecCompile(where, ds.Cols, true); prog != nil && prog.validFor(ds.Vecs) {
		return e.filterKeepVec(prog, ds, par, n)
	}
	if par <= 1 || e.pool == nil || n < 2*e.pool.Workers() {
		var keep []int
		env := &rowEnv{d: ds, outer: outer}
		for r := 0; r < n; r++ {
			if r&1023 == 0 {
				if err := e.canceled(); err != nil {
					return nil, err
				}
			}
			env.row = r
			ok, err := e.Ev.EvalBool(where, env)
			if err != nil {
				return nil, err
			}
			if ok {
				keep = append(keep, r)
			}
		}
		return keep, nil
	}
	mask := make([]bool, n)
	err := e.pool.ForEachCtx(e.ctx(), n, e.pool.MorselFor(n), func(m parallelMorsel) error {
		env := &rowEnv{d: ds, outer: outer}
		for r := m.Lo; r < m.Hi; r++ {
			env.row = r
			ok, err := e.Ev.EvalBool(where, env)
			if err != nil {
				return err
			}
			mask[r] = ok
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var keep []int
	for r, ok := range mask {
		if ok {
			keep = append(keep, r)
		}
	}
	return keep, nil
}

// filterKeepVec is the vectorized filter: the compiled predicate runs
// over row batches, emitting selection vectors that concatenate in row
// order (serially or across morsels).
func (e *Engine) filterKeepVec(prog *vecProg, ds *Dataset, par, n int) ([]int, error) {
	if par <= 1 || e.pool == nil || n < 2*e.pool.Workers() {
		var keep []int
		for lo := 0; lo < n; lo += vecBatchRows {
			if err := e.canceled(); err != nil {
				return nil, err
			}
			hi := lo + vecBatchRows
			if hi > n {
				hi = n
			}
			for _, rel := range prog.filterSel(ds.Vecs, lo, hi) {
				keep = append(keep, lo+rel)
			}
		}
		return keep, nil
	}
	morsel := e.pool.MorselFor(n)
	parts := make([][]int, (n+morsel-1)/morsel)
	err := e.pool.ForEachCtx(e.ctx(), n, morsel, func(m parallelMorsel) error {
		var keep []int
		for lo := m.Lo; lo < m.Hi; lo += vecBatchRows {
			hi := lo + vecBatchRows
			if hi > m.Hi {
				hi = m.Hi
			}
			for _, rel := range prog.filterSel(ds.Vecs, lo, hi) {
				keep = append(keep, lo+rel)
			}
		}
		parts[m.Lo/morsel] = keep
		return nil
	})
	if err != nil {
		return nil, err
	}
	var keep []int
	for _, p := range parts {
		keep = append(keep, p...)
	}
	return keep, nil
}

// projectWith evaluates the target list for every row of ds, fanning
// the rows out over the pool when par > 1. Output is identical to the
// serial project for any par. Items whose expressions compile into
// bulk kernels evaluate column-at-a-time, one batch per morsel; the
// rest fall back to the row interpreter, per item.
func (e *Engine) projectWith(items []ast.SelectItem, ds *Dataset, outer expr.Env, par int) (*Dataset, error) {
	items = expandStars(items, ds.Cols)
	n := ds.NumRows()
	progs := make([]*vecProg, len(items))
	anyVec, allVec := false, true
	for i, it := range items {
		if p := e.vecCompile(it.Expr, ds.Cols, true); p != nil && p.validFor(ds.Vecs) {
			progs[i] = p
			anyVec = true
		} else {
			allVec = false
		}
	}
	if !anyVec {
		if par <= 1 || e.pool == nil || n < 2*e.pool.Workers() {
			return e.project(items, ds, outer)
		}
		return e.projectRowsParallel(items, ds, outer, n)
	}
	outVecs := make([]bat.Vector, len(items))
	colVals := make([][]value.Value, len(items))
	if par > 1 && e.pool != nil && n >= 2*e.pool.Workers() {
		morsel := e.pool.MorselFor(n)
		slots := (n + morsel - 1) / morsel
		vparts := make([][]bat.Vector, slots)
		for i := range colVals {
			if progs[i] == nil {
				colVals[i] = make([]value.Value, n)
			}
		}
		err := e.pool.ForEachCtx(e.ctx(), n, morsel, func(m parallelMorsel) error {
			// Morsels are at most DefaultMorsel rows — already batch
			// sized — so each item evaluates in one kernel call; the
			// single element copy happens at the ordered merge below.
			part := make([]bat.Vector, len(items))
			for i, p := range progs {
				if p == nil {
					continue
				}
				part[i] = p.eval(ds.Vecs, m.Lo, m.Hi)
			}
			vparts[m.Lo/morsel] = part
			if !allVec {
				env := &rowEnv{d: ds, outer: outer}
				for r := m.Lo; r < m.Hi; r++ {
					env.row = r
					for i, it := range items {
						if progs[i] != nil {
							continue
						}
						v, err := e.Ev.Eval(it.Expr, env)
						if err != nil {
							return err
						}
						colVals[i][r] = v
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, p := range progs {
			if p == nil {
				continue
			}
			acc := bat.New(p.typ, n)
			for _, part := range vparts {
				acc = bat.Concat(acc, part[i])
			}
			outVecs[i] = acc
		}
	} else {
		for i, p := range progs {
			if p == nil {
				continue
			}
			acc := bat.New(p.typ, n)
			for lo := 0; lo < n; lo += vecBatchRows {
				if err := e.canceled(); err != nil {
					return nil, err
				}
				hi := lo + vecBatchRows
				if hi > n {
					hi = n
				}
				acc = bat.Concat(acc, p.eval(ds.Vecs, lo, hi))
			}
			outVecs[i] = acc
		}
		if !allVec {
			env := &rowEnv{d: ds, outer: outer}
			for r := 0; r < n; r++ {
				if r&1023 == 0 {
					if err := e.canceled(); err != nil {
						return nil, err
					}
				}
				env.row = r
				for i, it := range items {
					if progs[i] != nil {
						continue
					}
					v, err := e.Ev.Eval(it.Expr, env)
					if err != nil {
						return nil, err
					}
					colVals[i] = append(colVals[i], v)
				}
			}
		}
	}
	cols := make([]Col, len(items))
	vecs := make([]bat.Vector, len(items))
	for i, it := range items {
		if progs[i] != nil {
			v, t := finalizeVecOutput(outVecs[i])
			cols[i] = Col{Name: itemName(it, i), Typ: t, IsDim: it.DimQual}
			vecs[i] = v
		} else {
			t := promoteType(colVals[i])
			cols[i] = Col{Name: itemName(it, i), Typ: t, IsDim: it.DimQual}
			vecs[i] = bat.FromValues(t, colVals[i])
		}
		if id, ok := it.Expr.(*ast.Ident); ok {
			cols[i].Qual = id.Table
		}
	}
	return &Dataset{Cols: cols, Vecs: vecs}, nil
}

// projectRowsParallel is the row-interpreted parallel projection for
// target lists with no vectorizable items.
func (e *Engine) projectRowsParallel(items []ast.SelectItem, ds *Dataset, outer expr.Env, n int) (*Dataset, error) {
	colVals := make([][]value.Value, len(items))
	for i := range colVals {
		colVals[i] = make([]value.Value, n)
	}
	err := e.pool.ForEachCtx(e.ctx(), n, e.pool.MorselFor(n), func(m parallelMorsel) error {
		env := &rowEnv{d: ds, outer: outer}
		for r := m.Lo; r < m.Hi; r++ {
			env.row = r
			for i, it := range items {
				v, err := e.Ev.Eval(it.Expr, env)
				if err != nil {
					return err
				}
				colVals[i][r] = v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buildProjected(items, colVals), nil
}
