package exec

// Vectorized expression execution: a compiler that turns a supported
// scalar AST expression into a tree of typed bulk kernels over
// bat.Vector columns (internal/bat/kernels.go), evaluated one batch
// (scan chunk / morsel) at a time instead of one cell at a time —
// the column-at-a-time execution model of the paper's §2.2.
//
// The compiled program is statically typed from the source column
// types; the supported surface is arithmetic (+ - * / %), comparisons,
// AND/OR/NOT three-valued logic, IS [NOT] NULL, BETWEEN and IN over
// constant bounds, and the pure numeric builtins (MOD, ABS, POWER and
// the SQRT/EXP/LN/trig family), over column references, dimension
// references and constants. Results are byte-identical to the
// tree-walking interpreter: SQL NULL propagation, division (and
// modulo) by zero yielding NULL, and int→float promotion follow
// expr.Apply exactly. Anything outside the surface — subqueries, CASE,
// casts, string operators, UDFs, host parameters, outer-bound names —
// makes compilation fail and the caller falls back to the row-at-a-
// time interpreter, transparently.

import (
	"math"
	"strings"

	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// vecBatchRows is the batch granularity of vectorized loops: large
// enough to amortize kernel dispatch, small enough that a batch's
// working set stays cache-resident.
const vecBatchRows = 4096

// vres is one kernel operand/result: a vector, or a broadcast scalar
// (vec == nil).
type vres struct {
	vec bat.Vector
	cv  value.Value
}

// vexpr is one node of a compiled kernel tree. eval computes rows
// [lo, hi) of the batch columns. Nodes are immutable after compile and
// allocate fresh outputs, so concurrent workers share one program.
type vexpr interface {
	eval(batch []bat.Vector, lo, hi int) vres
}

// vecProg is a compiled expression: the kernel tree plus the column
// binding signature it was compiled against.
type vecProg struct {
	root vexpr
	typ  value.Type
	cols []Col // binding signature for cache validation
	used []int // referenced batch column positions
	// strict marks rowEnv-style binding (ambiguous names rejected);
	// false is valuesEnv-style first-match binding.
	strict bool
}

// eval computes the expression over rows [lo, hi) of batch, returning
// a vector of hi-lo elements. Callers must have checked validFor.
func (p *vecProg) eval(batch []bat.Vector, lo, hi int) bat.Vector {
	r := p.root.eval(batch, lo, hi)
	if r.vec != nil {
		return r.vec
	}
	t := p.typ
	if t == value.Unknown {
		t = r.cv.Typ
	}
	return bat.Broadcast(r.cv, t, hi-lo)
}

// filterSel evaluates the program as a predicate over rows [lo, hi)
// and returns the passing positions relative to lo (SQL WHERE truth:
// non-NULL and true).
func (p *vecProg) filterSel(batch []bat.Vector, lo, hi int) []int {
	r := p.root.eval(batch, lo, hi)
	if r.vec == nil {
		if r.cv.Null || !r.cv.AsBool() {
			return nil
		}
		sel := make([]int, hi-lo)
		for i := range sel {
			sel[i] = i
		}
		return sel
	}
	return bat.TruthSel(r.vec)
}

// validFor verifies the batch's referenced columns are backed by the
// representations the program was compiled for; a mismatch (boxed
// vector under a typed column) makes the caller fall back.
func (p *vecProg) validFor(batch []bat.Vector) bool {
	if len(batch) != len(p.cols) {
		return false
	}
	for _, ci := range p.used {
		if !vecBacked(batch[ci], p.cols[ci].Typ) {
			return false
		}
	}
	return true
}

func vecBacked(v bat.Vector, t value.Type) bool {
	switch t {
	case value.Int, value.Timestamp:
		iv, ok := v.(*bat.IntVector)
		return ok && iv.Type() == t
	case value.Float:
		_, ok := v.(*bat.FloatVector)
		return ok
	case value.Bool:
		_, ok := v.(*bat.BoolVector)
		return ok
	case value.String:
		_, ok := v.(*bat.StringVector)
		return ok
	default:
		return v.Type() == t
	}
}

// sigMatches reports whether the program's compile-time column layout
// matches cols (the cache validity check).
func (p *vecProg) sigMatches(cols []Col, strict bool) bool {
	if p.strict != strict || len(p.cols) != len(cols) {
		return false
	}
	for i := range cols {
		if p.cols[i].Name != cols[i].Name || p.cols[i].Qual != cols[i].Qual ||
			p.cols[i].Typ != cols[i].Typ || p.cols[i].IsDim != cols[i].IsDim {
			return false
		}
	}
	return true
}

// --- compiler ---------------------------------------------------------------

type vecCompiler struct {
	cols   []Col
	strict bool
	used   map[int]bool
}

// compileVec compiles x against the column layout; nil when any
// construct falls outside the vectorizable surface.
func compileVec(x ast.Expr, cols []Col, strict bool) *vecProg {
	c := &vecCompiler{cols: cols, strict: strict, used: map[int]bool{}}
	node, typ, ok := c.compile(x)
	if !ok || typ == value.Unknown {
		return nil
	}
	p := &vecProg{root: node, typ: typ, cols: append([]Col(nil), cols...), strict: strict}
	for ci := range c.used {
		p.used = append(p.used, ci)
	}
	return p
}

func numericType(t value.Type) bool { return t == value.Int || t == value.Float }

// bind resolves an identifier to a column position, mirroring the
// lookup semantics of the execution environment the program will run
// under: strict is Dataset.ColIndex (ambiguous names rejected), loose
// is valuesEnv's first match.
func (c *vecCompiler) bind(qual, name string) int {
	found := -1
	for i, col := range c.cols {
		if !strings.EqualFold(col.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(col.Qual, qual) {
			continue
		}
		if !c.strict {
			return i
		}
		if found >= 0 {
			return -1 // ambiguous: the interpreter would error; fall back
		}
		found = i
	}
	return found
}

// float1Builtins maps the pure float builtin family onto Go functions,
// matching the interpreter's builtin table.
var float1Builtins = map[string]func(float64) float64{
	"SQRT": math.Sqrt, "EXP": math.Exp, "LN": math.Log, "LOG": math.Log10,
	"SIN": math.Sin, "COS": math.Cos, "TAN": math.Tan,
	"ARCSIN": math.Asin, "ASIN": math.Asin, "ARCCOS": math.Acos, "ACOS": math.Acos,
	"ATAN": math.Atan, "FLOOR": math.Floor, "CEIL": math.Ceil, "CEILING": math.Ceil,
	"ROUND": math.Round,
}

func (c *vecCompiler) compile(x ast.Expr) (vexpr, value.Type, bool) {
	switch t := x.(type) {
	case *ast.Literal:
		v := t.Val
		if v.Null || (v.Typ != value.Int && v.Typ != value.Float && v.Typ != value.Bool) {
			return nil, 0, false
		}
		return &vconst{v: v}, v.Typ, true
	case *ast.Ident:
		ci := c.bind(t.Table, t.Name)
		if ci < 0 {
			return nil, 0, false
		}
		typ := c.cols[ci].Typ
		if typ == value.Unknown {
			return nil, 0, false
		}
		c.used[ci] = true
		return &vcol{idx: ci}, typ, true
	case *ast.Unary:
		switch t.Op {
		case "-":
			xn, xt, ok := c.compile(t.X)
			if !ok || !numericType(xt) {
				return nil, 0, false
			}
			return foldNeg(xn, xt)
		case "NOT":
			xn, xt, ok := c.compile(t.X)
			if !ok || xt != value.Bool {
				return nil, 0, false
			}
			return foldNot(xn)
		}
		return nil, 0, false
	case *ast.Binary:
		return c.compileBinary(t.Op, t.L, t.R)
	case *ast.IsNull:
		xn, _, ok := c.compile(t.X)
		if !ok {
			return nil, 0, false
		}
		if cn, isC := xn.(*vconst); isC {
			return &vconst{v: value.NewBool(cn.v.Null != t.Neg)}, value.Bool, true
		}
		return &visnull{x: xn, neg: t.Neg}, value.Bool, true
	case *ast.Between:
		// Lowered to (NOT)(x >= lo AND x <= hi). With constant non-NULL
		// bounds this is exactly the interpreter's semantics: the result
		// is NULL iff x is NULL (both comparisons turn NULL together, so
		// three-valued AND agrees with the any-NULL rule).
		lo, lok := constNumeric(t.Lo)
		hi, hok := constNumeric(t.Hi)
		if !lok || !hok {
			return nil, 0, false
		}
		xn, xt, ok := c.compile(t.X)
		if !ok || !numericType(xt) {
			return nil, 0, false
		}
		ln, _, ok1 := foldCmp(">=", xn, xt, &vconst{v: lo}, lo.Typ)
		hn, _, ok2 := foldCmp("<=", xn, xt, &vconst{v: hi}, hi.Typ)
		if !ok1 || !ok2 {
			return nil, 0, false
		}
		out, _, ok3 := foldLogic(true, ln, hn)
		if !ok3 {
			return nil, 0, false
		}
		if t.Neg {
			return foldNot(out)
		}
		return out, value.Bool, true
	case *ast.InList:
		// x IN (c1, c2, ...) with constant non-NULL elements lowers to
		// an OR chain of equalities, which matches the interpreter for
		// both the found and the NULL-operand case.
		xn, xt, ok := c.compile(t.X)
		if !ok || !numericType(xt) || len(t.Elems) == 0 {
			return nil, 0, false
		}
		var out vexpr
		for _, el := range t.Elems {
			cv, cok := constNumeric(el)
			if !cok {
				return nil, 0, false
			}
			cmp, _, cmpOK := foldCmp("=", xn, xt, &vconst{v: cv}, cv.Typ)
			if !cmpOK {
				return nil, 0, false
			}
			if out == nil {
				out = cmp
				continue
			}
			combined, _, lok := foldLogic(false, out, cmp)
			if !lok {
				return nil, 0, false
			}
			out = combined
		}
		if t.Neg {
			return foldNot(out)
		}
		return out, value.Bool, true
	case *ast.FuncCall:
		return c.compileCall(t)
	}
	return nil, 0, false
}

// constNumeric accepts a literal (possibly negated) of Int or Float
// type; BETWEEN/IN bounds must be constants for the lowering to stay
// exact.
func constNumeric(x ast.Expr) (value.Value, bool) {
	if u, ok := x.(*ast.Unary); ok && u.Op == "-" {
		v, vok := constNumeric(u.X)
		if !vok {
			return value.Value{}, false
		}
		if v.Typ == value.Int {
			return value.NewInt(-v.I), true
		}
		return value.NewFloat(-v.F), true
	}
	lit, ok := x.(*ast.Literal)
	if !ok || lit.Val.Null || !numericType(lit.Val.Typ) {
		return value.Value{}, false
	}
	return lit.Val, true
}

func (c *vecCompiler) compileBinary(op string, l, r ast.Expr) (vexpr, value.Type, bool) {
	switch op {
	case "AND", "OR":
		ln, lt, lok := c.compile(l)
		rn, rt, rok := c.compile(r)
		if !lok || !rok || lt != value.Bool || rt != value.Bool {
			return nil, 0, false
		}
		return foldLogic(op == "AND", ln, rn)
	case "=", "<>", "<", "<=", ">", ">=":
		ln, lt, lok := c.compile(l)
		rn, rt, rok := c.compile(r)
		if !lok || !rok || !numericType(lt) || !numericType(rt) {
			return nil, 0, false
		}
		return foldCmp(op, ln, lt, rn, rt)
	case "+", "-", "*", "/", "%":
		ln, lt, lok := c.compile(l)
		rn, rt, rok := c.compile(r)
		if !lok || !rok || !numericType(lt) || !numericType(rt) {
			return nil, 0, false
		}
		return foldArith(op, ln, lt, rn, rt)
	}
	return nil, 0, false
}

func (c *vecCompiler) compileCall(f *ast.FuncCall) (vexpr, value.Type, bool) {
	if f.IsAggregate() || f.Star || f.Distinct {
		return nil, 0, false
	}
	name := strings.ToUpper(f.Name)
	switch {
	case name == "MOD" && len(f.Args) == 2:
		// MOD(a, b) computes exactly like the % operator (the NULL
		// result's type tag differs, which no output path can observe).
		ln, lt, lok := c.compile(f.Args[0])
		rn, rt, rok := c.compile(f.Args[1])
		if !lok || !rok || !numericType(lt) || !numericType(rt) {
			return nil, 0, false
		}
		return foldArith("%", ln, lt, rn, rt)
	case name == "ABS" && len(f.Args) == 1:
		xn, xt, ok := c.compile(f.Args[0])
		if !ok || !numericType(xt) {
			return nil, 0, false
		}
		if cn, isC := xn.(*vconst); isC {
			return &vconst{v: absConst(cn.v)}, xt, true
		}
		return &vabs{x: xn, flt: xt == value.Float}, xt, true
	case name == "POWER" && len(f.Args) == 2:
		ln, lt, lok := c.compile(f.Args[0])
		rn, rt, rok := c.compile(f.Args[1])
		if !lok || !rok || !numericType(lt) || !numericType(rt) {
			return nil, 0, false
		}
		ln = promoteFloat(ln, lt)
		rn = promoteFloat(rn, rt)
		lc, lIsC := ln.(*vconst)
		rc, rIsC := rn.(*vconst)
		if lIsC && rIsC {
			if lc.v.Null || rc.v.Null {
				return &vconst{v: value.NewNull(value.Float)}, value.Float, true
			}
			return &vconst{v: value.NewFloat(math.Pow(lc.v.F, rc.v.F))}, value.Float, true
		}
		if (lIsC && lc.v.Null) || (rIsC && rc.v.Null) {
			return &vconst{v: value.NewNull(value.Float)}, value.Float, true
		}
		return &vpow{l: ln, r: rn}, value.Float, true
	default:
		fn, ok := float1Builtins[name]
		if !ok || len(f.Args) != 1 {
			return nil, 0, false
		}
		xn, xt, cok := c.compile(f.Args[0])
		if !cok || !numericType(xt) {
			return nil, 0, false
		}
		xn = promoteFloat(xn, xt)
		if cn, isC := xn.(*vconst); isC {
			if cn.v.Null {
				return &vconst{v: value.NewNull(value.Float)}, value.Float, true
			}
			return &vconst{v: value.NewFloat(fn(cn.v.F))}, value.Float, true
		}
		return &vmap1{f: fn, x: xn}, value.Float, true
	}
}

func absConst(v value.Value) value.Value {
	if v.Null {
		return value.NewNull(v.Typ)
	}
	if v.Typ == value.Int {
		i := v.I
		if i < 0 {
			i = -i
		}
		return value.NewInt(i)
	}
	return value.NewFloat(math.Abs(v.F))
}

// promoteFloat wraps an Int-typed node with the int→float conversion
// kernel (constants convert at compile time).
func promoteFloat(n vexpr, t value.Type) vexpr {
	if t != value.Int {
		return n
	}
	if cn, ok := n.(*vconst); ok {
		if cn.v.Null {
			return &vconst{v: value.NewNull(value.Float)}
		}
		return &vconst{v: value.NewFloat(cn.v.AsFloat())}
	}
	return &vtofloat{x: n}
}

// foldArith builds an arithmetic node with int/float promotion,
// folding constant operands (a NULL constant makes the whole result a
// typed NULL constant, matching unconditional NULL propagation).
func foldArith(op string, ln vexpr, lt value.Type, rn vexpr, rt value.Type) (vexpr, value.Type, bool) {
	typ := value.Float
	if lt == value.Int && rt == value.Int {
		typ = value.Int
	}
	lc, lIsC := ln.(*vconst)
	rc, rIsC := rn.(*vconst)
	if lIsC && rIsC {
		v, err := expr.Apply(op, lc.v, rc.v)
		if err != nil {
			return nil, 0, false
		}
		return &vconst{v: v}, typ, true
	}
	if (lIsC && lc.v.Null) || (rIsC && rc.v.Null) {
		return &vconst{v: value.NewNull(typ)}, typ, true
	}
	if typ == value.Float {
		ln = promoteFloat(ln, lt)
		rn = promoteFloat(rn, rt)
	}
	return &varith{op: op, l: ln, r: rn, flt: typ == value.Float}, typ, true
}

// foldCmp builds a comparison node; mixed int/float operands compare
// as floats, exactly like value.Compare.
func foldCmp(op string, ln vexpr, lt value.Type, rn vexpr, rt value.Type) (vexpr, value.Type, bool) {
	flt := !(lt == value.Int && rt == value.Int)
	lc, lIsC := ln.(*vconst)
	rc, rIsC := rn.(*vconst)
	if lIsC && rIsC {
		v, err := expr.Apply(op, lc.v, rc.v)
		if err != nil {
			return nil, 0, false
		}
		return &vconst{v: v}, value.Bool, true
	}
	if (lIsC && lc.v.Null) || (rIsC && rc.v.Null) {
		return &vconst{v: value.NewNull(value.Bool)}, value.Bool, true
	}
	if flt {
		ln = promoteFloat(ln, lt)
		rn = promoteFloat(rn, rt)
	}
	return &vcmp{op: op, l: ln, r: rn, flt: flt}, value.Bool, true
}

// foldLogic builds AND/OR with three-valued constant folding.
func foldLogic(and bool, ln, rn vexpr) (vexpr, value.Type, bool) {
	lc, lIsC := ln.(*vconst)
	rc, rIsC := rn.(*vconst)
	if lIsC && rIsC {
		return &vconst{v: logic3(and, lc.v, rc.v)}, value.Bool, true
	}
	// A dominant constant (false for AND, true for OR) decides the
	// whole expression; the vector side is pure, so skipping it is
	// unobservable.
	if lIsC && !lc.v.Null && lc.v.AsBool() != and {
		return lc, value.Bool, true
	}
	if rIsC && !rc.v.Null && rc.v.AsBool() != and {
		return rc, value.Bool, true
	}
	// A neutral constant (true for AND, false for OR) is the identity.
	if lIsC && !lc.v.Null {
		return rn, value.Bool, true
	}
	if rIsC && !rc.v.Null {
		return ln, value.Bool, true
	}
	return &vlogic{and: and, l: ln, r: rn}, value.Bool, true
}

// logic3 is scalar three-valued AND/OR.
func logic3(and bool, l, r value.Value) value.Value {
	lt, lf := !l.Null && l.AsBool(), !l.Null && !l.AsBool()
	rt, rf := !r.Null && r.AsBool(), !r.Null && !r.AsBool()
	if and {
		switch {
		case lf || rf:
			return value.NewBool(false)
		case l.Null || r.Null:
			return value.NewNull(value.Bool)
		default:
			return value.NewBool(true)
		}
	}
	switch {
	case lt || rt:
		return value.NewBool(true)
	case l.Null || r.Null:
		return value.NewNull(value.Bool)
	default:
		return value.NewBool(false)
	}
}

func foldNot(x vexpr) (vexpr, value.Type, bool) {
	if cn, ok := x.(*vconst); ok {
		if cn.v.Null {
			return &vconst{v: value.NewNull(value.Bool)}, value.Bool, true
		}
		return &vconst{v: value.NewBool(!cn.v.AsBool())}, value.Bool, true
	}
	return &vnot{x: x}, value.Bool, true
}

func foldNeg(x vexpr, t value.Type) (vexpr, value.Type, bool) {
	if cn, ok := x.(*vconst); ok {
		if cn.v.Null {
			return cn, t, true
		}
		if t == value.Int {
			return &vconst{v: value.NewInt(-cn.v.I)}, t, true
		}
		return &vconst{v: value.NewFloat(-cn.v.F)}, t, true
	}
	return &vneg{x: x, flt: t == value.Float}, t, true
}

// --- node evaluation ---------------------------------------------------------

type vconst struct{ v value.Value }

func (n *vconst) eval([]bat.Vector, int, int) vres { return vres{cv: n.v} }

type vcol struct{ idx int }

func (n *vcol) eval(batch []bat.Vector, lo, hi int) vres {
	return vres{vec: bat.ViewRange(batch[n.idx], lo, hi)}
}

type vtofloat struct{ x vexpr }

func (n *vtofloat) eval(batch []bat.Vector, lo, hi int) vres {
	r := n.x.eval(batch, lo, hi)
	return vres{vec: bat.ToFloat64(r.vec.(*bat.IntVector))}
}

type vneg struct {
	x   vexpr
	flt bool
}

func (n *vneg) eval(batch []bat.Vector, lo, hi int) vres {
	r := n.x.eval(batch, lo, hi)
	if n.flt {
		return vres{vec: bat.NegFloat64(r.vec.(*bat.FloatVector))}
	}
	return vres{vec: bat.NegInt64(r.vec.(*bat.IntVector))}
}

type vabs struct {
	x   vexpr
	flt bool
}

func (n *vabs) eval(batch []bat.Vector, lo, hi int) vres {
	r := n.x.eval(batch, lo, hi)
	if n.flt {
		return vres{vec: bat.AbsFloat64(r.vec.(*bat.FloatVector))}
	}
	return vres{vec: bat.AbsInt64(r.vec.(*bat.IntVector))}
}

type vmap1 struct {
	f func(float64) float64
	x vexpr
}

func (n *vmap1) eval(batch []bat.Vector, lo, hi int) vres {
	r := n.x.eval(batch, lo, hi)
	return vres{vec: bat.MapFloat64(n.f, r.vec.(*bat.FloatVector))}
}

type vpow struct{ l, r vexpr }

func (n *vpow) eval(batch []bat.Vector, lo, hi int) vres {
	l := n.l.eval(batch, lo, hi)
	r := n.r.eval(batch, lo, hi)
	switch {
	case l.vec == nil:
		return vres{vec: bat.PowCFloat64(l.cv.F, r.vec.(*bat.FloatVector))}
	case r.vec == nil:
		return vres{vec: bat.PowFloat64C(l.vec.(*bat.FloatVector), r.cv.F)}
	default:
		return vres{vec: bat.PowFloat64(l.vec.(*bat.FloatVector), r.vec.(*bat.FloatVector))}
	}
}

type varith struct {
	op   string
	l, r vexpr
	flt  bool
}

func (n *varith) eval(batch []bat.Vector, lo, hi int) vres {
	l := n.l.eval(batch, lo, hi)
	r := n.r.eval(batch, lo, hi)
	if n.flt {
		switch {
		case l.vec == nil:
			c, b := l.cv.F, r.vec.(*bat.FloatVector)
			switch n.op {
			case "+":
				return vres{vec: bat.AddFloat64C(b, c)}
			case "-":
				return vres{vec: bat.SubCFloat64(c, b)}
			case "*":
				return vres{vec: bat.MulFloat64C(b, c)}
			case "/":
				return vres{vec: bat.DivCFloat64(c, b)}
			default:
				return vres{vec: bat.ModCFloat64(c, b)}
			}
		case r.vec == nil:
			a, c := l.vec.(*bat.FloatVector), r.cv.F
			switch n.op {
			case "+":
				return vres{vec: bat.AddFloat64C(a, c)}
			case "-":
				return vres{vec: bat.SubFloat64C(a, c)}
			case "*":
				return vres{vec: bat.MulFloat64C(a, c)}
			case "/":
				return vres{vec: bat.DivFloat64C(a, c)}
			default:
				return vres{vec: bat.ModFloat64C(a, c)}
			}
		default:
			a, b := l.vec.(*bat.FloatVector), r.vec.(*bat.FloatVector)
			switch n.op {
			case "+":
				return vres{vec: bat.AddFloat64(a, b)}
			case "-":
				return vres{vec: bat.SubFloat64(a, b)}
			case "*":
				return vres{vec: bat.MulFloat64(a, b)}
			case "/":
				return vres{vec: bat.DivFloat64(a, b)}
			default:
				return vres{vec: bat.ModFloat64(a, b)}
			}
		}
	}
	switch {
	case l.vec == nil:
		c, b := l.cv.I, r.vec.(*bat.IntVector)
		switch n.op {
		case "+":
			return vres{vec: bat.AddInt64C(b, c)}
		case "-":
			return vres{vec: bat.SubCInt64(c, b)}
		case "*":
			return vres{vec: bat.MulInt64C(b, c)}
		case "/":
			return vres{vec: bat.DivCInt64(c, b)}
		default:
			return vres{vec: bat.ModCInt64(c, b)}
		}
	case r.vec == nil:
		a, c := l.vec.(*bat.IntVector), r.cv.I
		switch n.op {
		case "+":
			return vres{vec: bat.AddInt64C(a, c)}
		case "-":
			return vres{vec: bat.SubInt64C(a, c)}
		case "*":
			return vres{vec: bat.MulInt64C(a, c)}
		case "/":
			return vres{vec: bat.DivInt64C(a, c)}
		default:
			return vres{vec: bat.ModInt64C(a, c)}
		}
	default:
		a, b := l.vec.(*bat.IntVector), r.vec.(*bat.IntVector)
		switch n.op {
		case "+":
			return vres{vec: bat.AddInt64(a, b)}
		case "-":
			return vres{vec: bat.SubInt64(a, b)}
		case "*":
			return vres{vec: bat.MulInt64(a, b)}
		case "/":
			return vres{vec: bat.DivInt64(a, b)}
		default:
			return vres{vec: bat.ModInt64(a, b)}
		}
	}
}

// flipCmp mirrors an operator across its operands (c < x ≡ x > c).
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

type vcmp struct {
	op   string
	l, r vexpr
	flt  bool
}

func (n *vcmp) eval(batch []bat.Vector, lo, hi int) vres {
	l := n.l.eval(batch, lo, hi)
	r := n.r.eval(batch, lo, hi)
	if n.flt {
		switch {
		case l.vec == nil:
			return vres{vec: bat.CmpFloat64C(flipCmp(n.op), r.vec.(*bat.FloatVector), l.cv.F)}
		case r.vec == nil:
			return vres{vec: bat.CmpFloat64C(n.op, l.vec.(*bat.FloatVector), r.cv.F)}
		default:
			return vres{vec: bat.CmpFloat64(n.op, l.vec.(*bat.FloatVector), r.vec.(*bat.FloatVector))}
		}
	}
	switch {
	case l.vec == nil:
		return vres{vec: bat.CmpInt64C(flipCmp(n.op), r.vec.(*bat.IntVector), l.cv.I)}
	case r.vec == nil:
		return vres{vec: bat.CmpInt64C(n.op, l.vec.(*bat.IntVector), r.cv.I)}
	default:
		return vres{vec: bat.CmpInt64(n.op, l.vec.(*bat.IntVector), r.vec.(*bat.IntVector))}
	}
}

type vlogic struct {
	and  bool
	l, r vexpr
}

func (n *vlogic) eval(batch []bat.Vector, lo, hi int) vres {
	l := n.l.eval(batch, lo, hi)
	r := n.r.eval(batch, lo, hi)
	lb := boolOperand(l, hi-lo)
	rb := boolOperand(r, hi-lo)
	if n.and {
		return vres{vec: bat.AndBool(lb, rb)}
	}
	return vres{vec: bat.OrBool(lb, rb)}
}

// boolOperand materializes a boolean operand (constants here are
// always NULL — non-NULL ones folded at compile time).
func boolOperand(r vres, n int) *bat.BoolVector {
	if r.vec != nil {
		return r.vec.(*bat.BoolVector)
	}
	return bat.Broadcast(r.cv, value.Bool, n).(*bat.BoolVector)
}

type vnot struct{ x vexpr }

func (n *vnot) eval(batch []bat.Vector, lo, hi int) vres {
	r := n.x.eval(batch, lo, hi)
	return vres{vec: bat.NotBool(r.vec.(*bat.BoolVector))}
}

type visnull struct {
	x   vexpr
	neg bool
}

func (n *visnull) eval(batch []bat.Vector, lo, hi int) vres {
	r := n.x.eval(batch, lo, hi)
	return vres{vec: bat.IsNullVec(r.vec, n.neg)}
}

// --- engine-level program cache ---------------------------------------------

// vecCompile returns the memoized compiled program for x against the
// given column layout, or nil when x is unsupported or vectorization
// is disabled. Programs live alongside the plan cache: prepared
// statements and cached statements compile kernels once, and DDL
// invalidates both together.
func (e *Engine) vecCompile(x ast.Expr, cols []Col, strict bool) *vecProg {
	if !e.vectorized || x == nil {
		return nil
	}
	// Strict and loose bindings cache under distinct keys: one
	// expression may run through both the morsel path (rowEnv binding)
	// and the stream path (valuesEnv binding) and must not evict the
	// other variant on every execution.
	key := vecCacheKey{x: x, strict: strict}
	e.vecMu.Lock()
	ent, hit := e.vecCache[key]
	e.vecMu.Unlock()
	if hit && ent.sigMatchesEntry(cols, strict) {
		e.metrics().vecHit.Inc()
		return ent.prog
	}
	e.metrics().vecMiss.Inc()
	prog := compileVec(x, cols, strict)
	if prog != nil {
		e.metrics().vecKernel.Inc()
	} else {
		e.metrics().vecFallback.Inc()
	}
	ent = &vecCacheEntry{prog: prog, cols: append([]Col(nil), cols...), strict: strict}
	e.vecMu.Lock()
	if e.vecCache == nil || len(e.vecCache) >= planCacheMax {
		e.vecCache = make(map[vecCacheKey]*vecCacheEntry)
	}
	e.vecCache[key] = ent
	e.vecMu.Unlock()
	return prog
}

// vecCacheKey identifies one compilation: the expression node plus the
// binding mode it was compiled under.
type vecCacheKey struct {
	x      ast.Expr
	strict bool
}

// vecCacheEntry caches one compilation result; prog == nil records
// "unsupported" so repeated executions skip re-analysis.
type vecCacheEntry struct {
	prog   *vecProg
	cols   []Col
	strict bool
}

func (ent *vecCacheEntry) sigMatchesEntry(cols []Col, strict bool) bool {
	if ent.prog != nil {
		return ent.prog.sigMatches(cols, strict)
	}
	if ent.strict != strict || len(ent.cols) != len(cols) {
		return false
	}
	for i := range cols {
		if ent.cols[i] != cols[i] {
			return false
		}
	}
	return true
}

// invalidateVecCache drops compiled programs and fused-path verdicts
// (parallelism or the vectorization knob change what the fused path
// offers; DDL needs no explicit drop — programs validate against the
// current column signature and fused verdicts carry a catalog-version
// stamp).
func (e *Engine) invalidateVecCache() {
	e.vecMu.Lock()
	e.vecCache = nil
	e.fusedSkip = nil
	e.vecMu.Unlock()
}

// --- output finalization -----------------------------------------------------

// finalizeVecOutput applies buildProjected's type-promotion rule to a
// vectorized output column: a column with no non-NULL values becomes a
// Float column of NULLs (promoteType's fallback), anything else keeps
// its static kernel type.
func finalizeVecOutput(vec bat.Vector) (bat.Vector, value.Type) {
	if bat.HasNonNull(vec) {
		return vec, vec.Type()
	}
	out := bat.New(value.Float, vec.Len())
	nv := value.NewNull(value.Float)
	for i := vec.Len(); i > 0; i-- {
		out.Append(nv)
	}
	return out, value.Float
}
