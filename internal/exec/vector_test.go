package exec

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

// parseExprT parses a scalar expression through the real SQL parser,
// so compiler tests see production AST shapes.
func parseExprT(t *testing.T, s string) ast.Expr {
	t.Helper()
	x, err := parser.ParseExpr(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return x
}

// vecTestDataset builds a small typed dataset with NULLs sprinkled in.
func vecTestDataset() *Dataset {
	cols := []Col{
		{Name: "x", Qual: "m", Typ: value.Int, IsDim: true},
		{Name: "v", Qual: "m", Typ: value.Float},
		{Name: "w", Qual: "m", Typ: value.Float},
		{Name: "s", Qual: "m", Typ: value.String},
	}
	ds := NewDataset(cols)
	null := value.NewNull(value.Float)
	rows := [][]value.Value{
		{value.NewInt(0), value.NewFloat(1.5), null, value.NewString("a")},
		{value.NewInt(5), value.NewFloat(-2), value.NewFloat(8), value.NewString("b")},
		{value.NewInt(10), value.NewFloat(0), null, value.NewString("c")},
	}
	for _, r := range rows {
		ds.Append(r)
	}
	return ds
}

// evalInterp evaluates x per row through the interpreter, the
// reference the kernels must match exactly.
func evalInterp(t *testing.T, x ast.Expr, ds *Dataset) []value.Value {
	t.Helper()
	ev := expr.New()
	out := make([]value.Value, ds.NumRows())
	for r := range out {
		v, err := ev.Eval(x, &rowEnv{d: ds, row: r})
		if err != nil {
			t.Fatalf("interp eval: %v", err)
		}
		out[r] = v
	}
	return out
}

// TestCompileVecMatchesInterpreter compiles a spread of expressions and
// checks element-by-element agreement with the interpreter, including
// value types of non-NULL results.
func TestCompileVecMatchesInterpreter(t *testing.T) {
	ds := vecTestDataset()
	exprs := []string{
		`x + 1`, `1 + x`, `x - 3`, `3 - x`, `x * 2`, `x / 3`, `x / 0`, `MOD(x, 3)`, `MOD(3, x)`,
		`v + x`, `v * 2.0`, `v / w`, `MOD(v, 2)`, `-x`, `-v`,
		`x > 4`, `x = 5`, `x <> 5`, `4 < x`, `v >= 0`, `v < w`, `w <= 8`,
		`v > 0 AND x < 8`, `w > 0 OR v > 0`, `NOT (v > 0)`,
		`w IS NULL`, `w IS NOT NULL`, `s IS NULL`,
		`x BETWEEN 2 AND 8`, `x NOT BETWEEN 2 AND 8`, `v BETWEEN 0.0 AND 2.0`,
		`x IN (0, 10)`, `x NOT IN (0, 10)`,
		`ABS(v)`, `ABS(x - 7)`, `SQRT(v + 3)`, `POWER(x, 2)`, `FLOOR(v)`, `MOD(x * 31 + 1, 7) < 3`,
		`x`, `v`, `w`, `s`,
		`1 + 2 * 3`, `10 / 0`, `1 = 1 AND 2 > 3`,
	}
	for _, src := range exprs {
		x := parseExprT(t, src)
		prog := compileVec(x, ds.Cols, true)
		if prog == nil {
			t.Errorf("%s: expected to compile", src)
			continue
		}
		if !prog.validFor(ds.Vecs) {
			t.Errorf("%s: program invalid for its own layout", src)
			continue
		}
		want := evalInterp(t, x, ds)
		got := prog.eval(ds.Vecs, 0, ds.NumRows())
		for r, w := range want {
			g := got.Get(r)
			if g.String() != w.String() {
				t.Errorf("%s row %d: kernel %s, interpreter %s", src, r, g, w)
			}
			if !w.Null && g.Typ != w.Typ {
				t.Errorf("%s row %d: kernel type %s, interpreter %s", src, r, g.Typ, w.Typ)
			}
		}
	}
}

// TestCompileVecUnsupportedFallsBack checks constructs outside the
// kernel surface are rejected (the caller then uses the interpreter).
func TestCompileVecUnsupportedFallsBack(t *testing.T) {
	ds := vecTestDataset()
	for _, src := range []string{
		`CASE WHEN x > 1 THEN 1 ELSE 0 END`, // CASE
		`s || 'x'`,                          // string operator
		`CAST(x AS FLOAT)`,                  // cast
		`x + s`,                             // non-numeric arithmetic
		`s = 'a'`,                           // non-numeric comparison
		`RAND()`,                            // stateful builtin
		`COALESCE(w, v)`,                    // unsupported builtin
		`nosuchcol + 1`,                     // unbound name
		`?p + 1`,                            // host parameter
		`x BETWEEN 1 AND v`,                 // non-constant bound
		`x IN (1, v)`,                       // non-constant element
		`SUM(v)`,                            // aggregate
	} {
		if compileVec(parseExprT(t, src), ds.Cols, true) != nil {
			t.Errorf("%s: expected compile to fail", src)
		}
	}
}

// TestCompileVecBindingModes checks strict binding rejects ambiguous
// names (where the interpreter would error) while loose binding takes
// the first match (valuesEnv semantics).
func TestCompileVecBindingModes(t *testing.T) {
	cols := []Col{
		{Name: "v", Qual: "a", Typ: value.Int},
		{Name: "v", Qual: "b", Typ: value.Int},
	}
	x := parseExprT(t, `v + 1`)
	if compileVec(x, cols, true) != nil {
		t.Error("strict binding should reject the ambiguous name")
	}
	prog := compileVec(x, cols, false)
	if prog == nil {
		t.Fatal("loose binding should take the first match")
	}
	batch := []bat.Vector{bat.NewIntVector([]int64{41}), bat.NewIntVector([]int64{0})}
	if got := prog.eval(batch, 0, 1).Get(0); got.I != 42 {
		t.Errorf("loose binding evaluated %s, want 42", got)
	}
	// Qualified references disambiguate in both modes.
	qx := parseExprT(t, `b.v + 1`)
	sp := compileVec(qx, cols, true)
	if sp == nil {
		t.Fatal("qualified name should compile strictly")
	}
	if got := sp.eval(batch, 0, 1).Get(0); got.I != 1 {
		t.Errorf("qualified binding evaluated %s, want 1", got)
	}
}

// TestVecFilterSel checks predicate truthiness over batches, including
// the numeric-truthiness path of WHERE <numeric>.
func TestVecFilterSel(t *testing.T) {
	ds := vecTestDataset()
	prog := compileVec(parseExprT(t, `v > 0 OR w > 0`), ds.Cols, true)
	if prog == nil {
		t.Fatal("predicate should compile")
	}
	sel := prog.filterSel(ds.Vecs, 0, ds.NumRows())
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("filterSel = %v, want [0 1]", sel)
	}
	num := compileVec(parseExprT(t, `x`), ds.Cols, true)
	sel = num.filterSel(ds.Vecs, 0, ds.NumRows())
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("numeric truthiness sel = %v, want [1 2]", sel)
	}
}

// TestVecCacheInvalidation checks the program cache keys on the column
// signature: the same AST bound against a different layout recompiles
// instead of reusing stale column indexes.
func TestVecCacheInvalidation(t *testing.T) {
	e := New()
	x := parseExprT(t, `x + 1`)
	colsA := []Col{{Name: "x", Typ: value.Int}}
	colsB := []Col{{Name: "pad", Typ: value.Float}, {Name: "x", Typ: value.Int}}
	p1 := e.vecCompile(x, colsA, true)
	if p1 == nil {
		t.Fatal("compile against layout A failed")
	}
	p2 := e.vecCompile(x, colsB, true)
	if p2 == nil {
		t.Fatal("compile against layout B failed")
	}
	batch := []bat.Vector{bat.NewFloatVector([]float64{0}), bat.NewIntVector([]int64{9})}
	if got := p2.eval(batch, 0, 1).Get(0); got.I != 10 {
		t.Errorf("recompiled program evaluated %s, want 10", got)
	}
	// Disabling vectorization turns compilation off entirely.
	e.SetVectorized(false)
	if e.vecCompile(x, colsA, true) != nil {
		t.Error("vecCompile should return nil when vectorization is off")
	}
}

// TestFinalizeVecOutput checks the all-NULL column refinement matches
// the interpreter's promoteType fallback.
func TestFinalizeVecOutput(t *testing.T) {
	iv := bat.New(value.Int, 2)
	iv.Append(value.NewNull(value.Int))
	iv.Append(value.NewNull(value.Int))
	v, typ := finalizeVecOutput(iv)
	if typ != value.Float {
		t.Errorf("all-NULL column type = %s, want FLOAT", typ)
	}
	if v.Len() != 2 || !v.IsNull(0) || !v.IsNull(1) {
		t.Error("all-NULL column lost its NULLs")
	}
	iv2 := bat.New(value.Int, 1)
	iv2.Append(value.NewInt(3))
	_, typ = finalizeVecOutput(iv2)
	if typ != value.Int {
		t.Errorf("non-NULL column type = %s, want INTEGER", typ)
	}
}
