package exec

import (
	"strings"
	"time"

	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// This file is the hash-join operator behind JOIN ... ON. The ON
// conjunction splits into cross-side equality pairs (the hash key) and
// a residual predicate. The smaller input becomes the build side —
// both inputs are materialized at this point, so "estimated
// cardinality" is exact — and the probe streams against a partitioned
// hash table: keys are extracted (in parallel morsels when the
// statement runs parallel), rows are split by key hash into
// power-of-two partitions, per-partition maps build independently, and
// probe morsels emit (left, right) row-index pairs that merge in
// morsel order. Output is byte-identical to the serial nested
// hash-join at any parallelism: rows appear in (left row, right row)
// lexicographic order, restored by a counting sort when the build side
// was the left input. Final columns materialize with vectorized
// gathers instead of per-cell boxing.

// joinKeys is one side's extracted hash-key material: the composite
// key string and its hash per row; null rows (any NULL key column, the
// SQL equality semantics) are excluded from matching.
type joinKeys struct {
	key  []string
	hash []uint64
	null []bool
}

// extractJoinKeys builds the composite key of every row of ds over the
// key columns in cols. Runs over the morsel pool when par > 1 and the
// input is large enough; the output is position-indexed, so the
// parallel split needs no merge step.
func (e *Engine) extractJoinKeys(ds *Dataset, cols []int, par int) (*joinKeys, error) {
	n := ds.NumRows()
	jk := &joinKeys{
		key:  make([]string, n),
		hash: make([]uint64, n),
		null: make([]bool, n),
	}
	fill := func(lo, hi int, ctxPoll func(i int) error) error {
		var sb strings.Builder
		for i := lo; i < hi; i++ {
			if i&1023 == 0 && ctxPoll != nil {
				if err := ctxPoll(i); err != nil {
					return err
				}
			}
			sb.Reset()
			null := false
			for _, c := range cols {
				v := ds.Vecs[c].Get(i)
				if v.Null {
					null = true
					break
				}
				sb.WriteString(v.String())
				sb.WriteByte('\x00')
			}
			if null {
				jk.null[i] = true
				continue
			}
			k := sb.String()
			jk.key[i] = k
			jk.hash[i] = fnv64a(k)
		}
		return nil
	}
	if par > 1 && e.pool != nil && n >= 2*e.pool.Workers() {
		err := e.pool.ForEachCtx(e.ctx(), n, e.pool.MorselFor(n), func(m parallelMorsel) error {
			return fill(m.Lo, m.Hi, nil)
		})
		if err != nil {
			return nil, err
		}
		return jk, e.chargeJoinKeys(jk)
	}
	if err := fill(0, n, func(int) error { return e.canceled() }); err != nil {
		return nil, err
	}
	return jk, e.chargeJoinKeys(jk)
}

// chargeJoinKeys posts one side's key material to the statement budget
// (one charge per side; the byte walk runs only when a budget is
// armed).
func (e *Engine) chargeJoinKeys(jk *joinKeys) error {
	if e.budget == nil {
		return nil
	}
	n := int64(len(jk.key)) * 25 // string header + hash + null flag
	for _, k := range jk.key {
		n += int64(len(k))
	}
	return chargeBudget(e.budget, n)
}

// fnv64a is the FNV-1a hash of s (inlined to avoid per-row hasher
// allocations).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// joinPartitions splits the build side's row indexes by hash into
// power-of-two partitions (ascending row order within each) and builds
// one hash map per partition, independently across the pool.
type joinPartitions struct {
	mask uint64
	idx  []map[string][]int
}

func (e *Engine) buildJoinPartitions(keys *joinKeys, nparts int, par int) (*joinPartitions, error) {
	if err := faultinject.Hit("join.build"); err != nil {
		return nil, err
	}
	jp := &joinPartitions{mask: uint64(nparts - 1), idx: make([]map[string][]int, nparts)}
	rows := make([][]int, nparts)
	built := int64(0)
	for i := range keys.key {
		if keys.null[i] {
			continue
		}
		p := keys.hash[i] & jp.mask
		rows[p] = append(rows[p], i)
		built++
	}
	// Hash-table footprint: per build row, a partition index entry plus
	// its share of map bucket overhead (keys alias the extracted key
	// strings, charged by chargeJoinKeys).
	if err := chargeBudget(e.budget, built*40); err != nil {
		return nil, err
	}
	build := func(p int) {
		m := make(map[string][]int, len(rows[p]))
		for _, i := range rows[p] {
			k := keys.key[i]
			m[k] = append(m[k], i)
		}
		jp.idx[p] = m
	}
	if par > 1 && e.pool != nil && nparts >= 2 {
		err := e.pool.ForEachCtx(e.ctx(), nparts, 1, func(m parallelMorsel) error {
			for p := m.Lo; p < m.Hi; p++ {
				build(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		for p := range jp.idx {
			build(p)
		}
	}
	return jp, nil
}

// lookup returns the build-side rows matching the probe key (ascending
// build-row order).
func (jp *joinPartitions) lookup(key string, hash uint64) []int {
	return jp.idx[hash&jp.mask][key]
}

// nextPow2 rounds n up to a power of two (min 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// join executes JOIN ... ON with a partitioned hash join when the
// condition is a conjunction of cross-side equalities; otherwise it
// filters the Cartesian product. par > 1 parallelizes key extraction,
// partition build and probe over the morsel pool; results are
// byte-identical at any parallelism.
func (e *Engine) join(l, r *Dataset, j *ast.Join, outer expr.Env, par int) (*Dataset, error) {
	if j.Kind == "CROSS" || j.On == nil {
		return crossJoin(l, r), nil
	}
	pf := e.prof
	var t0 time.Time
	if pf != nil {
		t0 = time.Now()
		pf.Join.RowsIn.Add(int64(l.NumRows() + r.NumRows()))
	}
	type keyPair struct{ li, ri int }
	var pairs []keyPair
	var residual []ast.Expr
	for _, c := range splitConjuncts(j.On) {
		b, ok := c.(*ast.Binary)
		if !ok || b.Op != "=" {
			residual = append(residual, c)
			continue
		}
		lid, lok := b.L.(*ast.Ident)
		rid, rok := b.R.(*ast.Ident)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		li, ri := l.ColIndex(lid.Table, lid.Name), r.ColIndex(rid.Table, rid.Name)
		if li >= 0 && ri >= 0 {
			pairs = append(pairs, keyPair{li, ri})
			continue
		}
		li, ri = l.ColIndex(rid.Table, rid.Name), r.ColIndex(lid.Table, lid.Name)
		if li >= 0 && ri >= 0 {
			pairs = append(pairs, keyPair{li, ri})
			continue
		}
		residual = append(residual, c)
	}
	cols := append(append([]Col(nil), l.Cols...), r.Cols...)
	if len(pairs) == 0 {
		// Pure residual join: filter the cross product row by row.
		out := NewDataset(cols)
		row := make([]value.Value, len(cols))
		env := &valuesEnv{cols: cols, vals: row, outer: outer}
		for i := 0; i < l.NumRows(); i++ {
			for j2 := 0; j2 < r.NumRows(); j2++ {
				for c := range l.Cols {
					row[c] = l.Vecs[c].Get(i)
				}
				for c := range r.Cols {
					row[len(l.Cols)+c] = r.Vecs[c].Get(j2)
				}
				keep := true
				for _, rc := range residual {
					ok, err := e.Ev.EvalBool(rc, env)
					if err != nil {
						return nil, err
					}
					if !ok {
						keep = false
						break
					}
				}
				if keep {
					out.Append(row)
				}
			}
		}
		if pf != nil {
			pf.Join.AddNanos(time.Since(t0))
			pf.Join.RowsOut.Add(int64(out.NumRows()))
			pf.Join.RowBatches.Add(1)
		}
		return out, nil
	}
	lcols := make([]int, len(pairs))
	rcols := make([]int, len(pairs))
	for pi, p := range pairs {
		lcols[pi], rcols[pi] = p.li, p.ri
	}
	// Build-side choice by cardinality: the smaller input builds the
	// hash table, the larger streams through it. Both inputs are
	// materialized here, so the estimate is exact; ties keep the
	// right-side build. EXPLAIN's cost annotation applies the same rule
	// to its zone-map row estimates.
	buildLeft := l.NumRows() < r.NumRows()
	bd, pd := r, l
	bcols, pcols := rcols, lcols
	if buildLeft {
		bd, pd = l, r
		bcols, pcols = lcols, rcols
	}
	bkeys, err := e.extractJoinKeys(bd, bcols, par)
	if err != nil {
		return nil, err
	}
	pkeys, err := e.extractJoinKeys(pd, pcols, par)
	if err != nil {
		return nil, err
	}
	workers := 1
	if par > 1 && e.pool != nil {
		workers = e.pool.Workers()
	}
	nparts := nextPow2(workers)
	jp, err := e.buildJoinPartitions(bkeys, nparts, par)
	if err != nil {
		return nil, err
	}
	// Probe. Each morsel collects its (probe, build) index pairs
	// locally; morsel buffers merge in morsel order, so the pair stream
	// is in ascending probe-row order regardless of parallelism. The
	// residual predicate filters during the probe (each worker binds
	// its own row buffer).
	pn := pd.NumRows()
	probe := func(lo, hi int, pi, bi *[]int, ctxPoll func() error) error {
		var row []value.Value
		var env *valuesEnv
		if len(residual) > 0 {
			row = make([]value.Value, len(cols))
			env = &valuesEnv{cols: cols, vals: row, outer: outer}
		}
		for i := lo; i < hi; i++ {
			if i&1023 == 0 && ctxPoll != nil {
				if err := ctxPoll(); err != nil {
					return err
				}
			}
			if pkeys.null[i] {
				continue
			}
			for _, b := range jp.lookup(pkeys.key[i], pkeys.hash[i]) {
				if len(residual) > 0 {
					li, ri := i, b
					if buildLeft {
						li, ri = b, i
					}
					for c := range l.Cols {
						row[c] = l.Vecs[c].Get(li)
					}
					for c := range r.Cols {
						row[len(l.Cols)+c] = r.Vecs[c].Get(ri)
					}
					keep := true
					for _, rc := range residual {
						ok, err := e.Ev.EvalBool(rc, env)
						if err != nil {
							return err
						}
						if !ok {
							keep = false
							break
						}
					}
					if !keep {
						continue
					}
				}
				*pi = append(*pi, i)
				*bi = append(*bi, b)
			}
		}
		return nil
	}
	var probeIdx, buildIdx []int
	if par > 1 && e.pool != nil && pn >= 2*e.pool.Workers() {
		morsel := e.pool.MorselFor(pn)
		slots := (pn + morsel - 1) / morsel
		pparts := make([][]int, slots)
		bparts := make([][]int, slots)
		ctx := e.ctx()
		err := e.pool.ForEachCtx(ctx, pn, morsel, func(m parallelMorsel) error {
			var pi, bi []int
			if err := probe(m.Lo, m.Hi, &pi, &bi, ctx.Err); err != nil {
				return err
			}
			slot := m.Lo / morsel
			pparts[slot], bparts[slot] = pi, bi
			return nil
		})
		if err != nil {
			return nil, err
		}
		total := 0
		for _, p := range pparts {
			total += len(p)
		}
		probeIdx = make([]int, 0, total)
		buildIdx = make([]int, 0, total)
		for s := range pparts {
			probeIdx = append(probeIdx, pparts[s]...)
			buildIdx = append(buildIdx, bparts[s]...)
		}
	} else {
		if err := probe(0, pn, &probeIdx, &buildIdx, e.canceled); err != nil {
			return nil, err
		}
	}
	leftIdx, rightIdx := probeIdx, buildIdx
	if buildLeft {
		// Pairs arrived in (right asc, left asc) order; restore the
		// (left asc, right asc) output contract with a stable counting
		// sort on the left row index — O(pairs + left rows), and stable,
		// so right indexes stay ascending within one left row.
		leftIdx, rightIdx = countingSortPairs(buildIdx, probeIdx, l.NumRows())
	}
	out := &Dataset{Cols: cols, Vecs: make([]bat.Vector, len(cols))}
	for c := range l.Cols {
		out.Vecs[c] = l.Vecs[c].Gather(leftIdx)
	}
	for c := range r.Cols {
		out.Vecs[len(l.Cols)+c] = r.Vecs[c].Gather(rightIdx)
	}
	if err := chargeBudget(e.budget, approxDatasetBytes(out)); err != nil {
		return nil, err
	}
	if pf != nil {
		pf.Join.AddNanos(time.Since(t0))
		pf.Join.RowsOut.Add(int64(out.NumRows()))
		pf.Join.Chunks.Add(int64(nparts))
		pf.Join.VecBatches.Add(1)
	}
	return out, nil
}

// countingSortPairs stably reorders (major, minor) index pairs into
// ascending major order; n is the exclusive upper bound of major
// values. The input arrives sorted by minor, so equal-major runs come
// out in ascending minor order.
func countingSortPairs(major, minor []int, n int) (outMajor, outMinor []int) {
	count := make([]int, n+1)
	for _, m := range major {
		count[m+1]++
	}
	for i := 1; i <= n; i++ {
		count[i] += count[i-1]
	}
	outMajor = make([]int, len(major))
	outMinor = make([]int, len(minor))
	for k := range major {
		pos := count[major[k]]
		count[major[k]]++
		outMajor[pos] = major[k]
		outMinor[pos] = minor[k]
	}
	return outMajor, outMinor
}
