// Package exec implements the SciQL query executor: column-at-a-time
// evaluation of SELECT (including structural tiling), the array DML
// semantics of §3.2 (cell updates, spreadsheet-style insert/delete
// shifting), coercions between TABLE and ARRAY perspectives (§3.3),
// and white-/black-box user-defined functions (§6).
package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/value"
)

// Col describes one column of a result set.
type Col struct {
	// Name is the output column name.
	Name string
	// Qual is the source qualifier (table/array name or alias) used to
	// resolve qualified references; empty for computed columns.
	Qual string
	// Typ is the column type.
	Typ value.Type
	// IsDim marks SciQL dimension columns ([x] target qualifiers and
	// array-scan index columns).
	IsDim bool
}

// Dataset is a materialized relation: the unit of data flow between
// operators and the engine's query result.
type Dataset struct {
	Cols []Col
	Vecs []bat.Vector
}

// NewDataset allocates an empty dataset with the given columns.
func NewDataset(cols []Col) *Dataset {
	d := &Dataset{Cols: cols}
	d.Vecs = make([]bat.Vector, len(cols))
	for i, c := range cols {
		d.Vecs[i] = bat.New(c.Typ, 0)
	}
	return d
}

// NumRows returns the row count.
func (d *Dataset) NumRows() int {
	if len(d.Vecs) == 0 {
		return 0
	}
	return d.Vecs[0].Len()
}

// NumCols returns the column count.
func (d *Dataset) NumCols() int { return len(d.Cols) }

// Append adds one row.
func (d *Dataset) Append(vals []value.Value) {
	for i, v := range vals {
		d.Vecs[i].Append(v)
	}
}

// Row returns row i as values (freshly allocated).
func (d *Dataset) Row(i int) []value.Value {
	out := make([]value.Value, len(d.Vecs))
	for c, v := range d.Vecs {
		out[c] = v.Get(i)
	}
	return out
}

// Get returns the value at (row, col).
func (d *Dataset) Get(row, col int) value.Value { return d.Vecs[col].Get(row) }

// ColIndex finds a column by (optional) qualifier and name; -1 when
// absent, -2 when ambiguous.
func (d *Dataset) ColIndex(qual, name string) int {
	found := -1
	for i, c := range d.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qual, qual) {
			continue
		}
		if found >= 0 {
			return -2
		}
		found = i
	}
	return found
}

// Gather returns a new dataset with the rows at idx.
func (d *Dataset) Gather(idx []int) *Dataset {
	out := &Dataset{Cols: d.Cols, Vecs: make([]bat.Vector, len(d.Vecs))}
	for i, v := range d.Vecs {
		out.Vecs[i] = v.Gather(idx)
	}
	return out
}

// SortBy stably sorts rows by the given column positions, ascending
// with NULLs first; desc flips per key.
func (d *Dataset) SortBy(cols []int, desc []bool) {
	n := d.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, c := range cols {
			cmp := value.Compare(d.Vecs[c].Get(idx[a]), d.Vecs[c].Get(idx[b]))
			if cmp == 0 {
				continue
			}
			if len(desc) > k && desc[k] {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	for i, v := range d.Vecs {
		d.Vecs[i] = v.Gather(idx)
	}
}

// String renders the dataset as an aligned text table (the REPL and
// the examples use it).
func (d *Dataset) String() string {
	var sb strings.Builder
	widths := make([]int, len(d.Cols))
	header := make([]string, len(d.Cols))
	for i, c := range d.Cols {
		h := c.Name
		if c.IsDim {
			h = "[" + h + "]"
		}
		header[i] = h
		widths[i] = len(h)
	}
	n := d.NumRows()
	cells := make([][]string, n)
	for r := 0; r < n; r++ {
		cells[r] = make([]string, len(d.Cols))
		for c := range d.Cols {
			s := d.Vecs[c].Get(r).String()
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for i, h := range header {
		fmt.Fprintf(&sb, "%-*s", widths[i]+2, h)
	}
	sb.WriteByte('\n')
	for i := range header {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteByte('\n')
	for r := 0; r < n; r++ {
		for c := range d.Cols {
			fmt.Fprintf(&sb, "%-*s", widths[c]+2, cells[r][c])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// rowEnv exposes one dataset row as an expression environment, chained
// to an outer environment (correlated subqueries, anchor bindings).
type rowEnv struct {
	d      *Dataset
	row    int
	params map[string]value.Value
	outer  expr.Env
}

func (r *rowEnv) Lookup(qual, name string) (value.Value, bool) {
	i := r.d.ColIndex(qual, name)
	if i >= 0 {
		return r.d.Vecs[i].Get(r.row), true
	}
	if r.outer != nil {
		return r.outer.Lookup(qual, name)
	}
	return value.Value{}, false
}

func (r *rowEnv) Param(name string) (value.Value, bool) {
	if v, ok := r.params[strings.ToLower(name)]; ok {
		return v, true
	}
	if r.outer != nil {
		return r.outer.Param(name)
	}
	return value.Value{}, false
}

// valuesEnv exposes an in-flight row (column metadata + values) as an
// environment, without materializing a dataset.
type valuesEnv struct {
	cols  []Col
	vals  []value.Value
	outer expr.Env
}

func (v *valuesEnv) Lookup(qual, name string) (value.Value, bool) {
	found := -1
	for i, c := range v.cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qual, qual) {
			continue
		}
		found = i
		break
	}
	if found >= 0 {
		return v.vals[found], true
	}
	if v.outer != nil {
		return v.outer.Lookup(qual, name)
	}
	return value.Value{}, false
}

func (v *valuesEnv) Param(name string) (value.Value, bool) {
	if v.outer != nil {
		return v.outer.Param(name)
	}
	return value.Value{}, false
}

// dedupe removes duplicate rows (SELECT DISTINCT / UNION).
func (d *Dataset) dedupe() *Dataset {
	seen := make(map[string]bool)
	var keep []int
	n := d.NumRows()
	for r := 0; r < n; r++ {
		var sb strings.Builder
		for c := range d.Cols {
			sb.WriteString(d.Vecs[c].Get(r).String())
			sb.WriteByte('\x00')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			keep = append(keep, r)
		}
	}
	if len(keep) == n {
		return d
	}
	return d.Gather(keep)
}
