package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/array"
	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// cellEnv exposes one array cell (dimension variables and attribute
// values) as an environment; lookups may be qualified by the array
// name (wavelet: WHERE img.y = d.y inside img's UPDATE).
type cellEnv struct {
	arrName string
	vars    map[string]value.Value
	outer   expr.Env
}

func (c *cellEnv) Lookup(qual, name string) (value.Value, bool) {
	if qual == "" || strings.EqualFold(qual, c.arrName) {
		if v, ok := c.vars[strings.ToLower(name)]; ok {
			return v, true
		}
	}
	if c.outer != nil {
		return c.outer.Lookup(qual, name)
	}
	return value.Value{}, false
}

func (c *cellEnv) Param(name string) (value.Value, bool) {
	if c.outer != nil {
		return c.outer.Param(name)
	}
	return value.Value{}, false
}

// forEachCoveredCell iterates the cells an array UPDATE/DELETE ranges
// over: for bounded arrays every covered coordinate (the paper: "all
// cells covered by the dimensions exist"), for unbounded arrays the
// materialized cells. restrict (pushed-down dimension predicates)
// bounds the walk.
func (e *Engine) forEachCoveredCell(a *array.Array, restrict map[int]dimSel, visit func(coords []int64, vals []value.Value) error) error {
	nd, na := len(a.Schema.Dims), len(a.Schema.Attrs)
	bounded := true
	for _, d := range a.Schema.Dims {
		if !d.Bounded() {
			bounded = false
			break
		}
	}
	if !bounded {
		var err error
		visited := 0
		a.Store.Scan(func(coords []int64, vals []value.Value) bool {
			visited++
			if visited&1023 == 0 {
				if cerr := e.canceled(); cerr != nil {
					err = cerr
					return false
				}
			}
			for di, s := range restrict {
				if s.point && coords[di] != s.val {
					return true
				}
				if !s.point && !s.full && (coords[di] < s.lo || coords[di] >= s.hi) {
					return true
				}
			}
			err = visit(coords, vals)
			return err == nil
		})
		return err
	}
	coords := make([]int64, nd)
	vals := make([]value.Value, na)
	var rec func(di int) error
	rec = func(di int) error {
		if di == nd {
			if !a.ValidCoords(coords) {
				return nil
			}
			for ai := 0; ai < na; ai++ {
				vals[ai] = a.Store.Get(coords, ai)
			}
			return visit(coords, vals)
		}
		d := a.Schema.Dims[di]
		step := d.Step
		if step <= 0 {
			step = 1
		}
		lo, hi := d.Start, d.End
		if s, ok := restrict[di]; ok {
			if s.point {
				if !d.Contains(s.val) {
					return nil
				}
				coords[di] = s.val
				return rec(di + 1)
			}
			if !s.full {
				if s.lo > lo {
					lo = s.lo
				}
				if s.hi < hi {
					hi = s.hi
				}
			}
		}
		for v := lo; v < hi; v += step {
			coords[di] = v
			if err := rec(di + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

func (e *Engine) makeCellEnv(a *array.Array, coords []int64, vals []value.Value, outer expr.Env) *cellEnv {
	env := &cellEnv{arrName: a.Name, vars: make(map[string]value.Value, len(coords)+len(vals)), outer: outer}
	for i, d := range a.Schema.Dims {
		env.vars[strings.ToLower(d.Name)] = value.Value{Typ: d.Typ, I: coords[i]}
	}
	for i, at := range a.Schema.Attrs {
		env.vars[strings.ToLower(at.Name)] = vals[i]
	}
	return env
}

// --- UPDATE ------------------------------------------------------------------

func (e *Engine) execUpdate(s *ast.Update, outer expr.Env) error {
	if a, ok := e.mut.ArrayForWrite(s.Table); ok {
		return e.updateArray(a, s, outer)
	}
	if t, ok := e.mut.TableForWrite(s.Table); ok {
		return e.updateTable(t, s, outer)
	}
	return fmt.Errorf("UPDATE: no such table or array %s", s.Table)
}

func (e *Engine) updateArray(a *array.Array, s *ast.Update, outer expr.Env) error {
	// Nested-array targets (UPDATE experiment SET payload[x][y] = ...)
	// iterate the nested cells of every outer cell.
	if len(s.Sets) == 1 {
		if ref, ok := s.Sets[0].Target.(*ast.ArrayRef); ok {
			if id, ok2 := ref.Base.(*ast.Ident); ok2 {
				if ai := attrIndexFold(a, id.Name); ai >= 0 && a.Schema.Attrs[ai].Typ == value.Array {
					return e.updateNestedArray(a, ai, ref, s, outer)
				}
			}
		}
	}
	conjs := splitConjuncts(s.Where)
	consumed := make([]bool, len(conjs))
	restrict := e.pushdownDims(a, a.Name, conjs, consumed, nil, outer)
	var residual []ast.Expr
	for i, c := range conjs {
		if !consumed[i] {
			residual = append(residual, c)
		}
	}
	where := andAll(residual)
	return e.forEachCoveredCell(a, restrict, func(coords []int64, vals []value.Value) error {
		env := e.makeCellEnv(a, coords, vals, outer)
		if where != nil {
			ok, err := e.Ev.EvalBool(where, env)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		// Assignments are applied sequentially so later SET clauses see
		// earlier results (the NDVI pipeline relies on this).
		for _, asg := range s.Sets {
			tCoords, ai, err := e.resolveAssignTarget(a, asg.Target, coords, env)
			if err != nil {
				return err
			}
			v, err := e.Ev.Eval(asg.Value, env)
			if err != nil {
				return err
			}
			cv, err := value.Coerce(v, a.Schema.Attrs[ai].Typ)
			if err != nil {
				cv = value.NewNull(a.Schema.Attrs[ai].Typ)
			}
			if err := e.writeCell(a, tCoords, ai, cv); err != nil {
				return err
			}
			env.vars[strings.ToLower(a.Schema.Attrs[ai].Name)] = cv
		}
		return nil
	})
}

// writeCell writes honoring attribute CHECK constraints (content
// checks nullify failing values, Fig. 2's sparse form).
func (e *Engine) writeCell(a *array.Array, coords []int64, attr int, v value.Value) error {
	if !a.ValidCoords(coords) {
		return nil // silently outside the valid domain
	}
	at := a.Schema.Attrs[attr]
	if at.Check != nil && !v.Null && !at.Check(v) {
		v = value.NewNull(at.Typ)
	}
	return a.Store.Set(coords, attr, v)
}

// resolveAssignTarget maps a SET target onto (coords, attr index).
// Plain identifiers write the current cell; array references evaluate
// their indexers under the cell environment (m[x].v writes row x).
func (e *Engine) resolveAssignTarget(a *array.Array, target ast.Expr, cur []int64, env expr.Env) ([]int64, int, error) {
	switch t := target.(type) {
	case *ast.Ident:
		ai := attrIndexFold(a, t.Name)
		if ai < 0 {
			return nil, 0, fmt.Errorf("array %s has no attribute %s", a.Name, t.Name)
		}
		return cur, ai, nil
	case *ast.ArrayRef:
		id, ok := t.Base.(*ast.Ident)
		if !ok || (!strings.EqualFold(id.Name, a.Name) && attrIndexFold(a, id.Name) < 0) {
			return nil, 0, fmt.Errorf("assignment target must reference %s", a.Name)
		}
		sels, err := e.resolveIndexers(a, t.Indexers, env)
		if err != nil {
			return nil, 0, err
		}
		coords := make([]int64, len(sels))
		for i, s := range sels {
			if !s.point {
				return nil, 0, fmt.Errorf("assignment target must use point indexes")
			}
			coords[i] = s.val
		}
		ai, err := pickAttr(a, t.Attr)
		if err != nil {
			return nil, 0, err
		}
		return coords, ai, nil
	}
	return nil, 0, fmt.Errorf("invalid assignment target %T", target)
}

// updateNestedArray handles SET <nested>[i][j] = expr over an
// array-valued attribute: the free index variables range over the
// nested array's cells (§3.2's payload example). The nested array is
// cloned before mutation and written back into the (already private)
// outer cell: boxed array values are shared across catalog versions
// by the store's shallow clone, so writing in place would leak the
// update into snapshots pinned by concurrent readers.
func (e *Engine) updateNestedArray(a *array.Array, ai int, ref *ast.ArrayRef, s *ast.Update, outer expr.Env) error {
	return e.forEachCoveredCell(a, nil, func(coords []int64, vals []value.Value) error {
		nv := vals[ai]
		if nv.Null || nv.Typ != value.Array {
			return nil
		}
		shared, ok := nv.A.(*array.Array)
		if !ok {
			return nil
		}
		nested := shared.Clone()
		if err := a.Store.Set(append([]int64(nil), coords...), ai, value.NewArray(nested)); err != nil {
			return err
		}
		outerCell := e.makeCellEnv(a, coords, vals, outer)
		nd := len(nested.Schema.Dims)
		return e.forEachCoveredCell(nested, nil, func(nc []int64, nvals []value.Value) error {
			env := e.makeCellEnv(nested, nc, nvals, outerCell)
			if s.Where != nil {
				ok, err := e.Ev.EvalBool(s.Where, env)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			v, err := e.Ev.Eval(s.Sets[0].Value, env)
			if err != nil {
				return err
			}
			nai, err := pickAttr(nested, ref.Attr)
			if err != nil {
				return err
			}
			cv, err := value.Coerce(v, nested.Schema.Attrs[nai].Typ)
			if err != nil {
				cv = value.NewNull(nested.Schema.Attrs[nai].Typ)
			}
			_ = nd
			return nested.Store.Set(nc, nai, cv)
		})
	})
}

func (e *Engine) updateTable(t *catalogTable, s *ast.Update, outer expr.Env) error {
	return e.updateTableImpl(t, s, outer)
}

// --- SET statement -------------------------------------------------------------

// arrayForSet resolves the target array of a standalone SET: catalog
// arrays come back as this statement's private copy-on-write version;
// environment-bound arrays (PSM locals and parameters are private
// values already) resolve like any array base.
func (e *Engine) arrayForSet(base ast.Expr, env expr.Env) (*array.Array, error) {
	if id, ok := base.(*ast.Ident); ok && id.Table == "" {
		if _, bound := env.Lookup("", id.Name); !bound {
			if a, ok := e.mut.ArrayForWrite(id.Name); ok {
				return a, nil
			}
		}
	}
	return e.resolveArrayBase(base, env)
}

// execSetStmt implements the standalone guarded SET form (§4.2):
// SET vector[x].v = CASE ... END. Free dimension variables in the
// target's indexers range over all valid dimension values; a guarded
// CASE with no matching arm leaves the cell unchanged.
func (e *Engine) execSetStmt(s *ast.SetStmt, outer expr.Env) error {
	ref, ok := s.Assign.Target.(*ast.ArrayRef)
	if !ok {
		return fmt.Errorf("SET requires an array reference target")
	}
	a, err := e.arrayForSet(ref.Base, outer)
	if err != nil {
		return err
	}
	ai, err := pickAttr(a, ref.Attr)
	if err != nil {
		return err
	}
	guarded := false
	if c, ok := s.Assign.Value.(*ast.Case); ok && c.Else == nil {
		guarded = true
	}
	// Positional list assignment: SET vector[0:2].v = (e1, e2).
	if list, ok := s.Assign.Value.(*ast.ExprList); ok {
		sels, err := e.resolveIndexers(a, ref.Indexers, outer)
		if err != nil {
			return err
		}
		var coordsList [][]int64
		cur := make([]int64, len(sels))
		var rec func(di int)
		rec = func(di int) {
			if di == len(sels) {
				coordsList = append(coordsList, append([]int64(nil), cur...))
				return
			}
			sl := sels[di]
			if sl.point {
				cur[di] = sl.val
				rec(di + 1)
				return
			}
			step := sl.step
			if step <= 0 {
				step = 1
			}
			for v := sl.lo; v < sl.hi; v += step {
				cur[di] = v
				rec(di + 1)
			}
		}
		rec(0)
		if len(list.Elems) > len(coordsList) {
			return fmt.Errorf("SET: %d values for %d cells", len(list.Elems), len(coordsList))
		}
		for i, el := range list.Elems {
			v, err := e.Ev.Eval(el, outer)
			if err != nil {
				return err
			}
			cv, err := value.Coerce(v, a.Schema.Attrs[ai].Typ)
			if err != nil {
				return err
			}
			if err := e.writeCell(a, coordsList[i], ai, cv); err != nil {
				return err
			}
		}
		return nil
	}
	// General form: iterate covered cells; the target indexers are
	// evaluated per cell (free variables bind to the cell coords).
	return e.forEachCoveredCell(a, nil, func(coords []int64, vals []value.Value) error {
		env := e.makeCellEnv(a, coords, vals, outer)
		sels, err := e.resolveIndexers(a, ref.Indexers, env)
		if err != nil {
			return err
		}
		target := make([]int64, len(sels))
		for i, sl := range sels {
			if sl.point {
				target[i] = sl.val
			} else {
				target[i] = coords[i]
			}
		}
		// Only write when this cell is the addressed one.
		for i := range target {
			if target[i] != coords[i] {
				return nil
			}
		}
		v, err := e.Ev.Eval(s.Assign.Value, env)
		if err != nil {
			return err
		}
		if guarded && v.Null {
			return nil
		}
		cv, err := value.Coerce(v, a.Schema.Attrs[ai].Typ)
		if err != nil {
			cv = value.NewNull(a.Schema.Attrs[ai].Typ)
		}
		return e.writeCell(a, coords, ai, cv)
	})
}

// --- INSERT ---------------------------------------------------------------------

func (e *Engine) execInsert(s *ast.Insert, outer expr.Env) error {
	if a, ok := e.mut.ArrayForWrite(s.Table); ok {
		return e.insertArray(a, s, outer)
	}
	if t, ok := e.mut.TableForWrite(s.Table); ok {
		return e.insertTable(t, s, outer)
	}
	return fmt.Errorf("INSERT: no such table or array %s", s.Table)
}

func (e *Engine) insertArray(a *array.Array, s *ast.Insert, outer expr.Env) error {
	if s.Select != nil {
		ds, err := e.execSelect(s.Select, outer)
		if err != nil {
			return err
		}
		return e.fillArrayFromDataset(a, ds)
	}
	nd, na := len(a.Schema.Dims), len(a.Schema.Attrs)
	for _, row := range s.Values {
		if len(row) > nd+na {
			return fmt.Errorf("INSERT INTO %s: too many values", a.Name)
		}
		vals := make([]value.Value, len(row))
		for i, x := range row {
			v, err := e.Ev.Eval(x, outer)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		coords := make([]int64, nd)
		for d := 0; d < nd; d++ {
			if d < len(vals) {
				coords[d] = vals[d].AsInt()
			}
		}
		if err := e.insertCell(a, coords, vals[nd:]); err != nil {
			return err
		}
	}
	return nil
}

// insertCell places one cell. If the target is occupied, rows and
// columns shift to make room (§3.2's spreadsheet semantics): every
// cell with coordinate >= the insert coordinate moves one step up in
// every dimension; for fixed-bound arrays, cells shifted past the
// bound are lost.
func (e *Engine) insertCell(a *array.Array, coords []int64, attrVals []value.Value) error {
	occupied := false
	for ai := range a.Schema.Attrs {
		if !a.Store.Get(coords, ai).Null {
			occupied = true
			break
		}
	}
	if occupied {
		if err := e.shiftForInsert(a, coords); err != nil {
			return err
		}
	}
	for ai := range a.Schema.Attrs {
		var v value.Value
		if ai < len(attrVals) {
			v = attrVals[ai]
		} else {
			v = defaultFor(a, coords, ai)
		}
		cv, err := value.Coerce(v, a.Schema.Attrs[ai].Typ)
		if err != nil {
			cv = value.NewNull(a.Schema.Attrs[ai].Typ)
		}
		if err := e.writeCell(a, coords, ai, cv); err != nil {
			return err
		}
	}
	return nil
}

func defaultFor(a *array.Array, coords []int64, ai int) value.Value {
	at := a.Schema.Attrs[ai]
	if at.DefaultFn != nil {
		return at.DefaultFn(coords)
	}
	return at.Default
}

func (e *Engine) shiftForInsert(a *array.Array, at []int64) error {
	st, err := e.newStore(a.Name, a.Schema)
	if err != nil {
		return err
	}
	moved := make([]int64, len(at))
	var werr error
	visited := 0
	a.Store.Scan(func(coords []int64, vals []value.Value) bool {
		visited++
		if visited&1023 == 0 {
			if err := e.canceled(); err != nil {
				werr = err
				return false
			}
		}
		copy(moved, coords)
		for d := range moved {
			step := a.Schema.Dims[d].Step
			if step <= 0 {
				step = 1
			}
			if moved[d] >= at[d] {
				moved[d] += step
			}
		}
		tmp := &array.Array{Name: a.Name, Schema: a.Schema, Store: st}
		if !tmp.ValidCoords(moved) {
			return true // shifted past a fixed bound: lost
		}
		for ai, v := range vals {
			if err := st.Set(moved, ai, v); err != nil {
				werr = err
				return false
			}
		}
		return true
	})
	if werr != nil {
		return werr
	}
	a.Store = st
	return nil
}

func (e *Engine) insertTable(t *catalogTable, s *ast.Insert, outer expr.Env) error {
	return e.insertTableImpl(t, s, outer)
}

// --- DELETE ---------------------------------------------------------------------

func (e *Engine) execDelete(s *ast.Delete, outer expr.Env) error {
	if a, ok := e.mut.ArrayForWrite(s.Table); ok {
		return e.deleteArray(a, s, outer)
	}
	if t, ok := e.mut.TableForWrite(s.Table); ok {
		return e.deleteTableImpl(t, s, outer)
	}
	return fmt.Errorf("DELETE: no such table or array %s", s.Table)
}

// deleteArray implements the anchor-kill semantics of §3.2: matched
// cells are deleted; any complete dimension line whose cells are all
// deleted is taken out, relocating the remaining cells toward the
// lower bounds; vacated cells reset to the attribute defaults.
func (e *Engine) deleteArray(a *array.Array, s *ast.Delete, outer expr.Env) error {
	nd := len(a.Schema.Dims)
	matched := make(map[string]bool)
	// lineTotal/lineDead count valid vs matched cells per (dim, value).
	lineTotal := make([]map[int64]int64, nd)
	lineDead := make([]map[int64]int64, nd)
	for d := 0; d < nd; d++ {
		lineTotal[d] = make(map[int64]int64)
		lineDead[d] = make(map[int64]int64)
	}
	err := e.forEachCoveredCell(a, nil, func(coords []int64, vals []value.Value) error {
		hit := true
		if s.Where != nil {
			env := e.makeCellEnv(a, coords, vals, outer)
			ok, err := e.Ev.EvalBool(s.Where, env)
			if err != nil {
				return err
			}
			hit = ok
		}
		for d := 0; d < nd; d++ {
			lineTotal[d][coords[d]]++
			if hit {
				lineDead[d][coords[d]]++
			}
		}
		if hit {
			matched[coordKey(coords)] = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(matched) == 0 {
		return nil
	}
	// Surviving line values per dimension, remapped onto the low end.
	remap := make([]map[int64]int64, nd)
	for d := 0; d < nd; d++ {
		var survive []int64
		for v, total := range lineTotal[d] {
			if lineDead[d][v] < total {
				survive = append(survive, v)
			}
		}
		sort.Slice(survive, func(i, j int) bool { return survive[i] < survive[j] })
		remap[d] = make(map[int64]int64, len(survive))
		dim := a.Schema.Dims[d]
		step := dim.Step
		if step <= 0 {
			step = 1
		}
		start := dim.Start
		if start == array.UnboundedLow {
			if len(survive) > 0 {
				start = survive[0]
			} else {
				start = 0
			}
		}
		for rank, v := range survive {
			remap[d][v] = start + int64(rank)*step
		}
	}
	st, err := e.newStore(a.Name, a.Schema)
	if err != nil {
		return err
	}
	nc := make([]int64, nd)
	var werr error
	visited := 0
	a.Store.Scan(func(coords []int64, vals []value.Value) bool {
		visited++
		if visited&1023 == 0 {
			if err := e.canceled(); err != nil {
				werr = err
				return false
			}
		}
		if matched[coordKey(coords)] {
			return true
		}
		for d := 0; d < nd; d++ {
			m, ok := remap[d][coords[d]]
			if !ok {
				return true
			}
			nc[d] = m
		}
		for ai, v := range vals {
			if err := st.Set(nc, ai, v); err != nil {
				werr = err
				return false
			}
		}
		return true
	})
	if werr != nil {
		return werr
	}
	a.Store = st
	return nil
}

func coordKey(coords []int64) string {
	var sb strings.Builder
	for _, c := range coords {
		fmt.Fprintf(&sb, "%d,", c)
	}
	return sb.String()
}
