package exec

import (
	"testing"

	"repro/internal/sql/parser"
	"repro/internal/storage"
)

// TestStorageHintCaseInsensitive is the regression test for hint-name
// case handling: hints are stored lowercased, so every lookup — the
// engine's CREATE path and the exported accessor — must match the
// catalog's case-insensitive array naming no matter how the caller
// spelled the name.
func TestStorageHintCaseInsensitive(t *testing.T) {
	e := New()
	e.SetStorageHint("CamelCase", storage.Hints{ForceScheme: storage.SchemeSlab, SlabSize: 4})

	for _, name := range []string{"CamelCase", "camelcase", "CAMELCASE"} {
		h := e.StorageHint(name)
		if h.ForceScheme != storage.SchemeSlab {
			t.Fatalf("StorageHint(%q).ForceScheme = %q, want %q", name, h.ForceScheme, storage.SchemeSlab)
		}
	}

	// CREATE under a different spelling must still honor the hint.
	stmt, err := parser.ParseOne(`CREATE ARRAY CAMELCASE (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(stmt, nil); err != nil {
		t.Fatal(err)
	}
	a, ok := e.Cat.Array("camelcase")
	if !ok {
		t.Fatal("array not in catalog")
	}
	if got := a.Store.Scheme(); got != storage.SchemeSlab {
		t.Fatalf("created array scheme = %q, want %q (hint ignored)", got, storage.SchemeSlab)
	}
}
