package exec

import (
	"context"
	"fmt"
	"iter"
	"strings"

	"repro/internal/array"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// This file is the pull/iterator execution path behind the public
// streaming API (sciql.Rows, the database/sql driver). A SELECT whose
// shape qualifies — a single catalog-array pipeline of scan → filter →
// project (+ LIMIT), engine-state-free expressions — yields rows as
// they are produced instead of materializing the whole result:
//
//   - serially, the interpreter walks the array store inside a
//     coroutine (iter.Pull), evaluating filter and projection per cell
//     and suspending after each emitted row;
//   - in parallel, the morsel pool evaluates filter+projection per
//     morsel and streams the merged partials to the consumer in morsel
//     order, so iteration order (and results) are identical to the
//     serial path; workers honor ctx.Done() between morsels, so
//     cancellation actually stops long scans.
//
// Everything else — aggregation, tiling, joins, ORDER BY, DISTINCT,
// set operations — executes through the materializing interpreter and
// is served from the completed dataset through the same Cursor
// interface: one implementation, two views.

// cursorItem is one step of a row stream: a row or a terminal error.
type cursorItem struct {
	row []value.Value
	err error
}

// Cursor is a pull-based row stream over a query result. It is not
// safe for concurrent use; Close must be called when done (Materialize
// and a drained Next loop close it implicitly).
type Cursor struct {
	cols []Col
	// items carry the projection metadata needed to rebuild a dataset
	// with the same column typing as the materialized path; nil for
	// dataset-backed cursors.
	items []ast.SelectItem
	// ds backs fallback cursors (materialized execution).
	ds  *Dataset
	row int // next row of ds
	// next/stop drive streaming cursors.
	next   func() (cursorItem, bool)
	stop   func()
	cancel context.CancelFunc
	done   bool
	err    error
}

// Cols describes the cursor's columns. For streaming cursors the
// types are provisional (computed expressions promote per row); names,
// qualifiers and dimension flags are exact.
func (c *Cursor) Cols() []Col { return c.cols }

// Next returns the next row, or (nil, nil) after the last one. The
// returned slice is owned by the caller. After an error, Next keeps
// returning the same error.
func (c *Cursor) Next() ([]value.Value, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.done {
		return nil, nil
	}
	if c.ds != nil {
		if c.row >= c.ds.NumRows() {
			c.done = true
			return nil, nil
		}
		row := c.ds.Row(c.row)
		c.row++
		return row, nil
	}
	it, ok := c.next()
	if !ok {
		c.done = true
		return nil, nil
	}
	if it.err != nil {
		c.err = it.err
		c.Close()
		return nil, it.err
	}
	return it.row, nil
}

// Close releases the stream: the producing coroutine is stopped and
// any in-flight parallel workers are canceled. Safe to call multiple
// times.
func (c *Cursor) Close() {
	c.done = true
	if c.cancel != nil {
		c.cancel()
	}
	if c.stop != nil {
		c.stop()
	}
}

// Materialize drains the cursor into a dataset with the same column
// metadata and type promotion as the materializing execution path, so
// the two views of one query are byte-identical.
func (c *Cursor) Materialize() (*Dataset, error) {
	if c.ds != nil {
		return c.ds, nil
	}
	defer c.Close()
	colVals := make([][]value.Value, len(c.items))
	for {
		row, err := c.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		for i, v := range row {
			colVals[i] = append(colVals[i], v)
		}
	}
	return buildProjected(c.items, colVals), nil
}

// Streaming reports whether rows are produced incrementally (as
// opposed to being served from a completed dataset).
func (c *Cursor) Streaming() bool { return c.ds == nil }

// datasetCursor wraps an already-materialized result.
func datasetCursor(ds *Dataset) *Cursor { return &Cursor{cols: ds.Cols, ds: ds} }

// streamPlan is a compiled streamable SELECT: one array scan with
// per-row filter and projection.
type streamPlan struct {
	arr    *array.Array
	qual   string
	sels   []dimSel
	eff    []dimSel
	attrs  []int // pruned scan projection (nil = all attributes)
	items  []ast.SelectItem
	where  ast.Expr // residual conjuncts after pushdown
	having ast.Expr // aggregate-free HAVING (post-where row filter)
	limit  int      // -1: none
	par    int
	outer  *baseEnv // host parameters
}

// QueryStream executes a SELECT as a row stream. Statements whose
// shape does not qualify for incremental execution are materialized
// (honoring ctx) and streamed from the completed dataset.
func (e *Engine) QueryStream(ctx context.Context, sel *ast.Select, params map[string]value.Value) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	norm := make(map[string]value.Value, len(params))
	for k, v := range params {
		norm[strings.ToLower(k)] = v
	}
	env := &baseEnv{params: norm}
	sp, ok, err := e.compileStream(sel, env)
	if err != nil {
		return nil, err
	}
	if !ok {
		ds, err := e.ExecContext(ctx, sel, params)
		if err != nil {
			return nil, err
		}
		return datasetCursor(ds), nil
	}
	cols := streamColumns(sp.items, sp.arr, sp.qual)
	if effProvablyEmpty(sp.eff) {
		// Disjoint slice ∩ predicate: an empty stream, no store walk.
		next, stop := iter.Pull(func(func(cursorItem) bool) {})
		return &Cursor{cols: cols, items: sp.items, next: next, stop: stop}, nil
	}
	if sp.par > 1 && e.pool != nil && sp.arr.Store.Len() >= minParallelScanCells {
		// Fan the scan itself out: chunks of the store are the morsel
		// domain, and filter + projection run per chunk inside the
		// scan — nothing is materialized up front.
		if cs, ok := sp.arr.Store.(array.ChunkedScanner); ok {
			if chunks := cs.ScanChunks(sp.par*scanChunksPerWorker, sp.attrs); len(chunks) >= 2 {
				return e.parallelStreamCursor(ctx, sp, chunks, cols), nil
			}
		}
	}
	return e.serialStreamCursor(ctx, sp, cols), nil
}

// compileStream vets the SELECT's shape and compiles the stream plan.
// ok is false (with no error) when the statement must fall back to the
// materializing path.
func (e *Engine) compileStream(sel *ast.Select, env *baseEnv) (*streamPlan, bool, error) {
	if sel.SetRight != nil || sel.Distinct || len(sel.OrderBy) > 0 ||
		sel.GroupBy != nil || len(sel.From) != 1 {
		return nil, false, nil
	}
	tr, ok := sel.From[0].(*ast.TableRef)
	if !ok || tr.Subquery != nil {
		return nil, false, nil
	}
	// Aggregates need the whole input; NEXT/subqueries/UDFs/RAND need
	// engine state (parSafeSelect vets all of those plus indexers).
	for _, it := range sel.Items {
		if it.Expr == nil || ast.HasAggregate(it.Expr) {
			return nil, false, nil
		}
	}
	if sel.Having != nil && ast.HasAggregate(sel.Having) {
		return nil, false, nil
	}
	if !parSafeSelect(sel) {
		return nil, false, nil
	}
	// Only catalog arrays stream; environment-bound arrays and tables
	// fall back (they are small or already materialized).
	if _, envBound := env.Lookup("", tr.Name); envBound {
		return nil, false, nil
	}
	arr, found := e.Cat.Array(tr.Name)
	if !found {
		return nil, false, nil
	}
	if e.fromIsVacuous(sel, env) {
		return nil, false, nil
	}
	sp := &streamPlan{arr: arr, qual: tr.Name, limit: -1, outer: env}
	if tr.Alias != "" {
		sp.qual = tr.Alias
	}
	if len(tr.Indexers) > 0 {
		sels, err := e.resolveIndexers(arr, tr.Indexers, env)
		if err != nil {
			return nil, false, err
		}
		sp.sels = sels
	}
	conjs := splitConjuncts(sel.Where)
	consumed := make([]bool, len(conjs))
	restrict := e.pushdownDims(arr, sp.qual, conjs, consumed, sp.sels, env)
	var remaining []ast.Expr
	for i, c := range conjs {
		if !consumed[i] {
			remaining = append(remaining, c)
		}
	}
	sp.where = andAll(remaining)
	sp.having = sel.Having
	sp.eff = effectiveSels(arr, sp.sels, restrict)
	// An all-point scan is a single cell read; the materialized path's
	// direct-read fast path keeps its exact hole semantics.
	allPoint := len(arr.Schema.Dims) > 0
	for i := range sp.eff {
		if !sp.eff[i].point {
			allPoint = false
			break
		}
	}
	if allPoint {
		return nil, false, nil
	}
	if sel.Limit != nil {
		lv, err := e.Ev.Eval(sel.Limit, env)
		if err != nil {
			return nil, false, err
		}
		if n := int(lv.AsInt()); n >= 0 {
			sp.limit = n
		} else {
			sp.limit = 0
		}
	}
	sp.items = expandStars(sel.Items, scanCols(arr, sp.qual))
	for _, it := range sp.items {
		if _, isStar := it.Expr.(*ast.Star); isStar {
			return nil, false, fmt.Errorf("cannot expand * against %s", sp.qual)
		}
	}
	dec := e.selectDecision(sel)
	sp.par = dec.par
	sp.attrs = dec.scanAttrs(arr, tr.Name)
	return sp, true, nil
}

// streamColumns builds the provisional column header of a streaming
// cursor: names, qualifiers and dimension flags are final; types of
// computed expressions refine during materialization.
func streamColumns(items []ast.SelectItem, a *array.Array, qual string) []Col {
	src := scanCols(a, qual)
	cols := make([]Col, len(items))
	for i, it := range items {
		cols[i] = Col{Name: itemName(it, i), Typ: value.Unknown, IsDim: it.DimQual}
		if id, ok := it.Expr.(*ast.Ident); ok {
			cols[i].Qual = id.Table
			for _, sc := range src {
				if strings.EqualFold(sc.Name, id.Name) && (id.Table == "" || strings.EqualFold(sc.Qual, id.Table)) {
					cols[i].Typ = sc.Typ
					break
				}
			}
		}
	}
	return cols
}

// serialStreamCursor walks the array store in a coroutine, yielding
// one projected row per matching cell. Only one of producer and
// consumer runs at a time (iter.Pull), so the path shares the serial
// interpreter's single-threaded evaluation model.
func (e *Engine) serialStreamCursor(ctx context.Context, sp *streamPlan, cols []Col) *Cursor {
	nd := len(sp.arr.Schema.Dims)
	seq := func(yield func(cursorItem) bool) {
		srcCols := scanColsPruned(sp.arr, sp.qual, sp.attrs)
		srcRow := make([]value.Value, len(srcCols))
		venv := &valuesEnv{cols: srcCols, vals: srcRow, outer: sp.outer}
		emitted := 0
		visited := 0
		storeScanPruned(sp.arr.Store, sp.attrs, func(coords []int64, vals []value.Value) bool {
			visited++
			if visited&255 == 0 {
				if err := ctx.Err(); err != nil {
					yield(cursorItem{err: err})
					return false
				}
			}
			if sp.limit >= 0 && emitted >= sp.limit {
				return false
			}
			if !effMatch(sp.eff, coords) {
				return true
			}
			for i, c := range coords {
				srcRow[i] = value.Value{Typ: sp.arr.Schema.Dims[i].Typ, I: c}
			}
			copy(srcRow[nd:], vals)
			row, keep, err := e.streamEvalRow(sp, venv)
			if err != nil {
				yield(cursorItem{err: err})
				return false
			}
			if !keep {
				return true
			}
			if !yield(cursorItem{row: row}) {
				return false
			}
			emitted++
			return sp.limit < 0 || emitted < sp.limit
		})
	}
	next, stop := iter.Pull(seq)
	return &Cursor{cols: cols, items: sp.items, next: next, stop: stop}
}

// streamEvalRow applies residual filter, HAVING and projection to one
// source row bound in env.
func (e *Engine) streamEvalRow(sp *streamPlan, env *valuesEnv) ([]value.Value, bool, error) {
	if sp.where != nil {
		ok, err := e.Ev.EvalBool(sp.where, env)
		if err != nil || !ok {
			return nil, false, err
		}
	}
	if sp.having != nil {
		ok, err := e.Ev.EvalBool(sp.having, env)
		if err != nil || !ok {
			return nil, false, err
		}
	}
	out := make([]value.Value, len(sp.items))
	for i, it := range sp.items {
		v, err := e.Ev.Eval(it.Expr, env)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// morselBatch is the unit the parallel stream sends from workers to
// the consumer: the projected rows of one scan chunk, tagged with the
// chunk ordinal for in-order merging.
type morselBatch struct {
	idx  int
	rows [][]value.Value
	err  error
}

// parallelStreamCursor fans the scan itself out over the morsel pool:
// each worker walks its store chunks, applying the effective dimension
// restriction, the residual filter and the projection per cell, and
// sends the chunk's rows to the consumer, which reorders batches by
// chunk ordinal. Chunk concatenation order equals serial scan order,
// so iteration order (and results) are identical to the serial path.
// Workers check ctx between chunks (and periodically inside a chunk)
// and sends select on ctx.Done(), so canceling the query (or closing
// the cursor early) stops the scan and leaks no goroutines.
func (e *Engine) parallelStreamCursor(ctx context.Context, sp *streamPlan, chunks []array.ChunkScan, cols []Col) *Cursor {
	nd := len(sp.arr.Schema.Dims)
	srcCols := scanColsPruned(sp.arr, sp.qual, sp.attrs)
	ictx, cancel := context.WithCancel(ctx)
	ch := make(chan morselBatch, 2*e.pool.Workers())
	started := false
	start := func() {
		started = true
		go func() {
			defer close(ch)
			err := e.pool.ForEachCtx(ictx, len(chunks), 1, func(m parallelMorsel) error {
				for ci := m.Lo; ci < m.Hi; ci++ {
					srcRow := make([]value.Value, len(srcCols))
					venv := &valuesEnv{cols: srcCols, vals: srcRow, outer: sp.outer}
					var rows [][]value.Value
					var evalErr error
					visited := 0
					chunks[ci](func(coords []int64, vals []value.Value) bool {
						visited++
						if visited&1023 == 0 {
							if err := ictx.Err(); err != nil {
								evalErr = err
								return false
							}
						}
						if !effMatch(sp.eff, coords) {
							return true
						}
						for i, c := range coords {
							srcRow[i] = value.Value{Typ: sp.arr.Schema.Dims[i].Typ, I: c}
						}
						copy(srcRow[nd:], vals)
						row, keep, err := e.streamEvalRow(sp, venv)
						if err != nil {
							evalErr = err
							return false
						}
						if keep {
							rows = append(rows, row)
						}
						return true
					})
					if evalErr != nil {
						return evalErr
					}
					select {
					case ch <- morselBatch{idx: ci, rows: rows}:
					case <-ictx.Done():
						return ictx.Err()
					}
				}
				return nil
			})
			if err != nil {
				select {
				case ch <- morselBatch{err: err}:
				case <-ictx.Done():
				}
			}
		}()
	}
	seq := func(yield func(cursorItem) bool) {
		defer cancel()
		if !started {
			start()
		}
		pending := make(map[int][][]value.Value)
		nextIdx := 0
		emitted := 0
		for b := range ch {
			if b.err != nil {
				yield(cursorItem{err: b.err})
				return
			}
			pending[b.idx] = b.rows
			for {
				rows, have := pending[nextIdx]
				if !have {
					break
				}
				delete(pending, nextIdx)
				nextIdx++
				for _, row := range rows {
					if sp.limit >= 0 && emitted >= sp.limit {
						return
					}
					if !yield(cursorItem{row: row}) {
						return
					}
					emitted++
				}
			}
		}
	}
	next, stop := iter.Pull(seq)
	return &Cursor{cols: cols, items: sp.items, next: next, stop: stop, cancel: cancel}
}

