package exec

import (
	"context"
	"fmt"
	"iter"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/array"
	"repro/internal/bat"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/sql/ast"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// This file is the pull/iterator execution path behind the public
// streaming API (sciql.Rows, the database/sql driver). A SELECT whose
// shape qualifies — a single catalog-array pipeline of scan → filter →
// project (+ LIMIT), engine-state-free expressions — yields rows as
// they are produced instead of materializing the whole result:
//
//   - serially, the interpreter walks the array store inside a
//     coroutine (iter.Pull), evaluating filter and projection per cell
//     and suspending after each emitted row;
//   - in parallel, the morsel pool evaluates filter+projection per
//     morsel and streams the merged partials to the consumer in morsel
//     order, so iteration order (and results) are identical to the
//     serial path; workers honor ctx.Done() between morsels, so
//     cancellation actually stops long scans.
//
// Everything else — aggregation, tiling, joins, ORDER BY, DISTINCT,
// set operations — executes through the materializing interpreter and
// is served from the completed dataset through the same Cursor
// interface: one implementation, two views.

// cursorItem is one step of a row stream: a row or a terminal error.
type cursorItem struct {
	row []value.Value
	err error
}

// vecBatch is one step of a batch stream: the projected rows of one
// scan batch as a dataset, or a terminal error. Vectorized cursors
// produce batches; Next unpacks them row by row while Materialize
// concatenates their columns wholesale.
type vecBatch struct {
	ds  *Dataset
	err error
}

// Cursor is a pull-based row stream over a query result. It is not
// safe for concurrent use; Close must be called when done (Materialize
// and a drained Next loop close it implicitly).
type Cursor struct {
	cols []Col
	// items carry the projection metadata needed to rebuild a dataset
	// with the same column typing as the materialized path; nil for
	// dataset-backed cursors.
	items []ast.SelectItem
	// ds backs fallback cursors (materialized execution).
	ds  *Dataset
	row int // next row of ds
	// next/stop drive row-streaming cursors.
	next   func() (cursorItem, bool)
	stop   func()
	cancel context.CancelFunc
	done   bool
	err    error
	// nextBatch/stopBatch drive vectorized (batch-streaming) cursors.
	nextBatch func() (vecBatch, bool)
	stopBatch func()
	// onClose releases resources held for the cursor's lifetime (the
	// session's pinned catalog snapshot); run once, on first Close.
	onClose func()
	// mapErr translates terminal errors at the governance boundary
	// (timeout translation, panic accounting); nil on ungoverned
	// cursors. Applied once — c.err latches the translated error.
	mapErr func(error) error
	// batchCols is the static output column template of a vectorized
	// cursor (kernel result types; all-NULL columns refine to Float at
	// materialization, like the interpreter's type promotion).
	batchCols []Col
	batch     *Dataset
	batchRow  int
}

// Cols describes the cursor's columns. For streaming cursors the
// types are provisional (computed expressions promote per row); names,
// qualifiers and dimension flags are exact.
func (c *Cursor) Cols() []Col { return c.cols }

// finishErr terminates the cursor with err: the governance boundary's
// translation applies (once — c.err latches the result), the cursor
// closes, and later Next calls keep returning the same error.
func (c *Cursor) finishErr(err error) error {
	if c.mapErr != nil {
		err = c.mapErr(err)
	}
	c.err = err
	c.Close()
	return err
}

// Next returns the next row, or (nil, nil) after the last one. The
// returned slice is owned by the caller. After an error, Next keeps
// returning the same error. A panic in the producing pipeline is
// contained here: it surfaces as a *governor.PanicError and the
// cursor's resources (snapshot pin, workers) are released.
func (c *Cursor) Next() (row []value.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			row, err = nil, c.finishErr(governor.NewPanicError(r, debug.Stack()))
		}
	}()
	if c.err != nil {
		return nil, c.err
	}
	if c.done {
		return nil, nil
	}
	if c.ds != nil {
		if c.row >= c.ds.NumRows() {
			c.done = true
			return nil, nil
		}
		row := c.ds.Row(c.row)
		c.row++
		return row, nil
	}
	if c.nextBatch != nil {
		for c.batch == nil || c.batchRow >= c.batch.NumRows() {
			b, ok := c.nextBatch()
			if !ok {
				c.done = true
				return nil, nil
			}
			if b.err != nil {
				return nil, c.finishErr(b.err)
			}
			c.batch, c.batchRow = b.ds, 0
		}
		row := c.batch.Row(c.batchRow)
		c.batchRow++
		return row, nil
	}
	it, ok := c.next()
	if !ok {
		c.done = true
		return nil, nil
	}
	if it.err != nil {
		return nil, c.finishErr(it.err)
	}
	return it.row, nil
}

// Close releases the stream: the producing coroutine is stopped and
// any in-flight parallel workers are canceled. Safe to call multiple
// times. The resource teardown runs in a deferred block so a failure
// mid-close (the cursor.close fault point, a panicking stop hook) can
// never leak the snapshot pin or the admission slot.
func (c *Cursor) Close() {
	defer func() {
		r := recover()
		if c.cancel != nil {
			c.cancel()
		}
		if c.stop != nil {
			c.stop()
		}
		if c.stopBatch != nil {
			c.stopBatch()
		}
		if c.onClose != nil {
			oc := c.onClose
			c.onClose = nil
			oc()
		}
		if r != nil {
			err := error(governor.NewPanicError(r, debug.Stack()))
			if c.mapErr != nil {
				err = c.mapErr(err)
			}
			if c.err == nil {
				c.err = err
			}
		}
	}()
	c.done = true
	if err := faultinject.Hit("cursor.close"); err != nil {
		if c.err == nil {
			c.err = err
		}
	}
}

// Materialize drains the cursor into a dataset with the same column
// metadata and type promotion as the materializing execution path, so
// the two views of one query are byte-identical.
func (c *Cursor) Materialize() (ds *Dataset, err error) {
	if c.ds != nil {
		return c.ds, nil
	}
	defer func() {
		if r := recover(); r != nil {
			ds, err = nil, c.finishErr(governor.NewPanicError(r, debug.Stack()))
		}
	}()
	defer c.Close()
	if c.nextBatch != nil {
		// Vectorized cursors materialize by concatenating batch columns
		// wholesale — no per-row boxing.
		acc := make([]bat.Vector, len(c.batchCols))
		for i, col := range c.batchCols {
			acc[i] = bat.New(col.Typ, 0)
		}
		if c.batch != nil && c.batchRow < c.batch.NumRows() {
			for i := range acc {
				acc[i] = bat.Concat(acc[i], bat.ViewRange(c.batch.Vecs[i], c.batchRow, c.batch.NumRows()))
			}
		}
		for !c.done && c.err == nil {
			b, ok := c.nextBatch()
			if !ok {
				break
			}
			if b.err != nil {
				return nil, c.finishErr(b.err)
			}
			for i := range acc {
				acc[i] = bat.Concat(acc[i], b.ds.Vecs[i])
			}
		}
		cols := append([]Col(nil), c.batchCols...)
		for i := range acc {
			v, t := finalizeVecOutput(acc[i])
			acc[i], cols[i].Typ = v, t
		}
		return &Dataset{Cols: cols, Vecs: acc}, nil
	}
	colVals := make([][]value.Value, len(c.items))
	for {
		row, err := c.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		for i, v := range row {
			colVals[i] = append(colVals[i], v)
		}
	}
	return buildProjected(c.items, colVals), nil
}

// Streaming reports whether rows are produced incrementally (as
// opposed to being served from a completed dataset).
func (c *Cursor) Streaming() bool { return c.ds == nil }

// datasetCursor wraps an already-materialized result.
func datasetCursor(ds *Dataset) *Cursor { return &Cursor{cols: ds.Cols, ds: ds} }

// DatasetCursor exposes the dataset-backed cursor to the public layer
// (EXPLAIN results stream through it like any other query).
func DatasetCursor(ds *Dataset) *Cursor { return datasetCursor(ds) }

// streamPlan is a compiled streamable SELECT: one array scan with
// per-row filter and projection.
type streamPlan struct {
	arr    *array.Array
	qual   string
	sels   []dimSel
	eff    []dimSel
	attrs  []int // pruned scan projection (nil = all attributes)
	items  []ast.SelectItem
	where  ast.Expr // residual conjuncts after pushdown
	having ast.Expr // aggregate-free HAVING (post-where row filter)
	limit  int      // -1: none
	par    int
	outer  *baseEnv // host parameters
	// vec holds the compiled kernel pipeline when filter, HAVING and
	// every projection item vectorize; nil falls back to the row
	// interpreter per cell.
	vec *streamVec
	// skip holds the compiled zone-map skip conditions; nil when chunk
	// skipping is off or nothing in the statement can prune a chunk.
	skip *chunkSkipper
	// prof is the profile collector of the arming EXPLAIN ANALYZE,
	// copied from the session at compile time so parallel workers never
	// read session state; nil on unprofiled statements.
	prof *telemetry.Profile
	// budget is the statement's memory account, copied from the session
	// at compile time for the same reason as prof; nil when no memory
	// limit is configured.
	budget *governor.Budget
}

// streamCounts accumulates one scan segment's row-flow locally (plain
// ints — no atomics inside the cell loop); flushStreamCounts publishes
// it with a handful of atomic adds per chunk.
type streamCounts struct {
	visited   int64 // cells walked
	matched   int64 // cells passing the effective dimension restriction
	postWhere int64 // rows surviving the residual WHERE
	emitted   int64 // rows surviving HAVING, projected and emitted
}

// flushStreamCounts publishes one scan segment (a chunk, or a whole
// serial scan) to the engine counters — and to the armed profile, when
// there is one — attributing the segment's wall time to the fused
// scan pipeline's root operator.
func (e *Engine) flushStreamCounts(sp *streamPlan, c *streamCounts, el time.Duration) {
	m := e.metrics()
	m.scanChunks.Inc()
	m.scanCells.Add(c.visited)
	m.scanRows.Add(c.emitted)
	p := sp.prof
	if p == nil {
		return
	}
	p.Scan.Chunks.Add(1)
	p.Scan.Cells.Add(c.visited)
	p.Scan.RowsOut.Add(c.matched)
	p.Scan.AddNanos(el)
	p.Scan.RowBatches.Add(1)
	if sp.where != nil {
		p.Filter.RowsIn.Add(c.matched)
		p.Filter.RowsOut.Add(c.postWhere)
		p.Filter.RowBatches.Add(1)
	}
	if sp.having != nil {
		p.Having.RowsIn.Add(c.postWhere)
		p.Having.RowsOut.Add(c.emitted)
		p.Having.RowBatches.Add(1)
	}
	p.Project.RowsIn.Add(c.emitted)
	p.Project.RowsOut.Add(c.emitted)
	p.Project.RowBatches.Add(1)
	if sp.limit >= 0 {
		p.Limit.RowsOut.Add(c.emitted)
		p.Limit.RowBatches.Add(1)
	}
}

// streamVec is the compiled vectorized pipeline of a streamable
// SELECT: per scan batch, the filter program produces a selection
// vector, the referenced columns gather through it, and the item
// programs evaluate over the gathered batch.
type streamVec struct {
	srcCols []Col      // pruned scan columns the programs bind against
	filter  *vecProg   // nil when every conjunct was pushed down
	having  *vecProg   // nil without HAVING
	items   []*vecProg // one per projection item
	gather  []int      // batch columns the item programs reference
	outCols []Col      // static output column template
}

// compileStreamVec compiles the stream plan's expressions into kernel
// programs; nil when any of them falls outside the vectorizable
// surface (the caller keeps the row pipeline).
func (e *Engine) compileStreamVec(sp *streamPlan) *streamVec {
	if !e.vectorized {
		return nil
	}
	srcCols := scanColsPruned(sp.arr, sp.qual, sp.attrs)
	sv := &streamVec{srcCols: srcCols}
	if sp.where != nil {
		if sv.filter = e.vecCompile(sp.where, srcCols, false); sv.filter == nil {
			return nil
		}
	}
	if sp.having != nil {
		if sv.having = e.vecCompile(sp.having, srcCols, false); sv.having == nil {
			return nil
		}
	}
	used := map[int]bool{}
	sv.items = make([]*vecProg, len(sp.items))
	sv.outCols = make([]Col, len(sp.items))
	for i, it := range sp.items {
		p := e.vecCompile(it.Expr, srcCols, false)
		if p == nil {
			return nil
		}
		sv.items[i] = p
		for _, ci := range p.used {
			used[ci] = true
		}
		sv.outCols[i] = Col{Name: itemName(it, i), Typ: p.typ, IsDim: it.DimQual}
		if id, ok := it.Expr.(*ast.Ident); ok {
			sv.outCols[i].Qual = id.Table
		}
	}
	for ci := range used {
		sv.gather = append(sv.gather, ci)
	}
	return sv
}

// vecProcessBatch runs the compiled pipeline over one input batch:
// filter → selection vector → gather → projection kernels. max caps
// the number of output rows (LIMIT pushdown; -1 for none).
func (e *Engine) vecProcessBatch(sp *streamPlan, in *Dataset, max int) *Dataset {
	sv := sp.vec
	pf := sp.prof
	n := in.NumRows()
	out := &Dataset{Cols: sv.outCols, Vecs: make([]bat.Vector, len(sv.outCols))}
	var sel []int
	all := true
	var t0 time.Time
	if sv.filter != nil {
		if pf != nil {
			t0 = time.Now()
		}
		sel = sv.filter.filterSel(in.Vecs, 0, n)
		if pf != nil {
			pf.Filter.AddNanos(time.Since(t0))
			pf.Filter.RowsIn.Add(int64(n))
			pf.Filter.RowsOut.Add(int64(len(sel)))
			pf.Filter.VecBatches.Add(1)
		}
		all = false
	}
	if sv.having != nil {
		if pf != nil {
			t0 = time.Now()
		}
		hv := sv.having.eval(in.Vecs, 0, n)
		if all {
			sel = make([]int, n)
			for i := range sel {
				sel[i] = i
			}
			all = false
		}
		pre := len(sel)
		sel = bat.AndSel(sel, hv)
		if pf != nil {
			pf.Having.AddNanos(time.Since(t0))
			pf.Having.RowsIn.Add(int64(pre))
			pf.Having.RowsOut.Add(int64(len(sel)))
			pf.Having.VecBatches.Add(1)
		}
	}
	m := n
	if !all {
		m = len(sel)
	}
	if max >= 0 && m > max {
		m = max
		if !all {
			sel = sel[:m]
		}
	}
	if pf != nil {
		t0 = time.Now()
	}
	gin := in.Vecs
	if !all || m < n {
		gin = make([]bat.Vector, len(in.Vecs))
		for _, ci := range sv.gather {
			if all {
				gin[ci] = bat.ViewRange(in.Vecs[ci], 0, m)
			} else {
				gin[ci] = in.Vecs[ci].Gather(sel)
			}
		}
	}
	for i, p := range sv.items {
		out.Vecs[i] = p.eval(gin, 0, m)
	}
	if pf != nil {
		pf.Project.AddNanos(time.Since(t0))
		pf.Project.RowsIn.Add(int64(m))
		pf.Project.RowsOut.Add(int64(m))
		pf.Project.VecBatches.Add(1)
		if sp.limit >= 0 {
			pf.Limit.RowsOut.Add(int64(m))
			pf.Limit.VecBatches.Add(1)
		}
	}
	e.metrics().scanRows.Add(int64(m))
	return out
}

// QueryStream executes a SELECT as a row stream. Statements whose
// shape does not qualify for incremental execution are materialized
// (honoring ctx) and streamed from the completed dataset. Like
// ExecContext it is a governance boundary, but the admission slot,
// memory budget and statement timer live for the cursor's lifetime:
// they release on Cursor.Close (or the teardown safety nets), not when
// this call returns.
func (e *Engine) QueryStream(ctx context.Context, sel *ast.Select, params map[string]value.Value) (cur *Cursor, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.stmtDepth > 0 {
		return e.queryStreamPinned(ctx, sel, params)
	}
	gov := e.gov
	admitRel, err := gov.Admit(ctx)
	if err != nil {
		return nil, err
	}
	sctx, cancel := gov.WithStatementTimeout(ctx)
	bud := gov.NewBudget()
	e.budget = bud
	e.stmtDepth++
	cleanup := func() {
		cancel()
		bud.Release()
		admitRel()
	}
	defer func() {
		e.stmtDepth--
		e.budget = nil
		if r := recover(); r != nil {
			cur, err = nil, governor.NewPanicError(r, debug.Stack())
		}
		err = govFinish(gov, sctx, err)
		if err != nil || cur == nil {
			cleanup()
			return
		}
		// Success: governance outlives the call. Terminal errors reported
		// through the cursor translate at the same boundary, and the
		// cursor's close hook — ledgered so teardown safety nets reach it
		// for cursors abandoned without Close — releases slot, budget and
		// timer.
		govRel := e.registerCursorRelease(cleanup)
		cur.mapErr = func(err error) error { return govFinish(gov, sctx, err) }
		prev := cur.onClose
		cur.onClose = func() {
			if prev != nil {
				prev()
			}
			govRel()
		}
	}()
	return e.queryStreamPinned(sctx, sel, params)
}

// queryStreamPinned is QueryStream inside the governance boundary:
// snapshot pinning, stream compilation and the materializing fallback.
func (e *Engine) queryStreamPinned(ctx context.Context, sel *ast.Select, params map[string]value.Value) (*Cursor, error) {
	start := time.Now()
	release := e.pinCursorSnapshot()
	// The pin releases on every exit — error, fallback, or a panic
	// propagating through compilation or the materializing fallback —
	// except when ownership transfers to the returned stream cursor.
	pinHeld := release != nil
	defer func() {
		if pinHeld {
			release()
		}
	}()
	norm := make(map[string]value.Value, len(params))
	for k, v := range params {
		norm[strings.ToLower(k)] = v
	}
	env := &baseEnv{params: norm}
	sp, ok, err := e.compileStream(sel, env)
	if err != nil {
		e.metrics().statement("select", time.Since(start))
		return nil, err
	}
	if !ok {
		// The materializing fallback runs through ExecContext, which
		// does its own statement accounting and snapshot pinning.
		ds, err := e.ExecContext(ctx, sel, params)
		if err != nil {
			return nil, err
		}
		return datasetCursor(ds), nil
	}
	cur := e.streamCursorFor(ctx, sp)
	met := e.metrics()
	cur.onClose = func() {
		if release != nil {
			release()
		}
		met.statement("select", time.Since(start))
	}
	pinHeld = false
	return cur, nil
}

// ReleaseCursorPins frees the catalog snapshots pinned by this
// session's still-open streaming cursors: the connection layer's
// teardown safety net for Rows abandoned without Close (context
// cancellation, a panicking consumer, a driver connection closed
// mid-iteration). Releasing is idempotent per cursor, so a later
// Cursor.Close finds nothing left to do.
func (e *Engine) ReleaseCursorPins() {
	for _, rel := range e.curPins {
		rel()
	}
}

// ReleaseAllCursorPins frees the cursor-held snapshot pins of every
// session of this database — DB.Close's safety net for Rows abandoned
// on implicit (per-call) sessions, which no connection teardown ever
// reaches. Like ReleaseCursorPins, it is a teardown call: run it after
// in-flight statements have finished.
func (sh *Shared) ReleaseAllCursorPins() {
	sh.curMu.Lock()
	rels := make([]func(), 0, len(sh.curRel))
	for _, rel := range sh.curRel {
		rels = append(rels, rel)
	}
	sh.curMu.Unlock()
	for _, rel := range rels {
		rel()
	}
}

// streamCursorFor picks the execution strategy for a compiled stream
// plan: vectorized batch cursors when the pipeline compiled into
// kernels, row cursors otherwise; parallel over scan chunks when the
// morsel pool and store support it.
func (e *Engine) streamCursorFor(ctx context.Context, sp *streamPlan) *Cursor {
	cols := streamColumns(sp.items, sp.arr, sp.qual)
	if effProvablyEmpty(sp.eff) {
		// Disjoint slice ∩ predicate: an empty stream, no store walk.
		next, stop := iter.Pull(func(func(cursorItem) bool) {})
		return &Cursor{cols: cols, items: sp.items, next: next, stop: stop}
	}
	if sp.par > 1 && e.pool != nil && sp.arr.Store.Len() >= minParallelScanCells {
		// Fan the scan itself out: chunks of the store are the morsel
		// domain, and filter + projection run per chunk inside the
		// scan — nothing is materialized up front.
		if cs, ok := sp.arr.Store.(array.ChunkedScanner); ok {
			if chunks := cs.ScanChunks(sp.par*scanChunksPerWorker, sp.attrs); len(chunks) >= 2 {
				chunks = e.skipChunks(sp.skip, sp.arr.Store, chunks, sp.par*scanChunksPerWorker, sp.prof)
				if sp.vec != nil {
					return e.parallelVecCursor(ctx, sp, chunks, cols)
				}
				return e.parallelStreamCursor(ctx, sp, chunks, cols)
			}
		}
	}
	if sp.vec != nil {
		return e.serialVecCursor(ctx, sp, cols)
	}
	return e.serialStreamCursor(ctx, sp, cols)
}

// compileStream vets the SELECT's shape and compiles the stream plan.
// ok is false (with no error) when the statement must fall back to the
// materializing path.
func (e *Engine) compileStream(sel *ast.Select, env *baseEnv) (*streamPlan, bool, error) {
	if sel.SetRight != nil || sel.Distinct || len(sel.OrderBy) > 0 ||
		sel.GroupBy != nil || len(sel.From) != 1 {
		return nil, false, nil
	}
	tr, ok := sel.From[0].(*ast.TableRef)
	if !ok || tr.Subquery != nil {
		return nil, false, nil
	}
	// Aggregates need the whole input; NEXT/subqueries/UDFs/RAND need
	// engine state (parSafeSelect vets all of those plus indexers).
	for _, it := range sel.Items {
		if it.Expr == nil || ast.HasAggregate(it.Expr) {
			return nil, false, nil
		}
	}
	if sel.Having != nil && ast.HasAggregate(sel.Having) {
		return nil, false, nil
	}
	if !parSafeSelect(sel) {
		return nil, false, nil
	}
	// Only catalog arrays stream; environment-bound arrays and tables
	// fall back (they are small or already materialized).
	if _, envBound := env.Lookup("", tr.Name); envBound {
		return nil, false, nil
	}
	arr, found := e.cat().Array(tr.Name)
	if !found {
		return nil, false, nil
	}
	if e.fromIsVacuous(sel, env) {
		return nil, false, nil
	}
	sp := &streamPlan{arr: arr, qual: tr.Name, limit: -1, outer: env, prof: e.prof, budget: e.budget}
	if tr.Alias != "" {
		sp.qual = tr.Alias
	}
	if len(tr.Indexers) > 0 {
		sels, err := e.resolveIndexers(arr, tr.Indexers, env)
		if err != nil {
			return nil, false, err
		}
		sp.sels = sels
	}
	conjs := splitConjuncts(sel.Where)
	consumed := make([]bool, len(conjs))
	restrict := e.pushdownDims(arr, sp.qual, conjs, consumed, sp.sels, env)
	var remaining []ast.Expr
	for i, c := range conjs {
		if !consumed[i] {
			remaining = append(remaining, c)
		}
	}
	sp.where = andAll(remaining)
	sp.having = sel.Having
	sp.eff = effectiveSels(arr, sp.sels, restrict)
	// An all-point scan is a single cell read; the materialized path's
	// direct-read fast path keeps its exact hole semantics.
	allPoint := len(arr.Schema.Dims) > 0
	for i := range sp.eff {
		if !sp.eff[i].point {
			allPoint = false
			break
		}
	}
	if allPoint {
		return nil, false, nil
	}
	if sel.Limit != nil {
		lv, err := e.Ev.Eval(sel.Limit, env)
		if err != nil {
			return nil, false, err
		}
		if n := int(lv.AsInt()); n >= 0 {
			sp.limit = n
		} else {
			sp.limit = 0
		}
	}
	sp.items = expandStars(sel.Items, scanCols(arr, sp.qual))
	for _, it := range sp.items {
		if _, isStar := it.Expr.(*ast.Star); isStar {
			return nil, false, fmt.Errorf("cannot expand * against %s", sp.qual)
		}
	}
	dec := e.selectDecision(sel)
	sp.par = dec.par
	sp.attrs = dec.scanAttrs(arr, tr.Name)
	sp.vec = e.compileStreamVec(sp)
	// Single-source statement: unqualified identifiers bind to this
	// array, so bare conjuncts are trusted for zone tests.
	sp.skip = e.buildChunkSkipper(arr, sp.qual, sp.eff, remaining, true)
	return sp, true, nil
}

// streamColumns builds the provisional column header of a streaming
// cursor: names, qualifiers and dimension flags are final; types of
// computed expressions refine during materialization.
func streamColumns(items []ast.SelectItem, a *array.Array, qual string) []Col {
	src := scanCols(a, qual)
	cols := make([]Col, len(items))
	for i, it := range items {
		cols[i] = Col{Name: itemName(it, i), Typ: value.Unknown, IsDim: it.DimQual}
		if id, ok := it.Expr.(*ast.Ident); ok {
			cols[i].Qual = id.Table
			for _, sc := range src {
				if strings.EqualFold(sc.Name, id.Name) && (id.Table == "" || strings.EqualFold(sc.Qual, id.Table)) {
					cols[i].Typ = sc.Typ
					break
				}
			}
		}
	}
	return cols
}

// serialStreamCursor walks the array store in a coroutine, yielding
// one projected row per matching cell. Only one of producer and
// consumer runs at a time (iter.Pull), so the path shares the serial
// interpreter's single-threaded evaluation model.
func (e *Engine) serialStreamCursor(ctx context.Context, sp *streamPlan, cols []Col) *Cursor {
	nd := len(sp.arr.Schema.Dims)
	scan := e.streamScan(sp)
	seq := func(yield func(cursorItem) bool) {
		srcCols := scanColsPruned(sp.arr, sp.qual, sp.attrs)
		srcRow := make([]value.Value, len(srcCols))
		venv := &valuesEnv{cols: srcCols, vals: srcRow, outer: sp.outer}
		emitted := 0
		var cnt streamCounts
		scanStart := time.Now()
		defer func() { e.flushStreamCounts(sp, &cnt, time.Since(scanStart)) }()
		if err := faultinject.Hit("scan.chunk"); err != nil {
			yield(cursorItem{err: err})
			return
		}
		scan(func(coords []int64, vals []value.Value) bool {
			cnt.visited++
			if cnt.visited&255 == 0 {
				if err := ctx.Err(); err != nil {
					yield(cursorItem{err: err})
					return false
				}
			}
			if sp.limit >= 0 && emitted >= sp.limit {
				return false
			}
			if !effMatch(sp.eff, coords) {
				return true
			}
			cnt.matched++
			for i, c := range coords {
				srcRow[i] = value.Value{Typ: sp.arr.Schema.Dims[i].Typ, I: c}
			}
			copy(srcRow[nd:], vals)
			row, keep, err := e.streamEvalRow(sp, venv, &cnt)
			if err != nil {
				yield(cursorItem{err: err})
				return false
			}
			if !keep {
				return true
			}
			if !yield(cursorItem{row: row}) {
				return false
			}
			emitted++
			cnt.emitted++
			return sp.limit < 0 || emitted < sp.limit
		})
	}
	next, stop := iter.Pull(seq)
	return &Cursor{cols: cols, items: sp.items, next: next, stop: stop}
}

// streamEvalRow applies residual filter, HAVING and projection to one
// source row bound in env, recording stage survivors in cnt.
func (e *Engine) streamEvalRow(sp *streamPlan, env *valuesEnv, cnt *streamCounts) ([]value.Value, bool, error) {
	if sp.where != nil {
		ok, err := e.Ev.EvalBool(sp.where, env)
		if err != nil || !ok {
			return nil, false, err
		}
	}
	cnt.postWhere++
	if sp.having != nil {
		ok, err := e.Ev.EvalBool(sp.having, env)
		if err != nil || !ok {
			return nil, false, err
		}
	}
	out := make([]value.Value, len(sp.items))
	for i, it := range sp.items {
		v, err := e.Ev.Eval(it.Expr, env)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// morselBatch is the unit the parallel stream sends from workers to
// the consumer: the projected rows of one scan chunk, tagged with the
// chunk ordinal for in-order merging.
type morselBatch struct {
	idx  int
	rows [][]value.Value
	err  error
}

// parallelStreamCursor fans the scan itself out over the morsel pool:
// each worker walks its store chunks, applying the effective dimension
// restriction, the residual filter and the projection per cell, and
// sends the chunk's rows to the consumer, which reorders batches by
// chunk ordinal. Chunk concatenation order equals serial scan order,
// so iteration order (and results) are identical to the serial path.
// Workers check ctx between chunks (and periodically inside a chunk)
// and sends select on ctx.Done(), so canceling the query (or closing
// the cursor early) stops the scan and leaks no goroutines.
func (e *Engine) parallelStreamCursor(ctx context.Context, sp *streamPlan, chunks []array.ChunkScan, cols []Col) *Cursor {
	nd := len(sp.arr.Schema.Dims)
	srcCols := scanColsPruned(sp.arr, sp.qual, sp.attrs)
	ictx, cancel := context.WithCancel(ctx)
	ch := make(chan morselBatch, 2*e.pool.Workers())
	started := false
	start := func() {
		started = true
		go func() {
			defer close(ch)
			err := e.pool.ForEachCtx(ictx, len(chunks), 1, func(m parallelMorsel) error {
				for ci := m.Lo; ci < m.Hi; ci++ {
					if err := faultinject.Hit("scan.chunk"); err != nil {
						return err
					}
					srcRow := make([]value.Value, len(srcCols))
					venv := &valuesEnv{cols: srcCols, vals: srcRow, outer: sp.outer}
					var rows [][]value.Value
					var evalErr error
					var cnt streamCounts
					chunkStart := time.Now()
					chunks[ci](func(coords []int64, vals []value.Value) bool {
						cnt.visited++
						if cnt.visited&1023 == 0 {
							if err := ictx.Err(); err != nil {
								evalErr = err
								return false
							}
						}
						if !effMatch(sp.eff, coords) {
							return true
						}
						cnt.matched++
						for i, c := range coords {
							srcRow[i] = value.Value{Typ: sp.arr.Schema.Dims[i].Typ, I: c}
						}
						copy(srcRow[nd:], vals)
						row, keep, err := e.streamEvalRow(sp, venv, &cnt)
						if err != nil {
							evalErr = err
							return false
						}
						if keep {
							rows = append(rows, row)
							cnt.emitted++
							// LIMIT pushdown: the final result takes at
							// most limit rows from any one chunk, so the
							// chunk scan can stop early.
							if sp.limit >= 0 && len(rows) >= sp.limit {
								return false
							}
						}
						return true
					})
					e.flushStreamCounts(sp, &cnt, time.Since(chunkStart))
					if evalErr == nil {
						// One charge per chunk for the buffered rows (the
						// hotloopflush discipline: no atomics in the cell loop).
						evalErr = chargeBudget(sp.budget, approxRowsBytes(rows))
					}
					if evalErr != nil {
						return evalErr
					}
					select {
					case ch <- morselBatch{idx: ci, rows: rows}:
					case <-ictx.Done():
						return ictx.Err()
					}
				}
				return nil
			})
			if err != nil {
				select {
				case ch <- morselBatch{err: err}:
				case <-ictx.Done():
				}
			}
		}()
	}
	seq := func(yield func(cursorItem) bool) {
		defer cancel()
		if !started {
			start()
		}
		pending := make(map[int][][]value.Value)
		nextIdx := 0
		emitted := 0
		for b := range ch {
			if b.err != nil {
				yield(cursorItem{err: b.err})
				return
			}
			pending[b.idx] = b.rows
			for {
				rows, have := pending[nextIdx]
				if !have {
					break
				}
				delete(pending, nextIdx)
				nextIdx++
				for _, row := range rows {
					if sp.limit >= 0 && emitted >= sp.limit {
						return
					}
					if !yield(cursorItem{row: row}) {
						return
					}
					emitted++
				}
			}
		}
	}
	next, stop := iter.Pull(seq)
	return &Cursor{cols: cols, items: sp.items, next: next, stop: stop, cancel: cancel}
}

// vecScanBatches drives one scan sequence through the batch buffer:
// cells passing the effective dimension restriction accumulate into
// srcCols column batches; flush runs at every vecBatchRows boundary
// and once at the end, and returning false from flush stops the scan
// (LIMIT satisfied or consumer gone). The context is polled every
// 1024 visited cells; its error is returned. Both vectorized cursors
// share this loop so their batch semantics cannot drift apart. The
// segment's cell/survivor counts publish once at the end; when a
// profile is armed, time spent inside flush (the kernel pipeline,
// timed per operator in vecProcessBatch) is subtracted from the scan's
// attribution.
func (e *Engine) vecScanBatches(ctx context.Context, sp *streamPlan, scan func(visit func(coords []int64, vals []value.Value) bool), flush func(in *Dataset) bool) error {
	if err := faultinject.Hit("scan.chunk"); err != nil {
		return err
	}
	sv := sp.vec
	nd := len(sp.arr.Schema.Dims)
	in := NewDataset(sv.srcCols)
	var ctxErr error
	stopped := false
	var cnt streamCounts
	profiled := sp.prof != nil
	scanStart := time.Now()
	var flushed time.Duration
	doFlush := func() bool {
		var t0 time.Time
		if profiled {
			t0 = time.Now()
		}
		ok := flush(in)
		if profiled {
			flushed += time.Since(t0)
		}
		// Fresh buffers every flush: kernel outputs may hold zero-copy
		// views of the batch columns.
		in = NewDataset(sv.srcCols)
		return ok
	}
	scan(func(coords []int64, vals []value.Value) bool {
		cnt.visited++
		if cnt.visited&1023 == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return false
			}
		}
		if !effMatch(sp.eff, coords) {
			return true
		}
		cnt.matched++
		for i, c := range coords {
			in.Vecs[i].(*bat.IntVector).AppendInt64(c)
		}
		for vi, v := range vals {
			in.Vecs[nd+vi].Append(v)
		}
		if in.NumRows() >= vecBatchRows && !doFlush() {
			stopped = true
			return false
		}
		return true
	})
	if ctxErr == nil && !stopped {
		doFlush()
	}
	m := e.metrics()
	m.scanChunks.Inc()
	m.scanCells.Add(cnt.visited)
	if p := sp.prof; p != nil {
		p.Scan.Chunks.Add(1)
		p.Scan.Cells.Add(cnt.visited)
		p.Scan.RowsOut.Add(cnt.matched)
		p.Scan.AddNanos(time.Since(scanStart) - flushed)
		p.Scan.VecBatches.Add(1)
	}
	return ctxErr
}

// serialVecCursor walks the array store serially, buffering matching
// cells into column batches of vecBatchRows and running the compiled
// kernel pipeline per batch. LIMIT short-circuits mid-chunk: once
// enough rows have surfaced the store walk stops.
func (e *Engine) serialVecCursor(ctx context.Context, sp *streamPlan, cols []Col) *Cursor {
	sv := sp.vec
	scan := e.streamScan(sp)
	seq := func(yield func(vecBatch) bool) {
		emitted := 0
		var chargeErr error
		err := e.vecScanBatches(ctx, sp, scan, func(in *Dataset) bool {
			if in.NumRows() == 0 {
				return sp.limit < 0 || emitted < sp.limit
			}
			max := -1
			if sp.limit >= 0 {
				max = sp.limit - emitted
			}
			out := e.vecProcessBatch(sp, in, max)
			if cerr := chargeBudget(sp.budget, approxDatasetBytes(out)); cerr != nil {
				chargeErr = cerr
				return false
			}
			emitted += out.NumRows()
			if out.NumRows() > 0 && !yield(vecBatch{ds: out}) {
				return false
			}
			return sp.limit < 0 || emitted < sp.limit
		})
		if err == nil {
			err = chargeErr
		}
		if err != nil {
			yield(vecBatch{err: err})
		}
	}
	next, stop := iter.Pull(seq)
	return &Cursor{cols: cols, items: sp.items, nextBatch: next, stopBatch: stop, batchCols: sv.outCols}
}

// parallelVecCursor fans the scan out over the morsel pool with the
// kernel pipeline running per batch inside each chunk. Per-chunk
// output is capped at LIMIT rows (the final result takes at most that
// many from any chunk), and the consumer stops pulling — canceling the
// workers, so no further chunks are scheduled — once enough rows have
// surfaced across the ordered prefix.
func (e *Engine) parallelVecCursor(ctx context.Context, sp *streamPlan, chunks []array.ChunkScan, cols []Col) *Cursor {
	sv := sp.vec
	ictx, cancel := context.WithCancel(ctx)
	type chunkBatch struct {
		idx int
		ds  *Dataset
		err error
	}
	ch := make(chan chunkBatch, 2*e.pool.Workers())
	started := false
	start := func() {
		started = true
		go func() {
			defer close(ch)
			err := e.pool.ForEachCtx(ictx, len(chunks), 1, func(m parallelMorsel) error {
				for ci := m.Lo; ci < m.Hi; ci++ {
					out := &Dataset{Cols: sv.outCols, Vecs: make([]bat.Vector, len(sv.outCols))}
					for i, c := range sv.outCols {
						out.Vecs[i] = bat.New(c.Typ, 0)
					}
					err := e.vecScanBatches(ictx, sp, chunks[ci], func(in *Dataset) bool {
						if in.NumRows() == 0 {
							return true
						}
						max := -1
						if sp.limit >= 0 {
							max = sp.limit - out.NumRows()
						}
						b := e.vecProcessBatch(sp, in, max)
						for i := range out.Vecs {
							out.Vecs[i] = bat.Concat(out.Vecs[i], b.Vecs[i])
						}
						return sp.limit < 0 || out.NumRows() < sp.limit
					})
					if err != nil {
						return err
					}
					if err := chargeBudget(sp.budget, approxDatasetBytes(out)); err != nil {
						return err
					}
					select {
					case ch <- chunkBatch{idx: ci, ds: out}:
					case <-ictx.Done():
						return ictx.Err()
					}
				}
				return nil
			})
			if err != nil {
				select {
				case ch <- chunkBatch{err: err}:
				case <-ictx.Done():
				}
			}
		}()
	}
	seq := func(yield func(vecBatch) bool) {
		defer cancel()
		if !started {
			start()
		}
		pending := make(map[int]*Dataset)
		nextIdx := 0
		emitted := 0
		for b := range ch {
			if b.err != nil {
				yield(vecBatch{err: b.err})
				return
			}
			pending[b.idx] = b.ds
			for {
				ds, have := pending[nextIdx]
				if !have {
					break
				}
				delete(pending, nextIdx)
				nextIdx++
				if sp.limit >= 0 && emitted+ds.NumRows() > sp.limit {
					ds = headRows(ds, sp.limit-emitted)
				}
				emitted += ds.NumRows()
				if ds.NumRows() > 0 && !yield(vecBatch{ds: ds}) {
					return
				}
				if sp.limit >= 0 && emitted >= sp.limit {
					return
				}
			}
		}
	}
	next, stop := iter.Pull(seq)
	return &Cursor{cols: cols, items: sp.items, nextBatch: next, stopBatch: stop, batchCols: sv.outCols, cancel: cancel}
}

// headRows returns the first k rows of ds as a fresh dataset.
func headRows(ds *Dataset, k int) *Dataset {
	out := &Dataset{Cols: ds.Cols, Vecs: make([]bat.Vector, len(ds.Vecs))}
	for i, v := range ds.Vecs {
		out.Vecs[i] = v.Slice(0, k)
	}
	return out
}
