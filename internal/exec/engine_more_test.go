package exec

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sql/parser"
	"repro/internal/storage"
)

// TestTilingGroupCountProperty: overlapping tiling over an n×n dense
// matrix always yields exactly n² groups (one per valid anchor), and
// DISTINCT tiling with a t-wide tile yields ceil(n/t)² groups.
func TestTilingGroupCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(2 + rng.Intn(10))
		tile := int64(1 + rng.Intn(4))
		e := New()
		stmts, _ := parser.Parse(fmt.Sprintf(`
			CREATE ARRAY m (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 1.0);`, n, n))
		for _, s := range stmts {
			if _, err := e.Exec(s, nil); err != nil {
				return false
			}
		}
		q := fmt.Sprintf(`SELECT [x], [y], SUM(v) FROM m GROUP BY m[x:x+%d][y:y+%d]`, tile, tile)
		s, _ := parser.ParseOne(q)
		ds, err := e.Exec(s, nil)
		if err != nil || ds.NumRows() != int(n*n) {
			t.Logf("overlapping: n=%d tile=%d rows=%d err=%v", n, tile, rowsOf(ds), err)
			return false
		}
		q = fmt.Sprintf(`SELECT [x], [y], SUM(v) FROM m GROUP BY DISTINCT m[x:x+%d][y:y+%d]`, tile, tile)
		s, _ = parser.ParseOne(q)
		ds, err = e.Exec(s, nil)
		want := int(ceilDiv(n, tile) * ceilDiv(n, tile))
		if err != nil || ds.NumRows() != want {
			t.Logf("distinct: n=%d tile=%d rows=%d want=%d err=%v", n, tile, rowsOf(ds), want, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func rowsOf(ds *Dataset) int {
	if ds == nil {
		return -1
	}
	return ds.NumRows()
}

// TestTilingMassConservation: summing SUM(v) over DISTINCT tiles that
// partition the array equals the total sum.
func TestTilingMassConservation(t *testing.T) {
	e := newMatrix(t)
	total := run(t, e, `SELECT SUM(v) FROM matrix`, nil).Get(0, 0).AsFloat()
	tiles := run(t, e, `SELECT SUM(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`, nil)
	sum := 0.0
	for r := 0; r < tiles.NumRows(); r++ {
		sum += tiles.Get(r, 0).AsFloat()
	}
	if sum != total {
		t.Fatalf("tile mass %v != total %v", sum, total)
	}
}

// TestStorageSchemeQueryEquivalence: the same SQL workload gives the
// same answers regardless of the physical storage scheme.
func TestStorageSchemeQueryEquivalence(t *testing.T) {
	results := map[string]string{}
	for _, scheme := range []string{"virtual", "tabular", "dorder", "slab"} {
		e := New()
		e.SetStorageHint("m", storage.Hints{ForceScheme: scheme})
		run(t, e, `
			CREATE ARRAY m (x INTEGER DIMENSION[6], y INTEGER DIMENSION[6], v FLOAT DEFAULT 0.0);
			UPDATE m SET v = x * 6 + y;
			DELETE FROM m WHERE x = 2 AND y = 3;
		`, nil)
		ds := run(t, e, `SELECT [x], [y], AVG(v) FROM m GROUP BY DISTINCT m[x:x+3][y:y+3] ORDER BY 1, 2`, nil)
		results[scheme] = ds.String()
	}
	ref := results["virtual"]
	for scheme, got := range results {
		if got != ref {
			t.Errorf("%s result differs from virtual:\n%s\nvs\n%s", scheme, got, ref)
		}
	}
}

func TestPushdownMatchesFullScan(t *testing.T) {
	e := newMatrix(t)
	// The pushdown path (x = const) must agree with a residual-only
	// filter (MOD trick prevents pushdown).
	fast := run(t, e, `SELECT y, v FROM matrix WHERE x = 2`, nil)
	slow := run(t, e, `SELECT y, v FROM matrix WHERE x + 0 = 2`, nil)
	if fast.String() != slow.String() {
		t.Fatalf("pushdown diverges:\n%s\nvs\n%s", fast, slow)
	}
	// Range pushdown.
	fastR := run(t, e, `SELECT count(*) FROM matrix WHERE x >= 1 AND x < 3`, nil)
	if fastR.Get(0, 0).I != 8 {
		t.Fatalf("range pushdown count = %d, want 8", fastR.Get(0, 0).I)
	}
}

func TestSelectDistinct(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1), (1), (2), (2), (2);
	`, nil)
	ds := run(t, e, `SELECT DISTINCT a FROM t ORDER BY a`, nil)
	if ds.NumRows() != 2 || ds.Get(0, 0).I != 1 || ds.Get(1, 0).I != 2 {
		t.Fatalf("distinct wrong: %s", ds)
	}
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	e := New()
	ds := run(t, e, `SELECT 1 UNION ALL SELECT 1 UNION ALL SELECT 2`, nil)
	if ds.NumRows() != 3 {
		t.Fatalf("UNION ALL rows = %d, want 3", ds.NumRows())
	}
	ds = run(t, e, `SELECT 1 UNION SELECT 1 UNION SELECT 2`, nil)
	if ds.NumRows() != 2 {
		t.Fatalf("UNION rows = %d, want 2", ds.NumRows())
	}
}

func TestOrderByMultipleKeysDesc(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE TABLE t (a INTEGER, b INTEGER);
		INSERT INTO t VALUES (1, 2), (1, 1), (2, 9), (0, 5);
	`, nil)
	ds := run(t, e, `SELECT a, b FROM t ORDER BY a DESC, b`, nil)
	want := [][2]int64{{2, 9}, {1, 1}, {1, 2}, {0, 5}}
	for r, w := range want {
		if ds.Get(r, 0).I != w[0] || ds.Get(r, 1).I != w[1] {
			t.Fatalf("row %d = (%d,%d), want %v", r, ds.Get(r, 0).I, ds.Get(r, 1).I, w)
		}
	}
}

func TestAggregatesOverEmptyInput(t *testing.T) {
	e := New()
	run(t, e, `CREATE TABLE t (a INTEGER)`, nil)
	ds := run(t, e, `SELECT COUNT(*), SUM(a), AVG(a), MIN(a), MAX(a) FROM t`, nil)
	if ds.Get(0, 0).I != 0 {
		t.Errorf("COUNT(*) over empty = %v", ds.Get(0, 0))
	}
	for c := 1; c < 5; c++ {
		if !ds.Get(0, c).Null {
			t.Errorf("aggregate %d over empty should be NULL, got %v", c, ds.Get(0, c))
		}
	}
}

func TestMinMaxPreserveType(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE TABLE t (s VARCHAR(10));
		INSERT INTO t VALUES ('pear'), ('apple'), ('zed');
	`, nil)
	ds := run(t, e, `SELECT MIN(s), MAX(s) FROM t`, nil)
	if ds.Get(0, 0).S != "apple" || ds.Get(0, 1).S != "zed" {
		t.Fatalf("string MIN/MAX: %v %v", ds.Get(0, 0), ds.Get(0, 1))
	}
}

func TestCountDistinct(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1), (1), (2), (3), (3);
	`, nil)
	ds := run(t, e, `SELECT COUNT(DISTINCT a) FROM t`, nil)
	if got := ds.Get(0, 0).AsInt(); got != 3 {
		t.Fatalf("COUNT(DISTINCT) = %d, want 3", got)
	}
}

func TestNestedPayloadUpdate(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY experiment (
			run INTEGER DIMENSION[2],
			payload FLOAT ARRAY[2][2] DEFAULT 1.0);
	`, nil)
	// Fill nested arrays by hand: the DDL default applies to the
	// nested attribute when each payload is created.
	a, _ := e.Cat.Array("experiment")
	if len(a.Schema.Attrs) != 1 || a.Schema.Attrs[0].Nested == nil {
		t.Fatalf("payload schema wrong: %+v", a.Schema.Attrs)
	}
	if nd := len(a.Schema.Attrs[0].Nested.Dims); nd != 2 {
		t.Fatalf("nested dims = %d, want 2", nd)
	}
}

func TestInsertSelectPositionalFill(t *testing.T) {
	e := newMatrix(t)
	// CREATE ARRAY ... AS SELECT with attribute-only columns fills in
	// row-major dimension order (§4.3).
	run(t, e, `CREATE ARRAY copy1 (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], w FLOAT) AS SELECT v FROM matrix`, nil)
	ds := run(t, e, `SELECT copy1[1][2].w`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 6 {
		t.Fatalf("positional fill (1,2) = %v, want 6", got)
	}
}

func TestAlterDimensionUnboundedRelabel(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `ALTER ARRAY matrix ALTER x DIMENSION[-5:*]`, nil)
	a, _ := e.Cat.Array("matrix")
	if a.Schema.Dims[0].Start != -5 {
		t.Fatalf("start = %d", a.Schema.Dims[0].Start)
	}
	ds := run(t, e, `SELECT v FROM matrix WHERE x = -5 AND y = 1`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 1 {
		t.Fatalf("relabeled cell = %v, want 1 (old (0,1))", got)
	}
}

func TestStorageHintForcesScheme(t *testing.T) {
	e := New()
	e.SetStorageHint("forced", storage.Hints{ForceScheme: "slab", SlabSize: 16})
	run(t, e, `CREATE ARRAY forced (x INTEGER DIMENSION[64], v FLOAT DEFAULT 0.0)`, nil)
	a, _ := e.Cat.Array("forced")
	if a.Store.Scheme() != "slab" {
		t.Fatalf("scheme = %s", a.Store.Scheme())
	}
}

func TestScalarSubqueryEmptyIsNull(t *testing.T) {
	e := New()
	run(t, e, `CREATE TABLE t (a INTEGER)`, nil)
	ds := run(t, e, `SELECT (SELECT a FROM t)`, nil)
	if !ds.Get(0, 0).Null {
		t.Fatalf("empty scalar subquery should be NULL, got %v", ds.Get(0, 0))
	}
}

func TestGuardedSetLeavesUnmatchedCells(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY vec (x INTEGER DIMENSION[5], v FLOAT DEFAULT 5.0);
		SET vec[x].v = CASE WHEN x = 0 THEN -1 WHEN x = 4 THEN 99 END;
	`, nil)
	ds := run(t, e, `SELECT v FROM vec WHERE x = 2`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 5 {
		t.Fatalf("unguarded cell changed: %v, want 5", got)
	}
	ds = run(t, e, `SELECT v FROM vec WHERE x = 4`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 99 {
		t.Fatalf("guarded cell = %v, want 99", got)
	}
}

func TestPositionalSetList(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY vec (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		SET vec[0:2].v = (7.5, 8.5);
	`, nil)
	ds := run(t, e, `SELECT v FROM vec ORDER BY x`, nil)
	want := []float64{7.5, 8.5, 0, 0}
	for r, w := range want {
		if got := ds.Get(r, 0).AsFloat(); got != w {
			t.Fatalf("vec[%d] = %v, want %v", r, got, w)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	e := newMatrix(t)
	bad := []string{
		`SELECT nosuchcol FROM matrix`,
		`SELECT * FROM nosuchtable`,
		`SELECT nosuchfunc(1)`,
		`INSERT INTO matrix VALUES (1, 2, 3, 4, 5)`,
		`UPDATE matrix SET nosuch = 1`,
		`SELECT matrix[0][0].nosuchattr`,
		`SELECT [x], v FROM matrix GROUP BY x, matrix[x:x+1]`,
		`CREATE ARRAY matrix (x INTEGER DIMENSION[2], v FLOAT)`, // duplicate name
		`CREATE ARRAY bad (x FLOAT DIMENSION[2], v FLOAT)`,      // float dim type
		`SELECT ?missing_param`,
	}
	for _, q := range bad {
		stmts, err := parser.Parse(q)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		execErr := false
		for _, s := range stmts {
			if _, err := e.Exec(s, nil); err != nil {
				execErr = true
			}
		}
		if !execErr {
			t.Errorf("expected execution error for %q", q)
		}
	}
}

func TestHoleSkippingInScans(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY h (x INTEGER DIMENSION[4], v FLOAT DEFAULT 1.0);
		UPDATE h SET v = NULL WHERE x = 2;
	`, nil)
	ds := run(t, e, `SELECT x FROM h`, nil)
	if ds.NumRows() != 3 {
		t.Fatalf("scan rows = %d, want 3 (hole skipped)", ds.NumRows())
	}
	// Aggregates ignore the hole.
	ds = run(t, e, `SELECT COUNT(v), SUM(v) FROM h`, nil)
	if ds.Get(0, 0).I != 3 || ds.Get(0, 1).AsFloat() != 3 {
		t.Fatalf("aggregate over holes: %v %v", ds.Get(0, 0), ds.Get(0, 1))
	}
}

func TestTimestampDimensionSlicing(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY ts (time TIMESTAMP DIMENSION, data FLOAT);
		INSERT INTO ts VALUES (TIMESTAMP '2010-09-03 16:29:00', 1.0);
		INSERT INTO ts VALUES (TIMESTAMP '2010-09-03 16:35:00', 2.0);
		INSERT INTO ts VALUES (TIMESTAMP '2010-09-03 16:45:00', 3.0);
	`, nil)
	ds := run(t, e, `SELECT count(*) FROM ts[TIMESTAMP '2010-09-03 16:30:00':TIMESTAMP '2010-09-03 16:40:00']`, nil)
	if got := ds.Get(0, 0).I; got != 1 {
		t.Fatalf("window count = %d, want 1", got)
	}
}

func TestDeleteWithoutWhereTable(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1), (2);
		DELETE FROM t;
	`, nil)
	ds := run(t, e, `SELECT count(*) FROM t`, nil)
	if ds.Get(0, 0).I != 0 {
		t.Fatalf("rows after DELETE = %d", ds.Get(0, 0).I)
	}
}

func TestLimitZeroAndOversized(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `SELECT x FROM matrix LIMIT 0`, nil)
	if ds.NumRows() != 0 {
		t.Fatalf("LIMIT 0 rows = %d", ds.NumRows())
	}
	ds = run(t, e, `SELECT x FROM matrix LIMIT 999`, nil)
	if ds.NumRows() != 16 {
		t.Fatalf("oversized LIMIT rows = %d", ds.NumRows())
	}
}

func TestSelectItemAliases(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `SELECT v * 2 AS double_v, x pos FROM matrix WHERE x = 0 AND y = 0`, nil)
	if ds.Cols[0].Name != "double_v" || ds.Cols[1].Name != "pos" {
		t.Fatalf("aliases: %+v", ds.Cols)
	}
}

func TestValueBasedGroupByHaving(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE TABLE t (g INTEGER, v INTEGER);
		INSERT INTO t VALUES (1, 10), (1, 20), (2, 1), (2, 2), (3, 100);
	`, nil)
	ds := run(t, e, `SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 5 ORDER BY g`, nil)
	if ds.NumRows() != 2 {
		t.Fatalf("HAVING groups = %d, want 2", ds.NumRows())
	}
	if ds.Get(0, 0).I != 1 || ds.Get(1, 0).I != 3 {
		t.Fatalf("groups: %s", ds)
	}
}
