package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/array"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/storage"
	"repro/internal/value"
)

func sortSliceInt64(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func searchInt64s(xs []int64, v int64) int {
	return sort.Search(len(xs), func(i int) bool { return xs[i] >= v })
}

// ceilDiv rounds the quotient toward +inf (b > 0).
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// resolveArrayBase finds the array an ArrayRef talks about: a PSM
// local / function parameter holding an array value, a catalog array,
// or a computed base (nested access like next(samples[t]).data never
// reaches here — the engine rewrites NEXT earlier).
func (e *Engine) resolveArrayBase(base ast.Expr, env expr.Env) (*array.Array, error) {
	switch b := base.(type) {
	case *ast.Ident:
		if b.Table == "" {
			if v, ok := env.Lookup("", b.Name); ok && v.Typ == value.Array && !v.Null {
				if a, ok := v.A.(*array.Array); ok {
					return a, nil
				}
			}
		}
		if a, ok := e.cat().Array(b.Name); ok {
			return a, nil
		}
		// A qualified name (alias.attr) can name a row's nested array.
		if v, ok := env.Lookup(b.Table, b.Name); ok && v.Typ == value.Array && !v.Null {
			if a, ok := v.A.(*array.Array); ok {
				return a, nil
			}
		}
		return nil, fmt.Errorf("no such array %s", b.String())
	default:
		v, err := e.Ev.Eval(base, env)
		if err != nil {
			return nil, err
		}
		if v.Typ == value.Array && !v.Null {
			if a, ok := v.A.(*array.Array); ok {
				return a, nil
			}
		}
		return nil, fmt.Errorf("expression is not an array")
	}
}

// dimSel is a resolved indexer against one dimension: either a point
// or a half-open [lo, hi) range (step-aware). sparse marks order-only
// dimensions (timestamp dims with no grid step), whose ranges expand
// over the existing coordinate values rather than a stepped sequence.
type dimSel struct {
	point  bool
	val    int64
	lo, hi int64 // half-open
	step   int64
	full   bool // [*]
	sparse bool
}

// resolveIndexers evaluates the indexer expressions of ref against
// env, aligning them with the array's dimensions in declaration order.
func (e *Engine) resolveIndexers(a *array.Array, ixs []ast.Indexer, env expr.Env) ([]dimSel, error) {
	if len(ixs) > len(a.Schema.Dims) {
		return nil, fmt.Errorf("array %s has %d dimensions, got %d indexers", a.Name, len(a.Schema.Dims), len(ixs))
	}
	out := make([]dimSel, len(a.Schema.Dims))
	// The bounding box is only needed for open-ended selections; point
	// indexers (the convolution anchor lists) skip the computation.
	var lo, hi []int64
	var boundsErr error
	boundsDone := false
	bounds := func() bool {
		if !boundsDone {
			lo, hi, boundsErr = a.BoundingBox()
			boundsDone = true
		}
		return boundsErr == nil
	}
	for di := range a.Schema.Dims {
		d := a.Schema.Dims[di]
		sparse := d.Step == 0
		step := d.Step
		if step <= 0 {
			step = 1
		}
		if di >= len(ixs) {
			// Unindexed trailing dimensions select everything.
			out[di] = dimSel{full: true, step: step, sparse: sparse}
			if bounds() {
				out[di].lo, out[di].hi = lo[di], hi[di]+step
			}
			continue
		}
		ix := ixs[di]
		switch {
		case ix.Star:
			out[di] = dimSel{full: true, step: step, sparse: sparse}
			if bounds() {
				out[di].lo, out[di].hi = lo[di], hi[di]+step
			}
		case ix.Point != nil:
			v, err := e.Ev.Eval(ix.Point, env)
			if err != nil {
				return nil, err
			}
			out[di] = dimSel{point: true, val: v.AsInt(), step: step, sparse: sparse}
		case ix.Range:
			s := dimSel{step: 1, sparse: sparse}
			if ix.Start != nil {
				v, err := e.Ev.Eval(ix.Start, env)
				if err != nil {
					return nil, err
				}
				s.lo = v.AsInt()
			} else if bounds() {
				s.lo = lo[di]
			}
			if ix.Stop != nil {
				v, err := e.Ev.Eval(ix.Stop, env)
				if err != nil {
					return nil, err
				}
				s.hi = v.AsInt()
			} else if bounds() {
				s.hi = hi[di] + step
			}
			switch {
			case ix.Step != nil:
				// An explicit [lo:hi:step] stride is anchored at lo.
				v, err := e.Ev.Eval(ix.Step, env)
				if err != nil {
					return nil, err
				}
				if v.AsInt() > 0 {
					s.step = v.AsInt()
				}
			case !sparse && step > 1 && d.Start != array.UnboundedLow:
				// A plain [lo:hi] on a stepped grid is a pure range: it
				// admits the grid's own cells in [lo, hi). Walk the grid
				// stride but snap lo up onto the grid phase — anchoring
				// the dimension step at an off-phase slice bound would
				// reject every existing cell.
				s.step = step
				if snapped := d.Start + ceilDiv(s.lo-d.Start, step)*step; snapped > s.lo {
					s.lo = snapped
				}
			}
			out[di] = s
		default:
			out[di] = dimSel{full: true, step: step, sparse: sparse}
			if bounds() {
				out[di].lo, out[di].hi = lo[di], hi[di]+step
			}
		}
	}
	return out, nil
}

// evalArrayRef resolves an array reference in expression position:
// a full point access returns the cell attribute (NULL when out of
// bounds or a hole, per §3.1); any range produces a sub-array value.
func (e *Engine) evalArrayRef(ref *ast.ArrayRef, env expr.Env) (value.Value, error) {
	a, err := e.resolveArrayBase(ref.Base, env)
	if err != nil {
		return value.Value{}, err
	}
	sels, err := e.resolveIndexers(a, ref.Indexers, env)
	if err != nil {
		return value.Value{}, err
	}
	allPoint := true
	for _, s := range sels {
		if !s.point {
			allPoint = false
			break
		}
	}
	if allPoint {
		coords := make([]int64, len(sels))
		for i, s := range sels {
			coords[i] = s.val
		}
		ai, err := pickAttr(a, ref.Attr)
		if err != nil {
			return value.Value{}, err
		}
		return a.Get(coords, ai), nil
	}
	sub, err := e.sliceArray(a, sels, ref.Attr)
	if err != nil {
		return value.Value{}, err
	}
	return value.NewArray(sub), nil
}

// dimValuesCache memoizes the sorted distinct coordinate values of an
// array's order-only (sparse) dimensions, so range expansion over a
// timestamp dimension walks existing samples instead of every
// microsecond between the bounds.
type dimValuesCache struct {
	// ctx is the in-flight statement's context: the distinct-value
	// scan below is chunk-scale on large arrays, so it polls like any
	// other scan. May be nil (bounds known without scanning).
	ctx  context.Context
	vals map[int][]int64
}

func newDimValuesCache(ctx context.Context) *dimValuesCache {
	return &dimValuesCache{ctx: ctx, vals: make(map[int][]int64)}
}

// dimValuesProvider is implemented by stores that maintain their own
// sorted per-dimension value index (the tabular scheme).
type dimValuesProvider interface {
	DimValues(di int) []int64
}

func (c *dimValuesCache) values(a *array.Array, di int) ([]int64, error) {
	if v, ok := c.vals[di]; ok {
		return v, nil
	}
	if p, ok := a.Store.(dimValuesProvider); ok {
		v := p.DimValues(di)
		c.vals[di] = v
		return v, nil
	}
	set := make(map[int64]struct{})
	visited := 0
	var scanErr error
	a.Store.Scan(func(coords []int64, _ []value.Value) bool {
		visited++
		if visited&1023 == 0 && c.ctx != nil {
			if err := c.ctx.Err(); err != nil {
				scanErr = err
				return false
			}
		}
		set[coords[di]] = struct{}{}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortInt64s(out)
	c.vals[di] = out
	return out, nil
}

// inRange returns the cached values within [lo, hi).
func (c *dimValuesCache) inRange(a *array.Array, di int, lo, hi int64) ([]int64, error) {
	vals, err := c.values(a, di)
	if err != nil {
		return nil, err
	}
	i := searchInt64s(vals, lo)
	j := searchInt64s(vals, hi)
	return vals[i:j], nil
}

func sortInt64s(xs []int64) {
	// Insertion-free path via sort.Slice (stdlib only).
	if len(xs) > 1 {
		sortSliceInt64(xs)
	}
}

// forEachSelCoord expands one resolved dimension selection into its
// admitted coordinate values, in ascending order: a point yields its
// value, sparse (order-only) ranges walk the existing coordinates via
// the cache, and grid ranges step from lo by the selection stride.
// This is the single definition of [lo:hi:step] expansion, shared by
// expression-position slicing (sliceArray) and structural tiling
// (forEachTileCell); the scan path's matcher (selContains) mirrors it,
// so FROM-clause slicing admits exactly the coordinates expanded here.
func forEachSelCoord(s dimSel, a *array.Array, di int, cache *dimValuesCache, fn func(v int64) error) error {
	if s.point {
		return fn(s.val)
	}
	if s.sparse {
		vs, err := cache.inRange(a, di, s.lo, s.hi)
		if err != nil {
			return err
		}
		for _, v := range vs {
			if err := fn(v); err != nil {
				return err
			}
		}
		return nil
	}
	step := s.step
	if step <= 0 {
		step = 1
	}
	for v := s.lo; v < s.hi; v += step {
		if err := fn(v); err != nil {
			return err
		}
	}
	return nil
}

// pickAttr resolves an attribute name; "" selects the single attribute
// of one-attribute arrays (payload[x][y] form).
func pickAttr(a *array.Array, name string) (int, error) {
	if name == "" {
		if len(a.Schema.Attrs) == 1 {
			return 0, nil
		}
		return -1, fmt.Errorf("array %s has %d attributes; qualify with .attr", a.Name, len(a.Schema.Attrs))
	}
	ai := a.Schema.AttrIndex(name)
	if ai < 0 {
		return -1, fmt.Errorf("array %s has no attribute %s", a.Name, name)
	}
	return ai, nil
}

// sliceArray carves a sub-array: point dimensions collapse, ranges
// restrict, '*' keeps the whole dimension. Index values are preserved
// (the minimal bounding box of the answers, §4.1); function-parameter
// binding rebases when the parameter declares fixed bounds.
func (e *Engine) sliceArray(a *array.Array, sels []dimSel, attr string) (*array.Array, error) {
	var dims []array.Dimension
	var keep []int // source dim index per kept dim
	sparseSlice := false
	for di, s := range sels {
		if s.point {
			continue
		}
		d := a.Schema.Dims[di]
		nd := array.Dimension{Name: d.Name, Typ: d.Typ, Start: s.lo, End: s.hi, Step: s.step}
		if s.sparse {
			// Order-only dimensions keep their gridless nature.
			nd.Step = 0
			sparseSlice = true
		}
		if s.full && s.hi == 0 && s.lo == 0 && !d.Bounded() {
			nd.Start, nd.End = array.UnboundedLow, array.UnboundedHigh
		}
		dims = append(dims, nd)
		keep = append(keep, di)
	}
	attrs := a.Schema.Attrs
	attrMap := make([]int, 0, len(attrs))
	if attr != "" {
		ai := a.Schema.AttrIndex(attr)
		if ai < 0 {
			return nil, fmt.Errorf("array %s has no attribute %s", a.Name, attr)
		}
		attrs = []array.Attr{a.Schema.Attrs[ai]}
		attrMap = append(attrMap, ai)
	} else {
		for i := range attrs {
			attrMap = append(attrMap, i)
		}
	}
	// Strip CHECK/default machinery from the slice schema: the values
	// are copied as-is.
	outAttrs := make([]array.Attr, len(attrs))
	for i, at := range attrs {
		outAttrs[i] = array.Attr{Name: at.Name, Typ: at.Typ, Default: value.NewNull(at.Typ), Nested: at.Nested}
	}
	outDims := make([]array.Dimension, len(dims))
	copy(outDims, dims)
	sch := array.Schema{Dims: outDims, Attrs: outAttrs}
	var st array.Store
	var err error
	if sparseSlice {
		st, err = storage.NewTabular(sch)
	} else {
		st, err = storage.New(sch, storage.Hints{})
	}
	if err != nil {
		return nil, err
	}
	sub := &array.Array{Name: a.Name + "_slice", Schema: sch, Store: st}
	// Walk the selection cross product, reading through a.Get so
	// out-of-bounds positions arrive as NULL (holes in the slice).
	// Sparse (order-only) dimensions expand over existing coordinate
	// values, never over the raw index range.
	cache := newDimValuesCache(e.ctx())
	src := make([]int64, len(sels))
	dst := make([]int64, len(dims))
	var walk func(di int) error
	walk = func(di int) error {
		if di == len(sels) {
			for oi, ai := range attrMap {
				v := a.Get(src, ai)
				if v.Null {
					continue
				}
				if err := st.Set(dst, oi, v); err != nil {
					return err
				}
			}
			return nil
		}
		s := sels[di]
		if s.point {
			src[di] = s.val
			return walk(di + 1)
		}
		ki := 0
		for ; ki < len(keep); ki++ {
			if keep[ki] == di {
				break
			}
		}
		return forEachSelCoord(s, a, di, cache, func(v int64) error {
			src[di] = v
			dst[ki] = v
			return walk(di + 1)
		})
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return sub, nil
}

// rebaseForParam copies an array value into the shape a function
// parameter declares, mapping ordinals (the 3x3 conv window arrives
// indexed [0..2] regardless of where it was cut, §7.1.2).
func (e *Engine) rebaseForParam(src *array.Array, paramSchema *array.Schema) (*array.Array, error) {
	if len(paramSchema.Dims) != len(src.Schema.Dims) {
		return nil, fmt.Errorf("parameter expects %d dimensions, got %d", len(paramSchema.Dims), len(src.Schema.Dims))
	}
	st, err := storage.New(*paramSchema, storage.Hints{})
	if err != nil {
		return nil, err
	}
	out := &array.Array{Name: src.Name + "_param", Schema: *paramSchema, Store: st}
	dst := make([]int64, len(paramSchema.Dims))
	srcLo, _, err2 := src.BoundingBox()
	if err2 != nil {
		return out, nil // empty source: all holes
	}
	nAttrs := len(paramSchema.Attrs)
	visited := 0
	var scanErr error
	src.Store.Scan(func(coords []int64, vals []value.Value) bool {
		visited++
		if visited&1023 == 0 {
			if err := e.canceled(); err != nil {
				scanErr = err
				return false
			}
		}
		for i, d := range paramSchema.Dims {
			step := src.Schema.Dims[i].Step
			if step <= 0 {
				step = 1
			}
			ord := (coords[i] - srcLo[i]) / step
			dst[i] = d.Index(ord)
		}
		for ai := 0; ai < nAttrs && ai < len(vals); ai++ {
			if !vals[ai].Null {
				_ = st.Set(dst, ai, vals[ai])
			}
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// callUDF resolves a non-builtin function call: catalog white-box
// (PSM) and black-box (EXTERNAL NAME) functions.
func (e *Engine) callUDF(name string, args []value.Value, env expr.Env) (value.Value, error) {
	f, ok := e.cat().Function(name)
	if !ok {
		if strings.EqualFold(name, "NEXT") {
			return value.Value{}, fmt.Errorf("next() requires a scanned time-series source")
		}
		return value.Value{}, fmt.Errorf("unknown function %s", name)
	}
	bound, err := e.bindParams(f, args)
	if err != nil {
		return value.Value{}, err
	}
	if f.External != nil {
		// Black-box call (§6.2): the registered Go implementation does
		// its own layout marshaling; arguments arrive rebased.
		return f.External(bound)
	}
	return e.callPSM(f, bound)
}

// bindParams coerces scalar arguments to the declared parameter types
// and rebases array arguments onto the declared parameter shape when
// the parameter carries fixed dimension bounds (the conv 3x3 window
// of §7.1.2 arrives indexed [0..2] wherever it was cut).
func (e *Engine) bindParams(f *catalog.Function, args []value.Value) ([]value.Value, error) {
	def := f.Def
	if def == nil || len(def.Params) == 0 {
		return args, nil
	}
	if len(args) != len(def.Params) {
		return nil, fmt.Errorf("function %s expects %d argument(s), got %d", f.Name, len(def.Params), len(args))
	}
	out := make([]value.Value, len(args))
	for i, prm := range def.Params {
		v := args[i]
		if prm.Type == value.Array {
			if v.Null {
				out[i] = v
				continue
			}
			src, ok := v.A.(*array.Array)
			if !ok {
				return nil, fmt.Errorf("function %s: argument %s is not an array", f.Name, prm.Name)
			}
			sch, err := e.compileSchema(prm.Array, &baseEnv{})
			if err != nil {
				return nil, fmt.Errorf("function %s parameter %s: %w", f.Name, prm.Name, err)
			}
			// Unbounded parameter dimensions inherit the argument's
			// bounds; bounded ones force a rebase onto the declared
			// origin. Either way the declared names apply (the
			// function body addresses a[i][j] regardless of where the
			// argument was cut from).
			if len(sch.Dims) != len(src.Schema.Dims) {
				return nil, fmt.Errorf("function %s parameter %s: expects %d dimensions, got %d",
					f.Name, prm.Name, len(sch.Dims), len(src.Schema.Dims))
			}
			for di := range sch.Dims {
				if !sch.Dims[di].Bounded() {
					lo, hi, err := src.BoundingBox()
					if err == nil {
						step := src.Schema.Dims[di].Step
						if step <= 0 {
							step = 1
						}
						sch.Dims[di].Start = lo[di]
						sch.Dims[di].End = hi[di] + step
						sch.Dims[di].Step = step
					}
				}
			}
			rb, err := e.rebaseForParam(src, sch)
			if err != nil {
				return nil, err
			}
			out[i] = value.NewArray(rb)
			continue
		}
		cv, err := value.Coerce(v, prm.Type)
		if err != nil {
			return nil, fmt.Errorf("function %s parameter %s: %w", f.Name, prm.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

func allDimsBounded(dims []array.Dimension) bool {
	for _, d := range dims {
		if !d.Bounded() {
			return false
		}
	}
	return true
}
