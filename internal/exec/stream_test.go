package exec

import (
	"testing"

	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// TestDDLInvalidatesPlanCache: a SELECT planned before its array
// exists memoizes "not parallel-eligible" per AST node; DDL must
// invalidate that decision so the same (cached or prepared) statement
// replans against the new schema.
func TestDDLInvalidatesPlanCache(t *testing.T) {
	e := New()
	e.SetParallelism(4)
	stmt, err := parser.ParseOne(`SELECT v FROM m WHERE v > 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*ast.Select)
	if got := e.selectParallelism(sel); got != 1 {
		t.Fatalf("unknown array: par = %d, want 1", got)
	}
	ddl, err := parser.ParseOne(`CREATE ARRAY m (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ddl, nil); err != nil {
		t.Fatal(err)
	}
	if got := e.selectParallelism(sel); got != 4 {
		t.Fatalf("after CREATE: par = %d, want 4 (stale plan decision survived DDL)", got)
	}
}
