package exec

import (
	"strings"

	"repro/internal/plan"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// planCatalog adapts the engine catalog to the planner's schema view.
type planCatalog struct{ e *Engine }

func (pc planCatalog) ArrayInfo(name string) (dims, attrs []string, ok bool) {
	a, found := pc.e.cat().Array(name)
	if !found {
		return nil, nil, false
	}
	for _, d := range a.Schema.Dims {
		dims = append(dims, d.Name)
	}
	for _, at := range a.Schema.Attrs {
		attrs = append(attrs, at.Name)
	}
	return dims, attrs, true
}

func (pc planCatalog) IsTable(name string) bool {
	_, ok := pc.e.cat().Table(name)
	return ok
}

// planSelect compiles and optimizes the logical plan for a SELECT.
func (e *Engine) planSelect(sel *ast.Select) *plan.Plan {
	return plan.PlanSelect(sel, planCatalog{e})
}

// ExplainSelect compiles sel through the planner (plan → optimize)
// without executing it and renders the operator tree plus the
// execution-mode line as a one-column dataset. The public API calls
// this directly, so EXPLAIN never re-enters the SQL string layer.
func (e *Engine) ExplainSelect(sel *ast.Select) *Dataset {
	pl := e.planSelect(sel)
	rendered := pl.RenderAnnotated(e.vecAnnotator(sel, pl))
	out := planLinesDataset(rendered)
	out.Append([]value.Value{value.NewString(e.executionModeLine(sel, pl))})
	return out
}

// planLinesDataset packs a rendered plan tree into the one-column
// dataset EXPLAIN statements return.
func planLinesDataset(rendered string) *Dataset {
	out := NewDataset([]Col{{Name: "plan", Typ: value.String}})
	for _, line := range strings.Split(strings.TrimRight(rendered, "\n"), "\n") {
		out.Append([]value.Value{value.NewString(line)})
	}
	return out
}

// executionModeLine states whether the morsel-driven parallel path
// applies to sel, and why not otherwise.
func (e *Engine) executionModeLine(sel *ast.Select, pl *plan.Plan) string {
	mode := "execution: serial interpreter"
	switch {
	case !pl.Parallel:
		mode += " (" + pl.Reason + ")"
	case !parSafeSelect(sel):
		mode += " (expression needs engine state)"
	default:
		mode = "execution: parallelizable (morsel-driven)"
	}
	return mode
}

// vecAnnotator builds the per-operator EXPLAIN annotation marking
// which operators' expressions compile into bulk kernels. It applies
// to single-array pipelines (the shapes the vectorized paths run);
// nil disables annotation.
func (e *Engine) vecAnnotator(sel *ast.Select, pl *plan.Plan) func(plan.Node) string {
	if !e.vectorized {
		return nil
	}
	// Annotation needs a unique scanned array to type the columns.
	var scan *plan.Scan
	scans := 0
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			scans++
			if !s.Table {
				scan = s
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(pl.Root)
	if scans != 1 || scan == nil {
		return nil
	}
	arr, ok := e.cat().Array(scan.Name)
	if !ok {
		return nil
	}
	qual := scan.Qual
	if qual == "" {
		qual = scan.Name
	}
	// The pruned projection comes from the same memoized decision the
	// executor binds kernels against, so the annotation cannot diverge
	// from what actually runs.
	attrs := e.selectDecision(sel).scanAttrs(arr, scan.Name)
	cols := scanColsPruned(arr, qual, attrs)
	const tag = " [vectorized]"
	return func(n plan.Node) string {
		switch t := n.(type) {
		case *plan.Filter:
			if compileVec(t.Cond, cols, false) != nil {
				return tag
			}
		case *plan.Project:
			items := expandStars(t.ItemList, cols)
			if len(items) == 0 {
				return ""
			}
			for _, it := range items {
				if compileVec(it.Expr, cols, false) == nil {
					return ""
				}
			}
			return tag
		case *plan.Aggregate:
			for _, k := range t.KeyExprs {
				if compileVec(k, cols, false) == nil {
					return ""
				}
			}
			for _, c := range t.AggCalls {
				if c.Star {
					continue
				}
				if len(c.Args) != 1 || compileVec(c.Args[0], cols, false) == nil {
					return ""
				}
			}
			return tag
		}
		return ""
	}
}
