package exec

import (
	"math"
	"strings"

	"repro/internal/array"
	"repro/internal/plan"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// planCatalog adapts the engine catalog to the planner's schema view.
type planCatalog struct{ e *Engine }

func (pc planCatalog) ArrayInfo(name string) (dims, attrs []string, ok bool) {
	a, found := pc.e.cat().Array(name)
	if !found {
		return nil, nil, false
	}
	for _, d := range a.Schema.Dims {
		dims = append(dims, d.Name)
	}
	for _, at := range a.Schema.Attrs {
		attrs = append(attrs, at.Name)
	}
	return dims, attrs, true
}

func (pc planCatalog) IsTable(name string) bool {
	_, ok := pc.e.cat().Table(name)
	return ok
}

// ArrayStats implements plan.StatsCatalog: it folds the storage
// layer's zone maps (plus dimension bounding boxes and table row
// counts) into the column summaries the cost model consumes.
func (pc planCatalog) ArrayStats(name string) (plan.Stats, bool) {
	snap := pc.e.cat()
	if a, ok := snap.Array(name); ok {
		st := plan.Stats{Rows: int64(a.Store.Len()), Cols: map[string]plan.ColStats{}}
		if lo, hi, err := a.BoundingBox(); err == nil {
			for i, d := range a.Schema.Dims {
				st.Cols[strings.ToLower(d.Name)] = plan.ColStats{
					Min: float64(lo[i]), Max: float64(hi[i]), HasRange: true,
				}
			}
		}
		if sp, isSP := a.Store.(array.StatsProvider); isSP && st.Rows > 0 {
			// A single-chunk zone map is the whole-array summary.
			for ai, at := range a.Schema.Attrs {
				var nulls int64
				minV, maxV := math.Inf(1), math.Inf(-1)
				have := false
				for _, cs := range sp.ChunkStats(1) {
					if ai >= len(cs.Attrs) {
						continue
					}
					as := cs.Attrs[ai]
					nulls += as.Nulls
					if !as.Min.Null && as.Min.Typ.Numeric() {
						have = true
						minV = math.Min(minV, as.Min.AsFloat())
						maxV = math.Max(maxV, as.Max.AsFloat())
					}
				}
				col := plan.ColStats{NullFrac: float64(nulls) / float64(st.Rows)}
				if have {
					col.Min, col.Max, col.HasRange = minV, maxV, true
				}
				st.Cols[strings.ToLower(at.Name)] = col
			}
		}
		return st, true
	}
	if t, ok := snap.Table(name); ok {
		st := plan.Stats{Cols: map[string]plan.ColStats{}}
		if len(t.Vecs) > 0 {
			st.Rows = int64(t.Vecs[0].Len())
		}
		return st, true
	}
	return plan.Stats{}, false
}

// planSelect compiles and optimizes the logical plan for a SELECT.
func (e *Engine) planSelect(sel *ast.Select) *plan.Plan {
	return plan.PlanSelect(sel, planCatalog{e})
}

// ExplainSelect compiles sel through the planner (plan → optimize)
// without executing it and renders the operator tree plus the
// execution-mode line as a one-column dataset. The public API calls
// this directly, so EXPLAIN never re-enters the SQL string layer.
func (e *Engine) ExplainSelect(sel *ast.Select) *Dataset {
	pl := e.planSelect(sel)
	costs := plan.EstimateCosts(pl, planCatalog{e})
	vec := e.vecAnnotator(sel, pl)
	annot := func(n plan.Node) string {
		s := ""
		if nc, ok := costs[n]; ok {
			_, isJoin := n.(*plan.Join)
			s = plan.CostAnnotation(nc, isJoin)
		}
		if vec != nil {
			s += vec(n)
		}
		return s
	}
	rendered := pl.RenderAnnotated(annot)
	out := planLinesDataset(rendered)
	out.Append([]value.Value{value.NewString(e.executionModeLine(sel, pl))})
	return out
}

// planLinesDataset packs a rendered plan tree into the one-column
// dataset EXPLAIN statements return.
func planLinesDataset(rendered string) *Dataset {
	out := NewDataset([]Col{{Name: "plan", Typ: value.String}})
	for _, line := range strings.Split(strings.TrimRight(rendered, "\n"), "\n") {
		out.Append([]value.Value{value.NewString(line)})
	}
	return out
}

// executionModeLine states whether the morsel-driven parallel path
// applies to sel, and why not otherwise.
func (e *Engine) executionModeLine(sel *ast.Select, pl *plan.Plan) string {
	mode := "execution: serial interpreter"
	switch {
	case !pl.Parallel:
		mode += " (" + pl.Reason + ")"
	case !parSafeSelect(sel):
		mode += " (expression needs engine state)"
	default:
		mode = "execution: parallelizable (morsel-driven)"
	}
	return mode
}

// vecAnnotator builds the per-operator EXPLAIN annotation marking
// which operators' expressions compile into bulk kernels. It applies
// to single-array pipelines (the shapes the vectorized paths run);
// nil disables annotation.
func (e *Engine) vecAnnotator(sel *ast.Select, pl *plan.Plan) func(plan.Node) string {
	if !e.vectorized {
		return nil
	}
	// Annotation needs a unique scanned array to type the columns.
	var scan *plan.Scan
	scans := 0
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			scans++
			if !s.Table {
				scan = s
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(pl.Root)
	if scans != 1 || scan == nil {
		return nil
	}
	arr, ok := e.cat().Array(scan.Name)
	if !ok {
		return nil
	}
	qual := scan.Qual
	if qual == "" {
		qual = scan.Name
	}
	// The pruned projection comes from the same memoized decision the
	// executor binds kernels against, so the annotation cannot diverge
	// from what actually runs.
	attrs := e.selectDecision(sel).scanAttrs(arr, scan.Name)
	cols := scanColsPruned(arr, qual, attrs)
	const tag = " [vectorized]"
	return func(n plan.Node) string {
		switch t := n.(type) {
		case *plan.Filter:
			if compileVec(t.Cond, cols, false) != nil {
				return tag
			}
		case *plan.Project:
			items := expandStars(t.ItemList, cols)
			if len(items) == 0 {
				return ""
			}
			for _, it := range items {
				if compileVec(it.Expr, cols, false) == nil {
					return ""
				}
			}
			return tag
		case *plan.Aggregate:
			for _, k := range t.KeyExprs {
				if compileVec(k, cols, false) == nil {
					return ""
				}
			}
			for _, c := range t.AggCalls {
				if c.Star {
					continue
				}
				if len(c.Args) != 1 || compileVec(c.Args[0], cols, false) == nil {
					return ""
				}
			}
			return tag
		}
		return ""
	}
}
