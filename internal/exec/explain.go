package exec

import (
	"strings"

	"repro/internal/plan"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// planCatalog adapts the engine catalog to the planner's schema view.
type planCatalog struct{ e *Engine }

func (pc planCatalog) ArrayInfo(name string) (dims, attrs []string, ok bool) {
	a, found := pc.e.Cat.Array(name)
	if !found {
		return nil, nil, false
	}
	for _, d := range a.Schema.Dims {
		dims = append(dims, d.Name)
	}
	for _, at := range a.Schema.Attrs {
		attrs = append(attrs, at.Name)
	}
	return dims, attrs, true
}

func (pc planCatalog) IsTable(name string) bool {
	_, ok := pc.e.Cat.Table(name)
	return ok
}

// planSelect compiles and optimizes the logical plan for a SELECT.
func (e *Engine) planSelect(sel *ast.Select) *plan.Plan {
	return plan.PlanSelect(sel, planCatalog{e})
}

// execExplain renders the optimized plan of the wrapped SELECT as a
// one-column dataset, one row per tree line, followed by an execution-
// mode line stating whether the morsel-driven parallel path applies.
func (e *Engine) execExplain(s *ast.Explain) (*Dataset, error) {
	return e.ExplainSelect(s.Select), nil
}

// ExplainSelect compiles sel through the planner (plan → optimize)
// without executing it and renders the operator tree plus the
// execution-mode line as a one-column dataset. The public API calls
// this directly, so EXPLAIN never re-enters the SQL string layer.
func (e *Engine) ExplainSelect(sel *ast.Select) *Dataset {
	pl := e.planSelect(sel)
	out := NewDataset([]Col{{Name: "plan", Typ: value.String}})
	for _, line := range strings.Split(strings.TrimRight(pl.String(), "\n"), "\n") {
		out.Append([]value.Value{value.NewString(line)})
	}
	mode := "execution: serial interpreter"
	switch {
	case !pl.Parallel:
		mode += " (" + pl.Reason + ")"
	case !parSafeSelect(sel):
		mode += " (expression needs engine state)"
	default:
		mode = "execution: parallelizable (morsel-driven)"
	}
	out.Append([]value.Value{value.NewString(mode)})
	return out
}
