package exec

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func sampleDataset() *Dataset {
	d := NewDataset([]Col{
		{Name: "x", Qual: "t", Typ: value.Int, IsDim: true},
		{Name: "v", Qual: "t", Typ: value.Float},
	})
	d.Append([]value.Value{value.NewInt(2), value.NewFloat(20)})
	d.Append([]value.Value{value.NewInt(1), value.NewFloat(10)})
	d.Append([]value.Value{value.NewInt(3), value.NewFloat(30)})
	return d
}

func TestDatasetColIndex(t *testing.T) {
	d := sampleDataset()
	if d.ColIndex("", "x") != 0 || d.ColIndex("t", "v") != 1 {
		t.Fatal("basic lookup failed")
	}
	if d.ColIndex("other", "x") != -1 {
		t.Fatal("wrong qualifier should miss")
	}
	if d.ColIndex("", "X") != 0 {
		t.Fatal("lookup should be case-insensitive")
	}
	// Ambiguity: two unqualified 'v' columns.
	d.Cols = append(d.Cols, Col{Name: "v", Qual: "u", Typ: value.Float})
	d.Vecs = append(d.Vecs, d.Vecs[1].Clone())
	if d.ColIndex("", "v") != -2 {
		t.Fatal("ambiguous lookup should return -2")
	}
	if d.ColIndex("u", "v") != 2 {
		t.Fatal("qualified lookup should disambiguate")
	}
}

func TestDatasetSortAndGather(t *testing.T) {
	d := sampleDataset()
	d.SortBy([]int{0}, nil)
	if d.Get(0, 0).I != 1 || d.Get(2, 0).I != 3 {
		t.Fatalf("ascending sort wrong: %s", d)
	}
	d.SortBy([]int{0}, []bool{true})
	if d.Get(0, 0).I != 3 {
		t.Fatalf("descending sort wrong: %s", d)
	}
	g := d.Gather([]int{1})
	if g.NumRows() != 1 || g.Get(0, 0).I != 2 {
		t.Fatalf("gather wrong: %s", g)
	}
}

func TestDatasetDedupe(t *testing.T) {
	d := NewDataset([]Col{{Name: "a", Typ: value.Int}})
	for _, v := range []int64{1, 1, 2, 1} {
		d.Append([]value.Value{value.NewInt(v)})
	}
	out := d.dedupe()
	if out.NumRows() != 2 {
		t.Fatalf("dedupe rows = %d", out.NumRows())
	}
}

func TestDatasetStringRendering(t *testing.T) {
	d := sampleDataset()
	s := d.String()
	if !strings.Contains(s, "[x]") {
		t.Errorf("dimension columns should render bracketed:\n%s", s)
	}
	if !strings.Contains(s, "20") {
		t.Errorf("values missing:\n%s", s)
	}
}

func TestRowEnvChaining(t *testing.T) {
	d := sampleDataset()
	outer := &baseEnv{params: map[string]value.Value{"p": value.NewInt(9)}}
	env := &rowEnv{d: d, row: 1, outer: outer}
	if v, ok := env.Lookup("t", "x"); !ok || v.I != 1 {
		t.Fatalf("row lookup: %v %v", v, ok)
	}
	if v, ok := env.Param("p"); !ok || v.I != 9 {
		t.Fatalf("param chain: %v %v", v, ok)
	}
	if _, ok := env.Lookup("", "nothing"); ok {
		t.Fatal("missing name should not resolve")
	}
}
