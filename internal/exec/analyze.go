package exec

import (
	"fmt"
	"time"

	"repro/internal/plan"
	"repro/internal/sql/ast"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// execExplain dispatches an EXPLAIN statement: plain EXPLAIN renders
// the optimized plan without executing; EXPLAIN ANALYZE executes the
// wrapped SELECT with a per-query profile armed and renders the same
// tree annotated with the measured per-operator statistics.
func (e *Engine) execExplain(s *ast.Explain, env *baseEnv) (*Dataset, error) {
	if !s.Analyze {
		return e.ExplainSelect(s.Select), nil
	}
	return e.execExplainAnalyze(s.Select, env)
}

// execExplainAnalyze runs the SELECT with the session's profile
// collector armed — every execution path (serial or morsel-driven,
// interpreted or vectorized) flushes its chunk-level counters into it
// — then renders the optimized tree with per-operator wall time, rows
// in/out, chunk/cell counts and observed execution mode, the execution
// mode line, and a closing "analyze: rows=N elapsed=T" summary. The
// query's result itself is discarded: ANALYZE reports on the run, and
// the run is byte-identical to the unprofiled statement by the
// profiling contract (collection is chunk-level atomics only).
func (e *Engine) execExplainAnalyze(sel *ast.Select, env *baseEnv) (*Dataset, error) {
	prof := telemetry.NewProfile()
	e.prof = prof
	res, err := e.execSelect(sel, env)
	e.prof = nil
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(prof.Start)
	prof.Output.RowsOut.Store(int64(res.NumRows()))
	prof.Output.AddNanos(elapsed)
	pl := e.planSelect(sel)
	out := planLinesDataset(pl.RenderAnalyzed(analyzeAnnotator(prof)))
	out.Append([]value.Value{value.NewString(e.executionModeLine(sel, pl))})
	out.Append([]value.Value{value.NewString(fmt.Sprintf("analyze: rows=%d elapsed=%s", res.NumRows(), elapsed.Round(time.Microsecond)))})
	return out, nil
}

// analyzeAnnotator maps each plan operator onto the profile slot that
// collected its runtime statistics. Operators the profiled paths do
// not time (Opaque sources, Union glue) carry no annotation.
func analyzeAnnotator(prof *telemetry.Profile) func(plan.Node) string {
	return func(n plan.Node) string {
		switch t := n.(type) {
		case *plan.Scan:
			return telemetry.RenderOp(&prof.Scan, false)
		case *plan.Filter:
			if t.Having {
				return telemetry.RenderOp(&prof.Having, true)
			}
			return telemetry.RenderOp(&prof.Filter, true)
		case *plan.Project:
			return telemetry.RenderOp(&prof.Project, true)
		case *plan.Aggregate:
			return telemetry.RenderOp(&prof.Aggregate, true)
		case *plan.TiledAggregate:
			return telemetry.RenderOp(&prof.Tiled, true)
		case *plan.Sort:
			return telemetry.RenderOp(&prof.Sort, true)
		case *plan.Distinct:
			return telemetry.RenderOp(&prof.Distinct, true)
		case *plan.Limit:
			return telemetry.RenderOp(&prof.Limit, true)
		case *plan.Join:
			return telemetry.RenderOp(&prof.Join, true)
		}
		return ""
	}
}
