package exec

import (
	"context"
	"errors"

	"repro/internal/bat"
	"repro/internal/governor"
	"repro/internal/value"
)

// This file is the executor side of the resource governor: the
// statement-boundary error finisher, the budget charge helper the
// chunk loops call, and the byte estimators behind it. Charges follow
// the hotloopflush discipline — cell loops accumulate into plain
// locals and charge once per chunk through chargeBudget, never per
// cell (the sciql-lint hotloopflush analyzer enforces this for
// Budget.Charge like it does for telemetry instruments).

// Gov returns the database's resource governor. It is nil on a Shared
// constructed without New; every governor method is nil-receiver safe,
// so call sites need no guard.
func (e *Engine) Gov() *governor.Governor { return e.gov }

// chargeBudget posts one chunk's locally-accumulated byte total to the
// statement budget; nil budget (no limits configured) is free.
func chargeBudget(b *governor.Budget, n int64) error {
	return b.Charge(n)
}

// govFinish translates a statement's terminal error at the governance
// boundary: contained panics (recovered here or propagated up from a
// pool worker) count once into queries_panicked_total, and a deadline
// fired by the governor's statement timer becomes ErrStatementTimeout
// while caller cancellation passes through untouched.
func govFinish(gov *governor.Governor, sctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	var pe *governor.PanicError
	if errors.As(err, &pe) {
		gov.NotePanic()
	}
	return gov.TimeoutErr(sctx, err)
}

// registerCursorRelease enters rel in the session and shared cursor
// ledgers under a fresh (negative) token, so a governed cursor's
// admission slot, budget and statement timer release even when the
// cursor is abandoned without Close: connection teardown
// (ReleaseCursorPins) and DB.Close (ReleaseAllCursorPins) drain the
// same ledgers they drain for snapshot pins. The returned func runs
// rel once, whichever caller gets there first.
func (e *Engine) registerCursorRelease(rel func()) func() {
	sh := e.Shared
	tok := -sh.curSeq.Add(1)
	fn := func() {
		sh.curMu.Lock()
		if _, ok := sh.curRel[tok]; !ok {
			sh.curMu.Unlock()
			return
		}
		delete(sh.curRel, tok)
		sh.curMu.Unlock()
		delete(e.curPins, tok)
		rel()
	}
	if e.curPins == nil {
		e.curPins = make(map[int64]func())
	}
	e.curPins[tok] = fn
	sh.curMu.Lock()
	if sh.curRel == nil {
		sh.curRel = make(map[int64]func())
	}
	sh.curRel[tok] = fn
	sh.curMu.Unlock()
	return fn
}

// approxValueBytes estimates one boxed value's heap footprint: the
// value.Value struct plus string payload. Like bat.ApproxBytes it is a
// cheap, reproducible proxy, not an allocator-exact figure.
func approxValueBytes(v value.Value) int64 {
	return 64 + int64(len(v.S))
}

// approxRowsBytes estimates the footprint of a buffered row batch
// (slice headers plus boxed values).
func approxRowsBytes(rows [][]value.Value) int64 {
	var n int64
	for _, r := range rows {
		n += 24
		for _, v := range r {
			n += approxValueBytes(v)
		}
	}
	return n
}

// approxDatasetBytes estimates a columnar dataset's payload footprint.
func approxDatasetBytes(ds *Dataset) int64 {
	if ds == nil {
		return 0
	}
	var n int64
	for _, v := range ds.Vecs {
		n += bat.ApproxBytes(v)
	}
	return n
}
