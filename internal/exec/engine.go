package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/governor"
	"repro/internal/parallel"
	"repro/internal/sql/ast"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// Shared is the state one database's sessions have in common: the
// versioned catalog, the black-box registry, storage hints, the
// parallelism/vectorization configuration and the memoization caches.
// Catalog access is snapshot-based and the caches are mutex-guarded
// (with entries validated against the catalog version), so any number
// of sessions may execute statements concurrently. The configuration
// knobs (SetParallelism, SetVectorized, hints, externals) are
// setup-time calls: change them before running statements
// concurrently, as with database/sql drivers.
//
// Lock order: the four mutexes below acquire in declaration order —
// planMu → vecMu → pinMu → curMu — and a goroutine holding a later
// one must not take an earlier one. Today no code path nests them at
// all (each guards an independent map and critical sections are a few
// lines), but the order is the contract new code is held to: the
// lockorder analyzer in internal/analyzers flags any acquisition
// against it, plus returns that leak a held mutex.
type Shared struct {
	Cat *catalog.Catalog
	// externals maps EXTERNAL NAME strings to Go implementations
	// (§6.2 black-box functions).
	externals map[string]func(args []value.Value) (value.Value, error)
	// StorageHints overrides the adaptive storage policy per array
	// name (ablation benches force schemes through this). Keys are
	// lowercased; read through StorageHint so lookups stay
	// case-insensitive like the catalog's.
	StorageHints map[string]storage.Hints
	// parallelism is the worker count for morsel-driven SELECT
	// execution; <= 1 runs the serial interpreter.
	parallelism int
	// pool is the shared worker pool, sized to parallelism. It is
	// stateless, so concurrent sessions share it freely.
	pool *parallel.Pool
	// planCache memoizes the parallel-eligibility decision (and the
	// array names to prewarm) per SELECT AST node, so re-executed
	// statements (and per-row correlated subqueries, which reuse one
	// AST) plan once, not once per row. Entries are stamped with the
	// catalog version they were planned under: a DDL committed by any
	// session makes every other session's cached decision stale, and
	// the next execution re-resolves instead of running stale bindings.
	planMu    sync.Mutex
	planCache map[*ast.Select]planDecision
	// vectorized enables compiling filters/projections into bulk BAT
	// kernels; off forces the row-at-a-time interpreter everywhere.
	vectorized bool
	// chunkSkip enables zone-map chunk skipping: scans consult per-chunk
	// min/max statistics to drop chunks that cannot satisfy the residual
	// WHERE conjuncts or the dimension restriction. Results are
	// byte-identical either way; the knob exists for benchmarking and
	// the identity test suite.
	chunkSkip bool
	// vecCache memoizes compiled kernel programs per (expression AST
	// node, binding mode), alongside the plan cache, so prepared
	// statements compile kernels once; entries validate against the
	// column signature they were compiled for, which re-checks after
	// any DDL. fusedSkip memoizes "the fused scan path has nothing to
	// offer" verdicts per SELECT node (stamped with the catalog
	// version) so repeated executions skip the stream analysis.
	vecMu     sync.Mutex
	vecCache  map[vecCacheKey]*vecCacheEntry
	fusedSkip map[*ast.Select]int64
	// gov is the database's resource governor: admission control,
	// statement timeouts and memory budgets. Nil on a Shared
	// constructed without New (governor methods are nil-receiver safe).
	gov *governor.Governor
	// met holds the database's pre-resolved telemetry instruments
	// (engine counters, latency histograms, gauges); nil only when the
	// Shared was constructed without New — metrics() falls back to a
	// no-op sink then.
	met *engineMetrics
	// pins ledgers outstanding catalog-snapshot pins (statements and
	// open cursors) behind the snapshots_pinned gauge; see pinSnap.
	pinMu  sync.Mutex
	pins   map[int64]time.Time
	pinSeq int64
	// curRel holds the release hooks of every session's open streaming
	// cursors (the per-session view lives in Engine.curPins), so
	// DB.Close can free pins abandoned on implicit sessions; ledger
	// membership doubles as the hooks' idempotency token.
	curMu  sync.Mutex
	curRel map[int64]func()
	// curSeq mints tokens for non-pin cursor releases (governance
	// cleanups entered in the same ledgers under negative keys, so they
	// never collide with pinSeq's positive pin tokens).
	curSeq atomic.Int64
}

// Engine is one session executing SciQL statements against the shared
// catalog. It owns the expression evaluator (wired with hooks for
// subqueries, array references and UDF calls) and the session's
// snapshot/transaction state. A session executes one statement at a
// time — it is not safe for concurrent use — but any number of
// sessions of one Shared run concurrently: reads pin an immutable
// catalog snapshot, writers build new versions copy-on-write.
type Engine struct {
	*Shared
	Ev *expr.Evaluator
	// qctx is the context of the statement currently executing through
	// ExecContext; helpers consult it (via canceled and the worker
	// pool) so cancellation stops long scans. The session executes one
	// statement at a time, so a single field suffices.
	qctx context.Context
	// snap is the catalog snapshot pinned for the in-flight statement
	// (or open cursor); nil between statements. Inside a transaction
	// the mutation's working view takes precedence.
	snap *catalog.Snapshot
	// mut is the active catalog mutation: the transaction's private
	// version between BEGIN and COMMIT/ROLLBACK, or the autocommit
	// mutation wrapping a single write statement.
	mut *catalog.Mutation
	// inTx marks an explicit BEGIN..COMMIT transaction (mut outlives
	// the statement).
	inTx bool
	// prof is the per-query profile collector EXPLAIN ANALYZE arms for
	// exactly one statement; nil (the overwhelmingly common case) skips
	// every collection site on a single pointer test.
	prof *telemetry.Profile
	// budget is the memory account of the in-flight governed statement;
	// nil when no memory limit is configured (charge sites pay one nil
	// check). Streaming plans copy it at compile time (streamPlan.budget)
	// so cursor workers never read session state.
	budget *governor.Budget
	// stmtDepth counts nested ExecContext frames: governance (admission,
	// timeout, budget, panic containment) applies only at depth zero, so
	// a streaming cursor's materializing fallback is not admitted or
	// budgeted twice.
	stmtDepth int
	// curPins holds the release hooks of this session's open streaming
	// cursors, keyed by pin token; the connection layer drains it on
	// teardown (ReleaseCursorPins) so a Rows abandoned without Close
	// cannot retain superseded catalog versions past its connection's
	// lifetime.
	curPins map[int64]func()
}

// planDecision is one memoized routing decision: the worker count,
// the catalog arrays whose lazy indexes need prewarming before each
// parallel execution, and the optimizer's pruned scan projections.
type planDecision struct {
	par  int
	warm []string
	// catVer is the catalog schema version the decision was planned
	// under; a lookup at any other schema version re-plans (prepared
	// statements re-resolve after DDL from any session instead of
	// executing stale bindings), while DML commits — which change data
	// versions only — leave memoized plans intact.
	catVer int64
	// scans maps lowercased array names to the pruned attribute-name
	// projection of their Scan nodes; an absent entry keeps every
	// attribute. Name-based pruning is safe for any array bound to the
	// name at runtime: an attribute whose name the statement never
	// mentions cannot be referenced.
	scans map[string][]string
}

// scanAttrs resolves the pruned projection for one scanned array into
// schema attribute positions (nil = keep all; empty = dimensions-only
// scan). Names that don't resolve against the runtime schema are
// dropped rather than guessed.
func (d planDecision) scanAttrs(a *array.Array, name string) []int {
	names, ok := d.scans[strings.ToLower(name)]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(names))
	for _, n := range names {
		if ai := a.Schema.AttrIndex(n); ai >= 0 {
			out = append(out, ai)
		}
	}
	return out
}

// New creates an engine session with an empty catalog.
func New() *Engine {
	reg := telemetry.NewRegistry()
	sh := &Shared{
		Cat:          catalog.New(),
		externals:    make(map[string]func([]value.Value) (value.Value, error)),
		StorageHints: make(map[string]storage.Hints),
		vectorized:   true,
		chunkSkip:    true,
		met:          newEngineMetrics(reg),
		pins:         make(map[int64]time.Time),
		gov:          &governor.Governor{},
	}
	sh.gov.SetMetrics(governor.Metrics{
		Admitted:     reg.Counter("queries_admitted_total"),
		Rejected:     reg.Counter("queries_rejected_total"),
		TimedOut:     reg.Counter("queries_timed_out_total"),
		Panicked:     reg.Counter("queries_panicked_total"),
		BudgetAborts: reg.Counter("mem_budget_aborts_total"),
		MemInUse:     reg.Gauge("mem_in_use_bytes"),
	})
	sh.Cat.SetMetrics(reg.Counter("catalog_cow_clone_total"), reg.Counter("catalog_cow_clone_bytes_total"))
	reg.RegisterFunc("snapshot_pin_age_seconds", sh.oldestPinAgeSeconds)
	reg.RegisterFunc("catalog_version", sh.Cat.Version)
	reg.RegisterFunc("catalog_schema_version", func() int64 { return sh.Cat.Snapshot().SchemaVersion() })
	reg.Gauge("pool_workers").Set(1)
	return sh.newSession()
}

// NewSession opens another session over the same shared database:
// same catalog, externals, hints, pool and caches, but private
// evaluator and snapshot/transaction state. Sessions run statements
// concurrently with each other.
func (e *Engine) NewSession() *Engine { return e.Shared.newSession() }

func (sh *Shared) newSession() *Engine {
	e := &Engine{Shared: sh, Ev: expr.New()}
	e.Ev.Hooks = expr.Hooks{
		Subquery: e.scalarSubquery,
		ArrayRef: e.evalArrayRef,
		Call:     e.callUDF,
	}
	return e
}

// cat returns the catalog view of the in-flight statement: the
// transaction's (or autocommit write's) working view when a mutation
// is active, else the snapshot pinned at statement start, else the
// current catalog root.
func (e *Engine) cat() *catalog.Snapshot {
	if e.mut != nil {
		return e.mut.View()
	}
	if e.snap != nil {
		return e.snap
	}
	return e.Cat.Snapshot()
}

// runWrite executes a writing statement. Inside an explicit
// transaction the active mutation accumulates the writes (published
// only at COMMIT). Otherwise the statement runs as its own exclusive
// mutation: the writer lock is held for the statement — writers are
// serialized only against other writers; readers stream on unaffected
// — and the new catalog version is swapped in atomically at the end,
// or discarded entirely on error.
func (e *Engine) runWrite(fn func() error) error {
	if e.mut != nil {
		// Explicit transaction: the statement runs against the open
		// mutation under a savepoint, so a statement that fails
		// mid-execution leaves no partial effects in the transaction
		// (statement atomicity — a later COMMIT publishes only the
		// statements that succeeded).
		sp := e.mut.Savepoint()
		if err := fn(); err != nil {
			e.mut.RollbackTo(sp)
			return err
		}
		return nil
	}
	m := e.Cat.BeginExclusive()
	e.mut = m
	committed := false
	defer func() {
		// Abort on error — and on panic, so the writer lock is never
		// left held by a failed statement.
		e.mut = nil
		if !committed {
			m.Abort()
		}
	}()
	if err := fn(); err != nil {
		return err
	}
	// Commit only marks the statement committed when it succeeds: a
	// failing (or panicking) commit falls through to the deferred Abort,
	// which releases the writer lock instead of leaving it held.
	err := m.Commit()
	committed = err == nil
	return err
}

// Begin starts an explicit transaction: reads pin the current catalog
// snapshot, writes accumulate in a private version until Commit.
func (e *Engine) Begin() error {
	if e.inTx {
		return fmt.Errorf("already in a transaction")
	}
	e.mut = e.Cat.BeginTx()
	e.inTx = true
	e.metrics().txBegin.Inc()
	return nil
}

// Commit publishes the transaction. Returns catalog.ErrConflict when
// another transaction committed a conflicting object version first
// (first committer wins); the transaction is over either way.
func (e *Engine) Commit() error {
	if !e.inTx {
		return fmt.Errorf("COMMIT outside a transaction")
	}
	m := e.mut
	e.mut, e.inTx = nil, false
	err := m.Commit()
	if errors.Is(err, catalog.ErrConflict) {
		e.metrics().txConflict.Inc()
	} else if err == nil {
		e.metrics().txCommit.Inc()
	}
	return err
}

// Rollback discards the transaction.
func (e *Engine) Rollback() error {
	if !e.inTx {
		return fmt.Errorf("ROLLBACK outside a transaction")
	}
	e.mut.Abort()
	e.mut, e.inTx = nil, false
	e.metrics().txRollback.Inc()
	return nil
}

// InTx reports whether an explicit transaction is open.
func (e *Engine) InTx() bool { return e.inTx }

// RegisterExternal binds an EXTERNAL NAME to a Go implementation.
func (e *Engine) RegisterExternal(name string, fn func(args []value.Value) (value.Value, error)) {
	e.externals[strings.ToLower(name)] = fn
}

// SetStorageHint records a storage-scheme hint for an array created
// later under the given name.
func (e *Engine) SetStorageHint(arrayName string, h storage.Hints) {
	e.StorageHints[strings.ToLower(arrayName)] = h
}

// StorageHint returns the hint recorded for arrayName, matching the
// catalog's case-insensitive name resolution.
func (e *Engine) StorageHint(arrayName string) storage.Hints {
	return e.StorageHints[strings.ToLower(arrayName)]
}

// SetParallelism sets the worker count for morsel-driven SELECT
// execution. n <= 0 selects GOMAXPROCS; 1 forces the serial
// interpreter.
func (e *Engine) SetParallelism(n int) {
	p := parallel.NewPool(n)
	e.parallelism = p.Workers()
	if m := e.metrics(); m.reg != nil {
		m.reg.Gauge("pool_workers").Set(int64(e.parallelism))
		p.SetMetrics(parallel.Metrics{
			Queue:    m.reg.Gauge("pool_queue_depth"),
			InFlight: m.reg.Gauge("pool_inflight"),
			Morsels:  m.reg.Counter("pool_morsels_total"),
		})
	}
	if e.parallelism > 1 {
		e.pool = p
	} else {
		e.pool = nil
	}
	// Cached eligibility decisions embed the old worker count.
	e.planMu.Lock()
	e.planCache = nil
	e.planMu.Unlock()
	e.invalidateVecCache()
}

// SetVectorized toggles vectorized (bulk-kernel) evaluation of
// filters and projections; off forces the row-at-a-time interpreter.
// Results are byte-identical either way — the knob exists for
// benchmarking and the identity test suite.
func (e *Engine) SetVectorized(on bool) {
	e.vectorized = on
	// Fused-path verdicts embed the old setting.
	e.invalidateVecCache()
}

// Vectorized reports whether bulk-kernel evaluation is enabled.
func (e *Engine) Vectorized() bool { return e.vectorized }

// SetChunkSkip toggles zone-map chunk skipping on scans. Results are
// byte-identical either way — the knob exists for benchmarking and the
// identity test suite.
func (e *Engine) SetChunkSkip(on bool) { e.chunkSkip = on }

// ChunkSkipping reports whether zone-map chunk skipping is enabled.
func (e *Engine) ChunkSkipping() bool { return e.chunkSkip }

// Parallelism reports the configured worker count (1 = serial).
func (e *Engine) Parallelism() int {
	if e.parallelism <= 1 {
		return 1
	}
	return e.parallelism
}

// DatasetToArray exposes the dataset→array coercion (§3.3) to the
// public API.
func (e *Engine) DatasetToArray(ds *Dataset, name string) (*array.Array, error) {
	return e.datasetToArray(ds, nil, name)
}

// baseEnv wraps host parameters as the root environment.
type baseEnv struct{ params map[string]value.Value }

func (b *baseEnv) Lookup(string, string) (value.Value, bool) { return value.Value{}, false }
func (b *baseEnv) Param(name string) (value.Value, bool) {
	v, ok := b.params[strings.ToLower(name)]
	return v, ok
}

// Exec runs one statement. Params bind ?name host parameters. SELECT
// returns a dataset; DDL/DML return nil (or a small info dataset).
func (e *Engine) Exec(stmt ast.Statement, params map[string]value.Value) (*Dataset, error) {
	return e.ExecContext(context.Background(), stmt, params)
}

// ExecContext is Exec bound to a context: cancellation stops long
// scans (serial loops check periodically; the morsel pool checks in
// its worker loop) and the statement returns ctx.Err(). It is also the
// governance boundary: the statement acquires an admission slot and a
// memory budget, runs under the statement timeout, and any panic it
// raises is contained here — converted into a *governor.PanicError
// while the session's snapshot/transaction state unwinds through the
// inner defers, leaving the session usable.
func (e *Engine) ExecContext(ctx context.Context, stmt ast.Statement, params map[string]value.Value) (ds *Dataset, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.stmtDepth > 0 {
		// Nested frame (a streaming cursor's materializing fallback): the
		// outer boundary already admitted, budgeted and armed the timer.
		return e.execPinned(ctx, stmt, params)
	}
	gov := e.gov
	release, err := gov.Admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	sctx, cancel := gov.WithStatementTimeout(ctx)
	defer cancel()
	bud := gov.NewBudget()
	e.budget = bud
	e.stmtDepth++
	defer func() {
		e.stmtDepth--
		e.budget = nil
		bud.Release()
		// The inner defers (snapshot unpin, qctx restore, mutation abort)
		// have already run during the unwind by the time this recover
		// fires, so the session is consistent when the panic surfaces as
		// an error.
		if r := recover(); r != nil {
			ds, err = nil, governor.NewPanicError(r, debug.Stack())
		}
		err = govFinish(gov, sctx, err)
	}()
	return e.execPinned(sctx, stmt, params)
}

// execPinned runs one statement inside the governance boundary:
// snapshot pinning, per-statement context bookkeeping and statement
// metrics — ExecContext's historical body.
func (e *Engine) execPinned(ctx context.Context, stmt ast.Statement, params map[string]value.Value) (*Dataset, error) {
	prev := e.qctx
	prevSnap := e.snap
	e.qctx = ctx
	if e.mut == nil {
		// Pin one catalog snapshot for the whole statement; inside a
		// transaction the mutation view is already pinned.
		e.snap = e.Cat.Snapshot()
		pin := e.pinSnap()
		defer e.unpinSnap(pin)
	}
	start := time.Now()
	defer func() {
		e.qctx = prev
		e.snap = prevSnap
		e.metrics().statement(stmtKind(stmt), time.Since(start))
	}()
	return e.execStmt(stmt, params)
}

// ctx returns the context of the in-flight statement.
func (e *Engine) ctx() context.Context {
	if e.qctx == nil {
		return context.Background()
	}
	return e.qctx
}

// canceled reports the in-flight statement's context error; serial
// row loops call it periodically so cancellation is honored even off
// the parallel path.
func (e *Engine) canceled() error {
	if e.qctx == nil {
		return nil
	}
	return e.qctx.Err()
}

// pinCursorSnapshot pins one catalog snapshot for the life of a
// cursor: it stays the session's view until the cursor closes, so
// expression hooks that resolve arrays mid-iteration (m[x-1].v) read
// the same version the scan does, no matter what concurrent sessions
// commit. The returned release func drops the pin so an idle session
// doesn't retain superseded object versions; it is entered in the
// snapshots_pinned ledger and in the session's release map, so
// connection teardown can free cursors abandoned without Close
// (ReleaseCursorPins). Inside a transaction the mutation view is
// already the pin and release is nil.
func (e *Engine) pinCursorSnapshot() (release func()) {
	if e.mut != nil {
		return nil
	}
	pinned := e.Cat.Snapshot()
	e.snap = pinned
	pin := e.pinSnap()
	sh := e.Shared
	release = func() {
		// Membership in the shared ledger is the idempotency token:
		// the first caller (cursor Close, connection teardown, or
		// DB.Close) removes it; later callers find nothing to do.
		sh.curMu.Lock()
		if _, ok := sh.curRel[pin]; !ok {
			sh.curMu.Unlock()
			return
		}
		delete(sh.curRel, pin)
		sh.curMu.Unlock()
		e.unpinSnap(pin)
		delete(e.curPins, pin)
		if e.snap == pinned {
			e.snap = nil
		}
	}
	if e.curPins == nil {
		e.curPins = make(map[int64]func())
	}
	e.curPins[pin] = release
	sh.curMu.Lock()
	if sh.curRel == nil {
		sh.curRel = make(map[int64]func())
	}
	sh.curRel[pin] = release
	sh.curMu.Unlock()
	return release
}

func (e *Engine) execStmt(stmt ast.Statement, params map[string]value.Value) (*Dataset, error) {
	norm := make(map[string]value.Value, len(params))
	for k, v := range params {
		norm[strings.ToLower(k)] = v
	}
	env := &baseEnv{params: norm}
	// Writing statements run under a catalog mutation (the open
	// transaction's, or an autocommit one wrapping this statement):
	// every touched object is cloned before its first write, and the
	// new versions publish atomically at commit. Plan-cache entries
	// are stamped with the catalog version (selectDecision), so no
	// explicit invalidation is needed here — a committed DDL bumps the
	// version and every session re-plans on next use.
	switch s := stmt.(type) {
	case *ast.Select:
		return e.execSelect(s, env)
	case *ast.Explain:
		return e.execExplain(s, env)
	case *ast.TxStmt:
		switch s.Kind {
		case ast.TxBegin:
			return nil, e.Begin()
		case ast.TxCommit:
			return nil, e.Commit()
		case ast.TxRollback:
			return nil, e.Rollback()
		}
		return nil, fmt.Errorf("unknown transaction statement %q", s.Kind)
	case *ast.CreateTable:
		return nil, e.runWrite(func() error { return e.execCreateTable(s) })
	case *ast.CreateArray:
		return nil, e.runWrite(func() error { return e.execCreateArray(s, env) })
	case *ast.CreateSequence:
		return nil, e.runWrite(func() error { return e.execCreateSequence(s, env) })
	case *ast.CreateFunction:
		return nil, e.runWrite(func() error { return e.execCreateFunction(s) })
	case *ast.AlterArray:
		return nil, e.runWrite(func() error { return e.execAlterArray(s, env) })
	case *ast.Drop:
		return nil, e.runWrite(func() error { return e.mut.Drop(s.Kind, s.Name) })
	case *ast.Insert:
		return nil, e.runWrite(func() error { return e.execInsert(s, env) })
	case *ast.Update:
		return nil, e.runWrite(func() error { return e.execUpdate(s, env) })
	case *ast.SetStmt:
		return nil, e.runWrite(func() error { return e.execSetStmt(s, env) })
	case *ast.Delete:
		return nil, e.runWrite(func() error { return e.execDelete(s, env) })
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// constEval evaluates an expression that must be constant under env.
func (e *Engine) constEval(x ast.Expr, env expr.Env) (value.Value, error) {
	if x == nil {
		return value.NewNull(value.Unknown), nil
	}
	return e.Ev.Eval(x, env)
}

// --- CREATE TABLE ----------------------------------------------------------

func (e *Engine) execCreateTable(s *ast.CreateTable) error {
	cols := make([]catalog.TableColumn, 0, len(s.Cols))
	for _, c := range s.Cols {
		tc := catalog.TableColumn{Name: c.Name, Typ: c.Type, PrimaryKey: c.PrimaryKey}
		if c.Type == value.Array {
			sch, err := e.compileSchema(c.NestedArray, &baseEnv{})
			if err != nil {
				return fmt.Errorf("column %s: %w", c.Name, err)
			}
			tc.Nested = sch
		}
		cols = append(cols, tc)
	}
	return e.mut.PutTable(catalog.NewTable(s.Name, cols))
}

// --- CREATE ARRAY ----------------------------------------------------------

// compileSchema turns parsed column definitions into an array schema,
// resolving dimension ranges, CHECK predicates and defaults.
func (e *Engine) compileSchema(cols []ast.ColDef, env expr.Env) (*array.Schema, error) {
	sch := &array.Schema{}
	var dimNames []string
	for _, c := range cols {
		if c.IsDim {
			dimNames = append(dimNames, c.Name)
		}
	}
	for _, c := range cols {
		if c.IsDim {
			d, err := e.compileDimension(c, env)
			if err != nil {
				return nil, err
			}
			if c.Check != nil {
				d.Check = e.compileCoordPredicate(c.Check, dimNames)
				d.CheckSQL = "CHECK(...)"
			}
			sch.Dims = append(sch.Dims, *d)
			continue
		}
		at := array.Attr{Name: c.Name, Typ: c.Type}
		if c.Type == value.Array {
			nestedCols := c.NestedArray
			if len(c.FixedArrayDims) > 0 {
				// FLOAT ARRAY[4][4] shorthand: synthesize integer
				// dimensions x0..xn with the declared sizes.
				dims := make([]ast.ColDef, len(c.FixedArrayDims))
				for i, sz := range c.FixedArrayDims {
					dims[i] = ast.ColDef{
						Name:  fmt.Sprintf("x%d", i),
						Type:  value.Int,
						IsDim: true,
						Dim:   &ast.DimSpec{Size: sz},
					}
				}
				nestedCols = append(dims, nestedCols...)
			}
			nested, err := e.compileSchema(nestedCols, env)
			if err != nil {
				return nil, fmt.Errorf("attribute %s: %w", c.Name, err)
			}
			// A scalar DEFAULT on an ARRAY[n][m] column initializes the
			// nested cells (payload FLOAT ARRAY[4][4] DEFAULT 0.0).
			if c.Default != nil && constExpr(c.Default) && len(nested.Attrs) == 1 {
				dv, err := e.constEval(c.Default, env)
				if err != nil {
					return nil, fmt.Errorf("attribute %s DEFAULT: %w", c.Name, err)
				}
				if cv, err := value.Coerce(dv, nested.Attrs[0].Typ); err == nil {
					nested.Attrs[0].Default = cv
				}
				c.Default = nil
			}
			at.Nested = nested
			at.Default = value.NewNull(value.Array)
			sch.Attrs = append(sch.Attrs, at)
			continue
		}
		if c.Default != nil {
			if constExpr(c.Default) {
				dv, err := e.constEval(c.Default, env)
				if err != nil {
					return nil, fmt.Errorf("attribute %s DEFAULT: %w", c.Name, err)
				}
				cv, err := value.Coerce(dv, effectiveType(at))
				if err != nil {
					return nil, fmt.Errorf("attribute %s DEFAULT: %w", c.Name, err)
				}
				at.Default = cv
			} else {
				at.DefaultFn = e.compileCoordDefault(c.Default, dimNames, at.Typ, env)
			}
		} else if c.Type != value.Array {
			at.Default = value.NewNull(c.Type)
		}
		if c.Check != nil {
			at.Check = e.compileValuePredicate(c.Check, c.Name)
			at.CheckSQL = "CHECK(...)"
		}
		sch.Attrs = append(sch.Attrs, at)
	}
	return sch, nil
}

func effectiveType(at array.Attr) value.Type {
	if at.Typ == value.Array {
		return value.Array
	}
	return at.Typ
}

// constExpr reports whether an expression contains no identifiers
// (so it can be folded at DDL time).
func constExpr(x ast.Expr) bool {
	ok := true
	ast.Walk(x, func(n ast.Expr) bool {
		switch n.(type) {
		case *ast.Ident, *ast.Subquery, *ast.ArrayRef, *ast.Param:
			ok = false
			return false
		case *ast.FuncCall:
			if strings.EqualFold(n.(*ast.FuncCall).Name, "RAND") {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

func (e *Engine) compileDimension(c ast.ColDef, env expr.Env) (*array.Dimension, error) {
	d := &array.Dimension{Name: c.Name, Typ: c.Type, Step: 1}
	if c.Type != value.Int && c.Type != value.Timestamp {
		return nil, fmt.Errorf("dimension %s: index type must be INTEGER or TIMESTAMP, got %s", c.Name, c.Type)
	}
	if c.Type == value.Timestamp {
		// Temporal dims default to order-only (no grid step).
		d.Step = 0
	}
	spec := c.Dim
	if spec == nil || spec.Bare {
		// Bare DIMENSION: unbounded both ways; the instance bounds are
		// the minimal bounding rectangle of its cells (§3.1).
		d.Start, d.End = array.UnboundedLow, array.UnboundedHigh
		return d, nil
	}
	if spec.SeqName != "" {
		seq, ok := e.cat().Sequence(spec.SeqName)
		if !ok {
			return nil, fmt.Errorf("dimension %s: no such sequence %s", c.Name, spec.SeqName)
		}
		sd := seq.Dimension(c.Name)
		sd.Typ = c.Type
		return &sd, nil
	}
	if spec.Size != nil {
		n, err := e.constEval(spec.Size, env)
		if err != nil {
			return nil, err
		}
		d.Start, d.End, d.Step = 0, n.AsInt(), 1
		return d, nil
	}
	// Colon form.
	d.Start, d.End = array.UnboundedLow, array.UnboundedHigh
	if !spec.StarStart && spec.Start != nil {
		v, err := e.constEval(spec.Start, env)
		if err != nil {
			return nil, err
		}
		d.Start = v.AsInt()
	} else if !spec.StarStart && spec.Start == nil {
		d.Start = 0
	}
	if !spec.StarEnd && spec.End != nil {
		v, err := e.constEval(spec.End, env)
		if err != nil {
			return nil, err
		}
		d.End = v.AsInt()
	}
	if !spec.StarStep && spec.Step != nil {
		v, err := e.constEval(spec.Step, env)
		if err != nil {
			return nil, err
		}
		d.Step = v.AsInt()
	} else if c.Type == value.Int {
		d.Step = 1
	}
	return d, nil
}

// compileCoordPredicate builds a coordinate predicate from a CHECK
// expression over dimension names (diagonal: CHECK(x = y)).
func (e *Engine) compileCoordPredicate(check ast.Expr, dimNames []string) func([]int64) bool {
	return func(coords []int64) bool {
		env := &expr.MapEnv{Vars: make(map[string]value.Value, len(dimNames))}
		for i, n := range dimNames {
			if i < len(coords) {
				env.Vars[strings.ToLower(n)] = value.NewInt(coords[i])
			}
		}
		ok, err := e.Ev.EvalBool(check, env)
		return err == nil && ok
	}
}

// compileValuePredicate builds a content predicate from a CHECK over
// the attribute itself (sparse: CHECK(v > 0)).
func (e *Engine) compileValuePredicate(check ast.Expr, attrName string) func(value.Value) bool {
	return func(v value.Value) bool {
		env := &expr.MapEnv{Vars: map[string]value.Value{strings.ToLower(attrName): v}}
		ok, err := e.Ev.EvalBool(check, env)
		return err == nil && ok
	}
}

// compileCoordDefault builds a coordinate-dependent DEFAULT
// (r = SQRT(POWER(x,2)+POWER(y,2)), §5.1).
func (e *Engine) compileCoordDefault(def ast.Expr, dimNames []string, t value.Type, outer expr.Env) func([]int64) value.Value {
	return func(coords []int64) value.Value {
		env := &expr.MapEnv{Vars: make(map[string]value.Value, len(dimNames)), Parent: outer}
		for i, n := range dimNames {
			if i < len(coords) {
				env.Vars[strings.ToLower(n)] = value.NewInt(coords[i])
			}
		}
		v, err := e.Ev.Eval(def, env)
		if err != nil {
			return value.NewNull(t)
		}
		cv, err := value.Coerce(v, t)
		if err != nil {
			return value.NewNull(t)
		}
		return cv
	}
}

func (e *Engine) execCreateArray(s *ast.CreateArray, env expr.Env) error {
	cols := s.Cols
	if s.Like != "" {
		src, ok := e.cat().Array(s.Like)
		if !ok {
			return fmt.Errorf("CREATE ARRAY %s LIKE: no such array %s", s.Name, s.Like)
		}
		a := &array.Array{Name: s.Name, Schema: src.Schema}
		st, err := e.newStore(s.Name, src.Schema)
		if err != nil {
			return err
		}
		a.Store = st
		return e.mut.PutArray(a)
	}
	sch, err := e.compileSchema(cols, env)
	if err != nil {
		return fmt.Errorf("CREATE ARRAY %s: %w", s.Name, err)
	}
	st, err := e.newStore(s.Name, *sch)
	if err != nil {
		return fmt.Errorf("CREATE ARRAY %s: %w", s.Name, err)
	}
	a := &array.Array{Name: s.Name, Schema: *sch, Store: st}
	if err := e.mut.PutArray(a); err != nil {
		return err
	}
	if s.AsSelect != nil {
		ds, err := e.execSelect(s.AsSelect, env)
		if err != nil {
			return err
		}
		return e.fillArrayFromDataset(a, ds)
	}
	return nil
}

// newStore instantiates storage under the adaptive policy, honoring
// per-array hints.
func (e *Engine) newStore(name string, sch array.Schema) (array.Store, error) {
	return storage.New(sch, e.StorageHint(name))
}

func (e *Engine) execCreateSequence(s *ast.CreateSequence, env expr.Env) error {
	seq := &catalog.Sequence{Name: s.Name, Typ: s.Typ, Start: 0, Increment: 1, MaxValue: int64(1) << 40}
	if s.Start != nil {
		v, err := e.constEval(s.Start, env)
		if err != nil {
			return err
		}
		seq.Start = v.AsInt()
	}
	if s.Increment != nil {
		v, err := e.constEval(s.Increment, env)
		if err != nil {
			return err
		}
		seq.Increment = v.AsInt()
	}
	if s.MaxValue != nil {
		v, err := e.constEval(s.MaxValue, env)
		if err != nil {
			return err
		}
		seq.MaxValue = v.AsInt()
	}
	return e.mut.PutSequence(seq)
}

func (e *Engine) execCreateFunction(s *ast.CreateFunction) error {
	f := &catalog.Function{Name: s.Name, Def: s}
	if s.External != "" {
		impl, ok := e.externals[strings.ToLower(s.External)]
		if !ok {
			return fmt.Errorf("CREATE FUNCTION %s: no registered implementation for EXTERNAL NAME '%s'", s.Name, s.External)
		}
		f.External = impl
	}
	e.mut.PutFunction(f)
	return nil
}

// --- ALTER ARRAY -----------------------------------------------------------

func (e *Engine) execAlterArray(s *ast.AlterArray, env expr.Env) error {
	a, ok := e.cat().Array(s.Name)
	if !ok {
		return fmt.Errorf("ALTER ARRAY: no such array %s", s.Name)
	}
	switch {
	case s.AlterDim != nil:
		return e.alterDimension(a, s.AlterDimName, s.AlterDim, env)
	case s.AddCol != nil:
		return e.addAttribute(a, s.AddCol, env)
	}
	return fmt.Errorf("ALTER ARRAY %s: nothing to do", s.Name)
}

// alterDimension re-declares a dimension's range, shifting the index
// labels of existing cells without touching cell contents (§5.1: the
// image shift is a catalog update).
func (e *Engine) alterDimension(a *array.Array, dimName string, spec *ast.DimSpec, env expr.Env) error {
	di := a.Schema.DimIndex(dimName)
	if di < 0 {
		return fmt.Errorf("ALTER ARRAY %s: no dimension %s", a.Name, dimName)
	}
	old := a.Schema.Dims[di]
	nd, err := e.compileDimension(ast.ColDef{Name: dimName, Type: old.Typ, Dim: spec, IsDim: true}, env)
	if err != nil {
		return err
	}
	// Label shift: the cell at old Start now carries new Start.
	delta := int64(0)
	if nd.Start != array.UnboundedLow && old.Start != array.UnboundedLow {
		delta = nd.Start - old.Start
	}
	newSchema := a.Schema
	newSchema.Dims = append([]array.Dimension(nil), a.Schema.Dims...)
	newSchema.Dims[di] = *nd
	st, err := e.newStore(a.Name, newSchema)
	if err != nil {
		return err
	}
	nb := &array.Array{Name: a.Name, Schema: newSchema, Store: st}
	visited := 0
	var scanErr error
	a.Store.Scan(func(coords []int64, vals []value.Value) bool {
		visited++
		if visited&1023 == 0 {
			if err := e.canceled(); err != nil {
				scanErr = err
				return false
			}
		}
		nc := append([]int64(nil), coords...)
		nc[di] += delta
		if !nb.ValidCoords(nc) {
			return true
		}
		for ai, v := range vals {
			_ = st.Set(nc, ai, v)
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	e.mut.ReplaceArray(nb)
	return nil
}

// addAttribute appends an attribute, evaluating its DEFAULT against
// each existing cell (dims and prior attributes are in scope, so
// theta can reference r).
func (e *Engine) addAttribute(a *array.Array, col *ast.ColDef, env expr.Env) error {
	if col.IsDim {
		// Adding a dimension-tagged attribute (wcs_x FLOAT DIMENSION)
		// stores it as a regular attribute; SciQL treats it as a
		// derived coordinate system (§7.2.1).
		col.IsDim = false
	}
	newSchema := a.Schema
	newSchema.Attrs = append(append([]array.Attr(nil), a.Schema.Attrs...),
		array.Attr{Name: col.Name, Typ: col.Type, Default: value.NewNull(col.Type)})
	st, err := e.newStore(a.Name, newSchema)
	if err != nil {
		return err
	}
	nb := &array.Array{Name: a.Name, Schema: newSchema, Store: st}
	nAttrs := len(a.Schema.Attrs)
	var evalErr error
	visited := 0
	a.Store.Scan(func(coords []int64, vals []value.Value) bool {
		visited++
		if visited&1023 == 0 {
			if err := e.canceled(); err != nil {
				evalErr = err
				return false
			}
		}
		for ai, v := range vals {
			_ = st.Set(coords, ai, v)
		}
		nv := value.NewNull(col.Type)
		if col.Default != nil {
			cellEnv := &expr.MapEnv{Vars: make(map[string]value.Value), Parent: env}
			for i, d := range a.Schema.Dims {
				cellEnv.Vars[strings.ToLower(d.Name)] = value.Value{Typ: d.Typ, I: coords[i]}
			}
			for i, at := range a.Schema.Attrs {
				cellEnv.Vars[strings.ToLower(at.Name)] = vals[i]
			}
			v, err := e.Ev.Eval(col.Default, cellEnv)
			if err != nil {
				evalErr = err
				return false
			}
			cv, err := value.Coerce(v, col.Type)
			if err != nil {
				evalErr = err
				return false
			}
			nv = cv
		}
		_ = st.Set(coords, nAttrs, nv)
		return true
	})
	if evalErr != nil {
		return fmt.Errorf("ALTER ARRAY %s ADD %s: %w", a.Name, col.Name, evalErr)
	}
	e.mut.ReplaceArray(nb)
	return nil
}
