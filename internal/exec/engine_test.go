package exec

import (
	"testing"

	"repro/internal/sql/parser"
	"repro/internal/value"
)

// run executes a script and fails the test on error.
func run(t *testing.T, e *Engine, sql string, params map[string]value.Value) *Dataset {
	t.Helper()
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse error: %v\nSQL: %s", err, sql)
	}
	var last *Dataset
	for _, s := range stmts {
		ds, err := e.Exec(s, params)
		if err != nil {
			t.Fatalf("exec error: %v\nSQL: %s", err, sql)
		}
		last = ds
	}
	return last
}

func newMatrix(t *testing.T) *Engine {
	e := New()
	run(t, e, `
		CREATE ARRAY matrix (
			x INTEGER DIMENSION[4],
			y INTEGER DIMENSION[4],
			v FLOAT DEFAULT 0.0);
		UPDATE matrix SET v = x * 4 + y;
	`, nil)
	return e
}

func TestCreateArrayDefaults(t *testing.T) {
	e := New()
	run(t, e, `CREATE ARRAY a1 (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`, nil)
	ds := run(t, e, `SELECT x, v FROM a1`, nil)
	if ds.NumRows() != 4 {
		t.Fatalf("expected 4 cells, got %d", ds.NumRows())
	}
	for r := 0; r < 4; r++ {
		if got := ds.Get(r, 1).AsFloat(); got != 0 {
			t.Errorf("cell %d: default %v, want 0", r, got)
		}
	}
}

func TestSequenceDimension(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE SEQUENCE rng AS INTEGER START WITH 0 INCREMENT BY 1 MAXVALUE 3;
		CREATE ARRAY a3 (x INTEGER DIMENSION rng, v FLOAT DEFAULT 0.0);
	`, nil)
	ds := run(t, e, `SELECT x FROM a3`, nil)
	if ds.NumRows() != 4 {
		t.Fatalf("sequence dimension size: got %d rows, want 4", ds.NumRows())
	}
}

func TestGuardedUpdateCase(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `UPDATE matrix SET v = CASE WHEN x>y THEN x + y WHEN x<y THEN x - y ELSE 0 END`, nil)
	ds := run(t, e, `SELECT v FROM matrix WHERE x = 2 AND y = 1`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 3 {
		t.Errorf("x>y cell: got %v, want 3", got)
	}
	ds = run(t, e, `SELECT v FROM matrix WHERE x = 1 AND y = 3`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != -2 {
		t.Errorf("x<y cell: got %v, want -2", got)
	}
	ds = run(t, e, `SELECT v FROM matrix WHERE x = 2 AND y = 2`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 0 {
		t.Errorf("diagonal cell: got %v, want 0", got)
	}
}

func TestDimensionCheckStripes(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY stripes (
			x INTEGER DIMENSION[4] CHECK(MOD(x,2) = 1),
			y INTEGER DIMENSION[4],
			v FLOAT DEFAULT 0.0);
	`, nil)
	ds := run(t, e, `SELECT x, y, v FROM stripes`, nil)
	if ds.NumRows() != 8 {
		t.Fatalf("stripes: got %d cells, want 8 (x in {1,3})", ds.NumRows())
	}
	for r := 0; r < ds.NumRows(); r++ {
		if x := ds.Get(r, 0).I; x != 1 && x != 3 {
			t.Errorf("stripes row %d: x=%d not odd", r, x)
		}
	}
}

func TestDiagonalCheck(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY diagonal (
			x INTEGER DIMENSION[4],
			y INTEGER DIMENSION[4] CHECK(x = y),
			v FLOAT DEFAULT 0.0);
		UPDATE diagonal SET v = x + y;
	`, nil)
	ds := run(t, e, `SELECT x, y, v FROM diagonal`, nil)
	if ds.NumRows() != 4 {
		t.Fatalf("diagonal: got %d cells, want 4", ds.NumRows())
	}
	for r := 0; r < 4; r++ {
		if ds.Get(r, 0).I != ds.Get(r, 1).I {
			t.Errorf("off-diagonal cell leaked: %v", ds.Row(r))
		}
		if got := ds.Get(r, 2).AsFloat(); got != float64(2*ds.Get(r, 0).I) {
			t.Errorf("diagonal value: got %v", got)
		}
	}
}

func TestContentCheckSparse(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY sparse (
			x INTEGER DIMENSION[4],
			y INTEGER DIMENSION[4],
			v FLOAT DEFAULT 0.0 CHECK(v>0));
		UPDATE sparse SET v = x - 1;
	`, nil)
	// v = x-1: x=0 -> -1 (nullified), x=1 -> 0 (nullified), x>=2 -> kept.
	ds := run(t, e, `SELECT x, y, v FROM sparse`, nil)
	if ds.NumRows() != 8 {
		t.Fatalf("sparse: got %d cells, want 8", ds.NumRows())
	}
	for r := 0; r < ds.NumRows(); r++ {
		if v := ds.Get(r, 2).AsFloat(); v <= 0 {
			t.Errorf("CHECK(v>0) violated: %v", v)
		}
	}
}

func TestCellSelectionAndBounds(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `SELECT x, y, v FROM matrix WHERE v > 2`, nil)
	if ds.NumRows() != 13 {
		t.Fatalf("WHERE v>2: got %d rows, want 13", ds.NumRows())
	}
	// Dimension-qualified projection keeps the flags.
	ds = run(t, e, `SELECT [x], [y], v FROM matrix WHERE v > 2`, nil)
	if !ds.Cols[0].IsDim || !ds.Cols[1].IsDim || ds.Cols[2].IsDim {
		t.Fatalf("dimension flags wrong: %+v", ds.Cols)
	}
}

func TestPointSlicing(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `SELECT matrix[1][1].v`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 5 {
		t.Errorf("matrix[1][1].v = %v, want 5", got)
	}
	// Out-of-bounds point access reads NULL.
	ds = run(t, e, `SELECT matrix[9][9].v`, nil)
	if !ds.Get(0, 0).Null {
		t.Errorf("out-of-bounds access should be NULL, got %v", ds.Get(0, 0))
	}
}

func TestRangeSlicingExpandsToCells(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `SELECT matrix[0:2][0:2].v`, nil)
	if ds.NumRows() != 4 {
		t.Fatalf("2x2 slice: got %d cells, want 4", ds.NumRows())
	}
}

func TestArrayLiteral(t *testing.T) {
	e := New()
	ds := run(t, e, `SELECT ARRAY (1,2,3,4)`, nil)
	if ds.NumRows() != 4 {
		t.Fatalf("ARRAY(1,2,3,4): got %d cells, want 4", ds.NumRows())
	}
	ds = run(t, e, `SELECT ARRAY((1,2),(3,4))`, nil)
	if ds.NumRows() != 4 {
		t.Fatalf("ARRAY((1,2),(3,4)): got %d cells, want 4", ds.NumRows())
	}
	if ds.NumCols() != 3 {
		t.Fatalf("2-D literal should have x, y, v columns; got %d", ds.NumCols())
	}
}

func TestOverlappingTiling(t *testing.T) {
	e := newMatrix(t)
	// 16 overlapping 2x2 tiles on a 4x4 matrix (Fig. 3).
	ds := run(t, e, `SELECT [x], [y], avg(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2]`, nil)
	if ds.NumRows() != 16 {
		t.Fatalf("overlapping tiling: got %d groups, want 16", ds.NumRows())
	}
	// Anchor (0,0): cells {0,1,4,5} -> avg 2.5.
	found := false
	for r := 0; r < ds.NumRows(); r++ {
		if ds.Get(r, 0).I == 0 && ds.Get(r, 1).I == 0 {
			found = true
			if got := ds.Get(r, 2).AsFloat(); got != 2.5 {
				t.Errorf("tile(0,0) avg = %v, want 2.5", got)
			}
		}
	}
	if !found {
		t.Fatal("anchor (0,0) missing")
	}
	// Border anchor (3,3): single cell 15.
	for r := 0; r < ds.NumRows(); r++ {
		if ds.Get(r, 0).I == 3 && ds.Get(r, 1).I == 3 {
			if got := ds.Get(r, 2).AsFloat(); got != 15 {
				t.Errorf("tile(3,3) avg = %v, want 15 (outer NULLs ignored)", got)
			}
		}
	}
}

func TestDistinctTiling(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `SELECT [x], [y], avg(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`, nil)
	if ds.NumRows() != 4 {
		t.Fatalf("DISTINCT tiling: got %d groups, want 4", ds.NumRows())
	}
}

func TestRowChecksumTiling(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `SELECT [x], sum(v) FROM matrix GROUP BY DISTINCT matrix[x][y:*]`, nil)
	if ds.NumRows() != 4 {
		t.Fatalf("row checksums: got %d rows, want 4", ds.NumRows())
	}
	// Row x: sum of 4x, 4x+1, 4x+2, 4x+3 = 16x + 6.
	for r := 0; r < 4; r++ {
		x := ds.Get(r, 0).I
		if got := ds.Get(r, 1).AsFloat(); got != float64(16*x+6) {
			t.Errorf("row %d checksum = %v, want %d", x, got, 16*x+6)
		}
	}
}

func TestConvolutionWithEmbedding(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `
		CREATE ARRAY vmatrix (
			x INTEGER DIMENSION[-1:5],
			y INTEGER DIMENSION[-1:5],
			v FLOAT DEFAULT 0.0);
		INSERT INTO vmatrix SELECT [x], [y], v FROM matrix;
	`, nil)
	ds := run(t, e, `
		SELECT x, y, AVG(v)
		FROM vmatrix[0:4][0:4]
		GROUP BY vmatrix[x][y], vmatrix[x-1][y], vmatrix[x+1][y],
		         vmatrix[x][y-1], vmatrix[x][y+1]`, nil)
	if ds.NumRows() != 16 {
		t.Fatalf("convolution anchors: got %d, want 16", ds.NumRows())
	}
	// Center (1,1): cells 5,1,9,4,6 -> avg 5.
	for r := 0; r < ds.NumRows(); r++ {
		if ds.Get(r, 0).I == 1 && ds.Get(r, 1).I == 1 {
			if got := ds.Get(r, 2).AsFloat(); got != 5 {
				t.Errorf("conv(1,1) = %v, want 5", got)
			}
		}
	}
}

func TestTransposedEmbedding(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `
		CREATE ARRAY tm (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		INSERT INTO tm SELECT [y], [x], v FROM matrix;
	`, nil)
	// tm[y][x] = matrix[x][y]: tm[1][2] should equal matrix[2][1] = 9.
	ds := run(t, e, `SELECT tm[1][2].v`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 9 {
		t.Errorf("transpose cell = %v, want 9", got)
	}
}

func TestValueGroupBy(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE TABLE events (x INTEGER, y INTEGER);
		INSERT INTO events VALUES (1, 1), (1, 1), (2, 3);
	`, nil)
	ds := run(t, e, `SELECT x, y, count(*) FROM events GROUP BY x, y`, nil)
	if ds.NumRows() != 2 {
		t.Fatalf("GROUP BY x,y: got %d groups, want 2", ds.NumRows())
	}
}

func TestXRayBinning(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE TABLE events (x INTEGER, y INTEGER);
		INSERT INTO events VALUES (0,0),(0,0),(0,1),(17,17),(17,17),(17,17);
		CREATE ARRAY ximage (
			x INTEGER DIMENSION,
			y INTEGER DIMENSION,
			v INTEGER DEFAULT 0);
		INSERT INTO ximage SELECT [x], [y], count(*) FROM events GROUP BY x, y;
	`, nil)
	ds := run(t, e, `SELECT v FROM ximage WHERE x = 0 AND y = 0`, nil)
	if got := ds.Get(0, 0).I; got != 2 {
		t.Fatalf("bin(0,0) = %d, want 2", got)
	}
	// Re-binning 16x via tiling.
	ds = run(t, e, `SELECT [x/16], [y/16], SUM(v) FROM ximage GROUP BY DISTINCT ximage[x:x+16][y:y+16]`, nil)
	if ds.NumRows() < 1 {
		t.Fatal("rebinned image is empty")
	}
}

func TestUnionChessboard(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE SEQUENCE rng AS INTEGER START WITH 0 INCREMENT BY 1 MAXVALUE 7;
		CREATE ARRAY white (i INTEGER DIMENSION rng, j INTEGER DIMENSION rng, color CHAR(5) DEFAULT 'white');
		CREATE ARRAY black (LIKE white);
		UPDATE black SET color = 'black';
		CREATE ARRAY chessboard (i INTEGER DIMENSION rng, j INTEGER DIMENSION rng, sq CHAR(5));
		INSERT INTO chessboard
			SELECT [i], [j], color FROM white WHERE MOD(i + j, 2) = 0
			UNION
			SELECT [i], [j], color FROM black WHERE MOD(i + j, 2) = 1;
	`, nil)
	ds := run(t, e, `SELECT sq FROM chessboard WHERE i = 0 AND j = 0`, nil)
	if got := ds.Get(0, 0).S; got != "white" {
		t.Errorf("chessboard(0,0) = %q, want white", got)
	}
	ds = run(t, e, `SELECT sq FROM chessboard WHERE i = 0 AND j = 1`, nil)
	if got := ds.Get(0, 0).S; got != "black" {
		t.Errorf("chessboard(0,1) = %q, want black", got)
	}
	ds = run(t, e, `SELECT count(*) FROM chessboard`, nil)
	if got := ds.Get(0, 0).I; got != 64 {
		t.Errorf("chessboard cells = %d, want 64", got)
	}
}

func TestWhiteBoxTranspose(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `
		CREATE FUNCTION transpose (a ARRAY (i INTEGER DIMENSION, j INTEGER DIMENSION, v FLOAT))
		RETURNS ARRAY (i INTEGER DIMENSION, j INTEGER DIMENSION, v FLOAT)
		BEGIN RETURN SELECT [j],[i], v FROM a; END;
	`, nil)
	ds := run(t, e, `SELECT transpose(matrix[*][*])`, nil)
	// Result expands to cells: transpose swaps coordinates.
	if ds.NumRows() != 16 {
		t.Fatalf("transpose result: got %d cells, want 16", ds.NumRows())
	}
}

func TestWhiteBoxScalarTVI(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE FUNCTION tvi (b3 REAL, b4 REAL) RETURNS REAL
		RETURN POWER(((b4 - b3) / (b4 + b3) + 0.5), 0.5);
	`, nil)
	ds := run(t, e, `SELECT tvi(1.0, 3.0)`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 1.0 {
		t.Errorf("tvi(1,3) = %v, want 1.0", got)
	}
}

func TestPSMConvFunction(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `
		CREATE FUNCTION conv (a ARRAY(i INTEGER DIMENSION[3], j INTEGER DIMENSION[3], v FLOAT))
		RETURNS FLOAT
		BEGIN
			DECLARE s1 FLOAT, s2 FLOAT, z FLOAT;
			SET s1 = (a[0][0].v + a[0][2].v + a[2][0].v + a[2][2].v)/4.0;
			SET s2 = (a[0][1].v + a[1][0].v + a[1][2].v + a[2][1].v)/4.0;
			SET z = 2 * ABS(s1 - s2);
			IF ((ABS(a[1][1].v - s1) > z) OR (ABS(a[1][1].v - s2) > z))
			THEN RETURN s2;
			ELSE RETURN a[1][1].v;
			END IF;
		END;
	`, nil)
	// The window at (1,1): uniform-ish gradient keeps the center.
	ds := run(t, e, `SELECT conv(matrix[0:3][0:3])`, nil)
	if ds.Get(0, 0).Null {
		t.Fatal("conv returned NULL")
	}
	if got := ds.Get(0, 0).AsFloat(); got != 5 {
		t.Errorf("conv(window at 1,1) = %v, want 5 (center kept)", got)
	}
}

func TestBlackBoxFunction(t *testing.T) {
	e := newMatrix(t)
	e.RegisterExternal("markov.loop", func(args []value.Value) (value.Value, error) {
		return value.NewFloat(42), nil
	})
	run(t, e, `
		CREATE FUNCTION markov (input ARRAY (x INT DIMENSION, y INT DIMENSION, f FLOAT), steps INT)
		RETURNS FLOAT EXTERNAL NAME 'markov.loop';
	`, nil)
	ds := run(t, e, `SELECT markov(matrix[*][*], 10)`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 42 {
		t.Errorf("black-box call = %v, want 42", got)
	}
}

func TestInsertShifting(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY grid (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v INTEGER DEFAULT 0);
		UPDATE grid SET v = x * 4 + y;
		INSERT INTO grid VALUES(1, 1, 25);
	`, nil)
	ds := run(t, e, `SELECT v FROM grid WHERE x = 1 AND y = 1`, nil)
	if got := ds.Get(0, 0).I; got != 25 {
		t.Fatalf("inserted cell = %d, want 25", got)
	}
	// Old (1,1)=5 shifted to (2,2).
	ds = run(t, e, `SELECT v FROM grid WHERE x = 2 AND y = 2`, nil)
	if got := ds.Get(0, 0).I; got != 5 {
		t.Errorf("shifted cell (2,2) = %d, want 5", got)
	}
	// Cell (0,0) untouched (coords below the anchor don't shift).
	ds = run(t, e, `SELECT v FROM grid WHERE x = 0 AND y = 0`, nil)
	if got := ds.Get(0, 0).I; got != 0 {
		t.Errorf("cell (0,0) = %d, want 0", got)
	}
}

func TestDeleteLineKill(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `DELETE FROM matrix WHERE MOD(x, 2) = 0 OR MOD(y, 2) = 0`, nil)
	// Survivors: (1,1)=5,(1,3)=7,(3,1)=13,(3,3)=15 shifted to x[0:1]y[0:1].
	ds := run(t, e, `SELECT v FROM matrix WHERE x = 0 AND y = 0`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 5 {
		t.Errorf("shifted (0,0) = %v, want 5", got)
	}
	ds = run(t, e, `SELECT v FROM matrix WHERE x = 1 AND y = 1`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 15 {
		t.Errorf("shifted (1,1) = %v, want 15", got)
	}
	// Vacated cells reset to the default.
	ds = run(t, e, `SELECT v FROM matrix WHERE x = 3 AND y = 3`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 0 {
		t.Errorf("vacated (3,3) = %v, want default 0", got)
	}
}

func TestAlterDimensionShift(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `ALTER ARRAY matrix ALTER x DIMENSION[-5:-1]`, nil)
	ds := run(t, e, `SELECT v FROM matrix WHERE x = -5 AND y = 0`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 0 {
		t.Errorf("shifted label (-5,0) = %v, want 0 (old (0,0))", got)
	}
	ds = run(t, e, `SELECT v FROM matrix WHERE x = -2 AND y = 3`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 15 {
		t.Errorf("shifted label (-2,3) = %v, want 15 (old (3,3))", got)
	}
}

func TestAlterAddDerivedColumn(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `ALTER ARRAY matrix ADD r FLOAT DEFAULT SQRT(POWER(x,2) + POWER(y,2))`, nil)
	ds := run(t, e, `SELECT r FROM matrix WHERE x = 3 AND y = 4`, nil)
	_ = ds // (3,4) out of bounds for 4x4; use (3,3).
	ds = run(t, e, `SELECT r FROM matrix WHERE x = 0 AND y = 3`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 3 {
		t.Errorf("r(0,3) = %v, want 3", got)
	}
}

func TestCorrelatedSubqueryWavelet(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY d (x INTEGER DIMENSION[2], y INTEGER DIMENSION[4], v FLOAT DEFAULT 1.0);
		CREATE ARRAY e2 (x INTEGER DIMENSION[2], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.5);
		CREATE ARRAY img (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		UPDATE img SET img[x][y].v = (SELECT d[x/2][y].v + e2[x/2][y].v * POWER(-1,x) FROM d, e2);
	`, nil)
	// Even x: 1 + 0.5 = 1.5; odd x: 1 - 0.5 = 0.5.
	ds := run(t, e, `SELECT v FROM img WHERE x = 0 AND y = 0`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 1.5 {
		t.Errorf("img(0,0) = %v, want 1.5", got)
	}
	ds = run(t, e, `SELECT v FROM img WHERE x = 1 AND y = 2`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 0.5 {
		t.Errorf("img(1,2) = %v, want 0.5", got)
	}
}

func TestCorrelatedJoinFormWavelet(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY d (x INTEGER DIMENSION[2], y INTEGER DIMENSION[4], v FLOAT DEFAULT 1.0);
		CREATE ARRAY e2 (x INTEGER DIMENSION[2], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.5);
		CREATE ARRAY img (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		UPDATE img SET v = (SELECT d.v + e2.v * POWER(-1,x) FROM d, e2
			WHERE img.y = d.y AND img.y = e2.y AND d.x = img.x/2 AND e2.x = img.x/2);
	`, nil)
	ds := run(t, e, `SELECT v FROM img WHERE x = 1 AND y = 2`, nil)
	if got := ds.Get(0, 0).AsFloat(); got != 0.5 {
		t.Errorf("join-form img(1,2) = %v, want 0.5", got)
	}
}

func TestMatVecTiling(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY a (x INTEGER DIMENSION[3], y INTEGER DIMENSION[3], v FLOAT DEFAULT 1.0);
		CREATE ARRAY b (k INTEGER DIMENSION[3], v FLOAT DEFAULT 2.0);
		CREATE ARRAY m (x INTEGER DIMENSION[3], v FLOAT DEFAULT 0.0);
		UPDATE a SET v = x + y;
		UPDATE b SET v = k + 1;
		UPDATE m SET m[x].v = (SELECT SUM(a[x][y].v * b[y].v) FROM a GROUP BY a[x][*]);
	`, nil)
	// Row x of a = [x, x+1, x+2]; b = [1,2,3]; m[x] = x*1+(x+1)*2+(x+2)*3 = 6x+8.
	for x := int64(0); x < 3; x++ {
		ds := run(t, e, `SELECT v FROM m WHERE x = ?x`, map[string]value.Value{"x": value.NewInt(x)})
		if got := ds.Get(0, 0).AsFloat(); got != float64(6*x+8) {
			t.Errorf("m[%d] = %v, want %d", x, got, 6*x+8)
		}
	}
}

func TestMaskHaving(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `
		SELECT [x], [y], AVG(v) FROM matrix
		GROUP BY matrix[x-1:x+2][y-1:y+2]
		HAVING AVG(v) BETWEEN 5 AND 9`, nil)
	for r := 0; r < ds.NumRows(); r++ {
		avg := ds.Get(r, 2).AsFloat()
		if avg < 5 || avg > 9 {
			t.Errorf("HAVING leak: avg=%v", avg)
		}
	}
	if ds.NumRows() == 0 {
		t.Fatal("mask returned no tiles")
	}
}

func TestNextGapDetection(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY samples (time INTEGER DIMENSION, data FLOAT);
		INSERT INTO samples VALUES (0, 1.0);
		INSERT INTO samples VALUES (1, 2.0);
		INSERT INTO samples VALUES (5, 3.0);
		INSERT INTO samples VALUES (6, 4.0);
	`, nil)
	ds := run(t, e, `
		SELECT [time], next(time) - time FROM samples
		WHERE next(time) - time BETWEEN ?gap_min AND ?gap_max`,
		map[string]value.Value{"gap_min": value.NewInt(2), "gap_max": value.NewInt(10)})
	if ds.NumRows() != 1 {
		t.Fatalf("gap detection: got %d gaps, want 1", ds.NumRows())
	}
	if got := ds.Get(0, 0).I; got != 1 {
		t.Errorf("gap starts at time %d, want 1", got)
	}
	if got := ds.Get(0, 1).I; got != 4 {
		t.Errorf("gap length = %d, want 4", got)
	}
}

func TestMovingAverage(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY s (time INTEGER DIMENSION[1:6], data FLOAT);
		UPDATE s SET data = CASE WHEN time = 1 THEN 4.5051 WHEN time = 2 THEN 4.5947
			WHEN time = 3 THEN 5.2231 WHEN time = 4 THEN 4.9635 ELSE 5.2945 END;
	`, nil)
	ds := run(t, e, `
		SELECT [time], AVG(data) FROM s GROUP BY s[time-2:time+1]`, nil)
	if ds.NumRows() != 5 {
		t.Fatalf("moving average rows: got %d, want 5", ds.NumRows())
	}
	want := map[int64]float64{
		1: 4.5051, 2: 4.5499, 3: 4.774300000000001, 4: 4.9271, 5: 5.160366666666667,
	}
	for r := 0; r < ds.NumRows(); r++ {
		tm := ds.Get(r, 0).I
		got := ds.Get(r, 1).AsFloat()
		if diff := got - want[tm]; diff > 1e-4 || diff < -1e-4 {
			t.Errorf("movavg(t=%d) = %v, want %v", tm, got, want[tm])
		}
	}
}

func TestUnboundedTimestampArray(t *testing.T) {
	e := New()
	run(t, e, `
		CREATE ARRAY exp1 (run TIMESTAMP DIMENSION[TIMESTAMP '2010-01-01':*], val FLOAT);
		INSERT INTO exp1 VALUES (TIMESTAMP '2010-06-01', 1.5);
		INSERT INTO exp1 VALUES (TIMESTAMP '2010-06-02', 2.5);
	`, nil)
	ds := run(t, e, `SELECT run, val FROM exp1`, nil)
	if ds.NumRows() != 2 {
		t.Fatalf("timestamp array: got %d cells, want 2", ds.NumRows())
	}
	if ds.Cols[0].Typ != value.Timestamp {
		t.Errorf("run column type = %v, want Timestamp", ds.Cols[0].Typ)
	}
}

func TestOrderByLimit(t *testing.T) {
	e := newMatrix(t)
	ds := run(t, e, `SELECT x, y, v FROM matrix ORDER BY v DESC LIMIT 3`, nil)
	if ds.NumRows() != 3 {
		t.Fatalf("LIMIT 3: got %d", ds.NumRows())
	}
	if got := ds.Get(0, 2).AsFloat(); got != 15 {
		t.Errorf("top value = %v, want 15", got)
	}
}

func TestJoinOnArrayDims(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `
		CREATE TABLE tt (i INTEGER, k INTEGER);
		INSERT INTO tt VALUES (1, 100), (2, 200);
	`, nil)
	ds := run(t, e, `SELECT [tt.k], [y], v FROM matrix JOIN tt ON matrix.x = tt.i`, nil)
	if ds.NumRows() != 8 {
		t.Fatalf("join: got %d rows, want 8", ds.NumRows())
	}
}

func TestDropObjects(t *testing.T) {
	e := newMatrix(t)
	run(t, e, `DROP ARRAY matrix`, nil)
	if _, err := parser.ParseOne(`SELECT * FROM matrix`); err != nil {
		t.Fatal(err)
	}
	stmt, _ := parser.ParseOne(`SELECT * FROM matrix`)
	if _, err := e.Exec(stmt, nil); err == nil {
		t.Fatal("expected error selecting from dropped array")
	}
}
