package exec

import (
	"time"

	"repro/internal/sql/ast"
	"repro/internal/telemetry"
)

// engineMetrics holds the pre-resolved instrument pointers of one
// database. Lookups against the registry happen once, at New; the hot
// paths touch only the atomics behind these pointers. Every field is
// nil-safe (telemetry instruments no-op on nil receivers), so a
// zero-valued engineMetrics is a valid "metrics off" sink.
type engineMetrics struct {
	reg *telemetry.Registry

	// Per-kind statement counts and latencies (stmt_<kind>_total,
	// stmt_<kind>_seconds). Kinds are the values stmtKind returns.
	stmtCount map[string]*telemetry.Counter
	stmtLat   map[string]*telemetry.Histogram

	planHit, planMiss      *telemetry.Counter
	vecHit, vecMiss        *telemetry.Counter
	vecKernel, vecFallback *telemetry.Counter
	txBegin, txCommit      *telemetry.Counter
	txRollback, txConflict *telemetry.Counter
	scanChunks, scanCells  *telemetry.Counter
	scanRows               *telemetry.Counter
	scanChunksSkipped      *telemetry.Counter
	snapPinned             *telemetry.Gauge
}

// stmtKinds are the statement-kind labels engineMetrics pre-resolves.
var stmtKinds = []string{"select", "explain", "insert", "update", "delete", "set", "ddl", "tx", "other"}

func newEngineMetrics(reg *telemetry.Registry) *engineMetrics {
	m := &engineMetrics{
		reg:         reg,
		stmtCount:   make(map[string]*telemetry.Counter, len(stmtKinds)),
		stmtLat:     make(map[string]*telemetry.Histogram, len(stmtKinds)),
		planHit:     reg.Counter("plan_cache_hit_total"),
		planMiss:    reg.Counter("plan_cache_miss_total"),
		vecHit:      reg.Counter("vec_cache_hit_total"),
		vecMiss:     reg.Counter("vec_cache_miss_total"),
		vecKernel:   reg.Counter("vec_kernel_total"),
		vecFallback: reg.Counter("vec_fallback_total"),
		txBegin:     reg.Counter("tx_begin_total"),
		txCommit:    reg.Counter("tx_commit_total"),
		txRollback:  reg.Counter("tx_rollback_total"),
		txConflict:  reg.Counter("tx_conflict_total"),
		scanChunks:  reg.Counter("scan_chunks_total"),
		scanCells:   reg.Counter("scan_cells_total"),
		scanRows:    reg.Counter("scan_rows_total"),
		snapPinned:  reg.Gauge("snapshots_pinned"),

		scanChunksSkipped: reg.Counter("scan_chunks_skipped_total"),
	}
	for _, k := range stmtKinds {
		m.stmtCount[k] = reg.Counter("stmt_" + k + "_total")
		m.stmtLat[k] = reg.Histogram("stmt_" + k + "_seconds")
	}
	return m
}

// statement records one finished statement of the given kind.
func (m *engineMetrics) statement(kind string, d time.Duration) {
	if m == nil {
		return
	}
	m.stmtCount[kind].Inc()
	m.stmtLat[kind].Observe(d)
}

// metricsOff is the sink sessions fall back to when a Shared was
// built without New (tests constructing the struct directly).
var metricsOff = &engineMetrics{}

// metrics returns the database's instrument set; never nil.
func (sh *Shared) metrics() *engineMetrics {
	if sh.met == nil {
		return metricsOff
	}
	return sh.met
}

// Registry exposes the database's metrics registry (the public
// sciql.Metrics / Prometheus surface reads through it); nil when the
// Shared was constructed without New.
func (e *Engine) Registry() *telemetry.Registry {
	if e.met == nil {
		return nil
	}
	return e.met.reg
}

// stmtKind maps a statement onto its metric label.
func stmtKind(stmt ast.Statement) string {
	switch stmt.(type) {
	case *ast.Select:
		return "select"
	case *ast.Explain:
		return "explain"
	case *ast.Insert:
		return "insert"
	case *ast.Update:
		return "update"
	case *ast.Delete:
		return "delete"
	case *ast.SetStmt:
		return "set"
	case *ast.TxStmt:
		return "tx"
	case *ast.CreateTable, *ast.CreateArray, *ast.CreateSequence,
		*ast.CreateFunction, *ast.AlterArray, *ast.Drop:
		return "ddl"
	default:
		return "other"
	}
}

// StatementKind is stmtKind for the public layer (trace events label
// statements with it).
func StatementKind(stmt ast.Statement) string { return stmtKind(stmt) }

// --- snapshot pin accounting -------------------------------------------------

// pinSnap registers one pinned catalog snapshot (a statement or an
// open cursor) and returns its token. The snapshots_pinned gauge and
// the snapshot_pin_age_seconds derived gauge read from this ledger;
// the retention satellite tests assert it returns to baseline after
// cursors are abandoned on every error path.
func (sh *Shared) pinSnap() int64 {
	sh.pinMu.Lock()
	sh.pinSeq++
	id := sh.pinSeq
	if sh.pins == nil {
		sh.pins = make(map[int64]time.Time)
	}
	sh.pins[id] = time.Now()
	n := len(sh.pins)
	sh.pinMu.Unlock()
	sh.metrics().snapPinned.Set(int64(n))
	return id
}

// unpinSnap releases a pin token; safe to call with an already
// released token.
func (sh *Shared) unpinSnap(id int64) {
	sh.pinMu.Lock()
	delete(sh.pins, id)
	n := len(sh.pins)
	sh.pinMu.Unlock()
	sh.metrics().snapPinned.Set(int64(n))
}

// oldestPinAgeSeconds computes the age of the oldest outstanding pin
// for the snapshot_pin_age_seconds derived gauge (0 when idle).
func (sh *Shared) oldestPinAgeSeconds() int64 {
	sh.pinMu.Lock()
	defer sh.pinMu.Unlock()
	var oldest time.Time
	for _, at := range sh.pins {
		if oldest.IsZero() || at.Before(oldest) {
			oldest = at
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return int64(time.Since(oldest).Seconds())
}
