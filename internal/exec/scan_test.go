package exec

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// --- intersectSel -----------------------------------------------------------

func rng(lo, hi, step int64) dimSel { return dimSel{lo: lo, hi: hi, step: step} }
func pt(v int64) dimSel             { return dimSel{point: true, val: v} }
func fullSel() dimSel               { return dimSel{full: true} }
func selValues(s dimSel, n int64) []int64 {
	var out []int64
	for v := int64(0); v < n; v++ {
		if selContains(s, v) {
			out = append(out, v)
		}
	}
	return out
}

// TestIntersectSel pins the corrected intersection semantics: disjoint
// operands yield an empty selection (a point outside the other range
// used to survive as the point), and stepped ranges intersect
// phase-aware with an lcm stride.
func TestIntersectSel(t *testing.T) {
	cases := []struct {
		name string
		a, b dimSel
		want []int64 // admitted values in [0, 24)
	}{
		{"point-in-range", pt(3), rng(0, 5, 1), []int64{3}},
		{"point-outside-range", pt(10), rng(0, 5, 1), nil}, // the ISSUE example
		{"range-then-point-outside", rng(0, 5, 1), pt(10), nil},
		{"point-off-stride", pt(4), rng(0, 10, 3), nil},
		{"point-on-stride", pt(6), rng(0, 10, 3), []int64{6}},
		{"equal-points", pt(7), pt(7), []int64{7}},
		{"distinct-points", pt(7), pt(8), nil},
		{"full-left", fullSel(), rng(2, 6, 1), []int64{2, 3, 4, 5}},
		{"full-right", rng(2, 6, 1), fullSel(), []int64{2, 3, 4, 5}},
		{"plain-overlap", rng(0, 10, 1), rng(5, 20, 1), []int64{5, 6, 7, 8, 9}},
		{"disjoint-ranges", rng(0, 5, 1), rng(10, 20, 1), nil},
		{"stride-meets-bound", rng(0, 24, 3), rng(4, 24, 1), []int64{6, 9, 12, 15, 18, 21}},
		{"strides-coprime", rng(0, 24, 3), rng(0, 24, 2), []int64{0, 6, 12, 18}},
		{"strides-never-meet", rng(0, 24, 2), rng(1, 24, 2), nil},
		{"strides-offset-meet", rng(1, 24, 4), rng(3, 24, 2), []int64{5, 9, 13, 17, 21}},
	}
	for _, tc := range cases {
		got := intersectSel(tc.a, tc.b)
		gotVals := selValues(got, 24)
		// The intersection must admit exactly the values both admit.
		var want []int64
		for v := int64(0); v < 24; v++ {
			if selContains(tc.a, v) && selContains(tc.b, v) {
				want = append(want, v)
			}
		}
		if fmt.Sprint(want) != fmt.Sprint(tc.want) {
			t.Fatalf("%s: test case is inconsistent: operands admit %v, case says %v", tc.name, want, tc.want)
		}
		if fmt.Sprint(gotVals) != fmt.Sprint(tc.want) {
			t.Errorf("%s: intersect admits %v, want %v (sel %+v)", tc.name, gotVals, tc.want, got)
		}
		if tc.want == nil && !selEmpty(got) && !got.point {
			t.Errorf("%s: disjoint intersection not provably empty: %+v", tc.name, got)
		}
	}
}

// TestSelContainsStride pins the scan-side matcher: [lo:hi:step]
// admits lo, lo+step, ... and full never rejects.
func TestSelContainsStride(t *testing.T) {
	s := rng(2, 12, 3)
	for v, want := range map[int64]bool{1: false, 2: true, 3: false, 5: true, 8: true, 11: true, 12: false, 14: false} {
		if got := selContains(s, v); got != want {
			t.Errorf("[2:12:3] contains %d = %v, want %v", v, got, want)
		}
	}
	if !selContains(fullSel(), -1000) {
		t.Error("full selection rejected a value")
	}
	sparse := dimSel{lo: 0, hi: 10, step: 4, sparse: true}
	if !selContains(sparse, 3) {
		t.Error("sparse range must ignore stride")
	}
}

// --- stepped FROM-clause slicing -------------------------------------------

func mustExecSQL(t *testing.T, e *Engine, sql string) *Dataset {
	t.Helper()
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var last *Dataset
	for _, s := range stmts {
		ds, err := e.Exec(s, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		last = ds
	}
	return last
}

// TestSteppedFromSlice is the headline regression: SELECT x FROM
// A[0:10:3] must return exactly the stepped coordinates {0,3,6,9} —
// the same rows the identical slice yields in expression position —
// at parallelism 1 and 4.
func TestSteppedFromSlice(t *testing.T) {
	for _, par := range []int{1, 4} {
		e := New()
		e.SetParallelism(par)
		mustExecSQL(t, e, `CREATE ARRAY a (x INTEGER DIMENSION[10], v FLOAT DEFAULT 0.0)`)
		mustExecSQL(t, e, `UPDATE a SET v = x * 1.0`)
		from := mustExecSQL(t, e, `SELECT x FROM a[0:10:3]`)
		var got []string
		for r := 0; r < from.NumRows(); r++ {
			got = append(got, from.Get(r, 0).String())
		}
		if strings.Join(got, ",") != "0,3,6,9" {
			t.Fatalf("par=%d: FROM a[0:10:3] returned x = %v, want 0,3,6,9", par, got)
		}
		// Expression position lists the same cells.
		expr := mustExecSQL(t, e, `SELECT a[0:10:3]`)
		if expr.NumRows() != from.NumRows() {
			t.Fatalf("par=%d: expression slice has %d rows, FROM slice %d", par, expr.NumRows(), from.NumRows())
		}
		for r := 0; r < expr.NumRows(); r++ {
			if expr.Get(r, 0).String() != got[r] {
				t.Fatalf("par=%d row %d: expression slice x=%s, FROM slice x=%s",
					par, r, expr.Get(r, 0).String(), got[r])
			}
		}
	}
}

// TestSteppedSliceIntersectsPushdown: a WHERE range on a stepped FROM
// slice must keep the slice's stride (intersection, not overwrite).
func TestSteppedSliceIntersectsPushdown(t *testing.T) {
	e := New()
	mustExecSQL(t, e, `CREATE ARRAY a (x INTEGER DIMENSION[20], v FLOAT DEFAULT 0.0)`)
	mustExecSQL(t, e, `UPDATE a SET v = x * 1.0`)
	// Slice admits 0,3,6,9,12,15,18; WHERE narrows to [5, 16).
	ds := mustExecSQL(t, e, `SELECT x FROM a[0:20:3] WHERE x >= 5 AND x < 16`)
	var got []string
	for r := 0; r < ds.NumRows(); r++ {
		got = append(got, ds.Get(r, 0).String())
	}
	if strings.Join(got, ",") != "6,9,12,15" {
		t.Fatalf("stepped slice ∩ range returned %v, want 6,9,12,15", got)
	}
}

// TestImplicitRangeOnSteppedGrid: a plain [lo:hi] slice on a dimension
// with its own grid step is a pure range — it must admit the grid's
// cells inside [lo, hi) even when lo is off the grid phase, matching
// the equivalent WHERE range and expression-position slicing. Only an
// explicit [lo:hi:step] anchors a stride at lo.
func TestImplicitRangeOnSteppedGrid(t *testing.T) {
	for _, par := range []int{1, 4} {
		e := New()
		e.SetParallelism(par)
		mustExecSQL(t, e, `CREATE ARRAY g (x INTEGER DIMENSION[0:8:2], v FLOAT DEFAULT 1.0)`)
		collect := func(sql string, col int) string {
			ds := mustExecSQL(t, e, sql)
			var xs []string
			for r := 0; r < ds.NumRows(); r++ {
				xs = append(xs, ds.Get(r, col).String())
			}
			return strings.Join(xs, ",")
		}
		if got := collect(`SELECT x FROM g[1:8]`, 0); got != "2,4,6" {
			t.Fatalf("par=%d: FROM g[1:8] on grid 0,2,4,6 returned x = %q, want 2,4,6", par, got)
		}
		if got := collect(`SELECT x FROM g WHERE x >= 1 AND x < 8`, 0); got != "2,4,6" {
			t.Fatalf("par=%d: WHERE range returned x = %q, want 2,4,6", par, got)
		}
		if got := collect(`SELECT g[1:8]`, 0); got != "2,4,6" {
			t.Fatalf("par=%d: expression g[1:8] listed x = %q, want 2,4,6", par, got)
		}
		// Explicit off-grid stride selects nothing — on every surface.
		if got := collect(`SELECT x FROM g[1:8:2]`, 0); got != "" {
			t.Fatalf("par=%d: FROM g[1:8:2] (off-grid stride) returned %q, want empty", par, got)
		}
		// On-grid explicit stride keeps its lo anchor.
		if got := collect(`SELECT x FROM g[2:8:4]`, 0); got != "2,6" {
			t.Fatalf("par=%d: FROM g[2:8:4] returned %q, want 2,6", par, got)
		}
	}
}

// TestDisjointSliceAndPredicate: a slice and a contradicting pushed
// predicate must yield zero rows (and take the provably-empty short
// circuit rather than scanning).
func TestDisjointSliceAndPredicate(t *testing.T) {
	e := New()
	mustExecSQL(t, e, `CREATE ARRAY a (x INTEGER DIMENSION[20], v FLOAT DEFAULT 0.0)`)
	for _, q := range []string{
		`SELECT x FROM a[0:5] WHERE x = 10`,
		`SELECT x FROM a[0:5] WHERE x >= 7 AND x < 12`,
		`SELECT x FROM a[0:20:2] WHERE x = 11`,
	} {
		if ds := mustExecSQL(t, e, q); ds.NumRows() != 0 {
			t.Fatalf("%s returned %d rows, want 0:\n%s", q, ds.NumRows(), ds)
		}
	}
	if !effProvablyEmpty([]dimSel{rng(0, 10, 1), emptySel()}) {
		t.Fatal("effProvablyEmpty missed an empty selection")
	}
	if effProvablyEmpty([]dimSel{rng(0, 10, 1), fullSel()}) {
		t.Fatal("effProvablyEmpty false-positived on a live selection")
	}
}

// --- runtime projection pruning --------------------------------------------

// TestSelectDecisionPrunesScans checks the optimizer's pruned
// projection reaches the runtime decision, and that a * query keeps
// everything.
func TestSelectDecisionPrunesScans(t *testing.T) {
	e := New()
	mustExecSQL(t, e, `CREATE ARRAY m (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4],
		a FLOAT DEFAULT 0.0, b FLOAT DEFAULT 0.0, c FLOAT DEFAULT 0.0)`)
	arr, _ := e.Cat.Array("m")
	sel := func(sql string) *ast.Select {
		stmt, err := parser.ParseOne(sql)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*ast.Select)
	}
	dec := e.selectDecision(sel(`SELECT x, b FROM m WHERE a > 1`))
	if got := fmt.Sprint(dec.scanAttrs(arr, "m")); got != "[0 1]" {
		t.Fatalf("pruned attrs = %s, want [0 1] (a, b kept; c dropped)", got)
	}
	dec = e.selectDecision(sel(`SELECT * FROM m`))
	if dec.scanAttrs(arr, "m") != nil {
		t.Fatalf("star query pruned the scan: %v", dec.scanAttrs(arr, "m"))
	}
	dec = e.selectDecision(sel(`SELECT x FROM m`))
	if got := dec.scanAttrs(arr, "m"); got == nil || len(got) != 0 {
		t.Fatalf("dims-only query should prune every attribute, got %v", got)
	}
}

// TestEnvArrayShadowingCatalogNotPruned: inside a PSM body, a FROM
// name can bind to an array parameter that shadows a catalog array of
// the same name but a different schema. The pruned projection was
// planned against the catalog schema, so it must not apply to the
// environment-bound array — pruning there could drop an attribute the
// body references (w below, absent from the catalog array).
func TestEnvArrayShadowingCatalogNotPruned(t *testing.T) {
	e := New()
	mustExecSQL(t, e, `CREATE ARRAY m (x INTEGER DIMENSION[4], v FLOAT DEFAULT 1.0, z FLOAT DEFAULT 2.0)`)
	mustExecSQL(t, e, `CREATE ARRAY src (x INTEGER DIMENSION[4], v FLOAT DEFAULT 3.0, w FLOAT DEFAULT 7.0)`)
	mustExecSQL(t, e, `
		CREATE FUNCTION pick (m ARRAY (x INTEGER DIMENSION, v FLOAT, w FLOAT))
		RETURNS FLOAT
		BEGIN RETURN SELECT SUM(v + w) FROM m; END;
	`)
	ds := mustExecSQL(t, e, `SELECT pick(src[*])`)
	if got := ds.Get(0, 0).AsFloat(); got != 40 {
		t.Fatalf("pick(src) = %v, want 40 (4 cells of v=3 + w=7)", got)
	}
}

// TestPrunedScanKeepsMixedHoleRows: a cell whose selected attribute is
// NULL but whose unselected attribute is set is live — pruning must
// not turn it into a hole.
func TestPrunedScanKeepsMixedHoleRows(t *testing.T) {
	for _, par := range []int{1, 4} {
		e := New()
		e.SetParallelism(par)
		mustExecSQL(t, e, `CREATE ARRAY m (x INTEGER DIMENSION[4], a FLOAT, b FLOAT)`)
		// Only b is set at x=2: the cell is live, a reads NULL.
		mustExecSQL(t, e, `UPDATE m SET b = 5.0 WHERE x = 2`)
		ds := mustExecSQL(t, e, `SELECT x, a FROM m`)
		if ds.NumRows() != 1 {
			t.Fatalf("par=%d: pruned scan returned %d rows, want 1:\n%s", par, ds.NumRows(), ds)
		}
		if got := ds.Get(0, 0).AsInt(); got != 2 {
			t.Fatalf("par=%d: row at x=%d, want 2", par, got)
		}
		if !ds.Get(0, 1).Null {
			t.Fatalf("par=%d: pruned NULL attribute read as %v", par, ds.Get(0, 1))
		}
	}
}
