package exec

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/array"
	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// execTiling evaluates structural grouping (§4.4): GROUP BY over a
// parametrized series of array elements (tiles). Every valid anchor
// point in the array's dimensions yields one group of cells; cells
// denoted outside the index domain read as outer NULLs and are ignored
// by the aggregates. DISTINCT restricts anchors so tile boundaries are
// mutually exclusive.
func (e *Engine) execTiling(sel *ast.Select, ds *Dataset, sources []*source, remaining []ast.Expr, outer expr.Env, par int) (*Dataset, error) {
	gb := sel.GroupBy
	// Locate the tiled array from the first tile's base name.
	firstRef := gb.Tiles[0].Ref
	baseID, ok := firstRef.Base.(*ast.Ident)
	if !ok {
		return nil, fmt.Errorf("tile pattern must reference an array by name")
	}
	var src *source
	for _, s := range sources {
		if strings.EqualFold(s.name, baseID.Name) || strings.EqualFold(s.alias, baseID.Name) {
			src = s
			break
		}
	}
	var arr *array.Array
	if src != nil && src.arr != nil {
		arr = src.arr
	} else {
		a, err := e.resolveArrayBase(firstRef.Base, outer)
		if err != nil {
			return nil, fmt.Errorf("tile pattern: %w", err)
		}
		arr = a
	}
	// Anchor variables: dimension names of the tiled array that appear
	// free (not outer-bound) in the tile indexer expressions.
	anchorVars := e.collectAnchorVars(gb.Tiles, arr, outer)
	// Anchor domain: the rows of ds (each a valid cell of the possibly
	// sliced FROM scan) filtered by WHERE, projected onto the anchor
	// variables' dimension columns.
	where := andAll(remaining)
	var anchorRows []int
	n := ds.NumRows()
	for r := 0; r < n; r++ {
		if where != nil {
			env := &rowEnv{d: ds, row: r, outer: outer}
			ok, err := e.Ev.EvalBool(where, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		anchorRows = append(anchorRows, r)
	}
	// Column indexes of anchor dims in ds.
	qual := ""
	if src != nil {
		qual = src.qual()
	}
	anchorCols := make([]int, len(anchorVars))
	for i, v := range anchorVars {
		ci := ds.ColIndex(qual, v)
		if ci < 0 {
			ci = ds.ColIndex("", v)
		}
		if ci < 0 {
			return nil, fmt.Errorf("tile pattern: dimension %s not in scan", v)
		}
		anchorCols[i] = ci
	}
	// Deduplicate anchors (a 2-D scan grouped by matrix[x][*] anchors
	// on distinct x values only).
	var anchors []tileAnchor
	seen := make(map[string]bool)
	for _, r := range anchorRows {
		vals := make([]int64, len(anchorCols))
		var sb strings.Builder
		for i, ci := range anchorCols {
			v := ds.Vecs[ci].Get(r)
			vals[i] = v.AsInt()
			fmt.Fprintf(&sb, "%d\x00", vals[i])
		}
		k := sb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		anchors = append(anchors, tileAnchor{row: r, vals: vals})
	}
	// DISTINCT tiles: keep only anchors aligned to the tile extent.
	if gb.Distinct && len(anchors) > 0 {
		extent, origin, err := e.tileExtent(gb.Tiles, arr, anchorVars, anchors[0].vals, outer)
		if err != nil {
			return nil, err
		}
		var kept []tileAnchor
		for _, a := range anchors {
			aligned := true
			for i := range anchorVars {
				if extent[i] > 1 && (a.vals[i]-origin[i])%extent[i] != 0 {
					aligned = false
					break
				}
			}
			if aligned {
				kept = append(kept, a)
			}
		}
		anchors = kept
	}
	// Rewrite aggregates in items/having to placeholders.
	items := expandStars(sel.Items, ds.Cols)
	ac := &aggCollector{}
	rewritten := make([]ast.SelectItem, len(items))
	for i, it := range items {
		// Preserve the display name through the placeholder rewrite.
		rewritten[i] = ast.SelectItem{Expr: rewriteAggs(it.Expr, ac), Alias: itemName(it, i), DimQual: it.DimQual}
	}
	var havingRw ast.Expr
	if sel.Having != nil {
		havingRw = rewriteAggs(sel.Having, ac)
	}
	// Evaluate each anchor's group.
	interCols := append([]Col(nil), ds.Cols...)
	for i, nme := range ac.names {
		interCols = append(interCols, Col{Name: nme, Typ: aggType(ac.calls[i])})
	}
	inter := NewDataset(interCols)
	dimNames := make([]string, len(arr.Schema.Dims))
	for i, d := range arr.Schema.Dims {
		dimNames[i] = strings.ToLower(d.Name)
	}
	attrNames := make([]string, len(arr.Schema.Attrs))
	for i, at := range arr.Schema.Attrs {
		attrNames[i] = strings.ToLower(at.Name)
	}
	// Static analysis per aggregate: a bare-identifier argument naming
	// one of the tiled array's attributes feeds directly from the cell
	// values; an argument containing a range ArrayRef may fold a slice
	// per anchor (§7.3.4).
	directAttr := make([]int, len(ac.calls))
	mayPreFold := make([]bool, len(ac.calls))
	for i, c := range ac.calls {
		directAttr[i] = -1
		if c.Star || len(c.Args) != 1 {
			continue
		}
		if id, ok := c.Args[0].(*ast.Ident); ok && (id.Table == "" || strings.EqualFold(id.Table, qual)) {
			directAttr[i] = attrIndexFold(arr, id.Name)
		}
		ast.Walk(c.Args[0], func(n ast.Expr) bool {
			if ref, ok := n.(*ast.ArrayRef); ok {
				for _, ix := range ref.Indexers {
					if ix.Range {
						mayPreFold[i] = true
						return false
					}
				}
			}
			return true
		})
	}
	lowerAnchorVars := make([]string, len(anchorVars))
	for i, v := range anchorVars {
		lowerAnchorVars[i] = strings.ToLower(v)
	}
	job := &tileJob{
		e: e, tiles: gb.Tiles, arr: arr, outer: outer, ds: ds,
		calls: ac.calls, directAttr: directAttr, mayPreFold: mayPreFold,
		dimNames: dimNames, attrNames: attrNames, anchorVars: lowerAnchorVars,
	}
	// Cost-based strategy choice: estimate total touched cells as
	// anchors × per-tile extent (anchored dims step the measured span,
	// unanchored bounded dims contribute their full width) and fan out
	// only when the estimate clears the same threshold the parallel
	// scan paths use — below it the per-worker scratch setup dominates.
	parTiling := par > 1 && e.pool != nil && len(anchors) >= 2
	if parTiling {
		work := int64(len(anchors))
		if extent, _, err := e.tileExtent(gb.Tiles, arr, anchorVars, anchors[0].vals, outer); err == nil {
			per := int64(1)
			for _, x := range extent {
				per *= x
			}
			anchored := make(map[int]bool, len(anchorVars))
			for _, v := range anchorVars {
				anchored[dimIndexFold(arr, v)] = true
			}
			for di, d := range arr.Schema.Dims {
				if !anchored[di] && d.Bounded() {
					per *= d.Size()
				}
			}
			work *= per
		}
		parTiling = work >= minParallelScanCells
	}
	if parTiling {
		// Morsel-driven: anchors are the work domain; each worker owns
		// scratch environments and accumulators, rows land in a
		// preallocated slice so output order matches the serial path.
		rows := make([][]value.Value, len(anchors))
		states := make([]*tileWorker, e.pool.Workers())
		err := e.pool.ForEachCtx(e.ctx(), len(anchors), e.pool.MorselFor(len(anchors)), func(m parallelMorsel) error {
			ws := states[m.Worker]
			if ws == nil {
				ws = job.newWorker()
				states[m.Worker] = ws
			}
			for i := m.Lo; i < m.Hi; i++ {
				row := make([]value.Value, len(interCols))
				if err := job.evalAnchor(ws, anchors[i], row); err != nil {
					return err
				}
				rows[i] = row
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			inter.Append(row)
		}
	} else {
		// Serial: one worker state, row buffer reused across anchors
		// (the tiling loop is the engine's hottest path).
		ws := job.newWorker()
		rowBuf := make([]value.Value, len(interCols))
		for i, a := range anchors {
			if i&255 == 0 {
				if err := e.canceled(); err != nil {
					return nil, err
				}
			}
			if err := job.evalAnchor(ws, a, rowBuf); err != nil {
				return nil, err
			}
			inter.Append(rowBuf)
		}
	}
	if havingRw != nil {
		keep, err := e.filterKeep(havingRw, inter, outer, par)
		if err != nil {
			return nil, err
		}
		inter = inter.Gather(keep)
	}
	out, err := e.projectWith(rewritten, inter, outer, par)
	if err != nil {
		return nil, err
	}
	return e.finishSelect(sel, out, outer)
}

// tileAnchor is one anchor point of a structural grouping: the source
// row it came from and its anchor-variable values.
type tileAnchor struct {
	row  int
	vals []int64
}

// tileJob bundles the immutable inputs of the per-anchor evaluation so
// serial and morsel-parallel execution share one code path.
type tileJob struct {
	e          *Engine
	tiles      []ast.TileElement
	arr        *array.Array
	outer      expr.Env
	ds         *Dataset
	calls      []*ast.FuncCall
	directAttr []int
	mayPreFold []bool
	dimNames   []string
	attrNames  []string
	anchorVars []string // lowercased
}

// tileWorker is the mutable per-worker scratch state: environments,
// accumulators and the sparse-dimension value cache.
type tileWorker struct {
	anchorEnv *expr.MapEnv
	cellEnv   *expr.MapEnv
	aggs      []*bat.AggState
	counts    []int64
	preFolded []bool
	cache     *dimValuesCache
}

func (j *tileJob) newWorker() *tileWorker {
	anchorEnv := &expr.MapEnv{Vars: make(map[string]value.Value, len(j.anchorVars)), Parent: j.outer}
	cellEnv := &expr.MapEnv{Vars: make(map[string]value.Value, len(j.dimNames)+len(j.attrNames)), Parent: anchorEnv}
	ws := &tileWorker{
		anchorEnv: anchorEnv,
		cellEnv:   cellEnv,
		aggs:      make([]*bat.AggState, len(j.calls)),
		counts:    make([]int64, len(j.calls)),
		preFolded: make([]bool, len(j.calls)),
		cache:     newDimValuesCache(j.e.ctx()),
	}
	for i, c := range j.calls {
		ws.aggs[i] = bat.NewAggState(c.Name)
	}
	return ws
}

// evalAnchor expands one anchor's tile, folds the aggregates and
// writes the intermediate row (source-row prefix + aggregate results)
// into row.
func (j *tileJob) evalAnchor(ws *tileWorker, a tileAnchor, row []value.Value) error {
	for i, v := range j.anchorVars {
		ws.anchorEnv.Vars[v] = value.NewInt(a.vals[i])
	}
	for i, c := range j.calls {
		ws.aggs[i].Reset()
		ws.counts[i] = 0
		ws.preFolded[i] = false
		if !j.mayPreFold[i] {
			continue
		}
		// An argument that evaluates to an array under the anchor
		// bindings (AVG(samples[time-2:time+1].data), §7.3.4) is
		// folded once per anchor over its cells.
		if v, err := j.e.Ev.Eval(c.Args[0], ws.anchorEnv); err == nil && v.Typ == value.Array && !v.Null {
			if sub, ok := v.A.(*array.Array); ok && len(sub.Schema.Attrs) > 0 {
				//lint:allow ctxpoll bounded tile-window sub-array (a few cells per anchor), never chunk-scale
				sub.Store.Scan(func(_ []int64, vals []value.Value) bool {
					ws.aggs[i].Add(vals[0])
					return true
				})
				ws.preFolded[i] = true
			}
		}
	}
	// Expand the tile cells and feed the aggregates.
	err := j.e.forEachTileCell(j.tiles, j.arr, ws.anchorEnv, ws.cache, func(coords []int64, vals []value.Value) error {
		envReady := false
		for i, c := range j.calls {
			if c.Star {
				ws.counts[i]++
				continue
			}
			if ws.preFolded[i] {
				continue
			}
			if ai := j.directAttr[i]; ai >= 0 {
				ws.aggs[i].Add(vals[ai])
				continue
			}
			if !envReady {
				for di, nme := range j.dimNames {
					ws.cellEnv.Vars[nme] = value.Value{Typ: j.arr.Schema.Dims[di].Typ, I: coords[di]}
				}
				for vi, nme := range j.attrNames {
					ws.cellEnv.Vars[nme] = vals[vi]
				}
				envReady = true
			}
			v, err := j.e.Ev.Eval(c.Args[0], ws.cellEnv)
			if err != nil {
				return err
			}
			ws.aggs[i].Add(v)
		}
		return nil
	})
	if err != nil {
		return err
	}
	nds := len(j.ds.Cols)
	for c := range j.ds.Cols {
		row[c] = j.ds.Vecs[c].Get(a.row)
	}
	for i, c := range j.calls {
		if c.Star {
			row[nds+i] = value.NewInt(ws.counts[i])
		} else {
			row[nds+i] = ws.aggs[i].Result()
		}
	}
	return nil
}

// collectAnchorVars finds the tiled array's dimension names used free
// in tile indexer expressions, in dimension declaration order.
func (e *Engine) collectAnchorVars(tiles []ast.TileElement, arr *array.Array, outer expr.Env) []string {
	found := make(map[string]bool)
	for _, t := range tiles {
		for _, ix := range t.Ref.Indexers {
			for _, x := range []ast.Expr{ix.Point, ix.Start, ix.Stop, ix.Step} {
				ast.Walk(x, func(n ast.Expr) bool {
					if id, ok := n.(*ast.Ident); ok && id.Table == "" {
						if dimIndexFold(arr, id.Name) >= 0 {
							if _, bound := outer.Lookup("", id.Name); !bound {
								found[strings.ToLower(id.Name)] = true
							}
						}
					}
					return true
				})
			}
		}
	}
	var out []string
	for _, d := range arr.Schema.Dims {
		if found[strings.ToLower(d.Name)] {
			out = append(out, d.Name)
		}
	}
	return out
}

// tileExtent measures, per anchor variable, how many index steps the
// tile spans when anchored at a sample anchor; DISTINCT steps anchors
// by this extent so tiles are mutually exclusive. origin records the
// sample anchor's alignment base.
func (e *Engine) tileExtent(tiles []ast.TileElement, arr *array.Array, anchorVars []string, sample []int64, outer expr.Env) (extent, origin []int64, err error) {
	env := &expr.MapEnv{Vars: make(map[string]value.Value, len(anchorVars)), Parent: outer}
	for i, v := range anchorVars {
		env.Vars[strings.ToLower(v)] = value.NewInt(sample[i])
	}
	// Per anchored dimension, find min/max covered coordinate.
	mins := make(map[int]int64)
	maxs := make(map[int]int64)
	varDim := make(map[string]int)
	for i, v := range anchorVars {
		varDim[strings.ToLower(v)] = i
	}
	for _, t := range tiles {
		sels, err := e.resolveIndexers(arr, t.Ref.Indexers, env)
		if err != nil {
			return nil, nil, err
		}
		for di, s := range sels {
			name := strings.ToLower(arr.Schema.Dims[di].Name)
			ai, anchored := varDim[name]
			if !anchored {
				continue
			}
			_ = ai
			var lo, hi int64
			if s.point {
				lo, hi = s.val, s.val+1
			} else {
				lo, hi = s.lo, s.hi
			}
			if cur, ok := mins[di]; !ok || lo < cur {
				mins[di] = lo
			}
			if cur, ok := maxs[di]; !ok || hi > cur {
				maxs[di] = hi
			}
		}
	}
	extent = make([]int64, len(anchorVars))
	origin = make([]int64, len(anchorVars))
	for i, v := range anchorVars {
		di := dimIndexFold(arr, v)
		step := arr.Schema.Dims[di].Step
		if step <= 0 {
			step = 1
		}
		span := int64(1)
		if hi, ok := maxs[di]; ok {
			span = (hi - mins[di]) / step
			if span < 1 {
				span = 1
			}
		}
		extent[i] = span * step
		origin[i] = sample[i]
	}
	return extent, origin, nil
}

// forEachTileCell expands every tile element at the current anchor and
// visits each distinct cell once. Cells outside the index domain are
// skipped — their attributes are the ignored outer NULLs. Ranges over
// order-only (timestamp) dimensions expand through the cache of
// existing coordinate values.
func (e *Engine) forEachTileCell(tiles []ast.TileElement, arr *array.Array, env expr.Env, cache *dimValuesCache, visit func(coords []int64, vals []value.Value) error) error {
	nd := len(arr.Schema.Dims)
	na := len(arr.Schema.Attrs)
	// A single tile element can never denote the same cell twice; only
	// multi-element patterns (the anchor-list convolution form) need
	// cross-element deduplication.
	var seen map[string]bool
	if len(tiles) > 1 {
		seen = make(map[string]bool, 16)
	}
	keyBuf := make([]byte, 8*nd)
	coords := make([]int64, nd)
	vals := make([]value.Value, na)
	var rec func(sels []dimSel, di int) error
	rec = func(sels []dimSel, di int) error {
		if di == nd {
			if seen != nil {
				for i, c := range coords {
					binary.LittleEndian.PutUint64(keyBuf[8*i:], uint64(c))
				}
				k := string(keyBuf)
				if seen[k] {
					return nil
				}
				seen[k] = true
			}
			if !arr.ValidCoords(coords) {
				return nil
			}
			hole := true
			for ai := 0; ai < na; ai++ {
				vals[ai] = arr.Store.Get(coords, ai)
				if !vals[ai].Null {
					hole = false
				}
			}
			if hole {
				return nil
			}
			return visit(coords, vals)
		}
		// Tile-cell expansion goes through the shared [lo:hi:step]
		// expander, so tiles, expression-position slices and the scan
		// path's matcher agree on stride semantics.
		return forEachSelCoord(sels[di], arr, di, cache, func(v int64) error {
			coords[di] = v
			return rec(sels, di+1)
		})
	}
	for _, t := range tiles {
		sels, err := e.resolveIndexers(arr, t.Ref.Indexers, env)
		if err != nil {
			return err
		}
		if err := rec(sels, 0); err != nil {
			return err
		}
	}
	return nil
}
