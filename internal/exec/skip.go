package exec

import (
	"strings"

	"repro/internal/array"
	"repro/internal/sql/ast"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// This file implements zone-map chunk skipping: before a chunked scan
// walks a chunk, its per-chunk statistics (array.StatsProvider) are
// tested against the scan's dimension restrictions and the residual
// WHERE conjuncts of the form <attr> cmp <literal>. A chunk whose
// bounds provably cannot produce a surviving row is dropped from the
// chunk list without visiting a single cell. Skipping is conservative:
// the dropped conjuncts stay in the filter, so an over-wide bound can
// only cost time, never change results.

// attrZoneTest is one skippable predicate over a schema attribute.
// op is one of "<", "<=", ">", ">=", "=", "isnull", "notnull"; lit is
// the non-NULL comparison literal (unused for the null tests).
type attrZoneTest struct {
	attr int
	op   string
	lit  value.Value
}

// chunkSkipper holds the compiled skip conditions of one array scan.
type chunkSkipper struct {
	eff   []dimSel // effective per-dimension restriction (slicing ∩ pushdown)
	tests []attrZoneTest
}

// buildChunkSkipper compiles the scan's skip conditions. conjs are the
// residual WHERE conjuncts (after dimension pushdown); bare controls
// whether unqualified identifiers may bind to this array's attributes
// (true only when the statement has a single source, so the binding is
// unambiguous — in join shapes only quals like "g1.a" are trusted).
// Returns nil when skipping is disabled or no condition can prune.
func (e *Engine) buildChunkSkipper(a *array.Array, qual string, eff []dimSel, conjs []ast.Expr, bare bool) *chunkSkipper {
	if !e.chunkSkip {
		return nil
	}
	sk := &chunkSkipper{eff: eff}
	for _, c := range conjs {
		sk.addConjunct(a, qual, c, bare)
	}
	if len(sk.tests) == 0 {
		// Dimension-only skipping still pays off for slices, but only
		// when some dimension is actually restricted.
		restricted := false
		for i := range eff {
			if !eff[i].full {
				restricted = true
				break
			}
		}
		if !restricted {
			return nil
		}
	}
	return sk
}

// addConjunct extracts zero or more zone tests from one conjunct.
func (sk *chunkSkipper) addConjunct(a *array.Array, qual string, c ast.Expr, bare bool) {
	resolve := func(x ast.Expr) int {
		id, ok := x.(*ast.Ident)
		if !ok {
			return -1
		}
		if id.Table != "" && !strings.EqualFold(id.Table, qual) {
			return -1
		}
		if id.Table == "" && !bare {
			return -1
		}
		return attrIndexFold(a, id.Name)
	}
	addCmp := func(ai int, op string, lit value.Value) {
		at := a.Schema.Attrs[ai].Typ
		// Only pairs value.Compare orders the same way the evaluator
		// does: numeric vs numeric, or string vs string.
		if !(at.Numeric() && lit.Typ.Numeric()) && !(at == value.String && lit.Typ == value.String) {
			return
		}
		sk.tests = append(sk.tests, attrZoneTest{attr: ai, op: op, lit: lit})
	}
	switch t := c.(type) {
	case *ast.Binary:
		lit, ok := skipLiteral(t.R)
		if ai := resolve(t.L); ai >= 0 && ok {
			switch t.Op {
			case "=", "<", "<=", ">", ">=":
				addCmp(ai, t.Op, lit)
			}
			return
		}
		// Flipped orientation: literal cmp attr.
		lit, ok = skipLiteral(t.L)
		if ai := resolve(t.R); ai >= 0 && ok {
			switch t.Op {
			case "=":
				addCmp(ai, "=", lit)
			case "<":
				addCmp(ai, ">", lit)
			case "<=":
				addCmp(ai, ">=", lit)
			case ">":
				addCmp(ai, "<", lit)
			case ">=":
				addCmp(ai, "<=", lit)
			}
		}
	case *ast.Between:
		if t.Neg {
			return
		}
		ai := resolve(t.X)
		if ai < 0 {
			return
		}
		if lo, ok := skipLiteral(t.Lo); ok {
			addCmp(ai, ">=", lo)
		}
		if hi, ok := skipLiteral(t.Hi); ok {
			addCmp(ai, "<=", hi)
		}
	case *ast.IsNull:
		if ai := resolve(t.X); ai >= 0 {
			if t.Neg {
				sk.tests = append(sk.tests, attrZoneTest{attr: ai, op: "notnull"})
			} else {
				sk.tests = append(sk.tests, attrZoneTest{attr: ai, op: "isnull"})
			}
		}
	}
}

// skipLiteral evaluates a literal (or negated numeric literal) without
// touching the environment; ok is false for anything else or NULL.
func skipLiteral(x ast.Expr) (value.Value, bool) {
	switch t := x.(type) {
	case *ast.Literal:
		if t.Val.Null {
			return value.Value{}, false
		}
		return t.Val, true
	case *ast.Unary:
		if t.Op != "-" {
			return value.Value{}, false
		}
		lit, ok := t.X.(*ast.Literal)
		if !ok || lit.Val.Null {
			return value.Value{}, false
		}
		switch lit.Val.Typ {
		case value.Int:
			return value.NewInt(-lit.Val.I), true
		case value.Float:
			return value.NewFloat(-lit.Val.F), true
		}
	}
	return value.Value{}, false
}

// skip reports whether the chunk described by cs can be eliminated: no
// live cell in it can satisfy every compiled condition. NULL attribute
// values never satisfy a comparison (three-valued logic), so a chunk
// whose live cells are all NULL for a compared attribute skips too.
func (sk *chunkSkipper) skip(cs *array.ChunkStats) bool {
	if cs.Rows == 0 {
		return true
	}
	for i := range sk.eff {
		if i < len(cs.DimLo) && dimSelSkips(sk.eff[i], cs.DimLo[i], cs.DimHi[i]) {
			return true
		}
	}
	for _, t := range sk.tests {
		if t.attr >= len(cs.Attrs) {
			continue
		}
		as := &cs.Attrs[t.attr]
		switch t.op {
		case "isnull":
			if as.Nulls == 0 {
				return true
			}
		case "notnull":
			if as.Nulls == cs.Rows {
				return true
			}
		default:
			if as.Min.Null {
				return true // every live cell is NULL here: cmp never holds
			}
			switch t.op {
			case "=":
				if value.Compare(t.lit, as.Min) < 0 || value.Compare(t.lit, as.Max) > 0 {
					return true
				}
			case "<":
				if value.Compare(as.Min, t.lit) >= 0 {
					return true
				}
			case "<=":
				if value.Compare(as.Min, t.lit) > 0 {
					return true
				}
			case ">":
				if value.Compare(as.Max, t.lit) <= 0 {
					return true
				}
			case ">=":
				if value.Compare(as.Max, t.lit) < 0 {
					return true
				}
			}
		}
	}
	return false
}

// dimSelSkips reports whether no coordinate in the inclusive chunk
// bound [lo, hi] satisfies the dimension selection.
func dimSelSkips(s dimSel, lo, hi int64) bool {
	if s.point {
		return s.val < lo || s.val > hi
	}
	if s.full {
		return false
	}
	if hi < s.lo || lo >= s.hi {
		return true
	}
	if s.step > 1 && !s.sparse {
		// First on-grid coordinate at or above the chunk's low bound.
		x := s.lo
		if lo > x {
			x = s.lo + (lo-s.lo+s.step-1)/s.step*s.step
		}
		return x > hi || x >= s.hi
	}
	return false
}

// chunkZoneStats fetches zone maps index-aligned with a ScanChunks
// call that used the same target; nil when the store keeps no stats or
// the partitions disagree (a concurrent shape change — never expected,
// but skipping nothing is always safe).
func chunkZoneStats(st array.Store, target, nchunks int) []array.ChunkStats {
	sp, ok := st.(array.StatsProvider)
	if !ok {
		return nil
	}
	stats := sp.ChunkStats(target)
	if len(stats) != nchunks {
		return nil
	}
	return stats
}

// skipChunks filters a chunk list through the skipper, publishing the
// skipped count to the engine counters and the armed profile. The
// relative order of surviving chunks is preserved, so ordered merges
// downstream stay byte-identical to a serial scan of the survivors.
func (e *Engine) skipChunks(sk *chunkSkipper, st array.Store, chunks []array.ChunkScan, target int, prof *telemetry.Profile) []array.ChunkScan {
	if sk == nil || len(chunks) == 0 {
		return chunks
	}
	stats := chunkZoneStats(st, target, len(chunks))
	if stats == nil {
		return chunks
	}
	kept := make([]array.ChunkScan, 0, len(chunks))
	skipped := 0
	for i := range chunks {
		if sk.skip(&stats[i]) {
			skipped++
			continue
		}
		kept = append(kept, chunks[i])
	}
	if skipped > 0 {
		e.metrics().scanChunksSkipped.Add(int64(skipped))
		if prof != nil {
			prof.Scan.Skipped.Add(int64(skipped))
		}
	}
	return kept
}

// serialSkipChunks is the chunking target of a serial scan that has a
// skipper: fine enough that selective predicates drop most of the
// store, coarse enough that per-chunk overhead stays negligible.
const serialSkipChunks = 32

// skippedScan returns a serial scan driver over st: the plain pruned
// store walk, or — when a skipper compiled and the store keeps zone
// maps — a chunked walk that drops skippable chunks first. Chunk
// concatenation order equals serial scan order, so both drivers visit
// surviving cells identically.
func (e *Engine) skippedScan(st array.Store, attrs []int, sk *chunkSkipper, prof *telemetry.Profile) func(visit func(coords []int64, vals []value.Value) bool) {
	if sk != nil && st.Len() >= minParallelScanCells {
		if cs, ok := st.(array.ChunkedScanner); ok {
			if chunks := cs.ScanChunks(serialSkipChunks, attrs); len(chunks) >= 2 {
				chunks = e.skipChunks(sk, st, chunks, serialSkipChunks, prof)
				return func(visit func(coords []int64, vals []value.Value) bool) {
					stopped := false
					for _, chunk := range chunks {
						if stopped {
							return
						}
						chunk(func(coords []int64, vals []value.Value) bool {
							if !visit(coords, vals) {
								stopped = true
								return false
							}
							return true
						})
					}
				}
			}
		}
	}
	return func(visit func(coords []int64, vals []value.Value) bool) {
		storeScanPruned(st, attrs, visit)
	}
}

// streamScan is skippedScan bound to a compiled stream plan.
func (e *Engine) streamScan(sp *streamPlan) func(visit func(coords []int64, vals []value.Value) bool) {
	return e.skippedScan(sp.arr.Store, sp.attrs, sp.skip, sp.prof)
}
