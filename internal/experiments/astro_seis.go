package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/udf"
	"repro/internal/value"
	"repro/internal/vault/fits"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// B1 / B2 / X2 — astronomy (§7.2)

// Astro bundles the X-ray session state.
type Astro struct {
	S      *core.Session
	Events int
	Size   int
}

// NewAstro loads a photon event table of n events on a size×size
// detector.
func NewAstro(events, size int) (*Astro, error) {
	s := core.NewSession()
	ev := workload.NewXRayEvents(events, size, 5, 7)
	if err := s.LoadEvents("events", ev); err != nil {
		return nil, err
	}
	return &Astro{S: s, Events: events, Size: size}, nil
}

// Binning runs B1: bin the event table into a fresh 2-D histogram
// array, returning the total count (must equal the event count).
func (a *Astro) Binning(tag int) (int64, error) {
	name := fmt.Sprintf("ximage%d", tag)
	_, err := a.S.Run(fmt.Sprintf(`
		CREATE ARRAY %s (x INTEGER DIMENSION, y INTEGER DIMENSION, v INTEGER DEFAULT 0);
		INSERT INTO %s SELECT [x], [y], count(*) FROM events GROUP BY x, y;`, name, name), nil)
	if err != nil {
		return 0, err
	}
	ds, err := a.S.Run(`SELECT SUM(v) FROM `+name, nil)
	if err != nil {
		return 0, err
	}
	total := ds.Get(0, 0).AsInt()
	_, err = a.S.Run(`DROP ARRAY `+name, nil)
	return total, err
}

// PrepareImage bins once into a persistent 'ximage' for Rebin/WCS.
func (a *Astro) PrepareImage() error {
	_, err := a.S.Run(`
		CREATE ARRAY ximage (x INTEGER DIMENSION, y INTEGER DIMENSION, v INTEGER DEFAULT 0);
		INSERT INTO ximage SELECT [x], [y], count(*) FROM events GROUP BY x, y;`, nil)
	return err
}

// Rebin runs the 16× re-binning of B1 via DISTINCT tiling.
func (a *Astro) Rebin() (int, error) {
	ds, err := a.S.Run(`
		SELECT [x/16], [y/16], SUM(v) FROM ximage
		GROUP BY DISTINCT ximage[x:x+16][y:y+16]`, nil)
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// NewWCSSession builds an n×n image array plus the transform matrix,
// reference point and scale vectors of §7.2.1.
func NewWCSSession(n int64) (*core.Session, error) {
	s := core.NewSession()
	_, err := s.Run(fmt.Sprintf(`
		CREATE ARRAY img (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 1.0, wcs_x FLOAT, wcs_y FLOAT);
		CREATE ARRAY m (i INTEGER DIMENSION[2], j INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0);
		SET m[0][0].v = (0.99); SET m[1][1].v = (0.99);
		SET m[0][1].v = (0.01); SET m[1][0].v = (-0.01);
		CREATE ARRAY ref (i INTEGER DIMENSION[2], v FLOAT DEFAULT %d.0);
		CREATE ARRAY sc (i INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0025);
	`, n, n, n/2), nil)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// WCS runs B2: the linear pixel→world transform over every cell.
func WCS(s *core.Session) error {
	_, err := s.Run(`
		UPDATE img SET
			wcs_x = (SELECT sc[0].v * (m[0][0].v * (img.x - ref[0].v) + m[0][1].v * (img.y - ref[1].v)) FROM m, ref, sc),
			wcs_y = (SELECT sc[1].v * (m[1][0].v * (img.x - ref[0].v) + m[1][1].v * (img.y - ref[1].v)) FROM m, ref, sc);`, nil)
	return err
}

// VaultFixture writes a FITS-lite file for the X2 lazy-access
// experiment and registers it in a fresh session.
type VaultFixture struct {
	S    *core.Session
	Path string
	dir  string
}

// NewVaultFixture creates the file (n×n image + event table).
func NewVaultFixture(n, events int) (*VaultFixture, error) {
	dir, err := os.MkdirTemp("", "sciql-bench")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "obs.fits")
	ls := workload.NewLandsat(1, n, 7)
	ev := workload.NewXRayEvents(events, n, 5, 8)
	f := &fits.File{Primary: ls.ToFITS(0), Tables: []*fits.BinTable{ev.ToFITSTable()}}
	if err := fits.WriteFile(path, f); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	s := core.NewSession()
	if _, err := s.Vault.Register(path, "", "obs"); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return &VaultFixture{S: s, Path: path, dir: dir}, nil
}

// Close removes the fixture's temp directory.
func (v *VaultFixture) Close() { os.RemoveAll(v.dir) }

// LazyCount answers COUNT from the FITS header alone (X2's cheap arm).
func (v *VaultFixture) LazyCount() (int64, error) { return v.S.Vault.Count(v.Path) }

// FullCount attaches the payload into a fresh session and counts by
// scanning (X2's expensive arm).
func (v *VaultFixture) FullCount() (int64, error) {
	s := core.NewSession()
	vv := s.Vault
	if _, err := vv.Register(v.Path, "", "obs"); err != nil {
		return 0, err
	}
	if err := vv.AttachFITS(v.Path, s.Engine.Cat); err != nil {
		return 0, err
	}
	ds, err := s.Run(`SELECT count(*) FROM obs`, nil)
	if err != nil {
		return 0, err
	}
	return ds.Get(0, 0).I, nil
}

// ---------------------------------------------------------------------------
// C1–C4 — seismology (§7.3)

// Seis bundles the time-series session state.
type Seis struct {
	S *core.Session
	W *workload.Waveform
	// Interval is the nominal sample spacing in micros.
	Interval int64
}

// NewSeis loads a waveform of n samples with the given gaps/spikes
// into a 'samples' array.
func NewSeis(n, gaps, spikes int) (*Seis, error) {
	s := core.NewSession()
	const interval = 1_000_000
	w := workload.NewWaveform("AASN", n, 0, interval, gaps, spikes, 11)
	if _, err := s.LoadWaveform("samples", w); err != nil {
		return nil, err
	}
	return &Seis{S: s, W: w, Interval: interval}, nil
}

// Retrieve runs C1: a time-window slice count.
func (se *Seis) Retrieve() (int64, error) {
	n := len(se.W.Times)
	t0 := se.W.Times[n/4]
	t1 := se.W.Times[3*n/4]
	ds, err := se.S.Run(fmt.Sprintf(`SELECT count(*) FROM samples[%d:%d]`, t0, t1), nil)
	if err != nil {
		return 0, err
	}
	return ds.Get(0, 0).I, nil
}

// Gaps runs C2: next()-based gap detection; returns the gap count.
func (se *Seis) Gaps() (int, error) {
	ds, err := se.S.Run(`
		SELECT [time] FROM samples
		WHERE next(time) - time BETWEEN ?gmin AND ?gmax`,
		map[string]value.Value{
			"gmin": value.NewInt(2 * se.Interval),
			"gmax": value.NewInt(1000 * se.Interval),
		})
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// Spikes runs C3: threshold detection on the jump to the next sample.
func (se *Seis) Spikes() (int, error) {
	ds, err := se.S.Run(`
		SELECT [time], data FROM samples
		WHERE ABS(data - next(data)) > ?T`,
		map[string]value.Value{"T": value.NewFloat(4)})
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// MovAvg runs C4: the 3-sample trailing moving average via tiling.
func (se *Seis) MovAvg() (int, error) {
	w := 2 * se.Interval
	ds, err := se.S.Run(fmt.Sprintf(`
		SELECT [time], AVG(samples[time-%d:time+1].data)
		FROM samples GROUP BY samples[time-%d:time+1]`, w, w), nil)
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// ---------------------------------------------------------------------------
// X3 — black-box marshaling cost

// MarshalFixture holds aligned and misaligned source arrays for the
// §6.2 recast measurement.
type MarshalFixture struct {
	Aligned    *array.Array // virtual (row-major) store
	Misaligned *array.Array // dorder (column-major) store
}

// NewMarshalFixture builds n×n dense arrays under both layouts.
func NewMarshalFixture(n int64) (*MarshalFixture, error) {
	al, err := MakeGrid(storage.SchemeVirtual, n, 1.0, 3)
	if err != nil {
		return nil, err
	}
	mis, err := MakeGrid(storage.SchemeDOrder, n, 1.0, 3)
	if err != nil {
		return nil, err
	}
	return &MarshalFixture{Aligned: al, Misaligned: mis}, nil
}

// MarshalAligned marshals the row-major store to a row-major buffer
// (the memcpy path).
func (m *MarshalFixture) MarshalAligned() (float64, error) {
	d, err := udf.Marshal2D(m.Aligned, 0, udf.RowMajor)
	if err != nil {
		return 0, err
	}
	return d.Data[0], nil
}

// MarshalRecast marshals the column-major store to a row-major buffer
// (the per-element recast path the paper flags as expensive).
func (m *MarshalFixture) MarshalRecast() (float64, error) {
	d, err := udf.Marshal2D(m.Misaligned, 0, udf.RowMajor)
	if err != nil {
		return 0, err
	}
	return d.Data[0], nil
}
