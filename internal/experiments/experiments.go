// Package experiments implements every figure and functional
// experiment of the paper's evaluation as reusable setup + operation
// pairs. The root bench_test.go wraps them in testing.B benchmarks;
// cmd/sciqlbench runs them once with wall-clock timing and prints the
// paper-style tables (see DESIGN.md's experiment index F1–F3, A1–A6,
// B1–B2, C1–C4, X1–X3).
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// F1 / F2 — storage schemes and array forms

// MakeGrid builds an n×n float array under the given scheme, filling
// approximately density·n² cells with a deterministic pattern.
func MakeGrid(scheme string, n int64, density float64, seed int64) (*array.Array, error) {
	sch := array.Schema{
		Dims: []array.Dimension{
			{Name: "x", Typ: value.Int, Start: 0, End: n, Step: 1},
			{Name: "y", Typ: value.Int, Start: 0, End: n, Step: 1},
		},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	st, err := storage.NewScheme(scheme, sch, storage.Hints{})
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: "grid_" + scheme, Schema: sch, Store: st}
	rng := rand.New(rand.NewSource(seed))
	coords := make([]int64, 2)
	for x := int64(0); x < n; x++ {
		coords[0] = x
		for y := int64(0); y < n; y++ {
			if rng.Float64() >= density {
				continue
			}
			coords[1] = y
			if err := st.Set(coords, 0, value.NewFloat(float64(x*n+y))); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// MakeGridSlab builds a dense n×n float array under the slab scheme
// with a custom slab edge length (the slab-size ablation).
func MakeGridSlab(n, slabSize, seed int64) (*array.Array, error) {
	sch := array.Schema{
		Dims: []array.Dimension{
			{Name: "x", Typ: value.Int, Start: 0, End: n, Step: 1},
			{Name: "y", Typ: value.Int, Start: 0, End: n, Step: 1},
		},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	st, err := storage.NewSlabSized(sch, slabSize)
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: "grid_slab", Schema: sch, Store: st}
	coords := make([]int64, 2)
	for x := int64(0); x < n; x++ {
		coords[0] = x
		for y := int64(0); y < n; y++ {
			coords[1] = y
			if err := st.Set(coords, 0, value.NewFloat(float64(x*n+y))); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// ScanSum is the sequential-scan workload of F1: fold every live cell.
func ScanSum(a *array.Array) float64 {
	sum := 0.0
	a.Store.Scan(func(_ []int64, vals []value.Value) bool {
		if !vals[0].Null {
			sum += vals[0].F
		}
		return true
	})
	return sum
}

// PointProbes is the random-access workload of F1: k pseudo-random
// cell reads.
func PointProbes(a *array.Array, k int, seed int64) float64 {
	lo, hi, err := a.BoundingBox()
	if err != nil {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	coords := make([]int64, len(lo))
	for i := 0; i < k; i++ {
		for d := range coords {
			coords[d] = lo[d] + rng.Int63n(hi[d]-lo[d]+1)
		}
		v := a.Store.Get(coords, 0)
		if !v.Null {
			sum += v.F
		}
	}
	return sum
}

// SliceSum is the slab-access workload of F1: fold a centered
// quarter-size window through coordinate reads.
func SliceSum(a *array.Array) float64 {
	lo, hi, err := a.BoundingBox()
	if err != nil {
		return 0
	}
	sum := 0.0
	coords := make([]int64, 2)
	x0, x1 := lo[0]+(hi[0]-lo[0])/4, lo[0]+3*(hi[0]-lo[0])/4
	y0, y1 := lo[1]+(hi[1]-lo[1])/4, lo[1]+3*(hi[1]-lo[1])/4
	for x := x0; x <= x1; x++ {
		coords[0] = x
		for y := y0; y <= y1; y++ {
			coords[1] = y
			v := a.Store.Get(coords, 0)
			if !v.Null {
				sum += v.F
			}
		}
	}
	return sum
}

// MakeForm builds the Fig. 2 array forms (matrix, stripes, diagonal,
// sparse) at edge n under the adaptive policy.
func MakeForm(form string, n int64) (*core.Session, error) {
	s := core.NewSession()
	var ddl string
	switch form {
	case "matrix":
		ddl = fmt.Sprintf(`CREATE ARRAY f (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n)
	case "stripes":
		ddl = fmt.Sprintf(`CREATE ARRAY f (x INTEGER DIMENSION[%d] CHECK(MOD(x,2) = 1), y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n)
	case "diagonal":
		ddl = fmt.Sprintf(`CREATE ARRAY f (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d] CHECK(x = y), v FLOAT DEFAULT 0.0)`, n, n)
	case "sparse":
		ddl = fmt.Sprintf(`CREATE ARRAY f (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0 CHECK(v>0))`, n, n)
	default:
		return nil, fmt.Errorf("unknown form %s", form)
	}
	if _, err := s.Run(ddl+`; UPDATE f SET v = MOD(x + y, 7)`, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// FormAggregate runs the F2 workload: a full-scan aggregate.
func FormAggregate(s *core.Session) (float64, error) {
	ds, err := s.Run(`SELECT SUM(v), COUNT(v) FROM f`, nil)
	if err != nil {
		return 0, err
	}
	return ds.Get(0, 0).AsFloat(), nil
}

// ---------------------------------------------------------------------------
// F3 — tiling

// NewMatrixSession creates an n×n matrix with v = x*n + y for tiling
// experiments.
func NewMatrixSession(n int64) (*core.Session, error) {
	s := core.NewSession()
	_, err := s.Run(fmt.Sprintf(`
		CREATE ARRAY matrix (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0);
		UPDATE matrix SET v = x * %d + y;`, n, n, n), nil)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Tiling runs the F3 workload: t×t tile averages, overlapping or
// DISTINCT, returning the group count.
func Tiling(s *core.Session, t int64, distinct bool) (int, error) {
	kw := ""
	if distinct {
		kw = "DISTINCT "
	}
	ds, err := s.Run(fmt.Sprintf(
		`SELECT [x], [y], AVG(v) FROM matrix GROUP BY %smatrix[x:x+%d][y:y+%d]`, kw, t, t), nil)
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// ---------------------------------------------------------------------------
// A1–A6 — the AML image-analysis suite (§7.1)

// AML bundles the Landsat session state for the §7.1 experiments.
type AML struct {
	S  *core.Session
	N  int
	Ls *workload.Landsat
}

// NewAML loads a synthetic 7-channel n×n scene plus per-band working
// arrays b3/b4 and declares the §7.1 functions.
func NewAML(n int) (*AML, error) {
	s := core.NewSession()
	if err := s.DeclareStdFunctions(); err != nil {
		return nil, err
	}
	ls := workload.NewLandsat(7, n, 42)
	if _, err := s.LoadLandsat("landsat", ls); err != nil {
		return nil, err
	}
	if _, err := s.LoadChannel("b3", ls, 3); err != nil {
		return nil, err
	}
	if _, err := s.LoadChannel("b4", ls, 4); err != nil {
		return nil, err
	}
	_, err := s.Run(`
		CREATE FUNCTION tvi (b3v REAL, b4v REAL) RETURNS REAL
		RETURN POWER(((b4v - b3v) / (b4v + b3v) + 0.5), 0.5);
		CREATE FUNCTION intens2radiance (b INT, lmin REAL, lmax REAL) RETURNS REAL
		RETURN (lmax-lmin) * b / 255.0 + lmin;
		CREATE FUNCTION conv (a ARRAY(i INTEGER DIMENSION[3], j INTEGER DIMENSION[3], v FLOAT))
		RETURNS FLOAT
		BEGIN
			DECLARE s1 FLOAT, s2 FLOAT, z FLOAT;
			SET s1 = (a[0][0].v + a[0][2].v + a[2][0].v + a[2][2].v)/4.0;
			SET s2 = (a[0][1].v + a[1][0].v + a[1][2].v + a[2][1].v)/4.0;
			SET z = 2 * ABS(s1 - s2);
			IF ((ABS(a[1][1].v - s1) > z) OR (ABS(a[1][1].v - s2) > z))
			THEN RETURN s2;
			ELSE RETURN a[1][1].v;
			END IF;
		END;
	`, nil)
	if err != nil {
		return nil, err
	}
	return &AML{S: s, N: n, Ls: ls}, nil
}

// Destripe runs A1: the every-sixth-line channel-6 correction.
func (a *AML) Destripe() error {
	_, err := a.S.Run(`UPDATE landsat SET v = noise(v, ?delta) WHERE channel = 6 AND MOD(x,6) = 1`,
		map[string]value.Value{"delta": value.NewFloat(float64(a.Ls.Delta))})
	return err
}

// StripedLineMeans reports (striped-line mean, clean-line mean) of
// channel 6 for validating A1.
func (a *AML) StripedLineMeans() (striped, clean float64, err error) {
	ds, err := a.S.Run(`SELECT AVG(v) FROM landsat WHERE channel = 6 AND MOD(x,6) = 1`, nil)
	if err != nil {
		return 0, 0, err
	}
	striped = ds.Get(0, 0).AsFloat()
	ds, err = a.S.Run(`SELECT AVG(v) FROM landsat WHERE channel = 6 AND MOD(x,6) = 0`, nil)
	if err != nil {
		return 0, 0, err
	}
	return striped, ds.Get(0, 0).AsFloat(), nil
}

// TVI runs A2 on an inner window of w×w pixels: the 3×3 conv filter on
// bands 3 and 4 composed through the tvi white-box function.
func (a *AML) TVI(w int) (int, error) {
	if w > a.N-2 {
		w = a.N - 2
	}
	ds, err := a.S.Run(fmt.Sprintf(`
		SELECT [x], [y], tvi(conv(b3[x-1:x+2][y-1:y+2]), conv(b4[x-1:x+2][y-1:y+2]))
		FROM b3[1:%d][1:%d]`, 1+w, 1+w), nil)
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// NDVI runs A3: radiance conversion and the normalized difference
// vegetation index, materialized into a fresh ndvi array.
func (a *AML) NDVI(tag int) (float64, error) {
	name := fmt.Sprintf("ndvi%d", tag)
	_, err := a.S.Run(fmt.Sprintf(`
		CREATE ARRAY %s (x INT DIMENSION[%d], y INT DIMENSION[%d], b1 REAL, b2 REAL, v REAL);
		UPDATE %s SET
			b1 = (SELECT intens2radiance(landsat[3][x][y].v, ?lmin, ?lmax) FROM landsat),
			b2 = (SELECT intens2radiance(landsat[4][x][y].v, ?lmin, ?lmax) FROM landsat),
			v  = (b2 - b1) / (b2 + b1);
	`, name, a.N, a.N, name),
		map[string]value.Value{"lmin": value.NewFloat(0.5), "lmax": value.NewFloat(1.5)})
	if err != nil {
		return 0, err
	}
	ds, err := a.S.Run(`SELECT AVG(v) FROM `+name, nil)
	if err != nil {
		return 0, err
	}
	avg := ds.Get(0, 0).AsFloat()
	_, err = a.S.Run(`DROP ARRAY `+name, nil)
	return avg, err
}

// Mask runs A4: 3×3 tile averages filtered to [10, 100].
func (a *AML) Mask() (int, error) {
	ds, err := a.S.Run(`
		SELECT [x], [y], AVG(v) FROM b3
		GROUP BY b3[x-1:x+2][y-1:y+2]
		HAVING AVG(v) BETWEEN 10 AND 100`, nil)
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// Wavelet runs A5: reconstruct an n×n/2 image from two n/2×n/2
// component arrays using the array-slicing formulation.
func (a *AML) Wavelet(tag int) error {
	h := a.N / 2
	_, err := a.S.Run(fmt.Sprintf(`
		CREATE ARRAY wd%[1]d (x INTEGER DIMENSION[%[2]d], y INTEGER DIMENSION[%[2]d], v FLOAT DEFAULT 1.0);
		CREATE ARRAY we%[1]d (x INTEGER DIMENSION[%[2]d], y INTEGER DIMENSION[%[2]d], v FLOAT DEFAULT 0.25);
		CREATE ARRAY wimg%[1]d (x INTEGER DIMENSION[%[3]d], y INTEGER DIMENSION[%[2]d], v FLOAT DEFAULT 0.0);
		UPDATE wimg%[1]d SET wimg%[1]d[x][y].v =
			(SELECT wd%[1]d[x/2][y].v + we%[1]d[x/2][y].v * POWER(-1,x) FROM wd%[1]d, we%[1]d);
		DROP ARRAY wd%[1]d; DROP ARRAY we%[1]d; DROP ARRAY wimg%[1]d;
	`, tag, h, a.N), nil)
	return err
}

// MatVec runs A6: matrix–vector multiplication via row tiling at the
// given edge length.
func MatVec(n int64) (float64, error) {
	s := core.NewSession()
	_, err := s.Run(fmt.Sprintf(`
		CREATE ARRAY a (x INT DIMENSION[%d], y INT DIMENSION[%d], v FLOAT DEFAULT 0.0);
		CREATE ARRAY b (k INT DIMENSION[%d], v FLOAT DEFAULT 0.0);
		CREATE ARRAY m (x INT DIMENSION[%d], v FLOAT DEFAULT 0.0);
		UPDATE a SET v = MOD(x + y, 5);
		UPDATE b SET v = MOD(k, 3);
	`, n, n, n, n), nil)
	if err != nil {
		return 0, err
	}
	_, err = s.Run(`UPDATE m SET m[x].v = (SELECT SUM(a[x][y].v * b[y].v) FROM a GROUP BY a[x][*])`, nil)
	if err != nil {
		return 0, err
	}
	ds, err := s.Run(`SELECT SUM(v) FROM m`, nil)
	if err != nil {
		return 0, err
	}
	return ds.Get(0, 0).AsFloat(), nil
}

// ---------------------------------------------------------------------------
// X1 — structural grouping vs the relational self-join baseline

// ConvTiling computes a 4-neighbor average with SciQL structural
// grouping (the paper's claim: windows express naturally and evaluate
// with positional access).
func ConvTiling(s *core.Session) (int, error) {
	ds, err := s.Run(`
		SELECT [x], [y], AVG(v) FROM matrix
		GROUP BY matrix[x][y], matrix[x-1][y], matrix[x+1][y], matrix[x][y-1], matrix[x][y+1]`, nil)
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// ConvRelationalSetup materializes the same array as a relational
// table for the baseline.
func ConvRelationalSetup(s *core.Session) error {
	_, err := s.Run(`
		CREATE TABLE imgt (x INTEGER, y INTEGER, v FLOAT);
		INSERT INTO imgt SELECT x, y, v FROM matrix;`, nil)
	return err
}

// ConvRelational computes the identical 4-neighbor average in pure
// relational SQL: four shifted self-joins — the verbose, join-heavy
// formulation the paper's introduction calls out.
func ConvRelational(s *core.Session) (int, error) {
	ds, err := s.Run(`
		SELECT a.x, a.y, (a.v + n1.v + n2.v + n3.v + n4.v) / 5
		FROM imgt a
		JOIN (SELECT x + 1 AS xr, y AS yr, v FROM imgt) n1 ON a.x = n1.xr AND a.y = n1.yr
		JOIN (SELECT x - 1 AS xl, y AS yl, v FROM imgt) n2 ON a.x = n2.xl AND a.y = n2.yl
		JOIN (SELECT x AS xu, y + 1 AS yu, v FROM imgt) n3 ON a.x = n3.xu AND a.y = n3.yu
		JOIN (SELECT x AS xd, y - 1 AS yd, v FROM imgt) n4 ON a.x = n4.xd AND a.y = n4.yd`, nil)
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}
