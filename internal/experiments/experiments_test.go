package experiments

import (
	"testing"

	"repro/internal/storage"
)

func TestMakeGridDensity(t *testing.T) {
	a, err := MakeGrid(storage.SchemeVirtual, 64, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Store.Len()
	// ~10% of 4096 cells, generous tolerance.
	if n < 250 || n > 600 {
		t.Fatalf("density fill = %d cells, expected ~410", n)
	}
	// Full density fills everything.
	a, _ = MakeGrid(storage.SchemeTabular, 32, 1.0, 1)
	if a.Store.Len() != 1024 {
		t.Fatalf("full density = %d", a.Store.Len())
	}
}

func TestWorkloadsAgreeAcrossSchemes(t *testing.T) {
	var ref float64
	for i, scheme := range []string{storage.SchemeVirtual, storage.SchemeTabular, storage.SchemeDOrder, storage.SchemeSlab} {
		a, err := MakeGrid(scheme, 32, 0.5, 9)
		if err != nil {
			t.Fatal(err)
		}
		s := ScanSum(a)
		p := PointProbes(a, 512, 3)
		sl := SliceSum(a)
		sum := s + p + sl
		if i == 0 {
			ref = sum
			continue
		}
		if sum != ref {
			t.Errorf("%s workload checksum %v != virtual %v", scheme, sum, ref)
		}
	}
}

func TestMakeGridSlabMatchesVirtual(t *testing.T) {
	v, _ := MakeGrid(storage.SchemeVirtual, 32, 1.0, 1)
	s, err := MakeGridSlab(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ScanSum(v) != ScanSum(s) {
		t.Fatal("slab grid differs from virtual grid")
	}
}

func TestFormsAggregate(t *testing.T) {
	for _, form := range []string{"matrix", "stripes", "diagonal", "sparse"} {
		s, err := MakeForm(form, 16)
		if err != nil {
			t.Fatalf("%s: %v", form, err)
		}
		if _, err := FormAggregate(s); err != nil {
			t.Fatalf("%s aggregate: %v", form, err)
		}
	}
	if _, err := MakeForm("bogus", 8); err == nil {
		t.Fatal("unknown form should error")
	}
}

func TestTilingCounts(t *testing.T) {
	s, err := NewMatrixSession(8)
	if err != nil {
		t.Fatal(err)
	}
	over, err := Tiling(s, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if over != 64 {
		t.Fatalf("overlapping groups = %d, want 64", over)
	}
	dist, err := Tiling(s, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if dist != 16 {
		t.Fatalf("distinct groups = %d, want 16", dist)
	}
}

func TestAMLPipelineSmall(t *testing.T) {
	a, err := NewAML(24)
	if err != nil {
		t.Fatal(err)
	}
	before, clean, err := a.StripedLineMeans()
	if err != nil {
		t.Fatal(err)
	}
	if before <= clean {
		t.Fatalf("striping not present: striped %v vs clean %v", before, clean)
	}
	if err := a.Destripe(); err != nil {
		t.Fatal(err)
	}
	after, clean2, _ := a.StripedLineMeans()
	if diff := after - clean2; diff > 3 || diff < -3 {
		t.Errorf("destripe did not converge: %v vs %v", after, clean2)
	}
	if n, err := a.TVI(8); err != nil || n != 64 {
		t.Fatalf("TVI: %d %v", n, err)
	}
	avg, err := a.NDVI(0)
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Errorf("NDVI mean %v should be positive (vegetation)", avg)
	}
	if _, err := a.Mask(); err != nil {
		t.Fatal(err)
	}
	if err := a.Wavelet(0); err != nil {
		t.Fatal(err)
	}
}

func TestMatVecChecksum(t *testing.T) {
	// With a[x][y] = MOD(x+y,5), b[k] = MOD(k,3), the checksum is
	// deterministic; recompute in Go.
	n := int64(8)
	want := 0.0
	for x := int64(0); x < n; x++ {
		for y := int64(0); y < n; y++ {
			want += float64((x+y)%5) * float64(y%3)
		}
	}
	got, err := MatVec(n)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("matvec checksum = %v, want %v", got, want)
	}
}

func TestConvBaselineAgreement(t *testing.T) {
	s, err := NewMatrixSession(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ConvRelationalSetup(s); err != nil {
		t.Fatal(err)
	}
	nt, err := ConvTiling(s)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := ConvRelational(s)
	if err != nil {
		t.Fatal(err)
	}
	if nt != 64 {
		t.Fatalf("tiling anchors = %d, want 64", nt)
	}
	// The relational form drops border cells (no neighbor rows): 6x6.
	if nr != 36 {
		t.Fatalf("relational rows = %d, want 36", nr)
	}
}

func TestAstroBinningConservesEvents(t *testing.T) {
	a, err := NewAstro(5000, 64)
	if err != nil {
		t.Fatal(err)
	}
	total, err := a.Binning(0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5000 {
		t.Fatalf("binned %d, want 5000", total)
	}
	if err := a.PrepareImage(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rebin(); err != nil {
		t.Fatal(err)
	}
}

func TestWCSReferencePixel(t *testing.T) {
	s, err := NewWCSSession(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := WCS(s); err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(`SELECT wcs_x, wcs_y FROM img WHERE x = 8 AND y = 8`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Get(0, 0).AsFloat() != 0 || ds.Get(0, 1).AsFloat() != 0 {
		t.Fatalf("reference pixel should map to origin: %v %v", ds.Get(0, 0), ds.Get(0, 1))
	}
}

func TestSeisDetectors(t *testing.T) {
	se, err := NewSeis(2000, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	gaps, err := se.Gaps()
	if err != nil {
		t.Fatal(err)
	}
	if gaps != len(se.W.GapStarts) {
		t.Fatalf("gaps found %d, injected %d", gaps, len(se.W.GapStarts))
	}
	spikes, err := se.Spikes()
	if err != nil {
		t.Fatal(err)
	}
	if spikes < len(se.W.SpikeTimes) {
		t.Fatalf("spike jumps %d < injected %d", spikes, len(se.W.SpikeTimes))
	}
	if _, err := se.Retrieve(); err != nil {
		t.Fatal(err)
	}
	rows, err := se.MovAvg()
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2000 {
		t.Fatalf("moving-average rows = %d, want 2000", rows)
	}
}

func TestVaultFixtureCounts(t *testing.T) {
	v, err := NewVaultFixture(32, 500)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	lazy, err := v.LazyCount()
	if err != nil {
		t.Fatal(err)
	}
	full, err := v.FullCount()
	if err != nil {
		t.Fatal(err)
	}
	if lazy != 32*32 || full != lazy {
		t.Fatalf("counts: lazy=%d full=%d", lazy, full)
	}
}

func TestMarshalFixtureAgreement(t *testing.T) {
	m, err := NewMarshalFixture(16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.MarshalAligned()
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.MarshalRecast()
	if err != nil {
		t.Fatal(err)
	}
	if a != r {
		t.Fatalf("aligned and recast marshals disagree: %v vs %v", a, r)
	}
}
