// Package bat implements the column-store substrate the SciQL paper
// builds on: MonetDB-style Binary Association Tables. A BAT is a pair
// of dense one-dimensional arrays — a (usually virtual) OID head and a
// typed tail — optimized for bulk, column-at-a-time processing. SciQL
// maps array cells onto BAT tails with virtual OID heads, so array
// operations "run at top speed" with no impedance mismatch (paper §2.2).
package bat

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/value"
)

// Vector is a typed column with per-element NULL tracking. It is the
// tail side of a BAT. Implementations store data densely in a single
// Go slice (the C-array of the paper) plus a validity bitmap.
type Vector interface {
	// Type returns the element type.
	Type() value.Type
	// Len returns the number of elements.
	Len() int
	// Get returns element i as a dynamic value.
	Get(i int) value.Value
	// Set overwrites element i.
	Set(i int, v value.Value)
	// Append adds an element.
	Append(v value.Value)
	// IsNull reports whether element i is NULL.
	IsNull(i int) bool
	// Slice returns a new vector holding elements [lo, hi).
	Slice(lo, hi int) Vector
	// Gather returns a new vector with the elements at idx, in order.
	Gather(idx []int) Vector
	// Clone deep-copies the vector.
	Clone() Vector
}

// New returns an empty vector of the given type with capacity hint n.
func New(t value.Type, n int) Vector {
	switch t {
	case value.Int, value.Timestamp:
		return &IntVector{typ: t, data: make([]int64, 0, n)}
	case value.Float:
		return &FloatVector{data: make([]float64, 0, n)}
	case value.Bool:
		return &BoolVector{data: make([]bool, 0, n)}
	case value.String:
		return &StringVector{data: make([]string, 0, n)}
	case value.Array:
		return &AnyVector{typ: value.Array, data: make([]value.Value, 0, n)}
	default:
		return &AnyVector{typ: t, data: make([]value.Value, 0, n)}
	}
}

// nullset is a growable bitmap marking NULL positions. A nil nullset
// means "no NULLs", the common case, and costs nothing.
type nullset struct{ bits []uint64 }

func (n *nullset) set(i int) {
	w := i >> 6
	for len(n.bits) <= w {
		n.bits = append(n.bits, 0)
	}
	n.bits[w] |= 1 << (uint(i) & 63)
}

func (n *nullset) clear(i int) {
	w := i >> 6
	if w < len(n.bits) {
		n.bits[w] &^= 1 << (uint(i) & 63)
	}
}

func (n *nullset) get(i int) bool {
	w := i >> 6
	return w < len(n.bits) && n.bits[w]&(1<<(uint(i)&63)) != 0
}

func (n *nullset) any() bool {
	for _, w := range n.bits {
		if w != 0 {
			return true
		}
	}
	return false
}

func (n *nullset) clone() nullset {
	return nullset{bits: append([]uint64(nil), n.bits...)}
}

// IntVector is a dense []int64 column (also used for timestamps,
// which are Unix-microsecond int64s).
type IntVector struct {
	typ   value.Type
	data  []int64
	nulls nullset
}

// NewIntVector wraps existing data as an Int column without copying.
func NewIntVector(data []int64) *IntVector { return &IntVector{typ: value.Int, data: data} }

// NewTimestampVector wraps existing micros as a Timestamp column.
func NewTimestampVector(data []int64) *IntVector { return &IntVector{typ: value.Timestamp, data: data} }

// Ints exposes the raw backing slice for bulk kernels.
func (v *IntVector) Ints() []int64 { return v.data }

func (v *IntVector) Type() value.Type { return v.typ }
func (v *IntVector) Len() int         { return len(v.data) }
func (v *IntVector) IsNull(i int) bool {
	return v.nulls.get(i)
}

func (v *IntVector) Get(i int) value.Value {
	if v.nulls.get(i) {
		return value.NewNull(v.typ)
	}
	return value.Value{Typ: v.typ, I: v.data[i]}
}

func (v *IntVector) Set(i int, val value.Value) {
	if val.Null {
		v.nulls.set(i)
		v.data[i] = 0
		return
	}
	v.nulls.clear(i)
	v.data[i] = val.AsInt()
}

func (v *IntVector) Append(val value.Value) {
	if val.Null {
		v.nulls.set(len(v.data))
		v.data = append(v.data, 0)
		return
	}
	v.data = append(v.data, val.AsInt())
}

func (v *IntVector) Slice(lo, hi int) Vector {
	out := &IntVector{typ: v.typ, data: append([]int64(nil), v.data[lo:hi]...)}
	for i := lo; i < hi; i++ {
		if v.nulls.get(i) {
			out.nulls.set(i - lo)
		}
	}
	return out
}

func (v *IntVector) Gather(idx []int) Vector {
	out := &IntVector{typ: v.typ, data: make([]int64, len(idx))}
	for o, i := range idx {
		out.data[o] = v.data[i]
		if v.nulls.get(i) {
			out.nulls.set(o)
		}
	}
	return out
}

func (v *IntVector) Clone() Vector {
	return &IntVector{typ: v.typ, data: append([]int64(nil), v.data...), nulls: v.nulls.clone()}
}

// FloatVector is a dense []float64 column.
type FloatVector struct {
	data  []float64
	nulls nullset
}

// NewFloatVector wraps existing data as a Float column without copying.
func NewFloatVector(data []float64) *FloatVector { return &FloatVector{data: data} }

// Floats exposes the raw backing slice for bulk kernels.
func (v *FloatVector) Floats() []float64 { return v.data }

func (v *FloatVector) Type() value.Type  { return value.Float }
func (v *FloatVector) Len() int          { return len(v.data) }
func (v *FloatVector) IsNull(i int) bool { return v.nulls.get(i) }

func (v *FloatVector) Get(i int) value.Value {
	if v.nulls.get(i) {
		return value.NewNull(value.Float)
	}
	return value.NewFloat(v.data[i])
}

func (v *FloatVector) Set(i int, val value.Value) {
	if val.Null {
		v.nulls.set(i)
		v.data[i] = 0
		return
	}
	v.nulls.clear(i)
	v.data[i] = val.AsFloat()
}

func (v *FloatVector) Append(val value.Value) {
	if val.Null {
		v.nulls.set(len(v.data))
		v.data = append(v.data, 0)
		return
	}
	v.data = append(v.data, val.AsFloat())
}

func (v *FloatVector) Slice(lo, hi int) Vector {
	out := &FloatVector{data: append([]float64(nil), v.data[lo:hi]...)}
	for i := lo; i < hi; i++ {
		if v.nulls.get(i) {
			out.nulls.set(i - lo)
		}
	}
	return out
}

func (v *FloatVector) Gather(idx []int) Vector {
	out := &FloatVector{data: make([]float64, len(idx))}
	for o, i := range idx {
		out.data[o] = v.data[i]
		if v.nulls.get(i) {
			out.nulls.set(o)
		}
	}
	return out
}

func (v *FloatVector) Clone() Vector {
	return &FloatVector{data: append([]float64(nil), v.data...), nulls: v.nulls.clone()}
}

// BoolVector is a dense []bool column.
type BoolVector struct {
	data  []bool
	nulls nullset
}

func (v *BoolVector) Type() value.Type  { return value.Bool }
func (v *BoolVector) Len() int          { return len(v.data) }
func (v *BoolVector) IsNull(i int) bool { return v.nulls.get(i) }

func (v *BoolVector) Get(i int) value.Value {
	if v.nulls.get(i) {
		return value.NewNull(value.Bool)
	}
	return value.NewBool(v.data[i])
}

func (v *BoolVector) Set(i int, val value.Value) {
	if val.Null {
		v.nulls.set(i)
		v.data[i] = false
		return
	}
	v.nulls.clear(i)
	v.data[i] = val.AsBool()
}

func (v *BoolVector) Append(val value.Value) {
	if val.Null {
		v.nulls.set(len(v.data))
		v.data = append(v.data, false)
		return
	}
	v.data = append(v.data, val.AsBool())
}

func (v *BoolVector) Slice(lo, hi int) Vector {
	out := &BoolVector{data: append([]bool(nil), v.data[lo:hi]...)}
	for i := lo; i < hi; i++ {
		if v.nulls.get(i) {
			out.nulls.set(i - lo)
		}
	}
	return out
}

func (v *BoolVector) Gather(idx []int) Vector {
	out := &BoolVector{data: make([]bool, len(idx))}
	for o, i := range idx {
		out.data[o] = v.data[i]
		if v.nulls.get(i) {
			out.nulls.set(o)
		}
	}
	return out
}

func (v *BoolVector) Clone() Vector {
	return &BoolVector{data: append([]bool(nil), v.data...), nulls: v.nulls.clone()}
}

// StringVector is a dense []string column.
type StringVector struct {
	data  []string
	nulls nullset
}

func (v *StringVector) Type() value.Type  { return value.String }
func (v *StringVector) Len() int          { return len(v.data) }
func (v *StringVector) IsNull(i int) bool { return v.nulls.get(i) }

func (v *StringVector) Get(i int) value.Value {
	if v.nulls.get(i) {
		return value.NewNull(value.String)
	}
	return value.NewString(v.data[i])
}

func (v *StringVector) Set(i int, val value.Value) {
	if val.Null {
		v.nulls.set(i)
		v.data[i] = ""
		return
	}
	v.nulls.clear(i)
	v.data[i] = val.S
}

func (v *StringVector) Append(val value.Value) {
	if val.Null {
		v.nulls.set(len(v.data))
		v.data = append(v.data, "")
		return
	}
	v.data = append(v.data, val.S)
}

func (v *StringVector) Slice(lo, hi int) Vector {
	out := &StringVector{data: append([]string(nil), v.data[lo:hi]...)}
	for i := lo; i < hi; i++ {
		if v.nulls.get(i) {
			out.nulls.set(i - lo)
		}
	}
	return out
}

func (v *StringVector) Gather(idx []int) Vector {
	out := &StringVector{data: make([]string, len(idx))}
	for o, i := range idx {
		out.data[o] = v.data[i]
		if v.nulls.get(i) {
			out.nulls.set(o)
		}
	}
	return out
}

func (v *StringVector) Clone() Vector {
	return &StringVector{data: append([]string(nil), v.data...), nulls: v.nulls.clone()}
}

// AnyVector stores arbitrary values boxed; used for nested-array
// columns and rare mixed-type intermediates.
type AnyVector struct {
	typ  value.Type
	data []value.Value
}

func (v *AnyVector) Type() value.Type  { return v.typ }
func (v *AnyVector) Len() int          { return len(v.data) }
func (v *AnyVector) IsNull(i int) bool { return v.data[i].Null }

func (v *AnyVector) Get(i int) value.Value      { return v.data[i] }
func (v *AnyVector) Set(i int, val value.Value) { v.data[i] = val }
func (v *AnyVector) Append(val value.Value)     { v.data = append(v.data, val) }

func (v *AnyVector) Slice(lo, hi int) Vector {
	return &AnyVector{typ: v.typ, data: append([]value.Value(nil), v.data[lo:hi]...)}
}

func (v *AnyVector) Gather(idx []int) Vector {
	out := &AnyVector{typ: v.typ, data: make([]value.Value, len(idx))}
	for o, i := range idx {
		out.data[o] = v.data[i]
	}
	return out
}

func (v *AnyVector) Clone() Vector {
	return &AnyVector{typ: v.typ, data: append([]value.Value(nil), v.data...)}
}

// FromValues builds a vector of type t from a value slice.
func FromValues(t value.Type, vals []value.Value) Vector {
	v := New(t, len(vals))
	for _, x := range vals {
		if !x.Null && x.Typ != t && t != value.Unknown {
			c, err := value.Coerce(x, t)
			if err == nil {
				x = c
			}
		}
		v.Append(x)
	}
	return v
}

// BAT is a binary association table: a head of OIDs and a typed tail.
// For base columns the head is virtual — a dense 0..n-1 range that
// needs no storage; the OID of a tail element is its position. That
// property is exactly what lets SciQL treat a dense array attribute as
// a BAT tail (paper §2.2).
type BAT struct {
	// HeadBase is the first OID of the (virtual) dense head.
	HeadBase int64
	// Head materializes OIDs when the head is not dense; nil means
	// virtual (dense from HeadBase).
	Head []int64
	// Tail holds the values.
	Tail Vector
}

// NewBAT creates a BAT with a virtual dense head starting at 0.
func NewBAT(tail Vector) *BAT { return &BAT{Tail: tail} }

// Len returns the number of (head, tail) pairs.
func (b *BAT) Len() int { return b.Tail.Len() }

// OID returns the head OID of pair i.
func (b *BAT) OID(i int) int64 {
	if b.Head == nil {
		return b.HeadBase + int64(i)
	}
	return b.Head[i]
}

// IsDenseHead reports whether the head is a virtual dense range.
func (b *BAT) IsDenseHead() bool { return b.Head == nil }

// Select returns the positions whose tail value satisfies pred.
func (b *BAT) Select(pred func(value.Value) bool) []int {
	var out []int
	n := b.Tail.Len()
	for i := 0; i < n; i++ {
		if pred(b.Tail.Get(i)) {
			out = append(out, i)
		}
	}
	return out
}

// SelectRangeFloat is a bulk kernel specialized for float tails: it
// returns positions with lo <= v <= hi, skipping NULLs.
func (b *BAT) SelectRangeFloat(lo, hi float64) []int {
	fv, ok := b.Tail.(*FloatVector)
	if !ok {
		return b.Select(func(v value.Value) bool {
			if v.Null {
				return false
			}
			f := v.AsFloat()
			return f >= lo && f <= hi
		})
	}
	var out []int
	for i, f := range fv.data {
		if fv.nulls.get(i) {
			continue
		}
		if f >= lo && f <= hi {
			out = append(out, i)
		}
	}
	return out
}

// HashJoin joins this BAT's tail against other's tail on equality and
// returns matching position pairs (left pos, right pos).
func (b *BAT) HashJoin(other *BAT) (left, right []int) {
	// Build on the smaller side.
	build, probe := b, other
	swapped := false
	if probe.Len() < build.Len() {
		build, probe = probe, build
		swapped = true
	}
	idx := make(map[string][]int, build.Len())
	for i := 0; i < build.Len(); i++ {
		v := build.Tail.Get(i)
		if v.Null {
			continue
		}
		k := v.String()
		idx[k] = append(idx[k], i)
	}
	for j := 0; j < probe.Len(); j++ {
		v := probe.Tail.Get(j)
		if v.Null {
			continue
		}
		for _, i := range idx[v.String()] {
			if swapped {
				left = append(left, j)
				right = append(right, i)
			} else {
				left = append(left, i)
				right = append(right, j)
			}
		}
	}
	return left, right
}

// SortPerm returns a permutation that orders the tail ascending
// (NULLs first), mirroring MonetDB's order index.
func (b *BAT) SortPerm() []int {
	n := b.Tail.Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return value.Compare(b.Tail.Get(perm[x]), b.Tail.Get(perm[y])) < 0
	})
	return perm
}

// Aggregate computes a named aggregate over the tail, ignoring NULLs
// per the SciQL rule that aggregates apply to non-NULL cells only.
func (b *BAT) Aggregate(fn string) (value.Value, error) {
	agg := NewAggState(fn)
	if agg == nil {
		return value.Value{}, fmt.Errorf("unknown aggregate %q", fn)
	}
	n := b.Tail.Len()
	for i := 0; i < n; i++ {
		agg.Add(b.Tail.Get(i))
	}
	return agg.Result(), nil
}

// AggState accumulates one aggregate. NULL inputs are skipped, per the
// paper: "the array aggregate operations SUM, COUNT, AVG, MIN and MAX
// are applied to non-NULL values only".
type AggState struct {
	fn    string
	count int64
	sum   float64
	min   value.Value
	max   value.Value
	isInt bool
	anyV  bool
}

// NewAggState creates an accumulator for SUM, COUNT, AVG, MIN or MAX
// (case-insensitive); nil if the name is unknown.
func NewAggState(fn string) *AggState {
	switch upper(fn) {
	case "SUM", "COUNT", "AVG", "MIN", "MAX":
		return &AggState{fn: upper(fn), isInt: true}
	}
	return nil
}

// Reset clears the accumulator for reuse across groups.
func (a *AggState) Reset() {
	a.count, a.sum = 0, 0
	a.min, a.max = value.Value{}, value.Value{}
	a.isInt, a.anyV = true, false
}

// Add folds one input value into the aggregate.
func (a *AggState) Add(v value.Value) {
	if v.Null {
		return
	}
	a.count++
	if v.Typ != value.Int {
		a.isInt = false
	}
	a.sum += v.AsFloat()
	if !a.anyV || value.Compare(v, a.min) < 0 {
		a.min = v
	}
	if !a.anyV || value.Compare(v, a.max) > 0 {
		a.max = v
	}
	a.anyV = true
}

// Merge folds another accumulator's partial state into a; the
// morsel-driven executor merges per-worker partials with it. Merging
// is only valid for non-DISTINCT aggregates (partials may have seen
// overlapping DISTINCT values).
func (a *AggState) Merge(o *AggState) {
	if o.count == 0 && !o.anyV {
		return
	}
	if !o.isInt {
		a.isInt = false
	}
	a.count += o.count
	a.sum += o.sum
	if o.anyV {
		if !a.anyV || value.Compare(o.min, a.min) < 0 {
			a.min = o.min
		}
		if !a.anyV || value.Compare(o.max, a.max) > 0 {
			a.max = o.max
		}
		a.anyV = true
	}
}

// Result finalizes the aggregate. Empty input yields NULL (except
// COUNT, which yields 0), matching SQL semantics.
func (a *AggState) Result() value.Value {
	switch a.fn {
	case "COUNT":
		return value.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return value.NewNull(value.Float)
		}
		if a.isInt {
			return value.NewInt(int64(a.sum))
		}
		return value.NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return value.NewNull(value.Float)
		}
		return value.NewFloat(a.sum / float64(a.count))
	case "MIN":
		if !a.anyV {
			return value.NewNull(value.Float)
		}
		return a.min
	case "MAX":
		if !a.anyV {
			return value.NewNull(value.Float)
		}
		return a.max
	}
	return value.NewNull(value.Unknown)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 32
		}
	}
	return string(b)
}

// MinMaxFloat scans a float slice for min/max ignoring NaN; a bulk
// helper used when deriving bounding boxes of unbounded arrays.
func MinMaxFloat(xs []float64) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		ok = true
	}
	return lo, hi, ok
}
