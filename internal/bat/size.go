package bat

// ApproxBytes estimates the heap footprint of a vector's payload for
// memory-budget accounting. The estimate is deliberately cheap — O(1)
// for fixed-width vectors, O(n) only for strings — and stable across
// runs, which is what the governor needs: a monotonic, reproducible
// proxy for bytes materialized, not an allocator-exact figure.
func ApproxBytes(v Vector) int64 {
	if v == nil {
		return 0
	}
	n := int64(v.Len())
	switch vv := v.(type) {
	case *IntVector:
		return n * 8
	case *FloatVector:
		return n * 8
	case *BoolVector:
		return n
	case *StringVector:
		b := n * 16 // string headers
		for _, s := range vv.data {
			b += int64(len(s))
		}
		return b
	default:
		// AnyVector and future types: value.Value is ~64 bytes of struct
		// plus boxed payload; 80 is a round conservative figure.
		return n * 80
	}
}
