package bat

import (
	"math"
	"testing"

	"repro/internal/value"
)

func intVec(vals ...any) *IntVector {
	v := New(value.Int, len(vals)).(*IntVector)
	for _, x := range vals {
		if x == nil {
			v.Append(value.NewNull(value.Int))
		} else {
			v.Append(value.NewInt(int64(x.(int))))
		}
	}
	return v
}

func floatVec(vals ...any) *FloatVector {
	v := New(value.Float, len(vals)).(*FloatVector)
	for _, x := range vals {
		if x == nil {
			v.Append(value.NewNull(value.Float))
		} else {
			v.Append(value.NewFloat(x.(float64)))
		}
	}
	return v
}

func boolVec(vals ...any) *BoolVector {
	v := New(value.Bool, len(vals)).(*BoolVector)
	for _, x := range vals {
		if x == nil {
			v.Append(value.NewNull(value.Bool))
		} else {
			v.Append(value.NewBool(x.(bool)))
		}
	}
	return v
}

func wantVals(t *testing.T, got Vector, want ...string) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("length %d, want %d", got.Len(), len(want))
	}
	for i, w := range want {
		if s := got.Get(i).String(); s != w {
			t.Errorf("element %d: got %s, want %s", i, s, w)
		}
	}
}

func TestIntArithNullsAndDivZero(t *testing.T) {
	a := intVec(10, nil, 7, -9)
	b := intVec(3, 4, 0, nil)
	wantVals(t, AddInt64(a, b), "13", "NULL", "7", "NULL")
	wantVals(t, SubInt64(a, b), "7", "NULL", "7", "NULL")
	wantVals(t, MulInt64(a, b), "30", "NULL", "0", "NULL")
	wantVals(t, DivInt64(a, b), "3", "NULL", "NULL", "NULL")
	wantVals(t, ModInt64(a, b), "1", "NULL", "NULL", "NULL")
	wantVals(t, DivInt64C(a, 0), "NULL", "NULL", "NULL", "NULL")
	wantVals(t, ModCInt64(100, a), "0", "NULL", "2", "1")
	wantVals(t, DivCInt64(100, intVec(0, 7)), "NULL", "14")
}

func TestFloatArithNullsAndDivZero(t *testing.T) {
	a := floatVec(10.0, nil, 7.5)
	b := floatVec(2.5, 4.0, 0.0)
	wantVals(t, DivFloat64(a, b), "4", "NULL", "NULL")
	wantVals(t, ModFloat64(a, b), "0", "NULL", "NULL")
	wantVals(t, DivFloat64C(a, 0), "NULL", "NULL", "NULL")
	wantVals(t, MulFloat64C(a, 2), "20", "NULL", "15")
}

func TestCmpNullsAndNaN(t *testing.T) {
	a := intVec(1, nil, 5)
	b := intVec(2, 2, 5)
	wantVals(t, CmpInt64("<", a, b), "true", "NULL", "false")
	wantVals(t, CmpInt64("=", a, b), "false", "NULL", "true")
	wantVals(t, CmpInt64C(">=", a, 5), "false", "NULL", "true")
	// NaN compares equal to everything, mirroring value.Compare.
	nan := floatVec(math.NaN())
	if got := CmpFloat64C("=", nan, 3).Get(0); !got.B {
		t.Errorf("NaN = 3 should be true under value.Compare semantics, got %s", got)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	// Truth tables over {true, false, NULL} x {true, false, NULL}.
	l := boolVec(true, true, true, false, false, false, nil, nil, nil)
	r := boolVec(true, false, nil, true, false, nil, true, false, nil)
	wantVals(t, AndBool(l, r), "true", "false", "NULL", "false", "false", "false", "NULL", "false", "NULL")
	wantVals(t, OrBool(l, r), "true", "true", "true", "true", "false", "NULL", "true", "NULL", "NULL")
	wantVals(t, NotBool(boolVec(true, false, nil)), "false", "true", "NULL")
}

func TestSelectionVectors(t *testing.T) {
	b := boolVec(true, false, nil, true)
	sel := TruthSel(b)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 3 {
		t.Fatalf("TruthSel = %v, want [0 3]", sel)
	}
	// Numeric truthiness mirrors value.AsBool.
	iv := intVec(0, 5, nil, -1)
	sel = TruthSel(iv)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 3 {
		t.Fatalf("TruthSel(int) = %v, want [1 3]", sel)
	}
	refined := AndSel([]int{0, 3}, boolVec(true, false, false, nil))
	if len(refined) != 1 || refined[0] != 0 {
		t.Fatalf("AndSel = %v, want [0]", refined)
	}
}

func TestIsNullVec(t *testing.T) {
	v := floatVec(1.5, nil)
	wantVals(t, IsNullVec(v, false), "false", "true")
	wantVals(t, IsNullVec(v, true), "true", "false")
}

func TestConcatAndViewRange(t *testing.T) {
	a := intVec(1, nil, 3)
	b := intVec(4, nil)
	out := Concat(New(value.Int, 0), a)
	out = Concat(out, b)
	wantVals(t, out, "1", "NULL", "3", "4", "NULL")
	// A NULL-free range shares the backing array; a NULL-bearing one
	// falls back to a copy — both read identically.
	wantVals(t, ViewRange(a, 2, 3), "3")
	wantVals(t, ViewRange(a, 0, 2), "1", "NULL")
	if v := ViewRange(a, 0, 3); v != Vector(a) {
		t.Error("full-range view should be the vector itself")
	}
}

func TestBroadcastAndPromotion(t *testing.T) {
	v := Broadcast(value.NewInt(7), value.Int, 3)
	wantVals(t, v, "7", "7", "7")
	nv := Broadcast(value.NewNull(value.Bool), value.Bool, 2)
	wantVals(t, nv, "NULL", "NULL")
	f := ToFloat64(intVec(2, nil))
	wantVals(t, f, "2", "NULL")
	if f.Type() != value.Float {
		t.Errorf("promoted type = %s", f.Type())
	}
}

func TestMapAndPowKernels(t *testing.T) {
	wantVals(t, MapFloat64(math.Sqrt, floatVec(9.0, nil)), "3", "NULL")
	wantVals(t, PowFloat64C(floatVec(2.0, nil), 3), "8", "NULL")
	wantVals(t, PowCFloat64(2, floatVec(3.0)), "8")
	wantVals(t, AbsInt64(intVec(-4, 4, nil)), "4", "4", "NULL")
	wantVals(t, NegFloat64(floatVec(1.5, nil)), "-1.5", "NULL")
}

func TestNullCountHasNonNull(t *testing.T) {
	v := intVec(1, nil, nil)
	if NullCount(v) != 2 {
		t.Errorf("NullCount = %d", NullCount(v))
	}
	if !HasNonNull(v) {
		t.Error("HasNonNull should be true")
	}
	if HasNonNull(intVec(nil, nil)) {
		t.Error("HasNonNull over all NULLs should be false")
	}
}
